package htm

import "testing"

// TestOwnerWinsMatrix exercises every ConflictPolicy against requester-older
// (owner outranked) and requester-younger (owner outranks) speculative
// conflicts. Older = higher priority under the insts-based policy; ties are
// core-ID-broken by priority.Wins.
func TestOwnerWinsMatrix(t *testing.T) {
	older := ConflictSide{Mode: HTM, Prio: 100, Core: 1}
	younger := ConflictSide{Mode: HTM, Prio: 10, Core: 2}

	arbitrated := []ConflictPolicy{
		Recovery{Policy: SelfAbort, Backoff: 200, Timeout: 20_000},
		Recovery{Policy: RetryLater, Backoff: 200, Timeout: 20_000},
		Recovery{Policy: WaitWakeup, Backoff: 200, Timeout: 20_000},
		Losa{Timeout: 20_000},
	}
	for _, p := range arbitrated {
		if !p.OwnerWins(older, younger) {
			t.Errorf("%s: older owner must defeat younger requester", p.Name())
		}
		if p.OwnerWins(younger, older) {
			t.Errorf("%s: younger owner must yield to older requester", p.Name())
		}
		// Priority tie → smaller core ID wins.
		a := ConflictSide{Mode: HTM, Prio: 50, Core: 0}
		b := ConflictSide{Mode: HTM, Prio: 50, Core: 3}
		if !p.OwnerWins(a, b) || p.OwnerWins(b, a) {
			t.Errorf("%s: priority tie must break toward smaller core ID", p.Name())
		}
	}

	rw := RequesterWins{Timeout: 20_000}
	if rw.OwnerWins(older, younger) || rw.OwnerWins(younger, older) {
		t.Error("requester-win: owner must never win, regardless of age")
	}
}

// TestRejectedMatrix covers all three RejectPolicy values for HTM
// requesters, plus the non-HTM hold-and-retry behaviour every policy shares.
func TestRejectedMatrix(t *testing.T) {
	const backoff, timeout = 200, 20_000
	cases := []struct {
		policy RejectPolicy
		want   RejectedDecision
	}{
		{SelfAbort, RejectedDecision{Abort: true}},
		{RetryLater, RejectedDecision{Timeout: backoff}},
		{WaitWakeup, RejectedDecision{Timeout: timeout}},
	}
	for _, c := range cases {
		r := Recovery{Policy: c.policy, Backoff: backoff, Timeout: timeout}
		if got := r.Rejected(HTM); got != c.want {
			t.Errorf("recovery/%s Rejected(HTM) = %+v, want %+v", c.policy, got, c.want)
		}
		// Non-speculative requesters have nothing to abort: always park.
		for _, m := range []Mode{NonTx, Mutex, TL, STL} {
			if got := r.Rejected(m); got != (RejectedDecision{Timeout: timeout}) {
				t.Errorf("recovery/%s Rejected(%s) = %+v, want park %d", c.policy, m, got, timeout)
			}
		}
	}
	if got := (RequesterWins{Timeout: timeout}).Rejected(HTM); got != (RejectedDecision{Timeout: timeout}) {
		t.Errorf("requester-win Rejected(HTM) = %+v", got)
	}
	if got := (Losa{Timeout: timeout}).Rejected(HTM); got != (RejectedDecision{Timeout: timeout}) {
		t.Errorf("losa Rejected(HTM) = %+v", got)
	}
}

func TestRecordsWake(t *testing.T) {
	for _, c := range []struct {
		p    ConflictPolicy
		mode Mode
		want bool
	}{
		{Recovery{Policy: SelfAbort}, HTM, false},
		{Recovery{Policy: RetryLater}, HTM, false},
		{Recovery{Policy: WaitWakeup}, HTM, true},
		{Recovery{Policy: SelfAbort}, NonTx, true},
		{Recovery{Policy: RetryLater}, Mutex, true},
		{RequesterWins{}, HTM, false},
		{RequesterWins{}, NonTx, true},
		{Losa{}, HTM, true},
		{Losa{}, NonTx, true},
	} {
		if got := c.p.RecordsWake(c.mode); got != c.want {
			t.Errorf("%s RecordsWake(%s) = %v, want %v", c.p.Name(), c.mode, got, c.want)
		}
	}
}

func TestCauseFor(t *testing.T) {
	for _, c := range []struct {
		winner Mode
		want   AbortCause
	}{
		{HTM, CauseMC}, {TL, CauseLock}, {STL, CauseLock},
		{Mutex, CauseMutex}, {NonTx, CauseNonTx},
	} {
		if got := CauseFor(c.winner); got != c.want {
			t.Errorf("CauseFor(%s) = %s, want %s", c.winner, got, c.want)
		}
	}
}

func TestArbDelay(t *testing.T) {
	if d := (Losa{}).ArbDelay(); d != 1 {
		t.Errorf("losa ArbDelay = %d, want 1", d)
	}
	if d := (Recovery{}).ArbDelay(); d != 0 {
		t.Errorf("recovery ArbDelay = %d, want 0", d)
	}
}

// TestOverflowMatrix covers both OverflowPolicy values across modes and the
// triedSwitch/external qualifiers.
func TestOverflowMatrix(t *testing.T) {
	for _, c := range []struct {
		p          OverflowPolicy
		mode       Mode
		tried, ext bool
		want       OverflowDecision
	}{
		{AbortOverflow{}, HTM, false, false, OverflowAbort},
		{AbortOverflow{}, TL, false, false, OverflowSpill},
		{AbortOverflow{}, STL, false, true, OverflowSpill},
		{SwitchOverflow{}, HTM, false, false, OverflowSwitch},
		{SwitchOverflow{}, HTM, true, false, OverflowAbort}, // already applied once
		{SwitchOverflow{}, HTM, false, true, OverflowAbort}, // recall, not own allocation
		{SwitchOverflow{}, TL, false, false, OverflowSpill},
		{SwitchOverflow{}, STL, false, false, OverflowSpill},
	} {
		if got := c.p.Decide(c.mode, c.tried, c.ext); got != c.want {
			t.Errorf("%s Decide(%s, tried=%v, ext=%v) = %d, want %d",
				c.p.Name(), c.mode, c.tried, c.ext, got, c.want)
		}
	}
}

// TestDefaultsComposition checks that each Table II flag combination
// composes the expected policy objects.
func TestDefaultsComposition(t *testing.T) {
	cases := []struct {
		name         string
		cfg          Config
		wantConflict string
		wantOverflow string
	}{
		{"baseline", Config{}, "requester-win", "abort"},
		{"recovery-RAI", Config{Recovery: true, RejectPolicy: SelfAbort}, "recovery/self-abort", "abort"},
		{"recovery-RRI", Config{Recovery: true, RejectPolicy: RetryLater}, "recovery/retry-later", "abort"},
		{"recovery-RWI", Config{Recovery: true, RejectPolicy: WaitWakeup}, "recovery/wait-wakeup", "abort"},
		{"losa", Config{Losa: true}, "losa-safu", "abort"},
		{"full", Config{Recovery: true, RejectPolicy: WaitWakeup, HTMLock: true, SwitchingMode: true},
			"recovery/wait-wakeup", "switching-mode"},
	}
	for _, c := range cases {
		got := c.cfg.Defaults()
		if got.Conflict.Name() != c.wantConflict {
			t.Errorf("%s: Conflict = %s, want %s", c.name, got.Conflict.Name(), c.wantConflict)
		}
		if got.Overflow.Name() != c.wantOverflow {
			t.Errorf("%s: Overflow = %s, want %s", c.name, got.Overflow.Name(), c.wantOverflow)
		}
		// The composed Recovery policy must capture the defaulted knobs.
		if r, ok := got.Conflict.(Recovery); ok {
			if r.Backoff != got.RetryBackoff || r.Timeout != got.RejectTimeout {
				t.Errorf("%s: Recovery captured (%d,%d), config has (%d,%d)",
					c.name, r.Backoff, r.Timeout, got.RetryBackoff, got.RejectTimeout)
			}
		}
	}
	// An explicit policy survives Defaults untouched.
	pre := Config{Conflict: Losa{Timeout: 7}, Overflow: SwitchOverflow{}}.Defaults()
	if pre.Conflict != (Losa{Timeout: 7}) || pre.Overflow != (SwitchOverflow{}) {
		t.Errorf("Defaults overwrote explicit policies: %+v / %+v", pre.Conflict, pre.Overflow)
	}
}
