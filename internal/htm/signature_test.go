package htm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestSignatureNoFalseNegatives(t *testing.T) {
	s := NewSignature(2048)
	var added []mem.Line
	for i := 0; i < 200; i++ {
		l := mem.Line(i * 97)
		s.Add(l)
		added = append(added, l)
	}
	for _, l := range added {
		if !s.MayContain(l) {
			t.Fatalf("false negative for line %d", l)
		}
	}
	if s.Adds() != 200 {
		t.Fatalf("Adds = %d", s.Adds())
	}
}

func TestSignatureFalsePositiveRate(t *testing.T) {
	s := NewSignature(2048)
	for i := 0; i < 100; i++ {
		s.Add(mem.Line(i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if s.MayContain(mem.Line(1_000_000 + i)) {
			fp++
		}
	}
	// With 100 inserts, 2 hashes, 2048 bits: fill ~9.3%, fp ~ 0.9%.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestSignatureClear(t *testing.T) {
	s := NewSignature(256)
	s.Add(5)
	if s.Empty() {
		t.Fatal("not empty after Add")
	}
	s.Clear()
	if !s.Empty() || s.MayContain(5) || s.PopCount() != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestSignatureMinimumSize(t *testing.T) {
	s := NewSignature(1) // must round up, not crash
	s.Add(123)
	if !s.MayContain(123) {
		t.Fatal("tiny signature lost a member")
	}
}

func TestSignatureQuickMembership(t *testing.T) {
	if err := quick.Check(func(lines []uint32) bool {
		s := NewSignature(4096)
		for _, l := range lines {
			s.Add(mem.Line(l))
		}
		for _, l := range lines {
			if !s.MayContain(mem.Line(l)) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWakeSetDrain(t *testing.T) {
	var w WakeSet
	if !w.Empty() {
		t.Fatal("zero value should be empty")
	}
	w.Add(3)
	w.Add(31)
	w.Add(3) // idempotent
	if !w.Contains(3) || !w.Contains(31) || w.Contains(4) {
		t.Fatal("Contains wrong")
	}
	var got []int
	w.Drain(func(c int) { got = append(got, c) })
	if len(got) != 2 || got[0] != 3 || got[1] != 31 {
		t.Fatalf("Drain = %v", got)
	}
	if !w.Empty() {
		t.Fatal("Drain must clear")
	}
}

func TestWakeSetRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative core")
		}
	}()
	var w WakeSet
	w.Add(-1)
}

func TestWakeSetBeyond64(t *testing.T) {
	var w WakeSet
	for _, c := range []int{900, 63, 64, 0, 511, 127} {
		w.Add(c)
	}
	if !w.Contains(900) || !w.Contains(64) || w.Contains(65) || w.Contains(899) {
		t.Fatal("Contains wrong above 64")
	}
	var got []int
	w.Drain(func(c int) { got = append(got, c) })
	want := []int{0, 63, 64, 127, 511, 900}
	if len(got) != len(want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v (ascending)", got, want)
		}
	}
	if !w.Empty() {
		t.Fatal("Drain must clear extension words")
	}
	// Re-adds during a drain are kept for the next drain, not woken twice.
	w.Add(70)
	var first []int
	w.Drain(func(c int) { w.Add(c); first = append(first, c) })
	if len(first) != 1 || first[0] != 70 {
		t.Fatalf("first drain = %v", first)
	}
	if !w.Contains(70) {
		t.Fatal("re-added core must survive the drain")
	}
}
