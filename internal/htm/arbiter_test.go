package htm

import (
	"testing"

	"repro/internal/mem"
)

func TestArbiterSTLGrantDeny(t *testing.T) {
	a := NewArbiter(256)
	if a.Holder() != -1 || a.HolderMode() != NonTx {
		t.Fatal("fresh arbiter should be idle")
	}
	if !a.ApplySTL(3) {
		t.Fatal("first STL application must be granted")
	}
	if a.Holder() != 3 || a.HolderMode() != STL {
		t.Fatal("holder not recorded")
	}
	if a.ApplySTL(5) {
		t.Fatal("second STL application must be denied")
	}
	a.Release(3)
	if a.Holder() != -1 {
		t.Fatal("release incomplete")
	}
	if a.Grants != 1 || a.Denies != 1 {
		t.Fatalf("stats: grants=%d denies=%d", a.Grants, a.Denies)
	}
}

func TestArbiterTLQueuesBehindSTL(t *testing.T) {
	a := NewArbiter(256)
	if !a.ApplySTL(1) {
		t.Fatal("grant")
	}
	granted := false
	a.ApplyTL(2, func() { granted = true })
	if granted {
		t.Fatal("TL must wait while STL active")
	}
	// New STL applications are denied while a TL waits (it would starve TL).
	if a.ApplySTL(7) {
		t.Fatal("STL must not jump a waiting TL")
	}
	a.Release(1)
	if !granted {
		t.Fatal("queued TL must be granted on release")
	}
	if a.Holder() != 2 || a.HolderMode() != TL {
		t.Fatal("TL holder wrong")
	}
	if a.QueuedGrants != 1 {
		t.Fatal("QueuedGrants not counted")
	}
	a.Release(2)
}

func TestArbiterTLImmediateWhenIdle(t *testing.T) {
	a := NewArbiter(256)
	granted := false
	a.ApplyTL(4, func() { granted = true })
	if !granted || a.HolderMode() != TL {
		t.Fatal("idle arbiter must grant TL immediately")
	}
}

func TestArbiterSignatureConflicts(t *testing.T) {
	a := NewArbiter(2048)
	if !a.ApplySTL(0) {
		t.Fatal("grant")
	}
	a.RecordOverflow(0, mem.Line(10), false, true) // write overflow
	a.RecordOverflow(0, mem.Line(20), true, false) // read overflow

	// Write-signature hit conflicts with everything from other cores.
	if !a.SigConflict(1, 10, false, false) {
		t.Fatal("read of OfWr line must conflict")
	}
	if !a.SigConflict(1, 10, true, false) {
		t.Fatal("write of OfWr line must conflict")
	}
	// Read-signature hit conflicts only with store permission.
	if a.SigConflict(1, 20, false, false) {
		t.Fatal("shared read of OfRd line must not conflict")
	}
	if !a.SigConflict(1, 20, true, false) {
		t.Fatal("write of OfRd line must conflict")
	}
	if !a.SigConflict(1, 20, false, true) {
		t.Fatal("exclusive read of OfRd line must conflict (paper §III-B)")
	}
	// The holder itself never conflicts.
	if a.SigConflict(0, 10, true, true) {
		t.Fatal("holder must not conflict with its own signatures")
	}
	// Unrelated line: no conflict.
	if a.SigConflict(1, 999, true, true) {
		t.Fatal("unrelated line conflicted (or an unlucky false positive)")
	}
}

func TestArbiterWakesRejected(t *testing.T) {
	a := NewArbiter(256)
	woken := map[int]bool{}
	a.SendWake = func(c int) { woken[c] = true }
	if !a.ApplySTL(0) {
		t.Fatal("grant")
	}
	a.NoteRejected(5)
	a.NoteRejected(9)
	a.Release(0)
	if !woken[5] || !woken[9] || len(woken) != 2 {
		t.Fatalf("woken = %v", woken)
	}
	// Signatures must be clear after release.
	if !a.OfRd.Empty() || !a.OfWr.Empty() {
		t.Fatal("signatures survive release")
	}
}

func TestArbiterReleaseByNonHolderPanics(t *testing.T) {
	a := NewArbiter(256)
	a.ApplySTL(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Release(2)
}

func TestArbiterOverflowByNonHolderPanics(t *testing.T) {
	a := NewArbiter(256)
	a.ApplySTL(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.RecordOverflow(2, 1, true, false)
}

func TestArbiterNoConflictWhenIdle(t *testing.T) {
	a := NewArbiter(256)
	if a.SigConflict(1, 10, true, true) {
		t.Fatal("idle arbiter must never conflict")
	}
}
