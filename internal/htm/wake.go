package htm

import "math/bits"

// WakeSet is the per-L1 wake-up table of the recovery mechanism (the green
// shaded table of the paper's Fig. 2): the set of cores whose requests this
// cache rejected and that must be woken when the local transaction commits
// or aborts. The first 64 cores live in an inline word — zero allocations
// and the exact cost of the old raw bitset on the paper's 32-core machine —
// and bigger machines spill to extension words allocated once and reused
// across drains, so the scaled machines (64–1024 cores, DESIGN.md §13) pay
// one allocation per L1 lifetime, not per wake round.
type WakeSet struct {
	w0      uint64
	ext     []uint64 // words 1..: cores 64..; nil on ≤64-core machines
	scratch []uint64 // drain snapshot of ext, reused across drains
}

// Add records a core to wake.
func (w *WakeSet) Add(core int) {
	if core < 0 {
		panic("htm: WakeSet core out of range")
	}
	wi := core >> 6
	if wi == 0 {
		w.w0 |= 1 << uint(core&63)
		return
	}
	for len(w.ext) < wi {
		w.ext = append(w.ext, 0)
	}
	w.ext[wi-1] |= 1 << uint(core&63)
}

// Empty reports whether no cores are pending.
func (w *WakeSet) Empty() bool {
	if w.w0 != 0 {
		return false
	}
	for _, v := range w.ext {
		if v != 0 {
			return false
		}
	}
	return true
}

// Contains reports whether the core is pending a wake-up.
func (w *WakeSet) Contains(core int) bool {
	wi := core >> 6
	if wi == 0 {
		return w.w0&(1<<uint(core&63)) != 0
	}
	return wi-1 < len(w.ext) && w.ext[wi-1]&(1<<uint(core&63)) != 0
}

// Drain invokes fn for every pending core in ascending order and clears the
// set. This is the commit/abort-time table scan of paper §III-A. The whole
// set is snapshotted before the first fn call, so cores fn re-adds are kept
// for the next drain rather than woken twice in this one.
func (w *WakeSet) Drain(fn func(core int)) {
	b := w.w0
	w.w0 = 0
	w.scratch = append(w.scratch[:0], w.ext...)
	for i := range w.ext {
		w.ext[i] = 0
	}
	drainWord(b, 0, fn)
	for i, v := range w.scratch {
		drainWord(v, (i+1)*64, fn)
	}
}

// Clear empties the set in place, keeping the ext and scratch backings for
// reuse (machine reset: the backing lengths are part of the machine shape,
// their contents are all-zero either way).
func (w *WakeSet) Clear() {
	w.w0 = 0
	for i := range w.ext {
		w.ext[i] = 0
	}
}

func drainWord(b uint64, base int, fn func(core int)) {
	for b != 0 {
		c := bits.TrailingZeros64(b)
		fn(base + c)
		b &^= 1 << uint(c)
	}
}
