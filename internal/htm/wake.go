package htm

import "math/bits"

// WakeSet is the per-L1 wake-up table of the recovery mechanism (the green
// shaded table of the paper's Fig. 2): the set of cores whose requests this
// cache rejected and that must be woken when the local transaction commits
// or aborts. A bitset suffices for the modeled 32-core machine (sized for
// up to 64).
type WakeSet struct{ bits uint64 }

// Add records a core to wake.
func (w *WakeSet) Add(core int) {
	if core < 0 || core > 63 {
		panic("htm: WakeSet core out of range")
	}
	w.bits |= 1 << uint(core)
}

// Empty reports whether no cores are pending.
func (w *WakeSet) Empty() bool { return w.bits == 0 }

// Contains reports whether the core is pending a wake-up.
func (w *WakeSet) Contains(core int) bool { return w.bits&(1<<uint(core)) != 0 }

// Drain invokes fn for every pending core and clears the set. This is the
// commit/abort-time table scan of paper §III-A.
func (w *WakeSet) Drain(fn func(core int)) {
	b := w.bits
	w.bits = 0
	for b != 0 {
		c := bits.TrailingZeros64(b)
		fn(c)
		b &^= 1 << uint(c)
	}
}
