package htm

import (
	"math/bits"

	"repro/internal/mem"
)

// Signature is a Bloom-filter address signature, used by the HTMLock
// mechanism to hold the read and write sets that overflow the L1 while a
// lock transaction runs (paper §III-B, inspired by LogTM-SE). Two hash
// functions over the line address set two bits; membership tests are
// conservative (no false negatives, possible false positives).
type Signature struct {
	bits  []uint64
	nbits uint64
	count int
}

// NewSignature creates a signature with the given number of bits (rounded
// up to a multiple of 64, minimum 64).
func NewSignature(n int) *Signature {
	if n < 64 {
		n = 64
	}
	words := (n + 63) / 64
	return &Signature{bits: make([]uint64, words), nbits: uint64(words * 64)}
}

func (s *Signature) hashes(l mem.Line) (uint64, uint64) {
	x := uint64(l)
	// Two independent mixes (splitmix64 finalizer variants).
	h1 := x * 0x9E3779B97F4A7C15
	h1 ^= h1 >> 29
	h1 *= 0xBF58476D1CE4E5B9
	h1 ^= h1 >> 32
	h2 := x * 0xC2B2AE3D27D4EB4F
	h2 ^= h2 >> 31
	h2 *= 0x94D049BB133111EB
	h2 ^= h2 >> 29
	return h1 % s.nbits, h2 % s.nbits
}

// Add inserts a line address.
func (s *Signature) Add(l mem.Line) {
	a, b := s.hashes(l)
	s.bits[a/64] |= 1 << (a % 64)
	s.bits[b/64] |= 1 << (b % 64)
	s.count++
}

// MayContain reports whether the line may have been added (conservative).
func (s *Signature) MayContain(l mem.Line) bool {
	a, b := s.hashes(l)
	return s.bits[a/64]&(1<<(a%64)) != 0 && s.bits[b/64]&(1<<(b%64)) != 0
}

// Clear resets the signature (hlend flash-clears both LLC signatures).
func (s *Signature) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
}

// Empty reports whether nothing has been added since the last Clear.
func (s *Signature) Empty() bool { return s.count == 0 }

// Adds returns how many addresses were inserted since the last Clear.
func (s *Signature) Adds() int { return s.count }

// PopCount returns the number of set bits; the harness reports it to judge
// false-positive pressure in the signature-size ablation.
func (s *Signature) PopCount() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}
