package htm

import (
	"testing"

	"repro/internal/priority"
)

func TestModePredicates(t *testing.T) {
	if !TL.Lock() || !STL.Lock() || HTM.Lock() || NonTx.Lock() || Mutex.Lock() {
		t.Fatal("Lock() wrong")
	}
	if !HTM.Speculative() || TL.Speculative() {
		t.Fatal("Speculative() wrong")
	}
	for m, want := range map[Mode]string{NonTx: "non-tx", HTM: "htm", TL: "TL", STL: "STL", Mutex: "mutex"} {
		if m.String() != want {
			t.Fatalf("Mode string %d = %q", m, m.String())
		}
	}
}

func TestAbortCauseStrings(t *testing.T) {
	want := map[AbortCause]string{
		CauseNone: "none", CauseMC: "mc", CauseLock: "lock", CauseMutex: "mutex",
		CauseNonTx: "non_tran", CauseOverflow: "of", CauseFault: "fault",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("cause %d = %q, want %q", c, c.String(), s)
		}
	}
	if NumCauses != 6 {
		t.Fatalf("NumCauses = %d", NumCauses)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Recovery: true, MaxRetries: 4, HTMLock: true, SignatureBits: 64}.Defaults()
	ok.Validate()

	for _, bad := range []Config{
		{SwitchingMode: true, MaxRetries: 4},        // switching without HTMLock
		{Losa: true, Recovery: true, MaxRetries: 4}, // both managers
		{Recovery: true},                            // no retries
		{HTMLock: true, MaxRetries: 4},              // no signature bits
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Validate accepted bad config %+v", bad)
				}
			}()
			bad.Validate()
		}()
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.MaxRetries == 0 || c.RejectTimeout == 0 || c.RetryBackoff == 0 ||
		c.AbortBackoffBase == 0 || c.RollbackPenalty == 0 || c.SignatureBits == 0 {
		t.Fatalf("Defaults left zeros: %+v", c)
	}
	c2 := Config{MaxRetries: 3}.Defaults()
	if c2.MaxRetries != 3 {
		t.Fatal("Defaults must not override explicit values")
	}
}

func TestTxStatePriority(t *testing.T) {
	tx := &TxState{Core: 1, Cfg: Config{Priority: priority.InstsBased{}}}
	tx.BeginAttempt(HTM, 100)
	if tx.Priority() != 0 {
		t.Fatal("fresh attempt should have zero priority")
	}
	tx.InstsRetired = 42
	if tx.Priority() != 42 {
		t.Fatalf("priority = %d", tx.Priority())
	}
	tx.Mode = TL
	if tx.Priority() != priority.Max {
		t.Fatal("TL must have max priority")
	}
	tx.Mode = STL
	if tx.Priority() != priority.Max {
		t.Fatal("STL must have max priority")
	}
	tx.Mode = NonTx
	if tx.Priority() != 0 {
		t.Fatal("non-tx priority must be 0")
	}
}

func TestTxStateDoomOnce(t *testing.T) {
	tx := &TxState{}
	tx.BeginAttempt(HTM, 0)
	tx.Doom(CauseMC)
	tx.Doom(CauseOverflow) // must not overwrite
	if tx.DoomCause != CauseMC {
		t.Fatalf("DoomCause = %v", tx.DoomCause)
	}
	tx.BeginAttempt(HTM, 10)
	if tx.Doomed || tx.DoomCause != CauseNone {
		t.Fatal("BeginAttempt must clear doom")
	}
	if tx.Attempt != 2 {
		t.Fatalf("Attempt = %d", tx.Attempt)
	}
	tx.Reset()
	if tx.Attempt != 0 || tx.Mode != NonTx || tx.TriedSwitch {
		t.Fatal("Reset incomplete")
	}
}

func TestTxStateProgressionPriority(t *testing.T) {
	tx := &TxState{Cfg: Config{Priority: priority.Progression{}}}
	tx.BeginAttempt(HTM, 0)
	tx.ReadLines, tx.WriteLines = 4, 3
	if tx.Priority() != 7 {
		t.Fatalf("progression priority = %d", tx.Priority())
	}
}
