package htm

import "repro/internal/mem"

// Arbiter is the centralized LLC-side authority for HTMLock mode. It
// guarantees that at most one transaction is in HTMLock mode (TL or STL)
// at any time (paper §III-C stipulation 2), owns the overflow signatures
// OfRdSig/OfWrSig (paper §III-B, Fig. 5), and remembers which cores were
// rejected because of a signature hit so they can be woken when the lock
// transaction finishes.
//
// The paper places this serialization point in the LLC; with a distributed
// LLC it becomes "a lightweight centralized arbiter module". The coherence
// layer models the message round-trip; this type models the decision.
//lockiller:shared-state
type Arbiter struct {
	holder     int // core ID of the current HTMLock-mode transaction, -1 if none
	holderMode Mode
	waiting    []waiter // TL applicants queued behind an active STL

	// OfRd and OfWr hold the lock transaction's L1-overflowed read and
	// write sets.
	OfRd, OfWr *Signature

	// wake accumulates cores whose requests were rejected by a signature
	// hit; they are woken on Release. A WakeSet (not a map) so that the
	// wake-up order is ascending core ID: wake-ups send messages, message
	// order assigns event sequence numbers, and map iteration order would
	// leak scheduler randomness into the replay.
	wake WakeSet
	// SendWake is installed by the coherence layer to deliver wake-up
	// messages; nil is allowed in unit tests.
	SendWake func(core int)

	// Stats.
	Grants, Denies, QueuedGrants uint64
}

type waiter struct {
	core  int
	grant func()
}

// NewArbiter creates an arbiter with signatures of the given size.
func NewArbiter(signatureBits int) *Arbiter {
	return &Arbiter{
		holder: -1,
		OfRd:   NewSignature(signatureBits),
		OfWr:   NewSignature(signatureBits),
	}
}

// Reset returns the arbiter to its just-constructed state in place:
// signatures flash-cleared, wake table emptied, no holder, no waiters, stats
// zeroed. SendWake is kept — it is construction wiring (a closure over the
// owning coherence system), not run state.
func (a *Arbiter) Reset() {
	a.holder = -1
	a.holderMode = NonTx
	a.waiting = a.waiting[:0]
	a.OfRd.Clear()
	a.OfWr.Clear()
	a.wake.Clear()
	a.Grants, a.Denies, a.QueuedGrants = 0, 0, 0
}

// Holder returns the core currently authorized for HTMLock mode, or -1.
func (a *Arbiter) Holder() int { return a.holder }

// HolderMode returns the mode of the current holder (TL or STL), or NonTx.
func (a *Arbiter) HolderMode() Mode {
	if a.holder < 0 {
		return NonTx
	}
	return a.holderMode
}

// ApplySTL is the switchingMode application: an HTM transaction asks to
// become an STL lock transaction without holding the fallback lock. The
// LLC's serialization makes the decision atomic: granted only if no one
// holds HTMLock mode and no TL applicant is queued.
func (a *Arbiter) ApplySTL(core int) bool {
	if a.holder >= 0 || len(a.waiting) > 0 {
		a.Denies++
		return false
	}
	a.holder = core
	a.holderMode = STL
	a.Grants++
	return true
}

// ApplyTL is the fallback path's application: the caller already holds the
// fallback lock (so at most one TL applicant exists at a time), but under
// switchingMode it must additionally wait out any active STL transaction.
// grant is invoked — possibly immediately — when authorization is given.
func (a *Arbiter) ApplyTL(core int, grant func()) {
	if a.holder < 0 {
		a.holder = core
		a.holderMode = TL
		a.Grants++
		grant()
		return
	}
	if a.holder == core {
		panic("htm: core re-applying for HTMLock mode it already holds")
	}
	a.waiting = append(a.waiting, waiter{core: core, grant: grant})
}

// RecordOverflow adds an L1-evicted transactional line of the current
// lock transaction to the appropriate signature(s).
func (a *Arbiter) RecordOverflow(core int, l mem.Line, read, write bool) {
	if core != a.holder {
		panic("htm: overflow recorded by non-holder")
	}
	if read {
		a.OfRd.Add(l)
	}
	if write {
		a.OfWr.Add(l)
	}
}

// SigConflict implements the LLC check of paper §III-B: a request conflicts
// with the overflowed write set always, and with the overflowed read set
// when it would obtain store permission — either an explicit write request
// or a read that would be granted an exclusive copy.
// requester==holder never conflicts (the lock transaction re-touching its
// own overflowed data).
func (a *Arbiter) SigConflict(requester int, l mem.Line, write, wouldBeExclusive bool) bool {
	if a.holder < 0 || requester == a.holder {
		return false
	}
	if a.OfWr.MayContain(l) {
		return true
	}
	if (write || wouldBeExclusive) && a.OfRd.MayContain(l) {
		return true
	}
	return false
}

// NoteRejected records a core rejected by a signature hit for wake-up when
// the lock transaction ends.
func (a *Arbiter) NoteRejected(core int) { a.wake.Add(core) }

// Release ends the holder's HTMLock mode: signatures are flash-cleared,
// rejected cores are woken, and a queued TL applicant (if any) is granted.
func (a *Arbiter) Release(core int) {
	if core != a.holder {
		panic("htm: release by non-holder")
	}
	a.holder = -1
	a.holderMode = NonTx
	a.OfRd.Clear()
	a.OfWr.Clear()
	a.wake.Drain(func(c int) {
		if a.SendWake != nil {
			a.SendWake(c)
		}
	})
	if len(a.waiting) > 0 {
		w := a.waiting[0]
		a.waiting = a.waiting[1:]
		a.holder = w.core
		a.holderMode = TL
		a.Grants++
		a.QueuedGrants++
		w.grant()
	}
}
