package htm

import "repro/internal/priority"

// TxState is the per-hardware-thread transactional state shared between
// the core model (which retires instructions and begins/ends transactions)
// and the L1 controller (which detects conflicts and computes priorities).
type TxState struct {
	Core int
	Cfg  Config

	// Mode is the current execution mode.
	Mode Mode
	// Attempt counts execution attempts of the current atomic section
	// (1 = first try).
	Attempt int
	// InstsRetired counts instructions retired in the current attempt;
	// it feeds the insts-based priority policy and resets on abort.
	InstsRetired uint64
	// TriedSwitch marks that this transaction already attempted a
	// switchingMode application (each transaction may try once).
	TriedSwitch bool
	// Doomed marks a transaction that has been aborted asynchronously (by
	// an external conflict) but whose core has not yet rolled back.
	Doomed bool
	// DoomCause records why the transaction was doomed.
	DoomCause AbortCause

	// Statistics for the current attempt, used by the stats package.
	AttemptStart uint64

	// readSet/writeSet sizes are tracked by the L1 array; the controller
	// mirrors the counts here so the progression policy can use them
	// without scanning the array. Overflowed (signature) lines count too.
	ReadLines  int
	WriteLines int
}

// Priority returns the transaction's current arbitration priority. Lock
// transactions (TL/STL) always carry the global maximum (paper §III-B:
// "setting the priority of the transaction currently in HTMLock mode to
// the highest global priority").
func (t *TxState) Priority() uint64 {
	if t.Mode.Lock() {
		return priority.Max
	}
	if t.Mode != HTM {
		return 0
	}
	if t.Cfg.Priority == nil {
		return 0
	}
	return t.Cfg.Priority.Priority(t.InstsRetired, t.ReadLines, t.WriteLines)
}

// InTx reports whether the thread is inside any kind of tracked
// transaction (HTM, TL, or STL).
func (t *TxState) InTx() bool { return t.Mode == HTM || t.Mode.Lock() }

// BeginAttempt resets per-attempt counters when a speculative attempt (or
// a lock-mode execution) starts.
func (t *TxState) BeginAttempt(mode Mode, now uint64) {
	t.Mode = mode
	t.Attempt++
	t.InstsRetired = 0
	t.Doomed = false
	t.DoomCause = CauseNone
	t.AttemptStart = now
	t.ReadLines = 0
	t.WriteLines = 0
}

// Reset clears all state when an atomic section completes.
func (t *TxState) Reset() {
	t.Mode = NonTx
	t.Attempt = 0
	t.InstsRetired = 0
	t.TriedSwitch = false
	t.Doomed = false
	t.DoomCause = CauseNone
	t.ReadLines = 0
	t.WriteLines = 0
}

// ResetHard is Reset plus the per-attempt timestamp, returning the state to
// its just-constructed zero (machine reset between runs). Core and Cfg are
// construction wiring and survive.
func (t *TxState) ResetHard() {
	t.Reset()
	t.AttemptStart = 0
}

// Doom marks the transaction for abort with the given cause; the first
// cause wins (later dooms of an already-doomed transaction are ignored, as
// in hardware where the abort status register is write-once per attempt).
func (t *TxState) Doom(cause AbortCause) {
	if t.Doomed {
		return
	}
	t.Doomed = true
	t.DoomCause = cause
}
