// Package htm holds the transactional-memory state machines and policy
// objects shared by the L1/LLC coherence controllers and the core model:
// transaction modes (HTM / TL / STL), the abort-cause taxonomy used by the
// paper's Fig. 10, the reject-handling policies of the recovery mechanism,
// the LLC overflow signatures of the HTMLock mechanism, and the centralized
// LLC arbiter that serializes HTMLock-mode entry under switchingMode.
package htm

import (
	"fmt"

	"repro/internal/priority"
)

// Mode is the execution mode of a hardware thread with respect to the
// transactional machinery.
type Mode uint8

const (
	// NonTx: not inside any atomic section.
	NonTx Mode = iota
	// HTM: inside a speculative best-effort HTM transaction.
	HTM
	// TL (Transactional Lock): inside an HTMLock-mode lock transaction
	// entered the normal way — fallback lock held, hlbegin executed.
	TL
	// STL (Switched Transactional Lock): inside an HTMLock-mode lock
	// transaction entered by proactively switching from HTM mode
	// (switchingMode mechanism); the fallback lock is NOT held.
	STL
	// Mutex: inside a critical section protected by a plain lock with no
	// transactional tracking (the baseline fallback path, and CGL).
	Mutex
)

// Lock reports whether the mode is an irrevocable HTMLock-mode lock
// transaction (TL or STL).
func (m Mode) Lock() bool { return m == TL || m == STL }

// Speculative reports whether the mode can be rolled back.
func (m Mode) Speculative() bool { return m == HTM }

func (m Mode) String() string {
	switch m {
	case NonTx:
		return "non-tx"
	case HTM:
		return "htm"
	case TL:
		return "TL"
	case STL:
		return "STL"
	case Mutex:
		return "mutex"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// AbortCause classifies why a transaction aborted — the six categories of
// the paper's Fig. 10.
type AbortCause uint8

const (
	// CauseNone marks "no abort".
	CauseNone AbortCause = iota
	// CauseMC: conflict with another HTM transaction ("mc").
	CauseMC
	// CauseLock: conflict with an HTMLock-mode lock transaction ("lock").
	CauseLock
	// CauseMutex: killed by fallback-lock acquisition — either the
	// subscribed lock line was written or the lock was observed held at
	// xbegin ("mutex").
	CauseMutex
	// CauseNonTx: conflict with a plain non-transactional access
	// ("non_tran").
	CauseNonTx
	// CauseOverflow: transactional read/write set overflowed the L1 ("of").
	CauseOverflow
	// CauseFault: exception inside the transaction ("fault").
	CauseFault
	numCauses
)

// NumCauses is the number of distinct abort causes (excluding CauseNone).
const NumCauses = int(numCauses) - 1

func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseMC:
		return "mc"
	case CauseLock:
		return "lock"
	case CauseMutex:
		return "mutex"
	case CauseNonTx:
		return "non_tran"
	case CauseOverflow:
		return "of"
	case CauseFault:
		return "fault"
	}
	return fmt.Sprintf("AbortCause(%d)", uint8(c))
}

// RejectPolicy selects what a requester does when the recovery mechanism
// rejects one of its requests (paper §III-A "wake up rejected requests":
// abort directly, pause for a fixed period before retrying, or wait for a
// wake-up before retrying). These are the -RAI / -RRI / -RWI rows of
// Table II.
type RejectPolicy uint8

const (
	// SelfAbort: the rejected transaction aborts itself immediately (RAI).
	SelfAbort RejectPolicy = iota
	// RetryLater: hold the request and retry after a fixed backoff (RRI).
	RetryLater
	// WaitWakeup: hold the request until the rejecting core commits or
	// aborts and sends a wake-up (RWI). A timeout still guards against
	// lost wake-ups.
	WaitWakeup
)

func (p RejectPolicy) String() string {
	switch p {
	case SelfAbort:
		return "self-abort"
	case RetryLater:
		return "retry-later"
	case WaitWakeup:
		return "wait-wakeup"
	}
	return fmt.Sprintf("RejectPolicy(%d)", uint8(p))
}

// Config enables/disables the three LockillerTM mechanisms and their
// policies; each Table II system is one Config (see harness.Systems).
type Config struct {
	// Recovery enables the NACK/reject recovery mechanism. Without it the
	// system is plain requester-win best-effort HTM.
	Recovery bool
	// RejectPolicy applies when Recovery is on.
	RejectPolicy RejectPolicy
	// Priority is the transaction priority policy (nil means every
	// transaction has priority zero, i.e. ties broken by core ID only).
	Priority priority.Policy
	// HTMLock enables the HTMLock mechanism: the fallback path runs as a
	// TL lock transaction that coexists with HTM transactions, and HTM
	// transactions do not subscribe to the fallback lock.
	HTMLock bool
	// SwitchingMode enables proactive switching to STL mode on capacity
	// overflow. Requires HTMLock.
	SwitchingMode bool
	// Losa enables the LosaTM-SAFU conflict manager instead of the
	// Lockiller recovery mechanism (mutually exclusive with Recovery).
	Losa bool
	// MaxRetries is the retry budget before a transaction takes the
	// fallback path (Listing 1's TME_MAX_RETRIES).
	MaxRetries int
	// RejectTimeout bounds how long a parked request waits for a wake-up
	// before retrying anyway (guards against lost wake-ups). Cycles.
	RejectTimeout uint64
	// RetryBackoff is the fixed pause of the RetryLater policy. Cycles.
	RetryBackoff uint64
	// AbortBackoffBase scales the randomized exponential backoff inserted
	// between an abort and the re-execution. Cycles.
	AbortBackoffBase uint64
	// RollbackPenalty is the pipeline-flush + register-restore cost charged
	// on every abort. Cycles.
	RollbackPenalty uint64
	// SignatureBits sizes the LLC overflow signatures (OfRdSig/OfWrSig).
	SignatureBits int

	// Conflict and Overflow are the composed policy objects the coherence
	// controllers consult (see policy.go). Defaults() fills them from the
	// flag fields above when nil, so each Table II row is a composition of
	// policies; set them explicitly to run a custom composition.
	Conflict ConflictPolicy
	Overflow OverflowPolicy
}

// Validate panics on inconsistent configurations; it is called by the
// harness when systems are constructed so mistakes fail fast.
func (c Config) Validate() {
	if c.SwitchingMode && !c.HTMLock {
		panic("htm: SwitchingMode requires HTMLock")
	}
	if c.Losa && c.Recovery {
		panic("htm: Losa and Recovery are mutually exclusive")
	}
	if c.MaxRetries <= 0 {
		panic("htm: MaxRetries must be positive")
	}
	if c.HTMLock && c.SignatureBits <= 0 {
		panic("htm: HTMLock requires SignatureBits > 0")
	}
	if c.Conflict == nil || c.Overflow == nil {
		panic("htm: Config used without Defaults (no conflict/overflow policy composed)")
	}
	if _, ok := c.Overflow.(SwitchOverflow); ok && !c.HTMLock {
		panic("htm: SwitchOverflow requires HTMLock")
	}
}

// Defaults fills zero-valued tuning knobs with sensible values and returns
// the config.
func (c Config) Defaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	if c.RejectTimeout == 0 {
		c.RejectTimeout = 20_000
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 200
	}
	if c.AbortBackoffBase == 0 {
		c.AbortBackoffBase = 64
	}
	if c.RollbackPenalty == 0 {
		c.RollbackPenalty = 40
	}
	if c.SignatureBits == 0 {
		c.SignatureBits = 2048
	}
	// Compose the policy objects from the legacy flags (after the numeric
	// knobs above are final, since the policies capture them by value).
	if c.Conflict == nil {
		switch {
		case c.Recovery:
			c.Conflict = Recovery{Policy: c.RejectPolicy, Backoff: c.RetryBackoff, Timeout: c.RejectTimeout}
		case c.Losa:
			c.Conflict = Losa{Timeout: c.RejectTimeout}
		default:
			c.Conflict = RequesterWins{Timeout: c.RejectTimeout}
		}
	}
	if c.Overflow == nil {
		if c.SwitchingMode {
			c.Overflow = SwitchOverflow{}
		} else {
			c.Overflow = AbortOverflow{}
		}
	}
	return c
}

// ConflictArbitration reports whether the recovery-style conflict manager
// is active (either Lockiller recovery or LosaTM); when false the system
// resolves every conflict requester-win.
func (c Config) ConflictArbitration() bool { return c.Recovery || c.Losa }
