package htm

import "repro/internal/priority"

// This file defines the two policy seams PR 3 pulled out of the coherence
// controllers' case arms, following FORTH's limited-set HTM observation that
// conflict handling can be layered on an unmodified coherence protocol:
//
//   - ConflictPolicy: what a transactional owner does with a conflicting
//     request (reject or yield) and what a rejected requester does with the
//     reject (self-abort, timed retry, wait for a wake-up) — the recovery
//     mechanism of paper §III-A and the -RAI/-RRI/-RWI rows of Table II;
//   - OverflowPolicy: what a transaction does when its read/write set
//     overflows the L1 (abort, spill into the LLC signatures, or switch to
//     STL mode) — the HTMLock and switchingMode mechanisms of §III-B/C.
//
// Each Table II SystemDef row is now a composition of one value of each
// interface (plus the priority.Policy it already carried); Config.Defaults
// performs the composition from the legacy flag fields so existing
// configurations keep working unchanged.
//
// The universal arbitration rules are NOT policy and stay in the coherence
// controllers: an irrevocable lock transaction (TL/STL) always wins, and a
// non-speculative requester (NonTx/Mutex) always defeats a speculative
// owner — best-effort HTM's strong isolation. Policies only decide the
// speculative-vs-speculative cases.

// ConflictSide describes one party of a conflict: its execution mode, its
// piggybacked priority (the recovery mechanism's user-defined request
// data), and its core ID (the deterministic tie-breaker).
type ConflictSide struct {
	Mode Mode
	Prio uint64
	Core int
}

// RejectedDecision tells a rejected requester what to do: abort the
// transaction, or hold the request parked in its MSHR and retry after
// Timeout cycles (an earlier wake-up retries sooner).
type RejectedDecision struct {
	Abort   bool
	Timeout uint64
}

// ConflictPolicy decides conflicts between speculative transactions and the
// fate of rejected requests.
type ConflictPolicy interface {
	// Name identifies the policy in docs and Table II renderings.
	Name() string
	// OwnerWins arbitrates a speculative owner against a speculative
	// requester (Fig. 4's green logic). The universal rules (lock wins,
	// non-speculative wins) are applied by the caller first.
	OwnerWins(owner, req ConflictSide) bool
	// Rejected returns what a requester in mode does when its request
	// comes back rejected.
	Rejected(mode Mode) RejectedDecision
	// RejectorCause classifies the abort cause when a rejected HTM
	// transaction gives up, from the rejector's mode. The fallback-lock
	// special case (CauseMutex) is handled by the caller, which knows the
	// lock's address.
	RejectorCause(rejector Mode) AbortCause
	// ArbDelay is the extra arbitration latency (cycles) the owner's cache
	// controller pays before sending a reject.
	ArbDelay() uint64
	// RecordsWake reports whether a rejected requester in mode will park
	// awaiting a wake-up, i.e. whether the rejector must record it in the
	// wake-up table (paper Fig. 2 (8)).
	RecordsWake(mode Mode) bool
}

// RequesterWins is the no-arbitration baseline: a speculative owner never
// rejects, so every conflict aborts the owner. Rejections can still reach a
// requester (LLC signature hits under HTMLock); they park with a timeout.
type RequesterWins struct {
	// Timeout bounds how long a rejected request parks before retrying.
	Timeout uint64
}

func (RequesterWins) Name() string                        { return "requester-win" }
func (RequesterWins) OwnerWins(_, _ ConflictSide) bool    { return false }
func (p RequesterWins) Rejected(Mode) RejectedDecision    { return RejectedDecision{Timeout: p.Timeout} }
func (RequesterWins) RejectorCause(r Mode) AbortCause     { return CauseFor(r) }
func (RequesterWins) ArbDelay() uint64                    { return 0 }
func (RequesterWins) RecordsWake(mode Mode) bool          { return mode != HTM }

// Recovery is the Lockiller recovery mechanism (§III-A): priority-arbitrated
// rejection of toxic requests with one of the three rejected-request
// policies. One value per -RAI/-RRI/-RWI Table II row.
type Recovery struct {
	Policy RejectPolicy
	// Backoff is the fixed pause of the RetryLater policy; Timeout guards
	// WaitWakeup parks (and all non-HTM parks) against lost wake-ups.
	Backoff, Timeout uint64
}

func (r Recovery) Name() string { return "recovery/" + r.Policy.String() }

func (Recovery) OwnerWins(owner, req ConflictSide) bool {
	return priority.Wins(owner.Prio, owner.Core, req.Prio, req.Core)
}

func (r Recovery) Rejected(mode Mode) RejectedDecision {
	if mode == HTM {
		switch r.Policy {
		case SelfAbort:
			return RejectedDecision{Abort: true}
		case RetryLater:
			return RejectedDecision{Timeout: r.Backoff}
		case WaitWakeup:
			return RejectedDecision{Timeout: r.Timeout}
		}
	}
	// Plain, mutex-mode, and lock-mode requesters always hold and retry:
	// they have no transaction to abort. (A lock transaction is never
	// rejected — it carries the maximum priority — but a signature race
	// during its entry resolves here too.)
	return RejectedDecision{Timeout: r.Timeout}
}

func (Recovery) RejectorCause(r Mode) AbortCause { return CauseFor(r) }
func (Recovery) ArbDelay() uint64                { return 0 }

func (r Recovery) RecordsWake(mode Mode) bool {
	// Only WaitWakeup parks an HTM requester until a wake-up; under the
	// other policies recording it would be dead weight. Non-HTM requesters
	// always park and always benefit from an early wake.
	return mode != HTM || r.Policy == WaitWakeup
}

// Losa is the LosaTM-SAFU conflict manager: wait-wakeup rejection under
// progression-based priority, with the extra arbitration cycle its paper
// charges the cache controller in exceptional cases.
type Losa struct {
	Timeout uint64
}

func (Losa) Name() string { return "losa-safu" }

func (Losa) OwnerWins(owner, req ConflictSide) bool {
	return priority.Wins(owner.Prio, owner.Core, req.Prio, req.Core)
}

func (p Losa) Rejected(Mode) RejectedDecision { return RejectedDecision{Timeout: p.Timeout} }
func (Losa) RejectorCause(r Mode) AbortCause  { return CauseFor(r) }
func (Losa) ArbDelay() uint64                 { return 1 }
func (Losa) RecordsWake(Mode) bool            { return true }

// CauseFor maps the mode of a winning requester (or rejector) to the abort
// cause recorded by the defeated transaction — the paper's Fig. 10
// taxonomy. Kept here so every ConflictPolicy shares one classification.
func CauseFor(winner Mode) AbortCause {
	switch winner {
	case HTM:
		return CauseMC
	case TL, STL:
		return CauseLock
	case Mutex:
		return CauseMutex
	default:
		return CauseNonTx
	}
}

// --- overflow -------------------------------------------------------------

// OverflowDecision is what a transaction does when its footprint no longer
// fits in the private cache hierarchy.
type OverflowDecision uint8

const (
	// OverflowAbort rolls the transaction back with a capacity cause.
	OverflowAbort OverflowDecision = iota
	// OverflowSpill evicts the line into the LLC overflow signatures
	// (paper Fig. 5 (2)); only irrevocable lock transactions may spill.
	OverflowSpill
	// OverflowSwitch revokes the request and applies to the LLC arbiter
	// for STL authorization (switchingMode, Fig. 6).
	OverflowSwitch
)

// OverflowPolicy decides capacity-overflow handling.
type OverflowPolicy interface {
	// Name identifies the policy in docs and Table II renderings.
	Name() string
	// Decide returns the overflow action for a transaction in mode.
	// triedSwitch reports a previous switchingMode application this
	// attempt; external marks overflows forced from outside (an LLC
	// back-invalidation recall) rather than by the L1's own allocation —
	// switchingMode only fires on the latter (§III-C: switch on capacity
	// overflow, not on recalls or faults).
	Decide(mode Mode, triedSwitch, external bool) OverflowDecision
}

// AbortOverflow is plain best-effort behaviour: lock transactions spill
// into the signatures (they are irrevocable), everything else aborts.
type AbortOverflow struct{}

func (AbortOverflow) Name() string { return "abort" }

func (AbortOverflow) Decide(mode Mode, _, _ bool) OverflowDecision {
	if mode.Lock() {
		return OverflowSpill
	}
	return OverflowAbort
}

// SwitchOverflow is the switchingMode mechanism: an HTM transaction's first
// own-allocation overflow applies for STL authorization instead of
// aborting.
type SwitchOverflow struct{}

func (SwitchOverflow) Name() string { return "switching-mode" }

func (SwitchOverflow) Decide(mode Mode, triedSwitch, external bool) OverflowDecision {
	if mode.Lock() {
		return OverflowSpill
	}
	if mode == HTM && !triedSwitch && !external {
		return OverflowSwitch
	}
	return OverflowAbort
}
