// Package priority implements the user-defined transaction priority
// policies the recovery mechanism arbitrates with (paper §III-A).
//
// A priority is a uint64 carried on coherence requests (the paper encodes
// it in the ARUSER field of the ACE AR channel). Higher value wins; ties
// are broken by smaller core ID, so the ordering is a total order and at
// least one transaction in any conflict cluster always makes progress.
package priority

// Max is the global maximum priority, reserved for lock transactions in
// HTMLock mode (TL/STL): they are irrevocable, so they must win every
// conflict.
const Max = ^uint64(0)

// Policy computes a transaction's current priority from its progress
// counters.
type Policy interface {
	// Priority returns the current priority of a transaction that has
	// retired insts instructions in its current attempt and has the given
	// read/write set sizes (in lines).
	Priority(insts uint64, readSet, writeSet int) uint64
	// Name identifies the policy in configs and reports.
	Name() string
}

// InstsBased is the paper's committed-instructions policy: priority equals
// the number of instructions retired in the current attempt. A defeated
// transaction restarts at zero — the lowest priority — which is exactly
// what kills friendly-fire: the previous victim cannot immediately defeat
// the transaction that beat it.
type InstsBased struct{}

func (InstsBased) Priority(insts uint64, _, _ int) uint64 { return insts }
func (InstsBased) Name() string                           { return "insts-based" }

// Progression is the LosaTM-style progression-based policy: priority is
// the transaction's footprint (read-set + write-set size). The paper argues
// insts-based is more representative; we implement both for the comparison
// and the ablation.
type Progression struct{}

func (Progression) Priority(_ uint64, r, w int) uint64 { return uint64(r + w) }
func (Progression) Name() string                       { return "progression" }

// Static assigns a fixed priority, set before the transaction executes and
// unchanged while it runs (the paper discusses this option and its
// difficulty: choosing a reasonable value is hard).
type Static struct{ Value uint64 }

func (s Static) Priority(_ uint64, _, _ int) uint64 { return s.Value }
func (Static) Name() string                         { return "static" }

// Wins reports whether a transaction with priority p on core c defeats a
// transaction with priority q on core d. Equal priorities fall back to
// smaller-core-ID-wins (paper §III-A, Fig. 4).
func Wins(p uint64, c int, q uint64, d int) bool {
	if p != q {
		return p > q
	}
	return c < d
}
