package priority

import (
	"testing"
	"testing/quick"
)

func TestWinsTotalOrder(t *testing.T) {
	// Antisymmetry: for distinct (p,c) vs (q,d) pairs exactly one wins.
	if err := quick.Check(func(p, q uint64, c8, d8 uint8) bool {
		c, d := int(c8)%32, int(d8)%32
		if p == q && c == d {
			return true // same transaction; not meaningful
		}
		return Wins(p, c, q, d) != Wins(q, d, p, c)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWinsHigherPriority(t *testing.T) {
	if !Wins(10, 5, 3, 0) {
		t.Fatal("higher priority must win regardless of core ID")
	}
	if Wins(3, 0, 10, 5) {
		t.Fatal("lower priority must lose")
	}
}

func TestWinsTieBreak(t *testing.T) {
	if !Wins(7, 2, 7, 9) {
		t.Fatal("tie must go to smaller core ID")
	}
	if Wins(7, 9, 7, 2) {
		t.Fatal("larger core ID must lose ties")
	}
}

func TestMaxBeatsEverything(t *testing.T) {
	if err := quick.Check(func(p uint64, c8 uint8) bool {
		if p == Max {
			return true
		}
		return Wins(Max, 31, p, int(c8)%32)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicies(t *testing.T) {
	var ib InstsBased
	if ib.Priority(123, 9, 9) != 123 {
		t.Fatal("insts-based must return retired insts")
	}
	var pr Progression
	if pr.Priority(123, 4, 6) != 10 {
		t.Fatal("progression must return footprint")
	}
	st := Static{Value: 55}
	if st.Priority(0, 0, 0) != 55 || st.Priority(999, 9, 9) != 55 {
		t.Fatal("static must be constant")
	}
	for _, p := range []Policy{ib, pr, st} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestInstsBasedRestartsLow(t *testing.T) {
	// The friendly-fire property: a restarted tx (0 insts) loses to any
	// tx that has made progress.
	var ib InstsBased
	if Wins(ib.Priority(0, 0, 0), 0, ib.Priority(1, 0, 0), 1) {
		t.Fatal("fresh restart must lose to in-progress tx")
	}
}
