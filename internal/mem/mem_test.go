package mem

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	if err := quick.Check(func(addr uint64) bool {
		l := LineOf(addr)
		return l.Addr() <= addr && addr-l.Addr() < LineBytes
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankInterleave(t *testing.T) {
	counts := make([]int, 32)
	for i := 0; i < 32*100; i++ {
		counts[Line(i).Bank(32)]++
	}
	for b, c := range counts {
		if c != 100 {
			t.Fatalf("bank %d got %d lines, want 100", b, c)
		}
	}
}

func TestRegionPickContains(t *testing.T) {
	r := Region{Base: 100, N: 10}
	for i := 0; i < 50; i++ {
		l := r.Pick(i)
		if !r.Contains(l) {
			t.Fatalf("Pick(%d) = %d outside region", i, l)
		}
	}
	if r.Contains(99) || r.Contains(110) {
		t.Fatal("Contains accepted out-of-range line")
	}
	if !r.Contains(100) || !r.Contains(109) {
		t.Fatal("Contains rejected boundary lines")
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	a := NewLayout()
	var regions []Region
	for i := 1; i <= 20; i++ {
		regions = append(regions, a.Alloc(i*7))
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			ri, rj := regions[i], regions[j]
			if ri.Base < rj.Base+Line(rj.N) && rj.Base < ri.Base+Line(ri.N) {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, ri, rj)
			}
		}
	}
}

func TestLayoutPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout().Alloc(0)
}
