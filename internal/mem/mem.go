// Package mem defines the physical address model shared by the cache
// hierarchy, the coherence protocol, and the workload generators: 64-byte
// cache lines identified by their line number, interleaved across the LLC
// banks of the tiled CMP.
package mem

// LineBytes is the cache line size used throughout the modeled machine
// (Table I of the paper).
const LineBytes = 64

// Line identifies a 64-byte cache line by its line number (address >> 6).
type Line uint64

// LineOf converts a byte address into its line number.
func LineOf(addr uint64) Line { return Line(addr >> 6) }

// Addr returns the first byte address of the line.
func (l Line) Addr() uint64 { return uint64(l) << 6 }

// Bank returns the home LLC bank for the line under line interleaving.
func (l Line) Bank(banks int) int { return int(uint64(l) % uint64(banks)) }

// Region is a contiguous range of lines used by workload generators to
// carve the simulated address space into private, shared, and hot areas.
type Region struct {
	Base Line
	N    int
}

// Pick returns the i'th line of the region (i is taken modulo the size so
// generators can index with raw random values).
func (r Region) Pick(i int) Line {
	if uint(i) < uint(r.N) {
		// In-range index (every caller that draws via Intn): skip the
		// hardware divide, which dominated program-construction profiles.
		return r.Base + Line(i)
	}
	if r.N <= 0 {
		panic("mem: Pick on empty region")
	}
	return r.Base + Line(i%r.N)
}

// Contains reports whether the line falls inside the region.
func (r Region) Contains(l Line) bool {
	return l >= r.Base && l < r.Base+Line(r.N)
}

// Layout allocates non-overlapping regions from a growing line cursor. It
// lets each workload build its address map without hard-coded constants
// colliding between regions.
type Layout struct{ next Line }

// NewLayout starts allocating at a non-zero base so line 0 (used by the
// fallback lock in some configurations) stays reserved.
func NewLayout() *Layout { return &Layout{next: 1 << 20} }

// Alloc reserves n lines and returns the region. To spread regions across
// LLC banks and cache sets, consecutive allocations are padded to distinct
// 4KiB-aligned boundaries.
func (a *Layout) Alloc(n int) Region {
	if n <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	r := Region{Base: a.next, N: n}
	a.next += Line(n)
	// Round up to a 64-line boundary to keep regions from sharing sets in
	// pathological ways.
	if rem := uint64(a.next) % 64; rem != 0 {
		a.next += Line(64 - rem)
	}
	return r
}
