// Package noc is an evtalloc fixture: closure-literal scheduling in a hot
// package must be flagged. Engine mirrors sim.Engine's scheduling surface
// (fixtures are self-contained).
package noc

// Engine stands in for sim.Engine.
type Engine struct{}

func (e *Engine) At(t uint64, fn func())    {}
func (e *Engine) After(d uint64, fn func()) {}

// Handler mirrors sim.Handler.
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

func (e *Engine) AtEvent(t uint64, h Handler, kind uint8, a uint64, p any)    {}
func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {}

type link struct {
	engine *Engine
	busy   uint64
}

// deliverLater allocates one closure per flit: regression.
func (l *link) deliverLater(cycle uint64, flit uint64) {
	l.engine.At(cycle, func() { // want `closure literal passed to Engine\.At in hot package "noc"`
		l.busy = flit
	})
}

// retryLater allocates a capture cell for d as well.
func (l *link) retryLater(d uint64) {
	l.engine.After(d, func() { // want `closure literal passed to Engine\.After in hot package "noc"`
		l.busy = 0
	})
}
