// Package noc is an evtalloc fixture: all the scheduling below is
// allocation-free in steady state (or waived) and must NOT be flagged.
package noc

// Engine stands in for sim.Engine.
type Engine struct{}

func (e *Engine) At(t uint64, fn func())    {}
func (e *Engine) After(d uint64, fn func()) {}

// Handler mirrors sim.Handler.
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

func (e *Engine) AtEvent(t uint64, h Handler, kind uint8, a uint64, p any)    {}
func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {}

type router struct {
	engine  *Engine
	deliver func() // prebound once at construction
}

const evFlit uint8 = 0

func (r *router) OnEvent(kind uint8, a uint64, p any) {}

// typedEvent is the sanctioned hot-path API: payload words, no closure.
func (r *router) typedEvent(cycle uint64, flit uint64) {
	r.engine.AtEvent(cycle, r, evFlit, flit, nil)
}

// preboundClosure reuses a closure built once at setup.
func (r *router) preboundClosure(cycle uint64) {
	r.engine.At(cycle, r.deliver)
}

// waivedColdPath documents why the allocation is acceptable.
func (r *router) waivedColdPath(d uint64) {
	//lockiller:alloc-ok fires once per simulation at teardown
	r.engine.After(d, func() {
		r.deliver()
	})
}
