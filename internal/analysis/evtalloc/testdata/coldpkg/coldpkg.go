// Package plot is an evtalloc fixture: closure-literal scheduling outside
// the hot set is accepted without a waiver.
package plot

// Engine stands in for sim.Engine.
type Engine struct{}

func (e *Engine) After(d uint64, fn func()) {}

func renderLater(e *Engine, done func()) {
	e.After(100, func() {
		done()
	})
}
