package evtalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/evtalloc"
)

func TestEvtAlloc(t *testing.T) {
	analysistest.RunFixtures(t, evtalloc.Analyzer, "testdata")
}
