package evtalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/evtalloc"
)

func TestEvtAlloc(t *testing.T) {
	analysistest.Run(t, evtalloc.Analyzer, "flagged", "clean", "coldpkg")
}
