// Package evtalloc flags closure-literal scheduling on the simulator's hot
// path: a func literal passed to sim.Engine.At or sim.Engine.After allocates
// one closure (and usually a capture cell) per event. PR 1 added the typed
// zero-alloc API — AtEvent/AfterEvent dispatch to a Handler with two unboxed
// payload words — and converting the hot-path call sites cut the full-sim
// allocation rate 11x, so new closure literals in hot packages are
// regressions.
//
// Only literals are flagged: passing a prebound closure variable (built once
// at setup, reused per event) is the other sanctioned zero-steady-state-
// allocation pattern. Cold paths that genuinely need an ad-hoc closure are
// waived with //lockiller:alloc-ok plus a justification.
package evtalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the evtalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "evtalloc",
	Doc:  "flags closure-literal Engine.At/After scheduling in hot packages; steer to AtEvent/AfterEvent",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPkg(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "At" && name != "After" {
				return true
			}
			if !isEngine(pass, sel.X) || len(call.Args) != 2 {
				return true
			}
			if _, lit := ast.Unparen(call.Args[1]).(*ast.FuncLit); !lit {
				return true
			}
			if pass.Waived(call, analysis.DirectiveAllocOK) {
				return true
			}
			pass.Reportf(call.Pos(),
				"closure literal passed to Engine.%s in hot package %q allocates per event; use Engine.%sEvent (typed zero-alloc API) or a prebound closure, or waive a cold path with //%s",
				name, pass.Pkg.Name(), name, analysis.DirectiveAllocOK)
			return true
		})
	}
	return nil
}

// isEngine reports whether e's type is (a pointer to) a named type called
// Engine — sim.Engine in the real tree, a local stand-in in fixtures.
func isEngine(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}
