// Package poolsafe enforces the ownership rules of the pooled protocol
// objects (coherence.Msg, mshr, pending): once a value flows into its
// release sink — System.free, L1.freeMshr, Bank.freePending, or a helper
// that forwards its parameter to one of those — the local variable holding
// it is dead. Reading or writing through it reads recycled state (the exact
// use-after-recycle MSHR bug class PR 1 fixed by hand), and releasing it
// again corrupts the free list.
//
// The pass is an intra-procedural, flow-sensitive dataflow over each
// function body: release sinks generate "freed" facts for the argument
// variable, reassignment kills them, and branches merge by union (freed on
// any path counts, except paths that terminate in return/break/continue).
// Sink summaries ride the shared interprocedural layer: a whole-program
// Facts entry (SinksFact), computed once over the analysis.CallGraph, maps
// each function to the parameter indices it transitively releases — a
// function whose body passes a parameter to a base sink, or to any already
// summarized sink, is itself a sink for that parameter (fixpoint), so a
// value "flowing through helpers before free" is tracked across packages
// and at any depth, not one level as the pre-Facts version did.
//
// A flagged flow that is provably safe can be waived with //lockiller:pool-ok
// plus a justification.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the poolsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags use-after-free and double-free of pooled protocol objects",
	Run:  run,
}

// baseSinks are the release entry points, matched by name: each frees its
// first argument.
var baseSinks = map[string]bool{
	"free": true, "freeMshr": true, "freePending": true,
}

func run(pass *analysis.Pass) error {
	helpers, err := SinkSummaries(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &flow{pass: pass, helpers: helpers}
			a.stmts(fd.Body.List, state{})
			// Each closure body is its own flow: it executes at an unknown
			// later time, so its frees must not leak into the enclosing
			// function, but within the closure the ownership rules hold.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.stmts(lit.Body.List, state{})
				}
				return true
			})
		}
	}
	return nil
}

// SinksFact is the Facts key under which the whole-program sink summaries
// live: a map[*types.Func][]int from each function to the sorted parameter
// indices it transitively releases.
const SinksFact = "poolsafe.sinks"

// SinkSummaries computes (once per run, via the Facts store) which functions
// release which of their parameters, walking the shared call graph to a
// fixpoint: the seed is the base sinks matched by name, and a function that
// passes parameter i into the freed slot of any known sink is itself a sink
// for i. Other analyzers can reuse the result through SinksFact.
func SinkSummaries(prog *analysis.Program) (map[*types.Func][]int, error) {
	v, err := prog.Fact(SinksFact, func(prog *analysis.Program) (any, error) {
		g, err := analysis.BuildCallGraph(prog)
		if err != nil {
			return nil, err
		}
		sums := make(map[*types.Func][]int)
		for changed := true; changed; {
			changed = false
			for _, n := range g.Nodes() {
				if n.Obj == nil || n.Decl == nil || n.Decl.Body == nil || baseSinks[n.Obj.Name()] {
					continue
				}
				params := make(map[types.Object]int)
				i := 0
				for _, field := range n.Decl.Type.Params.List {
					for _, name := range field.Names {
						if obj := n.Pkg.Info.Defs[name]; obj != nil {
							params[obj] = i
						}
						i++
					}
				}
				if len(params) == 0 {
					continue
				}
				freeSet := make(map[int]bool)
				for _, idx := range sums[n.Obj] {
					freeSet[idx] = true
				}
				ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, arg := range freedArgsOf(call, n.Pkg.Info, sums) {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if idx, ok := params[n.Pkg.Info.Uses[id]]; ok && !freeSet[idx] {
								freeSet[idx] = true
								changed = true
							}
						}
					}
					return true
				})
				if len(freeSet) > 0 {
					frees := make([]int, 0, len(freeSet))
					for idx := range freeSet {
						frees = append(frees, idx)
					}
					sort.Ints(frees)
					sums[n.Obj] = frees
				}
			}
		}
		return sums, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(map[*types.Func][]int), nil
}

func isBaseSink(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return baseSinks[fun.Sel.Name]
	case *ast.Ident:
		return baseSinks[fun.Name]
	}
	return false
}

// state maps a variable to the position where it was freed.
type state map[*types.Var]token.Pos

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// flow analyzes one function body.
type flow struct {
	pass    *analysis.Pass
	helpers map[*types.Func][]int
}

// stmts runs the statement list, threading the freed-state through.
// terminated reports that control cannot fall off the end of the list.
func (a *flow) stmts(list []ast.Stmt, st state) (out state, terminated bool) {
	for _, s := range list {
		st, terminated = a.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (a *flow) stmt(s ast.Stmt, st state) (state, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		a.checkExpr(x.X, st, s)
		a.applyFrees(x.X, st, s)
		return st, false
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			a.checkExpr(r, st, s)
			a.applyFrees(r, st, s)
		}
		for _, l := range x.Lhs {
			// Index/selector sub-expressions of the target are reads.
			switch lv := ast.Unparen(l).(type) {
			case *ast.Ident:
				// Reassignment kills the freed fact: the name is rebound.
				if obj, ok := a.pass.TypesInfo.ObjectOf(lv).(*types.Var); ok {
					delete(st, obj)
				}
			default:
				a.checkExpr(l, st, s)
			}
		}
		return st, false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						a.checkExpr(v, st, s)
						a.applyFrees(v, st, s)
					}
				}
			}
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			a.checkExpr(r, st, s)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; stop propagating.
		return st, true
	case *ast.BlockStmt:
		return a.stmts(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = a.stmt(x.Init, st)
		}
		a.checkExpr(x.Cond, st, s)
		thenSt, thenTerm := a.stmts(x.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if x.Else != nil {
			elseSt, elseTerm = a.stmt(x.Else, st.clone())
		}
		return mergeBranches(st, []state{thenSt, elseSt}, []bool{thenTerm, elseTerm}), thenTerm && elseTerm
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = a.stmt(x.Init, st)
		}
		if x.Cond != nil {
			a.checkExpr(x.Cond, st, s)
		}
		bodySt, bodyTerm := a.stmts(x.Body.List, st.clone())
		if x.Post != nil {
			a.stmt(x.Post, bodySt)
		}
		return mergeBranches(st, []state{bodySt}, []bool{bodyTerm}), false
	case *ast.RangeStmt:
		a.checkExpr(x.X, st, s)
		bodySt, bodyTerm := a.stmts(x.Body.List, st.clone())
		return mergeBranches(st, []state{bodySt}, []bool{bodyTerm}), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := x.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				st, _ = a.stmt(sw.Init, st)
			}
			if sw.Tag != nil {
				a.checkExpr(sw.Tag, st, s)
			}
			body = sw.Body
		} else {
			ts := x.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				st, _ = a.stmt(ts.Init, st)
			}
			body = ts.Body
		}
		var states []state
		var terms []bool
		allTerm, hasDefault := len(body.List) > 0, false
		for _, cc := range body.List {
			clause := cc.(*ast.CaseClause)
			if clause.List == nil {
				hasDefault = true
			}
			for _, e := range clause.List {
				a.checkExpr(e, st, s)
			}
			cs, ct := a.stmts(clause.Body, st.clone())
			states = append(states, cs)
			terms = append(terms, ct)
			allTerm = allTerm && ct
		}
		return mergeBranches(st, states, terms), allTerm && hasDefault
	case *ast.LabeledStmt:
		return a.stmt(x.Stmt, st)
	case *ast.DeferStmt:
		a.checkExpr(x.Call, st, s)
		return st, false
	case *ast.GoStmt:
		a.checkExpr(x.Call, st, s)
		return st, false
	case *ast.SendStmt:
		a.checkExpr(x.Chan, st, s)
		a.checkExpr(x.Value, st, s)
		return st, false
	case *ast.IncDecStmt:
		a.checkExpr(x.X, st, s)
		return st, false
	default:
		return st, false
	}
}

// mergeBranches unions the freed facts of every branch that can fall
// through, on top of the incoming state.
func mergeBranches(in state, branches []state, terminated []bool) state {
	out := in
	for i, b := range branches {
		if terminated[i] {
			continue
		}
		for v, pos := range b {
			if _, ok := out[v]; !ok {
				out[v] = pos
			}
		}
	}
	return out
}

// checkExpr reports reads of freed variables anywhere inside e, except the
// argument slot of the sink call that frees them (applyFrees handles the
// double-free case).
func (a *flow) checkExpr(e ast.Expr, st state, stmt ast.Stmt) {
	if e == nil || len(st) == 0 {
		return
	}
	freeingArgs := make(map[*ast.Ident]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range a.freedArgs(call) {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					freeingArgs[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || freeingArgs[id] {
			return true
		}
		v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if pos, freed := st[v]; freed {
			if !a.pass.Waived(stmt, analysis.DirectivePoolOK) {
				a.pass.Reportf(id.Pos(), "use of %s after it was freed at line %d: pooled objects must not be touched after release (see System.alloc ownership rules)",
					id.Name, a.pass.Fset.Position(pos).Line)
			}
		}
		return true
	})
}

// applyFrees marks variables freed by sink calls inside e, reporting double
// frees. Closure literals are skipped: their bodies run later and are
// analyzed as independent flows.
func (a *flow) applyFrees(e ast.Expr, st state, stmt ast.Stmt) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range a.freedArgs(call) {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			if pos, freed := st[v]; freed {
				if !a.pass.Waived(stmt, analysis.DirectivePoolOK) {
					a.pass.Reportf(id.Pos(), "double free of %s (first freed at line %d): the free list would hand it out twice",
						id.Name, a.pass.Fset.Position(pos).Line)
				}
				continue
			}
			st[v] = id.Pos()
		}
		return true
	})
}

// freedArgs returns the arguments a call releases: the first argument of a
// base sink, or the summarized parameter slots of a sink helper.
func (a *flow) freedArgs(call *ast.CallExpr) []ast.Expr {
	return freedArgsOf(call, a.pass.TypesInfo, a.helpers)
}

// freedArgsOf is the shared resolution used by both the flow analysis and
// the fixpoint that builds the summaries it consults.
func freedArgsOf(call *ast.CallExpr, info *types.Info, sums map[*types.Func][]int) []ast.Expr {
	if isBaseSink(call) {
		if len(call.Args) > 0 {
			return call.Args[:1]
		}
		return nil
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	frees := sums[fn]
	if frees == nil {
		// Generic instantiations summarize under their origin.
		frees = sums[fn.Origin()]
	}
	var args []ast.Expr
	for _, idx := range frees {
		if idx < len(call.Args) {
			args = append(args, call.Args[idx])
		}
	}
	return args
}
