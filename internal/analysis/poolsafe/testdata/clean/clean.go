// Package coherence is a poolsafe fixture: every flow below respects the
// ownership rules and must NOT be flagged.
package coherence

// Msg is a pooled protocol message.
type Msg struct {
	Line     uint64
	recycled bool
}

// System owns the message free list.
type System struct {
	msgFree []*Msg
}

func (s *System) alloc() *Msg {
	if n := len(s.msgFree); n > 0 {
		m := s.msgFree[n-1]
		s.msgFree = s.msgFree[:n-1]
		return m
	}
	return new(Msg)
}

func (s *System) free(m *Msg) {
	m.recycled = true
	s.msgFree = append(s.msgFree, m)
}

// inspect reads its argument but does not release it: callers keep
// ownership (no false helper summary).
func (s *System) inspect(m *Msg) uint64 {
	return m.Line
}

// useThenFree is the normal consume pattern: the free is the last touch.
func useThenFree(s *System) uint64 {
	m := s.alloc()
	line := m.Line
	s.free(m)
	return line
}

// reassigned rebinds the name to a fresh allocation after the free.
func reassigned(s *System) uint64 {
	m := s.alloc()
	s.free(m)
	m = s.alloc()
	return m.Line
}

// terminatedBranch frees only on a path that returns: the fall-through
// still owns the message.
func terminatedBranch(s *System, drop bool) uint64 {
	m := s.alloc()
	if drop {
		s.free(m)
		return 0
	}
	line := m.Line
	s.free(m)
	return line
}

// helperKeepsOwnership passes through a non-freeing helper and continues.
func helperKeepsOwnership(s *System) uint64 {
	m := s.alloc()
	_ = s.inspect(m)
	line := m.Line
	s.free(m)
	return line
}

// waived documents an intentionally unusual flow.
func waived(s *System) uint64 {
	m := s.alloc()
	s.free(m)
	//lockiller:pool-ok reading the recycled flag is the point of this diagnostic probe
	return m.Line
}
