// Package coherence is a poolsafe fixture: every flow below violates the
// pooled-object ownership rules and must be flagged. The types mirror the
// real message pool (fixtures are self-contained).
package coherence

// Msg is a pooled protocol message.
type Msg struct {
	Line     uint64
	recycled bool
}

// System owns the message free list.
type System struct {
	msgFree []*Msg
}

func (s *System) alloc() *Msg {
	if n := len(s.msgFree); n > 0 {
		m := s.msgFree[n-1]
		s.msgFree = s.msgFree[:n-1]
		return m
	}
	return new(Msg)
}

func (s *System) free(m *Msg) {
	if m.recycled {
		panic("double free")
	}
	m.recycled = true
	s.msgFree = append(s.msgFree, m)
}

// finish is a helper that forwards its parameter to the sink: callers lose
// ownership exactly as if they had called free directly.
func (s *System) finish(m *Msg) {
	s.free(m)
}

// useAfterFree reads a field after releasing the message.
func useAfterFree(s *System) uint64 {
	m := s.alloc()
	m.Line = 7
	s.free(m)
	return m.Line // want `use of m after it was freed`
}

// doubleFree releases the same message twice.
func doubleFree(s *System) {
	m := s.alloc()
	s.free(m)
	s.free(m) // want `double free of m`
}

// helperThenUse loses ownership through the helper, then reads anyway.
func helperThenUse(s *System) uint64 {
	m := s.alloc()
	s.finish(m)
	return m.Line // want `use of m after it was freed`
}

// branchFree frees on one path and uses on the joined path: the use is a
// bug whenever the branch was taken.
func branchFree(s *System, drop bool) uint64 {
	m := s.alloc()
	if drop {
		s.free(m)
	}
	return m.Line // want `use of m after it was freed`
}

// storeAfterFree writes through the released pointer, corrupting whoever
// holds the recycled object next.
func storeAfterFree(s *System) {
	m := s.alloc()
	s.free(m)
	m.Line = 9 // want `use of m after it was freed`
}
