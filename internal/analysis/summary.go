package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file computes per-function access summaries over the call graph in
// bottom-up SCC order: for every function, which fields of which types it
// reads and writes, transitively through everything it calls, with each
// access tagged by the *region* its base object came from. Regions make the
// summaries compositional — a callee's "I write a field of my first
// parameter" stays symbolic until a call site substitutes the argument's
// region — and let the crosstile analyzer classify every transitive access
// from an event-handler root as own-tile, cross-tile, or global-immutable
// without re-walking any code.
//
// Soundness posture: the region lattice joins disagreeing values upward
// (toward RUnknown), call substitution unions the summaries of every
// resolved target, unresolved calls are recorded as explicit dynamic-call
// accesses, and a function whose summary exceeds the size cap or whose SCC
// does not converge is marked Unknown — which downstream analyzers must
// surface, not ignore. The only deliberately non-conservative choice is that
// calls into the standard library are treated as effect-free on model state
// (stdlib code cannot reach the simulator's types).

// A Region classifies where a value's backing object lives relative to the
// function under analysis.
type Region uint8

const (
	// RFresh: allocated locally (or derived from plain data); owned by the
	// executing event.
	RFresh Region = iota
	// REvtOwn: the element of a tile collection selected by an
	// owner-dispatch index — the current event's own tile by the EventTile
	// contract.
	REvtOwn
	// RParam: symbolic — the i'th parameter (receiver first). Resolved at
	// call sites and at roots.
	RParam
	// ROwn: the root handler's own tile state. Only materializes when a
	// root summary is resolved (see Resolve); never stored in summaries.
	ROwn
	// RShared: state reachable by all tiles — a //lockiller:shared-state
	// type, or a package-level variable.
	RShared
	// RForeign: another tile's state (a tile-typed element selected by an
	// arbitrary index).
	RForeign
	// RUnknown: the analysis lost track; must be treated as possibly
	// cross-tile.
	RUnknown
)

func (r Region) String() string {
	switch r {
	case RFresh:
		return "fresh"
	case REvtOwn:
		return "evtown"
	case RParam:
		return "param"
	case ROwn:
		return "own"
	case RShared:
		return "shared"
	case RForeign:
		return "foreign"
	default:
		return "unknown"
	}
}

// A Val is an abstract value: a region plus, for RParam, the parameter
// index, plus a human-readable provenance label ("Type.Field" of the last
// field the value flowed through) used to describe accesses that have no
// field of their own (e.g. an element write through a slice parameter).
type Val struct {
	R     Region
	Param int
	Label string
}

var rank = map[Region]int{
	RFresh: 0, REvtOwn: 1, RParam: 2, ROwn: 2, RShared: 3, RForeign: 4, RUnknown: 5,
}

// join merges two abstract values flowing into the same place.
func join(a, b Val) Val {
	if a.R == b.R && (a.R != RParam || a.Param == b.Param) {
		return a
	}
	if a.R == RFresh {
		return b
	}
	if b.R == RFresh {
		return a
	}
	// Two different parameters, or a parameter against a concrete region:
	// parameter identity is lost, so go to the concrete region if there is
	// one (over-approximating toward "cross-tile"), else to unknown.
	if a.R == RParam && b.R == RParam {
		return Val{R: RUnknown}
	}
	if rank[a.R] >= rank[b.R] {
		return a
	}
	return b
}

// An AccessKind distinguishes the three summarized effects.
type AccessKind uint8

const (
	ARead AccessKind = iota
	AWrite
	ADynCall // a call through a function value held in non-own state
	AUnknown // a call into a function whose summary overflowed or diverged
)

func (k AccessKind) String() string {
	switch k {
	case ARead:
		return "read"
	case AWrite:
		return "write"
	case ADynCall:
		return "call"
	default:
		return "unknown"
	}
}

// An Access is one summarized effect: Kind of Type.Field through Base.
// Type/Field may be empty when the access has no syntactic field (an element
// write through a parameter); Base.Label then carries the provenance.
type Access struct {
	Kind  AccessKind
	Type  string // qualified owner type, e.g. "htm.Arbiter"
	Field string
	Base  Val
	Pos   token.Pos // first site that contributed this access
}

type accessKey struct {
	kind  AccessKind
	typ   string
	field string
	r     Region
	param int
}

// maxAccesses caps one function's summary; beyond it the function is marked
// Unknown (sound fallback: callers record an AUnknown access naming it). Event
// handler roots transitively accumulate most of the model's field set, so the
// cap sits well above the real-tree maximum (~300) while still bounding
// runaway growth.
const maxAccesses = 4096

// maxSCCIters is the floor of the fixpoint bound for mutually recursive
// components; the real bound scales with component size, since one round
// propagates facts one call-edge deep and a component's diameter can approach
// its member count (the coherence protocol's Core/L1/Bank cycle is large).
const maxSCCIters = 8

// A FuncSummary is one function's transitive access summary.
type FuncSummary struct {
	Node     *CGNode
	Accesses []Access
	Ret      Val
	Unknown  bool

	keys map[accessKey]int // -> index in Accesses
}

func (s *FuncSummary) add(a Access) {
	if a.Base.R == RFresh || a.Base.R == REvtOwn {
		return // own-event state: never relevant to callers
	}
	if s.Unknown && len(s.Accesses) >= maxAccesses {
		return
	}
	k := accessKey{a.Kind, a.Type, a.Field, a.Base.R, 0}
	if a.Base.R == RParam {
		k.param = a.Base.Param
	}
	if _, ok := s.keys[k]; ok {
		return
	}
	if len(s.Accesses) >= maxAccesses {
		s.Unknown = true
		return
	}
	s.keys[k] = len(s.Accesses)
	s.Accesses = append(s.Accesses, a)
}

// Summaries holds every function's summary plus the marks and call graph
// they were computed against.
type Summaries struct {
	Graph *CallGraph
	Marks *TypeMarks

	prog  *Program
	funcs map[*CGNode]*FuncSummary
}

// SummariesFact is the Facts key for the shared summary table.
//
// Note on ordering: summaries bake in the call graph's edge set at build
// time. An analyzer that attaches dynamic call edges (CallGraph.Reach) must
// do so before first building this fact — crosstile, the primary consumer,
// does exactly that.
const SummariesFact = "analysis.summaries"

// BuildSummaries returns the memoized summary table for prog, computing
// every node's summary in bottom-up SCC order.
func BuildSummaries(prog *Program) (*Summaries, error) {
	v, err := prog.Fact(SummariesFact, func(prog *Program) (any, error) {
		g, err := BuildCallGraph(prog)
		if err != nil {
			return nil, err
		}
		marks, err := BuildTypeMarks(prog)
		if err != nil {
			return nil, err
		}
		s := &Summaries{Graph: g, Marks: marks, prog: prog, funcs: make(map[*CGNode]*FuncSummary)}
		for _, scc := range g.SCCOrder() {
			s.computeSCC(scc)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Summaries), nil
}

// Of returns the summary of one node (nil if the node is unknown to the
// table, which cannot happen for nodes of the same call graph).
func (s *Summaries) Of(n *CGNode) *FuncSummary { return s.funcs[n] }

// computeSCC computes the summaries of one strongly connected component,
// iterating mutually recursive members to a fixpoint.
func (s *Summaries) computeSCC(scc []*CGNode) {
	// Deterministic member order (Tarjan pops in stack order; sort by
	// position for stability).
	sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
	for _, n := range scc {
		s.funcs[n] = &FuncSummary{Node: n, keys: make(map[accessKey]int)}
	}
	limit := maxSCCIters
	if len(scc) > limit {
		limit = len(scc)
	}
	for iter := 0; ; iter++ {
		changed := false
		for _, n := range scc {
			fresh := s.computeOne(n)
			old := s.funcs[n]
			if len(fresh.Accesses) != len(old.Accesses) || fresh.Ret != old.Ret || fresh.Unknown != old.Unknown {
				changed = true
			}
			s.funcs[n] = fresh
		}
		if !changed {
			return
		}
		if iter >= limit {
			for _, n := range scc {
				s.funcs[n].Unknown = true
			}
			return
		}
	}
}

// computeOne builds one node's summary against the current table.
func (s *Summaries) computeOne(n *CGNode) *FuncSummary {
	sum := &FuncSummary{Node: n, keys: make(map[accessKey]int)}
	w := &walker{s: s, n: n, sum: sum, env: make(map[types.Object]Val)}
	params := paramObjs(n)
	for i, p := range params {
		if p != nil {
			w.env[p] = Val{R: RParam, Param: i}
		}
	}
	body := n.body()
	if body == nil {
		return sum
	}
	// Two silent passes build the local-variable environment to a fixpoint
	// (flow-insensitive: a local's region is the join of everything ever
	// assigned to it); the final pass records accesses.
	for pass := 0; pass < 3; pass++ {
		w.record = pass == 2
		w.walkStmt(body)
	}
	return sum
}

func (n *CGNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// paramObjs returns the node's parameter objects, receiver first. Entries
// are nil for unnamed parameters.
func paramObjs(n *CGNode) []*types.Var {
	var out []*types.Var
	add := func(fl *ast.FieldList, info *types.Info) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	if n.Decl != nil {
		add(n.Decl.Recv, n.Pkg.Info)
		add(n.Decl.Type.Params, n.Pkg.Info)
	} else {
		add(n.Lit.Type.Params, n.Pkg.Info)
	}
	return out
}

// Resolve substitutes concrete parameter values into a summary, returning
// the resolved accesses. paramVals follows paramObjs order (receiver first);
// missing entries resolve to RFresh. This is what crosstile applies at each
// root with the receiver bound to ROwn (tile roots) or RShared (a shared
// EventOwner such as the coherence System).
func (s *Summaries) Resolve(sum *FuncSummary, paramVals []Val) []Access {
	return s.resolve(sum, paramVals, false)
}

// ResolveAll is Resolve without the own-tile filter: accesses whose base
// substitutes to RFresh/REvtOwn/ROwn are kept (with the substituted base)
// instead of dropped. Consumers that need the complete write set — e.g.
// crosstile's "is this field ever written by reachable code" check — use
// this and do their own region filtering.
func (s *Summaries) ResolveAll(sum *FuncSummary, paramVals []Val) []Access {
	return s.resolve(sum, paramVals, true)
}

func (s *Summaries) resolve(sum *FuncSummary, paramVals []Val, keepOwn bool) []Access {
	out := make([]Access, 0, len(sum.Accesses))
	for _, a := range sum.Accesses {
		if a.Base.R == RParam {
			v := Val{R: RFresh}
			if a.Base.Param < len(paramVals) {
				v = paramVals[a.Base.Param]
			}
			if !keepOwn && (v.R == RFresh || v.R == REvtOwn || v.R == ROwn) {
				continue
			}
			if a.Type == "" && a.Base.Label == "" {
				a.Base = Val{R: v.R, Param: v.Param, Label: v.Label}
			} else {
				lbl := a.Base.Label
				a.Base = Val{R: v.R, Param: v.Param, Label: lbl}
				if a.Base.Label == "" {
					a.Base.Label = v.Label
				}
			}
		}
		out = append(out, a)
	}
	if sum.Unknown {
		out = append(out, Access{Kind: AUnknown, Type: sum.Node.Name(), Base: Val{R: RUnknown}, Pos: sum.Node.Pos()})
	}
	return out
}

// --- the per-function walker ---------------------------------------------

type walker struct {
	s      *Summaries
	n      *CGNode
	sum    *FuncSummary
	env    map[types.Object]Val
	record bool
}

func (w *walker) info() *types.Info { return w.n.Pkg.Info }

func (w *walker) add(kind AccessKind, typ, field string, base Val, pos token.Pos) {
	if !w.record {
		return
	}
	w.sum.add(Access{Kind: kind, Type: typ, Field: field, Base: base, Pos: pos})
}

func (w *walker) walkStmt(stmt ast.Stmt) {
	switch st := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range st.List {
			w.walkStmt(s)
		}
	case *ast.ExprStmt:
		w.eval(st.X)
	case *ast.AssignStmt:
		var rhs []Val
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			// Multi-value: a call/map/assert. Evaluate once; every LHS gets
			// the joined value (map commas and asserts keep the base region;
			// extra results of calls are data).
			v := w.eval(st.Rhs[0])
			for range st.Lhs {
				rhs = append(rhs, v)
			}
		} else {
			for _, r := range st.Rhs {
				rhs = append(rhs, w.eval(r))
			}
		}
		for i, lhs := range st.Lhs {
			v := Val{R: RFresh}
			if i < len(rhs) {
				v = rhs[i]
			}
			w.assign(lhs, v)
		}
	case *ast.IncDecStmt:
		w.evalWrite(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var vals []Val
				for _, e := range vs.Values {
					vals = append(vals, w.eval(e))
				}
				for i, name := range vs.Names {
					v := Val{R: RFresh}
					if i < len(vals) {
						v = vals[i]
					} else if len(vals) == 1 && len(vs.Names) > 1 {
						v = vals[0]
					}
					if obj, ok := w.info().Defs[name].(*types.Var); ok && obj != nil {
						w.env[obj] = join(w.env[obj], v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.sumRet(w.eval(e))
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		w.eval(st.Cond)
		w.walkStmt(st.Body)
		w.walkStmt(st.Else)
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		if st.Cond != nil {
			w.eval(st.Cond)
		}
		w.walkStmt(st.Post)
		w.walkStmt(st.Body)
	case *ast.RangeStmt:
		x := w.eval(st.X)
		elem := w.elemVal(x, st.X)
		if st.Key != nil {
			w.assign(st.Key, Val{R: RFresh})
		}
		if st.Value != nil {
			w.assign(st.Value, elem)
		}
		w.walkStmt(st.Body)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		if st.Tag != nil {
			w.eval(st.Tag)
		}
		w.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		// Per-clause implicit objects inherit the switched value's region.
		w.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			w.eval(e)
		}
		for _, s := range st.Body {
			w.walkStmt(s)
		}
	case *ast.SelectStmt:
		w.walkStmt(st.Body)
	case *ast.CommClause:
		w.walkStmt(st.Comm)
		for _, s := range st.Body {
			w.walkStmt(s)
		}
	case *ast.SendStmt:
		w.eval(st.Chan)
		w.eval(st.Value)
	case *ast.GoStmt:
		w.eval(st.Call)
	case *ast.DeferStmt:
		w.eval(st.Call)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *walker) sumRet(v Val) { w.sum.Ret = join(w.sum.Ret, v) }

// assign routes one assignment target: locals update the environment,
// everything else records a write.
func (w *walker) assign(lhs ast.Expr, v Val) {
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := w.objOf(id); obj != nil {
			if isPkgLevel(obj) {
				w.add(AWrite, pathTail(obj.Pkg().Path()), obj.Name(), Val{R: RShared}, id.Pos())
				return
			}
			w.env[obj] = join(w.env[obj], v)
			return
		}
		return
	}
	w.evalWrite(lhs)
}

func (w *walker) objOf(id *ast.Ident) types.Object {
	if o := w.info().Defs[id]; o != nil {
		return o
	}
	return w.info().Uses[id]
}

func isPkgLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// evalWrite records a write access through lhs (a selector, index, or deref
// expression) and evaluates its base chain.
func (w *walker) evalWrite(lhs ast.Expr) {
	lhs = unparen(lhs)
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		base, typ, field, ok := w.evalSelector(x)
		if ok {
			w.add(AWrite, typ, field, base, x.Sel.Pos())
			return
		}
		w.eval(x)
	case *ast.IndexExpr:
		// Writing an element: attribute the write to the container's field
		// when the container is itself a field selection, else to the
		// container value's provenance label.
		w.eval(x.Index)
		if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok {
			base, typ, field, ok2 := w.evalSelector(sel)
			if ok2 {
				w.add(ARead, typ, field, base, sel.Sel.Pos())
				w.add(AWrite, typ, field, base, x.Pos())
				return
			}
		}
		// Attribute the element write to the element's named type when it
		// has one (so e.g. engine-queue internals carry their sim.* type
		// instead of whatever provenance label the container value holds).
		v := w.eval(x.X)
		typ := qualifiedTypeName(derefType(w.typeOf(x)))
		field := ""
		if typ != "" {
			field = "*"
		}
		w.add(AWrite, typ, field, v, x.Pos())
	case *ast.StarExpr:
		v := w.eval(x.X)
		w.add(AWrite, qualifiedTypeName(derefType(w.typeOf(x.X))), "*", v, x.Pos())
	case *ast.Ident:
		w.assign(x, Val{R: RFresh})
	default:
		w.eval(lhs)
	}
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

// evalSelector evaluates a field selection, returning the base value and the
// qualified owner type + field name. ok is false for non-field selections
// (package qualifiers, method values).
func (w *walker) evalSelector(x *ast.SelectorExpr) (base Val, typ, field string, ok bool) {
	sel, found := w.info().Selections[x]
	if !found || sel.Kind() != types.FieldVal {
		return Val{}, "", "", false
	}
	base = w.eval(x.X)
	typ = qualifiedTypeName(derefType(w.typeOf(x.X)))
	return base, typ, x.Sel.Name, true
}

// eval computes the abstract value of an expression, recording read accesses
// along the way (when w.record).
func (w *walker) eval(e ast.Expr) Val {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return w.evalIdent(x)
	case *ast.SelectorExpr:
		return w.evalSelectorRead(x)
	case *ast.IndexExpr:
		// Generic instantiation (f[T]) shows up as an index expression too.
		if tv, ok := w.info().Types[x.X]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return w.eval(x.X)
			}
		}
		return w.evalIndex(x)
	case *ast.IndexListExpr:
		return w.eval(x.X)
	case *ast.StarExpr:
		return w.eval(x.X)
	case *ast.UnaryExpr:
		return w.eval(x.X)
	case *ast.BinaryExpr:
		w.eval(x.X)
		w.eval(x.Y)
		return Val{R: RFresh}
	case *ast.CallExpr:
		return w.evalCall(x)
	case *ast.TypeAssertExpr:
		return w.eval(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.eval(kv.Value)
			} else {
				w.eval(el)
			}
		}
		return Val{R: RFresh}
	case *ast.SliceExpr:
		v := w.eval(x.X)
		if x.Low != nil {
			w.eval(x.Low)
		}
		if x.High != nil {
			w.eval(x.High)
		}
		if x.Max != nil {
			w.eval(x.Max)
		}
		return v
	case *ast.FuncLit:
		// Inline-walk the literal's body here, in the defining function's
		// environment: captured variables keep their precise regions (the
		// receiver stays RParam(0) instead of degrading to unknown). The
		// literal's own parameters are only known by type. Its standalone
		// call-graph node is substituted at dynamic call sites only when this
		// definer is unreachable, so effects are never attributed from both
		// ends (see CallGraph.dynCandidates).
		for _, p := range paramObjs(&CGNode{Lit: x, Pkg: w.n.Pkg}) {
			if p != nil {
				if _, ok := w.env[p]; !ok {
					w.env[p] = w.typeDefault(p.Type())
				}
			}
		}
		w.walkStmt(x.Body)
		return Val{R: RFresh}
	case *ast.BasicLit, *ast.ArrayType, *ast.MapType, *ast.ChanType,
		*ast.StructType, *ast.InterfaceType, *ast.FuncType:
		return Val{R: RFresh}
	case nil:
		return Val{R: RFresh}
	default:
		return Val{R: RFresh}
	}
}

func (w *walker) evalIdent(x *ast.Ident) Val {
	obj := w.objOf(x)
	switch obj := obj.(type) {
	case *types.Var:
		if v, ok := w.env[obj]; ok {
			return v
		}
		if isPkgLevel(obj) {
			v := Val{R: RShared, Label: pathTail(obj.Pkg().Path()) + "." + obj.Name()}
			w.add(ARead, pathTail(obj.Pkg().Path()), obj.Name(), Val{R: RShared}, x.Pos())
			return v
		}
		// A free variable of a dynamically-attached literal (its defining
		// function is not being walked): fall back to the type's nature.
		return w.typeDefault(obj.Type())
	case *types.Const, *types.Nil, *types.TypeName, *types.Builtin:
		return Val{R: RFresh}
	case *types.Func:
		return Val{R: RFresh}
	}
	return Val{R: RFresh}
}

// typeDefault is the sound region for a value we only know the type of.
func (w *walker) typeDefault(t types.Type) Val {
	tile, shared := w.s.Marks.KindOf(t)
	switch {
	case shared:
		return Val{R: RShared}
	case tile:
		return Val{R: RUnknown} // some tile's state, which one is unknown
	default:
		return Val{R: RFresh}
	}
}

func (w *walker) evalSelectorRead(x *ast.SelectorExpr) Val {
	// Package-qualified name?
	if id, ok := unparen(x.X).(*ast.Ident); ok {
		if _, isPkg := w.objOf(id).(*types.PkgName); isPkg {
			switch obj := w.info().Uses[x.Sel].(type) {
			case *types.Var:
				w.add(ARead, pathTail(obj.Pkg().Path()), obj.Name(), Val{R: RShared}, x.Sel.Pos())
				return Val{R: RShared, Label: pathTail(obj.Pkg().Path()) + "." + obj.Name()}
			default:
				return Val{R: RFresh}
			}
		}
	}
	sel, found := w.info().Selections[x]
	if !found {
		// Qualified type or similar.
		return Val{R: RFresh}
	}
	switch sel.Kind() {
	case types.FieldVal:
		base := w.eval(x.X)
		typ := qualifiedTypeName(derefType(w.typeOf(x.X)))
		w.add(ARead, typ, x.Sel.Name, base, x.Sel.Pos())
		return w.fieldVal(base, sel.Obj().Type(), typ+"."+x.Sel.Name)
	case types.MethodVal, types.MethodExpr:
		w.eval(x.X)
		return Val{R: RFresh}
	}
	return Val{R: RFresh}
}

// fieldVal applies the region flip rules for selecting a field: a field
// whose type is marked shared-state is shared no matter how it was reached;
// otherwise the field inherits the base's region.
func (w *walker) fieldVal(base Val, fieldType types.Type, label string) Val {
	if _, shared := w.s.Marks.KindOf(fieldType); shared {
		return Val{R: RShared, Label: label}
	}
	v := base
	v.Label = label
	return v
}

func (w *walker) evalIndex(x *ast.IndexExpr) Val {
	base := w.eval(x.X)
	ct := w.typeOf(x.X)
	elem := indexElemType(ct)
	v := w.indexVal(base, elem, x)
	w.eval(x.Index)
	return v
}

// elemVal is the region of an element produced by ranging over a container.
func (w *walker) elemVal(base Val, containerExpr ast.Expr) Val {
	elem := indexElemType(w.typeOf(containerExpr))
	return w.indexVal(base, elem, nil)
}

// indexVal classifies container indexing. Selecting a tile-typed element by
// an arbitrary index from anywhere yields foreign state — unless the index
// provably equals the indexer's own tile ID (the own-index rule: the index
// expression is p.f where p is a tile-typed parameter and f is the field its
// SimTile() returns), or the site carries the owner-dispatch annotation
// (the index equals the EventTile value for the event being handled).
func (w *walker) indexVal(base Val, elem types.Type, x *ast.IndexExpr) Val {
	if elem == nil {
		return base
	}
	tile, _ := w.s.Marks.KindOf(elem)
	if !tile {
		v := base
		return v
	}
	if x != nil {
		if w.s.prog.DirectiveAt(x.Pos(), DirectiveOwnerDispatch) {
			return Val{R: REvtOwn}
		}
		if sel, ok := unparen(x.Index).(*ast.SelectorExpr); ok {
			if id, ok := unparen(sel.X).(*ast.Ident); ok {
				if obj, ok := w.objOf(id).(*types.Var); ok {
					if v, ok := w.env[obj]; ok && v.R == RParam {
						pt := derefType(obj.Type())
						if named, ok := pt.(*types.Named); ok {
							if w.s.Marks.TileIDField[origin(named.Obj())] == sel.Sel.Name {
								return Val{R: RParam, Param: v.Param}
							}
						}
					}
				}
			}
		}
	}
	return Val{R: RForeign, Label: base.Label}
}

func (w *walker) evalCall(call *ast.CallExpr) Val {
	info := w.info()
	fun := unparen(call.Fun)

	// Conversion?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.eval(call.Args[0])
		}
		return Val{R: RFresh}
	}
	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return w.evalBuiltin(id.Name, call)
		}
	}

	// Receiver (for method calls) and arguments.
	var argVals []Val
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
			argVals = append(argVals, w.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		argVals = append(argVals, w.eval(a))
	}

	targets := w.s.Graph.TargetsOf(call)
	var out Val
	out.R = RFresh
	for _, t := range targets {
		sum := w.s.funcs[t]
		if sum == nil {
			continue // same-SCC member not yet computed this iteration
		}
		out = join(out, w.substitute(sum, argVals, call))
	}

	if len(targets) == 0 || w.isDynSite(call) {
		// Unresolved or heuristically-attached dynamic call: record the call
		// through its holder so the inventory shows the indirection itself.
		w.recordDynCall(call, fun)
		if len(targets) == 0 {
			out = join(out, Val{R: RUnknown})
			// Calls to stdlib functions are effect-free on model state and
			// return plain data.
			if w.isStaticStdlibCall(fun) {
				out = Val{R: RFresh}
			}
		}
	}
	return out
}

// isDynSite reports whether call was classified dynamic (possibly attached
// candidates later).
func (w *walker) isDynSite(call *ast.CallExpr) bool {
	for _, d := range w.n.DynSites {
		if d.Call == call {
			return !d.Iface
		}
	}
	return false
}

func (w *walker) isStaticStdlibCall(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := w.info().Uses[f].(*types.Func); ok {
			return obj.Pkg() == nil || !w.inLoad(obj.Pkg())
		}
	case *ast.SelectorExpr:
		if obj, ok := w.info().Uses[f.Sel].(*types.Func); ok {
			sig := funcSig(obj)
			if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				return false
			}
			return obj.Pkg() == nil || !w.inLoad(obj.Pkg())
		}
	}
	return false
}

func (w *walker) inLoad(p *types.Package) bool {
	for _, pkg := range w.s.prog.Pkgs {
		if pkg.Types == p {
			return true
		}
	}
	return false
}

// recordDynCall records an ADynCall access for a call through a function
// value held in non-own state.
func (w *walker) recordDynCall(call *ast.CallExpr, fun ast.Expr) {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if sel, found := w.info().Selections[f]; found && sel.Kind() == types.FieldVal {
			base := w.eval(f.X)
			typ := qualifiedTypeName(derefType(w.typeOf(f.X)))
			w.add(ADynCall, typ, f.Sel.Name, base, f.Sel.Pos())
			return
		}
		if obj, ok := w.info().Uses[f.Sel].(*types.Func); ok {
			sig := funcSig(obj)
			if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				// Interface call with no in-load implementation.
				base := w.eval(f.X)
				w.add(ADynCall, qualifiedTypeName(derefType(w.typeOf(f.X))), f.Sel.Name, base, f.Sel.Pos())
			}
		}
	case *ast.Ident:
		if obj, ok := w.objOf(f).(*types.Var); ok {
			v, tracked := w.env[obj]
			if !tracked {
				v = w.typeDefault(obj.Type())
				if isPkgLevel(obj) {
					v = Val{R: RShared}
				}
			}
			if v.Label != "" {
				// The provenance label ("Type.Field" the value flowed out
				// of) names the indirection better than the local's name.
				w.add(ADynCall, "", "", v, f.Pos())
				return
			}
			w.add(ADynCall, "", f.Name, v, f.Pos())
		}
	default:
		v := w.eval(fun)
		w.add(ADynCall, "", "", v, call.Pos())
	}
}

// substitute merges a callee summary into the current one, mapping the
// callee's symbolic parameter regions to the call site's argument values
// (receiver first, matching paramObjs order).
func (w *walker) substitute(sum *FuncSummary, argVals []Val, call *ast.CallExpr) Val {
	for _, a := range sum.Accesses {
		if a.Base.R == RParam {
			v := Val{R: RFresh}
			if a.Base.Param < len(argVals) {
				v = argVals[a.Base.Param]
			}
			if v.R == RFresh || v.R == REvtOwn {
				continue
			}
			na := a
			na.Base = v
			if na.Base.Label == "" {
				na.Base.Label = a.Base.Label
			}
			w.add(na.Kind, na.Type, na.Field, na.Base, na.Pos)
			continue
		}
		w.add(a.Kind, a.Type, a.Field, a.Base, a.Pos)
	}
	if sum.Unknown {
		w.add(AUnknown, sum.Node.Name(), "", Val{R: RUnknown}, call.Pos())
	}
	ret := sum.Ret
	if ret.R == RParam {
		if ret.Param < len(argVals) {
			r := argVals[ret.Param]
			return r
		}
		return Val{R: RFresh}
	}
	return ret
}

func (w *walker) evalBuiltin(name string, call *ast.CallExpr) Val {
	switch name {
	case "append":
		var v Val
		v.R = RFresh
		for i, a := range call.Args {
			av := w.eval(a)
			if i == 0 {
				v = av
			}
		}
		return v
	case "delete", "clear":
		if len(call.Args) > 0 {
			w.evalWrite(call.Args[0])
			for _, a := range call.Args[1:] {
				w.eval(a)
			}
		}
		return Val{R: RFresh}
	case "copy":
		if len(call.Args) == 2 {
			w.evalWrite(call.Args[0])
			w.eval(call.Args[1])
		}
		return Val{R: RFresh}
	default:
		for _, a := range call.Args {
			w.eval(a)
		}
		return Val{R: RFresh}
	}
}

// --- type helpers ---------------------------------------------------------

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// indexElemType returns the element type produced by indexing or ranging
// over t, or nil when t is not a container.
func indexElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := derefType(t).Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	}
	return nil
}

// qualifiedTypeName renders a named type as "pkg.Name" ("" for unnamed).
func qualifiedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := origin(named.Obj())
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return pathTail(obj.Pkg().Path()) + "." + obj.Name()
}

func origin(tn *types.TypeName) *types.TypeName {
	if named, ok := tn.Type().(*types.Named); ok {
		return named.Origin().Obj()
	}
	return tn
}

// --- type marks -----------------------------------------------------------

// TypeMarks indexes the declarative state annotations:
//
//	//lockiller:tile-state   on Core, L1, Bank — per-tile state
//	//lockiller:shared-state on System, Machine, Arbiter, ... — one instance
//	                         shared by all tiles
//
// plus, for each tile type, the name of the field its SimTile() method
// returns (the own-index rule's witness).
type TypeMarks struct {
	Tile        map[*types.TypeName]bool
	Shared      map[*types.TypeName]bool
	TileIDField map[*types.TypeName]string
}

// TypeMarksFact is the Facts key for the annotation index.
const TypeMarksFact = "analysis.typemarks"

// BuildTypeMarks returns the memoized annotation index for prog.
func BuildTypeMarks(prog *Program) (*TypeMarks, error) {
	v, err := prog.Fact(TypeMarksFact, func(prog *Program) (any, error) {
		m := &TypeMarks{
			Tile:        make(map[*types.TypeName]bool),
			Shared:      make(map[*types.TypeName]bool),
			TileIDField: make(map[*types.TypeName]string),
		}
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.GenDecl:
						if d.Tok != token.TYPE {
							continue
						}
						for _, spec := range d.Specs {
							ts, ok := spec.(*ast.TypeSpec)
							if !ok {
								continue
							}
							tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
							if !ok {
								continue
							}
							pos := ts.Pos()
							if len(d.Specs) == 1 {
								pos = d.Pos()
							}
							if prog.DirectiveAt(pos, DirectiveTileState) {
								m.Tile[tn] = true
							}
							if prog.DirectiveAt(pos, DirectiveSharedState) {
								m.Shared[tn] = true
							}
						}
					case *ast.FuncDecl:
						// SimTile() int { return x.f } — record f as the
						// tile-ID field of the receiver type.
						if d.Name.Name != "SimTile" || d.Recv == nil || d.Body == nil || len(d.Body.List) != 1 {
							continue
						}
						ret, ok := d.Body.List[0].(*ast.ReturnStmt)
						if !ok || len(ret.Results) != 1 {
							continue
						}
						sel, ok := unparen(ret.Results[0]).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
						if !ok {
							continue
						}
						recv := derefType(funcSig(obj).Recv().Type())
						if named, ok := recv.(*types.Named); ok {
							m.TileIDField[origin(named.Obj())] = sel.Sel.Name
						}
					}
				}
			}
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*TypeMarks), nil
}

// KindOf reports whether t (after pointer deref) is a tile-state or
// shared-state annotated type.
func (m *TypeMarks) KindOf(t types.Type) (tile, shared bool) {
	if t == nil {
		return false, false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false, false
	}
	tn := origin(named.Obj())
	return m.Tile[tn], m.Shared[tn]
}
