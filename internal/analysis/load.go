package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// A Loader loads module packages from source and type-checks them with the
// standard library resolved through the compiler's source importer (the
// repository has no third-party dependencies, so "module-internal or stdlib"
// covers every import).
type Loader struct {
	ModRoot string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	typed   map[string]*types.Package
	loaded  map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir. It walks
// upward from dir to find go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		typed:   make(map[string]*types.Package),
		loaded:  make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-internal paths load recursively
// from source; everything else resolves through the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if t, ok := l.typed[path]; ok {
		return t, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Dir returns the directory holding the module-internal import path.
func (l *Loader) Dir(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// PathFor returns the import path of a directory inside the module.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the module package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Dir(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = p
	l.typed[path] = tpkg
	return p, nil
}

// parseDir parses the non-test Go files of dir in filename order. Files
// excluded by a //go:build constraint under the default tag set (GOOS,
// GOARCH, compiler, release tags — no custom tags) are skipped, matching
// what `go build` with no -tags flag would compile.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIncluded reports whether the file's //go:build constraint (if any)
// is satisfied by the default build-tag set: target OS/arch, the gc
// compiler, and every go1.x release tag. Custom tags (build-tagged test
// fixtures like the cpu reuseforget shim) evaluate false, exactly as in an
// untagged `go build`.
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == runtime.Compiler || tag == "unix" ||
					strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// Expand resolves package patterns to import paths. Supported patterns:
// "./..." (every package under the module root), "./x" or "x" relative
// directories, and fully-qualified module import paths.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			all, err := l.allPackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case pat == l.ModPath || strings.HasPrefix(pat, l.ModPath+"/"):
			add(pat)
		default:
			p, err := l.PathFor(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return paths, nil
}

// allPackages walks the module tree and returns every directory holding at
// least one non-test Go file. testdata, vendor, out, and hidden directories
// are skipped (matching the go tool's "./..." semantics).
func (l *Loader) allPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != l.ModRoot && (n == "testdata" || n == "vendor" || n == "out" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			return nil
		}
		ip, err := l.PathFor(filepath.Dir(p))
		if err != nil {
			return err
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadAll loads every package named by the patterns.
func (l *Loader) LoadAll(patterns []string) ([]*Package, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
