// The hostclock-ok waiver is honored only in package main: a library
// package cannot opt out of the boundary.
package harness

import "time"

func wall() int64 {
	t := time.Now() //lockiller:hostclock-ok not honored here // want `time\.Now outside internal/obs \(package "harness"\)`
	return t.UnixNano()
}
