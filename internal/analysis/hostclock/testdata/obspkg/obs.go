// Package obs is the one home the host clock is allowed: the analyzer
// skips it entirely.
package obs

import "time"

type timer struct {
	start time.Time
}

func startTimer() timer            { return timer{start: time.Now()} }
func (t timer) now() time.Duration { return time.Since(t.start) }
