// The sanctioned idiom: every probe call behind a nil comparison, no wall
// clock anywhere. time.Duration as a type is fine — only the clock reads
// are confined.
package sim

import "time"

// EngineProbe mirrors obs.EngineProbe for the fixture.
type EngineProbe interface {
	EventBegin()
	EventEnd(class string, kind uint8)
	StrandExec()
}

type engine struct {
	now   uint64
	probe EngineProbe
	wall  time.Duration
}

func (e *engine) step() {
	if pr := e.probe; pr != nil {
		pr.EventBegin()
		e.now++
		pr.EventEnd("core", 1)
		return
	}
	e.now++
}

func (e *engine) coordinate(strand bool) {
	if pr := e.probe; pr != nil && strand {
		pr.StrandExec()
	}
}
