// A deterministic-engine stand-in that reads the wall clock and calls its
// probe without a guard: both rules fire.
package sim

import "time"

// EngineProbe mirrors obs.EngineProbe for the fixture.
type EngineProbe interface {
	EventBegin()
	EventEnd(class string, kind uint8)
}

type engine struct {
	now   uint64
	probe EngineProbe
}

func (e *engine) step() {
	t := time.Now() // want `time\.Now outside internal/obs \(package "sim"\)`
	_ = t
	e.probe.EventBegin() // want `unguarded EngineProbe\.EventBegin call`
	e.now++
	e.probe.EventEnd("core", 1) // want `unguarded EngineProbe\.EventEnd call`
}

func (e *engine) wall(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since outside internal/obs \(package "sim"\)`
}

// guardOutsideLiteral shows the function-boundary rule: the outer nil check
// does not cover calls made when the literal later runs.
func (e *engine) guardOutsideLiteral() func() {
	if e.probe != nil {
		return func() {
			e.probe.EventBegin() // want `unguarded EngineProbe\.EventBegin call`
		}
	}
	return nil
}
