// Package main may waive individual clock reads — a CLI stamping its own
// output is harmless — but only with the explicit directive.
package main

import (
	"fmt"
	"time"
)

func report() {
	at := time.Now() //lockiller:hostclock-ok CLI banner timestamp, never reaches the model
	fmt.Println("finished at", at)
	took := time.Since(at) // want `time\.Since outside internal/obs \(package "main"\)`
	fmt.Println(took)
}
