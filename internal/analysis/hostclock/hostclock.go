// Package hostclock enforces the host/simulated time boundary that the obs
// layer introduces (DESIGN.md §14). Two rules:
//
//  1. Wall-clock reads — time.Now, time.Since, time.Until — may appear only
//     in package obs. nowallclock already bans them inside the deterministic
//     packages; hostclock extends the ban to the whole repository, because a
//     wall-clock read anywhere outside obs is either a measurement that
//     belongs in the ledger/profiler (route it through obs.StartTimer) or a
//     host value about to leak into model state. Package main may waive a
//     line with //lockiller:hostclock-ok (a CLI printing "finished at ..."
//     is harmless); the waiver is ignored everywhere else.
//
//  2. Method calls on obs.EngineProbe values must sit behind a nil guard,
//     exactly as tracehook requires for Tracer/Telemetry: the probe is nil
//     in every production run, and the guard is what makes the disabled
//     cost one pointer test instead of an interface dispatch per event.
package hostclock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hostclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "hostclock",
	Doc:  "confines wall-clock reads to internal/obs and requires nil-guarded EngineProbe callsites",
	Run:  run,
}

// clockFuncs are the wall-clock reads confined to package obs.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "obs" {
		return nil // the sanctioned home of the host clock
	}
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				checkClock(pass, x, isMain)
			case *ast.CallExpr:
				checkProbeCall(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkClock flags time.Now/Since/Until selections outside package obs.
func checkClock(pass *analysis.Pass, sel *ast.SelectorExpr, isMain bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" || !clockFuncs[sel.Sel.Name] {
		return
	}
	if isMain && pass.Waived(sel, analysis.DirectiveHostClockOK) {
		return
	}
	pass.Reportf(sel.Pos(),
		"time.%s outside internal/obs (package %q): host clocks are confined to obs — measure with obs.StartTimer/Timer.Elapsed, or waive a main-package line with //%s",
		sel.Sel.Name, pass.Pkg.Name(), analysis.DirectiveHostClockOK)
}

// checkProbeCall flags EngineProbe method calls that are not lexically
// behind a nil guard.
func checkProbeCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isNamed(pass, sel.X, "EngineProbe") {
		return
	}
	if guarded(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded EngineProbe.%s call: the probe is nil in unprofiled runs; wrap the call in an if that compares the probe against nil",
		sel.Sel.Name)
}

// guarded reports whether the call sits in the body of an if whose
// condition performs a nil comparison. The search stops at the enclosing
// function boundary (a guard outside a func literal does not cover calls
// that run when the literal is later invoked) — the same discipline
// tracehook uses.
func guarded(pass *analysis.Pass, call *ast.CallExpr) bool {
	var prev ast.Node = call
	for cur := pass.ParentOf(call); cur != nil; cur = pass.ParentOf(cur) {
		switch p := cur.(type) {
		case *ast.IfStmt:
			if prev == p.Body && condGuards(p.Cond) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
		prev = cur
	}
	return false
}

// condGuards reports whether cond contains a comparison against nil.
func condGuards(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if e, ok := n.(*ast.BinaryExpr); ok && (e.Op == token.NEQ || e.Op == token.EQL) {
			if isNil(e.X) || isNil(e.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isNamed reports whether e's type is (a pointer to) a named type with the
// given name — obs.EngineProbe in the real tree, local stand-ins in
// fixtures.
func isNamed(pass *analysis.Pass, e ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}
