package hostclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hostclock"
)

func TestHostClock(t *testing.T) {
	analysistest.RunFixtures(t, hostclock.Analyzer, "testdata")
}
