package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds a whole-load call graph from the typed syntax trees, the
// foundation of the interprocedural layer (see summary.go for the per-function
// access summaries computed over it in bottom-up SCC order).
//
// Nodes are declared functions/methods (keyed by their *types.Func, with
// generic instantiations normalized to their origin) plus every function
// literal, which is its own node: a literal's call edges belong to the
// literal, and its definer gets a "defines" edge to it, so anything a closure
// can do is reachable from the function that created it even when the call
// happens later through a scheduler or a dispatch table.
//
// Call edges come from three resolvers:
//
//   - static calls and method calls on concrete receivers bind to the named
//     callee directly;
//   - interface method calls bind to the corresponding method of every named
//     type in the load that implements the interface (types.Implements); a
//     call with no in-load implementation stays unresolved, which summary
//     computation treats as a sound "unknown" effect;
//   - remaining dynamic calls (through function-typed values: struct fields,
//     table entries, parameters) are resolved by Reach on demand: candidates
//     are address-taken named functions and function literals whose definer
//     is not itself reachable (a reachable definer already accounts for its
//     literals), matched by signature shape with type parameters acting as
//     wildcards so calls inside generic bodies, e.g. the proto table
//     dispatcher's Do(c), reach the concrete actions registered in init().
type CallGraph struct {
	prog *Program

	nodes    []*CGNode // creation order: packages sorted by path, files, decls
	byObj    map[*types.Func]*CGNode
	byLit    map[*ast.FuncLit]*CGNode
	enclosed map[*CGNode]*CGNode // literal -> defining node

	// siteTargets maps each call expression to its resolved callees. Calls
	// absent from the map (or mapped to nil) are unresolved; summaries must
	// treat them as unknown unless Reach attached dynamic candidates.
	siteTargets map[*ast.CallExpr][]*CGNode

	// litsByField indexes function literals by the struct field they are
	// stored into ("pkg.Type.Field"): composite-literal field values,
	// assignments to a field selector, and appends to a field-held slice.
	// Dynamic calls that read their callee out of a known field resolve
	// against exactly these literals instead of shape-matching the world.
	litsByField map[string][]*CGNode

	addressTaken map[*types.Func]bool
	namedTypes   []*types.TypeName // package-level named types, decl order
	ifaceCache   map[ifaceMethodKey][]*types.Func
}

// A CGNode is one function in the call graph: either a declared function or
// method (Obj != nil) or a function literal (Lit != nil).
type CGNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package

	Callees []*CGNode // deduplicated, in first-encounter order
	Lits    []*CGNode // literals defined directly inside this node's body

	// DynSites are this node's call expressions that static and interface
	// resolution could not bind (including interface calls with no in-load
	// implementation, with Iface=true).
	DynSites []DynSite

	calleeSet map[*CGNode]bool
}

// A DynSite is one unresolved call site. FieldHint, when non-empty, names the
// struct field ("pkg.Type.Field") the called function value was read from —
// directly (x.f()) or through a local bound from a field (w := x.f; w(), or
// ranging over a field-held slice of functions).
type DynSite struct {
	Call      *ast.CallExpr
	Sig       *types.Signature
	Iface     bool
	FieldHint string
}

type ifaceMethodKey struct {
	iface *types.Interface
	name  string
}

// Name returns a stable human-readable identifier, e.g.
// "coherence.(*L1).Receive" or "coherence.tables.go:88:lit".
func (n *CGNode) Name() string {
	if n.Obj != nil {
		return qualifiedFuncName(n.Obj)
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return pathTail(n.Pkg.Path) + "." + pathTail(pos.Filename) + ":" + itoa(pos.Line) + ":lit"
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// funcSig returns a function object's signature. (The go1.23 accessor
// (*types.Func).Signature is off-limits while the module pins go1.22.)
func funcSig(obj *types.Func) *types.Signature {
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

func qualifiedFuncName(obj *types.Func) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = "(*" + named.Obj().Name() + ")." + name
		}
	}
	if obj.Pkg() != nil {
		name = pathTail(obj.Pkg().Path()) + "." + name
	}
	return name
}

// CallGraphFact is the Facts key under which the shared call graph lives.
const CallGraphFact = "analysis.callgraph"

// BuildCallGraph returns the memoized whole-load call graph for prog.
func BuildCallGraph(prog *Program) (*CallGraph, error) {
	v, err := prog.Fact(CallGraphFact, func(prog *Program) (any, error) {
		g := &CallGraph{
			prog:         prog,
			byObj:        make(map[*types.Func]*CGNode),
			byLit:        make(map[*ast.FuncLit]*CGNode),
			enclosed:     make(map[*CGNode]*CGNode),
			siteTargets:  make(map[*ast.CallExpr][]*CGNode),
			litsByField:  make(map[string][]*CGNode),
			addressTaken: make(map[*types.Func]bool),
			ifaceCache:   make(map[ifaceMethodKey][]*types.Func),
		}
		g.build()
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*CallGraph), nil
}

// NodeFor returns the node of a declared function, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *CGNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// Nodes returns every node in deterministic creation order.
func (g *CallGraph) Nodes() []*CGNode { return g.nodes }

// TargetsOf returns the resolved callees of one call expression.
func (g *CallGraph) TargetsOf(call *ast.CallExpr) []*CGNode { return g.siteTargets[call] }

func (g *CallGraph) build() {
	pkgs := append([]*Package(nil), g.prog.Pkgs...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	// Pass 1: create nodes for declarations and literals, collect named types.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					n := &CGNode{Obj: obj.Origin(), Decl: d, Pkg: pkg, calleeSet: make(map[*CGNode]bool)}
					g.nodes = append(g.nodes, n)
					g.byObj[obj.Origin()] = n
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							g.namedTypes = append(g.namedTypes, tn)
						}
					}
				}
			}
		}
	}
	// Literals, attributed to their innermost enclosing node (a declared
	// function, a package-level var initializer — modelled as no parent — or
	// another literal).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			var stack []*CGNode
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					stack = append(stack, g.byObjDecl(pkg, x))
					ast.Inspect(x.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				case *ast.FuncLit:
					ln := &CGNode{Lit: x, Pkg: pkg, calleeSet: make(map[*CGNode]bool)}
					g.nodes = append(g.nodes, ln)
					g.byLit[x] = ln
					if len(stack) > 0 && stack[len(stack)-1] != nil {
						parent := stack[len(stack)-1]
						g.enclosed[ln] = parent
						parent.Lits = append(parent.Lits, ln)
						parent.addCallee(ln)
					}
					stack = append(stack, ln)
					ast.Inspect(x.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				}
				return true
			}
			for _, decl := range f.Decls {
				ast.Inspect(decl, walk)
			}
		}
	}

	// Pass 2: index which struct fields hold which function literals. First
	// find constructor-shaped functions that store a parameter into a field
	// (act(name, do) → Action{Do: do}), so literals passed through one level
	// of wrapping are still attributed to the field they end up in.
	sinks := make(map[*types.Func]map[int]string)
	for _, n := range g.nodes {
		if n.Decl != nil {
			paramFieldSinks(n.Pkg, n.Decl, sinks)
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.indexFieldStores(pkg, f, sinks)
		}
	}

	// Pass 3: resolve call edges per node body.
	for _, n := range g.nodes {
		var body *ast.BlockStmt
		if n.Decl != nil {
			body = n.Decl.Body
		} else {
			body = n.Lit.Body
		}
		if body != nil {
			g.resolveBody(n, body)
		}
	}
}

// paramFieldSinks records, for one declared function, which parameter
// indexes are stored into which struct fields — the act(name, do) →
// Action{Do: do} constructor shape. The same store patterns as
// indexFieldStores apply, with a parameter identifier on the value side.
func paramFieldSinks(pkg *Package, d *ast.FuncDecl, out map[*types.Func]map[int]string) {
	obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if obj == nil || d.Body == nil || d.Type.Params == nil {
		return
	}
	paramIdx := make(map[types.Object]int)
	i := 0
	for _, field := range d.Type.Params.List {
		for _, name := range field.Names {
			if po := pkg.Info.Defs[name]; po != nil {
				paramIdx[po] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	if len(paramIdx) == 0 {
		return
	}
	info := pkg.Info
	record := func(key string, e ast.Expr) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || key == "" {
			return
		}
		idx, ok := paramIdx[identObj(info, id)]
		if !ok {
			return
		}
		m := out[obj.Origin()]
		if m == nil {
			m = make(map[int]string)
			out[obj.Origin()] = m
		}
		if _, dup := m[idx]; !dup {
			m[idx] = key
		}
	}
	ast.Inspect(d.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CompositeLit:
			typ := qualifiedTypeName(derefType(info.Types[x].Type))
			if typ == "" {
				return true
			}
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						record(typ+"."+key.Name, kv.Value)
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				if key := fieldKey(info, lhs); key != "" {
					record(key, x.Rhs[i])
				}
			}
		}
		return true
	})
}

// indexFieldStores records every function literal stored into a struct field
// anywhere in a file: composite-literal values (Action[C]{Do: func...}),
// field assignments (x.f = func...), appends to field-held slices
// (x.f = append(x.f, func...)), and literals passed to a constructor that
// forwards the parameter into a field (act("x", func...) where act stores
// its second parameter into Action.Do — see paramFieldSinks).
func (g *CallGraph) indexFieldStores(pkg *Package, f *ast.File, sinks map[*types.Func]map[int]string) {
	info := pkg.Info
	record := func(key string, e ast.Expr) {
		lit, ok := unparen(e).(*ast.FuncLit)
		if !ok || key == "" {
			return
		}
		if ln := g.byLit[lit]; ln != nil {
			g.litsByField[key] = append(g.litsByField[key], ln)
		}
	}
	ast.Inspect(f, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CompositeLit:
			typ := qualifiedTypeName(derefType(info.Types[x].Type))
			if typ == "" {
				return true
			}
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					record(typ+"."+key.Name, kv.Value)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				key := fieldKey(info, lhs)
				if key == "" {
					continue
				}
				rhs := unparen(x.Rhs[i])
				record(key, rhs)
				// x.f = append(x.f, func...)
				if call, ok := rhs.(*ast.CallExpr); ok {
					if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
						for _, a := range call.Args[min(1, len(call.Args)):] {
							record(key, a)
						}
					}
				}
			}
		case *ast.CallExpr:
			// act("x", func...) where act stores param 1 into Action.Do.
			obj := staticCallee(info, x)
			if obj == nil {
				return true
			}
			m := sinks[obj.Origin()]
			if m == nil {
				return true
			}
			for j, a := range x.Args {
				if key, ok := m[j]; ok {
					record(key, a)
				}
			}
		}
		return true
	})
}

// staticCallee returns the declared function a call expression statically
// names (p.F(...), x.Method(...), F(...)), or nil for dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[fun.Sel].(*types.Func)
		return obj
	case *ast.IndexExpr: // explicit instantiation: act[ctx](...)
		return staticCalleeFromExpr(info, fun.X)
	case *ast.IndexListExpr:
		return staticCalleeFromExpr(info, fun.X)
	}
	return nil
}

func staticCalleeFromExpr(info *types.Info, e ast.Expr) *types.Func {
	switch fun := unparen(e).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// fieldKey renders e as "pkg.Type.Field" when it is a struct field selection
// (optionally through an index), or "".
func fieldKey(info *types.Info, e ast.Expr) string {
	e = unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return ""
	}
	typ := qualifiedTypeName(derefType(info.Types[sel.X].Type))
	if typ == "" {
		return ""
	}
	return typ + "." + sel.Sel.Name
}

func (g *CallGraph) byObjDecl(pkg *Package, d *ast.FuncDecl) *CGNode {
	if obj, _ := pkg.Info.Defs[d.Name].(*types.Func); obj != nil {
		return g.byObj[obj.Origin()]
	}
	return nil
}

// resolveBody walks one node's body (excluding nested literals, which are
// their own nodes) classifying calls and recording address-taken functions.
func (g *CallGraph) resolveBody(n *CGNode, body *ast.BlockStmt) {
	info := n.Pkg.Info
	// Call-fun positions, so a function name used as a value is told apart
	// from one being called. Alongside, bind locals that take their value from
	// a struct field (w := x.f, or ranging over a field-held slice) to that
	// field, so calling them later carries the field's provenance.
	funPos := make(map[ast.Expr]bool)
	binds := make(map[types.Object]string)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			funPos[unparen(x.Fun)] = true
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if key := fieldKey(info, x.Rhs[i]); key != "" {
					if obj := identObj(info, id); obj != nil {
						binds[obj] = key
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := unparen(x.Value).(*ast.Ident); x.Value != nil && ok {
				if key := fieldKey(info, x.X); key != "" {
					if obj := identObj(info, id); obj != nil {
						binds[obj] = key
					}
				}
			}
		}
		return true
	})
	// Sel identifiers are handled by their enclosing SelectorExpr; without
	// this, walking into a called selector's children would mark every
	// called method address-taken through its bare Sel ident.
	selIdent := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			selIdent[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			g.resolveCall(n, x, binds)
		case *ast.Ident:
			if !funPos[x] && !selIdent[x] {
				if obj, ok := info.Uses[x].(*types.Func); ok {
					g.addressTaken[obj.Origin()] = true
				}
			}
		case *ast.SelectorExpr:
			if !funPos[x] {
				if obj, ok := info.Uses[x.Sel].(*types.Func); ok {
					g.addressTaken[obj.Origin()] = true
				}
			}
		}
		return true
	})
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// resolveCall classifies one call expression in node n. binds maps locals to
// the struct field their value came from (see resolveBody).
func (g *CallGraph) resolveCall(n *CGNode, call *ast.CallExpr, binds map[types.Object]string) {
	info := n.Pkg.Info
	fun := unparen(call.Fun)

	// Type conversions and built-ins are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			g.addEdge(n, call, obj.Origin())
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				g.resolveInterfaceCall(n, call, f, obj)
				return
			}
			g.addEdge(n, call, obj.Origin())
			return
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Explicitly instantiated generic function: the index expression's
		// operand identifies the origin function.
		var base ast.Expr
		if ix, ok := fun.(*ast.IndexExpr); ok {
			base = ix.X
		} else {
			base = fun.(*ast.IndexListExpr).X
		}
		switch b := unparen(base).(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[b].(*types.Func); ok {
				g.addEdge(n, call, obj.Origin())
				return
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[b.Sel].(*types.Func); ok {
				g.addEdge(n, call, obj.Origin())
				return
			}
		}
	}

	// A call through a function-typed value: hint at the field it came from
	// when that is syntactically evident.
	hint := fieldKey(info, fun)
	if hint == "" {
		if id, ok := fun.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil {
				hint = binds[obj]
			}
		}
	}
	sig := dynSig(info, call)
	n.DynSites = append(n.DynSites, DynSite{Call: call, Sig: sig, FieldHint: hint})
}

func dynSig(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[unparen(call.Fun)]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// resolveInterfaceCall binds a method call on an interface value to the
// matching method of every named type in the load that implements it.
func (g *CallGraph) resolveInterfaceCall(n *CGNode, call *ast.CallExpr, sel *ast.SelectorExpr, m *types.Func) {
	iface, _ := funcSig(m).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		n.DynSites = append(n.DynSites, DynSite{Call: call, Sig: funcSig(m), Iface: true})
		return
	}
	impls := g.implementers(iface, m.Name())
	if len(impls) == 0 {
		// No in-load implementation: summaries must fall back to unknown.
		n.DynSites = append(n.DynSites, DynSite{Call: call, Sig: funcSig(m), Iface: true})
		return
	}
	for _, impl := range impls {
		g.addEdge(n, call, impl)
	}
}

// implementers returns, in declaration order, the named concrete methods
// implementing iface's method name among the load's package-level types.
func (g *CallGraph) implementers(iface *types.Interface, name string) []*types.Func {
	key := ifaceMethodKey{iface, name}
	if got, ok := g.ifaceCache[key]; ok {
		return got
	}
	var impls []*types.Func
	for _, tn := range g.namedTypes {
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, tn.Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn.Origin())
		}
	}
	g.ifaceCache[key] = impls
	return impls
}

func (g *CallGraph) addEdge(n *CGNode, call *ast.CallExpr, obj *types.Func) {
	target := g.byObj[obj]
	if target == nil {
		// Callee outside the load (stdlib). Not a node; summaries treat
		// stdlib calls as effect-free on model state.
		return
	}
	n.addCallee(target)
	g.siteTargets[call] = append(g.siteTargets[call], target)
}

func (n *CGNode) addCallee(t *CGNode) {
	if t == nil || n.calleeSet[t] {
		return
	}
	n.calleeSet[t] = true
	n.Callees = append(n.Callees, t)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- reachability with dynamic-call attachment ----------------------------

// Reach computes the set of nodes reachable from roots, resolving dynamic
// call sites as it goes. universe filters which packages may contribute
// dynamic candidates (nil means all). The attachment loop is deterministic:
// each round attaches, against the current reachable set, every
// signature-shape-compatible candidate whose definer is not reachable, then
// recomputes reachability until a fixpoint.
func (g *CallGraph) Reach(roots []*CGNode, universe func(*Package) bool) map[*CGNode]bool {
	inUniverse := func(p *Package) bool { return universe == nil || universe(p) }

	reach := make(map[*CGNode]bool)
	var visit func(n *CGNode)
	visit = func(n *CGNode) {
		if n == nil || reach[n] {
			return
		}
		reach[n] = true
		for _, c := range n.Callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}

	attached := make(map[*ast.CallExpr]bool)
	for {
		changed := false
		// Deterministic node order: creation order, filtered by reach.
		for _, n := range g.nodes {
			if !reach[n] {
				continue
			}
			for _, site := range n.DynSites {
				if attached[site.Call] || site.Sig == nil {
					continue
				}
				cands := g.dynCandidates(site, reach, inUniverse)
				if len(cands) == 0 {
					continue
				}
				attached[site.Call] = true
				for _, c := range cands {
					n.addCallee(c)
					g.siteTargets[site.Call] = append(g.siteTargets[site.Call], c)
				}
				changed = true
			}
		}
		if !changed {
			return reach
		}
		reach = make(map[*CGNode]bool)
		for _, r := range roots {
			visit(r)
		}
	}
}

// dynCandidates returns the dynamic-call candidates for a site.
//
// A site whose callee was read from a known struct field resolves against the
// literals stored into that field anywhere in the load — and nothing else: if
// no stores were indexed the site stays unattached and the summaries record
// the indirection itself as a dyncall access.
//
// Sites with no field provenance (calls through parameters and locals of
// unknown origin) fall back to signature-shape matching over address-taken
// named functions only. Literals never participate in the fallback: a literal
// is either inline-walked at its definition site, where captured variables
// still have known regions (see summary.go's inline literal walk), or — when
// its definer is outside the reachable universe, e.g. init-time table
// construction — attached through the field it was stored into. Standalone
// literal summaries degrade every captured variable to RUnknown, so letting
// them shape-match arbitrary sites floods the inventory with spurious
// unknown-region accesses.
//
// On the FieldHint path, literals whose defining function is reachable are
// likewise excluded for the same reason.
func (g *CallGraph) dynCandidates(site DynSite, reach map[*CGNode]bool, inUniverse func(*Package) bool) []*CGNode {
	litExcluded := func(n *CGNode) bool {
		parent := g.enclosed[n]
		return parent != nil && reach[parent]
	}
	if site.FieldHint != "" {
		var out []*CGNode
		for _, n := range g.litsByField[site.FieldHint] {
			if !inUniverse(n.Pkg) || litExcluded(n) {
				continue
			}
			if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
				if csig, _ := tv.Type.Underlying().(*types.Signature); csig != nil && shapeMatch(site.Sig, csig) {
					out = append(out, n)
				}
			}
		}
		return out
	}
	var out []*CGNode
	for _, n := range g.nodes {
		if !inUniverse(n.Pkg) {
			continue
		}
		if n.Obj == nil || !g.addressTaken[n.Obj] {
			continue
		}
		csig := funcSig(n.Obj)
		if csig != nil && shapeMatch(site.Sig, csig) {
			out = append(out, n)
		}
	}
	return out
}

// shapeMatch reports whether two signatures are compatible for dynamic-call
// attachment: same parameter and result counts, with each corresponding type
// identical — except that type parameters act as wildcards, so a call inside
// a generic body (parameter type C) matches any concrete candidate.
// Receivers are ignored: a bound method value has no receiver parameter.
func shapeMatch(site, cand *types.Signature) bool {
	if site.Params().Len() != cand.Params().Len() ||
		site.Results().Len() != cand.Results().Len() ||
		site.Variadic() != cand.Variadic() {
		return false
	}
	for i := 0; i < site.Params().Len(); i++ {
		if !typeShapeMatch(site.Params().At(i).Type(), cand.Params().At(i).Type()) {
			return false
		}
	}
	for i := 0; i < site.Results().Len(); i++ {
		if !typeShapeMatch(site.Results().At(i).Type(), cand.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

func typeShapeMatch(a, b types.Type) bool {
	if hasTypeParam(a) || hasTypeParam(b) {
		return true
	}
	return types.Identical(a, b)
}

func hasTypeParam(t types.Type) bool {
	switch t := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Pointer:
		return hasTypeParam(t.Elem())
	case *types.Slice:
		return hasTypeParam(t.Elem())
	case *types.Array:
		return hasTypeParam(t.Elem())
	case *types.Map:
		return hasTypeParam(t.Key()) || hasTypeParam(t.Elem())
	case *types.Chan:
		return hasTypeParam(t.Elem())
	case *types.Named:
		if args := t.TypeArgs(); args != nil {
			for i := 0; i < args.Len(); i++ {
				if hasTypeParam(args.At(i)) {
					return true
				}
			}
		}
	}
	return false
}

// --- SCC decomposition ----------------------------------------------------

// SCCOrder returns the strongly connected components of the call graph in
// bottom-up order: every component is emitted after all components it calls
// into, so summaries computed in this order see their callees finished
// (mutually recursive functions share a component and iterate to a local
// fixpoint; see summary.go).
func (g *CallGraph) SCCOrder() [][]*CGNode {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	var sccs [][]*CGNode
	next := 1

	// Iterative Tarjan: the load's deepest call chains are comfortably
	// within stack limits, but recursion through closures can nest; an
	// explicit frame stack keeps this robust on large loads.
	type frame struct {
		n  *CGNode
		ci int
	}
	for _, start := range g.nodes {
		if index[start] != 0 {
			continue
		}
		frames := []frame{{n: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ci < len(f.n.Callees) {
				c := f.n.Callees[f.ci]
				f.ci++
				if index[c] == 0 {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{n: c})
				} else if onStack[c] {
					if index[c] < low[f.n] {
						low[f.n] = index[c]
					}
				}
				continue
			}
			// Finished f.n.
			n := f.n
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*CGNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
