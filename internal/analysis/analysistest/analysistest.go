// Package analysistest runs an Analyzer over self-contained fixture packages
// and checks its diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one directory under the calling test's testdata/ holding one
// package whose imports are stdlib-only. Expected diagnostics are written as
// trailing comments on the offending line:
//
//	for k := range m { // want `range over map`
//
// The comment text between backquotes (or double quotes) is a regexp that
// must match the diagnostic message reported on that line. Every reported
// diagnostic must be matched by a want, and every want must be matched by a
// diagnostic; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// RunFixtures applies the analyzer to every fixture package under dir
// (conventionally "testdata"), one subtest per subdirectory in sorted order,
// comparing diagnostics against the // want expectations. This is the whole
// harness an analyzer test needs:
//
//	func TestFoo(t *testing.T) { analysistest.RunFixtures(t, foo.Analyzer, "testdata") }
func RunFixtures(t *testing.T, analyzer *analysis.Analyzer, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		ran = true
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Helper()
			runOne(t, analyzer, filepath.Join(dir, name))
		})
	}
	if !ran {
		t.Fatalf("analysistest: no fixture directories under %s", dir)
	}
}

type expect struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func runOne(t *testing.T, analyzer *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, wants, err := loadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

// loadFixture parses and type-checks the single package in dir and extracts
// its // want expectations.
func loadFixture(dir string) (*analysis.Package, []*expect, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var wants []*expect
	for _, n := range names {
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expect{file: n, line: i + 1, re: re})
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysistest: type-checking %s: %w", dir, err)
	}
	return &analysis.Package{
		Path: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, wants, nil
}
