package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Program is the whole-load view shared by every analyzer in one run: all
// loaded packages under one FileSet, a memoized Facts store so expensive
// derived structures (call graph, function summaries) are built once and
// reused across analyzers, and the global waiver index with per-comment
// used/unused tracking for the stale-waiver audit.
//
// Per-package analyzers keep receiving a Pass (with Pass.Prog pointing here);
// whole-program analyzers implement Analyzer.RunProgram instead and are
// invoked once per run.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// ModRoot, when set, is stripped from filenames by RelPath so exported
	// artifacts (JSON diagnostics, the crosstile inventory) are stable
	// across checkouts. Empty for fixture loads.
	ModRoot string

	diags *[]Diagnostic

	facts        map[string]any
	factBuilding map[string]bool

	waivers map[string]map[int][]*waiverSite // filename -> line -> directives
}

// A waiverSite is one //lockiller:* suppression comment found in the load.
type waiverSite struct {
	Directive string
	Pos       token.Position
	Used      bool
}

// A WaiverSite identifies one waiver comment for the stale-waiver audit.
type WaiverSite struct {
	Directive string
	Pos       token.Position
}

// annotationDirectives are declarative markers, not suppressions: they state
// facts about types or dispatch sites that analyzers consume as input, so the
// stale-waiver audit never reports them.
var annotationDirectives = map[string]bool{
	DirectiveTileState:     true,
	DirectiveSharedState:   true,
	DirectiveOwnerDispatch: true,
}

// NewProgram indexes the packages of one analysis run. All packages must
// share one FileSet (true for Loader loads and for fixture loads).
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		facts:        make(map[string]any),
		factBuilding: make(map[string]bool),
		waivers:      make(map[string]map[int][]*waiverSite),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
		prog.ModRoot = findModRoot(pkgs[0].Dir)
	}
	prog.Pkgs = pkgs
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lockiller:") {
						continue
					}
					dir := text
					if i := strings.IndexAny(text, " \t"); i >= 0 {
						dir = text[:i]
					}
					pos := prog.Fset.Position(c.Pos())
					lines := prog.waivers[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*waiverSite)
						prog.waivers[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], &waiverSite{Directive: dir, Pos: pos})
				}
			}
		}
	}
	return prog
}

// findModRoot walks up from dir to the directory containing go.mod, so
// RelPath can render checkout-independent paths. Returns "" when dir is not
// inside a module (synthetic fixture loads).
func findModRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// WaivedAt reports whether a directive comment sits on pos's line or the line
// directly above it, and marks the comment used for the stale-waiver audit.
func (prog *Program) WaivedAt(pos token.Pos, directive string) bool {
	p := prog.Fset.Position(pos)
	lines := prog.waivers[p.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, w := range lines[l] {
			if w.Directive == directive {
				w.Used = true
				hit = true
			}
		}
	}
	return hit
}

// DirectiveAt reports whether a directive comment sits on the line of pos or
// the line above it, without marking it used. Annotation directives
// (tile-state, shared-state, owner-dispatch) are looked up this way.
func (prog *Program) DirectiveAt(pos token.Pos, directive string) bool {
	p := prog.Fset.Position(pos)
	lines := prog.waivers[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, w := range lines[l] {
			if w.Directive == directive {
				return true
			}
		}
	}
	return false
}

// UnusedWaivers returns every suppression waiver comment that matched zero
// diagnostics in this run, sorted by file, line, then directive. Annotation
// directives are excluded: they are inputs, not suppressions.
func (prog *Program) UnusedWaivers() []WaiverSite {
	var out []WaiverSite
	for _, lines := range prog.waivers {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.Used && !annotationDirectives[w.Directive] {
					out = append(out, WaiverSite{Directive: w.Directive, Pos: w.Pos})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Directive < b.Directive
	})
	return out
}

// Fact returns the memoized result of build for key, computing it on first
// use. One analyzer's derived structures (call graph, summaries) become
// reusable by every other analyzer in the same run.
func (prog *Program) Fact(key string, build func(*Program) (any, error)) (any, error) {
	if v, ok := prog.facts[key]; ok {
		return v, nil
	}
	if prog.factBuilding[key] {
		return nil, fmt.Errorf("analysis: fact cycle through %q", key)
	}
	prog.factBuilding[key] = true
	defer delete(prog.factBuilding, key)
	v, err := build(prog)
	if err != nil {
		return nil, err
	}
	prog.facts[key] = v
	return v, nil
}

// PeekFact returns a fact if it was already computed this run.
func (prog *Program) PeekFact(key string) (any, bool) {
	v, ok := prog.facts[key]
	return v, ok
}

// PackageByName returns the loaded package whose name or import-path tail
// matches name, or nil.
func (prog *Program) PackageByName(name string) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.Types.Name() == name || pathTail(pkg.Path) == name {
			return pkg
		}
	}
	return nil
}

// Reportf records a diagnostic at a token position on behalf of a
// whole-program analyzer.
func (prog *Program) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	prog.ReportAtPosition(analyzer, prog.Fset.Position(pos), format, args...)
}

// ReportAtPosition records a diagnostic at an explicit file position — used
// for findings in non-Go inputs such as the crosstile registry file.
func (prog *Program) ReportAtPosition(analyzer string, pos token.Position, format string, args ...any) {
	*prog.diags = append(*prog.diags, Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath renders filename relative to the module root when known; exported
// artifacts use this so they do not embed the checkout location.
func (prog *Program) RelPath(filename string) string {
	if prog.ModRoot != "" {
		if rel, err := filepath.Rel(prog.ModRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
