package crosstile_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/crosstile"
)

func TestCrossTile(t *testing.T) {
	analysistest.RunFixtures(t, crosstile.Analyzer, "testdata")
}
