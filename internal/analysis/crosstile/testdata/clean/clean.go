// Package clean mirrors the flagged fixture with every cross-tile access
// either registered (the fixture carries its own crosstile_registry.txt),
// waived, or resolved as own-tile by the own-index rule / the
// owner-dispatch annotation — so the analyzer reports nothing.
package clean

//lockiller:tile-state
type Tile struct {
	id   int
	hits uint64
	hub  *Hub
}

//lockiller:shared-state
type Lock struct {
	held bool
}

type Hub struct {
	tiles []*Tile
	lock  *Lock
}

func (t *Tile) SimTile() int { return t.id }

func (t *Tile) OnEvent(kind uint8, cycle uint64, data any) {
	t.hub.tiles[t.id].hits++ // own-index rule: t.id is Tile's SimTile field
	t.hub.lock.held = true   // registered in crosstile_registry.txt
	//lockiller:crosstile-ok bounded handoff, serialized by design until ROADMAP 2a
	t.hub.tiles[int(cycle)].hits++
}

// Router is an EventOwner: it handles events on behalf of the tile
// EventTile names, so an index annotated owner-dispatch is the event's own
// tile, not a foreign one.
type Router struct {
	tiles []*Tile
}

func (r *Router) EventTile(kind uint8, cycle uint64, data any) int { return int(cycle) }

func (r *Router) OnEvent(kind uint8, cycle uint64, data any) {
	//lockiller:owner-dispatch index equals the EventTile value for this event
	r.tiles[int(cycle)].hits++
}
