// Package flagged is a miniature mirror of the engine's ownership model —
// tiles with per-tile state, a shared hub, a shared lock — with no registry
// file in the fixture, so every cross-tile access class is diagnosed.
package flagged

//lockiller:tile-state
type Tile struct {
	id   int
	hits uint64
	hub  *Hub
}

//lockiller:shared-state
type Lock struct {
	held bool
	wake func()
}

type Hub struct {
	tiles []*Tile
	lock  *Lock
}

func (t *Tile) SimTile() int { return t.id }

func (t *Tile) OnEvent(kind uint8, cycle uint64, data any) {
	t.hits++ // own-tile state: not an inventory entry
	t.hub.lock.held = true        // want `cross-tile access not in registry: shared flagged\.Lock\.held write`
	t.hub.tiles[int(cycle)].hits++ // want `cross-tile access not in registry: foreign flagged\.Tile\.hits write`
	t.hub.lock.wake()             // want `cross-tile access not in registry: dyncall flagged\.Lock\.wake call`
}
