// Package sim is a detmap fixture: every loop below is order-independent or
// explicitly waived and must NOT be flagged.
package sim

import "sort"

type counterState struct {
	calls uint64
}

// pureCount only accumulates into an outer scalar.
func pureCount(mshrs map[uint64]*counterState) int {
	n := 0
	for _, ms := range mshrs {
		if ms.calls > 0 {
			n++
		}
	}
	return n
}

// accumulate uses commutative += into outer state.
func accumulate(m map[int]uint64) (total uint64) {
	for _, v := range m {
		total += v
	}
	return total
}

// indexWrite addresses the outer map through the range key: each element is
// touched individually, so ordering cannot matter.
func indexWrite(src map[uint64]uint64, dst map[uint64]uint64) {
	for k, v := range src {
		dst[k] = v + 1
	}
}

// elementWrite writes through the range value pointer.
func elementWrite(m map[int]*counterState) {
	for _, ms := range m {
		ms.calls = 0
	}
}

// sortedKeys is the sanctioned pattern: collect, sort, then act in order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// flagSet stores a value that does not depend on the iteration variables.
func flagSet(m map[int]uint64) bool {
	any := false
	for _, v := range m {
		if v > 10 {
			any = true
		}
	}
	return any
}

// waived is order-dependent on purpose and says so.
func waived(s *sched, wake map[int]struct{}) {
	//lockiller:ordered diagnostics only; never reached in replayed runs
	for c := range wake {
		s.schedule(c)
	}
}

type sched struct{}

func (s *sched) schedule(core int) {}

// sliceRange has side effects but iterates a slice: slices are ordered.
func sliceRange(s *sched, cores []int) {
	for _, c := range cores {
		s.schedule(c)
	}
}

// localMap ranges over a map but all intermediates are loop-local and the
// only outer effect is a commutative accumulation.
func localMap(m map[int]int) uint64 {
	var total uint64
	for _, v := range m {
		double := uint64(v) * 2
		total += double
	}
	return total
}
