// Package plot is a detmap fixture: it is outside the deterministic set, so
// even order-dependent map ranges are accepted (rendering may legitimately
// iterate unordered).
package plot

import "fmt"

func render(series map[string][]float64) {
	for name, ys := range series {
		fmt.Println(name, len(ys))
	}
}
