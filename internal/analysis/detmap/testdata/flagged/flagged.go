// Package sim is a detmap fixture: every map-range loop below has an
// order-dependent side effect and must be flagged. The package is named sim
// so it falls inside the deterministic set.
package sim

import "fmt"

type scheduler struct{}

func (s *scheduler) schedule(core int) {}

// rangeWithCall schedules per element: event order becomes map order.
func rangeWithCall(s *scheduler, wake map[int]struct{}) {
	for c := range wake { // want `calls s\.schedule, whose effects occur in iteration order`
		s.schedule(c)
	}
}

// rangeOverwrite keeps the last-seen key: "last" depends on map order.
func rangeOverwrite(m map[string]int) string {
	var last string
	for k := range m { // want `writes last with a value from an arbitrary iteration`
		last = k
	}
	return last
}

// rangeEscapeUnsorted collects keys but never sorts them.
func rangeEscapeUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends map elements to keys, which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// rangeDelete mutates another map during iteration.
func rangeDelete(m map[int]int, other map[int]int) {
	for k := range m { // want `deletes from other during iteration`
		delete(other, k)
	}
}

// rangeEarlyReturn returns an arbitrary element.
func rangeEarlyReturn(m map[int]int) int {
	for k := range m { // want `returns a value derived from an arbitrary map element`
		return k
	}
	return -1
}

// rangeBreak exits after an arbitrary subset of iterations.
func rangeBreak(m map[int]uint64) uint64 {
	var sum uint64
	for _, v := range m { // want `exits the loop early`
		sum += v
		if sum > 100 {
			break
		}
	}
	return sum
}

// rangeOuterKey leaves an arbitrary key in an outer variable.
func rangeOuterKey(m map[int]int) {
	var k int
	for k = range m { // want `assigns an arbitrary map element to an outer variable`
		_ = k
	}
	fmt.Println(k)
}
