// Package detmap flags range statements over maps in deterministic packages
// whose loop bodies have order-dependent side effects. Go randomizes map
// iteration order per run; if a map-range body schedules events, sends
// messages, overwrites shared state, or escapes elements without sorting,
// the randomized order leaks into event sequencing and breaks bit-for-bit
// replay (the golden-cycle matrix).
//
// A body is accepted when its effects are provably order-independent:
//
//   - reads and loop-local computation;
//   - commutative accumulation into outer variables (x += v, x++, |=, ...);
//   - writes indexed or selected through the range variables themselves
//     (m2[k] = f(v), v.field = x): each element is touched individually, so
//     ordering cannot matter;
//   - the sorted-keys pattern: elements appended to a slice that is passed
//     to sort.* / slices.Sort* later in the same function;
//   - order-independent flag sets (done = true) whose value does not depend
//     on the iteration variables.
//
// Anything else is flagged. Intentionally unordered loops are waived with a
// //lockiller:ordered comment on (or directly above) the range statement.
package detmap

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flags order-dependent side effects in map-range loops of deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Waived(rs, analysis.DirectiveOrdered) {
				return true
			}
			check(pass, rs)
			return true
		})
	}
	return nil
}

// classifier walks one map-range body collecting the first order-dependent
// effect and any escaping append targets.
type classifier struct {
	pass    *analysis.Pass
	rs      *ast.RangeStmt
	reason  string    // first order-dependent effect, "" if none
	pos     token.Pos // its position
	escapes []string  // printed targets of escaping appends (sorted-keys candidates)
}

func check(pass *analysis.Pass, rs *ast.RangeStmt) {
	c := &classifier{pass: pass, rs: rs}
	if rs.Tok == token.ASSIGN {
		// for k = range m with an outer k: after the loop k holds an
		// arbitrary key.
		c.fail(rs.Pos(), "assigns an arbitrary map element to an outer variable")
	}
	c.stmt(rs.Body)
	if c.reason == "" && len(c.escapes) > 0 {
		for _, target := range c.escapes {
			if !c.sortedAfter(target) {
				c.fail(rs.Pos(), fmt.Sprintf("appends map elements to %s, which is never sorted in this function", target))
				break
			}
		}
	}
	if c.reason != "" {
		// Anchored on the range statement itself: the loop is the unit the
		// reader sorts or waives, wherever in its body the effect sits.
		pass.Reportf(rs.For, "range over map in deterministic package %q: %s (line %d); iteration order is randomized — sort the keys or waive with //%s",
			pass.Pkg.Name(), c.reason, pass.Fset.Position(c.pos).Line, analysis.DirectiveOrdered)
	}
}

func (c *classifier) fail(pos token.Pos, reason string) {
	if c.reason == "" {
		c.reason, c.pos = reason, pos
	}
}

// local reports whether obj is declared inside the range statement (the
// range variables themselves or body-local declarations).
func (c *classifier) local(obj types.Object) bool {
	return obj != nil && obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End()
}

// refsLoopVar reports whether e references any object declared inside the
// range statement.
func (c *classifier) refsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; c.local(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprLocal reports whether the root of an lvalue chain (a[i].f, *p, ...)
// is a loop-local object.
func (c *classifier) exprLocal(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			return c.local(obj)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// commutative assignment operators: the final value is independent of the
// order the operands arrive in.
var commutative = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

func (c *classifier) stmt(s ast.Stmt) {
	if c.reason != "" || s == nil {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, s := range st.List {
			c.stmt(s)
		}
	case *ast.IfStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Else)
	case *ast.ForStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Post)
		c.stmt(st.Body)
	case *ast.RangeStmt:
		c.expr(st.X)
		c.stmt(st.Body)
	case *ast.SwitchStmt:
		c.stmt(st.Init)
		c.expr(st.Tag)
		c.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(st.Init)
		c.stmt(st.Assign)
		c.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			c.expr(e)
		}
		for _, s := range st.Body {
			c.stmt(s)
		}
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.IncDecStmt:
		// x++ / x-- is commutative accumulation wherever the target lives.
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.expr(r)
			if c.refsLoopVar(r) {
				c.fail(st.Pos(), "returns a value derived from an arbitrary map element")
			}
		}
	case *ast.BranchStmt:
		if st.Tok == token.BREAK || st.Tok == token.GOTO {
			c.fail(st.Pos(), "exits the loop early, so the effect depends on which elements were visited")
		}
	case *ast.SendStmt:
		c.fail(st.Pos(), "sends on a channel")
	case *ast.GoStmt:
		c.fail(st.Pos(), "starts a goroutine")
	case *ast.DeferStmt:
		c.fail(st.Pos(), "defers a call per element; execution order is iteration order")
	case *ast.SelectStmt:
		c.fail(st.Pos(), "selects on channels")
	case *ast.EmptyStmt:
	default:
		c.fail(s.Pos(), "has a statement the analyzer cannot prove order-independent")
	}
}

// assign classifies one assignment statement.
func (c *classifier) assign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		// x = append(x, ...): candidate for the sorted-keys pattern.
		if call, ok := appendCall(rhs); ok && i == 0 {
			for _, a := range call.Args[1:] {
				c.expr(a)
			}
			if c.exprLocal(lhs) || isBlank(lhs) {
				continue
			}
			c.escapes = append(c.escapes, types.ExprString(lhs))
			continue
		}
		if rhs != nil {
			c.expr(rhs)
		}
		switch {
		case isBlank(lhs), st.Tok == token.DEFINE, c.exprLocal(lhs):
			// Loop-local target: invisible outside the iteration.
		case commutative[st.Tok]:
			// Commutative accumulation into outer state.
		case c.refsLoopVar(lhs):
			// The write is addressed through the range variables (m2[k]=v,
			// v.field=x): each element is touched individually.
		case st.Tok == token.ASSIGN && !c.refsLoopVar(rhsOrNil(rhs)):
			// Order-independent flag set: the stored value does not depend
			// on the iteration variables (done = true).
		default:
			c.fail(st.Pos(), fmt.Sprintf("writes %s with a value from an arbitrary iteration; the last writer depends on iteration order", types.ExprString(lhs)))
		}
	}
}

func rhsOrNil(e ast.Expr) ast.Expr {
	if e == nil {
		return &ast.Ident{Name: "nil"}
	}
	return e
}

// expr scans an expression for order-dependent operations: calls with side
// effects, channel receives, and closures.
func (c *classifier) expr(e ast.Expr) {
	if c.reason != "" || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if c.reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			return c.call(x)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.fail(x.Pos(), "receives from a channel")
				return false
			}
		case *ast.FuncLit:
			c.fail(x.Pos(), "builds a closure per element; closures capture and escape iteration state")
			return false
		}
		return true
	})
}

// call classifies one call expression; the return value tells ast.Inspect
// whether to descend into the call's children.
func (c *classifier) call(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Type conversions are pure.
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "real", "imag", "complex", "make", "new", "panic":
				// Pure (panic aborts the whole run; it cannot desynchronize
				// a surviving replay).
				return true
			case "append":
				// Reached only when the result is not assigned back
				// (someone passed append's result along): the slice escapes
				// unordered.
				c.fail(call.Pos(), "passes appended map elements along without sorting")
				return false
			case "delete":
				if c.exprLocal(call.Args[0]) {
					return true
				}
				c.fail(call.Pos(), fmt.Sprintf("deletes from %s during iteration", types.ExprString(call.Args[0])))
				return false
			default:
				c.fail(call.Pos(), fmt.Sprintf("calls builtin %s with order-dependent effects", b.Name()))
				return false
			}
		}
	}
	c.fail(call.Pos(), fmt.Sprintf("calls %s, whose effects occur in iteration order", types.ExprString(fun)))
	return false
}

// sortedAfter reports whether the enclosing function sorts target after the
// range loop: a call into package sort or slices whose arguments mention the
// append target.
func (c *classifier) sortedAfter(target string) bool {
	body := c.pass.EnclosingFunc(c.rs)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range call.Args {
			if strings.Contains(types.ExprString(a), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func appendCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
