package analysis_test

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule materializes a throwaway module in a temp dir and loads every
// package in it through the source loader.
func writeModule(t *testing.T, files map[string]string) []*analysis.Package {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func summariesOf(t *testing.T, pkgs []*analysis.Package) (*analysis.CallGraph, *analysis.Summaries) {
	t.Helper()
	prog := analysis.NewProgram(pkgs)
	g, err := analysis.BuildCallGraph(prog)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := analysis.BuildSummaries(prog)
	if err != nil {
		t.Fatal(err)
	}
	return g, sums
}

func funcNode(t *testing.T, g *analysis.CallGraph, pkgs []*analysis.Package, name string) *analysis.CGNode {
	t.Helper()
	for _, pkg := range pkgs {
		if obj, ok := pkg.Types.Scope().Lookup(name).(*types.Func); ok {
			if n := g.NodeFor(obj); n != nil {
				return n
			}
		}
	}
	t.Fatalf("no call-graph node for %s", name)
	return nil
}

// TestSummaryMutualRecursion pins the SCC fixpoint: two mutually recursive
// functions each see the other's effects, the iteration converges, and
// neither summary degrades to Unknown.
func TestSummaryMutualRecursion(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"m/m.go": `package m

type S struct{ a, b int }

func A(s *S, k int) {
	s.a = k
	if k > 0 {
		B(s, k-1)
	}
}

func B(s *S, k int) {
	s.b = k
	if k > 0 {
		A(s, k-1)
	}
}
`,
	})
	g, sums := summariesOf(t, pkgs)
	sum := sums.Of(funcNode(t, g, pkgs, "A"))
	if sum == nil {
		t.Fatal("no summary for A")
	}
	if sum.Unknown {
		t.Fatal("mutual recursion degraded A's summary to Unknown")
	}
	resolved := sums.Resolve(sum, []analysis.Val{{R: analysis.RShared}, {R: analysis.RFresh}})
	want := map[string]bool{"m.S.a": false, "m.S.b": false}
	for _, a := range resolved {
		if a.Kind == analysis.AWrite && a.Base.R == analysis.RShared {
			if _, ok := want[a.Type+"."+a.Field]; ok {
				want[a.Type+"."+a.Field] = true
			}
		}
	}
	for field, seen := range want {
		if !seen {
			t.Errorf("A's resolved summary is missing the shared write of %s (mutual recursion must union both halves): %+v", field, resolved)
		}
	}
}

// TestInterfaceDispatch pins the two halves of interface-call resolution: a
// call with an in-load implementation binds to that method (the caller sees
// its effects), and a call with no implementation falls back to a sound
// dynamic/unknown effect instead of silently vanishing.
func TestInterfaceDispatch(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"m/m.go": `package m

type I interface{ Do() }

type T struct{ n int }

func (t *T) Do() { t.n = 1 }

func Run(i I) { i.Do() }

type Ext interface{ Gone() }

func RunExt(e Ext) { e.Gone() }
`,
	})
	g, sums := summariesOf(t, pkgs)

	run := sums.Of(funcNode(t, g, pkgs, "Run"))
	found := false
	for _, a := range sums.Resolve(run, []analysis.Val{{R: analysis.RShared}}) {
		if a.Kind == analysis.AWrite && a.Type == "m.T" && a.Field == "n" && a.Base.R == analysis.RShared {
			found = true
		}
	}
	if !found {
		t.Errorf("Run's summary does not see (*T).Do's write through the interface call")
	}

	ext := sums.Of(funcNode(t, g, pkgs, "RunExt"))
	sound := false
	for _, a := range sums.Resolve(ext, []analysis.Val{{R: analysis.RShared}}) {
		if a.Kind == analysis.ADynCall || a.Kind == analysis.AUnknown {
			sound = true
		}
	}
	if !sound {
		t.Errorf("RunExt's unresolvable interface call left no dynamic/unknown effect (unsound): %+v",
			sums.Resolve(ext, []analysis.Val{{R: analysis.RShared}}))
	}
}

// TestSummarySizeCap pins the overflow fallback: a function with more
// distinct accesses than the cap is marked Unknown, and its callers record
// an AUnknown effect naming it rather than a silently truncated summary.
func TestSummarySizeCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("package m\n\n")
	for i := 0; i < 4200; i++ {
		fmt.Fprintf(&b, "var v%d int\n", i)
	}
	b.WriteString("\nfunc Big() int {\n\ts := 0\n")
	for i := 0; i < 4200; i++ {
		fmt.Fprintf(&b, "\ts += v%d\n", i)
	}
	b.WriteString("\treturn s\n}\n\nfunc Caller() int { return Big() }\n")
	pkgs := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"m/m.go": b.String(),
	})
	g, sums := summariesOf(t, pkgs)

	big := sums.Of(funcNode(t, g, pkgs, "Big"))
	if !big.Unknown {
		t.Fatalf("Big has %d distinct accesses, above the cap, but was not marked Unknown", 4200)
	}
	caller := sums.Of(funcNode(t, g, pkgs, "Caller"))
	sound := false
	for _, a := range sums.Resolve(caller, nil) {
		if a.Kind == analysis.AUnknown {
			sound = true
		}
	}
	if !sound {
		t.Error("Caller of an overflowed summary records no AUnknown effect")
	}
}
