// Fixture: waived routing predicates, tag-free switches, and switches over
// other types are not flagged.
package coherence

type MsgType uint8

const (
	MsgGetS MsgType = iota
	MsgGetM
)

type Msg struct {
	Type MsgType
	Dst  int
}

// toBank is stateless routing, not a protocol decision.
func (m *Msg) toBank() bool {
	//lockiller:rawdispatch routing predicate, cross-checked by TestMsgRoutingMatchesTables
	switch m.Type {
	case MsgGetS, MsgGetM:
		return true
	}
	return false
}

func describe(m *Msg) string {
	// A tag-free switch over boolean conditions is ordinary control flow.
	switch {
	case m.Dst < 0:
		return "invalid"
	case m.Dst == 0:
		return "home"
	}
	return "remote"
}

func route(dst int) int {
	// Switching over a non-MsgType value is fine.
	switch dst {
	case 0:
		return 1
	}
	return dst
}
