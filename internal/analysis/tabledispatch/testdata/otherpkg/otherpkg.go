// Fixture: packages other than coherence (here the proto engine itself) may
// switch over MsgType freely.
package proto

type MsgType uint8

const (
	MsgGetS MsgType = iota
	MsgGetM
)

func flits(t MsgType) int {
	switch t {
	case MsgGetS, MsgGetM:
		return 1
	}
	return 5
}
