// Fixture: raw MsgType switches in a package named coherence are flagged.
package coherence

type MsgType uint8

const (
	MsgGetS MsgType = iota
	MsgGetM
	MsgInv
)

type Msg struct {
	Type MsgType
	Line uint64
}

type L1 struct{ hits int }

func (l1 *L1) Receive(m *Msg) {
	switch m.Type { // want `raw switch over MsgType`
	case MsgGetS:
		l1.hits++
	case MsgGetM:
		l1.hits--
	}
}

func classify(t MsgType) int {
	switch t { // want `raw switch over MsgType`
	case MsgInv:
		return 1
	}
	return 0
}
