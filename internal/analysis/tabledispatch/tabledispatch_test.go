package tabledispatch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tabledispatch"
)

func TestTableDispatch(t *testing.T) {
	analysistest.RunFixtures(t, tabledispatch.Analyzer, "testdata")
}
