package tabledispatch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tabledispatch"
)

func TestTableDispatch(t *testing.T) {
	analysistest.Run(t, tabledispatch.Analyzer, "flagged", "clean", "otherpkg")
}
