// Package tabledispatch keeps the coherence protocol table-driven: since the
// PR-3 refactor, every protocol decision over a message's type dispatches
// through the declarative transition tables in internal/coherence/tables.go
// (built on internal/coherence/proto), where the (state, event) space is
// validated for exhaustiveness and counted per transition. A raw
// `switch m.Type` in the coherence package is a decision the tables cannot
// see — invisible to TestProtocolTablesComplete, the impossible-pair panics,
// and the transition heat profile — so new ones are flagged.
//
// Routing predicates that merely partition message types without consulting
// controller state (e.g. Msg.toBank) are waived with //lockiller:rawdispatch
// plus a justification, ideally naming the test that cross-checks the switch
// against the tables.
package tabledispatch

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the tabledispatch pass.
var Analyzer = &analysis.Analyzer{
	Name: "tabledispatch",
	Doc:  "flags raw switches over MsgType in the coherence package; dispatch through the protocol tables",
	Run:  run,
}

// tablePkgs are the packages whose MsgType decisions must go through the
// transition tables. Matching is by package name, like the deterministic and
// hot sets, so analysistest fixtures opt in by naming their package
// "coherence". The proto engine itself is a different package and is exempt.
var tablePkgs = map[string]bool{"coherence": true}

func run(pass *analysis.Pass) error {
	if !tablePkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			if !isMsgType(pass, sw.Tag) {
				return true
			}
			if pass.Waived(sw, analysis.DirectiveRawDispatch) {
				return true
			}
			pass.Reportf(sw.Pos(),
				"raw switch over MsgType in package %q bypasses the protocol transition tables; add a table row (internal/coherence/tables.go) or waive a stateless routing predicate with //%s",
				pass.Pkg.Name(), analysis.DirectiveRawDispatch)
			return true
		})
	}
	return nil
}

// isMsgType reports whether e's type is a named type called MsgType —
// coherence.MsgType in the real tree, a local stand-in in fixtures.
func isMsgType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "MsgType"
}
