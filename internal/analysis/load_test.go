package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/crosstile"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/evtalloc"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/poolsafe"
)

var suite = []*analysis.Analyzer{
	detmap.Analyzer, evtalloc.Analyzer, nowallclock.Analyzer, poolsafe.Analyzer,
}

// TestLoadRealPackages loads a real module package through the source
// loader and runs the full suite over it; the committed tree must be clean.
func TestLoadRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("source type-checking is slow; skipped under -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"repro/internal/sim", "repro/internal/htm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("committed tree must be lint-clean, got: %s", d)
	}
}

// TestSeededViolationFails rebuilds a miniature module with a time.Now call
// in a package named sim and asserts the suite rejects it — the property CI
// relies on: re-introducing a violation makes make lint fail.
func TestSeededViolationFails(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.22\n")
	write("internal/sim/engine.go", `package sim

import "time"

// Now leaks the wall clock into simulated time.
func Now() int64 { return time.Now().UnixNano() }
`)
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "time.Now") || diags[0].Analyzer != "nowallclock" {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// seededCrossTileModule writes a miniature module whose coherence package
// contains a tile-owned event handler performing two synchronous
// foreign-tile field writes, optionally with a registry entry covering the
// first and a waiver covering the second.
func seededCrossTileModule(t *testing.T, covered bool) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.22\n")
	waiver := ""
	if covered {
		waiver = "\t//lockiller:crosstile-ok drained at the window barrier, never same-window\n"
		write("internal/coherence/crosstile_registry.txt", "foreign coherence.L1.hits write\n")
	}
	write("internal/coherence/l1.go", `package coherence

//lockiller:tile-state
type L1 struct {
	id     int
	hits   uint64
	misses uint64
	sys    *System
}

type System struct {
	l1s []*L1
}

func (l *L1) SimTile() int { return l.id }

func (l *L1) OnEvent(kind uint8, cycle uint64, data any) {
	l.sys.l1s[int(cycle)].hits = cycle
`+waiver+`	l.sys.l1s[int(cycle)].misses = cycle
}
`)
	return dir
}

func runCrossTileOn(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{crosstile.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestSeededCrossTileWriteFails pins the property the registry exists for:
// introducing a new synchronous foreign-tile field write in a coherence
// package makes the suite fail.
func TestSeededCrossTileWriteFails(t *testing.T) {
	diags := runCrossTileOn(t, seededCrossTileModule(t, false))
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one per foreign field write): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "crosstile" || !strings.Contains(d.Message, "foreign coherence.L1.") {
			t.Fatalf("unexpected diagnostic: %s", d)
		}
	}
}

// TestSeededCrossTileCovered pins the two remediations: a registry entry for
// one access class and a //lockiller:crosstile-ok waiver for the other make
// the same module pass.
func TestSeededCrossTileCovered(t *testing.T) {
	if diags := runCrossTileOn(t, seededCrossTileModule(t, true)); len(diags) != 0 {
		t.Fatalf("registry + waiver should silence the suite, got: %v", diags)
	}
}

// TestExpandPatterns checks ./... enumeration skips testdata and includes
// the analysis packages themselves.
func TestExpandPatterns(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/internal/sim":      false,
		"repro/internal/analysis": false,
		"repro/cmd/lockillerlint": false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand included a testdata package: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Expand missed %s (got %d packages)", p, len(paths))
		}
	}
}
