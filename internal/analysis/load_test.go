package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/evtalloc"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/poolsafe"
)

var suite = []*analysis.Analyzer{
	detmap.Analyzer, evtalloc.Analyzer, nowallclock.Analyzer, poolsafe.Analyzer,
}

// TestLoadRealPackages loads a real module package through the source
// loader and runs the full suite over it; the committed tree must be clean.
func TestLoadRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("source type-checking is slow; skipped under -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"repro/internal/sim", "repro/internal/htm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("committed tree must be lint-clean, got: %s", d)
	}
}

// TestSeededViolationFails rebuilds a miniature module with a time.Now call
// in a package named sim and asserts the suite rejects it — the property CI
// relies on: re-introducing a violation makes make lint fail.
func TestSeededViolationFails(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.22\n")
	write("internal/sim/engine.go", `package sim

import "time"

// Now leaks the wall clock into simulated time.
func Now() int64 { return time.Now().UnixNano() }
`)
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "time.Now") || diags[0].Analyzer != "nowallclock" {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// TestExpandPatterns checks ./... enumeration skips testdata and includes
// the analysis packages themselves.
func TestExpandPatterns(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/internal/sim":      false,
		"repro/internal/analysis": false,
		"repro/cmd/lockillerlint": false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand included a testdata package: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Expand missed %s (got %d packages)", p, len(paths))
		}
	}
}
