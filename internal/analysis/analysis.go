// Package analysis is a self-contained static-analysis framework for the
// lockillerlint suite. It mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built entirely on the standard library's
// go/parser + go/types, because this repository carries no third-party
// dependencies. Packages are loaded from source (see load.go), analyzers run
// over the typed syntax trees, and diagnostics are collected per position.
//
// The suite enforces the simulator's two load-bearing invariants:
//
//   - bit-for-bit deterministic replay: no Go map iteration order, wall-clock
//     reads, global RNG state, environment, or goroutine scheduling may leak
//     into event sequencing (detmap, nowallclock);
//   - strict ownership of pooled protocol objects: a *Msg/mshr/pending value
//     must never be read, written, or re-freed after it flowed into its
//     free/release sink (poolsafe);
//
// plus one performance invariant: hot packages schedule with the typed
// zero-alloc AtEvent/AfterEvent API rather than per-event closures (evtalloc).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Per-package analyzers implement Run, which
// inspects a single package through the Pass; whole-program analyzers (those
// that need the cross-package call graph) implement RunProgram instead, which
// is invoked exactly once per run with the full load. An analyzer implements
// one or the other.
type Analyzer struct {
	Name       string // short kebab-free identifier, e.g. "detmap"
	Doc        string // one-paragraph description of what it enforces
	Run        func(*Pass) error
	RunProgram func(*Program) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-load view: Facts, the waiver index, and every other
	// package loaded in this run.
	Prog *Program

	diags   *[]Diagnostic
	parents map[ast.Node]ast.Node // lazily built per pass
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// --- waiver directives ---------------------------------------------------

// Waiver directives. A directive comment waives a diagnostic when it sits on
// the flagged statement's line or on the line directly above it:
//
//	//lockiller:ordered   — detmap: iteration order provably does not affect
//	                        observable state (commutative effects), or the
//	                        non-determinism is intended
//	//lockiller:alloc-ok  — evtalloc: the closure allocation is accepted
//	                        (cold path); say why in the trailing text
//	//lockiller:pool-ok   — poolsafe: the flagged flow is safe; say why
//	//lockiller:rawdispatch — tabledispatch: the switch is stateless routing,
//	                        not a protocol decision; say why and name the
//	                        test that cross-checks it against the tables
//	//lockiller:trace-ok  — tracehook: the unguarded observability call is on
//	                        a cold path; say why in the trailing text
//	//lockiller:fusepath-ok — fusepath: a deliberate new evL1Done scheduling
//	                        site; say why, and update the fusion equivalence
//	                        reasoning in DESIGN.md §10
//	//lockiller:par-ok    — nowallclock: goroutine/channel use inside the PDES
//	                        coordinator (package sim, par*.go only); say which
//	                        handoff the line implements. Honored nowhere else —
//	                        the concurrency ban stays absolute in every other
//	                        deterministic file (see InParCoordinatorFile)
//	//lockiller:crosstile-ok — crosstile: the cross-tile state access is
//	                        accepted without a registry entry (e.g. provably
//	                        dead under the current configurations); say why
//	//lockiller:hostclock-ok — hostclock: a wall-clock read in package main
//	                        (CLI banners and the like); say why the value
//	                        never reaches model state. Honored only in
//	                        package main — libraries route host time
//	                        through internal/obs, no exceptions
//
// Three further directives are declarative annotations, not suppressions
// (the stale-waiver audit ignores them):
//
//	//lockiller:tile-state   — on a type decl: instances are per-tile state,
//	                        owned by the tile their SimTile() reports
//	//lockiller:shared-state — on a type decl: a single instance is shared by
//	                        all tiles (zero-latency cross-tile state)
//	//lockiller:owner-dispatch — on a tile-collection index inside an
//	                        EventOwner's OnEvent: the index equals the value
//	                        EventTile returned for this event, so the element
//	                        is the event's own tile, not a foreign one
const (
	DirectiveOrdered     = "lockiller:ordered"
	DirectiveAllocOK     = "lockiller:alloc-ok"
	DirectivePoolOK      = "lockiller:pool-ok"
	DirectiveRawDispatch = "lockiller:rawdispatch"
	DirectiveTraceOK     = "lockiller:trace-ok"
	DirectiveFusePathOK  = "lockiller:fusepath-ok"
	DirectiveParOK       = "lockiller:par-ok"
	DirectiveCrossTileOK = "lockiller:crosstile-ok"
	DirectiveHostClockOK = "lockiller:hostclock-ok"

	DirectiveTileState     = "lockiller:tile-state"
	DirectiveSharedState   = "lockiller:shared-state"
	DirectiveOwnerDispatch = "lockiller:owner-dispatch"
)

// Waived reports whether node n is waived by the given directive: a comment
// whose text starts with "//lockiller:<dir>" on n's starting line or the line
// immediately above it. The lookup goes through the Program's waiver index,
// which also marks the comment used for the stale-waiver audit.
func (p *Pass) Waived(n ast.Node, directive string) bool {
	return p.Prog.WaivedAt(n.Pos(), directive)
}

// FileOf returns the *ast.File of this pass containing n, or nil.
func (p *Pass) FileOf(n ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// EnclosingFunc returns the body of the innermost function declaration or
// literal enclosing n, or nil if n is not inside a function.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.BlockStmt {
	for cur := p.ParentOf(n); cur != nil; cur = p.ParentOf(cur) {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// ParentOf returns the syntactic parent of n within the pass's files. The
// parent map is built once per pass on first use.
func (p *Pass) ParentOf(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents[n]
}

// --- package classification ----------------------------------------------

// deterministicPkgs are the packages whose execution feeds event sequencing
// or result aggregation and must therefore be bit-for-bit reproducible.
// Matching is by package name (which equals the import path's last element
// throughout this repo, and lets analysistest fixtures opt in by name).
var deterministicPkgs = map[string]bool{
	"sim": true, "coherence": true, "cpu": true, "noc": true,
	"htm": true, "cache": true, "stamp": true, "stats": true,
	"telemetry": true,
}

// hotPkgs are the packages whose event scheduling sits on the simulator's
// hot path, where per-event closure allocation is a measured regression
// (see BENCH_1.json: the PR-1 pooling work cut allocs/op 11x).
var hotPkgs = map[string]bool{
	"coherence": true, "cpu": true, "noc": true, "htm": true,
}

// IsDeterministicPkg reports whether pkg must be deterministic.
func IsDeterministicPkg(pkg *types.Package) bool {
	return deterministicPkgs[pkg.Name()] || deterministicPkgs[pathTail(pkg.Path())]
}

// InParCoordinatorFile reports whether n sits in a file where the
// //lockiller:par-ok waiver is honored: the sharded-engine coordinator,
// i.e. package sim in a file whose basename starts with "par". Everywhere
// else the nowallclock concurrency ban is absolute — channel handoffs are
// how the PDES runtime moves its execution token (with happens-before edges
// the race detector can certify), and that reasoning only holds inside the
// coordinator.
func (p *Pass) InParCoordinatorFile(n ast.Node) bool {
	if p.Pkg.Name() != "sim" {
		return false
	}
	name := p.Fset.Position(n.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.HasPrefix(name, "par")
}

// IsHotPkg reports whether pkg is on the scheduling hot path.
func IsHotPkg(pkg *types.Package) bool {
	return hotPkgs[pkg.Name()] || hotPkgs[pathTail(pkg.Path())]
}

func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// --- running -------------------------------------------------------------

// RunAnalyzers applies each analyzer to each loaded package and returns the
// diagnostics sorted by file, line, column, then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	_, diags, err := RunAnalyzersProgram(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersProgram is RunAnalyzers exposing the Program as well, so the
// driver can inspect run-wide state afterwards (computed facts such as the
// crosstile inventory, and the stale-waiver audit).
func RunAnalyzersProgram(pkgs []*Package, analyzers []*Analyzer) (*Program, []Diagnostic, error) {
	var diags []Diagnostic
	prog := NewProgram(pkgs)
	prog.diags = &diags
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return prog, diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if err := a.RunProgram(prog); err != nil {
			return prog, diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return prog, diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
