// Package analysis is a self-contained static-analysis framework for the
// lockillerlint suite. It mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built entirely on the standard library's
// go/parser + go/types, because this repository carries no third-party
// dependencies. Packages are loaded from source (see load.go), analyzers run
// over the typed syntax trees, and diagnostics are collected per position.
//
// The suite enforces the simulator's two load-bearing invariants:
//
//   - bit-for-bit deterministic replay: no Go map iteration order, wall-clock
//     reads, global RNG state, environment, or goroutine scheduling may leak
//     into event sequencing (detmap, nowallclock);
//   - strict ownership of pooled protocol objects: a *Msg/mshr/pending value
//     must never be read, written, or re-freed after it flowed into its
//     free/release sink (poolsafe);
//
// plus one performance invariant: hot packages schedule with the typed
// zero-alloc AtEvent/AfterEvent API rather than per-event closures (evtalloc).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a single package through the
// Pass and reports diagnostics; it must not retain the Pass.
type Analyzer struct {
	Name string // short kebab-free identifier, e.g. "detmap"
	Doc  string // one-paragraph description of what it enforces
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   *[]Diagnostic
	waivers map[*ast.File]map[int][]string // line -> directives on that line
	parents map[ast.Node]ast.Node          // lazily built per pass
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// --- waiver directives ---------------------------------------------------

// Waiver directives. A directive comment waives a diagnostic when it sits on
// the flagged statement's line or on the line directly above it:
//
//	//lockiller:ordered   — detmap: iteration order provably does not affect
//	                        observable state (commutative effects), or the
//	                        non-determinism is intended
//	//lockiller:alloc-ok  — evtalloc: the closure allocation is accepted
//	                        (cold path); say why in the trailing text
//	//lockiller:pool-ok   — poolsafe: the flagged flow is safe; say why
//	//lockiller:rawdispatch — tabledispatch: the switch is stateless routing,
//	                        not a protocol decision; say why and name the
//	                        test that cross-checks it against the tables
//	//lockiller:trace-ok  — tracehook: the unguarded observability call is on
//	                        a cold path; say why in the trailing text
//	//lockiller:fusepath-ok — fusepath: a deliberate new evL1Done scheduling
//	                        site; say why, and update the fusion equivalence
//	                        reasoning in DESIGN.md §10
//	//lockiller:par-ok    — nowallclock: goroutine/channel use inside the PDES
//	                        coordinator (package sim, par*.go only); say which
//	                        handoff the line implements. Honored nowhere else —
//	                        the concurrency ban stays absolute in every other
//	                        deterministic file (see InParCoordinatorFile)
const (
	DirectiveOrdered     = "lockiller:ordered"
	DirectiveAllocOK     = "lockiller:alloc-ok"
	DirectivePoolOK      = "lockiller:pool-ok"
	DirectiveRawDispatch = "lockiller:rawdispatch"
	DirectiveTraceOK     = "lockiller:trace-ok"
	DirectiveFusePathOK  = "lockiller:fusepath-ok"
	DirectiveParOK       = "lockiller:par-ok"
)

// Waived reports whether node n is waived by the given directive: a comment
// whose text starts with "//lockiller:<dir>" on n's starting line or the line
// immediately above it, in the file containing n.
func (p *Pass) Waived(n ast.Node, directive string) bool {
	if p.waivers == nil {
		p.waivers = make(map[*ast.File]map[int][]string)
	}
	f := p.FileOf(n)
	if f == nil {
		return false
	}
	lines, ok := p.waivers[f]
	if !ok {
		lines = make(map[int][]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lockiller:") {
					continue
				}
				// The directive is the first word; trailing text is the
				// human justification.
				dir := text
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					dir = text[:i]
				}
				line := p.Fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], dir)
			}
		}
		p.waivers[f] = lines
	}
	ln := p.Fset.Position(n.Pos()).Line
	for _, l := range []int{ln, ln - 1} {
		for _, dir := range lines[l] {
			if dir == directive {
				return true
			}
		}
	}
	return false
}

// FileOf returns the *ast.File of this pass containing n, or nil.
func (p *Pass) FileOf(n ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// EnclosingFunc returns the body of the innermost function declaration or
// literal enclosing n, or nil if n is not inside a function.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.BlockStmt {
	for cur := p.ParentOf(n); cur != nil; cur = p.ParentOf(cur) {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// ParentOf returns the syntactic parent of n within the pass's files. The
// parent map is built once per pass on first use.
func (p *Pass) ParentOf(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents[n]
}

// --- package classification ----------------------------------------------

// deterministicPkgs are the packages whose execution feeds event sequencing
// or result aggregation and must therefore be bit-for-bit reproducible.
// Matching is by package name (which equals the import path's last element
// throughout this repo, and lets analysistest fixtures opt in by name).
var deterministicPkgs = map[string]bool{
	"sim": true, "coherence": true, "cpu": true, "noc": true,
	"htm": true, "cache": true, "stamp": true, "stats": true,
	"telemetry": true,
}

// hotPkgs are the packages whose event scheduling sits on the simulator's
// hot path, where per-event closure allocation is a measured regression
// (see BENCH_1.json: the PR-1 pooling work cut allocs/op 11x).
var hotPkgs = map[string]bool{
	"coherence": true, "cpu": true, "noc": true, "htm": true,
}

// IsDeterministicPkg reports whether pkg must be deterministic.
func IsDeterministicPkg(pkg *types.Package) bool {
	return deterministicPkgs[pkg.Name()] || deterministicPkgs[pathTail(pkg.Path())]
}

// InParCoordinatorFile reports whether n sits in a file where the
// //lockiller:par-ok waiver is honored: the sharded-engine coordinator,
// i.e. package sim in a file whose basename starts with "par". Everywhere
// else the nowallclock concurrency ban is absolute — channel handoffs are
// how the PDES runtime moves its execution token (with happens-before edges
// the race detector can certify), and that reasoning only holds inside the
// coordinator.
func (p *Pass) InParCoordinatorFile(n ast.Node) bool {
	if p.Pkg.Name() != "sim" {
		return false
	}
	name := p.Fset.Position(n.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.HasPrefix(name, "par")
}

// IsHotPkg reports whether pkg is on the scheduling hot path.
func IsHotPkg(pkg *types.Package) bool {
	return hotPkgs[pkg.Name()] || hotPkgs[pathTail(pkg.Path())]
}

func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// --- running -------------------------------------------------------------

// RunAnalyzers applies each analyzer to each loaded package and returns the
// diagnostics sorted by file, line, column, then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
