package tracehook_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tracehook"
)

func TestTraceHook(t *testing.T) {
	analysistest.RunFixtures(t, tracehook.Analyzer, "testdata")
}
