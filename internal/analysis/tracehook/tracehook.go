// Package tracehook flags unguarded observability calls on the simulator's
// hot path. Tracer.Emit/Emitf and the Telemetry hook methods are all
// nil-receiver-safe, but an unguarded call still pays full argument
// evaluation — fmt varargs boxing, Now() reads, set-membership lookups — on
// every event even when observability is disabled. The sanctioned idiom
// hides the whole call behind a branch:
//
//	if tr := cfg.Tracer; tr.Enabled(trace.CatNoC) {
//		tr.Emitf(core, trace.CatNoC, line, "enqueue wait=%d", wait)
//	}
//	if t := sys.Telemetry; t != nil {
//		t.Conflict(winner, loser, line, read, write, aborted)
//	}
//
// so the disabled path costs one branch and zero argument evaluation. The
// analyzer flags any Tracer.Emit/Emitf or Telemetry hook call in a hot
// package that is not lexically inside an if whose condition checks
// Enabled(...) or compares the handle against nil. Cold paths that
// deliberately call unguarded are waived with //lockiller:trace-ok plus a
// justification.
package tracehook

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the tracehook pass.
var Analyzer = &analysis.Analyzer{
	Name: "tracehook",
	Doc:  "flags unguarded Tracer.Emit/Emitf or Telemetry hook calls in hot packages; wrap in an Enabled()/nil guard",
	Run:  run,
}

// tracerMethods are the Tracer recording entry points.
var tracerMethods = map[string]bool{"Emit": true, "Emitf": true}

// telemetryMethods are the Telemetry hot-path hooks.
var telemetryMethods = map[string]bool{
	"Segment": true, "TxBegin": true, "TxCommit": true,
	"TxAbort": true, "Conflict": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPkg(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			var recv string
			switch {
			case tracerMethods[name] && isNamed(pass, sel.X, "Tracer"):
				recv = "Tracer"
			case telemetryMethods[name] && isNamed(pass, sel.X, "Telemetry"):
				recv = "Telemetry"
			default:
				return true
			}
			if guarded(pass, call) || pass.Waived(call, analysis.DirectiveTraceOK) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unguarded %s.%s call in hot package %q evaluates its arguments even when observability is off; wrap in an Enabled()/nil-check if, or waive a cold path with //%s",
				recv, name, pass.Pkg.Name(), analysis.DirectiveTraceOK)
			return true
		})
	}
	return nil
}

// guarded reports whether the call sits in the body of an if whose condition
// checks Enabled(...) or performs a nil comparison. The search stops at the
// enclosing function boundary: a guard outside a func literal does not cover
// calls that run when the literal is later invoked.
func guarded(pass *analysis.Pass, call *ast.CallExpr) bool {
	var prev ast.Node = call
	for cur := pass.ParentOf(call); cur != nil; cur = pass.ParentOf(cur) {
		switch p := cur.(type) {
		case *ast.IfStmt:
			if prev == p.Body && condGuards(p.Cond) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
		prev = cur
	}
	return false
}

// condGuards reports whether cond contains an Enabled(...) call or a
// comparison against nil.
func condGuards(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if s, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Enabled" {
				found = true
			}
		case *ast.BinaryExpr:
			if e.Op == token.NEQ || e.Op == token.EQL {
				if isNil(e.X) || isNil(e.Y) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isNamed reports whether e's type is (a pointer to) a named type with the
// given name — trace.Tracer / telemetry.Telemetry in the real tree, local
// stand-ins in fixtures.
func isNamed(pass *analysis.Pass, e ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}
