// Package coherence is a tracehook fixture: unguarded observability calls in
// a hot package must be flagged. Tracer/Telemetry stand in for the real
// internal/trace and internal/telemetry types (fixtures are self-contained).
package coherence

// Tracer stands in for trace.Tracer.
type Tracer struct{}

func (t *Tracer) Enabled(cat uint8) bool { return t != nil }
func (t *Tracer) Emit(core int, cat uint8, line uint64, what string) {
}
func (t *Tracer) Emitf(core int, cat uint8, line uint64, format string, args ...any) {
}

// Telemetry stands in for telemetry.Telemetry.
type Telemetry struct{}

func (t *Telemetry) Conflict(winner, loser int, line uint64, read, write, aborted bool) {}
func (t *Telemetry) TxBegin(core, section, attempt int)                                 {}

type l1 struct {
	tracer *Tracer
	tel    *Telemetry
	core   int
}

// bareEmit pays Emitf's vararg boxing on every call even when tracing is off.
func (l *l1) bareEmit(line uint64, wait uint64) {
	l.tracer.Emitf(l.core, 0, line, "wait=%d", wait) // want `unguarded Tracer\.Emitf call in hot package "coherence"`
}

// bareEmitNoF is just as bad without formatting.
func (l *l1) bareEmitNoF(line uint64) {
	l.tracer.Emit(l.core, 0, line, "hit") // want `unguarded Tracer\.Emit call in hot package "coherence"`
}

// bareConflict evaluates all six arguments with telemetry disabled.
func (l *l1) bareConflict(winner int, line uint64) {
	l.tel.Conflict(winner, l.core, line, true, false, true) // want `unguarded Telemetry\.Conflict call in hot package "coherence"`
}

// wrongGuard checks something unrelated: still flagged.
func (l *l1) wrongGuard(line uint64) {
	if l.core > 0 {
		l.tel.TxBegin(l.core, 0, 1) // want `unguarded Telemetry\.TxBegin call in hot package "coherence"`
	}
}

// closureEscapesGuard: the guard is outside the func literal, so the call
// runs unguarded whenever the closure fires later.
func (l *l1) closureEscapesGuard(line uint64, defer_ func(func())) {
	if l.tracer.Enabled(0) {
		defer_(func() {
			l.tracer.Emit(l.core, 0, line, "late") // want `unguarded Tracer\.Emit call in hot package "coherence"`
		})
	}
}
