// Package plot is a tracehook fixture: unguarded observability calls outside
// the hot set are accepted without a waiver.
package plot

// Tracer stands in for trace.Tracer.
type Tracer struct{}

func (t *Tracer) Emitf(core int, cat uint8, line uint64, format string, args ...any) {
}

func renderDiagnostics(tr *Tracer, rows int) {
	tr.Emitf(0, 0, 0, "rendered %d rows", rows)
}
