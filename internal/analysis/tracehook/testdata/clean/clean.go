// Package coherence is a tracehook fixture: every observability call below
// is guarded (or waived) and must NOT be flagged.
package coherence

// Tracer stands in for trace.Tracer.
type Tracer struct{}

func (t *Tracer) Enabled(cat uint8) bool { return t != nil }
func (t *Tracer) Emit(core int, cat uint8, line uint64, what string) {
}
func (t *Tracer) Emitf(core int, cat uint8, line uint64, format string, args ...any) {
}

// Telemetry stands in for telemetry.Telemetry.
type Telemetry struct{}

func (t *Telemetry) Conflict(winner, loser int, line uint64, read, write, aborted bool) {}
func (t *Telemetry) TxAbort(core, section, attempt int, start uint64, cause uint8)      {}

type l1 struct {
	tracer *Tracer
	tel    *Telemetry
	core   int
}

// enabledGuard is the Tracer idiom: the branch pays one predicate, the
// arguments are only evaluated when tracing is on.
func (l *l1) enabledGuard(line uint64, wait uint64) {
	if l.tracer.Enabled(0) {
		l.tracer.Emitf(l.core, 0, line, "wait=%d", wait)
	}
}

// initGuard rebinds the handle in the if init, the common real-tree shape.
func (l *l1) initGuard(line uint64) {
	if tr := l.tracer; tr.Enabled(0) {
		tr.Emit(l.core, 0, line, "hit")
	}
}

// nilGuard is the Telemetry idiom.
func (l *l1) nilGuard(winner int, line uint64) {
	if t := l.tel; t != nil {
		t.Conflict(winner, l.core, line, true, false, true)
	}
}

// compoundGuard may combine the nil check with other predicates.
func (l *l1) compoundGuard(line uint64, cause uint8) {
	if l.tel != nil && cause != 0 {
		l.tel.TxAbort(l.core, 0, 1, line, cause)
	}
}

// waivedColdPath documents why the unguarded call is acceptable.
func (l *l1) waivedColdPath(line uint64) {
	//lockiller:trace-ok runs once at machine teardown, not per event
	l.tracer.Emit(l.core, 0, line, "teardown")
}
