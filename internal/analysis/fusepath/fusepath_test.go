package fusepath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fusepath"
)

func TestFusePath(t *testing.T) {
	analysistest.RunFixtures(t, fusepath.Analyzer, "testdata")
}
