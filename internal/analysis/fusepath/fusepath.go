// Package fusepath protects the event-fusion fast path's single-site
// invariant (DESIGN.md §10): the L1 hit completion event (evL1Done) is
// scheduled from exactly one place — L1.finishHit — which both the slow hit
// path and the fused fast path (FinishFastHit) funnel through. The fusion
// equivalence argument leans on this: Core.fuseOps applies a hit's effects
// inline via TryFastHit and only re-checks the event queue against that one
// known completion event. A second evL1Done scheduling site would complete
// hits on a path fusion cannot see, silently breaking the bit-for-bit
// on/off equivalence the golden and differential tests pin.
//
// The analyzer flags any call in the coherence package that passes the
// evL1Done event kind to a scheduler outside finishHit. A deliberate new
// scheduling site must be waived with //lockiller:fusepath-ok plus a
// justification — and had better come with an update to the equivalence
// reasoning in DESIGN.md §10.
package fusepath

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the fusepath pass.
var Analyzer = &analysis.Analyzer{
	Name: "fusepath",
	Doc:  "flags evL1Done scheduling outside L1.finishHit; the fusion fast path assumes a single completion site",
	Run:  run,
}

// fusePkgs are the packages holding the fused hit path. Matching is by
// package name so analysistest fixtures opt in by naming their package
// "coherence".
var fusePkgs = map[string]bool{"coherence": true}

// sanctioned is the one function allowed to schedule evL1Done.
const sanctioned = "finishHit"

func run(pass *analysis.Pass) error {
	if !fusePkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			uses := false
			for _, a := range call.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name == "evL1Done" {
					uses = true
					break
				}
			}
			if !uses || enclosingFuncName(pass, call) == sanctioned {
				return true
			}
			if pass.Waived(call, analysis.DirectiveFusePathOK) {
				return true
			}
			pass.Reportf(call.Pos(),
				"evL1Done scheduled outside %s: the event-fusion fast path assumes a single L1 hit completion site; route through %s or waive with //%s and update DESIGN.md §10",
				sanctioned, sanctioned, analysis.DirectiveFusePathOK)
			return true
		})
	}
	return nil
}

// enclosingFuncName returns the name of the innermost function declaration
// containing n ("" for function literals and top-level code).
func enclosingFuncName(pass *analysis.Pass, n ast.Node) string {
	for cur := pass.ParentOf(n); cur != nil; cur = pass.ParentOf(cur) {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Name.Name
		case *ast.FuncLit:
			return ""
		}
	}
	return ""
}
