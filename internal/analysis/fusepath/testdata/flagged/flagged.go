// Package coherence is a fusepath fixture: scheduling evL1Done outside
// finishHit must be flagged. Engine mirrors sim.Engine's typed scheduling
// surface (fixtures are self-contained).
package coherence

// Engine stands in for sim.Engine.
type Engine struct{}

// Handler mirrors sim.Handler.
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

func (e *Engine) AtEvent(t uint64, h Handler, kind uint8, a uint64, p any)    {}
func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {}

const (
	evL1Done uint8 = iota
	evL1MshrDone
)

type l1ctl struct {
	engine *Engine
	epoch  uint64
}

func (l1 *l1ctl) OnEvent(kind uint8, a uint64, p any) {}

// finishHit is the sanctioned completion site: not flagged.
func (l1 *l1ctl) finishHit(done func()) {
	l1.engine.AfterEvent(2, l1, evL1Done, l1.epoch, done)
}

// promoteDone schedules the hit completion from a second site: the fusion
// fast path cannot see it.
func (l1 *l1ctl) promoteDone(done func()) {
	l1.engine.AfterEvent(4, l1, evL1Done, l1.epoch, done) // want `evL1Done scheduled outside finishHit`
}

// retryDone hides the rogue site behind AtEvent instead: still flagged.
func (l1 *l1ctl) retryDone(t uint64, done func()) {
	l1.engine.AtEvent(t, l1, evL1Done, l1.epoch, done) // want `evL1Done scheduled outside finishHit`
}

// waivedDone is a deliberate, justified second site.
func (l1 *l1ctl) waivedDone(done func()) {
	//lockiller:fusepath-ok fixture: pretend DESIGN.md §10 was updated
	l1.engine.AfterEvent(4, l1, evL1Done, l1.epoch, done)
}

// otherEvent schedules a different kind: not the fast path's concern.
func (l1 *l1ctl) otherEvent(done func()) {
	l1.engine.AfterEvent(1, l1, evL1MshrDone, l1.epoch, done)
}
