// Package coherence is a fusepath fixture: a controller whose only
// evL1Done scheduling site is finishHit passes clean.
package coherence

// Engine stands in for sim.Engine.
type Engine struct{}

// Handler mirrors sim.Handler.
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {}

const evL1Done uint8 = 0

type l1ctl struct {
	engine *Engine
	epoch  uint64
}

func (l1 *l1ctl) OnEvent(kind uint8, a uint64, p any) {
	switch kind {
	case evL1Done: // case label, not a scheduling site
	}
}

func (l1 *l1ctl) finishHit(done func()) {
	l1.engine.AfterEvent(2, l1, evL1Done, l1.epoch, done)
}

// hit funnels through finishHit like the real slow path.
func (l1 *l1ctl) hit(done func()) {
	l1.finishHit(done)
}
