// Package cpu is a fusepath fixture: the single-site rule only binds the
// coherence package — other packages naming an unrelated evL1Done are not
// flagged.
package cpu

type Engine struct{}

type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {}

const evL1Done uint8 = 0

type core struct {
	engine *Engine
}

func (c *core) OnEvent(kind uint8, a uint64, p any) {}

func (c *core) schedule(done func()) {
	c.engine.AfterEvent(2, c, evL1Done, 0, done)
}
