// Package nowallclock forbids nondeterministic inputs and concurrency inside
// the deterministic simulator packages: wall-clock reads (time.Now and
// friends), the global math/rand generators, process environment reads, and
// goroutine/channel use. Simulated time comes from sim.Engine.Now, and all
// randomness must flow through internal/sim's seeded RNG (sim.NewRNG /
// RNG.Split) so that every run replays bit-for-bit from its seed; the event
// loop is single-threaded by design, so any goroutine or channel in these
// packages injects scheduler nondeterminism.
//
// One scoped exception: the sharded-engine coordinator (package sim, files
// named par*.go) may waive the five concurrency checks line-by-line with
// //lockiller:par-ok, because its channel operations are the execution-token
// handoffs whose happens-before edges the PDES exactness argument (DESIGN.md
// §11) is built on. The waiver is ignored in every other file, and never
// applies to wall-clock/rand/env reads — those stay banned even in the
// coordinator.
package nowallclock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "forbids wall-clock, global rand, env reads, goroutines, and channels in deterministic packages",
	Run:  run,
}

// forbidden maps package path -> function name -> steer text. An empty
// function set forbids every package-level function of that package.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "use sim.Engine.Now (simulated cycles)",
		"Since":     "use sim.Engine.Now (simulated cycles)",
		"Until":     "use sim.Engine.Now (simulated cycles)",
		"Sleep":     "schedule with sim.Engine.After",
		"After":     "schedule with sim.Engine.After",
		"Tick":      "schedule with sim.Engine.After",
		"NewTimer":  "schedule with sim.Engine.After",
		"NewTicker": "schedule with sim.Engine.After",
	},
	"math/rand":    {}, // any use: global or ad-hoc sources are unseeded/shared
	"math/rand/v2": {},
	"os": {
		"Getenv":    "thread configuration through Params/Config structs",
		"LookupEnv": "thread configuration through Params/Config structs",
		"Environ":   "thread configuration through Params/Config structs",
	},
}

const steerRand = "use the seeded sim.NewRNG / RNG.Split streams"

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministicPkg(pass.Pkg) {
		return nil
	}
	// parWaived reports whether a concurrency construct is excused: only
	// inside the PDES coordinator, and only with an explicit line waiver.
	parWaived := func(n ast.Node) bool {
		return pass.InParCoordinatorFile(n) && pass.Waived(n, analysis.DirectiveParOK)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, x)
			case *ast.GoStmt:
				if !parWaived(x) {
					pass.Reportf(x.Pos(), "goroutine in deterministic package %q: the event loop is single-threaded; schedule with sim.Engine instead", pass.Pkg.Name())
				}
			case *ast.SendStmt:
				if !parWaived(x) {
					pass.Reportf(x.Pos(), "channel send in deterministic package %q: channels order by the Go scheduler, not by simulated time", pass.Pkg.Name())
				}
			case *ast.SelectStmt:
				if !parWaived(x) {
					pass.Reportf(x.Pos(), "select in deterministic package %q: channels order by the Go scheduler, not by simulated time", pass.Pkg.Name())
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !parWaived(x) {
					pass.Reportf(x.Pos(), "channel receive in deterministic package %q: channels order by the Go scheduler, not by simulated time", pass.Pkg.Name())
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && !parWaived(x) {
						pass.Reportf(x.Pos(), "channel close in deterministic package %q", pass.Pkg.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSelector flags pkg.Func selections of the forbidden API surface.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pn.Imported().Path()
	funcs, ok := forbidden[path]
	if !ok {
		return
	}
	if len(funcs) == 0 {
		// Whole package forbidden (math/rand): only flag function or
		// variable references, not types like rand.Source in signatures.
		switch pass.TypesInfo.Uses[sel.Sel].(type) {
		case *types.Func, *types.Var:
			pass.Reportf(sel.Pos(), "%s.%s in deterministic package %q: %s", path, sel.Sel.Name, pass.Pkg.Name(), steerRand)
		}
		return
	}
	if steer, bad := funcs[sel.Sel.Name]; bad {
		pass.Reportf(sel.Pos(), "%s.%s in deterministic package %q: %s", path, sel.Sel.Name, pass.Pkg.Name(), steer)
	}
}
