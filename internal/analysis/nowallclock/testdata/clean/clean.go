// Package htm is a nowallclock fixture: everything below is allowed in a
// deterministic package and must NOT be flagged.
package htm

import (
	"fmt"
	"os"
	"time"
)

// durations uses time only for unit arithmetic, never the clock.
func durations(cycles uint64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond
}

// localRNG is the sanctioned pattern: a seeded, component-owned stream
// (mirrors sim.RNG without importing it; fixtures are self-contained).
type localRNG struct{ state uint64 }

func (r *localRNG) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// fileIO may use os freely; only environment reads are forbidden.
func fileIO(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "deterministic")
	return f.Close()
}

// callbacks passes functions around without goroutines or channels.
func callbacks(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}
