// Package htm is a nowallclock fixture: every construct below injects
// nondeterminism into a deterministic package and must be flagged.
package htm

import (
	"math/rand"
	"os"
	"time"
)

// wallClock reads the host clock instead of simulated cycles.
func wallClock() int64 {
	t := time.Now() // want `time\.Now in deterministic package "htm": use sim\.Engine\.Now`
	return t.UnixNano()
}

// sleeper stalls on host time instead of scheduling an event.
func sleeper() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package "htm": schedule with sim\.Engine\.After`
}

// globalRand draws from the shared, unseeded global generator.
func globalRand(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn in deterministic package "htm": use the seeded sim\.NewRNG`
}

// adHocSource builds a private source, still outside the seed tree.
func adHocSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New in deterministic package` // want `math/rand\.NewSource in deterministic package`
}

// envRead makes behavior depend on the process environment.
func envRead() string {
	return os.Getenv("LOCKILLER_MODE") // want `os\.Getenv in deterministic package "htm": thread configuration through Params/Config`
}

// spawn hands ordering to the Go scheduler.
func spawn(fn func()) {
	go fn() // want `goroutine in deterministic package "htm"`
}

// channels order by the runtime, not by simulated time.
func channels(c chan int) int {
	c <- 1 // want `channel send in deterministic package "htm"`
	v := <-c // want `channel receive in deterministic package "htm"`
	close(c) // want `channel close in deterministic package "htm"`
	return v
}

// selects are scheduler-dependent by construction.
func selects(a, b chan int) int {
	select { // want `select in deterministic package "htm"`
	case v := <-a: // want `channel receive in deterministic package "htm"`
		return v
	case v := <-b: // want `channel receive in deterministic package "htm"`
		return v
	}
}
