// Package sim fixture for the waiver's file scoping: right package, but the
// basename does not start with "par", so //lockiller:par-ok is ignored and
// every concurrency construct is flagged as usual.
package sim

func ignoredWaiver(ch chan int) {
	go func() {}() //lockiller:par-ok ignored outside par files // want `goroutine in deterministic package "sim"`
	ch <- 1        //lockiller:par-ok ignored outside par files // want `channel send in deterministic package "sim"`
	<-ch           //lockiller:par-ok ignored outside par files // want `channel receive in deterministic package "sim"`
	close(ch)      //lockiller:par-ok ignored outside par files // want `channel close in deterministic package "sim"`
}
