// Package sim fixture for the scoped //lockiller:par-ok waiver: this file's
// basename starts with "par", so it stands in for the PDES coordinator where
// waived concurrency is the execution-token handoff protocol. Waived lines
// must stay silent, unwaived concurrency must still be flagged, and the
// waiver must never excuse wall-clock reads.
package sim

import "time"

// tokenHandoff models the coordinator's span grant/return: every channel
// operation carries an explicit waiver and is accepted.
func tokenHandoff(grantCh chan int, doneCh chan struct{}) {
	go worker(grantCh, doneCh) //lockiller:par-ok one worker per tile group
	grantCh <- 1               //lockiller:par-ok span handoff
	<-doneCh                   //lockiller:par-ok token returns to the coordinator
	//lockiller:par-ok run ended; workers exit
	close(grantCh)
}

// selectWaived covers the select form of the handoff.
func selectWaived(a, b chan int) int {
	select { //lockiller:par-ok coordinator multiplexes worker completions
	case v := <-a: //lockiller:par-ok worker A result
		return v
	case v := <-b: //lockiller:par-ok worker B result
		return v
	}
}

func worker(grantCh chan int, doneCh chan struct{}) {
	for range grantCh {
		doneCh <- struct{}{} //lockiller:par-ok token returns to the coordinator
	}
}

// unwaived concurrency is still a violation, even in a par file: the waiver
// is per-line, not per-file.
func unwaived(ch chan int) {
	go func() {}() // want `goroutine in deterministic package "sim"`
	ch <- 1        // want `channel send in deterministic package "sim"`
	<-ch           // want `channel receive in deterministic package "sim"`
	close(ch)      // want `channel close in deterministic package "sim"`
}

// wallClockNotWaivable: par-ok only scopes the concurrency checks; the
// determinism ban on host time stands even in the coordinator.
func wallClockNotWaivable() int64 {
	t := time.Now() //lockiller:par-ok not honored for wall-clock // want `time\.Now in deterministic package "sim"`
	return t.UnixNano()
}
