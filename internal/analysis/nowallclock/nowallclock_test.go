package nowallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.RunFixtures(t, nowallclock.Analyzer, "testdata")
}
