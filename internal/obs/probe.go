// The PDES self-profiler: host-side counters for the discrete-event engine
// and the par.go span coordinator. The engine sees only the EngineProbe
// interface, injected from a non-deterministic layer (the harness or a
// CLI), and every callsite is nil-guarded, so the disabled cost is one
// pointer test per event.

package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// EngineProbe observes the simulation engine from the host side. All
// methods are invoked by whichever goroutine holds the PDES execution
// token (DESIGN.md §11) — at most one at any instant, with channel
// handoffs providing the happens-before edges — so implementations need no
// locking for the per-run path.
//
// EventBegin/EventEnd bracket one event dispatch; class names the handler
// (via sim.ProbeClasser) and kind is the handler's event discriminator.
// The remaining methods surface par-coordinator internals: Grant fires
// when a span is handed to a worker (width = cycles to the frozen
// horizon; all-ones means the horizon is unbounded — no other pending
// event exists), SpanEnd when the token returns (events = events the span
// executed), StrandExec for each inline coordinator execution of a
// global-strand event, and OutboxMerge for each post-span merge (n =
// staged events folded back).
type EngineProbe interface {
	EventBegin()
	EventEnd(class string, kind uint8)
	Grant(group int, width uint64)
	SpanEnd(group int, events uint64)
	StrandExec()
	OutboxMerge(n int)
}

// histBuckets is the power-of-two histogram width: bucket i counts values
// v with bits.Len64(v) == i, so bucket 0 is v==0 and bucket 63 covers the
// full uint64 range. Nanosecond dispatch times and span widths both fit.
const histBuckets = 64

// hist is a power-of-two-bucketed histogram.
type hist struct {
	n   uint64
	sum uint64
	b   [histBuckets]uint64
}

func (h *hist) add(v uint64) {
	h.n++
	h.sum += v
	b := bits.Len64(v)
	if b >= histBuckets { // values with the top bit set share the last bucket
		b = histBuckets - 1
	}
	h.b[b]++
}

func (h *hist) merge(o *hist) {
	h.n += o.n
	h.sum += o.sum
	for i := range h.b {
		h.b[i] += o.b[i]
	}
}

func (h *hist) mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// render prints "n=… mean=… p2max=…" — the count, mean, and the upper
// bound of the highest populated power-of-two bucket.
func (h *hist) render(w io.Writer, unit string) {
	top := 0
	for i, c := range h.b {
		if c > 0 {
			top = i
		}
	}
	bound := uint64(0)
	if top > 0 {
		bound = uint64(1) << top
	}
	fmt.Fprintf(w, "n=%d mean=%.1f%s max<%d%s", h.n, h.mean(), unit, bound, unit)
}

// eventKey identifies one dispatch-time series: the handler class plus its
// event-kind discriminator.
type eventKey struct {
	class string
	kind  uint8
}

// Profiler is the standard EngineProbe: per-event-type dispatch wall-time
// histograms plus the par-coordinator counters. One Profiler instruments
// one run; Merge folds runs into a sweep-level aggregate (Merge locks, the
// probe path does not — see EngineProbe's token-discipline contract).
// All methods are nil-receiver-safe so a nil *Profiler can be passed
// around freely without wrapping hazards.
type Profiler struct {
	mu sync.Mutex

	events map[eventKey]*hist
	t0     time.Time

	grants     uint64
	unbounded  uint64 // grants with no frozen horizon (all-ones width)
	spanWidth  hist   // grant width in simulated cycles (bounded grants only)
	spanEvents hist   // events executed per granted span
	strand     uint64
	outbox     hist // staged events per outbox merge
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{events: make(map[eventKey]*hist)}
}

// EventBegin implements EngineProbe.
func (p *Profiler) EventBegin() {
	if p == nil {
		return
	}
	p.t0 = time.Now()
}

// EventEnd implements EngineProbe.
func (p *Profiler) EventEnd(class string, kind uint8) {
	if p == nil {
		return
	}
	ns := uint64(time.Since(p.t0))
	k := eventKey{class: class, kind: kind}
	h := p.events[k]
	if h == nil {
		h = &hist{}
		p.events[k] = h
	}
	h.add(ns)
}

// Grant implements EngineProbe. The all-ones width is the unbounded-horizon
// sentinel: counted as a grant, but kept out of the width histogram so it
// cannot distort the mean.
func (p *Profiler) Grant(group int, width uint64) {
	if p == nil {
		return
	}
	p.grants++
	if width == ^uint64(0) {
		p.unbounded++
		return
	}
	p.spanWidth.add(width)
}

// SpanEnd implements EngineProbe.
func (p *Profiler) SpanEnd(group int, events uint64) {
	if p == nil {
		return
	}
	p.spanEvents.add(events)
}

// StrandExec implements EngineProbe.
func (p *Profiler) StrandExec() {
	if p == nil {
		return
	}
	p.strand++
}

// OutboxMerge implements EngineProbe.
func (p *Profiler) OutboxMerge(n int) {
	if p == nil {
		return
	}
	p.outbox.add(uint64(n))
}

// Events returns the total number of dispatches observed.
func (p *Profiler) Events() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, h := range p.events {
		n += h.n
	}
	return n
}

// Grants returns the number of spans handed to worker goroutines.
func (p *Profiler) Grants() uint64 {
	if p == nil {
		return 0
	}
	return p.grants
}

// Handoffs returns the channel handoffs the grants cost: every granted
// span is one grant send plus one completion receive.
func (p *Profiler) Handoffs() uint64 { return 2 * p.Grants() }

// StrandExecs returns the number of global-strand events the coordinator
// executed inline.
func (p *Profiler) StrandExecs() uint64 {
	if p == nil {
		return 0
	}
	return p.strand
}

// Merge folds another profiler's counters into p. The destination locks,
// so sweep workers may merge their per-run profilers concurrently; src
// must be quiescent (its run finished).
func (p *Profiler) Merge(src *Profiler) {
	if p == nil || src == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, h := range src.events {
		d := p.events[k]
		if d == nil {
			d = &hist{}
			p.events[k] = d
		}
		d.merge(h)
	}
	p.grants += src.grants
	p.unbounded += src.unbounded
	p.spanWidth.merge(&src.spanWidth)
	p.spanEvents.merge(&src.spanEvents)
	p.strand += src.strand
	p.outbox.merge(&src.outbox)
}

// Render writes the self-profile report: dispatch wall-time per event
// class/kind (sorted, so the layout is deterministic even though the
// host-time values are not), then the coordinator section when any par
// activity was observed.
func (p *Profiler) Render(w io.Writer) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]eventKey, 0, len(p.events))
	var totalNs, totalN uint64
	for k, h := range p.events {
		keys = append(keys, k)
		totalNs += h.sum
		totalN += h.n
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].kind < keys[j].kind
	})
	fmt.Fprintf(w, "engine self-profile: %d events, %s dispatch wall\n",
		totalN, time.Duration(totalNs).Round(time.Microsecond))
	for _, k := range keys {
		h := p.events[k]
		share := 0.0
		if totalNs > 0 {
			share = 100 * float64(h.sum) / float64(totalNs)
		}
		fmt.Fprintf(w, "  %-12s kind=%-3d %5.1f%%  ", k.class, k.kind, share)
		h.render(w, "ns")
		fmt.Fprintln(w)
	}
	if p.grants == 0 && p.strand == 0 && p.outbox.n == 0 {
		return
	}
	fmt.Fprintf(w, "par coordinator: grants=%d handoffs=%d strand=%d unbounded=%d\n",
		p.grants, 2*p.grants, p.strand, p.unbounded)
	fmt.Fprintf(w, "  span width  : ")
	p.spanWidth.render(w, "cy")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  span events : ")
	p.spanEvents.render(w, "")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  outbox merge: ")
	p.outbox.render(w, "")
	fmt.Fprintln(w)
}
