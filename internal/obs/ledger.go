// The structured run ledger: one schema-versioned JSONL record per harness
// execution, written sorted-key so records are byte-stable modulo the
// explicitly host-tagged fields (zeroed by Redacted for diff-based tests).

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sync"
)

// LedgerSchemaVersion is stamped into every record; ValidateLedger rejects
// records from any other version so schema drift fails loudly. Version 2
// added CacheSrc (which cache satisfied a hit: memo or disk).
const LedgerSchemaVersion = 2

// Record is one run's ledger entry. Fields are declared in alphabetical
// json-name order — encoding/json emits struct fields in declaration
// order, so this is what makes every line sorted-key and therefore
// byte-comparable. Each field carries an obs tag: "det" values are
// functions of the spec and seed alone (byte-identical across same-seed
// runs); "host" values depend on the machine the run happened on and are
// zeroed by Redacted.
type Record struct {
	// CacheHit reports whether the result came from a cache (the runner's
	// memo, a loaded results file, or the on-disk sweep cache) instead of
	// a fresh execution.
	CacheHit bool `json:"cache_hit" obs:"det"`
	// CacheSrc names the cache that satisfied a hit: "memo" for the
	// runner's in-process memo (and loaded results files), "disk" for the
	// persistent content-addressed store. Empty — and omitted — for fresh
	// executions.
	CacheSrc string `json:"cache_src,omitempty" obs:"det"`
	// Error is the execution error, if any ("" on success and then
	// omitted, so success records carry no empty field).
	Error string `json:"error,omitempty" obs:"det"`
	// Events is the number of simulation events executed.
	Events uint64 `json:"events" obs:"det"`
	// ExecCycles is the simulated makespan.
	ExecCycles uint64 `json:"exec_cycles" obs:"det"`
	// FusedRuns counts event-fusion fast-path runs (DESIGN.md §10).
	FusedRuns uint64 `json:"fused_runs" obs:"det"`
	// GCCycles, HeapAllocBytes, Mallocs, TotalAllocBytes are the host
	// allocator readings for the run (MemDelta).
	GCCycles       uint32 `json:"gc_cycles" obs:"host"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes" obs:"host"`
	// Key is the spec's memo key (harness.Spec.Key).
	Key     string `json:"key" obs:"det"`
	Mallocs uint64 `json:"mallocs" obs:"host"`
	// ParWorkers is the tile-parallel worker count (0 = sequential).
	ParWorkers int `json:"par_workers" obs:"det"`
	// Schema is LedgerSchemaVersion.
	Schema int `json:"schema" obs:"det"`
	// Seed is the simulation seed.
	Seed            uint64 `json:"seed" obs:"det"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes" obs:"host"`
	// WallNS is the host wall time of the execution in nanoseconds
	// (0 for cache hits).
	WallNS int64 `json:"wall_ns" obs:"host"`
}

// Redacted returns a copy with every host-tagged field zeroed. Two
// same-seed runs of the same sweep produce byte-identical redacted
// ledgers; the nightly determinism job diffs exactly that.
func (r Record) Redacted() Record {
	v := reflect.ValueOf(&r).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Tag.Get("obs") == "host" {
			v.Field(i).SetZero()
		}
	}
	return r
}

// Ledger accumulates run records and writes them as JSONL. Append is safe
// for concurrent use (sweep workers finish in arbitrary order); WriteTo
// sorts by key so the output is independent of completion order.
type Ledger struct {
	// Redact, when set, writes every record through Redacted — the
	// -obs-redact mode of the CLIs.
	Redact bool

	mu   sync.Mutex
	recs []Record
}

// Append adds one record, stamping the schema version.
func (l *Ledger) Append(r Record) {
	r.Schema = LedgerSchemaVersion
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// Len returns the number of appended records.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// WriteTo emits the ledger as JSONL, one record per line, sorted by key
// (ties keep append order). The byte stream is deterministic for a given
// record set, so sweeps are diffable regardless of worker scheduling.
func (l *Ledger) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	recs := make([]Record, len(l.recs))
	copy(recs, l.recs)
	l.mu.Unlock()
	sortRecords(recs)
	var n int64
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if l.Redact {
			r = r.Redacted()
		}
		b, err := json.Marshal(r)
		if err != nil {
			return n, err
		}
		k, err := bw.Write(append(b, '\n'))
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// sortRecords is a stable insertion sort by Key — the record count is a
// sweep's spec count, far below where O(n log n) matters, and stability
// keeps duplicate-key records (the same spec swept twice) in append order.
func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Key < recs[j-1].Key; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// ValidateLedger checks a JSONL ledger stream: every line must decode
// strictly into Record (unknown fields rejected), carry the current schema
// version and a non-empty key, emit its keys in sorted order, and the
// lines themselves must be sorted by record key. Returns the record count.
func ValidateLedger(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	prevKey := ""
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		n++
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return n, fmt.Errorf("obs: ledger line %d: %w", n, err)
		}
		if rec.Schema != LedgerSchemaVersion {
			return n, fmt.Errorf("obs: ledger line %d: schema %d, want %d", n, rec.Schema, LedgerSchemaVersion)
		}
		if rec.Key == "" {
			return n, fmt.Errorf("obs: ledger line %d: empty key", n)
		}
		if err := checkSortedKeys(line); err != nil {
			return n, fmt.Errorf("obs: ledger line %d: %w", n, err)
		}
		if n > 1 && rec.Key < prevKey {
			return n, fmt.Errorf("obs: ledger line %d: key %q sorts before previous %q", n, rec.Key, prevKey)
		}
		prevKey = rec.Key
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("obs: ledger: %w", err)
	}
	return n, nil
}

// checkSortedKeys verifies one flat JSON object emits its keys in sorted
// order. Records are flat by construction, so a single-level walk is
// enough (telemetry's validator handles the general nested case).
func checkSortedKeys(line []byte) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("record is not a JSON object")
	}
	prev := ""
	first := true
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("non-string object key %v", tok)
		}
		if !first && key <= prev {
			return fmt.Errorf("key %q not sorted after %q", key, prev)
		}
		first, prev = false, key
		var v json.RawMessage
		if err := dec.Decode(&v); err != nil {
			return err
		}
	}
	return nil
}
