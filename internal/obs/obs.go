// Package obs is the host-side observability layer: structured run
// ledgers, sweep progress streaming, and the PDES self-profiler.
//
// Everything in this package measures the *host* — wall-clock time,
// allocator pressure, coordinator handoffs — never the simulated machine.
// The simulated-time story lives in internal/telemetry; the two layers are
// deliberately disjoint so that observing a run can never perturb it. Two
// invariants keep the boundary sound:
//
//   - obs is a leaf package (stdlib only). Deterministic packages may
//     import it for the EngineProbe interface, but obs never imports them,
//     so no host state can flow back into model code.
//   - obs is the only package allowed to read the wall clock. The
//     lockillerlint `hostclock` analyzer enforces that `time.Now` (and its
//     siblings) appear nowhere else, and that every EngineProbe callsite in
//     the engine is nil-guarded, so the disabled path stays a pointer test.
//
// Host-derived values (wall times, MemStats deltas) are tagged `obs:"host"`
// in the ledger schema and can be zeroed with Record.Redacted, leaving a
// byte-stable record for diff-based determinism tests.
package obs

import (
	"runtime"
	"time"
)

// Timer measures host wall time from a fixed start. It wraps the monotonic
// clock reading so callers outside this package never touch time.Now
// directly (the hostclock lint rule).
type Timer struct {
	start time.Time
}

// StartTimer begins a wall-clock measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the wall time since the timer started. The Go runtime
// backs this with the monotonic clock, so it is immune to wall-clock steps.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// MemSnapshot captures runtime allocator counters at one instant; Delta
// subtracts a snapshot from the current state to get a per-run reading.
// ReadMemStats stops the world briefly, so snapshots belong at run
// boundaries, never inside the event loop.
type MemSnapshot struct {
	totalAlloc uint64
	mallocs    uint64
	numGC      uint32
}

// TakeMemSnapshot reads the allocator counters now.
func TakeMemSnapshot() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{totalAlloc: ms.TotalAlloc, mallocs: ms.Mallocs, numGC: ms.NumGC}
}

// MemDelta is the allocator activity between two snapshots, plus the
// current live-heap size at the later one.
type MemDelta struct {
	// TotalAllocBytes and Mallocs are cumulative counters, so their deltas
	// are exact per-interval figures even across garbage collections.
	TotalAllocBytes uint64
	Mallocs         uint64
	// GCCycles is the number of collections completed in the interval.
	GCCycles uint32
	// HeapAllocBytes is the live heap at measurement time (not a delta:
	// the "peak pressure" proxy the ledger records).
	HeapAllocBytes uint64
}

// Delta returns the allocator activity since the snapshot was taken.
func (s MemSnapshot) Delta() MemDelta {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemDelta{
		TotalAllocBytes: ms.TotalAlloc - s.totalAlloc,
		Mallocs:         ms.Mallocs - s.mallocs,
		GCCycles:        ms.NumGC - s.numGC,
		HeapAllocBytes:  ms.HeapAlloc,
	}
}
