// Sweep progress streaming: the harness Runner emits one ProgressEvent per
// completed spec through a pluggable sink. This is the seed of lockillerd's
// job-progress API — a daemon sink would forward the same events over HTTP.

package obs

import (
	"fmt"
	"io"
	"time"
)

// ProgressEvent describes one completed spec of a sweep.
type ProgressEvent struct {
	// Done and Total are the sweep position: Done specs finished out of
	// Total. Done is monotone — the runner serializes emission.
	Done, Total int
	// Key is the completed spec's memo key.
	Key string
	// CacheHit reports a cached result (Wall is then zero); CacheSrc names
	// the cache that answered ("memo" or "disk").
	CacheHit bool
	CacheSrc string
	// Err is the execution error message, "" on success.
	Err string
	// Wall is the host wall time of this spec's execution.
	Wall time.Duration
	// Elapsed is the wall time since the sweep started; ETA extrapolates
	// the remaining time from the mean pace so far (monotonic clock).
	Elapsed, ETA time.Duration
}

// ProgressSink receives sweep progress. The runner calls Event serially
// (under its progress lock), so implementations need no synchronization of
// their own and events arrive with non-decreasing Done.
type ProgressSink interface {
	Event(ProgressEvent)
}

// TextSink renders progress events as single lines, one per completed
// spec — the -obs view of the CLIs.
type TextSink struct {
	W io.Writer
}

// Event implements ProgressSink.
func (s *TextSink) Event(e ProgressEvent) {
	status := fmt.Sprintf("wall=%s", e.Wall.Round(time.Millisecond))
	switch {
	case e.Err != "":
		status = "FAILED"
	case e.CacheHit && e.CacheSrc != "" && e.CacheSrc != "memo":
		status = "cached(" + e.CacheSrc + ")"
	case e.CacheHit:
		status = "cached"
	}
	fmt.Fprintf(s.W, "[%*d/%d] %-40s %s eta=%s\n",
		digits(e.Total), e.Done, e.Total, e.Key, status, e.ETA.Round(time.Second))
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
