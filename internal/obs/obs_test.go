package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestRecordSchemaSorted asserts the schema invariant the whole ledger
// design rests on: every Record field carries an obs tag and the json
// names are declared in strictly increasing order, which is what makes
// encoding/json emit sorted-key lines.
func TestRecordSchemaSorted(t *testing.T) {
	rt := reflect.TypeOf(Record{})
	prev := ""
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "" {
			t.Fatalf("field %s has no json name", f.Name)
		}
		switch f.Tag.Get("obs") {
		case "det", "host":
		default:
			t.Errorf("field %s: obs tag %q, want det or host", f.Name, f.Tag.Get("obs"))
		}
		if i > 0 && name <= prev {
			t.Errorf("json name %q declared after %q: record lines would not be sorted-key", name, prev)
		}
		prev = name
	}
}

func fullRecord(key string) Record {
	return Record{
		CacheHit: true, CacheSrc: "memo", Error: "boom", Events: 1, ExecCycles: 2, FusedRuns: 3,
		GCCycles: 4, HeapAllocBytes: 5, Key: key, Mallocs: 6, ParWorkers: 7,
		Schema: LedgerSchemaVersion, Seed: 8, TotalAllocBytes: 9, WallNS: 10,
	}
}

func TestRedactedZeroesExactlyHostFields(t *testing.T) {
	r := fullRecord("k")
	red := r.Redacted()
	rv, ov := reflect.ValueOf(red), reflect.ValueOf(r)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		isZero := rv.Field(i).IsZero()
		if f.Tag.Get("obs") == "host" && !isZero {
			t.Errorf("host field %s survived redaction: %v", f.Name, rv.Field(i))
		}
		if f.Tag.Get("obs") == "det" && !reflect.DeepEqual(rv.Field(i).Interface(), ov.Field(i).Interface()) {
			t.Errorf("det field %s changed by redaction", f.Name)
		}
	}
}

func TestLedgerSortedOutputValidates(t *testing.T) {
	var l Ledger
	for _, k := range []string{"c", "a", "b", "a"} {
		rec := fullRecord(k)
		rec.Error = ""
		l.Append(rec)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateLedger: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("validated %d records, want 4", n)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var keys []string
	for _, ln := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, rec.Key)
	}
	if got, want := strings.Join(keys, ""), "aabc"; got != want {
		t.Fatalf("output key order %q, want %q", got, want)
	}
}

// TestRedactedLedgersByteIdentical is the diff-based determinism story:
// two ledgers that agree on det fields but differ on every host field
// must serialize identically under Redact.
func TestRedactedLedgersByteIdentical(t *testing.T) {
	mk := func(wall int64, mallocs uint64) *Ledger {
		l := &Ledger{Redact: true}
		rec := fullRecord("k")
		rec.Error = ""
		rec.WallNS, rec.Mallocs = wall, mallocs
		l.Append(rec)
		return l
	}
	var a, b bytes.Buffer
	if _, err := mk(123, 456).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := mk(789, 12).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("redacted ledgers differ:\n%s\n%s", a.String(), b.String())
	}
}

func TestValidateLedgerRejects(t *testing.T) {
	good := func(key string) string {
		rec := fullRecord(key)
		rec.Error = ""
		b, _ := json.Marshal(rec)
		return string(b)
	}
	cases := map[string]string{
		"unknown field": `{"bogus":1,"key":"k","schema":2}`,
		"bad schema":    `{"key":"k","schema":99}`,
		"empty key":     `{"key":"","schema":2}`,
		"unsorted keys": `{"schema":2,"key":"k"}`,
		"unsorted rows": good("b") + "\n" + good("a"),
		"not an object": `[1,2]`,
	}
	for name, in := range cases {
		if _, err := ValidateLedger(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateLedger accepted %q", name, in)
		}
	}
	if n, err := ValidateLedger(strings.NewReader(good("a") + "\n\n" + good("b") + "\n")); err != nil || n != 2 {
		t.Errorf("valid ledger rejected: n=%d err=%v", n, err)
	}
}

// TestProfilerNilReceiverSafe pins the typed-nil contract: every probe
// method and accessor must tolerate a nil *Profiler, because a nil
// concrete pointer wrapped in the EngineProbe interface is non-nil at the
// callsite guard.
func TestProfilerNilReceiverSafe(t *testing.T) {
	var p *Profiler
	p.EventBegin()
	p.EventEnd("core", 1)
	p.Grant(0, 8)
	p.SpanEnd(0, 2)
	p.StrandExec()
	p.OutboxMerge(3)
	p.Merge(NewProfiler())
	NewProfiler().Merge(p)
	p.Render(&bytes.Buffer{})
	if p.Events() != 0 || p.Grants() != 0 || p.Handoffs() != 0 || p.StrandExecs() != 0 {
		t.Fatal("nil profiler reported nonzero counts")
	}
}

func TestProfilerCountsAndMerge(t *testing.T) {
	run := func() *Profiler {
		p := NewProfiler()
		for i := 0; i < 3; i++ {
			p.EventBegin()
			p.EventEnd("core", 0)
		}
		p.EventBegin()
		p.EventEnd("l1", 2)
		p.Grant(1, 32)
		p.SpanEnd(1, 5)
		p.StrandExec()
		p.OutboxMerge(4)
		return p
	}
	agg := NewProfiler()
	agg.Merge(run())
	agg.Merge(run())
	if got := agg.Events(); got != 8 {
		t.Errorf("Events = %d, want 8", got)
	}
	if agg.Grants() != 2 || agg.Handoffs() != 4 || agg.StrandExecs() != 2 {
		t.Errorf("coordinator counts = %d/%d/%d, want 2/4/2",
			agg.Grants(), agg.Handoffs(), agg.StrandExecs())
	}
	var buf bytes.Buffer
	agg.Render(&buf)
	out := buf.String()
	for _, want := range []string{"core", "l1", "grants=2", "handoffs=4", "strand=2", "span width", "outbox merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	s := &TextSink{W: &buf}
	s.Event(ProgressEvent{Done: 1, Total: 12, Key: "a|b", Wall: 1500000})
	s.Event(ProgressEvent{Done: 2, Total: 12, Key: "c|d", CacheHit: true})
	s.Event(ProgressEvent{Done: 3, Total: 12, Key: "e|f", Err: "boom"})
	out := buf.String()
	for _, want := range []string{"[ 1/12]", "wall=2ms", "cached", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("sink output missing %q:\n%s", want, out)
		}
	}
}

func TestMemSnapshotDelta(t *testing.T) {
	s := TakeMemSnapshot()
	sink = make([]byte, 1<<20)
	d := s.Delta()
	if d.TotalAllocBytes < 1<<20 || d.Mallocs == 0 {
		t.Errorf("delta missed a 1MB allocation: %+v", d)
	}
}

var sink []byte
