// Package trace provides gem5-DPRINTF-style event tracing for the
// simulator: protocol messages, conflict arbitration decisions,
// transaction lifecycle events, and HTMLock activity, with category
// filtering and a bounded ring buffer so tracing long runs stays cheap.
//
// Tracing is opt-in: a nil *Tracer disables all recording, and every hook
// site is guarded, so the zero-cost path stays zero-cost.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/mem"
)

// Category classifies events for filtering.
type Category uint8

const (
	// CatProto: coherence requests, fills, forwards, NACKs.
	CatProto Category = iota
	// CatConflict: conflict detection and arbitration outcomes.
	CatConflict
	// CatTx: transaction begin/commit/abort and fallback decisions.
	CatTx
	// CatHTMLock: TL/STL entry, signature spills, LLC arbitration.
	CatHTMLock
	// CatLock: fallback-lock acquire/release/handover.
	CatLock
	// CatNoC: interconnect activity — link enqueue, serialization stalls,
	// and message delivery.
	CatNoC
	numCategories
)

func (c Category) String() string {
	names := [...]string{"proto", "conflict", "tx", "htmlock", "lock", "noc"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// ParseCategories parses a comma-separated filter list ("tx,conflict").
// An empty string enables every category.
func ParseCategories(s string) (map[Category]bool, error) {
	out := make(map[Category]bool)
	if s == "" {
		for c := Category(0); c < numCategories; c++ {
			out[c] = true
		}
		return out, nil
	}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for c := Category(0); c < numCategories; c++ {
			if c.String() == name {
				out[c] = true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: unknown category %q", name)
		}
	}
	return out, nil
}

// Event is one recorded occurrence.
type Event struct {
	Cycle uint64
	Core  int // acting core or bank (-1 for system-wide)
	Cat   Category
	Line  mem.Line // 0 when not line-addressed
	What  string
}

func (e Event) String() string {
	if e.Line != 0 {
		return fmt.Sprintf("%10d c%02d [%s] line=%d %s", e.Cycle, e.Core, e.Cat, e.Line, e.What)
	}
	return fmt.Sprintf("%10d c%02d [%s] %s", e.Cycle, e.Core, e.Cat, e.What)
}

// Tracer records events into a bounded ring buffer.
//lockiller:shared-state
type Tracer struct {
	cats  map[Category]bool
	ring  []Event
	next  int
	total uint64
	// Now supplies the current cycle; installed by the machine.
	Now func() uint64
}

// New creates a tracer keeping the last n events of the given categories
// (nil cats = all categories).
func New(n int, cats map[Category]bool) *Tracer {
	if n <= 0 {
		n = 4096
	}
	if cats == nil {
		cats, _ = ParseCategories("")
	}
	return &Tracer{cats: cats, ring: make([]Event, 0, n)}
}

// Enabled reports whether the category is recorded; hook sites use it to
// skip argument formatting.
func (t *Tracer) Enabled(c Category) bool {
	return t != nil && t.cats[c]
}

// Emit records an event. Callers must have checked Enabled.
func (t *Tracer) Emit(core int, cat Category, line mem.Line, what string) {
	if t == nil || !t.cats[cat] {
		return
	}
	var cyc uint64
	if t.Now != nil {
		cyc = t.Now()
	}
	ev := Event{Cycle: cyc, Core: core, Cat: cat, Line: line, What: what}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
}

// Emitf is Emit with formatting.
func (t *Tracer) Emitf(core int, cat Category, line mem.Line, format string, args ...interface{}) {
	if t == nil || !t.cats[cat] {
		return
	}
	t.Emit(core, cat, line, fmt.Sprintf(format, args...))
}

// Total returns the number of events recorded (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Render writes the retained events, one per line.
func (t *Tracer) Render(w io.Writer) {
	if t == nil {
		return
	}
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
	fmt.Fprintf(w, "(%d events recorded, %d retained)\n", t.total, len(t.ring))
}
