package trace

import (
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(CatProto) {
		t.Fatal("nil tracer must be disabled")
	}
	tr.Emit(0, CatProto, 1, "x") // must not panic
	tr.Emitf(0, CatTx, 0, "y %d", 1)
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var sb strings.Builder
	tr.Render(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil tracer rendered output")
	}
}

func TestRingBufferKeepsLatest(t *testing.T) {
	tr := New(4, nil)
	now := uint64(0)
	tr.Now = func() uint64 { now++; return now }
	for i := 0; i < 10; i++ {
		tr.Emitf(i, CatProto, 0, "ev%d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Core != 6 || evs[3].Core != 9 {
		t.Fatalf("wrong window: %+v", evs)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	// Chronological order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatal("events out of order")
		}
	}
}

func TestCategoryFiltering(t *testing.T) {
	cats, err := ParseCategories("tx,conflict")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(16, cats)
	tr.Emit(0, CatProto, 0, "dropped")
	tr.Emit(0, CatTx, 0, "kept")
	tr.Emit(0, CatConflict, 0, "kept")
	if tr.Total() != 2 {
		t.Fatalf("total = %d, want 2", tr.Total())
	}
	if !tr.Enabled(CatTx) || tr.Enabled(CatHTMLock) {
		t.Fatal("Enabled wrong")
	}
}

func TestParseCategoriesErrors(t *testing.T) {
	if _, err := ParseCategories("nope"); err == nil {
		t.Fatal("unknown category must error")
	}
	all, err := ParseCategories("")
	if err != nil || len(all) != int(numCategories) {
		t.Fatalf("empty filter should enable all: %v %v", all, err)
	}
	if !all[CatNoC] {
		t.Fatal("empty filter should include noc")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, Core: 3, Cat: CatConflict, Line: 100, What: "reject"}
	s := e.String()
	for _, frag := range []string{"42", "c03", "conflict", "line=100", "reject"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("%q missing %q", s, frag)
		}
	}
	// Line 0 omits the line field.
	e2 := Event{Cycle: 1, Core: 0, Cat: CatTx, What: "xbegin"}
	if strings.Contains(e2.String(), "line=") {
		t.Fatal("line=0 should be omitted")
	}
}

func TestRender(t *testing.T) {
	tr := New(8, nil)
	tr.Emit(1, CatTx, 0, "commit")
	var sb strings.Builder
	tr.Render(&sb)
	if !strings.Contains(sb.String(), "commit") || !strings.Contains(sb.String(), "1 events") {
		t.Fatalf("render: %s", sb.String())
	}
}
