package stats

import (
	"fmt"
	"io"
)

// Traffic aggregates memory-subsystem activity for a run: the protocol
// counters the paper's mechanisms are designed to influence (NACKs,
// rejections, wake-ups, signature spills) plus NoC load. It is filled by
// the machine at the end of a run.
type Traffic struct {
	// NoC.
	Messages  uint64 // messages injected
	FlitHops  uint64 // flits x links traversed (bandwidth demand)
	QueueWait uint64 // cycles messages spent queued on busy links

	// L1 protocol activity.
	L1Hits, L1Misses uint64
	TxWBs            uint64 // pre-transactional writebacks
	NacksSent        uint64 // Fig. 3 self-invalidation notices
	RejectsSent      uint64 // toxic requests withdrawn (recovery)
	RejectsReceived  uint64
	WakesSent        uint64 // wake-up table drains
	SignatureSpills  uint64 // lock-tx lines overflowed into LLC signatures
	SwitchTries      uint64 // switchingMode applications
	SwitchGrants     uint64

	// Directory / LLC activity.
	DirRequests   uint64
	LLCRejections uint64 // signature-hit rejections at the LLC
	MemFetches    uint64
	BackInvals    uint64

	// Lock activity.
	LockAcquisitions uint64
	LockHandovers    uint64
}

// Merge adds o's counters into t. The machine folds one partial Traffic
// per tile group and merges them in group order, so totals are identical
// between the sequential and sharded engines (uint64 addition is exact and
// associative; only the fold order is fixed for clarity).
func (t *Traffic) Merge(o *Traffic) {
	t.Messages += o.Messages
	t.FlitHops += o.FlitHops
	t.QueueWait += o.QueueWait
	t.L1Hits += o.L1Hits
	t.L1Misses += o.L1Misses
	t.TxWBs += o.TxWBs
	t.NacksSent += o.NacksSent
	t.RejectsSent += o.RejectsSent
	t.RejectsReceived += o.RejectsReceived
	t.WakesSent += o.WakesSent
	t.SignatureSpills += o.SignatureSpills
	t.SwitchTries += o.SwitchTries
	t.SwitchGrants += o.SwitchGrants
	t.DirRequests += o.DirRequests
	t.LLCRejections += o.LLCRejections
	t.MemFetches += o.MemFetches
	t.BackInvals += o.BackInvals
	t.LockAcquisitions += o.LockAcquisitions
	t.LockHandovers += o.LockHandovers
}

// L1MissRate returns misses / (hits + misses).
func (t *Traffic) L1MissRate() float64 {
	total := t.L1Hits + t.L1Misses
	if total == 0 {
		return 0
	}
	return float64(t.L1Misses) / float64(total)
}

// Render writes a human-readable traffic summary.
func (t *Traffic) Render(w io.Writer) {
	fmt.Fprintf(w, "traffic: msgs=%d flit-hops=%d queue-wait=%d\n", t.Messages, t.FlitHops, t.QueueWait)
	fmt.Fprintf(w, "  L1: hits=%d misses=%d (%.1f%% miss) txwb=%d\n",
		t.L1Hits, t.L1Misses, 100*t.L1MissRate(), t.TxWBs)
	fmt.Fprintf(w, "  recovery: nacks=%d rejects=%d/%d wakes=%d\n",
		t.NacksSent, t.RejectsSent, t.RejectsReceived, t.WakesSent)
	fmt.Fprintf(w, "  htmlock: spills=%d llc-rejects=%d switch=%d/%d\n",
		t.SignatureSpills, t.LLCRejections, t.SwitchGrants, t.SwitchTries)
	fmt.Fprintf(w, "  dir: reqs=%d mem=%d backinval=%d  lock: acq=%d handover=%d\n",
		t.DirRequests, t.MemFetches, t.BackInvals, t.LockAcquisitions, t.LockHandovers)
}
