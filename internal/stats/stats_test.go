package stats

import (
	"strings"
	"testing"

	"repro/internal/htm"
)

func TestSegmentAccounting(t *testing.T) {
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	c.StartSegment(CatHTM, 10)      // [0,10) non-tran
	c.StartSegment(CatWaitLock, 25) // [10,25) htm
	c.Finish(40)                    // [25,40) waitlock
	if c.Cycles[CatNonTx] != 10 || c.Cycles[CatHTM] != 15 || c.Cycles[CatWaitLock] != 15 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
	if c.TotalCycles() != 40 {
		t.Fatalf("total = %d", c.TotalCycles())
	}
}

func TestCloseAsReclassifies(t *testing.T) {
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	c.StartSegment(CatHTM, 0)
	c.CloseAs(CatAborted, CatRollback, 100) // the attempt aborted
	c.Finish(130)
	if c.Cycles[CatHTM] != 0 {
		t.Fatal("aborted attempt cycles leaked into htm")
	}
	if c.Cycles[CatAborted] != 100 || c.Cycles[CatRollback] != 30 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
}

func TestCommitRate(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Attempts, r.Cores[0].Commits = 10, 5
	r.Cores[1].Attempts, r.Cores[1].Commits = 10, 10
	if got := r.CommitRate(); got != 0.75 {
		t.Fatalf("commit rate = %v", got)
	}
	empty := NewRun("s", "w", 1)
	if empty.CommitRate() != 1 {
		t.Fatal("no attempts should read as 1.0 (CGL)")
	}
}

func TestAbortAccounting(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Abort(htm.CauseMC)
	r.Cores[0].Abort(htm.CauseMC)
	r.Cores[1].Abort(htm.CauseOverflow)
	total, by := r.TotalAborts()
	if total != 3 || by[htm.CauseMC] != 2 || by[htm.CauseOverflow] != 1 {
		t.Fatalf("total=%d by=%v", total, by)
	}
	share := r.AbortShare()
	if share[htm.CauseMC] < 0.66 || share[htm.CauseMC] > 0.67 {
		t.Fatalf("share = %v", share)
	}
}

func TestBreakdownNormalized(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Cycles[CatHTM] = 30
	r.Cores[0].Cycles[CatNonTx] = 70
	r.Cores[1].Cycles[CatLock] = 100
	bd := r.Breakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if bd[CatHTM] != 0.15 || bd[CatLock] != 0.5 {
		t.Fatalf("bd = %v", bd)
	}
	if z := (&Run{}).Breakdown(); z[CatHTM] != 0 {
		t.Fatal("empty run breakdown must be zeros")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatHTM: "htm", CatAborted: "aborted", CatLock: "lock",
		CatSwitchLock: "switchLock", CatNonTx: "non-tran",
		CatWaitLock: "waitlock", CatRollback: "rollback",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d = %q, want %q", c, c.String(), s)
		}
	}
}

func TestRunString(t *testing.T) {
	r := NewRun("LockillerTM", "yada", 2)
	r.ExecCycles = 123
	r.Cores[0].Attempts, r.Cores[0].Commits = 4, 2
	r.Cores[0].Abort(htm.CauseFault)
	s := r.String()
	for _, frag := range []string{"yada", "LockillerTM", "123", "fault=1"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary %q missing %q", s, frag)
		}
	}
}

func TestSectionsSum(t *testing.T) {
	r := NewRun("s", "w", 3)
	r.Cores[0].Sections = 5
	r.Cores[2].Sections = 7
	if r.Sections() != 12 {
		t.Fatalf("sections = %d", r.Sections())
	}
}
