package stats

import (
	"strings"
	"testing"

	"repro/internal/htm"
)

func TestSegmentAccounting(t *testing.T) {
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	c.StartSegment(CatHTM, 10)      // [0,10) non-tran
	c.StartSegment(CatWaitLock, 25) // [10,25) htm
	c.Finish(40)                    // [25,40) waitlock
	if c.Cycles[CatNonTx] != 10 || c.Cycles[CatHTM] != 15 || c.Cycles[CatWaitLock] != 15 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
	if c.TotalCycles() != 40 {
		t.Fatalf("total = %d", c.TotalCycles())
	}
}

func TestCloseAsReclassifies(t *testing.T) {
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	c.StartSegment(CatHTM, 0)
	c.CloseAs(CatAborted, CatRollback, 100) // the attempt aborted
	c.Finish(130)
	if c.Cycles[CatHTM] != 0 {
		t.Fatal("aborted attempt cycles leaked into htm")
	}
	if c.Cycles[CatAborted] != 100 || c.Cycles[CatRollback] != 30 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
}

func TestCommitRate(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Attempts, r.Cores[0].Commits = 10, 5
	r.Cores[1].Attempts, r.Cores[1].Commits = 10, 10
	if got := r.CommitRate(); got != 0.75 {
		t.Fatalf("commit rate = %v", got)
	}
	empty := NewRun("s", "w", 1)
	if empty.CommitRate() != 1 {
		t.Fatal("no attempts should read as 1.0 (CGL)")
	}
}

func TestAbortAccounting(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Abort(htm.CauseMC)
	r.Cores[0].Abort(htm.CauseMC)
	r.Cores[1].Abort(htm.CauseOverflow)
	total, by := r.TotalAborts()
	if total != 3 || by[htm.CauseMC] != 2 || by[htm.CauseOverflow] != 1 {
		t.Fatalf("total=%d by=%v", total, by)
	}
	share := r.AbortShare()
	if share[htm.CauseMC] < 0.66 || share[htm.CauseMC] > 0.67 {
		t.Fatalf("share = %v", share)
	}
}

func TestBreakdownNormalized(t *testing.T) {
	r := NewRun("s", "w", 2)
	r.Cores[0].Cycles[CatHTM] = 30
	r.Cores[0].Cycles[CatNonTx] = 70
	r.Cores[1].Cycles[CatLock] = 100
	bd := r.Breakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if bd[CatHTM] != 0.15 || bd[CatLock] != 0.5 {
		t.Fatalf("bd = %v", bd)
	}
	if z := (&Run{}).Breakdown(); z[CatHTM] != 0 {
		t.Fatal("empty run breakdown must be zeros")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatHTM: "htm", CatAborted: "aborted", CatLock: "lock",
		CatSwitchLock: "switchLock", CatNonTx: "non-tran",
		CatWaitLock: "waitlock", CatRollback: "rollback",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d = %q, want %q", c, c.String(), s)
		}
	}
}

func TestRunString(t *testing.T) {
	r := NewRun("LockillerTM", "yada", 2)
	r.ExecCycles = 123
	r.Cores[0].Attempts, r.Cores[0].Commits = 4, 2
	r.Cores[0].Abort(htm.CauseFault)
	s := r.String()
	for _, frag := range []string{"yada", "LockillerTM", "123", "fault=1"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary %q missing %q", s, frag)
		}
	}
}

// sinkRec records every flushed segment for the SegmentSink tests.
type sinkRec struct {
	segs []struct {
		core       int
		cat        Category
		start, end uint64
	}
}

func (s *sinkRec) Segment(core int, cat Category, start, end uint64) {
	s.segs = append(s.segs, struct {
		core       int
		cat        Category
		start, end uint64
	}{core, cat, start, end})
}

func TestCloseAsAtSegmentBoundary(t *testing.T) {
	// An abort landing exactly on the cycle the segment opened closes a
	// zero-length segment: no cycles move, and the sink must not see it.
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	sink := &sinkRec{}
	c.Sink = sink
	c.StartSegment(CatHTM, 50)
	c.CloseAs(CatAborted, CatRollback, 50) // abort at the boundary
	c.Finish(60)
	if c.Cycles[CatAborted] != 0 {
		t.Fatalf("zero-length abort segment accrued cycles: %v", c.Cycles)
	}
	if c.Cycles[CatRollback] != 10 {
		t.Fatalf("rollback cycles = %v", c.Cycles)
	}
	for _, s := range sink.segs {
		if s.start == s.end {
			t.Fatalf("sink saw zero-length segment %+v", s)
		}
	}
}

func TestZeroLengthSegmentsSkipSink(t *testing.T) {
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	sink := &sinkRec{}
	c.Sink = sink
	c.StartSegment(CatHTM, 0)      // closes [0,0) non-tran: zero-length
	c.StartSegment(CatWaitLock, 0) // closes [0,0) htm: zero-length
	c.StartSegment(CatLock, 20)    // closes [0,20) waitlock
	c.Finish(20)                   // closes [20,20) lock: zero-length
	if len(sink.segs) != 1 {
		t.Fatalf("sink got %d segments, want 1: %+v", len(sink.segs), sink.segs)
	}
	s := sink.segs[0]
	if s.cat != CatWaitLock || s.start != 0 || s.end != 20 || s.core != 0 {
		t.Fatalf("segment = %+v", s)
	}
	if c.TotalCycles() != 20 {
		t.Fatalf("total = %d", c.TotalCycles())
	}
}

func TestFinishFlushesFinalSegment(t *testing.T) {
	// Finish at simulation end must flush the open segment to both the
	// cycle accumulators and the sink, and sink totals must equal the
	// accumulator totals (no cycles invisible to telemetry).
	r := NewRun("sys", "wl", 1)
	c := r.Cores[0]
	sink := &sinkRec{}
	c.Sink = sink
	c.StartSegment(CatHTM, 10)
	c.CloseAs(CatAborted, CatRollback, 25)
	c.StartSegment(CatHTM, 30)
	c.CloseAs(CatHTM, CatNonTx, 55) // committed: keep htm
	c.Finish(70)
	var sunk uint64
	for _, s := range sink.segs {
		sunk += s.end - s.start
	}
	if sunk != c.TotalCycles() {
		t.Fatalf("sink saw %d cycles, accumulators saw %d", sunk, c.TotalCycles())
	}
	last := sink.segs[len(sink.segs)-1]
	if last.cat != CatNonTx || last.end != 70 {
		t.Fatalf("final flush = %+v", last)
	}
	if c.Cycles[CatAborted] != 15 || c.Cycles[CatHTM] != 25 ||
		c.Cycles[CatRollback] != 5 || c.Cycles[CatNonTx] != 25 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
}

func TestRenderTransitionProfileDeterministic(t *testing.T) {
	profile := []TransitionCount{
		{Table: "l1req", From: "I", On: "load", To: "StoS", Label: "miss", Count: 7},
		{Table: "l1req", From: "I", On: "store", To: "StoM", Label: "miss", Count: 9},
		{Table: "l1req", From: "S", On: "store", Guard: "in-tx", To: "StoM", Label: "upg", Count: 9},
		{Table: "dir", From: "M", On: "GetS", To: "S", Label: "fwd", Count: 3},
		{Table: "dir", From: "I", On: "GetS", To: "S", Label: "mem", Count: 0},
	}
	a := TransitionProfileString(profile)
	b := TransitionProfileString(profile)
	if a != b {
		t.Fatalf("two renders differ:\n%s\n---\n%s", a, b)
	}
	// Sorted-key order: tables alphabetical, rows by (From, On, Guard).
	if !strings.Contains(a, "table dir") || strings.Index(a, "table dir") > strings.Index(a, "table l1req") {
		t.Fatalf("tables not in sorted order:\n%s", a)
	}
	iLoad := strings.Index(a, "I x load")
	iStore := strings.Index(a, "I x store")
	sStore := strings.Index(a, "S x store [in-tx]")
	if iLoad < 0 || iStore < 0 || sStore < 0 || !(iLoad < iStore && iStore < sStore) {
		t.Fatalf("rows not in key order:\n%s", a)
	}
	if !strings.Contains(a, "1 never fired") {
		t.Fatalf("cold-transition summary missing:\n%s", a)
	}
}

func TestSectionsSum(t *testing.T) {
	r := NewRun("s", "w", 3)
	r.Cores[0].Sections = 5
	r.Cores[2].Sections = 7
	if r.Sections() != 12 {
		t.Fatalf("sections = %d", r.Sections())
	}
}
