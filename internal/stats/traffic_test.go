package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestTrafficMergeCoversEveryField fills two Traffic values with distinct
// random counters via reflection and checks Merge sums every uint64 field —
// so a counter added to the struct without a matching Merge line fails here
// instead of silently vanishing from sharded-engine runs.
func TestTrafficMergeCoversEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fill := func(tr *Traffic) {
		v := reflect.ValueOf(tr).Elem()
		for i := 0; i < v.NumField(); i++ {
			v.Field(i).SetUint(uint64(rng.Int63n(1 << 30)))
		}
	}
	var a, b Traffic
	fill(&a)
	fill(&b)
	got := a
	got.Merge(&b)
	va, vb, vg := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(got)
	typ := va.Type()
	for i := 0; i < typ.NumField(); i++ {
		want := va.Field(i).Uint() + vb.Field(i).Uint()
		if vg.Field(i).Uint() != want {
			t.Errorf("Merge dropped or mis-summed field %s: got %d, want %d",
				typ.Field(i).Name, vg.Field(i).Uint(), want)
		}
	}
}

// TestTrafficMergeOrderIrrelevant pins the property collectTraffic relies
// on: folding per-group partials yields the same totals in any order.
func TestTrafficMergeOrderIrrelevant(t *testing.T) {
	parts := []Traffic{
		{L1Hits: 3, DirRequests: 7, NacksSent: 1},
		{L1Hits: 11, MemFetches: 5},
		{L1Misses: 2, DirRequests: 1, BackInvals: 9},
	}
	var fwd, rev Traffic
	for i := range parts {
		fwd.Merge(&parts[i])
		rev.Merge(&parts[len(parts)-1-i])
	}
	if fwd != rev {
		t.Errorf("merge order changed totals:\nfwd: %+v\nrev: %+v", fwd, rev)
	}
}
