// Package stats collects the measurements the paper's evaluation reports:
// the per-core execution-time breakdown (Figs. 9 and 11), transaction
// commit rates (Fig. 8), and the abort-cause distribution (Fig. 10).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/htm"
)

// Category partitions every core cycle, matching the paper's breakdown:
// htm (useful speculative work), aborted (wasted speculative work), lock
// (inside a lock-mode critical section), switchLock (a transaction that
// successfully switched to HTMLock mode — Fig. 11's new category),
// non-tran (non-transactional work and barriers), waitlock (waiting to
// acquire or for the release of the fallback lock), and rollback
// (abort penalty and backoff).
type Category uint8

const (
	CatHTM Category = iota
	CatAborted
	CatLock
	CatSwitchLock
	CatNonTx
	CatWaitLock
	CatRollback
	NumCategories
)

func (c Category) String() string {
	names := [...]string{"htm", "aborted", "lock", "switchLock", "non-tran", "waitlock", "rollback"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// SegmentSink receives every closed per-core cycle segment as it is
// flushed — the telemetry layer implements it to build Chrome-trace spans
// and per-interval cycle-share curves without a second accounting pass.
// Zero-length segments are never delivered.
type SegmentSink interface {
	Segment(core int, cat Category, start, end uint64)
}

// Core accumulates one hardware thread's measurements.
type Core struct {
	// ID is the core's index within the run.
	ID int
	// Sink, when non-nil, observes every closed cycle segment.
	Sink SegmentSink

	Cycles [NumCategories]uint64

	// Transaction accounting. Attempts counts speculative (HTM) execution
	// attempts; Commits those that committed; Aborts[cause] those that
	// rolled back, by cause. Lock-mode executions (TL/STL/mutex) are
	// counted separately.
	Attempts uint64
	Commits  uint64
	Aborts   [int(htm.CauseFault) + 1]uint64

	LockRuns   uint64 // sections executed on the fallback path (TL/mutex)
	SwitchRuns uint64 // sections that committed after switching to STL

	Sections uint64 // atomic sections completed
	Barriers uint64

	// Internal segment tracking.
	segStart uint64
	segCat   Category
}

// StartSegment begins attributing cycles to the category at time now.
func (c *Core) StartSegment(cat Category, now uint64) {
	c.Cycles[c.segCat] += now - c.segStart
	if c.Sink != nil && now > c.segStart {
		c.Sink.Segment(c.ID, c.segCat, c.segStart, now)
	}
	c.segStart = now
	c.segCat = cat
}

// CloseAs flushes the open segment into `as` — regardless of what category
// it was opened under — and starts a new segment in next. Speculative
// attempts need this: their cycles are attributed tentatively to htm and
// reclassified (aborted / switchLock) only once the attempt's fate is
// known.
func (c *Core) CloseAs(as, next Category, now uint64) {
	c.Cycles[as] += now - c.segStart
	if c.Sink != nil && now > c.segStart {
		c.Sink.Segment(c.ID, as, c.segStart, now)
	}
	c.segStart = now
	c.segCat = next
}

// Finish closes the last segment at time now.
func (c *Core) Finish(now uint64) { c.StartSegment(CatNonTx, now) }

// Abort records an aborted attempt.
func (c *Core) Abort(cause htm.AbortCause) {
	c.Aborts[cause]++
}

// TotalCycles returns the sum over all categories.
func (c *Core) TotalCycles() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// Run aggregates a whole simulation's results.
//lockiller:shared-state
type Run struct {
	System   string
	Workload string
	Threads  int
	Cores    []*Core
	// ExecCycles is the makespan: the cycle at which the last thread
	// finished its program.
	ExecCycles uint64
	// Traffic is the memory-subsystem activity summary.
	Traffic Traffic
	// Transitions is the protocol-table heat profile: how often each
	// declared transition fired (see transitions.go).
	Transitions []TransitionCount
	// EventsExecuted is the number of simulation events the engine
	// dispatched; FusedRuns the number of event-fusion fast-path runs the
	// cores executed inline (DESIGN.md §10). Both are deterministic for a
	// spec and identical between the sequential and sharded engines, but
	// they legitimately differ between fusion on and off — the fusion
	// equivalence tests compare architectural fields, not these.
	EventsExecuted uint64
	FusedRuns      uint64
}

// NewRun allocates per-core accumulators.
func NewRun(system, workload string, threads int) *Run {
	r := &Run{System: system, Workload: workload, Threads: threads}
	for i := 0; i < threads; i++ {
		r.Cores = append(r.Cores, &Core{ID: i, segCat: CatNonTx})
	}
	return r
}

// CommitRate returns committed / attempted HTM transactions across all
// cores (1.0 when nothing speculative ran — e.g. CGL).
func (r *Run) CommitRate() float64 {
	var att, com uint64
	for _, c := range r.Cores {
		att += c.Attempts
		com += c.Commits
	}
	if att == 0 {
		return 1
	}
	return float64(com) / float64(att)
}

// TotalAborts sums aborts by cause across cores.
func (r *Run) TotalAborts() (total uint64, byCause map[htm.AbortCause]uint64) {
	byCause = make(map[htm.AbortCause]uint64)
	for _, c := range r.Cores {
		for cause, n := range c.Aborts {
			if n > 0 && cause != int(htm.CauseNone) {
				byCause[htm.AbortCause(cause)] += n
				total += n
			}
		}
	}
	return
}

// AbortShare returns each cause's share of all aborts, normalized to the
// number of attempts (Fig. 10 plots "percentage of different reasons for
// the abort of transactions").
func (r *Run) AbortShare() map[htm.AbortCause]float64 {
	total, by := r.TotalAborts()
	out := make(map[htm.AbortCause]float64)
	if total == 0 {
		return out
	}
	for cause, n := range by {
		out[cause] = float64(n) / float64(total)
	}
	return out
}

// Breakdown returns the fraction of total core cycles in each category
// (Figs. 9 and 11).
func (r *Run) Breakdown() [NumCategories]float64 {
	var cyc [NumCategories]uint64
	var total uint64
	for _, c := range r.Cores {
		for i, v := range c.Cycles {
			cyc[i] += v
			total += v
		}
	}
	var out [NumCategories]float64
	if total == 0 {
		return out
	}
	for i, v := range cyc {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// Sections returns the total atomic sections completed (sanity: must equal
// the workload's section count regardless of system).
func (r *Run) Sections() uint64 {
	var t uint64
	for _, c := range r.Cores {
		t += c.Sections
	}
	return t
}

// String formats a compact single-run summary.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s t=%d cycles=%d commit=%.3f", r.Workload, r.System, r.Threads, r.ExecCycles, r.CommitRate())
	_, by := r.TotalAborts()
	if len(by) > 0 {
		causes := make([]htm.AbortCause, 0, len(by))
		for c := range by {
			causes = append(causes, c)
		}
		sort.Slice(causes, func(i, j int) bool { return causes[i] < causes[j] })
		b.WriteString(" aborts:")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s=%d", c, by[c])
		}
	}
	return b.String()
}
