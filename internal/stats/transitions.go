package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TransitionCount is one row of the protocol-table heat profile: a declared
// (state, event) transition and how often it fired during a run. The rows
// are produced by coherence.(*System).TransitionProfile in declaration
// order; Label is the transition's first action (a display handle).
type TransitionCount struct {
	Table string
	From  string
	On    string
	Guard string // "" when unguarded
	To    string // "·" when the actions keep state authority
	Label string
	Count uint64
}

// RenderTransitionProfile writes the heat profile grouped by table. Tables
// and rows render in sorted-key order — table name, then (From, On, Guard) —
// so two renders of the same profile (and diffs across runs) are
// byte-stable regardless of how the rows were produced. Zero-count
// transitions are elided row-by-row but summarized per table, so cold spots
// read as coverage information rather than disappearing silently.
func RenderTransitionProfile(w io.Writer, profile []TransitionCount) {
	byTable := make(map[string][]TransitionCount)
	for _, tc := range profile {
		byTable[tc.Table] = append(byTable[tc.Table], tc)
	}
	names := make([]string, 0, len(byTable))
	for name := range byTable {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := byTable[name]
		var total uint64
		cold := 0
		for _, tc := range rows {
			total += tc.Count
			if tc.Count == 0 {
				cold++
			}
		}
		fmt.Fprintf(w, "table %s: %d transitions, %d fired, %d never fired\n",
			name, len(rows), total, cold)
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.On != b.On {
				return a.On < b.On
			}
			return a.Guard < b.Guard
		})
		for _, tc := range rows {
			if tc.Count == 0 {
				continue
			}
			guard := ""
			if tc.Guard != "" {
				guard = " [" + tc.Guard + "]"
			}
			fmt.Fprintf(w, "  %12d  %s x %s%s -> %s (%s)\n",
				tc.Count, tc.From, tc.On, guard, tc.To, tc.Label)
		}
	}
}

// TransitionProfileString renders the heat profile to a string.
func TransitionProfileString(profile []TransitionCount) string {
	var b strings.Builder
	RenderTransitionProfile(&b, profile)
	return b.String()
}
