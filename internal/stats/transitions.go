package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TransitionCount is one row of the protocol-table heat profile: a declared
// (state, event) transition and how often it fired during a run. The rows
// are produced by coherence.(*System).TransitionProfile in declaration
// order; Label is the transition's first action (a display handle).
type TransitionCount struct {
	Table string
	From  string
	On    string
	Guard string // "" when unguarded
	To    string // "·" when the actions keep state authority
	Label string
	Count uint64
}

// RenderTransitionProfile writes the heat profile grouped by table, hottest
// transitions first. Zero-count transitions are elided row-by-row but
// summarized per table, so cold spots read as coverage information rather
// than disappearing silently.
func RenderTransitionProfile(w io.Writer, profile []TransitionCount) {
	byTable := make(map[string][]TransitionCount)
	var order []string
	for _, tc := range profile {
		if _, seen := byTable[tc.Table]; !seen {
			order = append(order, tc.Table)
		}
		byTable[tc.Table] = append(byTable[tc.Table], tc)
	}
	for _, name := range order {
		rows := byTable[name]
		var total uint64
		cold := 0
		for _, tc := range rows {
			total += tc.Count
			if tc.Count == 0 {
				cold++
			}
		}
		fmt.Fprintf(w, "table %s: %d transitions, %d fired, %d never fired\n",
			name, len(rows), total, cold)
		// Hottest first; declaration order breaks ties so the listing is
		// deterministic.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
		for _, tc := range rows {
			if tc.Count == 0 {
				continue
			}
			guard := ""
			if tc.Guard != "" {
				guard = " [" + tc.Guard + "]"
			}
			fmt.Fprintf(w, "  %12d  %s x %s%s -> %s (%s)\n",
				tc.Count, tc.From, tc.On, guard, tc.To, tc.Label)
		}
	}
}

// TransitionProfileString renders the heat profile to a string.
func TransitionProfileString(profile []TransitionCount) string {
	var b strings.Builder
	RenderTransitionProfile(&b, profile)
	return b.String()
}
