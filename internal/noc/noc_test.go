package noc

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func newNet(cfg Config) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	return e, New(e, topology.NewMesh(4, 8), cfg)
}

func TestSendLatencyScalesWithHops(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var t1, t2 uint64
	n.Send(0, 1, ControlFlits, func() { t1 = e.Now() })
	n.Send(0, 3, ControlFlits, func() { t2 = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 == 0 || t2 == 0 {
		t.Fatal("messages not delivered")
	}
	if t2 <= t1 {
		t.Fatalf("3-hop (%d) should take longer than 1-hop (%d)", t2, t1)
	}
}

func TestDataSlowerThanControl(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var tc, td uint64
	n.Send(0, 31, ControlFlits, func() { tc = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	e2, n2 := newNet(DefaultConfig())
	n2.Send(0, 31, DataFlits, func() { td = e2.Now() })
	if err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
	if td != tc+DataFlits-ControlFlits {
		t.Fatalf("data latency %d, control %d: want tail-flit delta %d", td, tc, DataFlits-ControlFlits)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var arr []uint64
	// Two data messages over the same first link at the same cycle.
	n.Send(0, 3, DataFlits, func() { arr = append(arr, e.Now()) })
	n.Send(0, 3, DataFlits, func() { arr = append(arr, e.Now()) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 {
		t.Fatalf("got %d deliveries", len(arr))
	}
	if arr[1] < arr[0]+DataFlits {
		t.Fatalf("second message arrived at %d, first at %d: no serialization", arr[1], arr[0])
	}
	if n.QueueWait == 0 {
		t.Fatal("expected queueing delay recorded")
	}
}

func TestPerfectModeNoContention(t *testing.T) {
	e, n := newNet(Config{LinkLatency: 1, RouterDelay: 1, LocalLatency: 1, Perfect: true})
	var arr []uint64
	n.Send(0, 3, DataFlits, func() { arr = append(arr, e.Now()) })
	n.Send(0, 3, DataFlits, func() { arr = append(arr, e.Now()) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if arr[0] != arr[1] {
		t.Fatalf("perfect mode should deliver both at once: %v", arr)
	}
	if n.QueueWait != 0 {
		t.Fatal("perfect mode recorded queue wait")
	}
}

func TestLocalDelivery(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var at uint64
	n.Send(7, 7, DataFlits, func() { at = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 1 {
		t.Fatalf("local delivery at %d, want 1", at)
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var a, b uint64
	m := topology.NewMesh(4, 8)
	// Route 0->1 (top-left) and route in the bottom row share no links.
	bottomL := m.Tile(0, 7)
	bottomR := m.Tile(1, 7)
	n.Send(0, 1, DataFlits, func() { a = e.Now() })
	n.Send(bottomL, bottomR, DataFlits, func() { b = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("disjoint paths interfered: %d vs %d", a, b)
	}
}

func TestMessageCounting(t *testing.T) {
	e, n := newNet(DefaultConfig())
	for i := 0; i < 5; i++ {
		n.Send(0, 2, ControlFlits, func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if n.Messages != 5 {
		t.Fatalf("Messages = %d, want 5", n.Messages)
	}
	if n.FlitHops != 5*2*ControlFlits {
		t.Fatalf("FlitHops = %d", n.FlitHops)
	}
}

func TestNoCTracerHooks(t *testing.T) {
	tr := trace.New(64, map[trace.Category]bool{trace.CatNoC: true})
	e, n := newNet(DefaultConfig())
	n.Tracer = tr
	tr.Now = e.Now
	// Two data messages over the same route: the second serializes behind
	// the first, so the trace must show enqueues, one stall, and dequeues.
	n.Send(0, 3, DataFlits, func() {})
	n.Send(0, 3, DataFlits, func() {})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	var enq, stall, deq int
	for _, ev := range tr.Events() {
		if ev.Cat != trace.CatNoC {
			t.Fatalf("unexpected category %v", ev.Cat)
		}
		switch {
		case strings.HasPrefix(ev.What, "enqueue"):
			enq++
		case strings.HasPrefix(ev.What, "serialization stall"):
			stall++
		case strings.HasPrefix(ev.What, "dequeue"):
			deq++
		}
	}
	if enq != 2 || deq != 2 || stall != 1 {
		t.Fatalf("enqueue=%d stall=%d dequeue=%d, want 2/1/2", enq, stall, deq)
	}
}

func TestNoCTracerDisabledByCategory(t *testing.T) {
	// A tracer without CatNoC enabled must record nothing from the NoC.
	tr := trace.New(64, map[trace.Category]bool{trace.CatProto: true})
	e, n := newNet(DefaultConfig())
	n.Tracer = tr
	tr.Now = e.Now
	n.Send(0, 3, DataFlits, func() {})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 0 {
		t.Fatalf("recorded %d events with CatNoC disabled", tr.Total())
	}
}

func TestOnDemandRoutingBigMachine(t *testing.T) {
	// 1024 tiles is beyond topology.RouteTableTiles: the network must skip
	// the tiles² route table and still deliver with hop-proportional
	// latency, identically to a precomputed network of the same shape.
	e := sim.NewEngine()
	big := New(e, topology.NewMesh(32, 32), DefaultConfig())
	if big.routes != nil {
		t.Fatal("1024-tile network should route on demand")
	}
	var onDemand uint64
	big.Send(0, 1023, ControlFlits, func() { onDemand = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if onDemand == 0 {
		t.Fatal("message not delivered")
	}
	// Same route walked twice must contend like the precomputed path does.
	e2 := sim.NewEngine()
	big2 := New(e2, topology.NewMesh(32, 32), DefaultConfig())
	var arr []uint64
	big2.Send(0, 3, DataFlits, func() { arr = append(arr, e2.Now()) })
	big2.Send(0, 3, DataFlits, func() { arr = append(arr, e2.Now()) })
	if err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 || arr[1] <= arr[0] {
		t.Fatalf("on-demand contention wrong: %v", arr)
	}
}

func TestCMeshSameRouterUsesLocalLatency(t *testing.T) {
	e := sim.NewEngine()
	c := topology.NewCMesh(4, 4, 4)
	n := New(e, c, DefaultConfig())
	if got := n.Lookahead(); got != 1 {
		t.Fatalf("cmesh lookahead = %d, want 1 (zero-hop crossbar)", got)
	}
	var at uint64
	n.Send(0, 3, ControlFlits, func() { at = e.Now() }) // same router
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 1 {
		t.Fatalf("same-router delivery at %d, want LocalLatency 1", at)
	}
}

func TestTorusNetworkDelivers(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, topology.NewTorus(4, 8), DefaultConfig())
	var at uint64
	// Wraparound neighbor: one hop on the torus, 3 on a mesh.
	n.Send(0, 3, ControlFlits, func() { at = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 2 {
		t.Fatalf("torus wraparound delivery at %d, want one hop (2 cycles)", at)
	}
}
