// Package noc models the on-chip interconnect of the tiled CMP. The shape
// is pluggable (topology.Topology): the paper's Table I machine is a 4x8
// mesh with X-Y routing, and the scaled machines (DESIGN.md §13) run the
// same model over larger meshes, tori, and concentrated meshes up to 1024
// tiles. Flits are 16 bytes over 1-cycle links at 1 flit/cycle (Table I).
//
// Rather than simulating router microarchitecture cycle by cycle, the model
// reserves each directed link along a message's path in order: a message
// occupies a link for (link latency + serialization) cycles and a later
// message over the same link queues behind it. This captures the three NoC
// effects the evaluation depends on — hop latency, serialization of multi-
// flit data messages, and hot-link contention — at a small fraction of the
// cost of a flit-level model, and preserves per-link FIFO ordering.
package noc

import (
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Flit and message sizing from Table I: 16-byte flits; a 64-byte data
// message is 5 flits (header + 4 data), control messages are 1 flit.
const (
	ControlFlits = 1
	DataFlits    = 5
)

// Config holds the NoC timing parameters.
type Config struct {
	LinkLatency  uint64 // cycles per hop (Table I: 1)
	RouterDelay  uint64 // per-hop router pipeline delay
	LocalLatency uint64 // latency for a tile talking to itself (and, on a
	// concentrated mesh, to the other tiles of its router)
	// Perfect disables contention and serialization: every message takes
	// hops*(LinkLatency+RouterDelay) cycles. Used by the NoC ablation.
	Perfect bool
}

// DefaultConfig mirrors Table I.
func DefaultConfig() Config {
	return Config{LinkLatency: 1, RouterDelay: 1, LocalLatency: 1}
}

// Network delivers messages between tiles of a topology.
//lockiller:shared-state
type Network struct {
	engine *sim.Engine
	topo   topology.Topology
	cfg    Config

	// busyUntil[from*tiles+to] is the cycle at which the directed link
	// from→to becomes free. A flat slice rather than a map keyed by
	// topology.Link: the lookup runs once per link per message on the
	// hottest path in the simulator, and hashing a 16-byte struct key
	// dominated whole-run profiles. tiles² entries is 8 KiB for the
	// paper's 32-tile mesh and 8 MiB at the 1024-tile ceiling — still far
	// cheaper than per-message hashing; non-adjacent pairs simply stay
	// zero.
	busyUntil []uint64
	tiles     int

	// routes[src*tiles+dst] lists the flat busyUntil indices of the links
	// along the route, precomputed so the arrival loop walks a dense int32
	// slice instead of re-deriving link identities per message. Machines
	// beyond topology.RouteTableTiles skip the tiles² table and route on
	// demand into scratch instead.
	routes        [][]int32
	scratch       []topology.Link
	scratchIdxBuf []int32

	// Tracer, when non-nil, records CatNoC events: link enqueue,
	// serialization stalls, and scheduled delivery.
	Tracer *trace.Tracer

	// Stats.
	Messages  uint64
	FlitHops  uint64
	QueueWait uint64
}

// New creates a network over the given topology.
func New(engine *sim.Engine, topo topology.Topology, cfg Config) *Network {
	t := topo.Tiles()
	n := &Network{
		engine:    engine,
		topo:      topo,
		cfg:       cfg,
		busyUntil: make([]uint64, t*t),
		tiles:     t,
	}
	if t > topology.RouteTableTiles {
		return n // on-demand routing via scratch
	}
	routes := make([][]int32, t*t)
	total := 0
	for src := 0; src < t; src++ {
		for dst := 0; dst < t; dst++ {
			total += topo.Hops(src, dst)
		}
	}
	backing := make([]int32, 0, total) // one allocation backs every route
	for src := 0; src < t; src++ {
		for dst := 0; dst < t; dst++ {
			start := len(backing)
			for _, l := range topo.Route(src, dst) {
				backing = append(backing, int32(l.From*t+l.To))
			}
			routes[src*t+dst] = backing[start:len(backing):len(backing)]
		}
	}
	n.routes = routes
	return n
}

// Topo returns the underlying topology.
func (n *Network) Topo() topology.Topology { return n.topo }

// Reset returns the network to its just-constructed state in place: all
// link reservations released and stats zeroed. The precomputed route table
// and the on-demand scratch buffers are construction artifacts of the
// (immutable) topology and survive; the simulated clock restarts at zero
// after a machine reset, so stale busyUntil times must not.
func (n *Network) Reset() {
	for i := range n.busyUntil {
		n.busyUntil[i] = 0
	}
	n.scratch = n.scratch[:0]
	n.scratchIdxBuf = n.scratchIdxBuf[:0]
	n.Messages, n.FlitHops, n.QueueWait = 0, 0, 0
}

// Lookahead returns the conservative-PDES lookahead of the interconnect:
// the minimum latency of any cross-tile message. On a mesh or torus that is
// one hop of a single-flit control message — link plus router pipeline; on
// a concentrated mesh two tiles can share a router, so the zero-hop
// crossbar latency bounds it too. Always at least one cycle. No event on
// one tile can cause an event on another tile sooner than this, which is
// what lets the sharded engine (internal/sim/par.go) let a tile group
// simulate ahead of its neighbors; the machine layer also derives the
// default span-grant width from it.
func (n *Network) Lookahead() uint64 {
	l := n.cfg.LinkLatency + n.cfg.RouterDelay
	if n.topo.MinCrossHops() == 0 {
		if local := maxU64(n.cfg.LocalLatency, 1); local < l {
			l = local
		}
	}
	if l < 1 {
		l = 1
	}
	return l
}

// Send schedules deliver to run when a message of the given flit count
// arrives at dst, reserving link bandwidth along the route.
func (n *Network) Send(src, dst int, flits int, deliver func()) {
	n.engine.At(n.arrival(src, dst, flits), deliver)
}

// SendEvent is the allocation-free variant of Send: instead of a delivery
// closure it schedules a typed engine event (h.OnEvent(kind, a, p)) at the
// arrival cycle. Hot protocol paths use it to deliver pooled messages
// without a per-hop closure allocation.
func (n *Network) SendEvent(src, dst, flits int, h sim.Handler, kind uint8, a uint64, p any) {
	n.engine.AtEvent(n.arrival(src, dst, flits), h, kind, a, p)
}

// arrival reserves link bandwidth along the route and returns the absolute
// cycle at which the message's tail flit reaches dst.
func (n *Network) arrival(src, dst, flits int) uint64 {
	n.Messages++
	now := n.engine.Now()
	if src == dst {
		return now + maxU64(n.cfg.LocalLatency, 1)
	}
	var route []int32
	if n.routes != nil {
		route = n.routes[src*n.tiles+dst]
	} else {
		// On-demand routing for machines beyond the precompute bound; the
		// scratch link buffer is reused across messages.
		n.scratch = n.topo.AppendRoute(n.scratch[:0], src, dst)
		route = n.scratchIdx(n.scratch)
	}
	if len(route) == 0 {
		// Distinct tiles on the same router (concentrated mesh): the local
		// crossbar, like a tile talking to itself. Lookahead depends on
		// this never being zero.
		return now + maxU64(n.cfg.LocalLatency, 1)
	}
	n.FlitHops += uint64(flits * len(route))
	if n.cfg.Perfect {
		lat := uint64(len(route)) * (n.cfg.LinkLatency + n.cfg.RouterDelay)
		return now + maxU64(lat, 1)
	}
	if n.Tracer.Enabled(trace.CatNoC) {
		n.Tracer.Emitf(src, trace.CatNoC, 0, "enqueue %d->%d flits=%d hops=%d", src, dst, flits, len(route))
	}
	// Head-flit arrival time threads through each link in order; the link
	// is then occupied for the serialization time of the whole message.
	t := now
	var stalled uint64
	for _, li := range route {
		start := maxU64(t, n.busyUntil[li])
		n.QueueWait += start - t
		stalled += start - t
		t = start + n.cfg.LinkLatency + n.cfg.RouterDelay
		n.busyUntil[li] = start + uint64(flits)
	}
	// Tail flit arrives (flits-1) cycles after the head.
	t += uint64(flits - 1)
	if n.Tracer.Enabled(trace.CatNoC) {
		if stalled > 0 {
			n.Tracer.Emitf(src, trace.CatNoC, 0, "serialization stall %d->%d wait=%d", src, dst, stalled)
		}
		n.Tracer.Emitf(dst, trace.CatNoC, 0, "dequeue %d->%d at=%d", src, dst, t)
	}
	return t
}

// scratchIdx converts scratch links to flat busyUntil indices in place —
// an int32 slice aliasing a separate reused buffer.
func (n *Network) scratchIdx(links []topology.Link) []int32 {
	if cap(n.scratchIdxBuf) < len(links) {
		n.scratchIdxBuf = make([]int32, len(links), 2*len(links))
	}
	idx := n.scratchIdxBuf[:len(links)]
	for i, l := range links {
		idx[i] = int32(l.From*n.tiles + l.To)
	}
	return idx
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
