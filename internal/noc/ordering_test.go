package noc

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestPerPathFIFO: messages between the same source and destination must
// arrive in send order — the protocol's lazy NACK reconciliation depends
// on it (a TxWB must land before a later NACK from the same L1).
func TestPerPathFIFO(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, topology.NewMesh(4, 8), DefaultConfig())
	var order []int
	// Interleave data and control messages; control is smaller but must
	// not overtake on the same path.
	for i := 0; i < 20; i++ {
		i := i
		flits := DataFlits
		if i%3 == 0 {
			flits = ControlFlits
		}
		n.Send(0, 31, flits, func() { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 20 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered delivery: %v", order)
		}
	}
}

// TestCrossTrafficDelaysSharedLink: two flows sharing one link interfere;
// a third flow on disjoint links does not.
func TestCrossTrafficDelaysSharedLink(t *testing.T) {
	mesh := topology.NewMesh(4, 8)
	solo := func(extra bool) uint64 {
		e := sim.NewEngine()
		n := New(e, mesh, DefaultConfig())
		var at uint64
		if extra {
			// A flow 0 -> 3 shares the 0->1 link with our 0 -> 1 probe.
			for i := 0; i < 8; i++ {
				n.Send(0, 3, DataFlits, func() {})
			}
		}
		n.Send(0, 1, DataFlits, func() { at = e.Now() })
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := solo(false)
	loaded := solo(true)
	if loaded <= base {
		t.Fatalf("shared-link contention missing: %d vs %d", loaded, base)
	}
}
