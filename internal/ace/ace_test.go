package ace

import (
	"testing"
	"testing/quick"

	"repro/internal/htm"
	"repro/internal/priority"
)

func TestARUserRoundTrip(t *testing.T) {
	if err := quick.Check(func(p uint32, m uint8) bool {
		mode := []htm.Mode{htm.NonTx, htm.HTM, htm.TL, htm.STL, htm.Mutex}[int(m)%5]
		want := uint64(p)
		if want > MaxPriority {
			want = MaxPriority // saturation, not truncation
		}
		u := EncodeARUser(uint64(p), mode)
		if u.Priority() != want {
			return false
		}
		return u.ModeClass() == modeClass(mode)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARUserSaturationPreservesOrder(t *testing.T) {
	// Saturated priorities must never lose to unsaturated ones they would
	// have beaten — ordering is preserved through the encoding.
	big := EncodeARUser(1<<50, htm.HTM)
	small := EncodeARUser(12345, htm.HTM)
	if !priority.Wins(big.Priority(), 1, small.Priority(), 0) {
		t.Fatal("saturation inverted arbitration order")
	}
	if big.Priority() != MaxPriority {
		t.Fatalf("saturated priority = %d", big.Priority())
	}
	// priority.Max (lock transactions) saturates to the field max too.
	lock := EncodeARUser(priority.Max, htm.TL)
	if lock.Priority() != MaxPriority || lock.ModeClass() != 2 {
		t.Fatalf("lock encoding = %v", lock)
	}
}

func TestCRRespClassification(t *testing.T) {
	cases := map[CRResp]Kind{
		EncodeSnoopData(false): KindData,
		EncodeSnoopData(true):  KindData,
		EncodeNack():           KindNack,
		EncodeReject():         KindReject,
		0:                      KindInvalid,
	}
	for r, want := range cases {
		if got := r.Classify(); got != want {
			t.Fatalf("Classify(%05b) = %v, want %v", r, got, want)
		}
	}
	if !EncodeSnoopData(true).Dirty() || EncodeSnoopData(false).Dirty() {
		t.Fatal("Dirty() wrong")
	}
	if EncodeNack().Dirty() {
		t.Fatal("NACK cannot pass dirty data")
	}
}

func TestCRRespEncodingsDistinct(t *testing.T) {
	// The three mechanism responses must be mutually distinguishable and
	// fit the 5-bit signal.
	rs := []CRResp{EncodeSnoopData(false), EncodeSnoopData(true), EncodeNack(), EncodeReject()}
	for i, a := range rs {
		if a >= 1<<CRRespWidth {
			t.Fatalf("encoding %05b exceeds CRRESP width", a)
		}
		for j, b := range rs {
			if i != j && a == b {
				t.Fatalf("encodings %d and %d collide: %05b", i, j, a)
			}
		}
	}
}

func TestAWSnoopOpcodes(t *testing.T) {
	for _, s := range []AWSnoop{AWSnoopWriteUnique, AWSnoopStash, AWSnoopWakeRetry} {
		if !s.Valid() {
			t.Fatalf("%v exceeds AWSNOOP width", s)
		}
		if s.String() == "" {
			t.Fatal("unnamed opcode")
		}
	}
	if AWSnoopWakeRetry == AWSnoopStash || AWSnoopWakeRetry == AWSnoopWriteUnique {
		t.Fatal("extension opcode collides with a defined one")
	}
	if AWSnoop(16).Valid() {
		t.Fatal("width check broken")
	}
}
