// Package ace models the paper's implementability argument (§III-A): the
// recovery mechanism's extra information rides existing AMBA ACE channels
// rather than new wires. "Priority information can conveniently be encoded
// in the ARUSER field of the AR channel"; "the reject message is sent as a
// data-less message that can easily be encoded on the CRRESP signal of the
// CR channel"; and wake-up retries reuse the stash-transaction pattern
// "but it needs to extend the AWSNOOP signal to identify it".
//
// The encoders here take the simulator's protocol messages and pack them
// into the corresponding signal fields with hardware-realistic widths,
// with decoding round-trips checked by tests: evidence that no message in
// the simulated protocol carries more information than the bus could.
package ace

import (
	"fmt"

	"repro/internal/htm"
)

// Signal widths (bits). ARUSER width is implementation-defined by the ACE
// specification; 32 bits of user signal is a common configuration and
// bounds the priority the recovery mechanism may carry per request.
// CRRESP is 5 bits in ACE; its defined bits are DataTransfer(0),
// Error(1), PassDirty(2), IsShared(3), WasUnique(4) — the reject encoding
// claims one reserved response pattern. AWSNOOP is 4 bits (3 in some
// revisions); the wake-up/stash extension claims one spare opcode.
const (
	ARUserWidth  = 32
	CRRespWidth  = 5
	AWSnoopWidth = 4
)

// MaxPriority is the largest priority encodable in ARUSER alongside the
// 2-bit requester-mode tag.
const MaxPriority = (1 << (ARUserWidth - 2)) - 1

// ARUser packs a request's arbitration payload into the AR channel's user
// field: the low bits carry the (saturated) transaction priority and the
// top two bits the requester's mode class, which the conflict handler
// needs for the Fig. 10 cause taxonomy.
type ARUser uint32

// modeClass compresses the five execution modes into the 2-bit tag.
func modeClass(m htm.Mode) uint32 {
	switch m {
	case htm.HTM:
		return 1
	case htm.TL, htm.STL:
		return 2
	case htm.Mutex:
		return 3
	default:
		return 0 // plain non-transactional
	}
}

// EncodeARUser packs priority and requester mode. Priorities beyond the
// field width saturate: arbitration only needs the order, and a saturated
// value still wins every comparison it would have won exactly (ties break
// by core ID either way).
func EncodeARUser(prio uint64, mode htm.Mode) ARUser {
	p := prio
	if p > MaxPriority {
		p = MaxPriority
	}
	return ARUser(uint32(p) | modeClass(mode)<<(ARUserWidth-2))
}

// Priority extracts the saturated priority.
func (u ARUser) Priority() uint64 { return uint64(u) & MaxPriority }

// ModeClass extracts the 2-bit requester class: 0 plain, 1 HTM, 2 lock
// transaction (TL/STL), 3 mutex fallback.
func (u ARUser) ModeClass() uint32 { return uint32(u) >> (ARUserWidth - 2) }

// CRResp is the CR (snoop response) channel payload.
type CRResp uint8

// Defined ACE CRRESP bits.
const (
	CRDataTransfer CRResp = 1 << 0
	CRError        CRResp = 1 << 1
	CRPassDirty    CRResp = 1 << 2
	CRIsShared     CRResp = 1 << 3
	CRWasUnique    CRResp = 1 << 4
)

// The recovery mechanism's response encodings. A normal snoop that
// supplies data sets DataTransfer (+PassDirty when dirty). The NACK
// ("owner invalidated itself") is a response with no data transfer and
// WasUnique set — the owner admits it *was* the unique holder but no
// longer is. The reject is the otherwise-unused Error|WasUnique pattern:
// data-less, distinguishable, and ignored by legacy receivers that treat
// it as a failed snoop and re-issue (exactly the retry semantics a
// non-upgraded requester needs).
func EncodeSnoopData(dirty bool) CRResp {
	r := CRDataTransfer
	if dirty {
		r |= CRPassDirty
	}
	return r
}

// EncodeNack is the owner-invalidated-itself response of Fig. 3.
func EncodeNack() CRResp { return CRWasUnique }

// EncodeReject is the withdrawn-toxic-request response of Fig. 4.
func EncodeReject() CRResp { return CRError | CRWasUnique }

// Kind classifies a received CRResp.
type Kind int

const (
	KindData Kind = iota
	KindNack
	KindReject
	KindInvalid
)

// Classify decodes a response.
func (r CRResp) Classify() Kind {
	if r >= 1<<CRRespWidth {
		return KindInvalid
	}
	switch {
	case r&CRDataTransfer != 0:
		return KindData
	case r == CRWasUnique:
		return KindNack
	case r == CRError|CRWasUnique:
		return KindReject
	}
	return KindInvalid
}

// Dirty reports whether a data response passes dirty data.
func (r CRResp) Dirty() bool { return r.Classify() == KindData && r&CRPassDirty != 0 }

// AWSnoop opcodes: the standard WriteUnique/WriteLineUnique etc. occupy
// the defined encodings; the wake-up retry reuses the stash pattern with
// one spare opcode (the paper: "as with the stash transaction in ACE, the
// core retries the request after receiving the wake-up message, but it
// needs to extend the AWSNOOP signal to identify it").
type AWSnoop uint8

const (
	// AWSnoopWriteUnique is the ordinary write opcode (defined by ACE).
	AWSnoopWriteUnique AWSnoop = 0b0000
	// AWSnoopStash models the ACE5 stash family representative.
	AWSnoopStash AWSnoop = 0b0101
	// AWSnoopWakeRetry is the extension opcode for wake-up-triggered
	// retries — the one new encoding the mechanism needs.
	AWSnoopWakeRetry AWSnoop = 0b1111
)

// Valid reports whether the opcode fits the signal width.
func (s AWSnoop) Valid() bool { return s < 1<<AWSnoopWidth }

// String names the opcodes used by the mechanism.
func (s AWSnoop) String() string {
	switch s {
	case AWSnoopWriteUnique:
		return "WriteUnique"
	case AWSnoopStash:
		return "Stash"
	case AWSnoopWakeRetry:
		return "WakeRetry"
	}
	return fmt.Sprintf("AWSnoop(%#b)", uint8(s))
}
