package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/stamp"
)

func small(c Config) Config {
	c.Machine.Cores, c.Machine.MeshW, c.Machine.MeshH = 4, 2, 2
	c.Machine.LLCSize = 1 << 20
	c.Seed = 7
	return c
}

func TestPresetsRunKmeans(t *testing.T) {
	progs := stamp.Programs(stamp.Kmeans(), 4, 7)
	for _, cfg := range []Config{
		small(CGL()), small(Baseline()), small(Recovery(htm.SelfAbort)),
		small(Recovery(htm.RetryLater)), small(Recovery(htm.WaitWakeup)),
		small(HTMLock()), small(LockillerTM()), small(LosaTM()),
	} {
		res, err := Run(cfg, progs)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Sections() == 0 || res.ExecCycles == 0 {
			t.Fatalf("%s: empty result", cfg.Name)
		}
	}
}

func TestSectionConservation(t *testing.T) {
	// Every system must complete exactly the same atomic sections.
	progs := stamp.Programs(stamp.Intruder(), 4, 9)
	var want uint64
	for _, p := range progs {
		want += uint64(p.CountAtomic())
	}
	for _, cfg := range []Config{small(CGL()), small(Baseline()), small(LockillerTM())} {
		res, err := Run(cfg, progs)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Sections() != want {
			t.Fatalf("%s completed %d sections, want %d", cfg.Name, res.Sections(), want)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := &Result{ExecCycles: 200}
	b := &Result{ExecCycles: 100}
	if Speedup(a, b) != 2.0 {
		t.Fatal("speedup wrong")
	}
	if Speedup(a, &Result{}) != 0 {
		t.Fatal("zero-cycle subject must not divide by zero")
	}
}

func TestCustomWorkloadAPI(t *testing.T) {
	// The quickstart shape: a custom program through the public API.
	prog := cpu.Program{
		cpu.AtomicStatic([]cpu.Op{cpu.Read(9000), cpu.Compute(10), cpu.Write(9000)}),
		cpu.Plain([]cpu.Op{cpu.Compute(50)}),
	}
	res, err := Run(small(LockillerTM()), []cpu.Program{prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sections() != 2 {
		t.Fatalf("sections = %d", res.Sections())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	progs := stamp.Programs(stamp.VacationHigh(), 4, 3)
	r1, err := Run(small(LockillerTM()), progs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(small(LockillerTM()), progs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecCycles != r2.ExecCycles || r1.CommitRate() != r2.CommitRate() {
		t.Fatal("identical configs diverged")
	}
}
