// Package core is the top-level public API of the LockillerTM library: it
// assembles the paper's three mechanisms (recovery, HTMLock, switchingMode)
// over the simulated 32-core CMP and runs transactional workloads on them.
//
// The typical flow is:
//
//	cfg := core.LockillerTM()                   // or core.Baseline(), core.CGL(), ...
//	programs := stamp.Programs(stamp.Intruder(), 8, 1)
//	result, err := core.Run(cfg, 8, programs)
//
// Custom workloads are ordinary cpu.Programs built from cpu.Read/Write/
// Compute/Fault ops and Atomic/Plain/Barrier sections; custom machines are
// configured through Config's fields. Every run is deterministic in
// (config, programs, seed).
package core

import (
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/priority"
	"repro/internal/stats"
)

// Config selects a synchronization system and a machine.
type Config struct {
	// Name labels the configuration in results.
	Name string
	// Sync selects lock-based (CGL) or HTM-based execution.
	Sync cpu.SyncSystem
	// HTM enables the LockillerTM mechanisms (ignored for CGL).
	HTM htm.Config
	// Machine is the simulated hardware (Table I defaults).
	Machine coherence.Params
	// Seed makes runs reproducible.
	Seed uint64
	// Limit bounds the simulation in cycles (0 = default 4G).
	Limit uint64
}

// DefaultMachine returns the Table I machine.
func DefaultMachine() coherence.Params { return coherence.DefaultParams() }

// CGL is the coarse-grained-locking baseline.
func CGL() Config {
	return Config{Name: "CGL", Sync: cpu.SysCGL, HTM: htm.Config{}.Defaults(), Machine: DefaultMachine()}
}

// Baseline is requester-win best-effort HTM.
func Baseline() Config {
	return Config{Name: "Baseline", Sync: cpu.SysHTM, HTM: htm.Config{}.Defaults(), Machine: DefaultMachine()}
}

// Recovery is Baseline plus the recovery mechanism with the given reject
// policy and insts-based priority (the -RAI/-RRI/-RWI systems).
func Recovery(policy htm.RejectPolicy) Config {
	return Config{
		Name: "Recovery+" + policy.String(), Sync: cpu.SysHTM,
		HTM: htm.Config{
			Recovery: true, RejectPolicy: policy, Priority: priority.InstsBased{},
		}.Defaults(),
		Machine: DefaultMachine(),
	}
}

// HTMLock is Recovery(WaitWakeup) plus the HTMLock mechanism (-RWIL).
func HTMLock() Config {
	c := Recovery(htm.WaitWakeup)
	c.Name = "HTMLock"
	c.HTM.HTMLock = true
	return c
}

// LockillerTM is the full system: recovery + insts-based priority +
// HTMLock + switchingMode.
func LockillerTM() Config {
	c := HTMLock()
	c.Name = "LockillerTM"
	c.HTM.SwitchingMode = true
	return c
}

// LosaTM approximates LosaTM-SAFU: NACK/wake-up conflict management with
// progression-based priority (see DESIGN.md for the substitution notes).
func LosaTM() Config {
	return Config{
		Name: "LosaTM-SAFU", Sync: cpu.SysHTM,
		HTM: htm.Config{
			Losa: true, RejectPolicy: htm.WaitWakeup, Priority: priority.Progression{},
		}.Defaults(),
		Machine: DefaultMachine(),
	}
}

// Result is what a run produces.
type Result = stats.Run

// Run executes the per-thread programs under the configuration and returns
// the collected statistics. len(programs) is the thread count; threads are
// bound one-to-one to cores.
func Run(cfg Config, programs []cpu.Program) (*Result, error) {
	_, res, err := RunMachine(cfg, programs)
	return res, err
}

// RunMachine is Run exposing the machine as well, for callers that need
// post-run state beyond the statistics — e.g. the functional counter
// values cpu.RMW operations maintain (atomicity verification).
func RunMachine(cfg Config, programs []cpu.Program) (*cpu.Machine, *Result, error) {
	limit := cfg.Limit
	if limit == 0 {
		limit = 4_000_000_000
	}
	mcfg := cpu.Config{
		Machine: cfg.Machine,
		HTM:     cfg.HTM,
		Sync:    cfg.Sync,
		Threads: len(programs),
		Seed:    cfg.Seed,
		Limit:   limit,
	}
	m := cpu.NewMachine(mcfg, cfg.Name, "custom", programs)
	res, err := m.Run()
	return m, res, err
}

// Speedup is a convenience: the ratio of reference cycles to subject
// cycles (how much faster subject is).
func Speedup(reference, subject *Result) float64 {
	if subject.ExecCycles == 0 {
		return 0
	}
	return float64(reference.ExecCycles) / float64(subject.ExecCycles)
}
