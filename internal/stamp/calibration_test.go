package stamp

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

// TestProfileCalibration verifies that the generated transactions actually
// exhibit the read/write-set sizes their profiles declare: the generators
// are the evaluation's ground truth, so drift here would silently distort
// every figure.
func TestProfileCalibration(t *testing.T) {
	for _, p := range Workloads() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			progs := Programs(p, 4, 99)
			var txs, reads, writes, faults int
			for _, prog := range progs {
				for _, sec := range prog {
					if !sec.Atomic {
						continue
					}
					txs++
					for _, op := range sec.Body(1) {
						switch op.Kind {
						case cpu.OpRead:
							reads++
						case cpu.OpWrite:
							writes++
						case cpu.OpFault:
							faults++
						}
					}
				}
			}
			if txs == 0 {
				t.Fatal("no transactions generated")
			}
			meanR := float64(reads) / float64(txs)
			meanW := float64(writes) / float64(txs)
			// Geometric draws have high variance; allow a 40% band.
			if p.TxReads > 0 {
				if rel := math.Abs(meanR-float64(p.TxReads)) / float64(p.TxReads); rel > 0.4 {
					t.Fatalf("mean reads/tx = %.1f, profile says %d", meanR, p.TxReads)
				}
			}
			wantW := float64(p.TxWrites)
			if p.PathLength > 0 {
				wantW += float64(p.PathLength) // path writes: PathLength/2 + U[0,PathLength)
			}
			if wantW > 0 {
				if rel := math.Abs(meanW-wantW) / wantW; rel > 0.5 {
					t.Fatalf("mean writes/tx = %.1f, profile implies ~%.1f", meanW, wantW)
				}
			}
			// Fault frequency tracks FaultProb.
			if p.FaultProb > 0 {
				frac := float64(faults) / float64(txs)
				if frac < p.FaultProb/2 || frac > p.FaultProb*1.6 {
					t.Fatalf("faulting fraction %.2f, profile says %.2f", frac, p.FaultProb)
				}
			} else if faults > 0 {
				t.Fatalf("%d faults in a fault-free profile", faults)
			}
		})
	}
}

// TestContentionOrdering: the "+" variants must conflict more than their
// low-contention bases under identical conditions — the property the
// paper's kmeans/kmeans+ and vacation/vacation+ splits depend on.
func TestContentionOrdering(t *testing.T) {
	measure := func(p Profile) float64 {
		// Estimate conflict pressure as expected pairwise hot-write overlap:
		// writes-to-hot^2 / hot-lines (order-of-magnitude contention proxy).
		w := float64(p.TxWrites) * p.HotWriteFrac
		return w * w / float64(p.HotLines)
	}
	if measure(KmeansHigh()) <= measure(Kmeans()) {
		t.Fatal("kmeans+ must be more contended than kmeans")
	}
	if measure(VacationHigh()) <= measure(Vacation()) {
		t.Fatal("vacation+ must be more contended than vacation")
	}
}
