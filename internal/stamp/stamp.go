// Package stamp provides synthetic transactional workload generators that
// reproduce the transactional profile of each STAMP benchmark the paper
// evaluates (Minh et al., IISWC'08): transaction length, read/write-set
// size, contention level, time spent inside transactions, capacity-
// overflow pressure, and (for yada) exception rate. The paper's evaluation
// never inspects program output — only transactional behaviour — so
// profile-faithful generators exercise exactly the code paths the
// mechanisms were built for (see DESIGN.md, Substitutions).
package stamp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Profile parameterizes one benchmark's transactional behaviour.
type Profile struct {
	Name string

	// TotalSections is the total number of atomic sections across all
	// threads (strong scaling: more threads, fewer sections each).
	TotalSections int

	// Transaction shape: mean read/write set sizes (lines) and the compute
	// instructions retired between memory operations.
	TxReads, TxWrites int
	ComputePerOp      uint64

	// Non-transactional work between atomic sections.
	NonTxCompute uint64
	NonTxMemOps  int

	// Contention structure. Hot is a small region receiving conflicting
	// reads and writes; Warm is a large read-mostly region (index/tree
	// lookups); each thread also owns a private region.
	HotLines, WarmLines, PrivateLines int
	// HotWriteFrac is the probability a transactional write targets the
	// hot region (else private); HotReadFrac / WarmReadFrac likewise for
	// reads (remainder private).
	HotWriteFrac, HotReadFrac, WarmReadFrac float64

	// PathLength, when non-zero, makes each transaction write a contiguous
	// run of lines starting at a random hot offset — labyrinth's grid
	// routing, which produces the paper's large-write-set overflow
	// behaviour.
	PathLength int

	// FaultProb is the per-transaction probability of raising an exception
	// mid-transaction (yada).
	FaultProb float64

	// Regenerate re-draws the transaction body on every attempt: dynamic
	// workloads (labyrinth re-routes, yada re-triangulates) read updated
	// shared state after an abort.
	Regenerate bool

	// BarrierEvery inserts a program-wide barrier after this many sections
	// per thread (0 = no barriers).
	BarrierEvery int
}

// Validate panics on nonsensical profiles.
func (p Profile) Validate() {
	if p.Name == "" || p.TotalSections <= 0 {
		panic(fmt.Sprintf("stamp: bad profile %+v", p))
	}
	if p.HotLines <= 0 || p.PrivateLines <= 0 {
		panic(fmt.Sprintf("stamp: profile %s needs hot and private regions", p.Name))
	}
	if p.TxReads+p.TxWrites+p.PathLength == 0 {
		panic(fmt.Sprintf("stamp: profile %s has empty transactions", p.Name))
	}
}

// Programs generates one program per thread. The same (profile, threads,
// seed) triple always yields identical programs, so every evaluated system
// runs exactly the same source workload — the paper's "same source code,
// same inputs" methodology.
func Programs(p Profile, threads int, seed uint64) []cpu.Program {
	p.Validate()
	if threads <= 0 {
		panic("stamp: need at least one thread")
	}
	layout := mem.NewLayout()
	hot := layout.Alloc(p.HotLines)
	var warm mem.Region
	if p.WarmLines > 0 {
		warm = layout.Alloc(p.WarmLines)
	}
	private := make([]mem.Region, threads)
	for i := range private {
		private[i] = layout.Alloc(p.PrivateLines)
	}

	root := sim.NewRNG(seed ^ 0x5741_4D50) // "STMP"
	programs := make([]cpu.Program, threads)
	per := p.TotalSections / threads
	extra := p.TotalSections % threads

	for th := 0; th < threads; th++ {
		n := per
		if th < extra {
			n++
		}
		prog := make(cpu.Program, 0, 2*n+n/8)
		for s := 0; s < n; s++ {
			secRNG := root.Split(uint64(th)<<32 | uint64(s))
			prog = append(prog, p.atomicSection(secRNG, hot, warm, private[th]))
			prog = append(prog, p.plainSection(secRNG.Split(1), private[th]))
			if p.BarrierEvery > 0 && (s+1)%p.BarrierEvery == 0 && s+1 < n {
				prog = append(prog, cpu.BarrierSection())
			}
		}
		programs[th] = prog
	}
	return programs
}

// atomicSection builds one transaction. Whether a section faults is a
// property of the section (a yada refinement that traps keeps trapping on
// re-execution until the fallback path handles it non-speculatively), so
// the decision is drawn once per section and re-applied with high
// probability on every speculative attempt.
func (p Profile) atomicSection(rng *sim.RNG, hot, warm, priv mem.Region) cpu.Section {
	faulty := p.FaultProb > 0 && rng.Bool(p.FaultProb)
	if !p.Regenerate {
		ops := p.txBody(rng.Split(0), faulty, hot, warm, priv)
		return cpu.AtomicStatic(ops)
	}
	return cpu.AtomicDynamic(func(attempt int) []cpu.Op {
		r := rng.Split(uint64(attempt))
		f := faulty && r.Bool(0.85)
		return p.txBody(r, f, hot, warm, priv)
	})
}

// txBody draws a transaction's operation stream.
func (p Profile) txBody(rng *sim.RNG, faulty bool, hot, warm, priv mem.Region) []cpu.Op {
	nR := rng.Geometric(float64(p.TxReads))
	nW := 0
	if p.TxWrites > 0 {
		nW = rng.Geometric(float64(p.TxWrites))
	}
	ops := make([]cpu.Op, 0, nR+nW+4)
	appendCompute := func() {
		if p.ComputePerOp > 0 {
			ops = append(ops, cpu.Compute(p.ComputePerOp))
		}
	}
	// Reads first (lookup phase), then the update phase, matching the
	// read-validate-update structure of the STAMP applications.
	for i := 0; i < nR; i++ {
		ops = append(ops, cpu.Read(p.readTarget(rng, hot, warm, priv)))
		appendCompute()
	}
	faultAt := -1
	if faulty {
		faultAt = rng.Intn(nW + 1)
	}
	if p.PathLength > 0 {
		// Contiguous routing path through the hot grid.
		start := rng.Intn(hot.N)
		n := p.PathLength/2 + rng.Intn(p.PathLength)
		for i := 0; i < n; i++ {
			ops = append(ops, cpu.Write(hot.Pick(start+i)))
			appendCompute()
		}
	}
	for i := 0; i < nW; i++ {
		if i == faultAt {
			ops = append(ops, cpu.Fault())
		}
		ops = append(ops, cpu.Write(p.writeTarget(rng, hot, priv)))
		appendCompute()
	}
	return ops
}

func (p Profile) readTarget(rng *sim.RNG, hot, warm, priv mem.Region) mem.Line {
	f := rng.Float64()
	switch {
	case f < p.HotReadFrac:
		return hot.Pick(rng.Intn(hot.N))
	case warm.N > 0 && f < p.HotReadFrac+p.WarmReadFrac:
		return warm.Pick(rng.Intn(warm.N))
	default:
		return priv.Pick(rng.Intn(priv.N))
	}
}

func (p Profile) writeTarget(rng *sim.RNG, hot, priv mem.Region) mem.Line {
	if rng.Float64() < p.HotWriteFrac {
		return hot.Pick(rng.Intn(hot.N))
	}
	return priv.Pick(rng.Intn(priv.N))
}

// plainSection builds the non-transactional work after a transaction.
func (p Profile) plainSection(rng *sim.RNG, priv mem.Region) cpu.Section {
	ops := make([]cpu.Op, 0, p.NonTxMemOps+1)
	if p.NonTxCompute > 0 {
		ops = append(ops, cpu.Compute(p.NonTxCompute))
	}
	for i := 0; i < p.NonTxMemOps; i++ {
		if rng.Bool(0.5) {
			ops = append(ops, cpu.Read(priv.Pick(rng.Intn(priv.N))))
		} else {
			ops = append(ops, cpu.Write(priv.Pick(rng.Intn(priv.N))))
		}
	}
	return cpu.Plain(ops)
}
