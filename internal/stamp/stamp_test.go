package stamp

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) != 9 {
		t.Fatalf("want 9 workloads, got %d", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		w.Validate()
		if names[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		got, err := ByName(w.Name)
		if err != nil || got.Name != w.Name {
			t.Fatalf("ByName(%s) failed: %v", w.Name, err)
		}
	}
	if _, err := ByName("bayes"); err == nil {
		t.Fatal("bayes is excluded by the paper and must not resolve")
	}
	for _, h := range HighContention() {
		if !names[h] {
			t.Fatalf("high-contention workload %s not registered", h)
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	a := Programs(Intruder(), 4, 42)
	b := Programs(Intruder(), 4, 42)
	if len(a) != 4 {
		t.Fatalf("got %d programs", len(a))
	}
	for th := range a {
		if len(a[th]) != len(b[th]) {
			t.Fatalf("thread %d program lengths differ", th)
		}
		for s := range a[th] {
			sa, sb := a[th][s], b[th][s]
			if sa.Atomic != sb.Atomic || sa.Barrier != sb.Barrier {
				t.Fatalf("thread %d section %d kind differs", th, s)
			}
			if sa.Atomic {
				oa, ob := sa.Body(1), sb.Body(1)
				if len(oa) != len(ob) {
					t.Fatalf("thread %d section %d body length differs", th, s)
				}
				for i := range oa {
					if oa[i] != ob[i] {
						t.Fatalf("thread %d section %d op %d differs", th, s, i)
					}
				}
			}
		}
	}
	// A different seed must produce a different workload.
	c := Programs(Intruder(), 4, 43)
	same := true
outer:
	for _, sec := range c[0] {
		if sec.Atomic {
			for _, seca := range a[0] {
				if seca.Atomic {
					oa, oc := seca.Body(1), sec.Body(1)
					if len(oa) != len(oc) {
						same = false
						break outer
					}
					for i := range oa {
						if oa[i] != oc[i] {
							same = false
							break outer
						}
					}
					break outer
				}
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical first transactions")
	}
}

func TestSectionsSplitAcrossThreads(t *testing.T) {
	p := Genome()
	for _, threads := range []int{1, 2, 3, 8, 32} {
		progs := Programs(p, threads, 1)
		total := 0
		for _, pr := range progs {
			total += pr.CountAtomic()
		}
		if total != p.TotalSections {
			t.Fatalf("threads=%d: %d sections, want %d (strong scaling)",
				threads, total, p.TotalSections)
		}
	}
}

func TestStaticBodyStableAcrossAttempts(t *testing.T) {
	progs := Programs(Intruder(), 2, 5)
	for _, sec := range progs[0] {
		if !sec.Atomic {
			continue
		}
		a1 := sec.Body(1)
		a2 := sec.Body(2)
		if len(a1) != len(a2) {
			t.Fatal("static body changed across attempts")
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatal("static body op differs across attempts")
			}
		}
		break
	}
}

func TestRegeneratedBodyVariesAcrossAttempts(t *testing.T) {
	progs := Programs(Labyrinth(), 2, 5)
	varied := false
	for _, sec := range progs[0] {
		if !sec.Atomic {
			continue
		}
		a1 := sec.Body(1)
		a2 := sec.Body(2)
		if len(a1) != len(a2) {
			varied = true
			break
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				varied = true
				break
			}
		}
		if varied {
			break
		}
	}
	if !varied {
		t.Fatal("labyrinth bodies identical across attempts; rerouting not modeled")
	}
}

func TestLabyrinthWritesContiguousPath(t *testing.T) {
	progs := Programs(Labyrinth(), 1, 3)
	for _, sec := range progs[0] {
		if !sec.Atomic {
			continue
		}
		ops := sec.Body(1)
		var writes []mem.Line
		for _, op := range ops {
			if op.Kind == cpu.OpWrite {
				writes = append(writes, op.Line)
			}
		}
		if len(writes) < Labyrinth().PathLength/2 {
			t.Fatalf("path too short: %d writes", len(writes))
		}
		contiguous := 0
		for i := 1; i < len(writes); i++ {
			if writes[i] == writes[i-1]+1 {
				contiguous++
			}
		}
		if contiguous < len(writes)/2 {
			t.Fatalf("labyrinth path not contiguous: %d/%d steps", contiguous, len(writes))
		}
		return
	}
	t.Fatal("no atomic section found")
}

func TestYadaFaultsPersistAcrossAttempts(t *testing.T) {
	progs := Programs(Yada(), 1, 11)
	faultySections := 0
	persistent := 0
	for _, sec := range progs[0] {
		if !sec.Atomic {
			continue
		}
		hasFault := func(ops []cpu.Op) bool {
			for _, op := range ops {
				if op.Kind == cpu.OpFault {
					return true
				}
			}
			return false
		}
		if !hasFault(sec.Body(1)) {
			continue
		}
		faultySections++
		// A faulty section should usually keep faulting on retry.
		again := 0
		for attempt := 2; attempt <= 6; attempt++ {
			if hasFault(sec.Body(attempt)) {
				again++
			}
		}
		if again >= 3 {
			persistent++
		}
	}
	if faultySections == 0 {
		t.Fatal("yada generated no faulting sections")
	}
	if persistent*2 < faultySections {
		t.Fatalf("faults not persistent: %d/%d sections", persistent, faultySections)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := Profile{Name: "x", TotalSections: 10} // no regions
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Validate()
}

func TestBarriersBalancedAcrossThreads(t *testing.T) {
	p := Kmeans() // BarrierEvery > 0
	progs := Programs(p, 4, 1)
	count := func(pr cpu.Program) int {
		n := 0
		for _, s := range pr {
			if s.Barrier {
				n++
			}
		}
		return n
	}
	want := count(progs[0])
	for th, pr := range progs {
		if count(pr) != want {
			t.Fatalf("thread %d has %d barriers, thread 0 has %d (deadlock)", th, count(pr), want)
		}
	}
}
