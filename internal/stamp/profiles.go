package stamp

import "fmt"

// The nine evaluated workloads: STAMP minus bayes (excluded by the paper
// for its unpredictable behaviour), with kmeans and vacation in both their
// low-contention and high-contention (+) configurations.
//
// Profiles are calibrated to the STAMP characterization (Minh et al.,
// IISWC'08): relative transaction lengths, read/write-set sizes, fraction
// of time inside transactions, and contention. Labyrinth's contiguous
// path writes and yada's exception rate reproduce the capacity-overflow
// and fault behaviour the paper's Figs. 9-11 hinge on.

// Genome: long transactions over a large shared hash/index, low contention,
// nearly all time transactional.
func Genome() Profile {
	return Profile{
		Name: "genome", TotalSections: 1280,
		TxReads: 24, TxWrites: 7, ComputePerOp: 3,
		NonTxCompute: 60, NonTxMemOps: 4,
		HotLines: 2048, WarmLines: 8192, PrivateLines: 512,
		HotWriteFrac: 0.55, HotReadFrac: 0.30, WarmReadFrac: 0.45,
		BarrierEvery: 80,
	}
}

// Intruder: short transactions, small sets, high contention on shared
// queues; only about a third of the time transactional.
func Intruder() Profile {
	return Profile{
		Name: "intruder", TotalSections: 2560,
		TxReads: 10, TxWrites: 5, ComputePerOp: 2,
		NonTxCompute: 130, NonTxMemOps: 6,
		HotLines: 96, WarmLines: 1024, PrivateLines: 256,
		HotWriteFrac: 0.70, HotReadFrac: 0.50, WarmReadFrac: 0.25,
	}
}

// Kmeans (low contention): tiny transactions updating cluster centers,
// little transactional time.
func Kmeans() Profile {
	return Profile{
		Name: "kmeans", TotalSections: 2560,
		TxReads: 6, TxWrites: 2, ComputePerOp: 3,
		NonTxCompute: 420, NonTxMemOps: 10,
		HotLines: 512, WarmLines: 2048, PrivateLines: 256,
		HotWriteFrac: 0.50, HotReadFrac: 0.30, WarmReadFrac: 0.30,
		BarrierEvery: 128,
	}
}

// KmeansHigh (kmeans+): fewer clusters — much hotter center lines.
func KmeansHigh() Profile {
	p := Kmeans()
	p.Name = "kmeans+"
	p.HotLines = 48
	p.NonTxCompute = 120
	p.NonTxMemOps = 6
	return p
}

// Labyrinth: very long transactions writing a contiguous routing path
// through a shared grid; write sets far exceed the L1 ways, so capacity
// overflow dominates; bodies are regenerated per attempt (re-routing).
func Labyrinth() Profile {
	return Profile{
		Name: "labyrinth", TotalSections: 144,
		TxReads: 60, TxWrites: 0, ComputePerOp: 2,
		PathLength:   180,
		NonTxCompute: 40, NonTxMemOps: 2,
		HotLines: 4096, WarmLines: 0, PrivateLines: 512,
		HotWriteFrac: 1.0, HotReadFrac: 0.60, WarmReadFrac: 0,
		Regenerate: true,
	}
}

// SSCA2: tiny transactions on a huge graph, very low contention, mostly
// non-transactional.
func SSCA2() Profile {
	return Profile{
		Name: "ssca2", TotalSections: 3840,
		TxReads: 3, TxWrites: 2, ComputePerOp: 2,
		NonTxCompute: 90, NonTxMemOps: 5,
		HotLines: 4096, WarmLines: 4096, PrivateLines: 256,
		HotWriteFrac: 0.85, HotReadFrac: 0.40, WarmReadFrac: 0.30,
		BarrierEvery: 192,
	}
}

// Vacation (low contention): medium transactions traversing shared trees
// (large read sets) with few updates.
func Vacation() Profile {
	return Profile{
		Name: "vacation", TotalSections: 1280,
		TxReads: 50, TxWrites: 8, ComputePerOp: 2,
		NonTxCompute: 60, NonTxMemOps: 3,
		HotLines: 1024, WarmLines: 16384, PrivateLines: 256,
		HotWriteFrac: 0.60, HotReadFrac: 0.10, WarmReadFrac: 0.70,
	}
}

// VacationHigh (vacation+): more update-heavy queries on fewer relations.
func VacationHigh() Profile {
	p := Vacation()
	p.Name = "vacation+"
	p.TxReads = 56
	p.TxWrites = 10
	p.HotLines = 192
	p.HotWriteFrac = 0.80
	p.HotReadFrac = 0.25
	p.WarmReadFrac = 0.55
	return p
}

// Yada: long transactions with large mixed sets, frequent exceptions
// (the paper: "many exceptions, which the best-effort HTM and LockillerTM
// do not support"), dynamic re-triangulation on retry.
func Yada() Profile {
	return Profile{
		Name: "yada", TotalSections: 400,
		TxReads: 45, TxWrites: 28, ComputePerOp: 2,
		NonTxCompute: 30, NonTxMemOps: 2,
		HotLines: 2048, WarmLines: 2048, PrivateLines: 512,
		HotWriteFrac: 0.55, HotReadFrac: 0.45, WarmReadFrac: 0.30,
		FaultProb: 0.30, Regenerate: true,
	}
}

// Workloads returns the nine profiles in the paper's plotting order.
func Workloads() []Profile {
	return []Profile{
		Genome(), Intruder(), Kmeans(), KmeansHigh(), Labyrinth(),
		SSCA2(), Vacation(), VacationHigh(), Yada(),
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Workloads() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("stamp: unknown workload %q", name)
}

// HighContention lists the workloads the paper calls high-contention, used
// when reporting the extreme-scenario maxima of Fig. 13.
func HighContention() []string {
	return []string{"intruder", "kmeans+", "vacation+", "labyrinth", "yada"}
}
