package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
)

// TestProtocolTablesComplete runs the proto validator over every registered
// protocol table: each (state, event) pair must be handled by a reachable
// transition or declared impossible, and no transition may be shadowed into
// unreachability by an earlier unguarded row.
func TestProtocolTablesComplete(t *testing.T) {
	for _, err := range ValidateProtocolTables() {
		t.Error(err)
	}
}

// TestMsgEventNames pins the msgEvents name space to the MsgType constants:
// the tables use MsgType values directly as event codes, so an inserted or
// reordered message type must fail loudly here rather than silently skew
// every table.
func TestMsgEventNames(t *testing.T) {
	if got, want := len(msgEvents), int(MsgClInvDone)+1; got != want {
		t.Fatalf("msgEvents has %d names, MsgType space has %d", got, want)
	}
	for i, name := range msgEvents {
		if s := MsgType(i).String(); s != name {
			t.Errorf("msgEvents[%d] = %q, MsgType(%d).String() = %q", i, name, i, s)
		}
	}
}

// TestCacheStateNames pins the cacheStates name space to the cache.State
// constants (the fill and promote tables use cache.State values as state
// codes).
func TestCacheStateNames(t *testing.T) {
	for i, name := range cacheStates {
		if s := cache.State(i).String(); s != name {
			t.Errorf("cacheStates[%d] = %q, cache.State(%d).String() = %q", i, name, i, s)
		}
	}
}

// TestMidStaleState pins the synthetic stale-promote state directly after
// the cache.State codes in the mid.promote state space.
func TestMidStaleState(t *testing.T) {
	if int(midStale) != len(cacheStates) {
		t.Errorf("midStale = %d, want len(cacheStates) = %d", midStale, len(cacheStates))
	}
	if got := midStates[midStale]; got != "stale" {
		t.Errorf("midStates[midStale] = %q, want %q", got, "stale")
	}
}

// TestMsgRoutingMatchesTables cross-checks Msg.toBank — the one raw MsgType
// switch left in the package (waived routing, see system.go) — against the
// bankBound/l1Bound partition the tables declare impossible for the other
// consumer.
func TestMsgRoutingMatchesTables(t *testing.T) {
	inBank := make(map[MsgType]bool)
	for _, e := range bankBound {
		inBank[MsgType(e)] = true
	}
	inL1 := make(map[MsgType]bool)
	for _, e := range l1Bound {
		inL1[MsgType(e)] = true
	}
	for i := 0; i <= int(MsgClInvDone); i++ {
		mt := MsgType(i)
		if inBank[mt] == inL1[mt] {
			t.Errorf("%v is in bankBound=%v and l1Bound=%v; the partition must cover each type exactly once",
				mt, inBank[mt], inL1[mt])
			continue
		}
		m := Msg{Type: mt}
		if got := m.toBank(); got != inBank[mt] {
			t.Errorf("%v: toBank() = %v, tables declare bank-bound = %v", mt, got, inBank[mt])
		}
	}
}

// TestSortedMshrsNoAlloc asserts the wake-parked iteration path allocates
// nothing in steady state: sortedMshrs insertion-sorts into a reused scratch
// slice (sort.Slice would box its comparator and allocate per call).
func TestSortedMshrsNoAlloc(t *testing.T) {
	_, sys, _ := tsys(t, baseCfg())
	l1 := sys.L1s[0]
	// Descending insertion order is the insertion sort's worst case.
	lines := []mem.Line{800, 700, 600, 500, 400, 300, 200, 100}
	for _, l := range lines {
		l1.mshrs.insert(&mshr{line: l})
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := l1.sortedMshrs()
		if len(s) != len(lines) {
			t.Fatalf("sortedMshrs returned %d entries, want %d", len(s), len(lines))
		}
	})
	if allocs != 0 {
		t.Fatalf("sortedMshrs allocates %.0f per call in steady state, want 0", allocs)
	}
	s := l1.sortedMshrs()
	for i := 1; i < len(s); i++ {
		if s[i-1].line >= s[i].line {
			t.Fatalf("sortedMshrs not in ascending line order: %d before %d", s[i-1].line, s[i].line)
		}
	}
}

// TestRejectPolicyOwnerWinsMatrix exercises every recovery reject policy on
// both sides of the priority arbitration: when the transactional owner wins
// (it is older/higher-priority), the requester's fate is the policy's —
// self-abort, timed retry, or park-until-wakeup; when the requester wins,
// the owner aborts identically under every policy.
func TestRejectPolicyOwnerWinsMatrix(t *testing.T) {
	policies := []htm.RejectPolicy{htm.SelfAbort, htm.RetryLater, htm.WaitWakeup}
	for _, pol := range policies {
		pol := pol
		t.Run(fmt.Sprintf("%v/owner-wins", pol), func(t *testing.T) {
			e, sys, cl := tsys(t, recoveryCfg(pol))
			sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
			sys.L1s[0].Tx.InstsRetired = 1000 // owner is older: it wins
			access(t, e, sys, 0, 100, true)
			drain(e)
			sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
			done := tryAccess(e, sys, 1, 100, false)
			for i := 0; i < 10000 && !*done; i++ {
				if !e.Step() {
					break
				}
			}
			if len(cl[0].dooms) != 0 {
				t.Fatalf("winning owner aborted: %v", cl[0].dooms)
			}
			if sys.L1s[1].RejectsReceived == 0 {
				t.Fatal("losing requester never saw a reject")
			}
			if pol == htm.SelfAbort {
				if len(cl[1].dooms) != 1 || cl[1].dooms[0] != htm.CauseMC {
					t.Fatalf("requester dooms = %v, want [mc]", cl[1].dooms)
				}
				return
			}
			// RetryLater / WaitWakeup: the requester stays live but unserved
			// until the owner commits.
			if *done {
				t.Fatal("losing request completed while the owner was still speculative")
			}
			if len(cl[1].dooms) != 0 {
				t.Fatalf("requester aborted under %v: %v", pol, cl[1].dooms)
			}
			sys.L1s[0].CommitTx()
			sys.L1s[0].Tx.Reset()
			drain(e)
			if !*done {
				t.Fatalf("request never completed after owner commit under %v", pol)
			}
		})
		t.Run(fmt.Sprintf("%v/requester-wins", pol), func(t *testing.T) {
			e, sys, cl := tsys(t, recoveryCfg(pol))
			sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
			access(t, e, sys, 0, 100, true) // owner priority 0: it loses
			drain(e)
			sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
			sys.L1s[1].Tx.InstsRetired = 500
			done := tryAccess(e, sys, 1, 100, false)
			drain(e)
			// The winning requester's fate is policy-independent: the owner
			// aborts and the request is served.
			if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseMC {
				t.Fatalf("losing owner dooms = %v, want [mc]", cl[0].dooms)
			}
			if len(cl[1].dooms) != 0 {
				t.Fatalf("winning requester aborted under %v: %v", pol, cl[1].dooms)
			}
			if !*done {
				t.Fatalf("winning request never completed under %v", pol)
			}
		})
	}
}
