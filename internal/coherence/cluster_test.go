package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// csys builds an 8-core clustered system (two clusters of 4) for
// two-level-directory tests.
func csys(t *testing.T, hc htm.Config) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine()
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 8, 2, 4
	p.ClusterSize = 4
	p.LLCSize = 1 << 20
	sys := NewSystem(e, p, hc)
	for i := 0; i < p.Cores; i++ {
		sys.L1s[i].SetClient(&testClient{})
	}
	return e, sys
}

// TestClusteredGetMOverSharers drives the full two-level round: sharers in
// both clusters, a GetM from one of them, and the home must end with the
// requester exclusive and every other copy invalid — exactly the flat
// directory's outcome.
func TestClusteredGetMOverSharers(t *testing.T) {
	e, sys := csys(t, baseCfg())
	l := mem.Line(100) // homed at bank 4 (cluster 1)
	if h := sys.HomeBank(l); sys.clusterOf(h) != 1 {
		t.Fatalf("test expects line 100 homed in cluster 1, got bank %d", h)
	}
	// Readers in both clusters: 0, 1 (cluster 0) and 5, 6 (cluster 1).
	for _, c := range []int{0, 1, 5, 6} {
		access(t, e, sys, c, l, false)
	}
	// Writer in cluster 0: own-cluster sharers 0, 1 reach the home through a
	// ClInv round; sharer 5, 6 are home-cluster directs.
	access(t, e, sys, 0, l, true)
	drain(e)
	if got := st(sys, 0, l); got != cache.Modified {
		t.Fatalf("writer state = %v, want M", got)
	}
	for _, c := range []int{1, 5, 6} {
		if got := st(sys, c, l); got != cache.Invalid {
			t.Fatalf("core %d state = %v, want I after clustered invalidation", c, got)
		}
	}
	rounds := uint64(0)
	for _, b := range sys.Banks {
		rounds += b.ClusterRounds
	}
	if rounds == 0 {
		t.Fatal("no cluster-collector round fired; fanout stayed flat")
	}
	if len(sys.Banks[sys.HomeBank(l)].collects) != 0 {
		t.Fatal("collector round leaked")
	}
}

// TestClusteredRejectPropagates checks the InvReject path through a
// collector: a transactional sharer in a remote cluster wins arbitration,
// so the requester's GetM must come back rejected and the winner keep its
// copy.
func TestClusteredRejectPropagates(t *testing.T) {
	e, sys := csys(t, recoveryCfg(htm.WaitWakeup))
	l := mem.Line(3) // homed at bank 3 (cluster 0)
	// Core 6 (cluster 1) reads the line inside a high-priority transaction.
	sys.L1s[6].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 6, l, false)
	drain(e)
	sys.L1s[6].Tx.InstsRetired = 1000
	// Core 0 reads too, then a low-priority transaction on it writes: the
	// fanout must delegate core 6's invalidation to cluster 1's collector,
	// and the transactional sharer rejects it through the collector.
	access(t, e, sys, 0, l, false)
	drain(e)
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 0, l, true)
	for i := 0; i < 10000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("write should have been rejected by the remote transactional sharer")
	}
	if got := st(sys, 6, l); got != cache.Shared {
		t.Fatalf("winning sharer state = %v, want S", got)
	}
	for _, b := range sys.Banks {
		if len(b.collects) != 0 {
			t.Fatalf("bank %d leaked a collector round", b.id)
		}
	}
}

// TestClusteredMatchesFlatOutcome runs the same access script on a flat and
// a clustered 8-core machine: logical outcomes (final states) must agree
// even though timings differ.
func TestClusteredMatchesFlatOutcome(t *testing.T) {
	run := func(clusterSize int) []cache.State {
		e := sim.NewEngine()
		p := DefaultParams()
		p.Cores, p.MeshW, p.MeshH = 8, 2, 4
		p.ClusterSize = clusterSize
		p.LLCSize = 1 << 20
		sys := NewSystem(e, p, baseCfg())
		for i := 0; i < p.Cores; i++ {
			sys.L1s[i].SetClient(&testClient{})
		}
		for l := mem.Line(0); l < 24; l++ {
			for c := 0; c < 8; c += 2 {
				access(t, e, sys, c, l, false)
			}
			access(t, e, sys, int(l)%8, l, true)
		}
		drain(e)
		var out []cache.State
		for l := mem.Line(0); l < 24; l++ {
			for c := 0; c < 8; c++ {
				out = append(out, st(sys, c, l))
			}
		}
		return out
	}
	flat, clustered := run(0), run(4)
	for i := range flat {
		if flat[i] != clustered[i] {
			t.Fatalf("state %d diverged: flat %v, clustered %v", i, flat[i], clustered[i])
		}
	}
}
