package coherence

// Two-level directory mode (Params.ClusterSize > 0): instead of the home
// bank invalidating every remote sharer itself — which serializes 255 sends
// through one tile on a 256-core GetM over sharers — the machine is carved
// into clusters of ClusterSize consecutive tiles, and the home delegates
// each remote cluster's fanout to a collector bank inside that cluster
// (one MsgClInv out, one MsgClInvDone back per cluster). The collector
// fans MsgInv to its cluster's sharers, gathers their InvAck/InvReject
// replies, and reports the aggregate. Semantics match the flat directory:
// only acked sharers are dropped from the sharer set, any rejection
// withdraws the request, and the first rejection to arrive at the home (in
// deterministic delivery order) names the winner. Back-invalidation
// recalls stay flat-fanout — they are rare, and clusters only relieve the
// GetM-over-sharers hot path (DESIGN.md §13).
//
// The collector's per-line round state lives outside the directory table
// (the line is homed at a different bank); its decisions dispatch through
// the bank.clinv protocol table like every other protocol choice.

import (
	"fmt"
	"math/bits"

	"repro/internal/coherence/proto"
	"repro/internal/htm"
	"repro/internal/mem"
)

// clusterCollect is one in-flight collector round.
type clusterCollect struct {
	line         mem.Line
	left         int    // replies outstanding
	ackMask      uint64 // cluster-relative cores that acked
	rejected     bool
	rejectorMode htm.Mode
	rejector     int
	home         int // home bank awaiting the MsgClInvDone
	requester    int
}

// clustered reports whether the two-level directory is active.
func (s *System) clustered() bool {
	return s.ClusterSize > 0 && s.ClusterSize < s.Cores
}

// clusterOf returns the cluster index of a tile.
func (s *System) clusterOf(tile int) int { return tile / s.ClusterSize }

// collectorBank returns the bank that collects invalidations for a line in
// a cluster. Spreading by line keeps one hot line from serializing a whole
// cluster's rounds on a single bank; the choice is a pure function of
// (line, cluster), so replay is deterministic.
func (s *System) collectorBank(l mem.Line, cluster int) int {
	return cluster*s.ClusterSize + int(uint64(l)%uint64(s.ClusterSize))
}

// findCollect returns the index of the bank's collector round for the line,
// or -1. Rounds in flight per bank are few; a linear scan beats any keyed
// structure here and is trivially deterministic.
func (b *Bank) findCollect(l mem.Line) int {
	for i := range b.collects {
		if b.collects[i].line == l {
			return i
		}
	}
	return -1
}

// clusterRole classifies a message for the collector dispatch: ok reports
// that the bank.clinv table owns it. A ClInv always enters (its state says
// whether a round already exists — overlapping rounds are a declared
// protocol violation); an InvAck/InvReject enters only when a round for its
// line is open, because the same bank receives home-role invalidation
// replies for lines it homes itself. A collector round and a home-role
// service round can never collide on one line: collectors sit outside the
// line's home cluster by construction.
func (b *Bank) clusterRole(m *Msg) (s proto.State, ok bool) {
	isReply := m.Type == MsgInvAck || m.Type == MsgInvReject
	if m.Type != MsgClInv && !isReply {
		return 0, false
	}
	idx := b.findCollect(m.Line)
	if m.Type == MsgClInv {
		if idx >= 0 {
			return clCollecting, true
		}
		return clIdle, true
	}
	if idx < 0 {
		return 0, false // home-role reply: normal bank.receive path
	}
	return clCollecting, true
}

// startCollect opens a collector round for a MsgClInv: fan MsgInv to every
// masked core of this cluster in ascending order, mirroring the home's own
// fanout order.
func (b *Bank) startCollect(m *Msg) {
	if m.Mask == 0 {
		panic(fmt.Sprintf("coherence: empty ClInv mask for line %d", m.Line))
	}
	b.ClusterRounds++
	base := b.sys.clusterOf(b.id) * b.sys.ClusterSize
	left := 0
	for rel := 0; rel < b.sys.ClusterSize; rel++ {
		if m.Mask&(1<<uint(rel)) == 0 {
			continue
		}
		left++
		b.send(Msg{Type: MsgInv, Line: m.Line, Dst: base + rel,
			Requester: m.Requester, Prio: m.Prio, ReqMode: m.ReqMode, Write: true})
	}
	b.collects = append(b.collects, clusterCollect{
		line: m.Line, left: left, home: m.Src, requester: m.Requester,
	})
}

// collectClusterAck records one sharer's invalidation in the open round.
func (b *Bank) collectClusterAck(m *Msg) {
	i := b.findCollect(m.Line)
	c := &b.collects[i]
	c.ackMask |= 1 << uint(m.Src-b.sys.clusterOf(b.id)*b.sys.ClusterSize)
	b.finishCollectReply(i)
}

// collectClusterReject records a sharer that kept its copy (won
// arbitration). Matching the flat directory's last-writer-wins bookkeeping,
// the latest rejection to arrive overwrites the recorded winner.
func (b *Bank) collectClusterReject(m *Msg) {
	i := b.findCollect(m.Line)
	c := &b.collects[i]
	c.rejected = true
	c.rejectorMode = m.RejectorMode
	c.rejector = m.Rejector
	b.finishCollectReply(i)
}

// finishCollectReply closes the round once every fanned-out invalidation
// answered, reporting the aggregate to the home bank.
func (b *Bank) finishCollectReply(i int) {
	c := &b.collects[i]
	c.left--
	if c.left > 0 {
		return
	}
	b.send(Msg{Type: MsgClInvDone, Line: c.line, Dst: c.home,
		Requester: c.requester, Mask: c.ackMask,
		Rejected: c.rejected, RejectorMode: c.rejectorMode, Rejector: c.rejector})
	b.collects = append(b.collects[:i], b.collects[i+1:]...)
}

// fanoutInvClustered is fanoutInv's two-level variant: own-cluster sharers
// get direct MsgInv, each remote cluster with sharers gets one MsgClInv
// carrying the cluster-relative target mask. The single ascending pass over
// the sharer set emits a cluster's ClInv right after its last sharer, so
// send order is a pure function of the sharer set.
func (b *Bank) fanoutInvClustered(d *dirLine, m *Msg) {
	sys := b.sys
	own := sys.clusterOf(b.id)
	n := 0 // direct sends + remote-cluster rounds
	pendingCluster := -1
	var pendingMask uint64
	flush := func() {
		if pendingCluster < 0 {
			return
		}
		n++
		b.send(Msg{Type: MsgClInv, Line: m.Line,
			Dst:       sys.collectorBank(m.Line, pendingCluster),
			Requester: m.Requester, Prio: m.Prio, ReqMode: m.ReqMode,
			Mask: pendingMask})
		pendingCluster = -1
		pendingMask = 0
	}
	for c, ok := d.sharers.Next(-1); ok; c, ok = d.sharers.Next(c) {
		if c == m.Requester {
			continue
		}
		cl := sys.clusterOf(c)
		if cl == own {
			flush()
			n++
			b.send(Msg{Type: MsgInv, Line: m.Line, Dst: c,
				Requester: m.Requester, Prio: m.Prio, ReqMode: m.ReqMode, Write: true})
			continue
		}
		if cl != pendingCluster {
			flush()
			pendingCluster = cl
		}
		pendingMask |= 1 << uint(c-cl*sys.ClusterSize)
	}
	flush()
	d.pend.invAcksLeft = n
}

// collectClusterDone folds a collector's aggregate into the home's pending
// round: acked sharers leave the sharer set (rejectors keep their copies,
// exactly as in the flat protocol), a rejection withdraws the request, and
// the whole cluster counts as one outstanding reply.
func (b *Bank) collectClusterDone(d *dirLine, m *Msg) {
	base := b.sys.clusterOf(m.Src) * b.sys.ClusterSize
	for mask := m.Mask; mask != 0; mask &= mask - 1 {
		d.dropSharer(base + bits.TrailingZeros64(mask))
	}
	if m.Rejected {
		d.pend.rejected = true
		d.pend.rejectorMode = m.RejectorMode
		d.pend.rejector = m.Rejector
	}
	b.finishInvRound(d)
}
