package coherence

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
)

// losaCfg mirrors the harness's LosaTM-SAFU construction.
func losaCfg() htm.Config {
	return htm.Config{
		Losa: true, RejectPolicy: htm.WaitWakeup, Priority: priority.Progression{},
	}.Defaults()
}

func TestLosaUsesProgressionPriority(t *testing.T) {
	e, sys, cl := tsys(t, losaCfg())
	// Owner with a large footprint (progression priority) but few insts.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	for i := 0; i < 6; i++ {
		access(t, e, sys, 0, mem.Line(4096+i*64), true)
		drain(e)
	}
	if sys.L1s[0].Tx.Priority() < 6 {
		t.Fatalf("progression priority = %d, want footprint", sys.L1s[0].Tx.Priority())
	}
	// A small-footprint requester loses even with many retired insts.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[1].Tx.InstsRetired = 1 << 30 // irrelevant under progression
	done := tryAccess(e, sys, 1, 4096, false)
	for i := 0; i < 5000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done || len(cl[0].dooms) != 0 {
		t.Fatal("large-footprint owner should win under LosaTM arbitration")
	}
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("wake-up retry failed")
	}
}

func TestLosaArbitrationDelay(t *testing.T) {
	// LosaTM's arbitration logic costs an extra cycle on the reject path
	// (related work: "the cache controller needs an extra cycle of delay").
	reject := func(cfg htm.Config) uint64 {
		e, sys, _ := tsys(t, cfg)
		sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
		access(t, e, sys, 0, 4096, true)
		drain(e)
		sys.L1s[0].Tx.InstsRetired = 1000
		sys.L1s[0].Tx.ReadLines = 1000 // large under either metric
		sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
		start := e.Now()
		tryAccess(e, sys, 1, 4096, false)
		for sys.L1s[1].RejectsReceived == 0 {
			if !e.Step() {
				t.Fatal("no reject")
			}
		}
		return e.Now() - start
	}
	losa := reject(losaCfg())
	lockiller := reject(recoveryCfg(htm.WaitWakeup))
	if losa != lockiller+1 {
		t.Fatalf("losa reject latency %d, lockiller %d: want exactly +1 cycle", losa, lockiller)
	}
}
