package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// mshrTable maps lines to live MSHR entries. It replaces the previous
// map[mem.Line]*mshr so the miss path allocates nothing in steady state
// (Go map inserts allocate buckets; the table is a flat slice probed open-
// addressed) and so iteration order is structural rather than randomized.
//
// Design points:
//
//   - linear probing with multiplicative (Fibonacci) hashing: the live
//     population is MSHR-sized (a handful of entries), so probe chains are
//     short even under the pathological line patterns tests generate;
//   - backward-shift deletion instead of tombstones: chains stay contiguous
//     forever, so lookups never degrade over a long run and the table never
//     needs a cleanup rehash;
//   - live and parked counters are maintained on every mutation, keeping
//     MSHRCount and ParkedRequests O(1) for the telemetry probes;
//   - the capacity starts MSHR-sized and doubles only if a workload ever
//     holds more concurrently-parked requests than any current one does
//     (growth is deterministic: it depends only on the insertion history).
type mshrTable struct {
	slots  []*mshr
	mask   uint64
	shift  uint // 64 - log2(len(slots)), for the multiplicative hash
	live   int
	parked int
}

// mshrTableCap is the initial slot count. 64 slots at the 1/2 max load
// factor cover 32 concurrent MSHRs — far beyond what an in-order core with
// one demand miss plus abort residue ever holds.
const mshrTableCap = 64

func newMshrTable(capacity int) mshrTable {
	if capacity&(capacity-1) != 0 || capacity == 0 {
		panic(fmt.Sprintf("coherence: MSHR table capacity %d not a power of two", capacity))
	}
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	return mshrTable{slots: make([]*mshr, capacity), mask: uint64(capacity - 1), shift: shift}
}

// home returns the preferred slot of a line.
func (t *mshrTable) home(l mem.Line) uint64 {
	return (uint64(l) * 0x9E3779B97F4A7C15) >> t.shift
}

// lookup returns the entry for the line, or nil.
func (t *mshrTable) lookup(l mem.Line) *mshr {
	if t.live == 0 {
		return nil
	}
	for i := t.home(l); ; i = (i + 1) & t.mask {
		e := t.slots[i]
		if e == nil {
			return nil
		}
		if e.line == l {
			return e
		}
	}
}

// insert adds a fresh entry. Inserting a line that is already present is a
// controller bug (the map version would have silently leaked the old MSHR).
func (t *mshrTable) insert(ms *mshr) {
	if 2*(t.live+1) > len(t.slots) {
		t.grow()
	}
	for i := t.home(ms.line); ; i = (i + 1) & t.mask {
		e := t.slots[i]
		if e == nil {
			t.slots[i] = ms
			t.live++
			if ms.state == mshrParked {
				t.parked++
			}
			return
		}
		if e.line == ms.line {
			panic(fmt.Sprintf("coherence: duplicate MSHR insert for line %d", ms.line))
		}
	}
}

// remove deletes the entry for the line, reporting whether it was present.
// Backward-shift deletion: every entry after the hole that is allowed to
// move closer to its home slot does, so probe chains stay contiguous and no
// tombstones accumulate.
func (t *mshrTable) remove(l mem.Line) bool {
	if t.live == 0 {
		return false
	}
	i := t.home(l)
	for {
		e := t.slots[i]
		if e == nil {
			return false
		}
		if e.line == l {
			break
		}
		i = (i + 1) & t.mask
	}
	if t.slots[i].state == mshrParked {
		t.parked--
	}
	t.live--
	j := i
	for {
		t.slots[i] = nil
		for {
			j = (j + 1) & t.mask
			e := t.slots[j]
			if e == nil {
				return true
			}
			// The entry at j stays put iff its home slot lies cyclically in
			// (i, j] — moving it to i would then strand it before its home.
			h := t.home(e.line)
			inRange := false
			if i <= j {
				inRange = i < h && h <= j
			} else {
				inRange = i < h || h <= j
			}
			if !inRange {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// setParked marks an entry parked, keeping the parked counter exact.
func (t *mshrTable) setParked(ms *mshr) {
	if ms.state != mshrParked {
		ms.state = mshrParked
		t.parked++
	}
}

// setInFlight marks an entry in flight again (wake-up or timed retry).
func (t *mshrTable) setInFlight(ms *mshr) {
	if ms.state == mshrParked {
		t.parked--
	}
	ms.state = mshrInFlight
}

// reset empties the table in place (machine reset between runs), handing
// each live entry to recycle so the owner can pool it. Capacity survives
// growth; see dirTable.reset for why that is behavior-neutral.
func (t *mshrTable) reset(recycle func(*mshr)) {
	if t.live > 0 {
		for i, ms := range t.slots {
			if ms != nil {
				if recycle != nil {
					recycle(ms)
				}
				t.slots[i] = nil
			}
		}
	}
	t.live, t.parked = 0, 0
}

// grow doubles the table, reinserting every live entry. Growth preserves
// determinism: the new layout depends only on the set of live lines.
func (t *mshrTable) grow() {
	old := t.slots
	*t = newMshrTable(2 * len(old))
	for _, ms := range old {
		if ms != nil {
			t.insert(ms)
		}
	}
}
