// Package coherence implements the two-level MESI directory protocol of the
// modeled CMP, extended with the LockillerTM mechanisms: NACK responses
// (paper Fig. 3), priority-carrying requests and selective rejection of
// toxic requests (recovery mechanism, Fig. 2 and 4), wake-up messages, the
// HTMLock overflow-signature checks at the LLC (Fig. 5), and the
// applyingHLA flow of the switchingMode mechanism (Fig. 6).
//
// The protocol is directory-mediated (owner responses travel through the
// home LLC bank, which forwards data to the requester). That matches the
// paper's Fig. 2 topology, where L1 caches communicate through the
// subordinate directory, which tracks per-request response state and sends
// the final (possibly reject-carrying) response to the original requester.
// The directory blocks a line from request receipt until the requester's
// unblock message, exactly the transient-to-stable flow of Fig. 3.
package coherence

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// MsgType enumerates every protocol message.
type MsgType uint8

const (
	// Requests: L1 -> home directory bank.
	MsgGetS MsgType = iota // read miss
	MsgGetM                // write miss or upgrade
	MsgPutM                // eviction of a Modified line (carries data)
	MsgPutE                // eviction of a clean Exclusive line
	MsgTxWB                // pre-transactional writeback of a dirty line
	// before its TxWrite bit is set (carries data)

	// Forwards: directory -> current owner or sharers.
	MsgFwdGetS // another core wants a shared copy
	MsgFwdGetM // another core wants an exclusive copy
	MsgInv     // invalidate (GetM to a Shared line, or LLC back-invalidation)

	// Owner/sharer responses: L1 -> directory.
	MsgOwnerData // owner supplies data and downgrades (S) or invalidates (M grant)
	MsgNack      // owner no longer holds the line: it invalidated itself
	// (transaction abort or eviction race); serve from LLC
	MsgRejectFwd // owner holds the line transactionally and wins arbitration:
	// the forwarded request is toxic and is withdrawn
	MsgInvAck    // sharer invalidated (possibly aborting its transaction)
	MsgInvReject // sharer keeps its copy: it wins arbitration

	// Final responses: directory -> requester.
	MsgDataS  // shared data grant
	MsgDataE  // exclusive data grant (E for reads, M for writes)
	MsgReject // request withdrawn (recovery mechanism / signature hit)

	// Completion: requester -> directory.
	MsgUnblock // requester reached a stable state; directory may proceed

	// HTM specials.
	MsgWakeUp    // rejecting L1 (or LLC) -> parked requester: retry now
	MsgHLApply   // L1 -> arbiter bank: request STL or TL authorization
	MsgHLGrant   // arbiter bank -> L1: authorization granted
	MsgHLDeny    // arbiter bank -> L1: STL application denied
	MsgHLRelease // L1 -> arbiter bank: hlend, release authorization
	MsgSigAdd    // L1 -> arbiter bank: overflowed line added to a signature

	// Two-level directory (ClusterSize > 0, see cluster.go).
	MsgClInv     // home bank -> cluster collector: invalidate the sharers in Mask
	MsgClInvDone // cluster collector -> home bank: round finished; Mask acked
)

// carriesData reports whether the message is a multi-flit data message.
func (t MsgType) carriesData() bool {
	//lockiller:rawdispatch message-size attribute for the NoC, not a protocol decision; no controller state axis
	switch t {
	case MsgPutM, MsgTxWB, MsgOwnerData, MsgDataS, MsgDataE:
		return true
	}
	return false
}

// Flits returns the message size in flits (Table I: 5 flits data, 1 control).
func (t MsgType) Flits() int {
	if t.carriesData() {
		return noc.DataFlits
	}
	return noc.ControlFlits
}

func (t MsgType) String() string {
	names := [...]string{
		"GetS", "GetM", "PutM", "PutE", "TxWB",
		"FwdGetS", "FwdGetM", "Inv",
		"OwnerData", "Nack", "RejectFwd", "InvAck", "InvReject",
		"DataS", "DataE", "Reject",
		"Unblock",
		"WakeUp", "HLApply", "HLGrant", "HLDeny", "HLRelease", "SigAdd",
		"ClInv", "ClInvDone",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Msg is a protocol message in flight.
type Msg struct {
	Type MsgType
	Line mem.Line
	// Src and Dst are tile numbers. Core i's L1 and LLC bank i share tile i.
	Src, Dst int
	// Requester is the original requesting core for forwards and for
	// responses that close out a forwarded request.
	Requester int
	// Prio is the requester's transaction priority at send time — the
	// user-defined data the recovery mechanism piggybacks on requests
	// (ARUSER field in the paper's ACE mapping).
	Prio uint64
	// ReqMode is the requester's execution mode, used to classify the
	// abort cause at a defeated owner (mc / lock / mutex / non_tran).
	ReqMode htm.Mode
	// Write distinguishes FwdGetM from FwdGetS at the owner and GetM
	// retries, and marks SigAdd as a write-set overflow.
	Write bool
	// RejectorMode tells a rejected requester what kind of transaction
	// defeated it (shapes its own abort cause under SelfAbort).
	RejectorMode htm.Mode
	// Rejector is the core whose transaction defeated the requester. It
	// rides RejectFwd/InvReject and the final Reject so conflict
	// provenance can attribute the winner (-1 when no core is nameable).
	Rejector int
	// Excl reports, on MsgUnblock, that the requester settled in an
	// exclusive state (E/M) rather than S, and on MsgSigAdd whether the
	// line was in the read set (Write==false) or write set (Write==true).
	Excl bool
	// Mask carries cluster-relative core bits for the two-level directory:
	// on MsgClInv the sharers the collector must invalidate, on
	// MsgClInvDone the subset that acked (rejectors keep their copies).
	// Cluster-relative indexing is why ClusterSize is capped at 64.
	Mask uint64
	// Rejected reports, on MsgClInvDone, that at least one sharer in the
	// cluster won arbitration; RejectorMode/Rejector name the winner.
	Rejected bool
	// recycled marks a message sitting on the System free list; set by
	// System.free and cleared when the allocation site overwrites the
	// struct. Guards against double frees.
	recycled bool
}
