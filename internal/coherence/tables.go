package coherence

// This file declares the protocol transition tables: the L1, directory-bank,
// and middle-cache controllers dispatch their message handling through
// declarative (state × event → guard, actions, next-state) tables in the
// style of gem5's SLICC, built on internal/coherence/proto.
//
// The split of responsibilities:
//
//   - tables.go declares WHAT the protocol does: states, events, guards,
//     action sequences, and the (state, event) pairs that are protocol
//     violations;
//   - l1.go / dir.go / midcache.go keep HOW as small named methods — the
//     actions — so the message-pool ownership and typed-event rules
//     (DESIGN.md §7) are untouched;
//   - proto does the dispatch, the exhaustiveness validation
//     (TestProtocolTablesComplete), the per-transition fired counters
//     (lockillersim -transitions), and the doc rendering (cmd/protodoc,
//     DESIGN.md §8).
//
// Guards are side-effect-free by contract. In particular every cache lookup
// an action sequence needs is resolved by the thin classifier shims in the
// controllers before dispatch — Lookup refreshes LRU and Peek does not, so
// each classifier preserves the exact Lookup/Peek choice of the pre-table
// code (bit-for-bit determinism of the golden cycle counts depends on it).
//
// The tables are compiled in init rather than as package-level initializer
// expressions: actions call controller methods that dispatch back through
// the tables, which Go's initializer dependency analysis reports as an
// initialization cycle. Function bodies are exempt from that analysis.

//go:generate go run repro/cmd/protodoc -doc ../../DESIGN.md

import (
	"repro/internal/cache"
	"repro/internal/coherence/proto"
	"repro/internal/mem"
	"repro/internal/stats"
)

// act and when cut the literal noise out of the table declarations.
func act[C any](name string, do func(C)) proto.Action[C] {
	return proto.Action[C]{Name: name, Do: do}
}

func when[C any](name string, ok func(C) bool) proto.Guard[C] {
	return proto.Guard[C]{Name: name, Ok: ok}
}

// onMsg maps a wire message type to its table event code (the tables that
// dispatch on raw messages use the full MsgType space as their event space).
func onMsg(t MsgType) proto.Event { return proto.Event(t) }

// cst maps a cache line state to its table state code (the fill and promote
// tables use the cache.State space directly).
func cst(s cache.State) proto.State { return proto.State(s) }

// forbid appends one Impossible declaration per (state, event) pair.
func forbid(dst []proto.Impossible, states []proto.State, events []proto.Event, why string) []proto.Impossible {
	for _, s := range states {
		for _, e := range events {
			dst = append(dst, proto.Impossible{From: s, On: e, Why: why})
		}
	}
	return dst
}

// --- shared name spaces ----------------------------------------------------

// msgEvents names the full MsgType space, index-aligned with the MsgType
// constants (TestMsgEventNames pins the alignment).
var msgEvents = []string{
	"GetS", "GetM", "PutM", "PutE", "TxWB", "FwdGetS", "FwdGetM", "Inv",
	"OwnerData", "Nack", "RejectFwd", "InvAck", "InvReject", "DataS", "DataE",
	"Reject", "Unblock", "WakeUp", "HLApply", "HLGrant", "HLDeny", "HLRelease", "SigAdd",
	"ClInv", "ClInvDone",
}

// cacheStates names the cache.State space, index-aligned with its constants.
var cacheStates = []string{"I", "S", "E", "M", "I->S", "I->M", "S->M"}

// bankBound / l1Bound partition the message types by consumer; each side
// declares the other's types impossible. TestMsgRoutingMatchesTables pins
// this partition against Msg.toBank.
var bankBound = []proto.Event{
	onMsg(MsgGetS), onMsg(MsgGetM), onMsg(MsgPutM), onMsg(MsgPutE), onMsg(MsgTxWB),
	onMsg(MsgOwnerData), onMsg(MsgNack), onMsg(MsgRejectFwd), onMsg(MsgInvAck),
	onMsg(MsgInvReject), onMsg(MsgUnblock), onMsg(MsgHLApply), onMsg(MsgHLRelease),
	onMsg(MsgSigAdd), onMsg(MsgClInv), onMsg(MsgClInvDone),
}

var l1Bound = []proto.Event{
	onMsg(MsgFwdGetS), onMsg(MsgFwdGetM), onMsg(MsgInv), onMsg(MsgDataS),
	onMsg(MsgDataE), onMsg(MsgReject), onMsg(MsgWakeUp), onMsg(MsgHLGrant),
	onMsg(MsgHLDeny),
}

// --- states, events, and dispatch contexts ---------------------------------

// The L1's top-level state is the applyingHLA flag (switchingMode, paper
// Fig. 6): while an HLApply is outstanding, external requests queue instead
// of dispatching.
const (
	l1Ready proto.State = iota
	l1Applying
)

var l1RecvStates = []string{"ready", "applyingHLA"}

type l1MsgCtx struct {
	l1 *L1
	m  *Msg
}

// Fill settlement events: which flavor of data answered the miss.
const (
	fillDataS proto.Event = iota
	fillDataE
)

var fillEvents = []string{"DataS", "DataE"}

type l1FillCtx struct {
	l1 *L1
	m  *Msg
	e  *cache.Entry
	ms *mshr
}

// Forward-conflict classification: what kind of copy the owner holds.
const (
	fwdNone proto.State = iota
	fwdPlain
	fwdTxRead
	fwdTxWrite
)

var fwdStates = []string{"no-copy", "plain", "tx-read", "tx-write"}

const (
	fwdLoad proto.Event = iota
	fwdStore
)

var fwdEvents = []string{"FwdGetS", "FwdGetM"}

type l1FwdCtx struct {
	l1   *L1
	m    *Msg
	e    *cache.Entry
	inL1 bool
}

// Invalidation classification: external GetM-driven Inv vs LLC recall.
const (
	invNone proto.State = iota
	invPlain
	invTx
)

var invStates = []string{"no-copy", "plain", "tx"}

const (
	invExternal proto.Event = iota
	invRecall
)

var invEvents = []string{"Inv", "Recall"}

type l1InvCtx struct {
	l1 *L1
	m  *Msg
	e  *cache.Entry
}

// The directory bank's blocking transient (paper Fig. 3): idle, busy
// servicing a request, or busy recalling L1 copies for an inclusive-LLC
// eviction.
const (
	bkIdle proto.State = iota
	bkBusy
	bkEvict
)

var bankStates = []string{"idle", "busy", "evicting"}

type bankMsgCtx struct {
	b      *Bank
	m      *Msg
	queued bool
	// d memoizes the dispatch-time directory lookup (nil when the line is
	// untracked); actions reuse it instead of probing the table again.
	d *dirLine
}

// line returns the message's directory entry, materializing one if the
// dispatch-time lookup came up empty.
func (c bankMsgCtx) line() *dirLine {
	if c.d != nil {
		return c.d
	}
	return c.b.line(c.m.Line)
}

// Stable-state service events.
const (
	svcLoad proto.Event = iota
	svcStore
)

var (
	svcEvents = []string{"GetS", "GetM"}
	svcStates = []string{"I", "S", "EM"}
)

type bankSvcCtx struct {
	b *Bank
	d *dirLine
	m *Msg
}

// Cluster-collector states (two-level directory, cluster.go): a bank with
// no open round for a line is idle; from ClInv until every fanned-out
// invalidation answers it is collecting.
const (
	clIdle proto.State = iota
	clCollecting
)

var clusterStates = []string{"idle", "collecting"}

type clusterCtx struct {
	b *Bank
	m *Msg
}

// Middle-cache promotion events.
const (
	midLoad proto.Event = iota
	midStore
)

var midEvents = []string{"load", "store"}

// midStates is the mid.promote state space: the cache.State names plus a
// synthetic "stale" state for a promote whose middle-cache slot died — or
// was reused for a different line — during the MidHit delay.
var midStates = append(append([]string{}, cacheStates...), "stale")

// midStale is the synthetic stale-promote state. It must sit directly after
// the cache.State codes (TestMidStaleState pins the alignment).
const midStale proto.State = 7

type midCtx struct {
	l1    *L1
	line  mem.Line // the line the promote was scheduled for
	me    *cache.Entry
	write bool
	gdone func()
}

// --- compiled tables -------------------------------------------------------

var (
	l1RecvTable      *proto.Table[l1MsgCtx]
	l1FillTable      *proto.Table[l1FillCtx]
	l1FwdTable       *proto.Table[l1FwdCtx]
	l1InvTable       *proto.Table[l1InvCtx]
	bankRecvTable    *proto.Table[bankMsgCtx]
	bankSvcTable     *proto.Table[bankSvcCtx]
	bankClusterTable *proto.Table[clusterCtx]
	midPromoteTable  *proto.Table[midCtx]
)

func init() {
	buildL1RecvTable()
	buildL1FillTable()
	buildL1FwdTable()
	buildL1InvTable()
	buildBankRecvTable()
	buildBankSvcTable()
	buildBankClusterTable()
	buildMidPromoteTable()
	registerProtocolTables()
}

// buildL1RecvTable compiles the L1's top-level message table. Message
// lifecycle is visible in the action column: every row ends in free-msg
// unless ownership moves (queue-external) or the handler frees mid-sequence
// (resolve-apply frees before running the continuation, which may re-enter
// the allocator).
func buildL1RecvTable() {
	free := act("free-msg", func(c l1MsgCtx) { c.l1.sys.free(c.m) })
	fill := act("fill", func(c l1MsgCtx) { c.l1.fill(c.m) })
	forward := act("forward", func(c l1MsgCtx) { c.l1.forwarded(c.m) })
	queueExt := act("queue-external", func(c l1MsgCtx) { c.l1.queueExternal(c.m) })
	resolveApply := act("resolve-apply", func(c l1MsgCtx) { c.l1.applyDecision(c.m) })

	l1RecvTable = proto.New("l1.receive", l1RecvStates, msgEvents,
		[]proto.Transition[l1MsgCtx]{
			{From: proto.Any, On: onMsg(MsgDataS), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{fill, free}},
			{From: proto.Any, On: onMsg(MsgDataE), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{fill, free}},
			{From: proto.Any, On: onMsg(MsgReject), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{act("apply-reject-policy", func(c l1MsgCtx) { c.l1.rejected(c.m) }), free}},
			{From: l1Ready, On: onMsg(MsgFwdGetS), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{forward, free}},
			{From: l1Ready, On: onMsg(MsgFwdGetM), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{forward, free}},
			{From: l1Ready, On: onMsg(MsgInv), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{act("invalidate", func(c l1MsgCtx) { c.l1.invalidated(c.m) }), free}},
			{From: l1Applying, On: onMsg(MsgFwdGetS), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{queueExt}},
			{From: l1Applying, On: onMsg(MsgFwdGetM), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{queueExt}},
			{From: l1Applying, On: onMsg(MsgInv), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{queueExt}},
			{From: proto.Any, On: onMsg(MsgWakeUp), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{act("wake-parked", func(c l1MsgCtx) { c.l1.wakeParked() }), free}},
			{From: proto.Any, On: onMsg(MsgHLGrant), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{resolveApply}},
			{From: proto.Any, On: onMsg(MsgHLDeny), To: proto.Same,
				Actions: []proto.Action[l1MsgCtx]{resolveApply}},
		},
		forbid(nil, []proto.State{l1Ready, l1Applying}, bankBound,
			"bank-bound message delivered to an L1"))
}

// buildL1FillTable compiles fill settlement: which stable state a transient
// settles into on data. The table's To column is authoritative — fill
// assigns the dispatch result to the entry — so the settlement rules live
// entirely here. The write-intent invariant (I->S carries a read, I->M and
// S->M carry a write) is what makes DataS impossible for the write
// transients: the directory answers GetM exclusively or not at all.
func buildL1FillTable() {
	finish := []proto.Action[l1FillCtx]{
		act("tx-bits", func(c l1FillCtx) { c.l1.fillTxBits(c.ms, c.e) }),
		act("unblock-dir", func(c l1FillCtx) { c.l1.fillUnblock(c.m) }),
		act("complete-miss", func(c l1FillCtx) { c.l1.fillComplete(c.ms) }),
	}
	markDirty := act("mark-dirty", func(c l1FillCtx) { c.e.Dirty = true })

	l1FillTable = proto.New("l1.fill", cacheStates, fillEvents,
		[]proto.Transition[l1FillCtx]{
			{From: cst(cache.ItoS), On: fillDataS, To: cst(cache.Shared), Actions: finish},
			{From: cst(cache.ItoS), On: fillDataE, To: cst(cache.Exclusive), Actions: finish},
			{From: cst(cache.ItoM), On: fillDataE, To: cst(cache.Modified),
				Actions: append([]proto.Action[l1FillCtx]{markDirty}, finish...)},
			{From: cst(cache.StoM), On: fillDataE, To: cst(cache.Modified),
				Actions: append([]proto.Action[l1FillCtx]{markDirty}, finish...)},
		},
		forbid(
			forbid(nil,
				[]proto.State{cst(cache.Invalid), cst(cache.Shared), cst(cache.Exclusive), cst(cache.Modified)},
				[]proto.Event{fillDataS, fillDataE},
				"fill without a transient line"),
			[]proto.State{cst(cache.ItoM), cst(cache.StoM)},
			[]proto.Event{fillDataS},
			"exclusive request answered with shared data"))
}

// buildL1FwdTable compiles conflict detection and resolution for
// FwdGetS/FwdGetM (paper Fig. 4). The state classifies the held copy by its
// transactional bits; a conflict is a forward over a write-set line, or any
// exclusive forward over a transactional line. The in-tx guards keep the
// original corner intact: transactional bits without a live transaction fall
// through to the plain ownership transfer.
func buildL1FwdTable() {
	nackNoCopy := act("nack-no-copy", func(c l1FwdCtx) { c.l1.nack(c.m.Line, c.m.Requester) })
	respond := act("transfer-ownership", func(c l1FwdCtx) { c.l1.respondForward(c.m, c.e, c.inL1) })
	reject := act("reject-forward", func(c l1FwdCtx) { c.l1.fwdReject(c.m) })
	abortVictim := act("abort-victim", func(c l1FwdCtx) { c.l1.abortVictim(c.m, c.e) })
	dropOwned := act("drop-owned", func(c l1FwdCtx) { c.l1.dropAfterConflict(c.e) })
	nackConflict := act("nack-conflict", func(c l1FwdCtx) { c.l1.nack(c.m.Line, c.m.Requester) })

	ownerWins := when("in-tx-and-owner-wins",
		func(c l1FwdCtx) bool { return c.l1.Tx.InTx() && c.l1.ownerWins(c.m) })
	inTx := when("in-tx", func(c l1FwdCtx) bool { return c.l1.Tx.InTx() })

	// conflictRows is the guarded reject / abort / fall-through triple shared
	// by every conflicting (state, event) pair.
	conflictRows := func(from proto.State, on proto.Event) []proto.Transition[l1FwdCtx] {
		return []proto.Transition[l1FwdCtx]{
			{From: from, On: on, Guard: ownerWins, To: proto.Same,
				Actions: []proto.Action[l1FwdCtx]{reject}},
			{From: from, On: on, Guard: inTx, To: proto.Same,
				Actions: []proto.Action[l1FwdCtx]{abortVictim, dropOwned, nackConflict}},
			{From: from, On: on, To: proto.Same,
				Actions: []proto.Action[l1FwdCtx]{respond}},
		}
	}

	rows := []proto.Transition[l1FwdCtx]{
		{From: fwdNone, On: fwdLoad, To: proto.Same, Actions: []proto.Action[l1FwdCtx]{nackNoCopy}},
		{From: fwdNone, On: fwdStore, To: proto.Same, Actions: []proto.Action[l1FwdCtx]{nackNoCopy}},
		{From: fwdPlain, On: fwdLoad, To: proto.Same, Actions: []proto.Action[l1FwdCtx]{respond}},
		{From: fwdPlain, On: fwdStore, To: proto.Same, Actions: []proto.Action[l1FwdCtx]{respond}},
		// A read-set line shares read-read without conflict.
		{From: fwdTxRead, On: fwdLoad, To: proto.Same, Actions: []proto.Action[l1FwdCtx]{respond}},
	}
	rows = append(rows, conflictRows(fwdTxRead, fwdStore)...)
	rows = append(rows, conflictRows(fwdTxWrite, fwdLoad)...)
	rows = append(rows, conflictRows(fwdTxWrite, fwdStore)...)

	l1FwdTable = proto.New("l1.forward", fwdStates, fwdEvents, rows, nil)
}

// buildL1InvTable compiles invalidation handling: either a GetM over sharers
// (external) or an LLC back-invalidation recall (Requester == -1). Unlike
// the forward table, the tx state here already requires a live transaction
// (matching the pre-table predicate), so only the arbitration outcome is
// guarded.
func buildL1InvTable() {
	ack := act("ack-dir", func(c l1InvCtx) { c.l1.invAckDir(c.m) })
	drop := act("drop-line", func(c l1InvCtx) { c.l1.dropForInv(c.e) })

	l1InvTable = proto.New("l1.invalidate", invStates, invEvents,
		[]proto.Transition[l1InvCtx]{
			// Stale sharer (silent drop) or transient without a copy: ack only.
			{From: invNone, On: invExternal, To: proto.Same, Actions: []proto.Action[l1InvCtx]{ack}},
			{From: invNone, On: invRecall, To: proto.Same, Actions: []proto.Action[l1InvCtx]{ack}},
			{From: invPlain, On: invExternal, To: proto.Same, Actions: []proto.Action[l1InvCtx]{drop, ack}},
			{From: invPlain, On: invRecall, To: proto.Same, Actions: []proto.Action[l1InvCtx]{drop, ack}},
			// Recall over transactional data: the overflow policy decides
			// (external=true — switchingMode never fires on a recall). An
			// aborted read-set survivor is deliberately NOT dropped here; the
			// directory entry dies with the eviction and tolerates the stale
			// copy.
			{From: invTx, On: invRecall, To: proto.Same,
				Actions: []proto.Action[l1InvCtx]{
					act("overflow-recall", func(c l1InvCtx) { c.l1.recallOverflow(c.e) }), ack}},
			{From: invTx, On: invExternal,
				Guard: when("owner-wins", func(c l1InvCtx) bool { return c.l1.ownerWins(c.m) }),
				To:    proto.Same,
				Actions: []proto.Action[l1InvCtx]{
					act("reject-inv", func(c l1InvCtx) { c.l1.invReject(c.m) })}},
			{From: invTx, On: invExternal, To: proto.Same,
				Actions: []proto.Action[l1InvCtx]{
					act("abort-victim", func(c l1InvCtx) { c.l1.abortVictim(c.m, c.e) }),
					// The abort dropped write-set lines; a read-set line (it
					// was Shared) survives it and is dropped now.
					act("drop-survivor", func(c l1InvCtx) {
						if c.e.State.Valid() || c.e.State == cache.StoM {
							c.l1.dropForInv(c.e)
						}
					}),
					ack}},
		}, nil)
}

// buildBankRecvTable compiles the directory bank's top-level message table.
// Receive dispatches with queued=false; drainQueue re-dispatches parked
// requests through the same table with queued=true (the single queue-drain
// path), which skips the count-request bump already charged at first
// receipt.
func buildBankRecvTable() {
	free := act("free-msg", func(c bankMsgCtx) { c.b.sys.free(c.m) })
	count := act("count-request", func(c bankMsgCtx) {
		if !c.queued {
			c.b.Requests++
		}
	})
	service := act("service", func(c bankMsgCtx) { c.b.service(c.line(), c.m) })
	enqueue := act("enqueue", func(c bankMsgCtx) {
		d := c.line()
		d.queue = append(d.queue, c.m) // ownership moves to the queue
	})
	put := act("handle-put", func(c bankMsgCtx) { c.b.handlePut(c.line(), c.m) })
	// Pre-transactional writeback: refresh the LLC copy immediately, even
	// while busy — it is response-class traffic and the owner is unchanged.
	txWB := act("refresh-llc", func(c bankMsgCtx) { c.b.fillLLC(c.m.Line, nil) })

	// at wraps a pending-request action with the busy line's tracker (the
	// busy states guarantee the directory entry exists).
	at := func(name string, do func(b *Bank, d *dirLine, m *Msg)) proto.Action[bankMsgCtx] {
		return act(name, func(c bankMsgCtx) { do(c.b, c.d, c.m) })
	}

	bankRecvTable = proto.New("bank.receive", bankStates, msgEvents,
		[]proto.Transition[bankMsgCtx]{
			{From: bkIdle, On: onMsg(MsgGetS), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, service}},
			{From: bkIdle, On: onMsg(MsgGetM), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, service}},
			{From: bkBusy, On: onMsg(MsgGetS), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, enqueue}},
			{From: bkBusy, On: onMsg(MsgGetM), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, enqueue}},
			{From: bkEvict, On: onMsg(MsgGetS), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, enqueue}},
			{From: bkEvict, On: onMsg(MsgGetM), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{count, enqueue}},
			{From: bkIdle, On: onMsg(MsgPutM), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{put, free}},
			{From: bkIdle, On: onMsg(MsgPutE), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{put, free}},
			{From: bkBusy, On: onMsg(MsgPutM), To: proto.Same, Actions: []proto.Action[bankMsgCtx]{enqueue}},
			{From: bkBusy, On: onMsg(MsgPutE), To: proto.Same, Actions: []proto.Action[bankMsgCtx]{enqueue}},
			{From: bkEvict, On: onMsg(MsgPutM), To: proto.Same, Actions: []proto.Action[bankMsgCtx]{enqueue}},
			{From: bkEvict, On: onMsg(MsgPutE), To: proto.Same, Actions: []proto.Action[bankMsgCtx]{enqueue}},
			{From: proto.Any, On: onMsg(MsgTxWB), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{txWB, free}},
			{From: bkBusy, On: onMsg(MsgOwnerData), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("take-owner-data", (*Bank).takeOwnerData), free}},
			{From: bkBusy, On: onMsg(MsgNack), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("serve-after-nack", (*Bank).ownerNacked), free}},
			{From: bkBusy, On: onMsg(MsgRejectFwd), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("withdraw-request", (*Bank).ownerRejected), free}},
			{From: bkBusy, On: onMsg(MsgInvAck), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("collect-inv-ack", (*Bank).collectInvAck), free}},
			{From: bkBusy, On: onMsg(MsgInvReject), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("collect-inv-reject", (*Bank).collectInvReject), free}},
			{From: bkBusy, On: onMsg(MsgClInvDone), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("fold-cluster-round", (*Bank).collectClusterDone), free}},
			{From: bkEvict, On: onMsg(MsgInvAck), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("collect-evict-ack", (*Bank).collectEvictAck), free}},
			{From: bkBusy, On: onMsg(MsgUnblock), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{at("commit-unblock", (*Bank).commitUnblock), free}},
			{From: proto.Any, On: onMsg(MsgHLApply), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{act("arb-apply", func(c bankMsgCtx) { c.b.arbApply(c.m) }), free}},
			{From: proto.Any, On: onMsg(MsgHLRelease), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{act("arb-release", func(c bankMsgCtx) { c.b.arbRelease(c.m) }), free}},
			{From: proto.Any, On: onMsg(MsgSigAdd), To: proto.Same,
				Actions: []proto.Action[bankMsgCtx]{act("sig-bandwidth", func(c bankMsgCtx) { c.b.sigBandwidth() }), free}},
		},
		func() []proto.Impossible {
			im := forbid(nil, []proto.State{bkIdle, bkBusy, bkEvict}, l1Bound,
				"L1-bound message delivered to a bank")
			im = forbid(im, []proto.State{bkIdle},
				[]proto.Event{onMsg(MsgOwnerData), onMsg(MsgNack), onMsg(MsgRejectFwd)},
				"stray owner reply for an idle line")
			im = forbid(im, []proto.State{bkIdle},
				[]proto.Event{onMsg(MsgInvAck), onMsg(MsgInvReject)},
				"stray invalidation reply for an idle line")
			im = forbid(im, []proto.State{bkIdle, bkBusy, bkEvict},
				[]proto.Event{onMsg(MsgClInv)},
				"cluster invalidations are consumed by the collector dispatch, never the home table")
			im = forbid(im, []proto.State{bkIdle}, []proto.Event{onMsg(MsgClInvDone)},
				"stray cluster round result for an idle line")
			im = forbid(im, []proto.State{bkEvict}, []proto.Event{onMsg(MsgClInvDone)},
				"cluster round result during a back-invalidation")
			im = forbid(im, []proto.State{bkIdle}, []proto.Event{onMsg(MsgUnblock)},
				"stray unblock for an idle line")
			im = forbid(im, []proto.State{bkEvict},
				[]proto.Event{onMsg(MsgOwnerData), onMsg(MsgNack), onMsg(MsgRejectFwd)},
				"owner reply during a back-invalidation")
			im = forbid(im, []proto.State{bkEvict}, []proto.Event{onMsg(MsgInvReject)},
				"an L1 rejected an LLC back-invalidation")
			im = forbid(im, []proto.State{bkEvict}, []proto.Event{onMsg(MsgUnblock)},
				"unblock during a back-invalidation")
			return im
		}())
}

// buildBankSvcTable compiles the stable-state service decisions once the LLC
// holds the line (the signature check and busy transition already happened
// in service). The directory's stable state only changes at unblock, so
// every row keeps Same.
func buildBankSvcTable() {
	dataE := act("grant-exclusive", func(c bankSvcCtx) { c.b.sendData(c.d, MsgDataE) })
	dataS := act("grant-shared", func(c bankSvcCtx) { c.b.sendData(c.d, MsgDataS) })
	invs := act("fanout-invalidations", func(c bankSvcCtx) { c.b.fanoutInv(c.d, c.m) })
	fwd := act("forward-to-owner", func(c bankSvcCtx) { c.b.fwdToOwner(c.d, c.m) })

	ownerIsReq := when("owner-is-requester",
		func(c bankSvcCtx) bool { return c.d.owner == c.m.Requester })
	otherSharers := when("other-sharers",
		func(c bankSvcCtx) bool { return c.d.sharers.AnyExcept(c.m.Requester) })

	bankSvcTable = proto.New("bank.service", svcStates, svcEvents,
		[]proto.Transition[bankSvcCtx]{
			{From: proto.State(dirI), On: svcLoad, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{dataE}},
			{From: proto.State(dirI), On: svcStore, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{dataE}},
			{From: proto.State(dirS), On: svcLoad, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{dataS}},
			{From: proto.State(dirS), On: svcStore, Guard: otherSharers, To: proto.Same,
				Actions: []proto.Action[bankSvcCtx]{invs}},
			// The requester is the lone sharer: grant exclusivity directly.
			{From: proto.State(dirS), On: svcStore, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{dataE}},
			// The owner re-requests a line it silently dropped (abort or
			// race); the LLC copy is the pre-transactional value.
			{From: proto.State(dirEM), On: svcLoad, Guard: ownerIsReq, To: proto.Same,
				Actions: []proto.Action[bankSvcCtx]{dataE}},
			{From: proto.State(dirEM), On: svcLoad, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{fwd}},
			{From: proto.State(dirEM), On: svcStore, Guard: ownerIsReq, To: proto.Same,
				Actions: []proto.Action[bankSvcCtx]{dataE}},
			{From: proto.State(dirEM), On: svcStore, To: proto.Same, Actions: []proto.Action[bankSvcCtx]{fwd}},
		}, nil)
}

// buildBankClusterTable compiles the cluster collector of the two-level
// directory (cluster.go): what a collector bank does with a delegated
// invalidation round. Bank.clusterRole routes only ClInv and round-bound
// InvAck/InvReject here; every other message type is a declared violation,
// which keeps the collector's event space honest against routing drift.
func buildBankClusterTable() {
	free := act("free-msg", func(c clusterCtx) { c.b.sys.free(c.m) })

	bankClusterTable = proto.New("bank.clinv", clusterStates, msgEvents,
		[]proto.Transition[clusterCtx]{
			{From: clIdle, On: onMsg(MsgClInv), To: clCollecting,
				Actions: []proto.Action[clusterCtx]{
					act("fan-cluster-invs", func(c clusterCtx) { c.b.startCollect(c.m) }), free}},
			{From: clCollecting, On: onMsg(MsgInvAck), To: proto.Same,
				Actions: []proto.Action[clusterCtx]{
					act("collect-cluster-ack", func(c clusterCtx) { c.b.collectClusterAck(c.m) }), free}},
			{From: clCollecting, On: onMsg(MsgInvReject), To: proto.Same,
				Actions: []proto.Action[clusterCtx]{
					act("collect-cluster-reject", func(c clusterCtx) { c.b.collectClusterReject(c.m) }), free}},
		},
		func() []proto.Impossible {
			var rest []proto.Event
			for i := range msgEvents {
				if t := MsgType(i); t == MsgClInv || t == MsgInvAck || t == MsgInvReject {
					continue
				}
				rest = append(rest, proto.Event(i))
			}
			im := forbid(nil, []proto.State{clIdle, clCollecting}, rest,
				"only delegated invalidation traffic enters the collector table")
			im = forbid(im, []proto.State{clCollecting}, []proto.Event{onMsg(MsgClInv)},
				"the home never overlaps cluster rounds for one line")
			im = forbid(im, []proto.State{clIdle},
				[]proto.Event{onMsg(MsgInvAck), onMsg(MsgInvReject)},
				"invalidation reply without an open collector round")
			return im
		}())
}

// buildMidPromoteTable compiles middle-cache promotion (three-level
// organization only): what a mid hit does on its way into the L1. A store
// over a Shared mid line runs the upgrade path (the line logically moves to
// the L1 as S->M); everything else moves in its current state and completes
// as a hit. The stale rows cover the promote-delay race: the promote fires
// MidHit cycles after the middle-cache hit, and in that window the slot can
// die (abort) or be reused for another line — the classifier maps both to
// "stale", and the access is re-resolved from scratch (a racing promote that
// already installed the line completes as a hit, an in-flight request parks
// on its MSHR, and a truly gone line re-issues as an ordinary miss).
func buildMidPromoteTable() {
	move := act("move-to-l1", func(c midCtx) { c.l1.moveToL1(c.me, c.write, c.gdone) })
	reissue := act("reissue-after-stale", func(c midCtx) { c.l1.Access(c.line, c.write, c.gdone) })

	midPromoteTable = proto.New("mid.promote", midStates, midEvents,
		[]proto.Transition[midCtx]{
			{From: cst(cache.Shared), On: midStore, To: cst(cache.StoM),
				Actions: []proto.Action[midCtx]{
					act("upgrade-through-mid", func(c midCtx) { c.l1.upgradeThroughMid(c.me, c.gdone) })}},
			{From: cst(cache.Shared), On: midLoad, To: proto.Same, Actions: []proto.Action[midCtx]{move}},
			{From: cst(cache.Exclusive), On: midLoad, To: proto.Same, Actions: []proto.Action[midCtx]{move}},
			{From: cst(cache.Exclusive), On: midStore, To: proto.Same, Actions: []proto.Action[midCtx]{move}},
			{From: cst(cache.Modified), On: midLoad, To: proto.Same, Actions: []proto.Action[midCtx]{move}},
			{From: cst(cache.Modified), On: midStore, To: proto.Same, Actions: []proto.Action[midCtx]{move}},
			{From: midStale, On: midLoad, To: proto.Same, Actions: []proto.Action[midCtx]{reissue}},
			{From: midStale, On: midStore, To: proto.Same, Actions: []proto.Action[midCtx]{reissue}},
		},
		forbid(forbid(nil,
			[]proto.State{cst(cache.ItoS), cst(cache.ItoM), cst(cache.StoM)},
			[]proto.Event{midLoad, midStore},
			"the middle cache never holds transient lines"),
			[]proto.State{cst(cache.Invalid)},
			[]proto.Event{midLoad, midStore},
			"a dead or reused slot dispatches as stale, never as I"))
}

// --- registry, counters, and the transition heat profile -------------------

// Table indices into System.fired. One counter slice per table per System,
// so concurrent harness runs never share mutable state.
const (
	tblL1Recv = iota
	tblL1Fill
	tblL1Fwd
	tblL1Inv
	tblBankRecv
	tblBankSvc
	tblBankCluster
	tblMidPromote
	tblCount
)

// protocolTable is the type-erased registry view of one compiled table.
type protocolTable struct {
	length   int
	validate func() []error
	doc      func() proto.Doc
}

func registerTable[C any](t *proto.Table[C]) protocolTable {
	return protocolTable{length: t.Len(), validate: t.Validate, doc: t.Doc}
}

var protocolTables [tblCount]protocolTable

func registerProtocolTables() {
	protocolTables = [tblCount]protocolTable{
		tblL1Recv:      registerTable(l1RecvTable),
		tblL1Fill:      registerTable(l1FillTable),
		tblL1Fwd:       registerTable(l1FwdTable),
		tblL1Inv:       registerTable(l1InvTable),
		tblBankRecv:    registerTable(bankRecvTable),
		tblBankSvc:     registerTable(bankSvcTable),
		tblBankCluster: registerTable(bankClusterTable),
		tblMidPromote:  registerTable(midPromoteTable),
	}
}

// ProtocolDocs returns the documentation view of every protocol table in
// registry order (cmd/protodoc renders them into DESIGN.md §8).
func ProtocolDocs() []proto.Doc {
	docs := make([]proto.Doc, 0, tblCount)
	for _, t := range protocolTables {
		docs = append(docs, t.doc())
	}
	return docs
}

// ValidateProtocolTables runs the exhaustiveness validator over every table:
// every (state, event) pair handled or declared impossible, no transition
// shadowed into unreachability (see TestProtocolTablesComplete).
func ValidateProtocolTables() []error {
	var errs []error
	for _, t := range protocolTables {
		errs = append(errs, t.validate()...)
	}
	return errs
}

// newFiredCounters allocates one zeroed fired-counter slice per table.
func newFiredCounters() [tblCount][]uint64 {
	var fired [tblCount][]uint64
	for i, t := range protocolTables {
		fired[i] = make([]uint64, t.length)
	}
	return fired
}

// TransitionProfile reports how often each protocol transition fired in this
// System, in registry + declaration order (the transition heat profile of
// lockillersim -transitions). Zero-count transitions are included; renderers
// decide what to elide.
func (s *System) TransitionProfile() []stats.TransitionCount {
	var out []stats.TransitionCount
	for i, t := range protocolTables {
		d := t.doc()
		for j, tr := range d.Transitions {
			label := ""
			if len(tr.Actions) > 0 {
				label = tr.Actions[0]
			}
			out = append(out, stats.TransitionCount{
				Table: d.Name, From: tr.From, On: tr.On, Guard: tr.Guard,
				To: tr.To, Label: label, Count: s.fired[i][j],
			})
		}
	}
	return out
}
