package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
)

func htmlockCfg(switching bool) htm.Config {
	c := htm.Config{
		Recovery:      true,
		RejectPolicy:  htm.WaitWakeup,
		Priority:      priority.InstsBased{},
		HTMLock:       true,
		SwitchingMode: switching,
	}
	return c.Defaults()
}

// enterTL drives core through the TL entry handshake.
func enterTL(t *testing.T, sys *System, core int) {
	t.Helper()
	granted := false
	sys.L1s[core].HLBegin(func() {
		sys.L1s[core].Tx.BeginAttempt(htm.TL, sys.Engine.Now())
		granted = true
	})
	for !granted {
		if !sys.Engine.Step() {
			t.Fatal("TL grant never arrived")
		}
	}
}

func TestLockTxRejectsConflicts(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(false))
	enterTL(t, sys, 0)
	access(t, e, sys, 0, 100, true) // lock-tx writes line 100
	drain(e)
	// An HTM transaction conflicting with the lock tx is rejected, parked,
	// and woken at hlend — it does NOT abort the lock tx.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[1].Tx.InstsRetired = 1 << 40 // even enormous priority loses to TL
	done := tryAccess(e, sys, 1, 100, false)
	for i := 0; i < 20000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("conflicting request should wait out the lock transaction")
	}
	if len(cl[0].dooms) != 0 {
		t.Fatal("lock transaction must never abort")
	}
	// hlend releases: wake + completion.
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("parked request not released at hlend")
	}
}

func TestLockTxAbortsNothingWithoutConflict(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(false))
	// HTM tx runs on a disjoint line while the lock tx runs: full overlap.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, 200, true)
	drain(e)
	enterTL(t, sys, 0)
	access(t, e, sys, 0, 100, true)
	drain(e)
	if len(cl[1].dooms) != 0 {
		t.Fatal("disjoint HTM tx must coexist with the lock tx")
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if len(cl[1].dooms) != 0 {
		t.Fatal("hlend must not abort HTM transactions")
	}
	sys.L1s[1].CommitTx()
	sys.L1s[1].Tx.Reset()
}

func TestLockTxDefeatsHTMOwner(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(false))
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[1].Tx.InstsRetired = 1 << 40
	access(t, e, sys, 1, 100, true)
	drain(e)
	enterTL(t, sys, 0)
	access(t, e, sys, 0, 100, false) // lock tx reads the HTM-written line
	drain(e)
	if len(cl[1].dooms) != 1 || cl[1].dooms[0] != htm.CauseLock {
		t.Fatalf("HTM owner dooms = %v, want [lock]", cl[1].dooms)
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
}

func TestLockTxOverflowSpillsToSignature(t *testing.T) {
	e, sys, _ := tsys(t, htmlockCfg(false))
	enterTL(t, sys, 0)
	sets := sys.L1s[0].Array().Sets()
	// Fill one set with 5 transactional writes: the 5th spills.
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), true)
		drain(e)
	}
	if sys.L1s[0].OverflowEvictions == 0 {
		t.Fatal("no signature spill recorded")
	}
	if sys.Arbiter.OfWr.Empty() {
		t.Fatal("write signature empty after spill")
	}
	// A request to the spilled line is rejected at the LLC.
	spilled := mem.Line(64) // LRU of the set
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 1, spilled, false)
	for i := 0; i < 20000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("request to signature-protected line should be rejected")
	}
	if sys.Banks[sys.HomeBank(spilled)].Rejections == 0 {
		t.Fatal("LLC rejection not counted")
	}
	// hlend clears signatures and wakes the rejected core.
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("signature-rejected request not woken at hlend")
	}
	if !sys.Arbiter.OfWr.Empty() || !sys.Arbiter.OfRd.Empty() {
		t.Fatal("signatures survive hlend")
	}
}

func TestSwitchingModeOverflowSwitchesToSTL(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(true))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), true)
		drain(e)
	}
	if len(cl[0].dooms) != 0 {
		t.Fatalf("transaction aborted instead of switching: %v", cl[0].dooms)
	}
	if got := sys.L1s[0].Tx.Mode; got != htm.STL {
		t.Fatalf("mode = %v, want STL", got)
	}
	if sys.Arbiter.Holder() != 0 || sys.Arbiter.HolderMode() != htm.STL {
		t.Fatal("arbiter does not reflect the switch")
	}
	if sys.L1s[0].SwitchGrants != 1 {
		t.Fatalf("SwitchGrants = %d", sys.L1s[0].SwitchGrants)
	}
	// The 5th access completed via the spill path.
	if !st(sys, 0, mem.Line(64+4*sets)).Valid() {
		t.Fatal("overflowing access did not complete after the switch")
	}
	// End: hlend, no lock involved.
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if sys.Arbiter.Holder() != -1 {
		t.Fatal("arbiter not released")
	}
}

func TestSwitchingModeDeniedWhileSTLActive(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(true))
	// Core 0 switches first.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), true)
		drain(e)
	}
	if sys.L1s[0].Tx.Mode != htm.STL {
		t.Fatal("first switch failed")
	}
	// Core 1 overflows while core 0 holds STL: denied, aborts with "of".
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	for i := 0; i < 5; i++ {
		l := mem.Line(7 + i*sets) // different set-mapping stream
		sys.L1s[1].Access(l, true, func() {})
		drain(e)
	}
	if len(cl[1].dooms) != 1 || cl[1].dooms[0] != htm.CauseOverflow {
		t.Fatalf("dooms = %v, want [of]", cl[1].dooms)
	}
	if sys.Arbiter.Denies == 0 {
		t.Fatal("denial not counted")
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
}

func TestSwitchingModeOnlyTriedOnce(t *testing.T) {
	e, sys, _ := tsys(t, htmlockCfg(true))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	if sys.L1s[0].Tx.TriedSwitch {
		t.Fatal("fresh attempt must not have tried switching")
	}
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 6; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), true)
		drain(e)
	}
	if sys.L1s[0].SwitchTries != 1 {
		t.Fatalf("SwitchTries = %d, want 1 (second overflow uses the spill path)", sys.L1s[0].SwitchTries)
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
}

func TestTLWaitsOutActiveSTL(t *testing.T) {
	e, sys, _ := tsys(t, htmlockCfg(true))
	// Core 0 becomes STL via overflow.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), true)
		drain(e)
	}
	// Core 1 applies for TL: must wait.
	granted := false
	sys.L1s[1].HLBegin(func() { granted = true })
	drain(e)
	if granted {
		t.Fatal("TL granted while STL active")
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !granted {
		t.Fatal("TL not granted after STL release")
	}
	sys.L1s[1].Tx.BeginAttempt(htm.TL, e.Now())
	sys.L1s[1].HLEnd()
	sys.L1s[1].Tx.Reset()
	drain(e)
}

func TestHTMReadSharesWithLockTxReadSet(t *testing.T) {
	e, sys, cl := tsys(t, htmlockCfg(false))
	enterTL(t, sys, 0)
	access(t, e, sys, 0, 100, false) // lock tx READS line 100
	drain(e)
	// Another core reading the same line is not a conflict.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, 100, false)
	drain(e)
	if len(cl[0].dooms)+len(cl[1].dooms) != 0 {
		t.Fatal("read-read with lock tx should not conflict")
	}
	if st(sys, 0, 100) != cache.Shared || st(sys, 1, 100) != cache.Shared {
		t.Fatal("expected shared copies")
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
}

func TestReadSignatureAllowsSharedRead(t *testing.T) {
	e, sys, _ := tsys(t, htmlockCfg(false))
	enterTL(t, sys, 0)
	sets := sys.L1s[0].Array().Sets()
	// Lock tx reads 5 lines in one set: one spills to OfRdSig.
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(64+i*sets), false)
		drain(e)
	}
	spilled := mem.Line(64)
	if !sys.Arbiter.OfRd.MayContain(spilled) {
		t.Fatal("read signature missing the spilled line")
	}
	// Another core reads it non-transactionally. There is no other copy,
	// so the LLC would grant E — which must be rejected (paper §III-B).
	done := tryAccess(e, sys, 1, spilled, false)
	for i := 0; i < 20000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("exclusive grant of an OfRdSig line must be rejected")
	}
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("not woken after hlend")
	}
}
