package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// dirTable maps lines to directory entries for one bank. It replaces the
// previous map[mem.Line]*dirLine: directory lookups run once per message on
// the hottest simulator path, and the map's hash-and-bucket walk plus the
// per-line &dirLine{} allocations showed up prominently in whole-run
// profiles. The table is a flat open-addressed slice (same design as
// mshrTable: Fibonacci hashing, linear probing, backward-shift deletion) and
// recycled dirLines come from a slab-backed free list, so steady-state
// directory churn — lines tracked, back-invalidated, re-tracked — allocates
// nothing.
type dirTable struct {
	slots []*dirLine
	mask  uint64
	shift uint // 64 - log2(len(slots)), for the multiplicative hash
	live  int

	// free holds recycled dirLines; slabs are allocated 64 entries at a
	// time so tracking N lines costs N/64 allocations, not N.
	free []*dirLine
}

// dirTableCap is the initial slot count. The working set a bank tracks is
// its share of the workload footprint; 256 slots cover 128 live lines
// before the first (deterministic) doubling.
const dirTableCap = 256

const dirSlabSize = 64

func newDirTable(capacity int) dirTable {
	if capacity&(capacity-1) != 0 || capacity == 0 {
		panic(fmt.Sprintf("coherence: directory table capacity %d not a power of two", capacity))
	}
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	return dirTable{slots: make([]*dirLine, capacity), mask: uint64(capacity - 1), shift: shift}
}

// home returns the preferred slot of a line.
func (t *dirTable) home(l mem.Line) uint64 {
	return (uint64(l) * 0x9E3779B97F4A7C15) >> t.shift
}

// lookup returns the entry for the line, or nil.
func (t *dirTable) lookup(l mem.Line) *dirLine {
	if t.live == 0 {
		return nil
	}
	for i := t.home(l); ; i = (i + 1) & t.mask {
		e := t.slots[i]
		if e == nil {
			return nil
		}
		if e.line == l {
			return e
		}
	}
}

// getOrCreate returns the entry for the line, materializing an idle one from
// the free list if the directory is not yet tracking it.
func (t *dirTable) getOrCreate(l mem.Line) *dirLine {
	if d := t.lookup(l); d != nil {
		return d
	}
	d := t.alloc()
	d.line = l
	t.insert(d)
	return d
}

// alloc hands out a reset dirLine, refilling the free list a slab at a time.
func (t *dirTable) alloc() *dirLine {
	if len(t.free) == 0 {
		slab := make([]dirLine, dirSlabSize)
		for i := range slab {
			t.free = append(t.free, &slab[i])
		}
	}
	d := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	queue := d.queue[:0] // keep the queue's backing array across reuse
	d.sharers.Clear()    // ditto the sharer set's extension words (>64 cores)
	sharers := d.sharers
	*d = dirLine{owner: -1, queue: queue, sharers: sharers}
	return d
}

// insert adds a fresh entry; the line must not already be present.
func (t *dirTable) insert(d *dirLine) {
	if 2*(t.live+1) > len(t.slots) {
		t.grow()
	}
	for i := t.home(d.line); ; i = (i + 1) & t.mask {
		e := t.slots[i]
		if e == nil {
			t.slots[i] = d
			t.live++
			return
		}
		if e.line == d.line {
			panic(fmt.Sprintf("coherence: duplicate directory insert for line %d", d.line))
		}
	}
}

// remove untracks the line, recycling its dirLine. Backward-shift deletion
// keeps probe chains contiguous (see mshrTable.remove for the invariant).
func (t *dirTable) remove(l mem.Line) {
	if t.live == 0 {
		return
	}
	i := t.home(l)
	for {
		e := t.slots[i]
		if e == nil {
			return
		}
		if e.line == l {
			break
		}
		i = (i + 1) & t.mask
	}
	t.free = append(t.free, t.slots[i])
	t.live--
	j := i
	for {
		t.slots[i] = nil
		for {
			j = (j + 1) & t.mask
			e := t.slots[j]
			if e == nil {
				return
			}
			h := t.home(e.line)
			inRange := false
			if i <= j {
				inRange = i < h && h <= j
			} else {
				inRange = i < h || h <= j
			}
			if !inRange {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// reset untracks every line in place, recycling live dirLines to the free
// list (machine reset between runs). The slot capacity — and with it mask/
// shift — survives any growth the previous run caused; lookups are order-
// insensitive and growth is population-driven, so a reset table behaves
// exactly like a fresh one for the next run's insertion history.
func (t *dirTable) reset() {
	if t.live > 0 {
		for i, d := range t.slots {
			if d != nil {
				t.free = append(t.free, d)
				t.slots[i] = nil
			}
		}
	}
	t.live = 0
}

// grow doubles the table, reinserting every live entry. Growth is
// deterministic: the new layout depends only on the set of tracked lines.
func (t *dirTable) grow() {
	old := t.slots
	free := t.free
	*t = newDirTable(2 * len(old))
	t.free = free
	for _, d := range old {
		if d != nil {
			t.insert(d)
		}
	}
}
