package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence/proto"
	"repro/internal/mem"
)

// This file implements the private middle cache of the MESI-Three-Level-HTM
// protocol — the ARM-team gem5 baseline the paper started from and replaced
// (§IV-A): "this protocol ... adds a private intermediate-level cache to
// simplify transactional data maintenance in the L1 cache. It introduces
// some odd designs, such as invalidating data from the L1 cache by flushing
// it to the middle cache even when the other cores try to load data."
//
// With Params.MidSize > 0 each tile gains a private, L1-exclusive middle
// cache:
//
//   - L1 misses probe the middle cache before the directory (MidHit cost);
//   - L1 evictions demote into the middle cache instead of writing back;
//   - transactional L1 overflows demote into the middle cache (its whole
//     capacity bounds the read/write sets — the "simplified transactional
//     data maintenance");
//   - external forwards that hit the L1 first flush the line to the middle
//     cache — even plain loads — paying MidHit before responding and losing
//     the L1 copy (the odd design the paper removed).
//
// The directory is oblivious: the L1+middle pair is one coherence node.

// midEnabled reports whether this L1 has a middle cache.
func (l1 *L1) midEnabled() bool { return l1.mid != nil }

// midLookup returns the middle-cache entry for the line, or nil.
func (l1 *L1) midLookup(line mem.Line) *cache.Entry {
	if l1.mid == nil {
		return nil
	}
	return l1.mid.Lookup(line)
}

// promoteFromMid moves a middle-cache hit into the L1 (the reverse fill),
// then completes the access, dispatching through the mid.promote table.
// Transactional metadata survives the move. The promote fires MidHit cycles
// after the hit was observed, so the slot is revalidated here: a dead entry
// (abort) or one reused for a different line dispatches as the synthetic
// stale state and the access is re-resolved from scratch.
func (l1 *L1) promoteFromMid(line mem.Line, me *cache.Entry, write bool, gdone func()) {
	evt := midLoad
	if write {
		evt = midStore
	}
	s := midStale
	if me.State.Valid() && me.Line == line {
		s = proto.State(me.State)
	}
	midPromoteTable.Dispatch(s, evt,
		midCtx{l1: l1, line: line, me: me, write: write, gdone: gdone}, l1.sys.fired[tblMidPromote])
}

// upgradeThroughMid handles a store over a Shared middle-cache line: leave
// the data behind and run the ordinary upgrade path; the line logically
// moves to the L1 as StoM.
func (l1 *L1) upgradeThroughMid(me *cache.Entry, gdone func()) {
	line := me.Line
	txR, txW := me.TxRead, me.TxWrite
	me.State = cache.Invalid
	me.TxRead, me.TxWrite = false, false
	v := l1.l1VictimOrDemote(line, true, gdone, l1.epoch)
	if v == nil {
		return // overflow path took over (or aborted)
	}
	l1.arr.Install(v, line, cache.StoM)
	e := l1.arr.Peek(line)
	e.TxRead = txR
	e.TxWrite = txW
	l1.issue(line, true, gdone, l1.epoch)
}

// moveToL1 transfers a middle-cache line into the L1 in its current state
// and completes the access as a hit. The caller (the mid.promote table) has
// already revalidated the entry, so the line is live here.
func (l1 *L1) moveToL1(me *cache.Entry, write bool, gdone func()) {
	line, st, dirty := me.Line, me.State, me.Dirty
	txR, txW := me.TxRead, me.TxWrite
	me.State = cache.Invalid
	me.Dirty = false
	me.TxRead, me.TxWrite = false, false
	v := l1.l1VictimOrDemote(line, write, gdone, l1.epoch)
	if v == nil {
		return
	}
	l1.arr.Install(v, line, st)
	e := l1.arr.Peek(line)
	e.Dirty = dirty
	e.TxRead = txR
	e.TxWrite = txW
	l1.hit(e, write, gdone)
}

// l1VictimOrDemote finds an L1 way for a new line, demoting the victim to
// the middle cache. Returns nil if the access was diverted to the overflow
// machinery (every L1 way transactional AND the middle-cache set full of
// transactional lines).
// The continuation arrives as an already-guarded closure on these cold
// paths; ep only re-filters it if the overflow machinery defers the issue.
func (l1 *L1) l1VictimOrDemote(line mem.Line, write bool, gdone func(), ep uint64) *cache.Entry {
	avoidTx := func(e *cache.Entry) bool { return e.Tx() }
	v := l1.arr.Victim(line, avoidTx)
	if v == nil {
		// All ways transactional: in the three-level design, demote a
		// transactional line into the middle cache instead of aborting.
		v = l1.arr.AnyVictim(line)
		if v == nil {
			panic(fmt.Sprintf("coherence: L1 %d set wedged for line %d", l1.core, line))
		}
		if !l1.demoteToMid(v) {
			// The middle cache is itself full of transactional data:
			// genuine capacity overflow.
			l1.overflow(line, write, gdone, ep)
			return nil
		}
		return v
	}
	if v.State.Valid() {
		if !l1.demoteToMid(v) {
			// Non-tx victims always demote (mid victim selection evicts
			// non-tx mid lines first); reaching here means the mid set is
			// full of tx lines and the victim is non-tx: evict the victim
			// to the directory instead.
			l1.evictLine(v)
		}
	}
	return v
}

// demoteToMid installs an L1 victim into the middle cache, evicting a
// middle-cache victim to the directory if needed. Returns false when the
// line cannot be placed (middle set full of transactional lines) — for a
// transactional victim that means capacity overflow. Lock transactions
// (TL/STL) never overflow: they spill a transactional middle-cache line
// into the LLC signatures to make room.
func (l1 *L1) demoteToMid(v *cache.Entry) bool {
	avoidTx := func(e *cache.Entry) bool { return e.Tx() }
	mv := l1.mid.Victim(v.Line, avoidTx)
	if mv == nil {
		if !l1.Tx.Mode.Lock() {
			return false
		}
		mv = l1.mid.AnyVictim(v.Line)
		if mv == nil {
			panic(fmt.Sprintf("coherence: L1 %d middle set wedged for line %d", l1.core, v.Line))
		}
		l1.spillToSignature(mv)
	}
	if mv.State.Valid() {
		l1.evictLine(mv) // middle-cache eviction goes to the directory
	}
	l1.mid.Install(mv, v.Line, v.State)
	me := l1.mid.Peek(v.Line)
	me.Dirty = v.Dirty
	me.TxRead = v.TxRead
	me.TxWrite = v.TxWrite
	v.State = cache.Invalid
	v.Dirty = false
	v.TxRead = false
	v.TxWrite = false
	return true
}

// midFlushForForward implements the odd design: an external forward that
// hits the L1 flushes the line to the middle cache first (even for loads),
// invalidating the L1 copy. Returns the middle-cache entry to respond
// from, or nil if the flush could not place the line (respond from the L1
// entry directly as a graceful fallback).
func (l1 *L1) midFlushForForward(e *cache.Entry) *cache.Entry {
	if !l1.demoteToMid(e) {
		return nil
	}
	return l1.mid.Peek(e.Line)
}

// midClearTx clears transactional metadata in the middle cache
// (invalidating speculative writes when aborting).
func (l1 *L1) midClearTx(invalidateWrites bool) {
	if l1.mid == nil {
		return
	}
	l1.mid.ClearTx(invalidateWrites)
}
