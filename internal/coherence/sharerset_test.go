package coherence

import (
	"math/rand"
	"sort"
	"testing"
)

// sparseSharers is a deliberately naive sparse model (sorted core list) the
// dense word-based SharerSet is differentially tested against: both must
// agree on every operation over randomized add/drop/iterate sequences, and
// SharerSet's iteration must be strictly ascending like the sorted model's.
type sparseSharers map[int]bool

func (s sparseSharers) ordered() []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func collect(s *SharerSet) []int {
	var out []int
	for c, ok := s.Next(-1); ok; c, ok = s.Next(c) {
		out = append(out, c)
	}
	return out
}

func TestSharerSetDifferential(t *testing.T) {
	for _, cores := range []int{32, 64, 65, 128, 1024} {
		rng := rand.New(rand.NewSource(int64(cores))) // deterministic
		var dense SharerSet
		sparse := sparseSharers{}
		for op := 0; op < 4000; op++ {
			c := rng.Intn(cores)
			switch rng.Intn(4) {
			case 0, 1: // bias toward adds so the set fills up
				dense.Add(c)
				sparse[c] = true
			case 2:
				dense.Drop(c)
				delete(sparse, c)
			case 3:
				dense.Clear()
				for k := range sparse {
					delete(sparse, k)
				}
			}
			if dense.Contains(c) != sparse[c] {
				t.Fatalf("cores=%d op=%d: Contains(%d) = %v, sparse says %v",
					cores, op, c, dense.Contains(c), sparse[c])
			}
			if dense.Count() != len(sparse) {
				t.Fatalf("cores=%d op=%d: Count = %d, sparse says %d",
					cores, op, dense.Count(), len(sparse))
			}
			if dense.Empty() != (len(sparse) == 0) {
				t.Fatalf("cores=%d op=%d: Empty = %v, sparse says %v",
					cores, op, dense.Empty(), len(sparse) == 0)
			}
			// Full iteration agreement + strictly ascending order.
			got := collect(&dense)
			want := sparse.ordered()
			if len(got) != len(want) {
				t.Fatalf("cores=%d op=%d: iterate %v, want %v", cores, op, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cores=%d op=%d: iterate %v, want %v", cores, op, got, want)
				}
				if i > 0 && got[i] <= got[i-1] {
					t.Fatalf("cores=%d op=%d: iteration not strictly ascending: %v", cores, op, got)
				}
			}
			// AnyExcept against the model.
			probe := rng.Intn(cores)
			wantAE := false
			for k := range sparse {
				if k != probe {
					wantAE = true
					break
				}
			}
			if dense.AnyExcept(probe) != wantAE {
				t.Fatalf("cores=%d op=%d: AnyExcept(%d) = %v, sparse says %v",
					cores, op, probe, dense.AnyExcept(probe), wantAE)
			}
		}
	}
}

func TestSharerSetSingleWordStaysInline(t *testing.T) {
	// Cores below 64 must never allocate extension words: the paper's
	// 32-core machine keeps the exact old raw-uint64 representation.
	var s SharerSet
	for c := 0; c < 64; c++ {
		s.Add(c)
	}
	if s.ext != nil {
		t.Fatal("cores < 64 must stay in the inline word")
	}
	if s.Count() != 64 || !s.AnyExcept(13) {
		t.Fatal("inline word bookkeeping wrong")
	}
	s.Add(64)
	if len(s.ext) != 1 {
		t.Fatalf("core 64 should spill to one extension word, got %d", len(s.ext))
	}
}

func TestSharerSetClearKeepsBacking(t *testing.T) {
	var s SharerSet
	s.Add(900)
	ext := &s.ext[0]
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear must empty the set")
	}
	s.Add(900)
	if &s.ext[0] != ext {
		t.Fatal("Clear must retain the extension backing")
	}
}
