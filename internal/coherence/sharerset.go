package coherence

import "math/bits"

// SharerSet tracks which cores hold S copies of a line. Up to 64 cores it
// is exactly the old raw uint64 bitset — one inline word, zero allocations,
// bit-for-bit the paper's 32-core behavior — and above 64 it spills to
// extension words. The extension backing is retained when a recycled
// dirLine is reused (see dirTable.alloc), so steady-state directory churn
// on a 1024-core machine still allocates nothing once the slab warms up.
//
// Iteration (Next) is strictly ascending by core id on every
// representation; fanout ordering — and therefore the bit-for-bit replay
// guarantee — depends on it, and TestSharerSetDifferential pins it.
type SharerSet struct {
	w0  uint64
	ext []uint64 // words 1..: cores 64..; nil on ≤64-core machines
}

// Add records a sharer.
func (s *SharerSet) Add(c int) {
	wi := c >> 6
	if wi == 0 {
		s.w0 |= 1 << uint(c&63)
		return
	}
	for len(s.ext) < wi {
		s.ext = append(s.ext, 0)
	}
	s.ext[wi-1] |= 1 << uint(c&63)
}

// Drop removes a sharer (no-op if absent).
func (s *SharerSet) Drop(c int) {
	wi := c >> 6
	if wi == 0 {
		s.w0 &^= 1 << uint(c&63)
		return
	}
	if wi-1 < len(s.ext) {
		s.ext[wi-1] &^= 1 << uint(c&63)
	}
}

// Contains reports whether the core is a sharer.
func (s *SharerSet) Contains(c int) bool {
	wi := c >> 6
	if wi == 0 {
		return s.w0&(1<<uint(c&63)) != 0
	}
	return wi-1 < len(s.ext) && s.ext[wi-1]&(1<<uint(c&63)) != 0
}

// Count returns the number of sharers.
func (s *SharerSet) Count() int {
	n := bits.OnesCount64(s.w0)
	for _, w := range s.ext {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no core shares the line.
func (s *SharerSet) Empty() bool {
	if s.w0 != 0 {
		return false
	}
	for _, w := range s.ext {
		if w != 0 {
			return false
		}
	}
	return true
}

// AnyExcept reports whether any core other than c is a sharer — the
// "GetM over other sharers" guard of the bank.service table.
func (s *SharerSet) AnyExcept(c int) bool {
	wi := c >> 6
	if wi == 0 {
		if s.w0&^(1<<uint(c&63)) != 0 {
			return true
		}
	} else if s.w0 != 0 {
		return true
	}
	for i, w := range s.ext {
		if w == 0 {
			continue
		}
		if i+1 == wi && w&^(1<<uint(c&63)) == 0 {
			continue
		}
		return true
	}
	return false
}

// Clear removes every sharer, keeping the extension backing for reuse.
func (s *SharerSet) Clear() {
	s.w0 = 0
	for i := range s.ext {
		s.ext[i] = 0
	}
}

// Next returns the smallest sharer strictly greater than after, or ok=false
// when none remains. Start iteration with after=-1; order is strictly
// ascending. Closure-free on purpose — fanout loops run on the hot path.
func (s *SharerSet) Next(after int) (core int, ok bool) {
	from := after + 1
	if from < 0 {
		from = 0
	}
	nwords := 1 + len(s.ext)
	for wi := from >> 6; wi < nwords; wi++ {
		w := s.w0
		if wi > 0 {
			w = s.ext[wi-1]
		}
		if wi == from>>6 {
			w &^= 1<<uint(from&63) - 1
		}
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w), true
		}
	}
	return -1, false
}
