package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
)

// The conformance suite enumerates the conflict matrix of paper Fig. 4:
// for each (owner access, owner mode, requester access, requester mode,
// relative priority, system) combination, exactly one of three outcomes
// must occur: the request is served (no conflict), the owner aborts
// (requester wins), or the request is rejected (owner wins).

type outcome int

const (
	served outcome = iota // request completes; owner survives
	ownerAborts
	requestRejected // request parks; owner survives
)

func (o outcome) String() string {
	return [...]string{"served", "owner-aborts", "request-rejected"}[o]
}

type confCase struct {
	name string
	cfg  htm.Config
	// Owner setup.
	ownerMode  htm.Mode // HTM or TL
	ownerWrite bool     // owner wrote (vs read) the line
	ownerPrio  uint64   // InstsRetired granted to the owner (HTM only)
	// Request.
	reqTx    bool // requester inside an HTM transaction
	reqWrite bool
	reqPrio  uint64
	want     outcome
}

func runConfCase(t *testing.T, c confCase) {
	t.Helper()
	e, sys, cl := tsys(t, c.cfg)
	const line = mem.Line(4096)

	// Owner setup.
	switch c.ownerMode {
	case htm.HTM:
		sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	case htm.TL:
		enterTL(t, sys, 0)
	default:
		t.Fatalf("unsupported owner mode %v", c.ownerMode)
	}
	access(t, e, sys, 0, line, c.ownerWrite)
	drain(e)
	if c.ownerMode == htm.HTM {
		sys.L1s[0].Tx.InstsRetired = c.ownerPrio
	}

	// Request.
	if c.reqTx {
		sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
		sys.L1s[1].Tx.InstsRetired = c.reqPrio
	}
	done := tryAccess(e, sys, 1, line, c.reqWrite)
	for i := 0; i < 3000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}

	got := served
	switch {
	case len(cl[0].dooms) > 0:
		got = ownerAborts
	case !*done:
		got = requestRejected
	}
	if got != c.want {
		t.Fatalf("%s: outcome = %v, want %v (done=%v dooms=%v)",
			c.name, got, c.want, *done, cl[0].dooms)
	}
	// Cross-checks per outcome.
	switch got {
	case served:
		if !*done {
			t.Fatalf("%s: served but request incomplete", c.name)
		}
	case ownerAborts:
		if !*done {
			t.Fatalf("%s: requester won but request incomplete", c.name)
		}
	case requestRejected:
		if sys.L1s[1].RejectsReceived == 0 {
			t.Fatalf("%s: rejected without a reject message", c.name)
		}
	}
}

func TestConflictMatrix(t *testing.T) {
	base := baseCfg()
	rec := recoveryCfg(htm.WaitWakeup)
	hl := htmlockCfg(false)

	cases := []confCase{
		// --- No conflict: read-read sharing is always served. ---
		{name: "base/RR", cfg: base, ownerMode: htm.HTM, ownerWrite: false,
			reqTx: true, reqWrite: false, want: served},
		{name: "rec/RR", cfg: rec, ownerMode: htm.HTM, ownerWrite: false,
			reqTx: true, reqWrite: false, want: served},
		{name: "hl/TL-RR", cfg: hl, ownerMode: htm.TL, ownerWrite: false,
			reqTx: true, reqWrite: false, want: served},

		// --- Baseline requester-win: every true conflict kills the owner. ---
		{name: "base/WR", cfg: base, ownerMode: htm.HTM, ownerWrite: true,
			reqTx: true, reqWrite: false, want: ownerAborts},
		{name: "base/WW", cfg: base, ownerMode: htm.HTM, ownerWrite: true,
			reqTx: true, reqWrite: true, want: ownerAborts},
		{name: "base/RW", cfg: base, ownerMode: htm.HTM, ownerWrite: false,
			reqTx: true, reqWrite: true, want: ownerAborts},
		{name: "base/nontx-W", cfg: base, ownerMode: htm.HTM, ownerWrite: true,
			reqTx: false, reqWrite: false, want: ownerAborts},

		// --- Recovery: priority decides. ---
		{name: "rec/WR-owner-wins", cfg: rec, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 100, reqTx: true, reqWrite: false, reqPrio: 1, want: requestRejected},
		{name: "rec/WR-req-wins", cfg: rec, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 1, reqTx: true, reqWrite: false, reqPrio: 100, want: ownerAborts},
		{name: "rec/WW-owner-wins", cfg: rec, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 100, reqTx: true, reqWrite: true, reqPrio: 1, want: requestRejected},
		{name: "rec/RW-owner-wins", cfg: rec, ownerMode: htm.HTM, ownerWrite: false,
			ownerPrio: 100, reqTx: true, reqWrite: true, reqPrio: 1, want: requestRejected},
		{name: "rec/RW-req-wins", cfg: rec, ownerMode: htm.HTM, ownerWrite: false,
			ownerPrio: 1, reqTx: true, reqWrite: true, reqPrio: 100, want: ownerAborts},
		// Equal priority: smaller core ID (the owner, core 0) wins.
		{name: "rec/WW-tie", cfg: rec, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 7, reqTx: true, reqWrite: true, reqPrio: 7, want: requestRejected},
		// Non-transactional requests always defeat HTM owners, regardless
		// of priority (strong isolation).
		{name: "rec/nontx-beats-prio", cfg: rec, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 1 << 40, reqTx: false, reqWrite: true, want: ownerAborts},

		// --- HTMLock: TL owners reject everything conflicting. ---
		{name: "hl/TL-W-vs-read", cfg: hl, ownerMode: htm.TL, ownerWrite: true,
			reqTx: true, reqWrite: false, reqPrio: 1 << 40, want: requestRejected},
		{name: "hl/TL-W-vs-nontx", cfg: hl, ownerMode: htm.TL, ownerWrite: true,
			reqTx: false, reqWrite: false, want: requestRejected},
		{name: "hl/TL-R-vs-write", cfg: hl, ownerMode: htm.TL, ownerWrite: false,
			reqTx: true, reqWrite: true, reqPrio: 1 << 40, want: requestRejected},
		// HTM owner loses to anyone under HTMLock's recovery arbitration
		// when it has lower priority.
		{name: "hl/HTM-W-low-prio", cfg: hl, ownerMode: htm.HTM, ownerWrite: true,
			ownerPrio: 0, reqTx: true, reqWrite: true, reqPrio: 50, want: ownerAborts},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { runConfCase(t, c) })
	}
}

// TestConflictMatrixCauses verifies the abort-cause classification of
// Fig. 10 for each kind of winning requester.
func TestConflictMatrixCauses(t *testing.T) {
	check := func(name string, cfg htm.Config, setupReq func(*System, uint64), want htm.AbortCause) {
		t.Run(name, func(t *testing.T) {
			e, sys, cl := tsys(t, cfg)
			sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
			access(t, e, sys, 0, 4096, true)
			drain(e)
			setupReq(sys, e.Now())
			tryAccess(e, sys, 1, 4096, true)
			drain(e)
			if len(cl[0].dooms) != 1 || cl[0].dooms[0] != want {
				t.Fatalf("dooms = %v, want [%v]", cl[0].dooms, want)
			}
		})
	}
	check("htm-requester=mc", baseCfg(), func(sys *System, now uint64) {
		sys.L1s[1].Tx.BeginAttempt(htm.HTM, now)
	}, htm.CauseMC)
	check("plain-requester=non_tran", baseCfg(), func(*System, uint64) {}, htm.CauseNonTx)
	check("mutex-requester=mutex", baseCfg(), func(sys *System, _ uint64) {
		sys.L1s[1].Tx.Mode = htm.Mutex
	}, htm.CauseMutex)
	check("lock-requester=lock", htmlockCfg(false), func(sys *System, now uint64) {
		// Requester is a TL lock transaction.
		granted := false
		sys.L1s[1].HLBegin(func() {
			sys.L1s[1].Tx.BeginAttempt(htm.TL, now)
			granted = true
		})
		for !granted && sys.Engine.Step() {
		}
	}, htm.CauseLock)
}

// TestPriorityMonotonicity is a property test over random priority pairs:
// the owner survives if and only if it wins priority arbitration.
func TestPriorityMonotonicity(t *testing.T) {
	cfg := htm.Config{Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: priority.InstsBased{}}.Defaults()
	for i := 0; i < 24; i++ {
		op := uint64(i * 37 % 100)
		rp := uint64(i * 53 % 100)
		want := requestRejected
		if priority.Wins(rp, 1, op, 0) {
			want = ownerAborts
		}
		runConfCase(t, confCase{
			name: fmt.Sprintf("prio-%d-vs-%d", op, rp), cfg: cfg,
			ownerMode: htm.HTM, ownerWrite: true, ownerPrio: op,
			reqTx: true, reqWrite: true, reqPrio: rp,
			want: want,
		})
	}
}

// TestOwnershipTransferStates checks the stable states after each
// non-conflicting transfer (the MESI half of the matrix).
func TestOwnershipTransferStates(t *testing.T) {
	type tc struct {
		name               string
		firstW, secondW    bool
		wantOwner, wantReq cache.State
	}
	for _, c := range []tc{
		{"E-then-read", false, false, cache.Shared, cache.Shared},
		{"E-then-write", false, true, cache.Invalid, cache.Modified},
		{"M-then-read", true, false, cache.Shared, cache.Shared},
		{"M-then-write", true, true, cache.Invalid, cache.Modified},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e, sys, _ := tsys(t, baseCfg())
			access(t, e, sys, 0, 4096, c.firstW)
			drain(e)
			access(t, e, sys, 1, 4096, c.secondW)
			drain(e)
			if got := st(sys, 0, 4096); got != c.wantOwner {
				t.Fatalf("owner state = %v, want %v", got, c.wantOwner)
			}
			if got := st(sys, 1, 4096); got != c.wantReq {
				t.Fatalf("requester state = %v, want %v", got, c.wantReq)
			}
		})
	}
}
