package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// checkSWMR asserts the Single-Writer-Multiple-Readers property over every
// line cached anywhere: at most one L1 holds a line in E/M, and if one
// does, no other L1 holds any valid copy. The paper's recovery mechanism
// explicitly claims to preserve SWMR (§III-A); this is the checker.
func checkSWMR(t *testing.T, sys *System) {
	t.Helper()
	owners := make(map[mem.Line][]int)
	sharers := make(map[mem.Line][]int)
	for core, l1 := range sys.L1s {
		core := core
		classify := func(e *cache.Entry) {
			switch e.State {
			case cache.Exclusive, cache.Modified:
				owners[e.Line] = append(owners[e.Line], core)
			case cache.Shared:
				sharers[e.Line] = append(sharers[e.Line], core)
			}
		}
		l1.Array().ForEach(classify)
		if mid := l1.MidArray(); mid != nil {
			mid.ForEach(classify)
		}
	}
	for l, os := range owners {
		if len(os) > 1 {
			t.Fatalf("SWMR violated: line %d owned by cores %v", l, os)
		}
		if sh := sharers[l]; len(sh) > 0 {
			t.Fatalf("SWMR violated: line %d owned by %v and shared by %v", l, os, sh)
		}
	}
}

// checkDirConsistency asserts that each directory entry's stable state is
// compatible with the L1 contents: an L1 holding E/M must be the
// registered owner (L1s may silently drop, so the reverse need not hold).
func checkDirConsistency(t *testing.T, sys *System) {
	t.Helper()
	for core, l1 := range sys.L1s {
		core := core
		check := func(e *cache.Entry) {
			if e.State != cache.Exclusive && e.State != cache.Modified {
				return
			}
			b := sys.Banks[sys.HomeBank(e.Line)]
			d := b.dir.lookup(e.Line)
			if d == nil || d.state != dirEM || d.owner != core {
				t.Fatalf("dir inconsistency: core %d holds line %d in %v but dir says %+v",
					core, e.Line, e.State, d)
			}
		}
		l1.Array().ForEach(check)
		if mid := l1.MidArray(); mid != nil {
			mid.ForEach(check)
		}
	}
}

// fuzzSystem drives random transactional and plain accesses through a
// small system, checking invariants after quiescing.
func fuzzSystem(t *testing.T, hc htm.Config, seed uint64, steps int) {
	t.Helper()
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 32 * 1024
	p.LLCWays = 2 // tiny LLC: exercises back-invalidation too
	fuzzSystemParams(t, p, hc, seed, steps)
}

// fuzzSystemParams drives the fuzzer over a specific machine shape.
func fuzzSystemParams(t *testing.T, p Params, hc htm.Config, seed uint64, steps int) {
	t.Helper()
	e := sim.NewEngine()
	sys := NewSystem(e, p, hc)
	clients := make([]*testClient, p.Cores)
	for i := range clients {
		clients[i] = &testClient{}
		sys.L1s[i].SetClient(clients[i])
	}
	rng := sim.NewRNG(seed)

	inTx := make([]bool, p.Cores)
	for s := 0; s < steps; s++ {
		core := rng.Intn(p.Cores)
		l1 := sys.L1s[core]
		// If this core's transaction was doomed, reflect the rollback.
		if inTx[core] && l1.Tx.Doomed {
			inTx[core] = false
			l1.Tx.Reset()
		}
		switch rng.Intn(10) {
		case 0:
			if !inTx[core] && !l1.Tx.InTx() {
				l1.Tx.BeginAttempt(htm.HTM, e.Now())
				inTx[core] = true
			}
		case 1:
			if inTx[core] && l1.Tx.Mode == htm.HTM && !l1.Tx.Doomed {
				l1.CommitTx()
				l1.Tx.Reset()
				inTx[core] = false
			}
		case 2:
			if inTx[core] && l1.Tx.Mode == htm.HTM && !l1.Tx.Doomed {
				l1.AbortLocal(htm.CauseFault)
				inTx[core] = false
				l1.Tx.Reset()
			}
		default:
			line := mem.Line(4096 + rng.Intn(64)) // hot 64-line pool
			write := rng.Bool(0.4)
			if l1.Tx.Mode == htm.STL {
				// A fuzz step may have switched the tx; finish it.
				l1.HLEnd()
				l1.Tx.Reset()
				inTx[core] = false
			}
			l1.Access(line, write, func() {})
		}
		// Randomly interleave event processing with injection.
		for i := rng.Intn(30); i > 0 && e.Step(); i-- {
		}
	}
	// Quiesce: finish transactions so parked requests drain, then run dry.
	for drained := false; !drained; {
		drained = true
		for core, l1 := range sys.L1s {
			if l1.Tx.Doomed {
				l1.Tx.Reset()
				inTx[core] = false
			}
			if inTx[core] && l1.Tx.Mode == htm.HTM {
				l1.CommitTx()
				l1.Tx.Reset()
				inTx[core] = false
				drained = false
			}
			if l1.Tx.Mode.Lock() {
				l1.HLEnd()
				l1.Tx.Reset()
				inTx[core] = false
				drained = false
			}
		}
		for e.Step() {
		}
	}
	checkSWMR(t, sys)
	checkDirConsistency(t, sys)
}

func TestFuzzSWMRBaseline(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzSystem(t, baseCfg(), seed, 800)
		})
	}
}

func TestFuzzSWMRRecovery(t *testing.T) {
	for _, pol := range []htm.RejectPolicy{htm.SelfAbort, htm.RetryLater, htm.WaitWakeup} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%v-seed%d", pol, seed), func(t *testing.T) {
				fuzzSystem(t, recoveryCfg(pol), seed, 800)
			})
		}
	}
}

func TestFuzzSWMRLockiller(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzSystem(t, htmlockCfg(true), seed, 800)
		})
	}
}
