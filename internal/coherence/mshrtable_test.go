package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestMshrTableBasic exercises insert/lookup/remove including the
// not-present cases on both sides of a removal.
func TestMshrTableBasic(t *testing.T) {
	tab := newMshrTable(mshrTableCap)
	if tab.lookup(7) != nil {
		t.Fatal("lookup on empty table found an entry")
	}
	if tab.remove(7) {
		t.Fatal("remove on empty table reported success")
	}
	a, b := &mshr{line: 7}, &mshr{line: 7 + mshrTableCap}
	tab.insert(a)
	tab.insert(b)
	if tab.live != 2 {
		t.Fatalf("live = %d, want 2", tab.live)
	}
	if tab.lookup(7) != a || tab.lookup(7+mshrTableCap) != b {
		t.Fatal("lookup returned the wrong entry")
	}
	if !tab.remove(7) || tab.lookup(7) != nil || tab.lookup(7+mshrTableCap) != b {
		t.Fatal("remove(7) disturbed the surviving entry")
	}
	if tab.remove(7) {
		t.Fatal("second remove of the same line reported success")
	}
	if tab.live != 1 {
		t.Fatalf("live = %d, want 1", tab.live)
	}
}

// TestMshrTableDifferential drives a long random insert/remove/park schedule
// against a reference map, checking lookups, live/parked counters, and the
// sorted drain after every step. Lines are drawn from a small range so probe
// chains collide constantly, exercising backward-shift deletion.
func TestMshrTableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := newMshrTable(8) // tiny: forces growth and heavy collisions
	ref := map[mem.Line]*mshr{}
	for step := 0; step < 20_000; step++ {
		l := mem.Line(rng.Intn(64))
		switch op := rng.Intn(4); {
		case op == 0 && ref[l] == nil:
			ms := &mshr{line: l}
			if rng.Intn(2) == 0 {
				ms.state = mshrParked
			}
			tab.insert(ms)
			ref[l] = ms
		case op == 1 && ref[l] != nil:
			if !tab.remove(l) {
				t.Fatalf("step %d: remove(%d) failed but reference holds it", step, l)
			}
			delete(ref, l)
		case op == 2 && ref[l] != nil:
			if rng.Intn(2) == 0 {
				tab.setParked(ref[l])
			} else {
				tab.setInFlight(ref[l])
			}
		default:
			if got := tab.lookup(l); got != ref[l] {
				t.Fatalf("step %d: lookup(%d) = %p, want %p", step, l, got, ref[l])
			}
		}
		if tab.live != len(ref) {
			t.Fatalf("step %d: live = %d, want %d", step, tab.live, len(ref))
		}
		parked := 0
		for _, ms := range ref {
			if ms.state == mshrParked {
				parked++
			}
		}
		if tab.parked != parked {
			t.Fatalf("step %d: parked = %d, want %d", step, tab.parked, parked)
		}
	}
	// Every reference entry must still be reachable after all the shifting.
	for l, ms := range ref {
		if tab.lookup(l) != ms {
			t.Fatalf("final: lookup(%d) lost the entry", l)
		}
	}
}

// TestMshrTableDupInsertPanics pins the duplicate-insert invariant: the old
// map would have silently leaked the shadowed MSHR.
func TestMshrTableDupInsertPanics(t *testing.T) {
	tab := newMshrTable(mshrTableCap)
	tab.insert(&mshr{line: 3})
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	tab.insert(&mshr{line: 3})
}

// TestMshrTableSteadyStateNoAlloc pins the point of the table: once at its
// high-water capacity, the insert/lookup/remove cycle allocates nothing
// (map inserts allocate buckets under churn).
func TestMshrTableSteadyStateNoAlloc(t *testing.T) {
	tab := newMshrTable(mshrTableCap)
	entries := make([]*mshr, 16)
	for i := range entries {
		entries[i] = &mshr{line: mem.Line(i * 37)}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, ms := range entries {
			tab.insert(ms)
		}
		for _, ms := range entries {
			if tab.lookup(ms.line) != ms {
				t.Fatal("lookup miss")
			}
		}
		for _, ms := range entries {
			tab.remove(ms.line)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state table churn allocates %.0f per cycle, want 0", allocs)
	}
}

// TestMshrWaitersBackingReused pins the waiter-array pooling: an MSHR
// recycled through the free list keeps its waiters backing array, so
// re-parking waiters on it does not allocate once capacity has grown.
func TestMshrWaitersBackingReused(t *testing.T) {
	_, sys, _ := tsys(t, baseCfg())
	l1 := sys.L1s[0]
	w := func() {}
	// Warm one pooled MSHR up to 8 waiter slots.
	ms := l1.newMshr()
	for i := 0; i < 8; i++ {
		ms.waiters = append(ms.waiters, w)
	}
	l1.freeMshr(ms)
	allocs := testing.AllocsPerRun(100, func() {
		m := l1.newMshr()
		for i := 0; i < 8; i++ {
			m.waiters = append(m.waiters, w)
		}
		l1.freeMshr(m)
	})
	if allocs != 0 {
		t.Fatalf("recycled MSHR waiter append allocates %.0f per cycle, want 0", allocs)
	}
}
