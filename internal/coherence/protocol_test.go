package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
	"repro/internal/sim"
)

// testClient records dooms.
type testClient struct {
	dooms []htm.AbortCause
}

func (t *testClient) OnDoom(c htm.AbortCause) { t.dooms = append(t.dooms, c) }

// tsys builds a small 4-core system for protocol tests.
func tsys(t *testing.T, hc htm.Config) (*sim.Engine, *System, []*testClient) {
	t.Helper()
	e := sim.NewEngine()
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 1 << 20
	sys := NewSystem(e, p, hc)
	clients := make([]*testClient, p.Cores)
	for i := range clients {
		clients[i] = &testClient{}
		sys.L1s[i].SetClient(clients[i])
	}
	return e, sys, clients
}

func baseCfg() htm.Config { return htm.Config{}.Defaults() }

func recoveryCfg(p htm.RejectPolicy) htm.Config {
	c := htm.Config{Recovery: true, RejectPolicy: p, Priority: priority.InstsBased{}}
	return c.Defaults()
}

// access performs a blocking access and returns the completion cycle.
func access(t *testing.T, e *sim.Engine, sys *System, core int, l mem.Line, write bool) uint64 {
	t.Helper()
	done := false
	var at uint64
	sys.L1s[core].Access(l, write, func() { done = true; at = e.Now() })
	for !done {
		if !e.Step() {
			t.Fatalf("core %d access to line %d never completed (deadlock)", core, l)
		}
	}
	return at
}

// tryAccess performs an access that may never complete (e.g. parked);
// it runs the engine dry and reports completion.
func tryAccess(e *sim.Engine, sys *System, core int, l mem.Line, write bool) *bool {
	done := new(bool)
	sys.L1s[core].Access(l, write, func() { *done = true })
	return done
}

func drain(e *sim.Engine) {
	for e.Step() {
	}
}

func st(sys *System, core int, l mem.Line) cache.State {
	e := sys.L1s[core].Array().Peek(l)
	if e == nil {
		return cache.Invalid
	}
	return e.State
}

func TestReadMissGetsExclusive(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	at := access(t, e, sys, 0, 100, false)
	if got := st(sys, 0, 100); got != cache.Exclusive {
		t.Fatalf("first reader state = %v, want E", got)
	}
	// Latency must include NoC + memory + LLC + L1 components.
	if at < sys.MemLatency {
		t.Fatalf("cold miss completed in %d cycles (< memory latency)", at)
	}
	drain(e)
	// Second read hits: fast.
	t0 := e.Now()
	at2 := access(t, e, sys, 0, 100, false)
	if at2-t0 != sys.L1Hit {
		t.Fatalf("hit latency = %d, want %d", at2-t0, sys.L1Hit)
	}
}

func TestSecondReaderSharesAndDowngradesOwner(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, false)
	drain(e)
	access(t, e, sys, 1, 100, false)
	drain(e)
	if got := st(sys, 0, 100); got != cache.Shared {
		t.Fatalf("owner state = %v, want S", got)
	}
	if got := st(sys, 1, 100); got != cache.Shared {
		t.Fatalf("reader state = %v, want S", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, false)
	drain(e)
	access(t, e, sys, 1, 100, false)
	drain(e)
	access(t, e, sys, 2, 100, true)
	drain(e)
	if got := st(sys, 2, 100); got != cache.Modified {
		t.Fatalf("writer state = %v, want M", got)
	}
	if st(sys, 0, 100) != cache.Invalid || st(sys, 1, 100) != cache.Invalid {
		t.Fatal("sharers not invalidated")
	}
}

func TestWriteThenReadTransfersOwnership(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, true)
	drain(e)
	access(t, e, sys, 1, 100, false)
	drain(e)
	if st(sys, 0, 100) != cache.Shared || st(sys, 1, 100) != cache.Shared {
		t.Fatalf("after fwd: owner=%v reader=%v, want S/S", st(sys, 0, 100), st(sys, 1, 100))
	}
	// Dirty data must have reached the LLC (owner downgraded cleanly).
	own := sys.L1s[0].Array().Peek(100)
	if own.Dirty {
		t.Fatal("owner still dirty after downgrade")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, false)
	drain(e)
	access(t, e, sys, 1, 100, false)
	drain(e)
	access(t, e, sys, 0, 100, true) // upgrade
	drain(e)
	if st(sys, 0, 100) != cache.Modified {
		t.Fatalf("upgrader state = %v, want M", st(sys, 0, 100))
	}
	if st(sys, 1, 100) != cache.Invalid {
		t.Fatal("other sharer survived upgrade")
	}
}

func TestEvictionAndRefill(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	// Fill one L1 set (4 ways) plus one more line mapped to the same set.
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i <= 4; i++ {
		access(t, e, sys, 0, mem.Line(100+i*sets), true)
		drain(e)
	}
	// Victim (LRU = first line) must be re-fetchable.
	access(t, e, sys, 0, mem.Line(100), false)
	drain(e)
	if !st(sys, 0, 100).Valid() {
		t.Fatal("re-fetch after eviction failed")
	}
}

func TestRequesterWinConflictAbortsOwner(t *testing.T) {
	e, sys, cl := tsys(t, baseCfg())
	// Core 0 starts a transaction and writes line 100.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, true)
	drain(e)
	en := sys.L1s[0].Array().Peek(100)
	if !en.TxWrite {
		t.Fatal("tx write bit not set")
	}
	// Core 1 (also in a tx) reads it: requester wins, core 0 aborts.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, 100, false)
	drain(e)
	if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseMC {
		t.Fatalf("owner dooms = %v, want [mc]", cl[0].dooms)
	}
	// Speculative line dropped at the owner; requester got exclusive data
	// (the NACK flow grants E).
	if st(sys, 0, 100) != cache.Invalid {
		t.Fatalf("aborted owner still holds line in %v", st(sys, 0, 100))
	}
	if got := st(sys, 1, 100); got != cache.Exclusive {
		t.Fatalf("requester state = %v, want E (NACK grant)", got)
	}
}

func TestReadReadNoConflict(t *testing.T) {
	e, sys, cl := tsys(t, baseCfg())
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, false)
	drain(e)
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, 100, false)
	drain(e)
	if len(cl[0].dooms) != 0 {
		t.Fatalf("read-read sharing aborted a transaction: %v", cl[0].dooms)
	}
	if st(sys, 0, 100) != cache.Shared || st(sys, 1, 100) != cache.Shared {
		t.Fatal("both transactional readers should share")
	}
}

func TestRecoveryRejectsLowerPriorityRequester(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.WaitWakeup))
	// Owner has high priority (many retired insts).
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Tx.InstsRetired = 1000
	access(t, e, sys, 0, 100, true)
	drain(e)
	// Requester with low priority gets rejected and parks.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 1, 100, false)
	for i := 0; i < 10000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("low-priority request should be parked, not satisfied")
	}
	if len(cl[0].dooms) != 0 {
		t.Fatalf("high-priority owner aborted: %v", cl[0].dooms)
	}
	if sys.L1s[0].RejectsSent == 0 || sys.L1s[1].RejectsReceived == 0 {
		t.Fatal("reject not recorded")
	}
	// Owner commits: the wake-up lets the parked request complete.
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("parked request not woken after owner commit")
	}
	if len(cl[1].dooms) != 0 {
		t.Fatalf("requester aborted: %v", cl[1].dooms)
	}
}

func TestRecoverySelfAbortPolicy(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.SelfAbort))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Tx.InstsRetired = 1000
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	tryAccess(e, sys, 1, 100, false)
	drain(e)
	if len(cl[1].dooms) != 1 || cl[1].dooms[0] != htm.CauseMC {
		t.Fatalf("requester dooms = %v, want [mc]", cl[1].dooms)
	}
	if len(cl[0].dooms) != 0 {
		t.Fatal("owner must survive")
	}
}

func TestRecoveryRetryLaterEventuallySucceeds(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.RetryLater))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Tx.InstsRetired = 1000
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 1, 100, false)
	// Let a couple of rejected retries happen, then commit the owner.
	for i := 0; i < 4000; i++ {
		if !e.Step() {
			break
		}
	}
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("timed retry never succeeded after owner commit")
	}
	if len(cl[1].dooms) != 0 {
		t.Fatalf("requester aborted: %v", cl[1].dooms)
	}
	if sys.L1s[1].RejectsReceived < 2 {
		t.Fatalf("expected multiple rejected retries, got %d", sys.L1s[1].RejectsReceived)
	}
}

func TestRecoveryHigherPriorityRequesterWins(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.WaitWakeup))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	// Owner has priority 0 (fresh restart).
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[1].Tx.InstsRetired = 500
	access(t, e, sys, 1, 100, false)
	drain(e)
	if len(cl[0].dooms) != 1 {
		t.Fatalf("low-priority owner should abort, dooms=%v", cl[0].dooms)
	}
	if len(cl[1].dooms) != 0 {
		t.Fatal("high-priority requester should proceed")
	}
}

func TestInvRejectOnSharedTxLine(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.WaitWakeup))
	// Core 0 tx-reads line 100 and gains priority.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, false)
	drain(e)
	sys.L1s[0].Tx.InstsRetired = 1000
	// Core 2 also reads it non-transactionally so the dir state is S.
	access(t, e, sys, 2, 100, false)
	drain(e)
	// Core 1 (low-prio tx) wants to write: core 0 rejects the Inv.
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 1, 100, true)
	for i := 0; i < 10000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("write should be rejected by the transactional reader")
	}
	if len(cl[0].dooms) != 0 {
		t.Fatal("reader must keep its copy")
	}
	if got := st(sys, 0, 100); got != cache.Shared {
		t.Fatalf("rejecting reader state = %v, want S", got)
	}
	// Innocent sharer 2 was invalidated conservatively.
	if st(sys, 2, 100) != cache.Invalid {
		t.Fatal("non-tx sharer should have been invalidated")
	}
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("writer not woken after reader commit")
	}
}

func TestNonTxRequesterAlwaysWins(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.WaitWakeup))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Tx.InstsRetired = 1_000_000
	access(t, e, sys, 0, 100, true)
	drain(e)
	// Core 1 not in any transaction.
	access(t, e, sys, 1, 100, false)
	drain(e)
	if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseNonTx {
		t.Fatalf("owner dooms = %v, want [non_tran]", cl[0].dooms)
	}
}

func TestTxWBEmittedForDirtyLine(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	// Make the line dirty non-transactionally.
	access(t, e, sys, 0, 100, true)
	drain(e)
	// Now write it inside a transaction: the pre-tx value must be written
	// back before the TxWrite bit is set.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, true)
	drain(e)
	if sys.L1s[0].TxWBs != 1 {
		t.Fatalf("TxWBs = %d, want 1", sys.L1s[0].TxWBs)
	}
}

func TestAbortDropsWriteSetOnly(t *testing.T) {
	e, sys, cl := tsys(t, baseCfg())
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, true)
	access(t, e, sys, 0, 200, false)
	drain(e)
	sys.L1s[0].AbortLocal(htm.CauseFault)
	drain(e)
	if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseFault {
		t.Fatalf("dooms = %v", cl[0].dooms)
	}
	if st(sys, 0, 100) != cache.Invalid {
		t.Fatal("speculative write survived abort")
	}
	if !st(sys, 0, 200).Valid() {
		t.Fatal("read-set line should survive abort")
	}
	// The dropped line is re-readable by anyone (dir reconciles via NACK).
	access(t, e, sys, 1, 100, false)
	drain(e)
	if !st(sys, 1, 100).Valid() {
		t.Fatal("line unreachable after abort")
	}
}

func TestCommitKeepsWrites(t *testing.T) {
	e, sys, _ := tsys(t, baseCfg())
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	en := sys.L1s[0].Array().Peek(100)
	if en == nil || en.State != cache.Modified || en.Tx() {
		t.Fatalf("committed line = %+v", en)
	}
}
