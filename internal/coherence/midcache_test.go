package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// threeLevel builds a small system with private middle caches.
func threeLevel(t *testing.T, hc htm.Config) *engineSys {
	t.Helper()
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 1 << 20
	p.MidSize = 4 * 1024 // small middle cache: 64 lines
	p.MidWays = 8
	return newEngineSys(t, p, hc)
}

func TestMidCachePromotionOnMiss(t *testing.T) {
	es := threeLevel(t, baseCfg())
	e, sys := es.e, es.sys
	l1 := sys.L1s[0]
	// Fill one L1 set (4 ways) + 1: the LRU line demotes to the middle
	// cache instead of leaving the tile.
	sets := l1.Array().Sets()
	for i := 0; i <= 4; i++ {
		access(t, e, sys, 0, mem.Line(100+i*sets), true)
		drain(e)
	}
	first := mem.Line(100)
	if st(sys, 0, first) != cache.Invalid {
		t.Fatal("victim still in L1")
	}
	me := l1.MidArray().Peek(first)
	if me == nil || me.State != cache.Modified || !me.Dirty {
		t.Fatalf("victim not demoted to mid: %+v", me)
	}
	// Re-access: promoted back from the middle cache, no directory trip.
	reqs := sys.Banks[first.Bank(sys.Cores)].Requests
	access(t, e, sys, 0, first, false)
	drain(e)
	if got := sys.Banks[first.Bank(sys.Cores)].Requests; got != reqs {
		t.Fatalf("mid promotion went to the directory (%d -> %d reqs)", reqs, got)
	}
	if l1.MidHits == 0 {
		t.Fatal("mid hit not counted")
	}
	if !st(sys, 0, first).Valid() {
		t.Fatal("promotion did not restore the L1 copy")
	}
	if me := l1.MidArray().Peek(first); me != nil {
		t.Fatal("line present in both L1 and mid (must be exclusive)")
	}
}

func TestMidCacheOddFlushOnForward(t *testing.T) {
	// The three-level odd design: a remote LOAD flushes the owner's L1
	// copy into the middle cache (the L1 loses the line).
	es := threeLevel(t, baseCfg())
	e, sys := es.e, es.sys
	access(t, e, sys, 0, 100, true)
	drain(e)
	access(t, e, sys, 1, 100, false)
	drain(e)
	if st(sys, 0, 100) != cache.Invalid {
		t.Fatalf("owner L1 state = %v, want flushed (Invalid)", st(sys, 0, 100))
	}
	me := sys.L1s[0].MidArray().Peek(100)
	if me == nil || me.State != cache.Shared {
		t.Fatalf("owner mid state = %+v, want Shared", me)
	}
	if got := st(sys, 1, 100); got != cache.Shared {
		t.Fatalf("requester state = %v", got)
	}
}

func TestMidCacheThreeLevelSlowerOnSharing(t *testing.T) {
	// Ping-pong a line between two cores: the three-level flush makes each
	// handover strictly slower — the reason the paper built two-level.
	measure := func(mid bool) uint64 {
		p := DefaultParams()
		p.Cores, p.MeshW, p.MeshH = 4, 2, 2
		p.LLCSize = 1 << 20
		if mid {
			p.MidSize, p.MidWays = 4*1024, 8
		}
		e := sim.NewEngine()
		sys := NewSystem(e, p, htm.Config{}.Defaults())
		for i := range sys.L1s {
			sys.L1s[i].SetClient(&testClient{})
		}
		start := e.Now()
		for i := 0; i < 50; i++ {
			core := i % 2
			done := false
			sys.L1s[core].Access(100, true, func() { done = true })
			for !done && e.Step() {
			}
		}
		return e.Now() - start
	}
	two := measure(false)
	three := measure(true)
	if three <= two {
		t.Fatalf("three-level (%d) should be slower than two-level (%d) on sharing", three, two)
	}
}

func TestMidCacheExpandsTxCapacity(t *testing.T) {
	// A transaction overflowing the 4-way L1 set survives in three-level
	// (demotes into the middle cache) where two-level would abort.
	es := threeLevel(t, baseCfg())
	e, sys, cl := es.e, es.sys, es.cl
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 6; i++ {
		access(t, e, sys, 0, mem.Line(100+i*sets), true)
		drain(e)
	}
	if len(cl[0].dooms) != 0 {
		t.Fatalf("three-level aborted a tx the middle cache should hold: %v", cl[0].dooms)
	}
	r, w := 0, 0
	sys.L1s[0].MidArray().ForEach(func(en *cache.Entry) {
		if en.TxRead {
			r++
		}
		if en.TxWrite {
			w++
		}
	})
	if w == 0 {
		t.Fatal("no transactional lines demoted to mid")
	}
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
}

func TestMidCacheAbortDropsSpeculativeMidLines(t *testing.T) {
	es := threeLevel(t, baseCfg())
	e, sys, _ := es.e, es.sys, es.cl
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	lines := make([]mem.Line, 6)
	for i := range lines {
		lines[i] = mem.Line(100 + i*sets)
		access(t, e, sys, 0, lines[i], true)
		drain(e)
	}
	sys.L1s[0].AbortLocal(htm.CauseFault)
	drain(e)
	for _, l := range lines {
		if st(sys, 0, l) != cache.Invalid {
			t.Fatalf("speculative L1 line %d survived abort", l)
		}
		if me := sys.L1s[0].MidArray().Peek(l); me != nil && me.State.Valid() {
			t.Fatalf("speculative mid line %d survived abort: %+v", l, me)
		}
		// All lines must be re-fetchable by others.
		access(t, e, sys, 1, l, false)
		drain(e)
	}
}

func TestMidCacheConflictDetectionInMid(t *testing.T) {
	// A conflicting request must find transactional data that lives only
	// in the middle cache.
	es := threeLevel(t, baseCfg())
	e, sys, cl := es.e, es.sys, es.cl
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sets := sys.L1s[0].Array().Sets()
	first := mem.Line(100)
	for i := 0; i < 5; i++ {
		access(t, e, sys, 0, mem.Line(100+i*sets), true)
		drain(e)
	}
	if me := sys.L1s[0].MidArray().Peek(first); me == nil || !me.TxWrite {
		t.Fatal("precondition: first line should be tx data in mid")
	}
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, first, false)
	drain(e)
	if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseMC {
		t.Fatalf("mid-resident conflict missed: dooms=%v", cl[0].dooms)
	}
}

func TestFuzzSWMRThreeLevel(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzSystemParams(t, threeLevelParams(), baseCfg(), seed, 800)
		})
	}
	for seed := uint64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("lockiller-seed%d", seed), func(t *testing.T) {
			fuzzSystemParams(t, threeLevelParams(), htmlockCfg(true), seed, 800)
		})
	}
}

func threeLevelParams() Params {
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 32 * 1024
	p.LLCWays = 2
	p.MidSize = 4 * 1024
	p.MidWays = 8
	return p
}
