package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestEvictionRaceWithForward(t *testing.T) {
	// Core 0 owns a dirty line, evicts it (PutM in flight) while core 1's
	// GetS races: whatever the interleaving, both end up coherent.
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, true)
	drain(e)
	// Force eviction by filling the set.
	sets := sys.L1s[0].Array().Sets()
	for i := 1; i <= 4; i++ {
		sys.L1s[0].Access(mem.Line(100+i*sets), true, func() {})
	}
	// Concurrent read from core 1 before the PutM settles.
	done := tryAccess(e, sys, 1, 100, false)
	drain(e)
	if !*done {
		t.Fatal("racing read never completed")
	}
	if !st(sys, 1, 100).Valid() {
		t.Fatal("requester has no valid copy")
	}
}

func TestOwnerReRequestsAfterAbort(t *testing.T) {
	// After an abort drops a speculative line, the same core re-requesting
	// it hits the owner==requester directory path.
	e, sys, _ := tsys(t, baseCfg())
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[0].AbortLocal(htm.CauseFault)
	drain(e)
	// Dir still believes core 0 owns line 100.
	access(t, e, sys, 0, 100, true)
	drain(e)
	if got := st(sys, 0, 100); got != cache.Modified {
		t.Fatalf("re-request state = %v, want M", got)
	}
}

// tinyLLCParams builds a 4-core system whose LLC banks are 2-way, so an
// LLC set can fill with lines that still have L1 copies.
func tinyLLCParams() Params {
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 32 * 1024 // 8KB/bank: 2-way => 64 sets
	p.LLCWays = 2
	return p
}

// sameLLCSetLines returns n lines homed at bank 0 that map to the same
// LLC set but different L1 sets where possible.
func sameLLCSetLines(sys *System, n int) []mem.Line {
	bank := sys.Banks[0]
	llcSets := bank.arr.Sets()
	var out []mem.Line
	for k := 1; len(out) < n; k++ {
		// frame = k*llcSets => same LLC set 0; line = frame*cores.
		out = append(out, mem.Line(k*llcSets*sys.Cores))
	}
	return out
}

func TestBackInvalidationRecallsCopies(t *testing.T) {
	es := newEngineSys(t, tinyLLCParams(), baseCfg())
	e, sys := es.e, es.sys
	lines := sameLLCSetLines(sys, 3)
	// Cores 0 and 1 hold the first two lines; the third allocation must
	// back-invalidate one of them.
	access(t, e, sys, 0, lines[0], false)
	drain(e)
	access(t, e, sys, 1, lines[1], false)
	drain(e)
	access(t, e, sys, 2, lines[2], false)
	drain(e)
	if sys.Banks[0].BackInvals == 0 {
		t.Fatal("expected a back-invalidation when the LLC set filled with lines holding L1 copies")
	}
	// Exactly one of the recalled lines lost its L1 copy, and all three
	// remain fetchable.
	for _, l := range lines {
		access(t, e, sys, 3, l, false)
		drain(e)
	}
}

func TestBackInvalidationAbortsTx(t *testing.T) {
	es := newEngineSys(t, tinyLLCParams(), baseCfg())
	e, sys, cl := es.e, es.sys, es.cl
	lines := sameLLCSetLines(sys, 3)
	// Core 3 transactionally reads the first line; LRU makes it the
	// back-invalidation victim once two more lines land in the set.
	sys.L1s[3].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 3, lines[0], false)
	drain(e)
	access(t, e, sys, 0, lines[1], false)
	drain(e)
	access(t, e, sys, 1, lines[2], false)
	drain(e)
	if len(cl[3].dooms) != 1 || cl[3].dooms[0] != htm.CauseOverflow {
		t.Fatalf("LLC recall of a tx line must abort with 'of', got %v", cl[3].dooms)
	}
}

func TestNonTxParkedTimesOutAndRetries(t *testing.T) {
	// A non-transactional requester rejected by a lock transaction retries
	// on timeout even if the wake-up is lost.
	cfg := htmlockCfg(false)
	cfg.RejectTimeout = 500
	e, sys, _ := tsys(t, cfg)
	enterTL(t, sys, 0)
	access(t, e, sys, 0, 100, true)
	drain(e)
	done := tryAccess(e, sys, 1, 100, false) // plain access, rejected
	for i := 0; i < 5000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("should still be parked while lock tx runs")
	}
	// End the lock tx but drop its wake by ending through the arbiter
	// normally — the parked request completes either via wake or timeout.
	sys.L1s[0].HLEnd()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("parked non-tx request never completed")
	}
}

func TestUpgradeRejectRestoresSharedState(t *testing.T) {
	e, sys, cl := tsys(t, recoveryCfg(htm.WaitWakeup))
	// Core 0: high-priority tx reader. Core 1: shares the line, then
	// tries to upgrade with low priority.
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 0, 100, false)
	drain(e)
	sys.L1s[0].Tx.InstsRetired = 10_000
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	access(t, e, sys, 1, 100, false)
	drain(e)
	done := tryAccess(e, sys, 1, 100, true) // upgrade attempt
	for i := 0; i < 10000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("upgrade should be rejected")
	}
	// The S copy must have survived the rejected upgrade (paper: restore
	// to the state before sending the request). A timed retry may already
	// be in flight (StoM again), but the line must never have reached M.
	if got := st(sys, 1, 100); got != cache.Shared && got != cache.StoM {
		t.Fatalf("upgrader state = %v, want S restored (or a retry in flight)", got)
	}
	if len(cl[1].dooms) != 0 {
		t.Fatal("upgrader must not abort under WaitWakeup")
	}
	sys.L1s[0].CommitTx()
	sys.L1s[0].Tx.Reset()
	drain(e)
	if !*done {
		t.Fatal("upgrade not completed after reader commit")
	}
	if got := st(sys, 1, 100); got != cache.Modified {
		t.Fatalf("post-upgrade state = %v", got)
	}
}

func TestWakeOnAbortToo(t *testing.T) {
	// The wake-up table is drained on abort as well as commit.
	e, sys, _ := tsys(t, recoveryCfg(htm.WaitWakeup))
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Tx.InstsRetired = 1000
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[1].Tx.BeginAttempt(htm.HTM, e.Now())
	done := tryAccess(e, sys, 1, 100, false)
	for i := 0; i < 10000 && !*done; i++ {
		if !e.Step() {
			break
		}
	}
	if *done {
		t.Fatal("expected park")
	}
	sys.L1s[0].AbortLocal(htm.CauseFault) // owner aborts instead of committing
	drain(e)
	if !*done {
		t.Fatal("abort did not wake the parked requester")
	}
}

func TestTxWBRaceServesFreshData(t *testing.T) {
	// Dirty non-tx line, transactional store (TxWB in flight), immediate
	// conflict loss: the requester must still get a coherent copy.
	e, sys, _ := tsys(t, baseCfg())
	access(t, e, sys, 0, 100, true)
	drain(e)
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.Now())
	sys.L1s[0].Access(100, true, func() {}) // TxWB + W bit, no drain
	// Core 1 reads concurrently: requester-win aborts core 0.
	done := tryAccess(e, sys, 1, 100, false)
	drain(e)
	if !*done {
		t.Fatal("racing read incomplete")
	}
	if !st(sys, 1, 100).Valid() {
		t.Fatal("no valid copy at requester")
	}
}

func TestSmallCacheOverflowsUnderHTM(t *testing.T) {
	p := DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.L1Size = 8 * 1024 // the Fig. 13 small config
	p.LLCSize = 1 << 20
	e := newEngineSys(t, p, baseCfg())
	sys := e.sys
	cl := e.cl
	sys.L1s[0].Tx.BeginAttempt(htm.HTM, e.e.Now())
	sets := sys.L1s[0].Array().Sets()
	for i := 0; i < 5; i++ {
		ok := false
		sys.L1s[0].Access(mem.Line(4096+i*sets), true, func() { ok = true })
		drain(e.e)
		if !ok && len(cl[0].dooms) == 0 {
			t.Fatal("access neither completed nor aborted")
		}
	}
	if len(cl[0].dooms) != 1 || cl[0].dooms[0] != htm.CauseOverflow {
		t.Fatalf("dooms = %v, want [of]", cl[0].dooms)
	}
}

// engineSys bundles a system with custom params for tests.
type engineSys struct {
	e   *sim.Engine
	sys *System
	cl  []*testClient
}

func newEngineSys(t *testing.T, p Params, hc htm.Config) *engineSys {
	t.Helper()
	e := sim.NewEngine()
	sys := NewSystem(e, p, hc)
	clients := make([]*testClient, p.Cores)
	for i := range clients {
		clients[i] = &testClient{}
		sys.L1s[i].SetClient(clients[i])
	}
	return &engineSys{e: e, sys: sys, cl: clients}
}
