package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence/proto"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Client is the CPU-side listener an L1 notifies when its transaction is
// doomed by an external event (conflict loss, reject policy, overflow).
// The L1 has already flash-cleared its transactional state when OnDoom
// runs; the client only schedules the architectural rollback.
type Client interface {
	OnDoom(cause htm.AbortCause)
}

// mshrState tracks a miss request's lifecycle.
type mshrState uint8

const (
	mshrInFlight mshrState = iota
	mshrParked             // rejected and waiting (wake-up or timed retry)
)

// mshr is a miss-status holding register entry: one in-flight or parked
// request per line. A rejected request is "held in the MSHR, marked
// incomplete, and restored to the state before sending" (paper §III-A).
type mshr struct {
	line    mem.Line
	write   bool
	txBits  bool // set tx metadata on fill
	epoch   uint64
	state   mshrState
	done    func()
	// doneEp is done's guard epoch: done fires only while l1.epoch still
	// equals it. Storing the pair instead of a guard closure keeps the
	// dominant miss path allocation-free (see guard).
	doneEp  uint64
	waiters []func()
	parkSeq uint64 // invalidates stale park timeouts; monotonic across reuse
	freed   bool   // on the free list; guards against double frees
}

// L1 is a private L1 cache controller with best-effort HTM support and the
// three LockillerTM mechanisms.
//lockiller:tile-state
type L1 struct {
	sys  *System
	core int
	arr  *cache.Array
	// mid is the private middle cache of the MESI-Three-Level-HTM variant
	// (nil in the paper's streamlined two-level organization).
	mid *cache.Array
	Tx  *htm.TxState

	client Client
	epoch  uint64 // bumped on every abort; stale callbacks are dropped

	// mshrs is an open-addressed line→MSHR table (see mshrtable.go): flat,
	// allocation-free in steady state, with O(1) live/parked counts.
	mshrs mshrTable
	// mshrScratch is reused by sortedMshrs (deterministic iteration);
	// mshrFree recycles resolved MSHRs (one is allocated per miss).
	mshrScratch []*mshr
	mshrFree    []*mshr

	// applyingHLA state (switchingMode, paper Fig. 6): while an HLApply is
	// outstanding, external requests are blocked and queued.
	applying   bool
	applyCont  func(granted bool)
	blockedExt []*Msg

	// wake is the recovery mechanism's wake-up table (Fig. 2): cores whose
	// requests this cache rejected, to be woken at commit/abort.
	wake htm.WakeSet

	// Stats.
	Hits, Misses, MidHits, TxWBs   uint64
	RejectsSent, RejectsReceived   uint64
	NacksSent, WakesSent           uint64
	OverflowEvictions, SwitchTries uint64
	SwitchGrants                   uint64
}

func newL1(sys *System, core int, arena *cache.Arena) *L1 {
	l1 := &L1{
		sys:   sys,
		core:  core,
		arr:   cache.NewArrayIn(arena, sys.L1Size, sys.L1Ways),
		Tx:    &htm.TxState{Core: core, Cfg: sys.HTM},
		mshrs: newMshrTable(mshrTableCap),
	}
	if sys.MidSize > 0 {
		l1.mid = cache.NewArrayIn(arena, sys.MidSize, sys.MidWays)
	}
	return l1
}

// reset returns the L1 to its just-constructed state in place (machine
// reset between runs; see System.Reset for the contract). Warm capacity
// survives: the cache arrays keep their backings (generation reset), the
// MSHR table keeps its grown slot count, and the MSHR free list keeps its
// pooled entries — parkSeq deliberately survives, exactly as it does across
// newMshr recycling, because every check against it is an equality. The
// abort epoch restarts at zero so park-retry payload words (epoch<<32|seq)
// rebuild identically to a fresh machine's.
func (l1 *L1) reset() {
	l1.arr.Reset()
	if l1.mid != nil {
		l1.mid.Reset()
	}
	l1.Tx.ResetHard()
	l1.epoch = 0
	l1.mshrs.reset(l1.freeMshr)
	l1.mshrScratch = l1.mshrScratch[:0]
	l1.applying = false
	l1.applyCont = nil
	l1.blockedExt = l1.blockedExt[:0]
	l1.wake.Clear()
	l1.Hits, l1.Misses, l1.MidHits, l1.TxWBs = 0, 0, 0, 0
	l1.RejectsSent, l1.RejectsReceived = 0, 0
	l1.NacksSent, l1.WakesSent = 0, 0
	l1.OverflowEvictions, l1.SwitchTries, l1.SwitchGrants = 0, 0, 0
}

// MidArray exposes the middle cache (nil when two-level) to tests.
func (l1 *L1) MidArray() *cache.Array { return l1.mid }

// SetClient installs the CPU-side doom listener.
func (l1 *L1) SetClient(c Client) { l1.client = c }

// Core returns the core/tile id.
func (l1 *L1) Core() int { return l1.core }

// SimTile implements sim.TileOwner: every L1 event belongs to the L1's own
// tile.
func (l1 *L1) SimTile() int { return l1.core }

// ProbeClass implements sim.ProbeClasser for self-profiler reports.
func (l1 *L1) ProbeClass() string { return "l1" }

// Array exposes the data array to tests and stats.
func (l1 *L1) Array() *cache.Array { return l1.arr }

// MSHRCount returns the number of live MSHRs (in-flight plus parked) — the
// telemetry MSHR-occupancy probe. O(1): the table keeps the count.
func (l1 *L1) MSHRCount() int { return l1.mshrs.live }

// ParkedRequests returns the number of rejected requests currently held in
// MSHRs awaiting a wake-up or timed retry (diagnostics). O(1).
func (l1 *L1) ParkedRequests() int { return l1.mshrs.parked }

// send routes a message from this L1 through the System's message pool.
func (l1 *L1) send(v Msg) {
	v.Src = l1.core
	l1.sys.send(v)
}

// sendAfter routes a message d cycles from now. The message is materialized
// eagerly so it never reads protocol state (or a recycled request) at fire
// time.
func (l1 *L1) sendAfter(d uint64, v Msg) {
	v.Src = l1.core
	l1.sys.sendAfter(d, v)
}

// guard wraps a CPU continuation so it fires only if no abort intervened.
//
// The dominant miss path no longer builds this closure: the MSHR carries the
// raw continuation plus its guard epoch (ms.done / ms.doneEp) and the
// completion site performs the epoch check directly. guard remains for the
// cold paths (mid-cache promotes, stale-retry re-dispatch) where the
// continuation outlives the MSHR.
func (l1 *L1) guard(fn func()) func() {
	return l1.guardAt(l1.epoch, fn)
}

// guardAt is guard with an explicit capture epoch: the continuation fires
// only if l1.epoch still equals ep. Epochs are monotonic, so wrapping an
// already-guarded continuation with a later epoch is a no-op filter.
func (l1 *L1) guardAt(ep uint64, fn func()) func() {
	return func() {
		if l1.epoch == ep && fn != nil {
			fn()
		}
	}
}

// tracking reports whether accesses should set transactional metadata.
func (l1 *L1) tracking() bool { return l1.Tx.InTx() }

// Access performs a load (write=false) or store (write=true) to a line.
// done runs when the access completes; it is dropped if the transaction
// aborts first. The L1 resolves mode (plain / HTM / TL / STL) from the
// shared TxState.
//
// The dominant hit path is allocation-free: completion is a typed engine
// event carrying the access-time epoch, so no guard closure is built. Miss
// paths wrap done in an epoch guard as before (one closure per miss).
func (l1 *L1) Access(line mem.Line, write bool, done func()) {
	if m := l1.mshrs.lookup(line); m != nil {
		// A request for this line is already outstanding (e.g. issued by a
		// previous, aborted attempt). Re-dispatch when it resolves.
		ep := l1.epoch
		m.waiters = append(m.waiters, func() {
			if l1.epoch == ep {
				l1.Access(line, write, done)
			}
		})
		return
	}
	e := l1.arr.Lookup(line)
	if e != nil && e.State.Valid() {
		if !write || e.State == cache.Exclusive || e.State == cache.Modified {
			l1.Hits++
			l1.hit(e, write, done)
			return
		}
		// Store to a Shared line: upgrade.
		l1.Misses++
		e.State = cache.StoM
		l1.issue(line, true, done, l1.epoch)
		return
	}
	if e != nil {
		panic(fmt.Sprintf("coherence: L1 %d access to transient line %d without MSHR", l1.core, line))
	}
	if me := l1.midLookup(line); me != nil && me.State.Valid() {
		// Three-level: middle-cache hit; promote into the L1.
		l1.Misses++
		l1.MidHits++
		gdone := l1.guard(done)
		//lockiller:alloc-ok three-level baseline only; the promote carries two pointers + a flag, which the typed payload cannot hold unboxed
		l1.sys.Engine.After(l1.sys.MidHit, func() { l1.promoteFromMid(line, me, write, gdone) })
		return
	}
	l1.Misses++
	l1.allocateAndIssue(line, write, done, l1.epoch)
}

// Typed-event kinds handled by L1.OnEvent.
const (
	evL1Done      uint8 = iota // a = epoch at access time, p = completion func
	evL1MshrDone               // p = *mshr whose done callback and waiters run
	evL1ParkRetry              // a = epoch<<32 | parkSeq (32 bits each), p = *mshr
)

// OnEvent implements sim.Handler for the L1's allocation-free completions.
func (l1 *L1) OnEvent(kind uint8, a uint64, p any) {
	switch kind {
	case evL1Done:
		if a != l1.epoch {
			return // the requesting attempt aborted; drop the completion
		}
		if fn, ok := p.(func()); ok && fn != nil {
			fn()
		}
	case evL1MshrDone:
		ms := p.(*mshr)
		if ms.done != nil && ms.doneEp == l1.epoch {
			ms.done() // unwrapped continuation: the epoch check replaces the guard closure
		}
		for _, w := range ms.waiters {
			w()
		}
		l1.freeMshr(ms) // already deleted from l1.mshrs by fill/fillFromLocal
	case evL1ParkRetry:
		// The payload word carries the park generation; the mshr pointer
		// stays valid across recycling (the pool retains it), and the
		// identity + epoch + parkSeq checks defuse stale timeouts exactly
		// as the old capturing closure did.
		ms := p.(*mshr)
		if l1.epoch&epochMask == a>>32 && l1.mshrs.lookup(ms.line) == ms &&
			ms.state == mshrParked && ms.parkSeq&epochMask == a&epochMask {
			l1.retry(ms)
		}
	}
}

// epochMask truncates the park-retry generation counters to the 32 bits
// that fit beside each other in one event payload word. Both counters
// advance at most once per executed event, so they cannot wrap within a
// feasible run, let alone alias modulo 2^32 while a timeout is in flight.
const epochMask = 1<<32 - 1

// hit completes an access that hit in the L1. done may be unguarded: the
// completion event carries the current epoch and is dropped on mismatch.
func (l1 *L1) hit(e *cache.Entry, write bool, done func()) {
	l1.hitUpdate(e, write)
	l1.finishHit(done)
}

// hitUpdate applies the architectural effects of an L1 hit — state upgrade,
// dirty bit, transactional metadata, and the eager pre-transactional
// writeback — without scheduling the completion. It is shared verbatim by
// the slow (typed-event) and fast (fused inline) hit paths, so the two are
// indistinguishable to the protocol.
func (l1 *L1) hitUpdate(e *cache.Entry, write bool) {
	tx := l1.tracking()
	if write {
		if tx && l1.Tx.Mode == htm.HTM && e.Dirty && !e.TxWrite {
			// Eager version management: the pre-transactional dirty value
			// must reach the LLC before the line joins the write set, so an
			// abort (which drops the line) cannot lose it.
			l1.TxWBs++
			l1.send(Msg{Type: MsgTxWB, Line: e.Line, Dst: l1.sys.HomeBank(e.Line), Requester: l1.core})
		}
		if e.State == cache.Exclusive {
			e.State = cache.Modified
		}
		e.Dirty = true
		if tx && !e.TxWrite {
			e.TxWrite = true
			l1.Tx.WriteLines++
		}
	} else if tx && !e.TxRead {
		e.TxRead = true
		l1.Tx.ReadLines++
	}
}

// finishHit schedules the typed hit-completion event. This is the single
// sanctioned evL1Done scheduling site (enforced by the fusepath analyzer):
// any other hit-completion must either go through here or qualify for
// TryFastHit's inline retirement.
func (l1 *L1) finishHit(done func()) {
	l1.sys.Engine.AfterEvent(l1.sys.L1Hit, l1, evL1Done, l1.epoch, done)
}

// TryFastHit is the coherence half of the event-fusion fast path (DESIGN.md
// §10). If the access is a guaranteed L1 hit — no MSHR outstanding for the
// line, a valid copy present, and (for stores) write permission already held
// — it applies the full hit effects and returns true WITHOUT scheduling the
// completion event; the core then retires the access inline, lazily
// advancing simulated time by the hit latency. Any other case returns false
// with no state touched, and the caller must take the ordinary Access path.
//
// Exactness: the effects applied here are hitUpdate's, at the same cycle
// Access would apply them, and the only events a hit can generate (the
// eager transactional writeback) are sent identically. The caller remains
// responsible for proving via Engine.PeekNext that no pending event fires
// at or before the inline completion time.
func (l1 *L1) TryFastHit(line mem.Line, write bool) bool {
	if l1.mshrs.lookup(line) != nil {
		return false // outstanding request: the access must queue behind it
	}
	e := l1.arr.Lookup(line)
	if e == nil || !e.State.Valid() {
		return false // miss or transient: full machinery required
	}
	if write && e.State != cache.Exclusive && e.State != cache.Modified {
		return false // store to Shared: upgrade request required
	}
	l1.Hits++
	l1.hitUpdate(e, write)
	return true
}

// FinishFastHit completes a TryFastHit through the typed event path —
// bit-identical to the slow hit — for when an event materialized inside the
// hit-latency window (e.g. the hit's own transactional writeback delivery)
// after the hit effects were already applied.
func (l1 *L1) FinishFastHit(done func()) { l1.finishHit(done) }

// allocateAndIssue finds a way for the missing line — possibly triggering
// the capacity-overflow machinery — and sends the request. done and ep
// travel unwrapped (the MSHR stores both), so the common miss costs no
// guard-closure allocation.
func (l1 *L1) allocateAndIssue(line mem.Line, write bool, done func(), ep uint64) {
	v := l1.allocateWay(line, write, done, ep)
	if v == nil {
		return // diverted to the overflow machinery
	}
	st := cache.ItoS
	if write {
		st = cache.ItoM
	}
	l1.arr.Install(v, line, st)
	l1.issue(line, write, done, ep)
}

// allocateWay finds (and frees) an L1 way for the line, returning nil when
// the access was diverted to the overflow machinery.
func (l1 *L1) allocateWay(line mem.Line, write bool, done func(), ep uint64) *cache.Entry {
	if l1.midEnabled() {
		return l1.l1VictimOrDemote(line, write, done, ep)
	}
	avoidTx := func(e *cache.Entry) bool { return e.Tx() }
	v := l1.arr.Victim(line, avoidTx)
	if v == nil {
		// Every way in the set holds transactional data: capacity overflow.
		l1.overflow(line, write, done, ep)
		return nil
	}
	if v.State.Valid() {
		l1.evict(v)
	}
	return v
}

// overflow handles a transactional set overflow by consulting the system's
// OverflowPolicy: lock transactions spill a line into the LLC signatures;
// under switchingMode an HTM transaction's first own-allocation overflow
// applies for STL authorization; otherwise it aborts with a capacity cause.
func (l1 *L1) overflow(line mem.Line, write bool, done func(), ep uint64) {
	switch l1.sys.HTM.Overflow.Decide(l1.Tx.Mode, l1.Tx.TriedSwitch, false) {
	case htm.OverflowSpill:
		v := l1.arr.AnyVictim(line)
		if v == nil {
			panic(fmt.Sprintf("coherence: L1 %d set wedged for line %d", l1.core, line))
		}
		l1.spillToSignature(v)
		st := cache.ItoS
		if write {
			st = cache.ItoM
		}
		l1.arr.Install(v, line, st)
		l1.issue(line, write, done, ep)
	case htm.OverflowSwitch:
		// Fig. 6: revoke the request, enter applyingHLA, apply to the LLC
		// for STL authorization, and re-issue the revoked request after the
		// decision (retrying it as the lock-mode spill path on grant).
		l1.trySwitch(func() { l1.allocateAndIssue(line, write, done, ep) })
	default:
		if l1.Tx.Mode != htm.HTM {
			panic(fmt.Sprintf("coherence: L1 %d overflow outside a transaction (mode %v)", l1.core, l1.Tx.Mode))
		}
		l1.abortTx(htm.CauseOverflow)
	}
}

// spillToSignature evicts a lock-transaction line into the LLC overflow
// signatures (paper Fig. 5 (2)).
func (l1 *L1) spillToSignature(v *cache.Entry) {
	l1.OverflowEvictions++
	if l1.sys.Tracer.Enabled(trace.CatHTMLock) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatHTMLock, v.Line, "signature spill r=%v w=%v", v.TxRead, v.TxWrite)
	}
	l1.sys.Arbiter.RecordOverflow(l1.core, v.Line, v.TxRead, v.TxWrite)
	l1.send(Msg{Type: MsgSigAdd, Line: v.Line, Dst: l1.sys.ArbiterTile,
		Requester: l1.core, Write: v.TxWrite})
	l1.evictLine(v)
}

// evict writes back or silently drops a non-transactional victim.
func (l1 *L1) evict(v *cache.Entry) {
	if v.Tx() {
		panic(fmt.Sprintf("coherence: L1 %d evicting transactional line %d outside the overflow path", l1.core, v.Line))
	}
	l1.evictLine(v)
}

func (l1 *L1) evictLine(v *cache.Entry) {
	switch v.State {
	case cache.Modified:
		l1.send(Msg{Type: MsgPutM, Line: v.Line, Dst: l1.sys.HomeBank(v.Line), Requester: l1.core})
	case cache.Exclusive:
		l1.send(Msg{Type: MsgPutE, Line: v.Line, Dst: l1.sys.HomeBank(v.Line), Requester: l1.core})
	case cache.Shared:
		// Silent drop; the directory tolerates stale sharers.
	default:
		panic(fmt.Sprintf("coherence: evicting line %d in state %v", v.Line, v.State))
	}
	v.State = cache.Invalid
	v.Dirty = false
	v.TxRead = false
	v.TxWrite = false
}

// newMshr returns a reset MSHR from the free list. parkSeq survives reuse
// so a park timeout captured against a previous incarnation can never match
// a future parking of the recycled entry.
func (l1 *L1) newMshr() *mshr {
	if n := len(l1.mshrFree); n > 0 {
		m := l1.mshrFree[n-1]
		l1.mshrFree = l1.mshrFree[:n-1]
		seq, w := m.parkSeq, m.waiters[:0]
		*m = mshr{parkSeq: seq, waiters: w}
		return m
	}
	return new(mshr)
}

// freeMshr recycles an MSHR. Callers must have removed it from l1.mshrs and
// run (or dropped) its done callback and waiters first; stale park timeouts
// are defused by the identity + parkSeq checks.
func (l1 *L1) freeMshr(ms *mshr) {
	if ms.freed {
		panic(fmt.Sprintf("coherence: L1 %d double free of MSHR for line %d", l1.core, ms.line))
	}
	ms.freed = true
	ms.done = nil
	for i := range ms.waiters {
		ms.waiters[i] = nil // drop closure references; capacity is reused
	}
	ms.waiters = ms.waiters[:0]
	l1.mshrFree = append(l1.mshrFree, ms)
}

// issue creates the MSHR and sends the coherence request with the current
// priority piggybacked (the recovery mechanism's user-defined data). done is
// stored unwrapped with its guard epoch ep; the completion site (evL1MshrDone)
// performs the epoch check the guard closure used to.
func (l1 *L1) issue(line mem.Line, write bool, done func(), ep uint64) {
	m := l1.newMshr()
	m.line, m.write, m.txBits, m.epoch = line, write, l1.tracking(), l1.epoch
	m.done, m.doneEp = done, ep
	l1.mshrs.insert(m)
	l1.sendReq(m)
}

func (l1 *L1) sendReq(m *mshr) {
	t := MsgGetS
	if m.write {
		t = MsgGetM
	}
	if l1.sys.Tracer.Enabled(trace.CatProto) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatProto, m.line, "%v prio=%d mode=%v", t, l1.Tx.Priority(), l1.Tx.Mode)
	}
	l1.send(Msg{Type: t, Line: m.line, Dst: l1.sys.HomeBank(m.line),
		Requester: l1.core, Prio: l1.Tx.Priority(), ReqMode: l1.Tx.Mode})
}

// Receive is the L1's message input. It owns m and dispatches it through the
// l1.receive table: each transition's action sequence either recycles the
// message (free-msg) or moves its ownership to a store (queue-external; the
// drain loop re-enters Receive and the normal rules apply).
func (l1 *L1) Receive(m *Msg) {
	s := l1Ready
	if l1.applying {
		s = l1Applying
	}
	l1RecvTable.Dispatch(s, proto.Event(m.Type), l1MsgCtx{l1: l1, m: m}, l1.sys.fired[tblL1Recv])
}

// queueExternal parks an external request while an HLApply is outstanding
// (applyingHLA, Fig. 6); message ownership moves to the queue.
func (l1 *L1) queueExternal(m *Msg) {
	l1.blockedExt = append(l1.blockedExt, m)
}

// applyDecision resolves an outstanding HLApply with the arbiter's verdict.
// The message is freed before the continuation runs (it may re-enter the
// allocator through the retried request).
func (l1 *L1) applyDecision(m *Msg) {
	if l1.applyCont == nil {
		panic(fmt.Sprintf("coherence: L1 %d stray %v", l1.core, m.Type))
	}
	cont := l1.applyCont
	l1.applyCont = nil
	granted := m.Type == MsgHLGrant
	l1.sys.free(m)
	cont(granted)
}

// fill completes a miss: the l1.fill table settles the transient into its
// stable state (the To column is authoritative — the dispatch result is
// assigned to the entry), and its actions unblock the directory and release
// the CPU and any waiters. A fill for a line in a stable state is a
// declared protocol violation; dispatch panics with the recorded reason.
func (l1 *L1) fill(m *Msg) {
	ms := l1.mshrs.lookup(m.Line)
	if ms == nil {
		panic(fmt.Sprintf("coherence: L1 %d fill without MSHR for line %d", l1.core, m.Line))
	}
	l1.mshrs.remove(m.Line)
	e := l1.arr.Lookup(m.Line)
	if e == nil {
		panic(fmt.Sprintf("coherence: L1 %d fill for uncached line %d", l1.core, m.Line))
	}
	evt := fillDataS
	if m.Type == MsgDataE {
		evt = fillDataE
	}
	e.State = cache.State(l1FillTable.Dispatch(proto.State(e.State), evt,
		l1FillCtx{l1: l1, m: m, e: e, ms: ms}, l1.sys.fired[tblL1Fill]))
}

// fillTxBits applies transactional metadata to a freshly filled line, but
// only if the requesting attempt is still the live one; a post-abort fill
// installs the line non-transactionally.
func (l1 *L1) fillTxBits(ms *mshr, e *cache.Entry) {
	if !ms.txBits || ms.epoch != l1.epoch || !l1.tracking() {
		return
	}
	if ms.write {
		if !e.TxWrite {
			e.TxWrite = true
			l1.Tx.WriteLines++
		}
	} else if !e.TxRead {
		e.TxRead = true
		l1.Tx.ReadLines++
	}
}

// fillUnblock tells the home directory the requester reached a stable state
// (the SS transition of Fig. 3).
func (l1 *L1) fillUnblock(m *Msg) {
	l1.send(Msg{Type: MsgUnblock, Line: m.Line, Dst: l1.sys.HomeBank(m.Line),
		Requester: l1.core, Excl: m.Type == MsgDataE})
}

// fillComplete releases the CPU and any waiters after the L1 access latency.
func (l1 *L1) fillComplete(ms *mshr) {
	l1.sys.Engine.AfterEvent(l1.sys.L1Hit, l1, evL1MshrDone, 0, ms)
}

// rejected handles a withdrawn request (recovery mechanism / signature
// hit): restore the pre-request state and apply the reject policy.
func (l1 *L1) rejected(m *Msg) {
	ms := l1.mshrs.lookup(m.Line)
	if ms == nil {
		panic(fmt.Sprintf("coherence: L1 %d reject without MSHR for line %d", l1.core, m.Line))
	}
	l1.RejectsReceived++
	if l1.sys.Tracer.Enabled(trace.CatConflict) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatConflict, m.Line, "request rejected by %v", m.RejectorMode)
	}
	// Restore the array state from before the request (paper Fig. 2 (7)).
	e := l1.arr.Lookup(m.Line)
	if e != nil && e.State.Transient() {
		if e.State == cache.StoM {
			e.State = cache.Shared // the S copy survived arbitration
		} else {
			e.State = cache.Invalid
			e.TxRead = false
			e.TxWrite = false
		}
	}
	if ms.epoch != l1.epoch {
		// The requesting attempt already aborted; drop the request but let
		// newer waiters re-dispatch.
		l1.resolveParked(ms)
		return
	}
	dec := l1.sys.HTM.Conflict.Rejected(l1.Tx.Mode)
	if t := l1.sys.Telemetry; t != nil {
		// The loser's involvement is its request flavor: the line was being
		// pulled into the read or write set when the rejector defeated it.
		t.Conflict(m.Rejector, l1.core, m.Line, !ms.write, ms.write, dec.Abort)
	}
	if dec.Abort {
		l1.resolveParked(ms)
		l1.abortTx(l1.causeFromRejector(m))
		return
	}
	l1.park(ms, dec.Timeout)
}

// causeFromRejector classifies the abort cause when a rejected transaction
// gives up (SelfAbort policy).
func (l1 *L1) causeFromRejector(m *Msg) htm.AbortCause {
	if m.Line == l1.sys.LockLine {
		return htm.CauseMutex
	}
	return l1.sys.HTM.Conflict.RejectorCause(m.RejectorMode)
}

// park holds a rejected request in the MSHR and schedules a retry after the
// timeout; an earlier wake-up retries sooner.
func (l1 *L1) park(ms *mshr, timeout uint64) {
	l1.mshrs.setParked(ms)
	ms.parkSeq++
	l1.sys.Engine.AfterEvent(timeout, l1, evL1ParkRetry,
		l1.epoch<<32|ms.parkSeq&epochMask, ms)
}

// wakeParked retries every parked request (wake-up message received).
// Iteration is in line order: Go map order is randomized, and the retry
// order assigns event sequence numbers, so it must be deterministic.
func (l1 *L1) wakeParked() {
	for _, ms := range l1.sortedMshrs() {
		if ms.state == mshrParked {
			l1.retry(ms)
		}
	}
}

// sortedMshrs returns the MSHRs in ascending line order, reusing a scratch
// slice so steady-state iteration does not allocate (sort.Slice would box
// its comparator; see TestSortedMshrsNoAlloc). The table's slot order is
// already deterministic (it depends only on the insertion history), but the
// drain order is pinned to line order so it is also self-evidently
// independent of hash layout and growth history. Insertion sort is exact:
// lines are unique table keys and the population is MSHR-sized (a handful).
func (l1 *L1) sortedMshrs() []*mshr {
	s := l1.mshrScratch[:0]
	for _, ms := range l1.mshrs.slots {
		if ms == nil {
			continue
		}
		i := len(s)
		s = append(s, ms)
		for ; i > 0 && s[i-1].line > ms.line; i-- {
			s[i] = s[i-1]
		}
		s[i] = ms
	}
	l1.mshrScratch = s
	return s
}

// retry re-sends a parked request. The array entry was restored on reject,
// so the allocation must be redone.
func (l1 *L1) retry(ms *mshr) {
	if ms.epoch != l1.epoch {
		l1.resolveParked(ms)
		return
	}
	l1.mshrs.setInFlight(ms)
	e := l1.arr.Lookup(ms.line)
	if e != nil && e.State.Valid() {
		if e.State == cache.Shared && ms.write {
			e.State = cache.StoM
			l1.sendReq(ms)
			return
		}
		if !ms.write || e.State != cache.Shared {
			// Someone else's fill (or a racing wake) satisfied us already.
			l1.fillFromLocal(ms, e)
			return
		}
	}
	// Re-allocate a way; the set may have changed since the reject.
	if me := l1.midLookup(ms.line); me != nil && me.State.Valid() {
		l1.mshrs.remove(ms.line)
		// The MSHR is recycled before the promote fires, so the continuation
		// leaves it here — re-wrapped in its guard epoch, since the promote
		// machinery expects a self-guarding closure.
		line, write, done := ms.line, ms.write, l1.guardAt(ms.doneEp, ms.done)
		//lockiller:alloc-ok three-level baseline only; the promote carries two pointers + a flag, which the typed payload cannot hold unboxed
		l1.sys.Engine.After(l1.sys.MidHit, func() { l1.promoteFromMid(line, me, write, done) })
		for _, w := range ms.waiters {
			w()
		}
		l1.freeMshr(ms)
		return
	}
	v := l1.allocateWay(ms.line, ms.write, ms.done, ms.doneEp)
	if v == nil {
		// Diverted to the overflow machinery, which may have synchronously
		// issued a fresh MSHR for the same line (lock-mode signature spill):
		// only drop the table entry if it is still ours.
		if l1.mshrs.lookup(ms.line) == ms {
			l1.mshrs.remove(ms.line)
		}
		for _, w := range ms.waiters {
			w()
		}
		l1.freeMshr(ms)
		return
	}
	st := cache.ItoS
	if ms.write {
		st = cache.ItoM
	}
	l1.arr.Install(v, ms.line, st)
	l1.sendReq(ms)
}

// fillFromLocal completes a parked request that a later access already
// satisfied.
func (l1 *L1) fillFromLocal(ms *mshr, e *cache.Entry) {
	l1.mshrs.remove(ms.line)
	if ms.write {
		if e.State == cache.Exclusive {
			e.State = cache.Modified
		}
		e.Dirty = true
	}
	if ms.txBits && ms.epoch == l1.epoch && l1.tracking() {
		if ms.write && !e.TxWrite {
			e.TxWrite = true
			l1.Tx.WriteLines++
		} else if !ms.write && !e.TxRead {
			e.TxRead = true
			l1.Tx.ReadLines++
		}
	}
	l1.sys.Engine.AfterEvent(l1.sys.L1Hit, l1, evL1MshrDone, 0, ms)
}

// resolveParked drops a dead MSHR, re-dispatching any waiters.
func (l1 *L1) resolveParked(ms *mshr) {
	l1.mshrs.remove(ms.line)
	for _, w := range ms.waiters {
		w()
	}
	l1.freeMshr(ms)
}

// forwarded handles FwdGetS/FwdGetM: the conflict-detection and resolution
// core of the protocol (paper Fig. 4). It classifies the held copy by its
// transactional bits and dispatches through the l1.forward table; conflict
// arbitration, rejection, and the victim abort are the table's guarded rows.
func (l1 *L1) forwarded(m *Msg) {
	e := l1.arr.Peek(m.Line)
	inL1 := e != nil && e.State.Valid()
	if !inL1 {
		e = l1.midLookup(m.Line) // three-level: the middle cache may hold it
		if e != nil && !e.State.Valid() {
			e = nil
		}
	}
	s := fwdNone
	switch {
	case e == nil:
	case e.TxWrite:
		s = fwdTxWrite
	case e.Tx():
		s = fwdTxRead
	default:
		s = fwdPlain
	}
	evt := fwdLoad
	if m.Type == MsgFwdGetM {
		evt = fwdStore
	}
	l1FwdTable.Dispatch(s, evt, l1FwdCtx{l1: l1, m: m, e: e, inL1: inL1}, l1.sys.fired[tblL1Fwd])
}

// nack tells the directory we no longer hold the line (transaction abort or
// eviction race): serve from the LLC and move ownership — the NACK flow of
// Fig. 3.
func (l1 *L1) nack(line mem.Line, requester int) {
	l1.NacksSent++
	l1.send(Msg{Type: MsgNack, Line: line, Dst: l1.sys.HomeBank(line), Requester: requester})
}

// fwdReject withdraws a toxic forwarded request: this transactional owner
// won arbitration and keeps its copy (Fig. 4).
func (l1 *L1) fwdReject(m *Msg) {
	l1.RejectsSent++
	l1.noteRejected(m)
	if l1.sys.Tracer.Enabled(trace.CatConflict) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatConflict, m.Line,
			"reject %v from c%d (own prio %d vs %d)", m.Type, m.Requester, l1.Tx.Priority(), m.Prio)
	}
	l1.sendAfter(l1.arbDelay(), Msg{Type: MsgRejectFwd, Line: m.Line, Dst: l1.sys.HomeBank(m.Line),
		Requester: m.Requester, RejectorMode: l1.Tx.Mode, Rejector: l1.core})
}

// dropAfterConflict invalidates the conflicting line after this owner lost
// arbitration and aborted. The abort drops write-set lines; a conflicting
// line we only read (e.g. an FwdGetM over a TxRead Exclusive line) survives
// it and must be invalidated here — the requester becomes the owner.
func (l1 *L1) dropAfterConflict(e *cache.Entry) {
	if e.State.Valid() {
		e.State = cache.Invalid
		e.Dirty = false
		e.TxRead = false
		e.TxWrite = false
	}
}

// respondForward performs the ordinary ownership transfer / downgrade for a
// non-conflicting forward. The deferred flush path runs after m is recycled,
// so it captures the fields it needs rather than the message.
func (l1 *L1) respondForward(m *Msg, e *cache.Entry, inL1 bool) {
	line, req, getS := m.Line, m.Requester, m.Type == MsgFwdGetS
	if inL1 && l1.midEnabled() {
		// The three-level odd design: flush the line from the L1 to the
		// middle cache before answering — even for plain loads — paying
		// the middle-cache latency and losing the L1 copy (§IV-A).
		mv := *m // value copy: the pooled message is recycled before the flush runs
		//lockiller:alloc-ok three-level baseline only; the deferred forward reply needs the entry, line, requester, and flavor
		l1.sys.Engine.After(l1.sys.MidHit, func() {
			if !e.State.Valid() {
				// The line moved while the flush was in flight (abort).
				l1.nack(line, req)
				return
			}
			if e.TxWrite || (e.Tx() && !getS) {
				// The line joined a transaction during the flush delay, so
				// the no-conflict classification that routed us here is
				// stale. Re-arbitrate as the l1.forward table would have.
				if l1.Tx.InTx() {
					if l1.ownerWins(&mv) {
						l1.fwdReject(&mv)
						return
					}
					l1.abortVictim(&mv, e)
					l1.dropAfterConflict(e)
					l1.nack(line, req)
					return
				}
				// Speculative bits without a live transaction are leftovers
				// of an attempt that already ended; scrub them before the
				// downgrade rather than hand them to the middle cache.
				e.TxRead, e.TxWrite = false, false
			}
			if me := l1.midFlushForForward(e); me != nil {
				l1.forwardRespond(me, line, req, getS)
				return
			}
			// Flush could not place the line; respond in place.
			l1.forwardRespond(e, line, req, getS)
		})
		return
	}
	l1.forwardRespond(e, line, req, getS)
}

// forwardRespond downgrades (FwdGetS) or surrenders (FwdGetM) the held copy
// and ships the owner data to the home bank. A method rather than a closure
// inside respondForward: the two-level synchronous path runs once per
// ownership transfer and must not allocate.
func (l1 *L1) forwardRespond(e *cache.Entry, line mem.Line, req int, getS bool) {
	if getS {
		e.State = cache.Shared
		e.Dirty = false
	} else {
		wasTx := e.Tx()
		e.State = cache.Invalid
		e.Dirty = false
		if wasTx {
			panic("coherence: non-conflicting FwdGetM over a transactional line")
		}
	}
	l1.send(Msg{Type: MsgOwnerData, Line: line, Dst: l1.sys.HomeBank(line), Requester: req})
}

// invalidated handles Inv: either a GetM over sharers or an LLC
// back-invalidation recall (Requester == -1). It classifies the held copy
// and dispatches through the l1.invalidate table.
func (l1 *L1) invalidated(m *Msg) {
	e := l1.arr.Peek(m.Line)
	if e == nil || (!e.State.Valid() && e.State != cache.StoM) {
		e = l1.midLookup(m.Line) // three-level: invalidate the middle-cache copy
		if e != nil && !e.State.Valid() {
			e = nil
		}
	}
	s := invNone
	switch {
	case e == nil:
	case e.Tx() && l1.Tx.InTx():
		s = invTx
	default:
		s = invPlain
	}
	evt := invExternal
	if m.Requester == -1 {
		evt = invRecall
	}
	l1InvTable.Dispatch(s, evt, l1InvCtx{l1: l1, m: m, e: e}, l1.sys.fired[tblL1Inv])
}

// invAckDir acknowledges an invalidation to whichever bank fanned it out —
// the home directory, or a cluster collector in two-level mode (Inv.Src is
// the home bank whenever the directory is flat, so this is the same
// destination the pre-cluster code computed via HomeBank).
func (l1 *L1) invAckDir(m *Msg) {
	l1.send(Msg{Type: MsgInvAck, Line: m.Line, Dst: m.Src, Requester: m.Requester})
}

// invReject keeps this transactional sharer's copy: it won arbitration
// against the invalidating requester. Like invAckDir, the reply returns to
// the fanning bank (home or cluster collector).
func (l1 *L1) invReject(m *Msg) {
	l1.RejectsSent++
	l1.noteRejected(m)
	l1.sendAfter(l1.arbDelay(), Msg{Type: MsgInvReject, Line: m.Line, Dst: m.Src,
		Requester: m.Requester, RejectorMode: l1.Tx.Mode, Rejector: l1.core})
}

// recallOverflow resolves an LLC back-invalidation recall of transactional
// data through the overflow policy (external=true: switchingMode never fires
// on a recall): lock transactions spill the line into the signatures; HTM
// transactions abort with a capacity cause (read-set survivors deliberately
// stay — the directory entry dies with the eviction and tolerates the stale
// copy).
func (l1 *L1) recallOverflow(e *cache.Entry) {
	switch l1.sys.HTM.Overflow.Decide(l1.Tx.Mode, l1.Tx.TriedSwitch, true) {
	case htm.OverflowSpill:
		l1.spillToSignature(e)
	case htm.OverflowAbort:
		l1.abortTx(htm.CauseOverflow)
	default:
		panic(fmt.Sprintf("coherence: L1 %d switch decision on a recall", l1.core))
	}
}

// dropForInv invalidates a line for an Inv, preserving an in-flight
// upgrade's MSHR by demoting StoM to ItoM.
func (l1 *L1) dropForInv(e *cache.Entry) {
	if e.State == cache.StoM {
		e.State = cache.ItoM
		e.TxRead = false
		e.TxWrite = false
		return
	}
	e.State = cache.Invalid
	e.Dirty = false
	e.TxRead = false
	e.TxWrite = false
}

// ownerWins arbitrates a conflict between this (transactional) owner and
// the requester described by the message (Fig. 4's green logic). The
// universal rules are applied here — an irrevocable lock transaction always
// wins, and a non-speculative requester always defeats a speculative owner
// (best-effort HTM's strong isolation) — then the ConflictPolicy decides
// the speculative-vs-speculative case.
func (l1 *L1) ownerWins(m *Msg) bool {
	if l1.Tx.Mode.Lock() {
		return true
	}
	switch m.ReqMode {
	case htm.NonTx, htm.Mutex:
		return false
	}
	return l1.sys.HTM.Conflict.OwnerWins(
		htm.ConflictSide{Mode: l1.Tx.Mode, Prio: l1.Tx.Priority(), Core: l1.core},
		htm.ConflictSide{Mode: m.ReqMode, Prio: m.Prio, Core: m.Requester})
}

// arbDelay is the extra arbitration latency the owner's cache controller
// pays before sending a reject (LosaTM charges one cycle).
func (l1 *L1) arbDelay() uint64 { return l1.sys.HTM.Conflict.ArbDelay() }

// victimCause classifies the abort cause when this transaction loses a
// conflict to the message's requester.
func (l1 *L1) victimCause(m *Msg) htm.AbortCause {
	if m.Line == l1.sys.LockLine {
		return htm.CauseMutex
	}
	return htm.CauseFor(m.ReqMode)
}

// abortVictim aborts this transaction after it lost arbitration to the
// requester in m, recording conflict provenance (winner, loser, line, and
// the victim's read/write-set membership) before the abort flash-clears the
// transactional bits.
func (l1 *L1) abortVictim(m *Msg, e *cache.Entry) {
	if t := l1.sys.Telemetry; t != nil {
		var read, write bool
		if e != nil {
			read, write = e.TxRead, e.TxWrite
		}
		t.Conflict(m.Requester, l1.core, m.Line, read, write, true)
	}
	l1.abortTx(l1.victimCause(m))
}

// noteRejected records the rejected requester for a wake-up at commit or
// abort time. Recording is skipped when the conflict policy says the
// requester will never park waiting for a wake-up.
func (l1 *L1) noteRejected(m *Msg) {
	if !l1.sys.HTM.Conflict.RecordsWake(m.ReqMode) {
		return
	}
	l1.wake.Add(m.Requester)
}

// sendWakes drains the wake-up table (checked at transaction commit and
// abort, paper Fig. 2 (8)).
func (l1 *L1) sendWakes() {
	l1.wake.Drain(func(core int) {
		l1.WakesSent++
		l1.send(Msg{Type: MsgWakeUp, Dst: core})
	})
}

// abortTx flash-clears the transactional state: speculative lines are
// dropped (the directory learns lazily via NACKs), parked requests die,
// rejected requesters are woken, and the CPU is notified to roll back.
func (l1 *L1) abortTx(cause htm.AbortCause) {
	if l1.Tx.Doomed {
		return // already aborting; first cause wins
	}
	if l1.Tx.Mode != htm.HTM {
		panic(fmt.Sprintf("coherence: abort in mode %v", l1.Tx.Mode))
	}
	if l1.sys.Tracer.Enabled(trace.CatTx) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatTx, 0, "abort cause=%v attempt=%d reads=%d writes=%d",
			cause, l1.Tx.Attempt, l1.Tx.ReadLines, l1.Tx.WriteLines)
	}
	l1.Tx.Doom(cause)
	l1.Tx.Mode = htm.NonTx // hardware leaves transactional mode on abort
	l1.epoch++
	l1.arr.ClearTx(true)
	l1.midClearTx(true)
	for _, ms := range l1.sortedMshrs() {
		if ms.state == mshrParked {
			l1.resolveParked(ms)
		}
		// In-flight entries stay: their responses settle the line and
		// unblock the directory; the stale CPU callback is epoch-guarded.
	}
	l1.sendWakes()
	if l1.client != nil {
		l1.client.OnDoom(cause)
	}
}

// AbortLocal aborts the running HTM transaction for a core-internal reason
// (exception, explicit xabort, reject policy).
func (l1 *L1) AbortLocal(cause htm.AbortCause) { l1.abortTx(cause) }

// CommitTx commits the running HTM transaction: transactional metadata is
// flash-cleared (written lines stay valid and dirty) and rejected
// requesters are woken.
func (l1 *L1) CommitTx() {
	if l1.Tx.Mode != htm.HTM {
		panic(fmt.Sprintf("coherence: commit in mode %v", l1.Tx.Mode))
	}
	if l1.sys.Tracer.Enabled(trace.CatTx) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatTx, 0, "commit attempt=%d reads=%d writes=%d",
			l1.Tx.Attempt, l1.Tx.ReadLines, l1.Tx.WriteLines)
	}
	l1.arr.ClearTx(false)
	l1.midClearTx(false)
	l1.Tx.Mode = htm.NonTx
	l1.sendWakes()
	l1.sys.Engine.Progress()
}

// trySwitch runs the switchingMode application (Fig. 6): block external
// requests, ask the LLC arbiter for STL authorization, and either continue
// as a lock transaction or abort with the capacity cause.
func (l1 *L1) trySwitch(retry func()) {
	l1.SwitchTries++
	l1.Tx.TriedSwitch = true
	l1.applying = true
	ep := l1.epoch
	l1.applyCont = func(granted bool) {
		l1.applying = false
		blocked := l1.blockedExt
		l1.blockedExt = nil
		switch {
		case l1.epoch != ep:
			// The transaction died while applying (e.g. a rejected request
			// self-aborted). Give back a granted authorization.
			if granted {
				l1.send(Msg{Type: MsgHLRelease, Dst: l1.sys.ArbiterTile, Requester: l1.core})
			}
		case granted:
			l1.SwitchGrants++
			if l1.sys.Tracer.Enabled(trace.CatHTMLock) {
				l1.sys.Tracer.Emit(l1.core, trace.CatHTMLock, 0, "switchingMode granted: now STL")
			}
			l1.Tx.Mode = htm.STL
			retry()
		default:
			if l1.sys.Tracer.Enabled(trace.CatHTMLock) {
				l1.sys.Tracer.Emit(l1.core, trace.CatHTMLock, 0, "switchingMode denied")
			}
			l1.abortTx(htm.CauseOverflow)
		}
		for _, b := range blocked {
			l1.Receive(b)
		}
	}
	l1.send(Msg{Type: MsgHLApply, Dst: l1.sys.ArbiterTile, Requester: l1.core, ReqMode: htm.STL})
}

// HLBegin enters HTMLock (TL) mode: the caller already holds the fallback
// lock; the LLC arbiter is consulted so a live STL transaction is waited
// out (paper §III-C). done runs once authorization is held.
func (l1 *L1) HLBegin(done func()) {
	if l1.sys.Arbiter == nil {
		panic("coherence: HLBegin without HTMLock")
	}
	if l1.applyCont != nil {
		panic("coherence: HLBegin while an application is outstanding")
	}
	l1.applyCont = func(granted bool) {
		if !granted {
			panic("coherence: TL application denied")
		}
		done()
	}
	l1.send(Msg{Type: MsgHLApply, Dst: l1.sys.ArbiterTile, Requester: l1.core, ReqMode: htm.TL})
}

// HLEnd leaves HTMLock mode (hlend): transactional metadata is cleared
// with written lines kept (a lock transaction is irrevocable, its stores
// are real), the LLC signatures are cleared, and signature-rejected cores
// are woken by the arbiter.
func (l1 *L1) HLEnd() {
	if !l1.Tx.Mode.Lock() {
		panic(fmt.Sprintf("coherence: HLEnd in mode %v", l1.Tx.Mode))
	}
	if l1.sys.Tracer.Enabled(trace.CatHTMLock) {
		l1.sys.Tracer.Emitf(l1.core, trace.CatHTMLock, 0, "hlend from %v reads=%d writes=%d",
			l1.Tx.Mode, l1.Tx.ReadLines, l1.Tx.WriteLines)
	}
	l1.arr.ClearTx(false)
	l1.midClearTx(false)
	l1.Tx.Mode = htm.NonTx
	l1.sendWakes()
	l1.send(Msg{Type: MsgHLRelease, Dst: l1.sys.ArbiterTile, Requester: l1.core})
	l1.sys.Engine.Progress()
}
