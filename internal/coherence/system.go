package coherence

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Params are the machine parameters of Table I. Sizes are per-structure
// totals in bytes; the LLC is split evenly across one bank per tile.
type Params struct {
	Cores          int
	MeshW, MeshH   int
	L1Size, L1Ways int
	LLCSize        int
	LLCWays        int
	// MidSize/MidWays, when non-zero, add a private middle cache per tile
	// and switch the node to the MESI-Three-Level-HTM organization the
	// paper replaced (see midcache.go).
	MidSize, MidWays int
	L1Hit            uint64 // L1 hit latency (cycles)
	MidHit           uint64 // middle-cache access latency (three-level only)
	LLCHit           uint64 // LLC data access latency
	DirLatency       uint64 // directory decision latency for control replies
	MemLatency       uint64 // main memory access latency
	NoC              noc.Config
}

// DefaultParams mirrors Table I: 32 in-order cores on a 4x8 mesh, 32KB
// 4-way L1s, 8MB 16-way shared LLC, 100-cycle memory.
func DefaultParams() Params {
	return Params{
		Cores: 32, MeshW: 4, MeshH: 8,
		L1Size: 32 * 1024, L1Ways: 4,
		LLCSize: 8 * 1024 * 1024, LLCWays: 16,
		L1Hit: 2, MidHit: 6, LLCHit: 12, DirLatency: 2, MemLatency: 100,
		NoC: noc.DefaultConfig(),
	}
}

// Validate panics on inconsistent parameters.
func (p Params) Validate() {
	if p.Cores <= 0 || p.Cores > 64 {
		panic(fmt.Sprintf("coherence: unsupported core count %d", p.Cores))
	}
	if p.MeshW*p.MeshH != p.Cores {
		panic(fmt.Sprintf("coherence: mesh %dx%d does not match %d cores",
			p.MeshW, p.MeshH, p.Cores))
	}
	if p.LLCSize%(p.Cores) != 0 {
		panic("coherence: LLC size must divide evenly across banks")
	}
}

// System is the assembled memory subsystem: one L1 and one LLC bank per
// tile, connected by the mesh, plus the HTMLock arbiter when enabled.
type System struct {
	Params
	HTM     htm.Config
	Engine  *sim.Engine
	Net     *noc.Network
	L1s     []*L1
	Banks   []*Bank
	Arbiter *htm.Arbiter
	// Tracer, when non-nil, records protocol events (see internal/trace).
	Tracer *trace.Tracer
	// ArbiterTile hosts the centralized HTMLock arbiter.
	ArbiterTile int
	// LockLine is the fallback lock's cache line, used to classify
	// subscription aborts as mutex-caused.
	LockLine mem.Line
}

// NewSystem builds the memory subsystem for the given machine and HTM
// configuration.
func NewSystem(engine *sim.Engine, p Params, hc htm.Config) *System {
	p.Validate()
	hc = hc.Defaults()
	hc.Validate()
	mesh := topology.NewMesh(p.MeshW, p.MeshH)
	sys := &System{
		Params:   p,
		HTM:      hc,
		Engine:   engine,
		Net:      noc.New(engine, mesh, p.NoC),
		LockLine: mem.Line(0),
	}
	if hc.HTMLock {
		sys.Arbiter = htm.NewArbiter(hc.SignatureBits)
		sys.Arbiter.SendWake = func(core int) {
			sys.route(&Msg{Type: MsgWakeUp, Src: sys.ArbiterTile, Dst: core})
		}
	}
	bankSize := p.LLCSize / p.Cores
	for i := 0; i < p.Cores; i++ {
		sys.Banks = append(sys.Banks, newBank(sys, i, bankSize, p.LLCWays))
	}
	for i := 0; i < p.Cores; i++ {
		sys.L1s = append(sys.L1s, newL1(sys, i))
	}
	return sys
}

// HomeBank returns the bank id a line maps to under line interleaving.
func (s *System) HomeBank(l mem.Line) int { return l.Bank(s.Cores) }

// route delivers a message over the NoC. Requests, forwards, data, and
// responses are addressed by tile; whether the L1 or the bank consumes the
// message is determined by its type.
func (s *System) route(m *Msg) {
	dst := m.Dst
	s.Net.Send(m.Src, dst, m.Type.Flits(), func() {
		if m.toBank() {
			s.Banks[dst].Receive(m)
		} else {
			s.L1s[dst].Receive(m)
		}
	})
}

// toBank reports whether the message type is consumed by a directory bank.
func (m *Msg) toBank() bool {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgTxWB,
		MsgOwnerData, MsgNack, MsgRejectFwd, MsgInvAck, MsgInvReject,
		MsgUnblock, MsgHLApply, MsgHLRelease, MsgSigAdd:
		return true
	}
	return false
}
