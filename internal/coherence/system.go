package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Params are the machine parameters of Table I. Sizes are per-structure
// totals in bytes; the LLC is split evenly across one bank per tile.
type Params struct {
	Cores int
	// Topo selects the interconnect shape: "" or "mesh" (Table I), "torus"
	// (wraparound X-Y), or "cmesh" (Conc tiles per router). MeshW×MeshH is
	// the router grid; Cores must equal MeshW*MeshH (mesh, torus) or
	// MeshW*MeshH*Conc (cmesh).
	Topo         string
	MeshW, MeshH int
	Conc         int // tiles per router (cmesh only; 0 reads as 1)
	// ClusterSize, when >0 and < Cores, enables the two-level directory:
	// invalidation fanout for a line is delegated to one collector bank per
	// cluster of ClusterSize consecutive tiles (see cluster.go). Must
	// divide Cores. 0 keeps the paper's flat directory.
	ClusterSize    int
	L1Size, L1Ways int
	LLCSize        int
	LLCWays        int
	// MidSize/MidWays, when non-zero, add a private middle cache per tile
	// and switch the node to the MESI-Three-Level-HTM organization the
	// paper replaced (see midcache.go).
	MidSize, MidWays int
	L1Hit            uint64 // L1 hit latency (cycles)
	MidHit           uint64 // middle-cache access latency (three-level only)
	LLCHit           uint64 // LLC data access latency
	DirLatency       uint64 // directory decision latency for control replies
	MemLatency       uint64 // main memory access latency
	NoC              noc.Config
}

// DefaultParams mirrors Table I: 32 in-order cores on a 4x8 mesh, 32KB
// 4-way L1s, 8MB 16-way shared LLC, 100-cycle memory.
func DefaultParams() Params {
	return Params{
		Cores: 32, MeshW: 4, MeshH: 8,
		L1Size: 32 * 1024, L1Ways: 4,
		LLCSize: 8 * 1024 * 1024, LLCWays: 16,
		L1Hit: 2, MidHit: 6, LLCHit: 12, DirLatency: 2, MemLatency: 100,
		NoC: noc.DefaultConfig(),
	}
}

// MaxCores is the scaling ceiling (DESIGN.md §13). The sharer sets,
// topologies, and two-level directory are all sized for it.
const MaxCores = 1024

// Validate panics on inconsistent parameters.
func (p Params) Validate() {
	if p.Cores <= 0 || p.Cores > MaxCores {
		panic(fmt.Sprintf("coherence: unsupported core count %d", p.Cores))
	}
	conc := p.Conc
	if conc == 0 {
		conc = 1
	}
	if p.Topo != "cmesh" {
		conc = 1
	}
	if p.MeshW*p.MeshH*conc != p.Cores {
		panic(fmt.Sprintf("coherence: %s %dx%d (conc %d) does not match %d cores",
			p.topoKind(), p.MeshW, p.MeshH, conc, p.Cores))
	}
	if p.LLCSize%(p.Cores) != 0 {
		panic("coherence: LLC size must divide evenly across banks")
	}
	if p.ClusterSize > 0 {
		if p.Cores%p.ClusterSize != 0 {
			panic(fmt.Sprintf("coherence: cluster size %d does not divide %d cores",
				p.ClusterSize, p.Cores))
		}
		if p.ClusterSize > 64 {
			panic(fmt.Sprintf("coherence: cluster size %d exceeds the 64-core Mask width",
				p.ClusterSize))
		}
	}
}

// topoKind normalizes the Topo field ("" means the Table I mesh).
func (p Params) topoKind() string {
	if p.Topo == "" {
		return "mesh"
	}
	return p.Topo
}

// topology builds the configured interconnect shape.
func (p Params) topology() topology.Topology {
	conc := p.Conc
	if conc == 0 {
		conc = 1
	}
	t, err := topology.New(p.topoKind(), p.MeshW, p.MeshH, conc)
	if err != nil {
		panic("coherence: " + err.Error())
	}
	return t
}

// System is the assembled memory subsystem: one L1 and one LLC bank per
// tile, connected by the mesh, plus the HTMLock arbiter when enabled.
//lockiller:shared-state
type System struct {
	Params
	HTM     htm.Config
	Engine  *sim.Engine
	Net     *noc.Network
	L1s     []*L1
	Banks   []*Bank
	Arbiter *htm.Arbiter
	// Tracer, when non-nil, records protocol events (see internal/trace).
	Tracer *trace.Tracer
	// Telemetry, when non-nil, receives conflict-provenance records (see
	// internal/telemetry). Hot-path hook sites must nil-check it.
	Telemetry *telemetry.Telemetry
	// ArbiterTile hosts the centralized HTMLock arbiter.
	ArbiterTile int
	// LockLine is the fallback lock's cache line, used to classify
	// subscription aborts as mutex-caused.
	LockLine mem.Line

	// msgFree is the protocol-message free list. The engine is single-
	// threaded, so no locking: a message is allocated when sent, handed
	// through the NoC as a typed event payload, and recycled by its final
	// consumer (see the ownership rules on alloc).
	msgFree []*Msg

	// fired holds the per-transition fired counters of every protocol table
	// (indexed by the tbl* constants in tables.go); TransitionProfile turns
	// them into the heat profile lockillersim -transitions dumps.
	fired [tblCount][]uint64
}

// NewSystem builds the memory subsystem for the given machine and HTM
// configuration.
func NewSystem(engine *sim.Engine, p Params, hc htm.Config) *System {
	p.Validate()
	hc = hc.Defaults()
	hc.Validate()
	sys := &System{
		Params:   p,
		HTM:      hc,
		Engine:   engine,
		Net:      noc.New(engine, p.topology(), p.NoC),
		LockLine: mem.Line(0),
		fired:    newFiredCounters(),
	}
	if hc.HTMLock {
		sys.Arbiter = htm.NewArbiter(hc.SignatureBits)
		sys.Arbiter.SendWake = func(core int) {
			sys.send(Msg{Type: MsgWakeUp, Src: sys.ArbiterTile, Dst: core})
		}
	}
	bankSize := p.LLCSize / p.Cores
	// One bump arena backs every cache array of the machine — bank slices,
	// L1s, and (three-level) middle caches — so constructing a machine costs
	// one large line allocation instead of two or three per tile.
	arena := cache.NewArena(p.Cores * (cache.LinesFor(bankSize) +
		cache.LinesFor(p.L1Size) + cache.LinesFor(p.MidSize)))
	for i := 0; i < p.Cores; i++ {
		sys.Banks = append(sys.Banks, newBank(sys, i, bankSize, p.LLCWays, arena))
	}
	for i := 0; i < p.Cores; i++ {
		sys.L1s = append(sys.L1s, newL1(sys, i, arena))
	}
	return sys
}

// Reset returns the memory subsystem to its just-constructed state in
// place: every cache array, directory, MSHR table, arbiter, NoC link, and
// stat restarts as if NewSystem had just run, while warm capacity — array
// backings, table slots, and the free lists (protocol messages, MSHRs,
// pending trackers, dirLine slabs) — survives to be reused by the next run.
// The caller must guarantee no run is in progress: no live protocol
// messages, no busy directory lines, and no pending events (the engine is
// reset separately by the machine layer, which also swaps the Tracer and
// Telemetry sinks for the next run).
func (s *System) Reset() {
	s.Net.Reset()
	if s.Arbiter != nil {
		s.Arbiter.Reset()
	}
	for _, b := range s.Banks {
		b.reset()
	}
	for _, l1 := range s.L1s {
		l1.reset()
	}
	for i := range s.fired {
		c := s.fired[i]
		for j := range c {
			c[j] = 0
		}
	}
}

// HomeBank returns the bank id a line maps to under line interleaving.
func (s *System) HomeBank(l mem.Line) int { return l.Bank(s.Cores) }

// Typed-event kinds handled by System.OnEvent.
const (
	evDeliver uint8 = iota // p = *Msg: the NoC delivered it; hand to the consumer
	evSend                 // p = *Msg: a delayed send matured; route it now
)

// EventTile implements sim.EventOwner for the sharded engine: a delivery
// belongs to the tile consuming the message, a delayed send to the tile
// injecting it. Both are routing facts of the message itself, so ownership
// is independent of which tile's event scheduled it.
func (s *System) EventTile(kind uint8, _ uint64, p any) int {
	m := p.(*Msg)
	if kind == evSend {
		return m.Src
	}
	return m.Dst
}

// ProbeClass implements sim.ProbeClasser for self-profiler reports.
func (s *System) ProbeClass() string { return "noc" }

// OnEvent implements sim.Handler for NoC deliveries and delayed sends.
func (s *System) OnEvent(kind uint8, _ uint64, p any) {
	switch kind {
	case evDeliver:
		m := p.(*Msg)
		if m.toBank() {
			s.Banks[m.Dst].Receive(m) //lockiller:owner-dispatch EventTile returned m.Dst for evDeliver
		} else {
			s.L1s[m.Dst].Receive(m) //lockiller:owner-dispatch EventTile returned m.Dst for evDeliver
		}
	case evSend:
		s.route(p.(*Msg))
	}
}

// alloc returns a recycled (or fresh) message. Ownership rules: whoever is
// handed a *Msg owns it and must either store it (directory queue, MSHR
// park list, pending-request slot — ownership moves to the store) or free
// it when done. Deferred work must never read a message after its owner
// freed it; delayed responses are therefore constructed eagerly and
// scheduled as evSend payloads.
func (s *System) alloc() *Msg {
	if n := len(s.msgFree); n > 0 {
		m := s.msgFree[n-1]
		s.msgFree = s.msgFree[:n-1]
		return m
	}
	return new(Msg)
}

// free recycles a consumed message. Double frees corrupt simulations
// silently, so they are checked and fatal.
func (s *System) free(m *Msg) {
	if m.recycled {
		panic(fmt.Sprintf("coherence: double free of %v for line %d", m.Type, m.Line))
	}
	m.recycled = true
	s.msgFree = append(s.msgFree, m)
}

// send routes a fully-formed message value through a pooled allocation.
func (s *System) send(v Msg) {
	m := s.alloc()
	*m = v
	s.route(m)
}

// sendAfter routes v after d cycles (directory decision and LLC access
// latencies). The message is materialized now so the caller's request
// message can be recycled immediately.
func (s *System) sendAfter(d uint64, v Msg) {
	m := s.alloc()
	*m = v
	s.Engine.AfterEvent(d, s, evSend, 0, m)
}

// route delivers a message over the NoC. Requests, forwards, data, and
// responses are addressed by tile; whether the L1 or the bank consumes the
// message is determined by its type.
func (s *System) route(m *Msg) {
	s.Net.SendEvent(m.Src, m.Dst, m.Type.Flits(), s, evDeliver, 0, m)
}

// toBank reports whether the message type is consumed by a directory bank.
// This is routing, not protocol: the split mirrors the bankBound/l1Bound
// partition the tables declare, and the membership test has no state axis,
// so it stays a raw switch.
func (m *Msg) toBank() bool {
	//lockiller:rawdispatch routing predicate, not a protocol decision; partition is cross-checked by TestMsgRoutingMatchesTables
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgTxWB,
		MsgOwnerData, MsgNack, MsgRejectFwd, MsgInvAck, MsgInvReject,
		MsgUnblock, MsgHLApply, MsgHLRelease, MsgSigAdd,
		MsgClInv, MsgClInvDone:
		return true
	}
	return false
}
