package proto

import "testing"

// BenchmarkProtocolDispatch measures the table-dispatch overhead that PR 3
// put on every protocol message: a dense index lookup, a guard scan, and
// the fired-counter bump. The fixture mirrors the real tables' shape (a
// guarded row ahead of the terminal row, two actions). This must stay in
// the low-ns, zero-alloc range — the full-simulator budget per message is
// three orders of magnitude larger.
func BenchmarkProtocolDispatch(b *testing.B) {
	var n uint64
	bump := Action[*uint64]{Name: "bump", Do: func(c *uint64) { *c++ }}
	tb := New("bench", []string{"idle", "busy"}, []string{"req", "ack"},
		[]Transition[*uint64]{
			{From: stIdle, On: evReq,
				Guard:   Guard[*uint64]{Name: "odd", Ok: func(c *uint64) bool { return *c&1 == 1 }},
				Actions: []Action[*uint64]{bump}, To: stBusy},
			{From: stIdle, On: evReq, Actions: []Action[*uint64]{bump, bump}, To: stIdle},
			{From: stBusy, On: evReq, Actions: []Action[*uint64]{bump}, To: stBusy},
			{From: Any, On: evAck, Actions: []Action[*uint64]{bump}, To: Same},
		}, nil)
	fired := tb.NewCounters()
	b.ReportAllocs()
	b.ResetTimer()
	s := stIdle
	for i := 0; i < b.N; i++ {
		s = tb.Dispatch(s, Event(i&1), &n, fired)
	}
	_ = s
}
