// Package proto is a declarative transition engine for the coherence
// controllers: each controller expresses its protocol as a table of
// (state × event → guard, actions, next-state) rows, in the style of gem5's
// SLICC, instead of ad-hoc switch bodies. The engine buys three things the
// fused switches could not:
//
//   - exhaustiveness checking: Validate proves every reachable (state,
//     event) pair is handled by exactly one matching transition and flags
//     transitions that can never fire (see TestProtocolTablesComplete);
//   - observability: every dispatch bumps a per-transition fired counter,
//     so a run can dump a transition heat profile (lockillersim
//     -transitions);
//   - documentation: Doc renders each table as a markdown state table
//     (cmd/protodoc, DESIGN.md §8).
//
// Dispatch is deliberately boring — a dense index lookup plus a first-match
// guard scan — because it sits on the simulator's message hot path. It
// allocates nothing and consumes no simulated time; actions are small named
// methods on the existing controllers, so the pooling and typed-event rules
// (DESIGN.md §7) are untouched.
package proto

import (
	"fmt"
	"strings"
)

// State is a controller-local state code. Tables number their states
// densely from 0; the two sentinel values live at the top of the range.
type State uint8

// Event is a controller-local event code (usually a coherence.MsgType,
// but tables may define their own event spaces — e.g. load/store).
type Event uint8

const (
	// Any is a wildcard From state: the transition applies in every state
	// of the table (it is indexed under each, but counts as one row).
	Any State = 0xFF
	// Same is a wildcard To state: the transition leaves state selection
	// to its actions (controllers whose state is derived from their own
	// fields — busy flags, pending slots — declare Same and stay
	// authoritative).
	Same State = 0xFE
)

// Guard is a named predicate on the dispatch context. Guards must be free
// of side effects: they may run several times per dispatch (once per
// candidate transition) and appear verbatim in the generated docs.
type Guard[C any] struct {
	Name string
	Ok   func(c C) bool
}

// Action is one named protocol step. Actions run in declaration order once
// their transition matches.
type Action[C any] struct {
	Name string
	Do   func(c C)
}

// Transition is one row of a protocol table: in state From, on event On,
// when Guard holds (a zero Guard always holds), run Actions and move to To.
type Transition[C any] struct {
	From    State
	On      Event
	Guard   Guard[C]
	Actions []Action[C]
	To      State
}

// Impossible declares a (state, event) pair that must never occur — a
// protocol violation. Validate requires every pair to be either handled or
// declared impossible; Dispatch panics on a declared-impossible pair with
// the recorded reason.
type Impossible struct {
	From State
	On   Event
	Why  string
}

// Table is a compiled protocol table. Tables are immutable after
// construction and safe to share across controllers and simulations;
// per-run fired counters are kept outside the table (see NewCounters).
type Table[C any] struct {
	name        string
	states      []string
	events      []string
	transitions []Transition[C]
	index       [][]int32 // state*len(events)+event → transition indices, in declaration order
	impossible  []string  // reason per (state,event) slot; "" = not declared
}

// New compiles a table. The states and events slices give the dense name
// spaces (their indices are the State/Event codes); transitions are kept in
// declaration order, which is also guard-evaluation order at dispatch time.
// New panics on out-of-range codes — table shape errors are programming
// errors, caught at package init.
func New[C any](name string, states, events []string, transitions []Transition[C], impossible []Impossible) *Table[C] {
	t := &Table[C]{
		name:        name,
		states:      states,
		events:      events,
		transitions: transitions,
		index:       make([][]int32, len(states)*len(events)),
		impossible:  make([]string, len(states)*len(events)),
	}
	for i := range transitions {
		tr := &transitions[i]
		if int(tr.On) >= len(events) {
			panic(fmt.Sprintf("proto: %s: transition %d event %d out of range", name, i, tr.On))
		}
		if tr.To != Same && int(tr.To) >= len(states) {
			panic(fmt.Sprintf("proto: %s: transition %d To state %d out of range", name, i, tr.To))
		}
		froms := []State{tr.From}
		if tr.From == Any {
			froms = froms[:0]
			for s := range states {
				froms = append(froms, State(s))
			}
		} else if int(tr.From) >= len(states) {
			panic(fmt.Sprintf("proto: %s: transition %d From state %d out of range", name, i, tr.From))
		}
		for _, s := range froms {
			slot := int(s)*len(events) + int(tr.On)
			t.index[slot] = append(t.index[slot], int32(i))
		}
	}
	for _, im := range impossible {
		if int(im.From) >= len(states) || int(im.On) >= len(events) {
			panic(fmt.Sprintf("proto: %s: impossible pair (%d,%d) out of range", name, im.From, im.On))
		}
		why := im.Why
		if why == "" {
			why = "declared impossible"
		}
		t.impossible[int(im.From)*len(events)+int(im.On)] = why
	}
	return t
}

// Name returns the table's name.
func (t *Table[C]) Name() string { return t.name }

// Len returns the number of transitions (the required counter-slice length).
func (t *Table[C]) Len() int { return len(t.transitions) }

// NewCounters returns a zeroed fired-counter slice sized for this table.
// Counters are per-simulation (a System owns one slice per table) so
// concurrent harness runs never share mutable state.
func (t *Table[C]) NewCounters() []uint64 { return make([]uint64, len(t.transitions)) }

// Dispatch runs the first transition matching (s, e): guards are evaluated
// in declaration order and the first that holds fires — its counter in
// fired is bumped (when fired is non-nil) and its actions run in order.
// The declared To state is returned (Same resolves to s). A dispatch with
// no matching transition is a protocol violation and panics.
func (t *Table[C]) Dispatch(s State, e Event, c C, fired []uint64) State {
	for _, ti := range t.index[int(s)*len(t.events)+int(e)] {
		tr := &t.transitions[ti]
		if tr.Guard.Ok != nil && !tr.Guard.Ok(c) {
			continue
		}
		if fired != nil {
			fired[ti]++
		}
		for i := range tr.Actions {
			tr.Actions[i].Do(c)
		}
		if tr.To == Same {
			return s
		}
		return tr.To
	}
	if why := t.impossible[int(s)*len(t.events)+int(e)]; why != "" {
		panic(fmt.Sprintf("proto: %s: impossible (%s, %s): %s",
			t.name, t.states[s], t.events[e], why))
	}
	panic(fmt.Sprintf("proto: %s: no transition for (%s, %s)",
		t.name, t.states[s], t.events[e]))
}

// Validate checks the table for completeness and reachability:
//
//   - every (state, event) pair must either end its transition chain with
//     an unguarded (always-matching) transition or be declared impossible;
//   - a pair may not be both handled and declared impossible;
//   - a transition indexed after an unguarded one for the same pair can
//     never fire and is flagged as unreachable;
//   - a pair whose chain is all-guarded may fall through to a panic at
//     runtime and is flagged as incomplete.
//
// The returned errors are in deterministic (state-major) order.
func (t *Table[C]) Validate() []error {
	var errs []error
	for s := range t.states {
		for e := range t.events {
			slot := s*len(t.events) + e
			chain := t.index[slot]
			why := t.impossible[slot]
			if len(chain) == 0 {
				if why == "" {
					errs = append(errs, fmt.Errorf("proto: %s: unhandled pair (%s, %s)",
						t.name, t.states[s], t.events[e]))
				}
				continue
			}
			if why != "" {
				errs = append(errs, fmt.Errorf("proto: %s: pair (%s, %s) both handled and declared impossible (%s)",
					t.name, t.states[s], t.events[e], why))
			}
			terminal := -1
			for i, ti := range chain {
				if terminal >= 0 {
					errs = append(errs, fmt.Errorf("proto: %s: transition %q for (%s, %s) is unreachable (shadowed by unguarded %q)",
						t.name, t.label(int(ti)), t.states[s], t.events[e], t.label(int(chain[terminal]))))
					continue
				}
				if t.transitions[ti].Guard.Ok == nil {
					terminal = i
				}
			}
			if terminal < 0 {
				errs = append(errs, fmt.Errorf("proto: %s: pair (%s, %s) has only guarded transitions and may fall through",
					t.name, t.states[s], t.events[e]))
			}
		}
	}
	return errs
}

// label names transition i for diagnostics: its guard if named, else its
// first action, else its index.
func (t *Table[C]) label(i int) string {
	tr := &t.transitions[i]
	if tr.Guard.Name != "" {
		return tr.Guard.Name
	}
	if len(tr.Actions) > 0 {
		return tr.Actions[0].Name
	}
	return fmt.Sprintf("#%d", i)
}

// --- documentation & profiling views ---------------------------------------

// TransitionDoc is the type-erased view of one transition, used by the doc
// generator and the heat profile.
type TransitionDoc struct {
	From    string
	On      string
	Guard   string // "" when unguarded
	Actions []string
	To      string // "·" when Same (state left to the actions)
}

// ImpossibleDoc is the type-erased view of one declared-impossible pair.
type ImpossibleDoc struct {
	From, On, Why string
}

// Doc is the type-erased view of a whole table.
type Doc struct {
	Name        string
	States      []string
	Events      []string
	Transitions []TransitionDoc
	Impossible  []ImpossibleDoc
}

// Doc returns the table's documentation view, transitions in declaration
// order (= dispatch guard order).
func (t *Table[C]) Doc() Doc {
	d := Doc{Name: t.name, States: t.states, Events: t.events}
	for i := range t.transitions {
		tr := &t.transitions[i]
		td := TransitionDoc{
			From:  "any",
			On:    t.events[tr.On],
			Guard: tr.Guard.Name,
			To:    "·",
		}
		if tr.From != Any {
			td.From = t.states[tr.From]
		}
		if tr.To != Same {
			td.To = t.states[tr.To]
		}
		for _, a := range tr.Actions {
			td.Actions = append(td.Actions, a.Name)
		}
		d.Transitions = append(d.Transitions, td)
	}
	for s := range t.states {
		for e := range t.events {
			if why := t.impossible[s*len(t.events)+e]; why != "" {
				d.Impossible = append(d.Impossible, ImpossibleDoc{
					From: t.states[s], On: t.events[e], Why: why,
				})
			}
		}
	}
	return d
}

// Markdown renders the doc as a markdown state table: one row per
// transition, in dispatch order, followed by the declared-impossible pairs.
func (d Doc) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Table `%s`\n\n", d.Name)
	fmt.Fprintf(&b, "States: %s. Events: %s.\n\n",
		strings.Join(d.States, ", "), strings.Join(d.Events, ", "))
	b.WriteString("| From | On | Guard | Actions | To |\n|---|---|---|---|---|\n")
	for _, tr := range d.Transitions {
		guard := tr.Guard
		if guard == "" {
			guard = "—"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			tr.From, tr.On, guard, strings.Join(tr.Actions, ", "), tr.To)
	}
	if len(d.Impossible) > 0 {
		b.WriteString("\nProtocol violations (dispatch panics):\n\n")
		b.WriteString("| From | On | Why |\n|---|---|---|\n")
		for _, im := range d.Impossible {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", im.From, im.On, im.Why)
		}
	}
	return b.String()
}
