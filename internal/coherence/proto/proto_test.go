package proto

import (
	"strings"
	"testing"
)

// testCtx is the dispatch context of the fixture table: a tiny two-state
// controller whose actions append to a log.
type testCtx struct {
	log  *[]string
	open bool
}

func logAct(name string) Action[testCtx] {
	return Action[testCtx]{Name: name, Do: func(c testCtx) { *c.log = append(*c.log, name) }}
}

const (
	stIdle State = iota
	stBusy
)

const (
	evReq Event = iota
	evAck
	evPing
)

var (
	testStates = []string{"idle", "busy"}
	testEvents = []string{"req", "ack", "ping"}
)

func fixture() *Table[testCtx] {
	return New("fixture", testStates, testEvents,
		[]Transition[testCtx]{
			{From: stIdle, On: evReq,
				Guard:   Guard[testCtx]{Name: "open", Ok: func(c testCtx) bool { return c.open }},
				Actions: []Action[testCtx]{logAct("serve")}, To: stBusy},
			{From: stIdle, On: evReq, Actions: []Action[testCtx]{logAct("refuse")}, To: stIdle},
			{From: stBusy, On: evReq, Actions: []Action[testCtx]{logAct("queue")}, To: stBusy},
			{From: stBusy, On: evAck, Actions: []Action[testCtx]{logAct("finish"), logAct("drain")}, To: stIdle},
			{From: Any, On: evPing, Actions: []Action[testCtx]{logAct("pong")}, To: Same},
		},
		[]Impossible{
			{From: stIdle, On: evAck, Why: "ack without a pending request"},
		})
}

func TestDispatchFirstMatchAndCounters(t *testing.T) {
	tb := fixture()
	fired := tb.NewCounters()
	var log []string

	// Guard fails → fall through to the unguarded refuse row.
	if got := tb.Dispatch(stIdle, evReq, testCtx{log: &log, open: false}, fired); got != stIdle {
		t.Fatalf("closed req → state %d, want idle", got)
	}
	// Guard holds → first row fires, To applied.
	if got := tb.Dispatch(stIdle, evReq, testCtx{log: &log, open: true}, fired); got != stBusy {
		t.Fatalf("open req → state %d, want busy", got)
	}
	// Multi-action row runs actions in order.
	tb.Dispatch(stBusy, evAck, testCtx{log: &log}, fired)
	// Wildcard From + Same To.
	if got := tb.Dispatch(stBusy, evPing, testCtx{log: &log}, fired); got != stBusy {
		t.Fatalf("ping in busy → state %d, want busy (Same)", got)
	}

	want := []string{"refuse", "serve", "finish", "drain", "pong"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Fatalf("action log = %v, want %v", log, want)
	}
	wantFired := []uint64{1, 1, 0, 1, 1}
	for i, n := range wantFired {
		if fired[i] != n {
			t.Fatalf("fired[%d] = %d, want %d (all: %v)", i, fired[i], n, fired)
		}
	}
}

func TestDispatchNilCounters(t *testing.T) {
	tb := fixture()
	var log []string
	tb.Dispatch(stIdle, evPing, testCtx{log: &log}, nil) // must not panic
}

func TestDispatchPanicsOnImpossible(t *testing.T) {
	tb := fixture()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("dispatching a declared-impossible pair did not panic")
		}
		if !strings.Contains(r.(string), "ack without a pending request") {
			t.Fatalf("panic %q does not carry the declared reason", r)
		}
	}()
	var log []string
	tb.Dispatch(stIdle, evAck, testCtx{log: &log}, nil)
}

func TestValidateCompleteTable(t *testing.T) {
	if errs := fixture().Validate(); len(errs) != 0 {
		t.Fatalf("complete table reported errors: %v", errs)
	}
}

func TestValidateFindsHoles(t *testing.T) {
	broken := New("broken", testStates, testEvents,
		[]Transition[testCtx]{
			// Guarded-only chain: may fall through.
			{From: stIdle, On: evReq,
				Guard: Guard[testCtx]{Name: "open", Ok: func(c testCtx) bool { return c.open }}},
			// Unguarded then another row: the second is unreachable.
			{From: stBusy, On: evAck, Actions: []Action[testCtx]{logAct("finish")}},
			{From: stBusy, On: evAck,
				Guard:   Guard[testCtx]{Name: "late", Ok: func(c testCtx) bool { return true }},
				Actions: []Action[testCtx]{logAct("never")}},
			// Handled AND declared impossible below.
			{From: stBusy, On: evReq, Actions: []Action[testCtx]{logAct("queue")}},
		},
		[]Impossible{
			{From: stBusy, On: evReq, Why: "clash"},
		})
	// Expected findings: idle/req guarded-only; idle/ack, idle/ping,
	// busy/ping unhandled; busy/ack shadowed row; busy/req clash.
	errs := broken.Validate()
	wants := []string{
		"only guarded transitions",
		"unhandled pair (idle, ack)",
		"unhandled pair (idle, ping)",
		"unhandled pair (busy, ping)",
		"unreachable",
		"both handled and declared impossible",
	}
	for _, w := range wants {
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Validate missed %q; got %v", w, errs)
		}
	}
	if len(errs) != len(wants) {
		t.Fatalf("Validate returned %d errors, want %d: %v", len(errs), len(wants), errs)
	}
}

func TestDocAndMarkdown(t *testing.T) {
	d := fixture().Doc()
	if d.Name != "fixture" || len(d.Transitions) != 5 || len(d.Impossible) != 1 {
		t.Fatalf("doc shape = %+v", d)
	}
	if d.Transitions[4].From != "any" || d.Transitions[4].To != "·" {
		t.Fatalf("wildcard doc row = %+v", d.Transitions[4])
	}
	md := d.Markdown()
	for _, frag := range []string{"### Table `fixture`", "| idle | req | open | serve | busy |", "ack without a pending request"} {
		if !strings.Contains(md, frag) {
			t.Fatalf("markdown missing %q:\n%s", frag, md)
		}
	}
}

func TestZeroAllocDispatch(t *testing.T) {
	tb := fixture()
	fired := tb.NewCounters()
	var log []string
	ctx := testCtx{log: &log, open: true}
	allocs := testing.AllocsPerRun(1000, func() {
		log = log[:0]
		tb.Dispatch(stBusy, evAck, ctx, fired)
	})
	if allocs != 0 {
		t.Fatalf("Dispatch allocates %.1f per call, want 0", allocs)
	}
}
