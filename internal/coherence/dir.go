package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence/proto"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/trace"
)

// dirState is the stable directory state of a line.
type dirState uint8

const (
	dirI  dirState = iota // no L1 copies
	dirS                  // one or more read-only sharers
	dirEM                 // single owner holding E or M
)

// dirLine is the directory's bookkeeping for one line: stable state plus
// the blocking-protocol transient (busy + queued requests) the paper's
// Fig. 3 describes (the directory leaves its transient state only after
// the unblock message).
type dirLine struct {
	line    mem.Line // key, for the open-addressed dirTable
	state   dirState
	owner   int
	sharers SharerSet // which cores hold S copies (see sharerset.go)

	busy  bool
	queue []*Msg
	pend  *pending
}

// pending tracks an in-flight request being serviced for a busy line.
type pending struct {
	req          *Msg
	invAcksLeft  int
	rejected     bool
	rejectorMode htm.Mode
	rejector     int // rejecting core, for conflict provenance
	evictAcks    int // back-invalidation in progress when > 0
	evictCont    func()
}

func (d *dirLine) addSharer(c int)     { d.sharers.Add(c) }
func (d *dirLine) dropSharer(c int)    { d.sharers.Drop(c) }
func (d *dirLine) sharerCount() int    { return d.sharers.Count() }
func (d *dirLine) isSharer(c int) bool { return d.sharers.Contains(c) }

// Bank is one tile's slice of the shared LLC plus its directory controller.
// The bank at tile 0 additionally hosts the centralized HTMLock arbiter
// (paper §III-C: "our approach of LLC's authorization seamlessly extends
// to distributed LLCs by adding a lightweight centralized arbiter module").
//lockiller:tile-state
type Bank struct {
	sys *System
	id  int
	arr *cache.Array
	dir dirTable

	// pendFree recycles pending trackers (one is allocated per serviced
	// request, which is hot enough to pool).
	pendFree []*pending

	// collects holds this bank's open cluster-collector rounds (two-level
	// directory only, see cluster.go).
	collects []clusterCollect

	// Stats.
	Requests, Rejections, Nacks, MemFetches, BackInvals uint64
	ClusterRounds                                       uint64
}

func newBank(sys *System, id int, sizeBytes, ways int, arena *cache.Arena) *Bank {
	return &Bank{
		sys: sys,
		id:  id,
		arr: cache.NewArrayIn(arena, sizeBytes, ways),
		dir: newDirTable(dirTableCap),
	}
}

// reset returns the bank to its just-constructed state in place (machine
// reset between runs; see System.Reset for the contract). The LLC array
// keeps its backing (generation reset), the directory table keeps its grown
// capacity and recycles its live lines, and the pending free list stays
// warm.
func (b *Bank) reset() {
	b.arr.Reset()
	b.dir.reset()
	b.collects = b.collects[:0]
	b.Requests, b.Rejections, b.Nacks, b.MemFetches, b.BackInvals = 0, 0, 0, 0, 0
	b.ClusterRounds = 0
}

// frame converts a line homed at this bank into its bank-local frame
// number. Interleaved lines are multiples of the core count apart; without
// this compression only 1/Cores of the bank's sets would ever be used.
func (b *Bank) frame(l mem.Line) mem.Line {
	return mem.Line(uint64(l) / uint64(b.sys.Cores))
}

// unframe recovers the original line from a bank-local frame.
func (b *Bank) unframe(f mem.Line) mem.Line {
	return mem.Line(uint64(f)*uint64(b.sys.Cores) + uint64(b.id))
}

func (b *Bank) line(l mem.Line) *dirLine {
	return b.dir.getOrCreate(l)
}

// newPending returns a zeroed pending tracker from the bank's free list.
func (b *Bank) newPending() *pending {
	if n := len(b.pendFree); n > 0 {
		p := b.pendFree[n-1]
		b.pendFree = b.pendFree[:n-1]
		*p = pending{}
		return p
	}
	return new(pending)
}

// freePending recycles a pending tracker once the line reopens (or its
// back-invalidation completes) and nothing references it anymore.
func (b *Bank) freePending(p *pending) { b.pendFree = append(b.pendFree, p) }

// send dispatches a message from this bank through the System's message
// pool and over the NoC.
func (b *Bank) send(v Msg) {
	v.Src = b.id
	b.sys.send(v)
}

// sendAfter dispatches a message d cycles from now (directory decision and
// LLC access latencies). The message is materialized eagerly so the pending
// request it answers can be recycled without a read-after-free.
func (b *Bank) sendAfter(d uint64, v Msg) {
	v.Src = b.id
	b.sys.sendAfter(d, v)
}

// Typed-event kinds handled by Bank.OnEvent.
const (
	evBankReceive  uint8 = iota // p = *Msg: re-enter Receive (post-eviction restart)
	evBankAllocate              // a = line, p = cont func(): memory fetch matured
)

// SimTile implements sim.TileOwner: every bank event belongs to the bank's
// own tile.
func (b *Bank) SimTile() int { return b.id }

// ProbeClass implements sim.ProbeClasser for self-profiler reports.
func (b *Bank) ProbeClass() string { return "bank" }

// OnEvent implements sim.Handler for deferred message re-dispatch and
// matured memory fetches.
func (b *Bank) OnEvent(kind uint8, a uint64, p any) {
	switch kind {
	case evBankReceive:
		b.Receive(p.(*Msg))
	case evBankAllocate:
		var cont func()
		if p != nil {
			cont = p.(func())
		}
		b.allocate(mem.Line(a), cont)
	}
}

// Receive is the bank's message input, invoked by the NoC after delivery.
// It owns m and dispatches it through the bank.receive table: each
// transition's action sequence either recycles the message (free-msg) or
// moves its ownership to a store (the blocked queue, or the pending-request
// slot — recycled at reopen).
func (b *Bank) Receive(m *Msg) { b.dispatch(m, false) }

// dispatch classifies the line's blocking transient and runs the table.
// queued marks a re-dispatch from the blocked queue (drainQueue), which
// skips the request count already charged at first receipt.
func (b *Bank) dispatch(m *Msg, queued bool) {
	if b.sys.clustered() {
		if cs, ok := b.clusterRole(m); ok {
			bankClusterTable.Dispatch(proto.State(cs), proto.Event(m.Type),
				clusterCtx{b: b, m: m}, b.sys.fired[tblBankCluster])
			return
		}
	}
	d := b.dir.lookup(m.Line)
	s := bkIdle
	if d != nil && d.busy {
		s = bkBusy
		if d.pend.evictCont != nil {
			s = bkEvict
		}
	}
	bankRecvTable.Dispatch(s, proto.Event(m.Type), bankMsgCtx{b: b, m: m, queued: queued, d: d},
		b.sys.fired[tblBankRecv])
}

// service begins working on a GetS/GetM for an idle line.
func (b *Bank) service(d *dirLine, m *Msg) {
	// HTMLock: the LLC checks every external request against the overflow
	// signatures of the active lock transaction (paper Fig. 5 (3)).
	if b.sys.Arbiter != nil {
		write := m.Type == MsgGetM
		wouldBeExclusive := d.state == dirI ||
			(d.state == dirEM && d.owner == m.Requester)
		if b.sys.Arbiter.SigConflict(m.Requester, m.Line, write, wouldBeExclusive) {
			b.Rejections++
			if b.sys.Tracer.Enabled(trace.CatHTMLock) {
				b.sys.Tracer.Emitf(b.id, trace.CatHTMLock, m.Line, "LLC signature reject for c%d", m.Requester)
			}
			b.sys.Arbiter.NoteRejected(m.Requester)
			b.sendAfter(b.sys.DirLatency, Msg{Type: MsgReject, Line: m.Line, Dst: m.Src,
				Requester: m.Requester, RejectorMode: b.sys.Arbiter.HolderMode(),
				Rejector: b.sys.Arbiter.Holder()})
			b.sys.free(m)
			return
		}
	}
	d.busy = true
	d.pend = b.newPending()
	d.pend.req = m // ownership moves to the pending slot
	if b.arr.Lookup(b.frame(m.Line)) != nil {
		// LLC hit: continue synchronously. Building the deferred
		// continuation unconditionally showed up as one allocation per
		// serviced request in whole-run profiles; now only the memory
		// fetch (rare) pays for a closure.
		b.serviceWithData(d, m)
		return
	}
	b.MemFetches++
	// The closure is accepted: memory-fetch path only, and the continuation
	// needs both the directory line and the request. (evtalloc checks the
	// closure-scheduling At/After entry points, not typed-event payloads,
	// so no waiver is needed here.)
	b.sys.Engine.AfterEvent(b.sys.MemLatency, b, evBankAllocate, uint64(m.Line),
		func() { b.serviceWithData(d, m) })
}

// serviceWithData continues once the LLC holds the line, dispatching the
// stable-state service decision through the bank.service table.
func (b *Bank) serviceWithData(d *dirLine, m *Msg) {
	evt := svcLoad
	if m.Type == MsgGetM {
		evt = svcStore
	}
	bankSvcTable.Dispatch(proto.State(d.state), evt, bankSvcCtx{b: b, d: d, m: m},
		b.sys.fired[tblBankSvc])
}

// fanoutInv invalidates every sharer but the requester (GetM over sharers);
// the guard guarantees at least one target. Iteration is strictly ascending
// by core id (SharerSet.Next), matching the old full 0..Cores scan's send
// order bit for bit.
func (b *Bank) fanoutInv(d *dirLine, m *Msg) {
	if b.sys.clustered() {
		b.fanoutInvClustered(d, m)
		return
	}
	n := 0
	for c, ok := d.sharers.Next(-1); ok; c, ok = d.sharers.Next(c) {
		if c == m.Requester {
			continue
		}
		n++
		b.send(Msg{Type: MsgInv, Line: m.Line, Dst: c,
			Requester: m.Requester, Prio: m.Prio, ReqMode: m.ReqMode, Write: true})
	}
	d.pend.invAcksLeft = n
}

// fwdToOwner forwards the request to the current owner, piggybacking the
// requester's priority and mode for conflict arbitration.
func (b *Bank) fwdToOwner(d *dirLine, m *Msg) {
	fwd := MsgFwdGetS
	if m.Type == MsgGetM {
		fwd = MsgFwdGetM
	}
	b.send(Msg{Type: fwd, Line: m.Line, Dst: d.owner,
		Requester: m.Requester, Prio: m.Prio, ReqMode: m.ReqMode,
		Write: m.Type == MsgGetM})
}

// sendData sends the final data response for the pending request after the
// LLC access latency. The directory stays busy until the unblock arrives.
func (b *Bank) sendData(d *dirLine, t MsgType) {
	m := d.pend.req
	b.sendAfter(b.sys.LLCHit, Msg{Type: t, Line: m.Line, Dst: m.Src, Requester: m.Requester})
}

// reject closes a pending request with a reject response (the recovery
// mechanism's withdrawn-request path: Fig. 2 step 6) and reopens the line.
// rejector names the winning core for conflict provenance.
func (b *Bank) reject(d *dirLine, mode htm.Mode, rejector int) {
	m := d.pend.req
	b.Rejections++
	b.sendAfter(b.sys.DirLatency, Msg{Type: MsgReject, Line: m.Line, Dst: m.Src,
		Requester: m.Requester, RejectorMode: mode, Rejector: rejector})
	b.reopen(d)
}

// reopen clears the busy state, recycles the serviced request (its last
// read — the data/reject response — was materialized eagerly), and
// dispatches the next queued request.
func (b *Bank) reopen(d *dirLine) {
	if d.pend != nil {
		if d.pend.req != nil {
			b.sys.free(d.pend.req)
		}
		b.freePending(d.pend)
	}
	d.busy = false
	d.pend = nil
	b.drainQueue(d)
}

// drainQueue re-dispatches parked requests through the receive table until
// the line goes busy again or the queue empties — the single queue-drain
// path shared by reopen and every other unblocking site.
func (b *Bank) drainQueue(d *dirLine) {
	for len(d.queue) > 0 && !d.busy {
		m := d.queue[0]
		d.queue = d.queue[1:]
		b.dispatch(m, true)
	}
}

// takeOwnerData accepts the owner's data: the owner downgraded to S (GetS,
// staying a sharer) or invalidated itself (GetM grant).
func (b *Bank) takeOwnerData(d *dirLine, m *Msg) {
	b.fillLLC(m.Line, nil)
	if d.pend.req.Type == MsgGetS {
		old := d.owner
		d.state = dirS
		d.owner = -1
		d.sharers.Clear()
		d.addSharer(old)
		b.sendData(d, MsgDataS)
		return
	}
	d.state = dirI
	d.owner = -1
	d.sharers.Clear()
	b.sendData(d, MsgDataE)
}

// ownerNacked serves the pending request from the LLC: the owner invalidated
// itself (transaction abort or eviction race) and the requester will take
// ownership (Fig. 3).
func (b *Bank) ownerNacked(d *dirLine, m *Msg) {
	b.Nacks++
	if b.sys.Tracer.Enabled(trace.CatProto) {
		b.sys.Tracer.Emitf(b.id, trace.CatProto, m.Line, "NACK from c%d: serve LLC to c%d", m.Src, d.pend.req.Requester)
	}
	d.state = dirI
	d.owner = -1
	d.sharers.Clear()
	b.sendData(d, MsgDataE)
}

// ownerRejected withdraws the toxic request: the owner won the conflict and
// keeps its state untouched (Fig. 4).
func (b *Bank) ownerRejected(d *dirLine, m *Msg) {
	b.reject(d, m.RejectorMode, m.Rejector)
}

// collectInvAck records one sharer's invalidation for a GetM over sharers.
func (b *Bank) collectInvAck(d *dirLine, m *Msg) {
	d.dropSharer(m.Src)
	b.finishInvRound(d)
}

// collectInvReject records a sharer that kept its copy (won arbitration).
func (b *Bank) collectInvReject(d *dirLine, m *Msg) {
	d.pend.rejected = true
	d.pend.rejectorMode = m.RejectorMode
	d.pend.rejector = m.Rejector
	b.finishInvRound(d)
}

// finishInvRound closes the invalidation round once every sharer answered:
// any rejection withdraws the request (the innocently invalidated sharers
// stay invalid — conservative; the rejecting sharers keep their copies),
// otherwise exclusive data is granted.
func (b *Bank) finishInvRound(d *dirLine) {
	d.pend.invAcksLeft--
	if d.pend.invAcksLeft > 0 {
		return
	}
	if d.pend.rejected {
		b.reject(d, d.pend.rejectorMode, d.pend.rejector)
		return
	}
	b.sendData(d, MsgDataE)
}

// commitUnblock finalizes the pending request: the requester reached a
// stable state, so the directory commits the new owner/sharer map and
// reopens the line (the SS transition of Fig. 3).
func (b *Bank) commitUnblock(d *dirLine, m *Msg) {
	if m.Excl {
		d.state = dirEM
		d.owner = m.Src
		d.sharers.Clear()
	} else {
		d.state = dirS
		d.owner = -1
		d.addSharer(m.Src)
	}
	b.reopen(d)
}

// handlePut processes an eviction notice.
func (b *Bank) handlePut(d *dirLine, m *Msg) {
	if d.state != dirEM || d.owner != m.Src {
		// Stale Put: the core lost ownership while the Put was in flight
		// (it already answered the racing forward with a Nack). Drop it.
		return
	}
	if m.Type == MsgPutM {
		b.fillLLC(m.Line, nil)
	}
	d.state = dirI
	d.owner = -1
	d.sharers.Clear()
}

// arbiter returns the HTMLock arbiter hosted at this bank's tile, panicking
// on arbitration traffic in a configuration without one.
func (b *Bank) arbiter() *htm.Arbiter {
	a := b.sys.Arbiter
	if a == nil {
		panic("coherence: arbiter message without HTMLock")
	}
	return a
}

// arbApply handles an HLApply at the arbiter bank: an atomic grant-or-deny
// for switchingMode applications (Fig. 6), or a waited-out grant for a TL
// application (the caller holds the fallback lock; it may still have to wait
// out an active STL transaction).
func (b *Bank) arbApply(m *Msg) {
	a := b.arbiter()
	core := m.Requester
	if m.ReqMode == htm.STL {
		t := MsgHLDeny
		if a.ApplySTL(core) {
			t = MsgHLGrant
		}
		b.sendAfter(b.sys.DirLatency, Msg{Type: t, Dst: core, Requester: core})
		return
	}
	a.ApplyTL(core, func() {
		b.sendAfter(b.sys.DirLatency, Msg{Type: MsgHLGrant, Dst: core, Requester: core})
	})
}

// arbRelease handles an HLRelease (hlend) at the arbiter bank.
func (b *Bank) arbRelease(m *Msg) {
	b.arbiter().Release(m.Requester)
}

// sigBandwidth accounts for a SigAdd's NoC bandwidth. The shared signature
// state was already updated synchronously at the evicting L1 (modeling
// replicated signature registers), so there is nothing else to do.
func (b *Bank) sigBandwidth() {
	_ = b.arbiter()
}

// fillLLC refreshes (or allocates) the LLC copy of a line on a writeback.
func (b *Bank) fillLLC(l mem.Line, cont func()) {
	if e := b.arr.Lookup(b.frame(l)); e != nil {
		e.Dirty = true
		if cont != nil {
			cont()
		}
		return
	}
	b.allocate(l, cont)
}

// allocate finds a victim way for the line, running the back-invalidation
// flow when inclusion forces eviction of a line with live L1 copies.
func (b *Bank) allocate(l mem.Line, cont func()) {
	// The array stores bank-local frames; protection predicates look up
	// the directory by the original line.
	protected := func(e *cache.Entry) bool {
		d := b.dir.lookup(b.unframe(e.Line))
		if d == nil {
			return false
		}
		if d.busy {
			return true
		}
		// Never evict lines plausibly owned by the active lock transaction.
		if b.sys.Arbiter != nil && b.sys.Arbiter.Holder() >= 0 {
			h := b.sys.Arbiter.Holder()
			if d.owner == h || d.isSharer(h) {
				return true
			}
		}
		return false
	}
	avoid := func(e *cache.Entry) bool {
		if protected(e) {
			return true
		}
		d := b.dir.lookup(b.unframe(e.Line))
		return d != nil && d.state != dirI
	}
	f := b.frame(l)
	if v := b.arr.Victim(f, avoid); v != nil {
		b.arr.Install(v, f, cache.Modified)
		if cont != nil {
			cont()
		}
		return
	}
	// Every way holds a line with L1 copies (or is protected): back-
	// invalidate the least bad choice.
	v := b.arr.Victim(f, protected)
	if v == nil {
		v = b.arr.AnyVictim(f)
	}
	if v == nil {
		panic(fmt.Sprintf("coherence: bank %d cannot allocate line %d (set wedged)", b.id, l))
	}
	b.backInvalidate(b.unframe(v.Line), func() {
		b.arr.Install(v, f, cache.Modified)
		if cont != nil {
			cont()
		}
	})
}

// backInvalidate recalls all L1 copies of a line being evicted from the
// inclusive LLC, then deletes its directory entry and continues.
func (b *Bank) backInvalidate(l mem.Line, cont func()) {
	d := b.dir.lookup(l)
	if d == nil || (d.state == dirI && !d.busy) {
		b.dir.remove(l)
		cont()
		return
	}
	if d.busy {
		panic("coherence: back-invalidating a busy line")
	}
	b.BackInvals++
	if b.sys.Tracer.Enabled(trace.CatProto) {
		b.sys.Tracer.Emitf(b.id, trace.CatProto, l, "back-invalidation")
	}
	// Recall targets: the owner under dirEM, every sharer under dirS —
	// sent in ascending core order either way (SharerSet.Next), matching
	// the old full 0..Cores scan bit for bit.
	n := d.sharerCount()
	if d.state == dirEM {
		n = 1
	}
	if n == 0 {
		b.dir.remove(l)
		cont()
		return
	}
	d.busy = true
	d.pend = b.newPending()
	d.pend.evictAcks = n
	d.pend.evictCont = cont
	if d.state == dirEM {
		b.send(Msg{Type: MsgInv, Line: l, Dst: d.owner, Requester: -1, ReqMode: htm.NonTx})
		return
	}
	for c, ok := d.sharers.Next(-1); ok; c, ok = d.sharers.Next(c) {
		b.send(Msg{Type: MsgInv, Line: l, Dst: c, Requester: -1, ReqMode: htm.NonTx})
	}
}

// collectEvictAck collects back-invalidation acks. L1s may not reject an LLC
// recall (lock-transaction lines are shielded by victim selection; HTM
// transactions abort with a capacity cause instead) — an InvReject in the
// evicting state is a declared protocol violation in the receive table.
func (b *Bank) collectEvictAck(d *dirLine, m *Msg) {
	d.pend.evictAcks--
	if d.pend.evictAcks > 0 {
		return
	}
	cont := d.pend.evictCont
	queue := d.queue
	b.freePending(d.pend)
	b.dir.remove(m.Line)
	cont()
	// Requests that queued behind the eviction restart from scratch; each
	// queued message's ownership moves to its re-dispatch event.
	for _, q := range queue {
		b.sys.Engine.AfterEvent(1, b, evBankReceive, 0, q)
	}
}
