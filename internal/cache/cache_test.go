package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestGeometry(t *testing.T) {
	a := NewArray(32*1024, 4) // the paper's L1
	if a.Lines() != 512 || a.Sets() != 128 || a.Ways() != 4 {
		t.Fatalf("geometry: lines=%d sets=%d ways=%d", a.Lines(), a.Sets(), a.Ways())
	}
	b := NewArray(8*1024, 4) // small-cache config
	if b.Lines() != 128 || b.Sets() != 32 {
		t.Fatalf("small geometry: lines=%d sets=%d", b.Lines(), b.Sets())
	}
}

func TestInstallLookup(t *testing.T) {
	a := NewArray(4096, 4)
	l := mem.Line(77)
	v := a.Victim(l, nil)
	if v == nil || v.State != Invalid {
		t.Fatal("fresh array should offer an Invalid victim")
	}
	a.Install(v, l, Shared)
	got := a.Lookup(l)
	if got == nil || got.State != Shared || got.Line != l {
		t.Fatalf("Lookup after Install = %+v", got)
	}
	if a.Lookup(mem.Line(78)) != nil {
		t.Fatal("Lookup of absent line should be nil")
	}
}

func TestLRUEviction(t *testing.T) {
	a := NewArray(1024, 4) // 4 sets, 4 ways
	set0 := func(i int) mem.Line { return mem.Line(i * a.Sets()) }
	for i := 0; i < 4; i++ {
		e := a.Victim(set0(i), nil)
		a.Install(e, set0(i), Modified)
	}
	a.Lookup(set0(0)) // refresh 0; LRU is now line set0(1)
	v := a.Victim(set0(4), nil)
	if v == nil || v.Line != set0(1) {
		t.Fatalf("victim = %+v, want line %d", v, set0(1))
	}
}

func TestVictimAvoidsTransactional(t *testing.T) {
	a := NewArray(1024, 4)
	ln := func(i int) mem.Line { return mem.Line(i * a.Sets()) }
	for i := 0; i < 4; i++ {
		e := a.Victim(ln(i), nil)
		a.Install(e, ln(i), Modified)
		if i < 3 {
			e.TxWrite = true
		}
	}
	avoidTx := func(e *Entry) bool { return e.Tx() }
	v := a.Victim(ln(5), avoidTx)
	if v == nil || v.Line != ln(3) {
		t.Fatalf("victim should be the only non-tx line, got %+v", v)
	}
	// All ways transactional -> overflow (nil).
	a.Lookup(ln(3)).TxRead = true
	if v := a.Victim(ln(5), avoidTx); v != nil {
		t.Fatalf("expected overflow (nil victim), got %+v", v)
	}
	// AnyVictim still finds one.
	if v := a.AnyVictim(ln(5)); v == nil {
		t.Fatal("AnyVictim returned nil")
	}
}

func TestVictimSkipsTransient(t *testing.T) {
	a := NewArray(1024, 4)
	ln := func(i int) mem.Line { return mem.Line(i * a.Sets()) }
	for i := 0; i < 4; i++ {
		e := a.Victim(ln(i), nil)
		st := ItoS
		if i == 2 {
			st = Shared
		}
		a.Install(e, ln(i), st)
	}
	v := a.Victim(ln(9), nil)
	if v == nil || v.Line != ln(2) {
		t.Fatalf("victim must skip transient entries, got %+v", v)
	}
}

func TestClearTxAbortDropsWrites(t *testing.T) {
	a := NewArray(4096, 4)
	for i := 0; i < 6; i++ {
		l := mem.Line(i)
		e := a.Victim(l, nil)
		a.Install(e, l, Modified)
		if i%2 == 0 {
			e.TxWrite = true
		} else {
			e.TxRead = true
		}
	}
	r, w := a.CountTx()
	if r != 3 || w != 3 {
		t.Fatalf("CountTx = %d,%d", r, w)
	}
	dropped := a.ClearTx(true)
	if len(dropped) != 3 {
		t.Fatalf("dropped %d lines, want 3", len(dropped))
	}
	for _, l := range dropped {
		if a.Lookup(l) != nil {
			t.Fatalf("dropped line %d still present", l)
		}
	}
	// Read-set lines survive with bits cleared.
	if e := a.Lookup(mem.Line(1)); e == nil || e.Tx() {
		t.Fatalf("read-set line mishandled: %+v", e)
	}
	if r, w := a.CountTx(); r != 0 || w != 0 {
		t.Fatal("tx bits not cleared")
	}
}

func TestClearTxCommitKeepsWrites(t *testing.T) {
	a := NewArray(4096, 4)
	l := mem.Line(5)
	e := a.Victim(l, nil)
	a.Install(e, l, Modified)
	e.TxWrite = true
	if dropped := a.ClearTx(false); len(dropped) != 0 {
		t.Fatalf("commit dropped lines: %v", dropped)
	}
	if e := a.Lookup(l); e == nil || e.State != Modified || e.Tx() {
		t.Fatalf("committed line mishandled: %+v", e)
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	a := NewArray(1024, 4)
	ln := func(i int) mem.Line { return mem.Line(i * a.Sets()) }
	for i := 0; i < 4; i++ {
		a.Install(a.Victim(ln(i), nil), ln(i), Shared)
	}
	a.Peek(ln(0)) // must not refresh
	v := a.Victim(ln(4), nil)
	if v.Line != ln(0) {
		t.Fatalf("Peek perturbed LRU: victim %+v", v)
	}
}

func TestSetMappingProperty(t *testing.T) {
	a := NewArray(32*1024, 4)
	if err := quick.Check(func(x uint64) bool {
		l := mem.Line(x)
		s := a.SetOf(l)
		return s >= 0 && s < a.Sets()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M",
		ItoS: "I->S", ItoM: "I->M", StoM: "S->M",
	} {
		if st.String() != want {
			t.Fatalf("String(%d) = %q", st, st.String())
		}
	}
	if !Shared.Valid() || Invalid.Valid() || ItoS.Valid() {
		t.Fatal("Valid() wrong")
	}
	if !ItoM.Transient() || Modified.Transient() {
		t.Fatal("Transient() wrong")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	a := NewArray(4096, 4)
	for i := 0; i < 10; i++ {
		l := mem.Line(i)
		a.Install(a.Victim(l, nil), l, Exclusive)
	}
	n := 0
	a.ForEach(func(e *Entry) { n++ })
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
}
