// Package cache implements the set-associative data arrays used for both
// the private L1s and the shared LLC banks, including the transactional
// read/write metadata bits that best-effort HTM keeps per L1 line and the
// victim-selection policy that prefers to evict non-transactional lines.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// State is the coherence state of a line as seen by its local controller.
// The protocol package defines the transitions; the array only stores it.
type State uint8

// Stable and transient L1/LLC line states. The array package defines them
// so both controllers can share the storage type.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	// Transient requester-side states (request in flight).
	ItoS // GetS issued, waiting for data
	ItoM // GetM issued from Invalid, waiting for data
	StoM // GetM issued from Shared (upgrade), waiting for data
)

// Valid reports whether the state holds a readable copy.
func (s State) Valid() bool { return s == Shared || s == Exclusive || s == Modified }

// Transient reports whether a request is in flight for the line.
func (s State) Transient() bool { return s == ItoS || s == ItoM || s == StoM }

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case ItoS:
		return "I->S"
	case ItoM:
		return "I->M"
	case StoM:
		return "S->M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is one way of one set.
type Entry struct {
	Line  mem.Line
	State State
	Dirty bool
	// Transactional metadata (L1 only): the line is in the running
	// transaction's read and/or write set.
	TxRead  bool
	TxWrite bool
	// gen is the array generation this entry was written under. An entry
	// whose generation trails the array's reads as Invalid, which is how
	// Array.Reset invalidates every line without touching the backing
	// (it fills the struct's existing padding, so Entry stays 24 bytes).
	gen uint32
	// lru is a per-array timestamp for least-recently-used replacement.
	lru uint64
}

// Tx reports whether the line belongs to the current transaction's
// read or write set.
func (e *Entry) Tx() bool { return e.TxRead || e.TxWrite }

// Array is a set-associative cache data array with LRU replacement.
type Array struct {
	sets    int
	ways    int
	entries []Entry // sets*ways, row-major by set
	clock   uint64
	gen     uint32 // current generation; entries with e.gen != gen are stale
}

// Arena bump-allocates Entry backings so every array of one machine comes
// out of a single allocation (the machine-construction arena). A nil Arena
// — or one that runs out — falls back to private allocations, so callers
// never need to size it exactly.
type Arena struct {
	backing []Entry
}

// NewArena preallocates backing for the given total line count.
func NewArena(lines int) *Arena { return &Arena{backing: make([]Entry, lines)} }

// alloc carves n entries off the arena (full-capacity slice so appends can
// never bleed into a neighbour's backing).
func (ar *Arena) alloc(n int) []Entry {
	if ar == nil || len(ar.backing) < n {
		return make([]Entry, n)
	}
	s := ar.backing[:n:n]
	ar.backing = ar.backing[n:]
	return s
}

// LinesFor returns the entry count an array of sizeBytes occupies — the
// unit Arena sizing is computed in.
func LinesFor(sizeBytes int) int { return sizeBytes / mem.LineBytes }

// NewArray builds an array of the given total size in bytes with the given
// associativity (line size fixed at 64 B). Sizes must divide evenly.
func NewArray(sizeBytes, ways int) *Array { return NewArrayIn(nil, sizeBytes, ways) }

// NewArrayIn is NewArray with the entry backing carved from the arena.
func NewArrayIn(ar *Arena, sizeBytes, ways int) *Array {
	lines := sizeBytes / mem.LineBytes
	if lines <= 0 || ways <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d ways=%d", sizeBytes, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Array{sets: sets, ways: ways, entries: ar.alloc(lines)}
}

// Reset invalidates every line in place by bumping the array generation:
// stale entries read as Invalid everywhere and are normalized lazily when
// Victim hands one out. O(1) in array size; the uint32 wrap (once per 2^32
// resets) falls back to rewriting the backing so old generations can never
// alias the new one.
func (a *Array) Reset() {
	a.gen++
	if a.gen == 0 {
		for i := range a.entries {
			a.entries[i] = Entry{}
		}
	}
	a.clock = 0
}

// Pristine reports whether the array holds no live line and its LRU clock
// is at its initial value — the state a fresh array and a Reset array
// share. Used by the machine-reset deep-state walk.
func (a *Array) Pristine() bool {
	if a.clock != 0 {
		return false
	}
	for i := range a.entries {
		e := &a.entries[i]
		if e.State != Invalid && e.gen == a.gen {
			return false
		}
	}
	return true
}

// SameShape reports whether two arrays have identical geometry.
func (a *Array) SameShape(b *Array) bool {
	return a.sets == b.sets && a.ways == b.ways
}

// Sets returns the number of sets; Ways the associativity; Lines capacity.
func (a *Array) Sets() int  { return a.sets }
func (a *Array) Ways() int  { return a.ways }
func (a *Array) Lines() int { return a.sets * a.ways }

// SetOf returns the set index a line maps to.
func (a *Array) SetOf(l mem.Line) int { return int(uint64(l) & uint64(a.sets-1)) }

func (a *Array) set(idx int) []Entry { return a.entries[idx*a.ways : (idx+1)*a.ways] }

// Lookup returns the entry holding the line (in any non-Invalid state,
// including transients), or nil. A hit refreshes LRU.
func (a *Array) Lookup(l mem.Line) *Entry {
	s := a.set(a.SetOf(l))
	for i := range s {
		// Tag compare first: ways that miss (the common case) fall through
		// on a single predictable uint64 compare.
		if s[i].Line == l && s[i].State != Invalid && s[i].gen == a.gen {
			a.clock++
			s[i].lru = a.clock
			return &s[i]
		}
	}
	return nil
}

// Peek is Lookup without the LRU refresh (for external probes that must not
// perturb replacement decisions).
func (a *Array) Peek(l mem.Line) *Entry {
	s := a.set(a.SetOf(l))
	for i := range s {
		if s[i].Line == l && s[i].State != Invalid && s[i].gen == a.gen {
			return &s[i]
		}
	}
	return nil
}

// Victim chooses an entry in the line's set to allocate into. Preference
// order: an Invalid way, then the LRU way among entries for which avoid
// returns false, then — only if every way is to be avoided — nil, signalling
// that allocation is impossible without violating the avoid predicate
// (e.g. every way holds transactional data: a capacity overflow).
// Entries in transient states are never victims.
func (a *Array) Victim(l mem.Line, avoid func(*Entry) bool) *Entry {
	s := a.set(a.SetOf(l))
	var best *Entry
	for i := range s {
		e := &s[i]
		if e.gen != a.gen {
			// Stale generation: logically Invalid. Normalize before handing
			// it out so callers that inspect the victim's fields (demotion,
			// eviction) see a genuinely empty way.
			*e = Entry{gen: a.gen}
			return e
		}
		if e.State == Invalid {
			return e
		}
		if e.State.Transient() {
			continue
		}
		if avoid != nil && avoid(e) {
			continue
		}
		if best == nil || e.lru < best.lru {
			best = e
		}
	}
	return best
}

// AnyVictim is Victim with no avoid predicate but still skipping transient
// entries; used when an overflow forces eviction of transactional data.
func (a *Array) AnyVictim(l mem.Line) *Entry { return a.Victim(l, nil) }

// Install writes a new line into the entry (the caller must have evicted
// the previous occupant) and refreshes LRU.
func (a *Array) Install(e *Entry, l mem.Line, st State) {
	a.clock++
	*e = Entry{Line: l, State: st, lru: a.clock, gen: a.gen}
}

// ForEach visits every non-Invalid entry. The visitor must not install or
// evict lines.
func (a *Array) ForEach(fn func(*Entry)) {
	for i := range a.entries {
		if a.entries[i].State != Invalid && a.entries[i].gen == a.gen {
			fn(&a.entries[i])
		}
	}
}

// CountTx returns the number of lines in the transaction's read/write sets;
// used by stats and by progression-based priority (LosaTM).
func (a *Array) CountTx() (reads, writes int) {
	for i := range a.entries {
		if a.entries[i].gen != a.gen {
			continue
		}
		if a.entries[i].TxRead {
			reads++
		}
		if a.entries[i].TxWrite {
			writes++
		}
	}
	return
}

// ClearTx clears all transactional metadata; invalidateWrites additionally
// drops speculatively written (TxWrite) lines, which is what an abort does
// under L1-based eager version management. Returns the dropped lines so the
// controller can lazily reconcile the directory via NACKs later.
func (a *Array) ClearTx(invalidateWrites bool) (dropped []mem.Line) {
	for i := range a.entries {
		e := &a.entries[i]
		// Untouched entries (the vast majority each commit) fall through
		// without dirtying their cache line.
		if !e.TxRead && !e.TxWrite {
			continue
		}
		if e.State == Invalid || e.gen != a.gen {
			continue
		}
		if invalidateWrites && e.TxWrite {
			dropped = append(dropped, e.Line)
			e.State = Invalid
			e.Dirty = false
		}
		e.TxRead = false
		e.TxWrite = false
	}
	return dropped
}
