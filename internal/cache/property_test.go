package cache

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestRandomOpsInvariants drives random install/lookup/evict/tx sequences
// and checks structural invariants after every step: no duplicate lines,
// set mapping respected, LRU victim correctness.
func TestRandomOpsInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed)
		a := NewArray(4096, 4) // 16 sets
		live := map[mem.Line]bool{}
		for step := 0; step < 5000; step++ {
			l := mem.Line(rng.Intn(200))
			switch rng.Intn(5) {
			case 0, 1: // access (install on miss)
				if e := a.Lookup(l); e != nil {
					if e.Line != l {
						t.Fatal("lookup returned wrong line")
					}
					break
				}
				v := a.Victim(l, nil)
				if v == nil {
					t.Fatal("victim unavailable with no predicate")
				}
				if v.State != Invalid {
					delete(live, v.Line)
				}
				a.Install(v, l, Shared)
				live[l] = true
			case 2: // evict
				if e := a.Peek(l); e != nil && e.State.Valid() {
					e.State = Invalid
					e.TxRead, e.TxWrite = false, false
					delete(live, l)
				}
			case 3: // tx mark
				if e := a.Peek(l); e != nil && e.State.Valid() {
					if rng.Bool(0.5) {
						e.TxRead = true
					} else {
						e.TxWrite = true
					}
				}
			case 4: // clear tx
				dropped := a.ClearTx(rng.Bool(0.5))
				for _, dl := range dropped {
					delete(live, dl)
				}
			}
			// Invariants.
			seen := map[mem.Line]int{}
			a.ForEach(func(e *Entry) {
				seen[e.Line]++
				if a.SetOf(e.Line) < 0 || a.SetOf(e.Line) >= a.Sets() {
					t.Fatal("line outside set range")
				}
			})
			for l, n := range seen {
				if n > 1 {
					t.Fatalf("line %d present %d times", l, n)
				}
			}
			for l := range live {
				if a.Peek(l) == nil {
					t.Fatalf("live line %d vanished", l)
				}
			}
		}
	}
}

// TestVictimNeverReturnsLineOfOtherSet: the victim entry must belong to
// the target line's set (installing into it must not corrupt mapping).
func TestVictimNeverReturnsLineOfOtherSet(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewArray(8192, 4)
	for i := 0; i < 2000; i++ {
		l := mem.Line(rng.Intn(1000))
		v := a.Victim(l, nil)
		if v == nil {
			continue
		}
		if v.State != Invalid && a.SetOf(v.Line) != a.SetOf(l) {
			t.Fatalf("victim from set %d for line in set %d", a.SetOf(v.Line), a.SetOf(l))
		}
		a.Install(v, l, Exclusive)
	}
}
