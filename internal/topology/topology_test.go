package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXYRoundTrip(t *testing.T) {
	m := NewMesh(4, 8)
	for tile := 0; tile < m.Tiles(); tile++ {
		x, y := m.XY(tile)
		if m.Tile(x, y) != tile {
			t.Fatalf("tile %d round-trips to %d", tile, m.Tile(x, y))
		}
	}
}

func TestRouteLengthEqualsHops(t *testing.T) {
	m := NewMesh(4, 8)
	if err := quick.Check(func(a, b uint8) bool {
		src := int(a) % m.Tiles()
		dst := int(b) % m.Tiles()
		return len(m.Route(src, dst)) == m.Hops(src, dst)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteContiguousAdjacent(t *testing.T) {
	m := NewMesh(4, 8)
	for src := 0; src < m.Tiles(); src++ {
		for dst := 0; dst < m.Tiles(); dst++ {
			r := m.Route(src, dst)
			cur := src
			for _, l := range r {
				if l.From != cur {
					t.Fatalf("route %d->%d not contiguous: %v", src, dst, r)
				}
				if m.Hops(l.From, l.To) != 1 {
					t.Fatalf("route %d->%d uses non-adjacent link %v", src, dst, l)
				}
				cur = l.To
			}
			if cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestRouteXBeforeY(t *testing.T) {
	m := NewMesh(4, 8)
	r := m.Route(m.Tile(0, 0), m.Tile(3, 2))
	// First 3 links must move in X, the rest in Y.
	for i, l := range r {
		fx, fy := m.XY(l.From)
		tx, ty := m.XY(l.To)
		if i < 3 {
			if fy != ty || fx == tx {
				t.Fatalf("link %d should be an X move: %v", i, l)
			}
		} else {
			if fx != tx || fy == ty {
				t.Fatalf("link %d should be a Y move: %v", i, l)
			}
		}
	}
}

func TestRouteSelf(t *testing.T) {
	m := NewMesh(4, 8)
	if len(m.Route(5, 5)) != 0 {
		t.Fatal("self route should be empty")
	}
	if m.Hops(5, 5) != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x4 mesh")
		}
	}()
	NewMesh(0, 4)
}

func TestNewFactory(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want string
	}{{"", "mesh"}, {"mesh", "mesh"}, {"torus", "torus"}, {"cmesh", "cmesh"}} {
		topo, err := New(tc.kind, 4, 4, 2)
		if err != nil {
			t.Fatalf("New(%q): %v", tc.kind, err)
		}
		if topo.Name() != tc.want {
			t.Fatalf("New(%q).Name() = %q, want %q", tc.kind, topo.Name(), tc.want)
		}
	}
	if _, err := New("hypercube", 4, 4, 1); err == nil {
		t.Fatal("expected error for unknown topology kind")
	}
}

// checkRoute validates the universal route properties on any shape: the
// route is contiguous from src's router region to dst's, every link spans
// exactly one hop, Hops(src,dst) == len(Route(src,dst)), AppendRoute agrees
// with Route, and hops are symmetric.
func checkRoute(t *testing.T, topo Topology, src, dst int) {
	t.Helper()
	r := topo.Route(src, dst)
	if len(r) != topo.Hops(src, dst) {
		t.Fatalf("%s %d->%d: len(Route)=%d != Hops=%d", topo.Name(), src, dst, len(r), topo.Hops(src, dst))
	}
	if topo.Hops(src, dst) != topo.Hops(dst, src) {
		t.Fatalf("%s: Hops(%d,%d)=%d asymmetric with Hops(%d,%d)=%d",
			topo.Name(), src, dst, topo.Hops(src, dst), dst, src, topo.Hops(dst, src))
	}
	ar := topo.AppendRoute(nil, src, dst)
	if len(ar) != len(r) {
		t.Fatalf("%s %d->%d: AppendRoute/Route disagree: %v vs %v", topo.Name(), src, dst, ar, r)
	}
	for i := range r {
		if r[i] != ar[i] {
			t.Fatalf("%s %d->%d: AppendRoute/Route disagree at %d: %v vs %v", topo.Name(), src, dst, i, ar[i], r[i])
		}
	}
	if len(r) == 0 {
		if topo.Hops(src, dst) != 0 {
			t.Fatalf("%s %d->%d: empty route but %d hops", topo.Name(), src, dst, topo.Hops(src, dst))
		}
		return
	}
	// Contiguity over link endpoints; each link must be a single hop.
	for i, l := range r {
		if i > 0 && r[i-1].To != l.From {
			t.Fatalf("%s %d->%d: route not contiguous at %d: %v", topo.Name(), src, dst, i, r)
		}
		if topo.Hops(l.From, l.To) != 1 {
			t.Fatalf("%s %d->%d: link %v spans %d hops", topo.Name(), src, dst, l, topo.Hops(l.From, l.To))
		}
	}
	// Endpoints: first link leaves src's zero-hop region, last enters dst's.
	if topo.Hops(src, r[0].From) != 0 {
		t.Fatalf("%s %d->%d: route starts at %d, not at src's router", topo.Name(), src, dst, r[0].From)
	}
	if topo.Hops(dst, r[len(r)-1].To) != 0 {
		t.Fatalf("%s %d->%d: route ends at %d, not at dst's router", topo.Name(), src, dst, r[len(r)-1].To)
	}
}

// checkAllRoutes runs checkRoute over all pairs of a small shape, or a
// seeded random sample of a big one.
func checkAllRoutes(t *testing.T, topo Topology, rng *rand.Rand) {
	t.Helper()
	n := topo.Tiles()
	if n <= 64 {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				checkRoute(t, topo, src, dst)
			}
		}
		return
	}
	for i := 0; i < 512; i++ {
		checkRoute(t, topo, rng.Intn(n), rng.Intn(n))
	}
}

func TestRandomizedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8)) // deterministic: same shapes every run
	for i := 0; i < 40; i++ {
		w := 1 + rng.Intn(32)
		h := 1 + rng.Intn(32)
		conc := 1 + rng.Intn(4)
		for _, topo := range []Topology{NewMesh(w, h), NewTorus(w, h), NewCMesh(w, h, conc)} {
			checkAllRoutes(t, topo, rng)
		}
	}
}

func TestMeshMinimality(t *testing.T) {
	// X-Y routing on a mesh is minimal: Hops is exactly the Manhattan
	// distance, checked against a BFS oracle over the adjacency relation.
	for _, dims := range [][2]int{{4, 8}, {8, 8}, {16, 16}, {1, 7}, {5, 1}} {
		m := NewMesh(dims[0], dims[1])
		bfs := bfsDistances(m, 0)
		for dst := 0; dst < m.Tiles(); dst++ {
			if m.Hops(0, dst) != bfs[dst] {
				t.Fatalf("mesh %dx%d: Hops(0,%d)=%d, BFS says %d",
					dims[0], dims[1], dst, m.Hops(0, dst), bfs[dst])
			}
		}
	}
}

func TestTorusMinimality(t *testing.T) {
	for _, dims := range [][2]int{{4, 8}, {8, 8}, {5, 5}, {2, 6}, {1, 8}} {
		tr := NewTorus(dims[0], dims[1])
		bfs := bfsDistances(tr, 0)
		for dst := 0; dst < tr.Tiles(); dst++ {
			if tr.Hops(0, dst) != bfs[dst] {
				t.Fatalf("torus %dx%d: Hops(0,%d)=%d, BFS says %d",
					dims[0], dims[1], dst, tr.Hops(0, dst), bfs[dst])
			}
		}
	}
}

// bfsDistances computes single-source shortest hop counts using only the
// shape's own one-hop relation, as an oracle independent of Hops' formula.
func bfsDistances(topo Topology, src int) []int {
	n := topo.Tiles()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := 0; next < n; next++ {
			if dist[next] < 0 && topo.Hops(cur, next) == 1 {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

func TestTorusWraparound(t *testing.T) {
	tr := NewTorus(8, 4)
	// Opposite edge columns are one hop apart through the wraparound link.
	if got := tr.Hops(tr.Tile(0, 0), tr.Tile(7, 0)); got != 1 {
		t.Fatalf("torus x-wraparound: Hops=%d, want 1", got)
	}
	if got := tr.Hops(tr.Tile(0, 0), tr.Tile(0, 3)); got != 1 {
		t.Fatalf("torus y-wraparound: Hops=%d, want 1", got)
	}
	r := tr.Route(tr.Tile(0, 0), tr.Tile(7, 0))
	if len(r) != 1 || r[0] != (Link{From: tr.Tile(0, 0), To: tr.Tile(7, 0)}) {
		t.Fatalf("torus wraparound route: %v", r)
	}
	// Torus halves the worst-case distance relative to a mesh of the same
	// dimensions.
	m := NewMesh(8, 4)
	if tr.Hops(0, tr.Tiles()-1) >= m.Hops(0, m.Tiles()-1) {
		t.Fatalf("torus corner distance %d not shorter than mesh %d",
			tr.Hops(0, tr.Tiles()-1), m.Hops(0, m.Tiles()-1))
	}
}

func TestTorusDatelineTieBreak(t *testing.T) {
	// On an even ring the halfway distance has two equally short ways
	// around; the dateline rule resolves it toward increasing coordinate,
	// so the first link must step from x to x+1.
	tr := NewTorus(8, 1)
	r := tr.Route(tr.Tile(1, 0), tr.Tile(5, 0)) // distance 4 both ways
	if len(r) != 4 {
		t.Fatalf("halfway route length %d, want 4", len(r))
	}
	if r[0] != (Link{From: tr.Tile(1, 0), To: tr.Tile(2, 0)}) {
		t.Fatalf("dateline tie must resolve toward +x: %v", r[0])
	}
}

func TestCMeshSameRouter(t *testing.T) {
	c := NewCMesh(4, 4, 4) // 64 tiles, 16 routers
	if c.Tiles() != 64 {
		t.Fatalf("cmesh tiles = %d, want 64", c.Tiles())
	}
	// Tiles 0..3 share router 0: zero hops, empty route.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if c.Hops(a, b) != 0 {
				t.Fatalf("same-router tiles %d,%d: Hops=%d", a, b, c.Hops(a, b))
			}
			if len(c.Route(a, b)) != 0 {
				t.Fatalf("same-router tiles %d,%d: non-empty route", a, b)
			}
		}
	}
	// Tiles on adjacent routers are one hop apart regardless of which tile
	// of the router they are.
	if got := c.Hops(3, 4); got != 1 {
		t.Fatalf("adjacent-router tiles: Hops=%d, want 1", got)
	}
	if c.MinCrossHops() != 0 {
		t.Fatal("cmesh with conc>1 must report MinCrossHops 0")
	}
	if NewCMesh(4, 4, 1).MinCrossHops() != 1 {
		t.Fatal("cmesh with conc=1 must report MinCrossHops 1")
	}
}

func TestMinCrossHops(t *testing.T) {
	if NewMesh(4, 8).MinCrossHops() != 1 {
		t.Fatal("mesh MinCrossHops should be 1")
	}
	if NewTorus(4, 8).MinCrossHops() != 1 {
		t.Fatal("torus MinCrossHops should be 1")
	}
	if NewMesh(1, 1).MinCrossHops() != 0 {
		t.Fatal("1-tile mesh MinCrossHops should be 0")
	}
}

func TestNumLinksMatchesEnumeration(t *testing.T) {
	// NumLinks must equal the number of distinct directed links that appear
	// across all routes of the shape.
	for _, topo := range []Topology{
		NewMesh(4, 8), NewMesh(1, 6), NewTorus(4, 4), NewTorus(2, 5),
		NewTorus(1, 4), NewCMesh(3, 3, 2), NewCMesh(4, 2, 4),
	} {
		seen := map[Link]bool{}
		n := topo.Tiles()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				for _, l := range topo.Route(src, dst) {
					seen[l] = true
				}
			}
		}
		if len(seen) != topo.NumLinks() {
			t.Fatalf("%s: NumLinks=%d but routes use %d distinct links",
				topo.Name(), topo.NumLinks(), len(seen))
		}
	}
}

func TestOnDemandRoutingMatchesPrecomputed(t *testing.T) {
	// A shape beyond the precomputation bound routes on demand; its routes
	// must match a precomputed shape's wherever both are defined. 32x32 is
	// beyond the bound, 16x16 within it: compare the 16x16 sub-grid routes
	// whose X-Y paths stay inside it.
	big := NewMesh(32, 32)
	if big.routes != nil {
		t.Fatal("32x32 mesh should not precompute routes")
	}
	small := NewMesh(16, 16)
	if small.routes == nil {
		t.Fatal("16x16 mesh should precompute routes")
	}
	for _, pair := range [][2][2]int{
		{{0, 0}, {15, 15}}, {{3, 7}, {12, 2}}, {{15, 0}, {0, 15}},
	} {
		s, d := pair[0], pair[1]
		rs := small.Route(small.Tile(s[0], s[1]), small.Tile(d[0], d[1]))
		rb := big.Route(big.Tile(s[0], s[1]), big.Tile(d[0], d[1]))
		if len(rs) != len(rb) {
			t.Fatalf("route length mismatch: %d vs %d", len(rs), len(rb))
		}
		for i := range rs {
			fx, fy := small.XY(rs[i].From)
			tx, ty := small.XY(rs[i].To)
			if rb[i].From != big.Tile(fx, fy) || rb[i].To != big.Tile(tx, ty) {
				t.Fatalf("route step %d differs between precomputed and on-demand", i)
			}
		}
	}
}
