package topology

import (
	"testing"
	"testing/quick"
)

func TestXYRoundTrip(t *testing.T) {
	m := NewMesh(4, 8)
	for tile := 0; tile < m.Tiles(); tile++ {
		x, y := m.XY(tile)
		if m.Tile(x, y) != tile {
			t.Fatalf("tile %d round-trips to %d", tile, m.Tile(x, y))
		}
	}
}

func TestRouteLengthEqualsHops(t *testing.T) {
	m := NewMesh(4, 8)
	if err := quick.Check(func(a, b uint8) bool {
		src := int(a) % m.Tiles()
		dst := int(b) % m.Tiles()
		return len(m.Route(src, dst)) == m.Hops(src, dst)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteContiguousAdjacent(t *testing.T) {
	m := NewMesh(4, 8)
	for src := 0; src < m.Tiles(); src++ {
		for dst := 0; dst < m.Tiles(); dst++ {
			r := m.Route(src, dst)
			cur := src
			for _, l := range r {
				if l.From != cur {
					t.Fatalf("route %d->%d not contiguous: %v", src, dst, r)
				}
				if m.Hops(l.From, l.To) != 1 {
					t.Fatalf("route %d->%d uses non-adjacent link %v", src, dst, l)
				}
				cur = l.To
			}
			if cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestRouteXBeforeY(t *testing.T) {
	m := NewMesh(4, 8)
	r := m.Route(m.Tile(0, 0), m.Tile(3, 2))
	// First 3 links must move in X, the rest in Y.
	for i, l := range r {
		fx, fy := m.XY(l.From)
		tx, ty := m.XY(l.To)
		if i < 3 {
			if fy != ty || fx == tx {
				t.Fatalf("link %d should be an X move: %v", i, l)
			}
		} else {
			if fx != tx || fy == ty {
				t.Fatalf("link %d should be a Y move: %v", i, l)
			}
		}
	}
}

func TestRouteSelf(t *testing.T) {
	m := NewMesh(4, 8)
	if len(m.Route(5, 5)) != 0 {
		t.Fatal("self route should be empty")
	}
	if m.Hops(5, 5) != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x4 mesh")
		}
	}()
	NewMesh(0, 4)
}
