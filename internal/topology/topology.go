// Package topology models the tiled CMP's 2-D mesh and its deterministic
// X-Y routing. Table I of the paper specifies a 4x8 mesh (32 tiles) with
// one core + one L1 + one LLC bank per tile.
package topology

import "fmt"

// Mesh is a W x H grid of tiles numbered row-major: tile = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh validates the dimensions and returns the mesh.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", w, h))
	}
	return Mesh{W: w, H: h}
}

// Tiles returns the number of tiles.
func (m Mesh) Tiles() int { return m.W * m.H }

// XY returns the coordinates of a tile.
func (m Mesh) XY(tile int) (x, y int) { return tile % m.W, tile / m.W }

// Tile returns the tile at coordinates (x, y).
func (m Mesh) Tile(x, y int) int { return y*m.W + x }

// Hops returns the Manhattan distance between two tiles, which X-Y routing
// always achieves (it is minimal and deadlock-free on a mesh).
func (m Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Link identifies a directed link between two adjacent tiles.
type Link struct{ From, To int }

// Route returns the ordered list of directed links traversed by an X-Y
// routed message from src to dst. An empty slice means src == dst.
func (m Mesh) Route(src, dst int) []Link {
	if src == dst {
		return nil
	}
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	links := make([]Link, 0, m.Hops(src, dst))
	x, y := sx, sy
	for x != dx {
		nx := x + step(x, dx)
		links = append(links, Link{From: m.Tile(x, y), To: m.Tile(nx, y)})
		x = nx
	}
	for y != dy {
		ny := y + step(y, dy)
		links = append(links, Link{From: m.Tile(x, y), To: m.Tile(x, ny)})
		y = ny
	}
	return links
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func step(from, to int) int {
	if from < to {
		return 1
	}
	return -1
}
