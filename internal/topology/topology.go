// Package topology models the tiled CMP's interconnect shapes and their
// deterministic routing. The paper's Table I machine is a 4x8 mesh (32
// tiles, one core + one L1 + one LLC bank per tile); the scaling work
// (DESIGN.md §13) generalizes the layer behind the Topology interface so
// the simulated machine can grow to 64–1024 tiles on a larger mesh, a
// torus (wraparound X-Y), or a concentrated mesh (several tiles per
// router) without the NoC or the sharded engine caring which shape is
// underneath.
package topology

import "fmt"

// Link identifies a directed link between two adjacent tiles (for the
// concentrated mesh: between the representative tiles of adjacent routers).
type Link struct{ From, To int }

// Topology is the interconnect shape the NoC and the machine layer consume.
// Every implementation routes deterministically: the same (src, dst) pair
// always takes the same path, which the bit-for-bit replay guarantee
// depends on.
type Topology interface {
	// Tiles returns the number of tiles.
	Tiles() int
	// Hops returns the number of links a message from src to dst
	// traverses; Hops(src, dst) == len(Route(src, dst)) on every shape.
	Hops(src, dst int) int
	// Route returns the ordered links traversed from src to dst. An empty
	// route means src == dst or (concentrated mesh) the two tiles share a
	// router. The returned slice may be shared precomputed state and must
	// not be mutated; large machines compute it on demand, so hot paths
	// should prefer AppendRoute.
	Route(src, dst int) []Link
	// AppendRoute appends the route's links to buf and returns it — the
	// allocation-free variant for per-message routing on machines too
	// large for a precomputed route table.
	AppendRoute(buf []Link, src, dst int) []Link
	// NumLinks returns the number of distinct directed links, used to
	// normalize link-occupancy telemetry.
	NumLinks() int
	// MinCrossHops returns the minimum Hops between two distinct tiles:
	// 1 on a mesh or torus, 0 on a concentrated mesh (same-router tiles).
	// The NoC derives its conservative-PDES lookahead from it.
	MinCrossHops() int
	// Name identifies the shape ("mesh", "torus", "cmesh").
	Name() string
}

// RouteTableTiles bounds full route-table precomputation: a T-tile machine
// stores T^2 routes, so shapes beyond this fall back to computing routes on
// demand (the NoC applies the same bound to its link-index tables).
const RouteTableTiles = 256

// New builds a topology by name. w and h are the router grid; conc is the
// tiles-per-router concentration (cmesh only; ignored elsewhere).
func New(kind string, w, h, conc int) (Topology, error) {
	switch kind {
	case "", "mesh":
		return NewMesh(w, h), nil
	case "torus":
		return NewTorus(w, h), nil
	case "cmesh":
		return NewCMesh(w, h, conc), nil
	}
	return nil, fmt.Errorf("topology: unknown kind %q (want mesh, torus, or cmesh)", kind)
}

// --- Mesh ------------------------------------------------------------------

// Mesh is a W x H grid of tiles numbered row-major: tile = y*W + x.
type Mesh struct {
	W, H int
	// routes[src*Tiles+dst] is the precomputed X-Y route, shared by all
	// copies of the Mesh value. Callers must treat routes as read-only.
	// Nil on machines beyond RouteTableTiles (on-demand routing).
	routes [][]Link
}

// NewMesh validates the dimensions and returns the mesh. Small machines get
// their route table precomputed (routing is deterministic, so every
// (src, dst) pair always takes the same path); big ones route on demand.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", w, h))
	}
	m := Mesh{W: w, H: h}
	m.routes = precompute(m)
	return m
}

// precompute builds the full route table for a small topology, nil for one
// beyond the precomputation bound.
func precompute(t Topology) [][]Link {
	n := t.Tiles()
	if n > RouteTableTiles {
		return nil
	}
	routes := make([][]Link, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			routes[src*n+dst] = t.AppendRoute(nil, src, dst)
		}
	}
	return routes
}

// Name implements Topology.
func (m Mesh) Name() string { return "mesh" }

// Tiles returns the number of tiles.
func (m Mesh) Tiles() int { return m.W * m.H }

// XY returns the coordinates of a tile.
func (m Mesh) XY(tile int) (x, y int) { return tile % m.W, tile / m.W }

// Tile returns the tile at coordinates (x, y).
func (m Mesh) Tile(x, y int) int { return y*m.W + x }

// Hops returns the Manhattan distance between two tiles, which X-Y routing
// always achieves (it is minimal and deadlock-free on a mesh).
func (m Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// MinCrossHops implements Topology: adjacent tiles are one link apart.
func (m Mesh) MinCrossHops() int {
	if m.Tiles() == 1 {
		return 0
	}
	return 1
}

// NumLinks returns the number of distinct directed links: W*(H-1) vertical
// and H*(W-1) horizontal channels, each bidirectional.
func (m Mesh) NumLinks() int { return 2 * (m.W*(m.H-1) + m.H*(m.W-1)) }

// Route returns the X-Y route from src to dst (see Topology.Route).
func (m Mesh) Route(src, dst int) []Link {
	if m.routes != nil {
		return m.routes[src*m.Tiles()+dst]
	}
	return m.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology: dimension-ordered X-then-Y routing.
func (m Mesh) AppendRoute(buf []Link, src, dst int) []Link {
	if src == dst {
		return buf
	}
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	x, y := sx, sy
	for x != dx {
		nx := x + step(x, dx)
		buf = append(buf, Link{From: m.Tile(x, y), To: m.Tile(nx, y)})
		x = nx
	}
	for y != dy {
		ny := y + step(y, dy)
		buf = append(buf, Link{From: m.Tile(x, y), To: m.Tile(x, ny)})
		y = ny
	}
	return buf
}

// --- Torus -----------------------------------------------------------------

// Torus is a W x H grid with wraparound links in both dimensions, numbered
// row-major like the mesh. Routing is dimension-ordered (X then Y) taking
// the shorter way around each ring; a dead-even tie (ring length even,
// distance exactly half the ring) always resolves toward increasing
// coordinate — the deterministic dateline rule. The link-reservation NoC
// model has no credit-based buffering and therefore cannot deadlock; the
// dateline convention exists so the modeled routes match a deadlock-free
// two-VC dateline implementation and, more importantly here, so every
// (src, dst) pair routes identically on every run (DESIGN.md §13).
type Torus struct {
	W, H   int
	routes [][]Link
}

// NewTorus validates the dimensions and returns the torus.
func NewTorus(w, h int) Torus {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid torus %dx%d", w, h))
	}
	t := Torus{W: w, H: h}
	t.routes = precompute(t)
	return t
}

// Name implements Topology.
func (t Torus) Name() string { return "torus" }

// Tiles returns the number of tiles.
func (t Torus) Tiles() int { return t.W * t.H }

// XY returns the coordinates of a tile.
func (t Torus) XY(tile int) (x, y int) { return tile % t.W, tile / t.W }

// Tile returns the tile at coordinates (x, y).
func (t Torus) Tile(x, y int) int { return y*t.W + x }

// ringDist returns the hop count and step direction (+1/-1) for the
// shorter way around a ring of length n from a to b, resolving dead-even
// ties toward +1 (the dateline rule).
func ringDist(a, b, n int) (dist, dir int) {
	if a == b {
		return 0, 1
	}
	fwd := ((b - a) % n + n) % n
	back := n - fwd
	if fwd <= back {
		return fwd, 1
	}
	return back, -1
}

// Hops returns the wraparound Manhattan distance, which dimension-ordered
// shortest-way routing achieves.
func (t Torus) Hops(src, dst int) int {
	sx, sy := t.XY(src)
	dx, dy := t.XY(dst)
	hx, _ := ringDist(sx, dx, t.W)
	hy, _ := ringDist(sy, dy, t.H)
	return hx + hy
}

// MinCrossHops implements Topology.
func (t Torus) MinCrossHops() int {
	if t.Tiles() == 1 {
		return 0
	}
	return 1
}

// NumLinks returns the number of distinct directed links. A ring of length
// L contributes 2L directed links (L each way); length 2 degenerates to one
// bidirectional channel pair (the two directions collapse onto the same
// (from, to) identities), and length 1 contributes none.
func (t Torus) NumLinks() int { return t.H*ringLinks(t.W) + t.W*ringLinks(t.H) }

func ringLinks(l int) int {
	switch {
	case l < 2:
		return 0
	case l == 2:
		return 2
	}
	return 2 * l
}

// Route returns the dimension-ordered wraparound route (see Topology.Route).
func (t Torus) Route(src, dst int) []Link {
	if t.routes != nil {
		return t.routes[src*t.Tiles()+dst]
	}
	return t.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology: X then Y, each the shorter way around.
func (t Torus) AppendRoute(buf []Link, src, dst int) []Link {
	if src == dst {
		return buf
	}
	sx, sy := t.XY(src)
	dx, dy := t.XY(dst)
	x, y := sx, sy
	hx, dirX := ringDist(sx, dx, t.W)
	for i := 0; i < hx; i++ {
		nx := ((x+dirX)%t.W + t.W) % t.W
		buf = append(buf, Link{From: t.Tile(x, y), To: t.Tile(nx, y)})
		x = nx
	}
	hy, dirY := ringDist(sy, dy, t.H)
	for i := 0; i < hy; i++ {
		ny := ((y+dirY)%t.H + t.H) % t.H
		buf = append(buf, Link{From: t.Tile(x, y), To: t.Tile(x, ny)})
		y = ny
	}
	return buf
}

// --- Concentrated mesh -----------------------------------------------------

// CMesh is a concentrated mesh: a W x H router grid with Conc tiles sharing
// each router through a local crossbar. Tiles are numbered so tile t
// attaches to router t/Conc; inter-router links are identified by the
// routers' representative tiles (router r's first tile, r*Conc), so all
// tiles of a router contend for the same physical channels. Same-router
// messages take the crossbar (an empty route; the NoC charges its local
// latency), which is what makes concentration attractive at high tile
// counts — a 256-tile machine needs only an 8x8 router grid at Conc=4.
type CMesh struct {
	W, H, Conc int
	routes     [][]Link
}

// NewCMesh validates the dimensions and returns the concentrated mesh.
func NewCMesh(w, h, conc int) CMesh {
	if w <= 0 || h <= 0 || conc <= 0 {
		panic(fmt.Sprintf("topology: invalid cmesh %dx%dx%d", w, h, conc))
	}
	c := CMesh{W: w, H: h, Conc: conc}
	c.routes = precompute(c)
	return c
}

// Name implements Topology.
func (c CMesh) Name() string { return "cmesh" }

// Tiles returns the number of tiles.
func (c CMesh) Tiles() int { return c.W * c.H * c.Conc }

// Router returns the router a tile attaches to.
func (c CMesh) Router(tile int) int { return tile / c.Conc }

// repTile returns the representative tile of a router (link identities).
func (c CMesh) repTile(router int) int { return router * c.Conc }

// routerXY returns a router's grid coordinates.
func (c CMesh) routerXY(router int) (x, y int) { return router % c.W, router / c.W }

// Hops returns the router-grid Manhattan distance (0 for same-router tiles).
func (c CMesh) Hops(src, dst int) int {
	sx, sy := c.routerXY(c.Router(src))
	dx, dy := c.routerXY(c.Router(dst))
	return abs(sx-dx) + abs(sy-dy)
}

// MinCrossHops implements Topology: with Conc > 1 two distinct tiles can
// share a router and exchange messages over the zero-hop crossbar.
func (c CMesh) MinCrossHops() int {
	if c.Conc > 1 || c.Tiles() == 1 {
		return 0
	}
	return 1
}

// NumLinks returns the router grid's distinct directed links.
func (c CMesh) NumLinks() int { return 2 * (c.W*(c.H-1) + c.H*(c.W-1)) }

// Route returns the router-grid X-Y route (see Topology.Route).
func (c CMesh) Route(src, dst int) []Link {
	if c.routes != nil {
		return c.routes[src*c.Tiles()+dst]
	}
	return c.AppendRoute(nil, src, dst)
}

// AppendRoute implements Topology: X-Y over the router grid, links between
// representative tiles.
func (c CMesh) AppendRoute(buf []Link, src, dst int) []Link {
	r1, r2 := c.Router(src), c.Router(dst)
	if r1 == r2 {
		return buf
	}
	sx, sy := c.routerXY(r1)
	dx, dy := c.routerXY(r2)
	x, y := sx, sy
	rep := func(x, y int) int { return c.repTile(y*c.W + x) }
	for x != dx {
		nx := x + step(x, dx)
		buf = append(buf, Link{From: rep(x, y), To: rep(nx, y)})
		x = nx
	}
	for y != dy {
		ny := y + step(y, dy)
		buf = append(buf, Link{From: rep(x, y), To: rep(x, ny)})
		y = ny
	}
	return buf
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func step(from, to int) int {
	if from < to {
		return 1
	}
	return -1
}
