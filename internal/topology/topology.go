// Package topology models the tiled CMP's 2-D mesh and its deterministic
// X-Y routing. Table I of the paper specifies a 4x8 mesh (32 tiles) with
// one core + one L1 + one LLC bank per tile.
package topology

import "fmt"

// Mesh is a W x H grid of tiles numbered row-major: tile = y*W + x.
type Mesh struct {
	W, H int
	// routes[src*Tiles+dst] is the precomputed X-Y route, shared by all
	// copies of the Mesh value. Callers must treat routes as read-only.
	routes [][]Link
}

// routeTableMax bounds the precomputed table: a T-tile mesh stores T^2
// routes, so very large meshes fall back to computing routes on demand.
const routeTableMax = 4096

// NewMesh validates the dimensions and returns the mesh with its route
// table precomputed (routing is deterministic, so every (src, dst) pair
// always takes the same path).
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", w, h))
	}
	m := Mesh{W: w, H: h}
	if t := m.Tiles(); t <= routeTableMax {
		m.routes = make([][]Link, t*t)
		for src := 0; src < t; src++ {
			for dst := 0; dst < t; dst++ {
				m.routes[src*t+dst] = m.computeRoute(src, dst)
			}
		}
	}
	return m
}

// Tiles returns the number of tiles.
func (m Mesh) Tiles() int { return m.W * m.H }

// XY returns the coordinates of a tile.
func (m Mesh) XY(tile int) (x, y int) { return tile % m.W, tile / m.W }

// Tile returns the tile at coordinates (x, y).
func (m Mesh) Tile(x, y int) int { return y*m.W + x }

// Hops returns the Manhattan distance between two tiles, which X-Y routing
// always achieves (it is minimal and deadlock-free on a mesh).
func (m Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Link identifies a directed link between two adjacent tiles.
type Link struct{ From, To int }

// Route returns the ordered list of directed links traversed by an X-Y
// routed message from src to dst. An empty slice means src == dst. The
// returned slice is shared (routes are precomputed) and must not be
// mutated.
func (m Mesh) Route(src, dst int) []Link {
	if m.routes != nil {
		return m.routes[src*m.Tiles()+dst]
	}
	return m.computeRoute(src, dst)
}

func (m Mesh) computeRoute(src, dst int) []Link {
	if src == dst {
		return nil
	}
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	links := make([]Link, 0, m.Hops(src, dst))
	x, y := sx, sy
	for x != dx {
		nx := x + step(x, dx)
		links = append(links, Link{From: m.Tile(x, y), To: m.Tile(nx, y)})
		x = nx
	}
	for y != dy {
		ny := y + step(y, dy)
		links = append(links, Link{From: m.Tile(x, y), To: m.Tile(x, ny)})
		y = ny
	}
	return links
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func step(from, to int) int {
	if from < to {
		return 1
	}
	return -1
}
