// Package plot renders simple, dependency-free ASCII charts for the
// benchmark harness: horizontal bar charts for speedup figures and stacked
// bars for execution-time breakdowns, mirroring the paper's plots in a
// terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders one horizontal bar per label, scaled to the maximum value.
// A reference line at ref (e.g. 1.0 for speedup-vs-CGL) is marked with '|'
// when it falls inside the plotted range; ref <= 0 disables it.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string, ref float64) {
	if len(labels) != len(values) {
		panic("plot: labels/values length mismatch")
	}
	fmt.Fprintln(w, title)
	if len(values) == 0 {
		return
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	const width = 48
	refCol := -1
	if ref > 0 && ref <= maxV {
		refCol = int(math.Round(ref / maxV * width))
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * width))
		if n < 0 {
			n = 0
		}
		bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n+1))
		if refCol >= 0 && refCol < len(bar) && bar[refCol] == ' ' {
			bar[refCol] = '|'
		}
		fmt.Fprintf(w, "  %-*s %s %6.2f%s\n", maxL, labels[i], string(bar), v, unit)
	}
}

// Series renders a small multi-column table followed by per-row sparkbars,
// for per-thread-count speedup series.
func Series(w io.Writer, title string, rows []string, cols []string, data [][]float64, unit string) {
	fmt.Fprintln(w, title)
	maxL := 0
	for _, r := range rows {
		if len(r) > maxL {
			maxL = len(r)
		}
	}
	fmt.Fprintf(w, "  %-*s", maxL, "")
	for _, c := range cols {
		fmt.Fprintf(w, " %8s", c)
	}
	fmt.Fprintln(w)
	for i, r := range rows {
		fmt.Fprintf(w, "  %-*s", maxL, r)
		for _, v := range data[i] {
			fmt.Fprintf(w, " %7.2f%s", v, unit)
		}
		fmt.Fprintf(w, "  %s\n", spark(data[i]))
	}
}

// spark renders a tiny bar-per-point profile of a series.
func spark(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, v := range vs {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var sb strings.Builder
	for _, v := range vs {
		idx := int(v / maxV * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

// Stacked renders 100%-stacked bars: one row per label, one glyph class
// per part. Parts should sum to ~1 per row.
func Stacked(w io.Writer, title string, labels []string, partNames []string, parts [][]float64) {
	if len(labels) != len(parts) {
		panic("plot: labels/parts length mismatch")
	}
	glyphs := []byte("#=+~o.:x")
	fmt.Fprintln(w, title)
	fmt.Fprint(w, "  legend:")
	for i, n := range partNames {
		fmt.Fprintf(w, " %c=%s", glyphs[i%len(glyphs)], n)
	}
	fmt.Fprintln(w)
	maxL := 0
	for _, l := range labels {
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	const width = 50
	for i, l := range labels {
		var sb strings.Builder
		total := 0
		for j, f := range parts[i] {
			n := int(math.Round(f * width))
			if total+n > width {
				n = width - total
			}
			sb.WriteString(strings.Repeat(string(glyphs[j%len(glyphs)]), n))
			total += n
		}
		if total < width {
			sb.WriteString(strings.Repeat(" ", width-total))
		}
		fmt.Fprintf(w, "  %-*s [%s]\n", maxL, l, sb.String())
	}
}
