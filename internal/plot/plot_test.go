package plot

import (
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "speedup", []string{"a", "bb"}, []float64{2, 1}, "x", 1)
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2.00x") {
		t.Fatalf("bars output: %s", out)
	}
	// The larger value must have a longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatal("reference line missing")
	}
}

func TestBarsEmptyAndZero(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "t", nil, nil, "", 0)
	Bars(&sb, "t", []string{"z"}, []float64{0}, "", 0) // must not divide by zero
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var sb strings.Builder
	Bars(&sb, "t", []string{"a"}, []float64{1, 2}, "", 0)
}

func TestSeries(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "fig", []string{"sys1"}, []string{"2T", "4T"}, [][]float64{{1.5, 3.0}}, "x")
	out := sb.String()
	for _, frag := range []string{"sys1", "2T", "1.50x", "3.00x"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("series output missing %q: %s", frag, out)
		}
	}
}

func TestSpark(t *testing.T) {
	if spark(nil) != "" {
		t.Fatal("empty spark")
	}
	s := spark([]float64{0, 1})
	r := []rune(s)
	if len(r) != 2 || r[0] == r[1] {
		t.Fatalf("spark = %q", s)
	}
}

func TestStacked(t *testing.T) {
	var sb strings.Builder
	Stacked(&sb, "breakdown", []string{"w1"}, []string{"htm", "lock"}, [][]float64{{0.5, 0.5}})
	out := sb.String()
	if !strings.Contains(out, "legend") || !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Fatalf("stacked output: %s", out)
	}
	// Bar content fits the bracket width.
	row := out[strings.Index(out, "["):]
	if len(row) < 50 {
		t.Fatalf("row too short: %q", row)
	}
}

func TestStackedOverflowClamped(t *testing.T) {
	var sb strings.Builder
	// Parts sum > 1: must clamp, not panic.
	Stacked(&sb, "b", []string{"x"}, []string{"a", "b"}, [][]float64{{0.9, 0.9}})
}
