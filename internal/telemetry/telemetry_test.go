package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/htm"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- disabled path -------------------------------------------------------

// TestNilTelemetryIsSafe: a nil *Telemetry must absorb every hook.
func TestNilTelemetryIsSafe(t *testing.T) {
	var tel *Telemetry
	tel.Start(nil, 4)
	tel.Segment(0, stats.CatHTM, 0, 10)
	tel.TxBegin(0, 0, 1)
	tel.TxCommit(0, 0, 1, 0, false)
	tel.TxAbort(0, 0, 1, 0, htm.CauseMC)
	tel.Conflict(1, 0, 42, true, false, true)
	if tel.HotLines(4) != nil {
		t.Fatal("nil telemetry returned hot lines")
	}
	var sb strings.Builder
	tel.RenderProvenance(&sb, 4)
	if sb.Len() != 0 {
		t.Fatal("nil telemetry rendered provenance")
	}
	if err := tel.WriteMetricsJSON(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil telemetry wrote metrics")
	}
	if err := tel.WriteMetricsCSV(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil telemetry wrote CSV")
	}
}

// TestDisabledHooksZeroAlloc proves the disabled path allocates nothing:
// with telemetry off, every hook is one nil check.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	var tel *Telemetry
	if n := testing.AllocsPerRun(1000, func() {
		tel.Segment(0, stats.CatHTM, 0, 100)
		tel.TxBegin(0, 1, 2)
		tel.TxCommit(0, 1, 2, 50, false)
		tel.TxAbort(0, 1, 2, 50, htm.CauseMC)
		tel.Conflict(1, 2, 99, true, true, true)
	}); n != 0 {
		t.Fatalf("disabled hooks allocate %v per run, want 0", n)
	}
}

// TestEnabledCountingHooksZeroAlloc: with telemetry on but Chrome recording
// off, the counting hooks themselves stay allocation-free in steady state
// (histogram observes and counter bumps only).
func TestEnabledCountingHooksZeroAlloc(t *testing.T) {
	tel := New(Config{})
	engine := sim.NewEngine()
	tel.Start(engine, 4)
	// Warm up so any lazy map cells exist before measuring.
	tel.Conflict(1, 0, 7, true, false, true)
	if n := testing.AllocsPerRun(1000, func() {
		tel.Segment(0, stats.CatHTM, 0, 100)
		tel.TxBegin(0, 1, 2)
		tel.TxCommit(0, 1, 2, 50, false)
		tel.Conflict(1, 0, 7, true, false, true)
	}); n != 0 {
		t.Fatalf("enabled counting hooks allocate %v per run, want 0", n)
	}
}

// --- registry ------------------------------------------------------------

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1010 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	b := h.Buckets()
	// 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1000 -> le 1023.
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if len(b) != len(want) {
		t.Fatalf("buckets = %+v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b[i], want[i])
		}
	}
}

func TestRegistrySampleKinds(t *testing.T) {
	r := NewRegistry()
	var total, num, den, occ float64
	gauge := 1.0
	r.GaugeSeries("g", func() float64 { return gauge })
	r.RateSeries("rate", func() float64 { return total })
	r.RatioSeries("ratio", func() float64 { return num }, func() float64 { return den })
	r.PerCycleSeries("occ", func() float64 { return occ }, 2)

	total, num, den, occ = 10, 5, 10, 40
	r.Sample(100) // elapsed 100
	gauge, total, num, den, occ = 7, 25, 5, 10, 140
	r.Sample(200) // elapsed 100; ratio den unchanged -> 0

	get := func(name string) []float64 {
		for _, s := range r.series {
			if s.name == name {
				return s.vals
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	if v := get("g"); v[0] != 1 || v[1] != 7 {
		t.Fatalf("gauge samples = %v", v)
	}
	if v := get("rate"); v[0] != 10 || v[1] != 15 {
		t.Fatalf("rate samples = %v", v)
	}
	if v := get("ratio"); v[0] != 0.5 || v[1] != 0 {
		t.Fatalf("ratio samples = %v", v)
	}
	if v := get("occ"); v[0] != 0.2 || v[1] != 0.5 {
		t.Fatalf("occ samples = %v", v)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d", r.Samples())
	}
}

func TestRegistryFreezeAndDuplicatePanic(t *testing.T) {
	r := NewRegistry()
	r.GaugeSeries("a", func() float64 { return 0 })
	mustPanic(t, "duplicate", func() { r.GaugeSeries("a", func() float64 { return 0 }) })
	r.Sample(1)
	mustPanic(t, "post-freeze", func() { r.RateSeries("b", func() float64 { return 0 }) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s registration did not panic", what)
		}
	}()
	fn()
}

// --- sampling loop -------------------------------------------------------

// filler keeps the engine busy so the sampler has something to overlap.
type filler struct {
	engine *sim.Engine
	left   int
}

func (f *filler) OnEvent(uint8, uint64, any) {
	if f.left--; f.left > 0 {
		f.engine.AfterEvent(37, f, 0, 0, nil)
	}
}

func TestSamplerFollowsSimulatedClockAndStops(t *testing.T) {
	engine := sim.NewEngine()
	tel := New(Config{Interval: 100})
	f := &filler{engine: engine, left: 20} // busy until cycle ~740
	engine.AfterEvent(1, f, 0, 0, nil)
	tel.Start(engine, 2)
	if err := engine.Run(0); err != nil {
		t.Fatal(err)
	}
	n := tel.Reg.Samples()
	if n < 7 || n > 9 {
		t.Fatalf("samples = %d, want ~8 over ~740 busy cycles at interval 100", n)
	}
	for i, cyc := range tel.Reg.cycles {
		if want := uint64(100 * (i + 1)); cyc != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, cyc, want)
		}
	}
	// The tick must not self-perpetuate past the drained simulation.
	if last := tel.Reg.cycles[n-1]; last > 840 {
		t.Fatalf("sampler kept running to cycle %d after the simulation drained", last)
	}
}

func TestStartTwicePanics(t *testing.T) {
	tel := New(Config{})
	engine := sim.NewEngine()
	tel.Start(engine, 1)
	mustPanic(t, "second Start", func() { tel.Start(engine, 1) })
}

// --- provenance ----------------------------------------------------------

func TestProvenanceHeatAndMatrix(t *testing.T) {
	tel := New(Config{HotLines: 2})
	engine := sim.NewEngine()
	tel.Start(engine, 4)
	tel.Conflict(1, 0, 100, true, false, true)
	tel.Conflict(1, 0, 100, false, true, true)
	tel.Conflict(2, 3, 100, true, false, false) // rejected, not aborted
	tel.Conflict(3, 2, 200, false, true, true)
	tel.Conflict(-1, 0, 300, true, false, false) // no nameable winner

	hot := tel.HotLines(0) // 0 -> configured bound (2)
	if len(hot) != 2 {
		t.Fatalf("hot lines = %+v", hot)
	}
	if hot[0].Line != 100 || hot[0].Conflicts != 3 || hot[0].Aborts != 2 ||
		hot[0].Reads != 2 || hot[0].Writes != 1 {
		t.Fatalf("hottest = %+v", hot[0])
	}
	if hot[1].Line != 200 {
		t.Fatalf("second = %+v", hot[1])
	}
	mat := tel.prov.abortMatrix()
	if mat["c01"]["c00"] != 2 || mat["c03"]["c02"] != 1 {
		t.Fatalf("matrix = %v", mat)
	}
	if _, ok := mat["c02"]; ok {
		t.Fatal("non-aborting rejection leaked into the matrix")
	}
	var sb strings.Builder
	tel.RenderProvenance(&sb, 4)
	out := sb.String()
	for _, frag := range []string{"line      100", "conflicts=3", "c01: c00=2"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

// --- exports -------------------------------------------------------------

func newRunTelemetry(t *testing.T, chrome bool) *Telemetry {
	t.Helper()
	engine := sim.NewEngine()
	tel := New(Config{Interval: 50, HotLines: 4, Chrome: chrome})
	tel.Meta = Meta{System: "LockillerTM", Threads: 2, Workload: "unit"}
	f := &filler{engine: engine, left: 10}
	engine.AfterEvent(1, f, 0, 0, nil)
	tel.Start(engine, 2)
	tel.TxBegin(0, 0, 1)
	tel.Segment(0, stats.CatHTM, 0, 80)
	tel.TxCommit(0, 0, 1, 0, false)
	tel.TxBegin(1, 0, 1)
	tel.TxAbort(1, 0, 1, 10, htm.CauseMC)
	tel.Segment(1, stats.CatAborted, 10, 60)
	tel.Conflict(0, 1, 512, false, true, true)
	if err := engine.Run(0); err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestMetricsJSONSchemaAndDeterminism(t *testing.T) {
	tel := newRunTelemetry(t, false)
	var a, b bytes.Buffer
	if err := tel.WriteMetricsJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same telemetry differ")
	}
	if err := ValidateMetrics(a.Bytes()); err != nil {
		t.Fatalf("metrics schema: %v\n%s", err, a.String())
	}
	out := a.String()
	for _, frag := range []string{
		`"commit_rate"`, `"abort_rate"`, `"cycles_htm_share"`,
		`"tx_duration_cycles"`, `"hot_lines"`, `"aborts_mc"`, `"workload": "unit"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("metrics JSON missing %s", frag)
		}
	}
}

func TestMetricsCSVSortedHeader(t *testing.T) {
	tel := newRunTelemetry(t, false)
	var buf bytes.Buffer
	if err := tel.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+tel.Reg.Samples() {
		t.Fatalf("csv has %d lines for %d samples", len(lines), tel.Reg.Samples())
	}
	cols := strings.Split(lines[0], ",")
	if cols[0] != "cycle" {
		t.Fatalf("first column = %q", cols[0])
	}
	for i := 2; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			t.Fatalf("header not sorted at %q <= %q", cols[i], cols[i-1])
		}
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tel := newRunTelemetry(t, true)
	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("chrome schema: %v\n%s", err, buf.String())
	}
	if err := ValidateSortedKeys(buf.Bytes()); err != nil {
		t.Fatalf("chrome keys: %v", err)
	}
	out := buf.String()
	for _, frag := range []string{
		`"process_name"`, `"thread_name"`, `"xbegin"`, `"commit"`,
		`"abort:mc"`, `"ph":"X"`, `"ph":"s"`, `"ph":"f"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("chrome trace missing %s:\n%s", frag, out)
		}
	}
}

func TestChromeDisabledStillValid(t *testing.T) {
	tel := newRunTelemetry(t, false)
	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// --- validators ----------------------------------------------------------

func TestValidateSortedKeysRejectsDisorder(t *testing.T) {
	good := []byte(`{"a":1,"b":{"x":[{"m":1,"n":2}],"y":2},"c":"b"}`)
	if err := ValidateSortedKeys(good); err != nil {
		t.Fatalf("good doc rejected: %v", err)
	}
	bad := []byte(`{"b":1,"a":2}`)
	if err := ValidateSortedKeys(bad); err == nil {
		t.Fatal("unsorted top-level keys accepted")
	}
	nested := []byte(`{"a":{"z":1,"y":2}}`)
	if err := ValidateSortedKeys(nested); err == nil {
		t.Fatal("unsorted nested keys accepted")
	}
	// Values that are strings must not be mistaken for keys.
	values := []byte(`{"a":"zzz","b":"aaa"}`)
	if err := ValidateSortedKeys(values); err != nil {
		t.Fatalf("string values confused for keys: %v", err)
	}
}

func TestValidateChromeTraceRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"missing traceEvents": `{}`,
		"unknown phase":       `{"traceEvents":[{"name":"x","ph":"Z","ts":1}]}`,
		"no name":             `{"traceEvents":[{"ph":"i","ts":1}]}`,
		"X without dur":       `{"traceEvents":[{"name":"x","ph":"X","ts":1}]}`,
	}
	for what, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestValidateMetricsRejectsBadDocs(t *testing.T) {
	base := `{"cycles":[100,200],"interval":100,"series":{"abort_rate":[0,0],"commit_rate":[1,1]}}`
	if err := ValidateMetrics([]byte(base)); err != nil {
		t.Fatalf("good doc rejected: %v", err)
	}
	cases := map[string]string{
		"non-increasing cycles": `{"cycles":[200,100],"interval":100,"series":{"abort_rate":[0,0],"commit_rate":[1,1]}}`,
		"missing commit_rate":   `{"cycles":[100],"interval":100,"series":{"abort_rate":[0]}}`,
		"ragged series":         `{"cycles":[100,200],"interval":100,"series":{"abort_rate":[0],"commit_rate":[1,1]}}`,
		"missing sections":      `{"cycles":[100]}`,
	}
	for what, doc := range cases {
		if err := ValidateMetrics([]byte(doc)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}
