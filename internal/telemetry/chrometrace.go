package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome-trace-event object. JSON field order (and
// therefore key order in the output) is alphabetical, matching the
// sorted-key rule every telemetry export follows. Cycles are rendered as
// microseconds (ts/dur), so one trace microsecond == one simulated cycle.
type chromeEvent struct {
	Args map[string]any `json:"args,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Dur  uint64         `json:"dur,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	S    string         `json:"s,omitempty"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
}

// chromeTrace accumulates trace events in recording order. Spans come from
// the stats segment sink (one ph:"X" duration event per closed segment),
// transaction lifecycles become flow events (ph:"s" at xbegin bound to
// ph:"f" at commit/abort) plus instants carrying the outcome.
type chromeTrace struct {
	events  []chromeEvent
	flowSeq uint64
	// openFlow[core] is the flow id of the core's in-flight attempt (0 =
	// none): begin allocates, end binds and clears.
	openFlow []uint64
}

func newChromeTrace() *chromeTrace { return &chromeTrace{} }

// metadata emits the process/thread naming events Perfetto shows in the
// track headers.
func (c *chromeTrace) metadata(cores int) {
	c.openFlow = make([]uint64, cores)
	c.events = append(c.events, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "lockillersim"},
	})
	for i := 0; i < cores; i++ {
		c.events = append(c.events, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: i,
			Args: map[string]any{"name": "core " + itoa(i)},
		})
	}
}

// span records one per-core execution segment as a duration event.
func (c *chromeTrace) span(core int, cat string, ts, dur uint64) {
	c.events = append(c.events, chromeEvent{
		Cat: "cycles", Dur: dur, Name: cat, Ph: "X", Tid: core, Ts: ts,
	})
}

// txBegin opens a transaction flow.
func (c *chromeTrace) txBegin(core, section, attempt int, ts uint64) {
	c.flowSeq++
	if core < len(c.openFlow) {
		c.openFlow[core] = c.flowSeq
	}
	c.events = append(c.events,
		chromeEvent{
			Cat: "tx", Name: "xbegin", Ph: "i", S: "t", Tid: core, Ts: ts,
			Args: map[string]any{"attempt": attempt, "section": section},
		},
		chromeEvent{Cat: "tx", ID: c.flowSeq, Name: "tx", Ph: "s", Tid: core, Ts: ts})
}

// txEnd closes the core's open transaction flow with its outcome.
func (c *chromeTrace) txEnd(core, section, attempt int, ts uint64, what string) {
	c.events = append(c.events, chromeEvent{
		Cat: "tx", Name: what, Ph: "i", S: "t", Tid: core, Ts: ts,
		Args: map[string]any{"attempt": attempt, "section": section},
	})
	if core < len(c.openFlow) && c.openFlow[core] != 0 {
		c.events = append(c.events, chromeEvent{
			Bp: "e", Cat: "tx", ID: c.openFlow[core], Name: "tx", Ph: "f", Tid: core, Ts: ts,
		})
		c.openFlow[core] = 0
	}
}

// chromeExport is the top-level trace JSON object.
type chromeExport struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the recorded events as Chrome-trace-event JSON,
// loadable in ui.perfetto.dev or chrome://tracing. Chrome recording must
// have been enabled in the Config.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{}
	if t != nil && t.chrome != nil {
		events = t.chrome.events
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeExport{DisplayTimeUnit: "ms", TraceEvents: events})
}

// itoa is a minimal integer formatter (avoids fmt on the metadata path and
// keeps the package's import set lean).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
