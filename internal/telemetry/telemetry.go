// Package telemetry is the simulator's deterministic observability layer:
// a zero-alloc metrics registry sampled on the simulated clock into
// time-series, a Chrome-trace-event (Perfetto) exporter for per-core
// execution segments and transaction lifecycles, and conflict provenance
// (per-line conflict heat and the aborter→abortee attribution matrix).
//
// Determinism rules: every timestamp comes from sim.Engine.Now (the package
// passes the nowallclock analyzer), every export renders maps in sorted-key
// order, and recording mutates no simulated state — so a run with telemetry
// attached produces bit-for-bit the same cycle counts as one without, and
// two same-seed runs produce byte-identical telemetry output.
//
// Like internal/trace, the layer is opt-in: a nil *Telemetry disables every
// hook, call sites in hot packages guard with a nil check (enforced by the
// tracehook analyzer), and all hook methods are nil-receiver-safe, so the
// disabled path costs one branch and zero allocations.
package telemetry

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config sizes the telemetry layer.
type Config struct {
	// Interval is the sampling period in simulated cycles (default 10000).
	// Smaller intervals give finer curves at proportionally more memory and
	// sampling work; the per-event hook cost is interval-independent.
	Interval uint64
	// HotLines bounds the per-line conflict-heat export (default 16).
	HotLines int
	// Chrome enables Chrome-trace-event recording (duration spans per core,
	// transaction flow events). Off, segments still feed the cycle-share
	// series but no span is retained.
	Chrome bool
}

// Defaults fills unset knobs.
func (c Config) Defaults() Config {
	if c.Interval == 0 {
		c.Interval = 10_000
	}
	if c.HotLines == 0 {
		c.HotLines = 16
	}
	return c
}

// Meta labels the run in exports.
type Meta struct {
	System   string `json:"system"`
	Threads  int    `json:"threads"`
	Workload string `json:"workload"`
}

// Telemetry is one run's observability state. Create with New, attach with
// Start before the machine runs. A nil *Telemetry is a valid disabled
// instance: every hook returns immediately.
//lockiller:shared-state
type Telemetry struct {
	cfg    Config
	engine *sim.Engine
	cores  int

	// Reg is the metrics registry; the machine registers its probes here
	// before the run starts.
	Reg *Registry
	// Meta labels exports; set by the harness.
	Meta Meta

	// Built-in transaction instruments, fed by the Tx* hooks.
	attempts uint64
	commits  uint64
	aborts   uint64
	abortsBy [htm.NumCauses + 1]uint64
	txDur    *Histogram
	abortDur *Histogram

	// Per-category cycle accumulators, fed by the Segment sink.
	catCycles [stats.NumCategories]uint64

	chrome *chromeTrace
	prov   *provenance
}

// New creates a telemetry instance and registers the built-in series:
// commit_rate and abort_rate (per-interval commit/abort fractions) and one
// cycles_<category>_share series per execution category.
func New(cfg Config) *Telemetry {
	cfg = cfg.Defaults()
	t := &Telemetry{cfg: cfg, Reg: NewRegistry(), prov: newProvenance()}
	if cfg.Chrome {
		t.chrome = newChromeTrace()
	}
	t.txDur = t.Reg.NewHistogram("tx_duration_cycles")
	t.abortDur = t.Reg.NewHistogram("aborted_duration_cycles")
	attempts := func() float64 { return float64(t.attempts) }
	t.Reg.RatioSeries("commit_rate", func() float64 { return float64(t.commits) }, attempts)
	t.Reg.RatioSeries("abort_rate", func() float64 { return float64(t.aborts) }, attempts)
	total := func() float64 {
		var s uint64
		for _, v := range t.catCycles {
			s += v
		}
		return float64(s)
	}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		c := c
		t.Reg.RatioSeries("cycles_"+c.String()+"_share",
			func() float64 { return float64(t.catCycles[c]) }, total)
	}
	t.Reg.CounterFunc("attempts", func() uint64 { return t.attempts })
	t.Reg.CounterFunc("commits", func() uint64 { return t.commits })
	t.Reg.CounterFunc("aborts", func() uint64 { return t.aborts })
	for c := htm.CauseNone + 1; int(c) <= htm.NumCauses; c++ {
		c := c
		t.Reg.CounterFunc("aborts_"+c.String(), func() uint64 { return t.abortsBy[c] })
	}
	return t
}

// Interval returns the configured sampling period.
func (t *Telemetry) Interval() uint64 { return t.cfg.Interval }

// Typed-event kind handled by Telemetry.OnEvent.
const evSampleTick uint8 = 0

// Start attaches the telemetry to a machine's engine and schedules the
// first sampling tick. cores is the machine's core count (it sizes the
// abort-attribution matrix and the Chrome-trace thread list).
func (t *Telemetry) Start(engine *sim.Engine, cores int) {
	if t == nil {
		return
	}
	if t.engine != nil {
		panic("telemetry: Start called twice (one Telemetry per run)")
	}
	t.engine = engine
	t.cores = cores
	t.prov.size(cores)
	if t.chrome != nil {
		t.chrome.metadata(cores)
	}
	engine.AfterEvent(t.cfg.Interval, t, evSampleTick, 0, nil)
}

// ProbeClass implements sim.ProbeClasser for self-profiler reports.
func (t *Telemetry) ProbeClass() string { return "telemetry" }

// OnEvent implements sim.Handler: take one sample, then reschedule. The
// tick stops rescheduling once it is the only event left — the simulation
// proper has drained, and a self-perpetuating tick would keep Engine.Run
// alive forever. Sampling reads counters and mutates no simulated state, so
// the extra events change no existing event's relative order: cycle counts
// stay bit-for-bit identical with telemetry on.
func (t *Telemetry) OnEvent(uint8, uint64, any) {
	t.Reg.Sample(t.engine.Now())
	if t.engine.Pending() > 0 {
		t.engine.AfterEvent(t.cfg.Interval, t, evSampleTick, 0, nil)
	}
}

// --- hot-path hooks ------------------------------------------------------
//
// Every hook is nil-receiver-safe, and call sites in hot packages must
// still guard with a nil check (tracehook analyzer) so the disabled path
// never pays argument evaluation.

// Segment implements stats.SegmentSink: one closed per-core cycle segment.
func (t *Telemetry) Segment(core int, cat stats.Category, start, end uint64) {
	if t == nil || end <= start {
		return
	}
	t.catCycles[cat] += end - start
	if t.chrome != nil {
		t.chrome.span(core, cat.String(), start, end-start)
	}
}

// TxBegin records the start of a speculative attempt.
func (t *Telemetry) TxBegin(core, section, attempt int) {
	if t == nil {
		return
	}
	t.attempts++
	if t.chrome != nil {
		t.chrome.txBegin(core, section, attempt, t.engine.Now())
	}
}

// TxCommit records a successful attempt (switched marks an HTMLock-mode
// completion after a switchingMode application). start is the attempt's
// begin cycle.
func (t *Telemetry) TxCommit(core, section, attempt int, start uint64, switched bool) {
	if t == nil {
		return
	}
	t.commits++
	now := t.engine.Now()
	t.txDur.Observe(now - start)
	if t.chrome != nil {
		what := "commit"
		if switched {
			what = "commit-switched"
		}
		t.chrome.txEnd(core, section, attempt, now, what)
	}
}

// TxAbort records a rolled-back attempt.
func (t *Telemetry) TxAbort(core, section, attempt int, start uint64, cause htm.AbortCause) {
	if t == nil {
		return
	}
	t.aborts++
	if int(cause) < len(t.abortsBy) {
		t.abortsBy[cause]++
	}
	now := t.engine.Now()
	t.abortDur.Observe(now - start)
	if t.chrome != nil {
		t.chrome.txEnd(core, section, attempt, now, "abort:"+cause.String())
	}
}

// Conflict records one conflict-arbitration outcome: winner kept (or took)
// line and loser was rejected or aborted. read/write give the loser's
// involvement with the line (its set membership for a defeated holder, its
// request flavor for a rejected requester); aborted marks outcomes that
// rolled the loser back — those feed the aborter→abortee matrix, all feed
// the per-line heat.
func (t *Telemetry) Conflict(winner, loser int, line mem.Line, read, write, aborted bool) {
	if t == nil {
		return
	}
	t.prov.record(winner, loser, line, read, write, aborted)
}
