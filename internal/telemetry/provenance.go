package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
)

// lineStat accumulates conflict activity on one cache line.
type lineStat struct {
	conflicts uint64 // all arbitration losses on the line
	aborts    uint64 // losses that rolled the loser back
	reads     uint64 // loser involvement: read-set / read-request
	writes    uint64 // loser involvement: write-set / write-request
}

// provenance tracks where conflicts land (per-line heat) and who aborts
// whom (the cores×cores attribution matrix).
type provenance struct {
	lines  map[mem.Line]*lineStat
	matrix []uint64 // matrix[winner*cores+loser] = aborts inflicted
	cores  int
}

func newProvenance() *provenance {
	return &provenance{lines: make(map[mem.Line]*lineStat)}
}

// size allocates the attribution matrix for the machine's core count.
func (p *provenance) size(cores int) {
	p.cores = cores
	p.matrix = make([]uint64, cores*cores)
}

// record notes one conflict outcome.
func (p *provenance) record(winner, loser int, line mem.Line, read, write, aborted bool) {
	ls := p.lines[line]
	if ls == nil {
		ls = &lineStat{}
		p.lines[line] = ls
	}
	ls.conflicts++
	if aborted {
		ls.aborts++
	}
	if read {
		ls.reads++
	}
	if write {
		ls.writes++
	}
	if aborted && winner >= 0 && winner < p.cores && loser >= 0 && loser < p.cores {
		p.matrix[winner*p.cores+loser]++
	}
}

// HotLine is one row of the conflict-heat export.
type HotLine struct {
	Aborts    uint64 `json:"aborts"`
	Conflicts uint64 `json:"conflicts"`
	Line      uint64 `json:"line"`
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
}

// hotLines returns the n most-conflicted lines, hottest first (line number
// breaks ties so the export is deterministic).
func (p *provenance) hotLines(n int) []HotLine {
	keys := make([]mem.Line, 0, len(p.lines))
	for l := range p.lines {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := p.lines[keys[i]], p.lines[keys[j]]
		if a.conflicts != b.conflicts {
			return a.conflicts > b.conflicts
		}
		return keys[i] < keys[j]
	})
	if n > 0 && len(keys) > n {
		keys = keys[:n]
	}
	out := make([]HotLine, 0, len(keys))
	for _, l := range keys {
		ls := p.lines[l]
		out = append(out, HotLine{
			Aborts: ls.aborts, Conflicts: ls.conflicts, Line: uint64(l),
			Reads: ls.reads, Writes: ls.writes,
		})
	}
	return out
}

// abortMatrix exports the non-zero attribution cells keyed by zero-padded
// core ids ("c03"), so lexicographic key order equals numeric core order.
func (p *provenance) abortMatrix() map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64)
	for w := 0; w < p.cores; w++ {
		var row map[string]uint64
		for l := 0; l < p.cores; l++ {
			n := p.matrix[w*p.cores+l]
			if n == 0 {
				continue
			}
			if row == nil {
				row = make(map[string]uint64)
				out[coreKey(w)] = row
			}
			row[coreKey(l)] = n
		}
	}
	return out
}

func coreKey(c int) string { return fmt.Sprintf("c%02d", c) }

// HotLines returns the top-n conflict-heat rows (n<=0 uses the configured
// bound).
func (t *Telemetry) HotLines(n int) []HotLine {
	if t == nil {
		return nil
	}
	if n <= 0 {
		n = t.cfg.HotLines
	}
	return t.prov.hotLines(n)
}

// RenderProvenance writes a human-readable conflict-provenance summary:
// the top-n hottest lines and the aborter→abortee matrix rows.
func (t *Telemetry) RenderProvenance(w io.Writer, n int) {
	if t == nil {
		return
	}
	hot := t.HotLines(n)
	fmt.Fprintf(w, "conflict heat (top %d of %d lines):\n", len(hot), len(t.prov.lines))
	for _, h := range hot {
		fmt.Fprintf(w, "  line %8d  conflicts=%-6d aborts=%-6d reads=%-6d writes=%d\n",
			h.Line, h.Conflicts, h.Aborts, h.Reads, h.Writes)
	}
	mat := t.prov.abortMatrix()
	keys := make([]string, 0, len(mat))
	for k := range mat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "abort attribution (aborter -> abortee=count):\n")
	for _, k := range keys {
		row := mat[k]
		cols := make([]string, 0, len(row))
		for c := range row {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		fmt.Fprintf(w, "  %s:", k)
		for _, c := range cols {
			fmt.Fprintf(w, " %s=%d", c, row[c])
		}
		fmt.Fprintln(w)
	}
}
