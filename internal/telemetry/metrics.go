package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count. The simulator's event loop is
// single-threaded, so updates are plain increments — no atomics, no
// allocation.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into power-of-two buckets: bucket i holds
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Observing is
// one increment — no allocation, no search.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets [65]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bucket is one exported histogram bucket: N values were observed with
// value <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Buckets returns the non-empty buckets in increasing bound order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		out = append(out, Bucket{Le: le, N: n})
	}
	return out
}

// seriesKind selects how a sampled column derives its per-tick value from
// its callbacks.
type seriesKind uint8

const (
	// kindGauge records the callback's value as-is.
	kindGauge seriesKind = iota
	// kindRate records the delta of a cumulative callback since the last
	// sample.
	kindRate
	// kindRatio records delta(num)/delta(den) over the sampling interval
	// (0 when den did not move).
	kindRatio
	// kindPerCycle records delta/(elapsed*scale): a cumulative quantity
	// normalized to a per-cycle occupancy/utilization fraction.
	kindPerCycle
)

// series is one sampled time-series column.
type series struct {
	name    string
	kind    seriesKind
	fn      func() float64 // value source (cumulative for rate kinds)
	den     func() float64 // denominator source (kindRatio)
	scale   float64        // kindPerCycle normalization divisor
	last    float64
	lastDen float64
	vals    []float64
}

// Registry holds the named instruments and sampled time-series of one run.
// Registration happens at machine construction; the first sample freezes
// the set and fixes the (sorted) column order.
type Registry struct {
	series   []*series
	counters []struct {
		name string
		fn   func() uint64
	}
	gauges []struct {
		name string
		fn   func() float64
	}
	hists []struct {
		name string
		h    *Histogram
	}
	names  map[string]bool
	frozen bool

	cycles    []uint64
	lastCycle uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) claim(name string) {
	if r.frozen {
		panic(fmt.Sprintf("telemetry: register %q after first sample", name))
	}
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
}

// GaugeSeries samples fn's instantaneous value every interval.
func (r *Registry) GaugeSeries(name string, fn func() float64) {
	r.claim(name)
	r.series = append(r.series, &series{name: name, kind: kindGauge, fn: fn})
}

// RateSeries samples the per-interval delta of the cumulative fn.
func (r *Registry) RateSeries(name string, fn func() float64) {
	r.claim(name)
	r.series = append(r.series, &series{name: name, kind: kindRate, fn: fn})
}

// RatioSeries samples delta(num)/delta(den) per interval (0 when den is
// unchanged) — e.g. commits/attempts for a windowed commit rate.
func (r *Registry) RatioSeries(name string, num, den func() float64) {
	r.claim(name)
	r.series = append(r.series, &series{name: name, kind: kindRatio, fn: num, den: den})
}

// PerCycleSeries samples delta(fn)/(elapsed*scale): a cumulative quantity
// normalized into a per-cycle utilization — e.g. flit-hops over link-cycles
// for NoC link occupancy.
func (r *Registry) PerCycleSeries(name string, fn func() float64, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	r.claim(name)
	r.series = append(r.series, &series{name: name, kind: kindPerCycle, fn: fn, scale: scale})
}

// CounterFunc exports fn's cumulative value in the end-of-run totals.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.claim(name)
	r.counters = append(r.counters, struct {
		name string
		fn   func() uint64
	}{name, fn})
}

// GaugeFunc exports fn's final value in the end-of-run totals.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.claim(name)
	r.gauges = append(r.gauges, struct {
		name string
		fn   func() float64
	}{name, fn})
}

// NewHistogram registers and returns a named histogram.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.claim(name)
	h := &Histogram{}
	r.hists = append(r.hists, struct {
		name string
		h    *Histogram
	}{name, h})
	return h
}

// freeze fixes the sorted column order before the first sample.
func (r *Registry) freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	sort.Slice(r.series, func(i, j int) bool { return r.series[i].name < r.series[j].name })
	sort.Slice(r.counters, func(i, j int) bool { return r.counters[i].name < r.counters[j].name })
	sort.Slice(r.gauges, func(i, j int) bool { return r.gauges[i].name < r.gauges[j].name })
	sort.Slice(r.hists, func(i, j int) bool { return r.hists[i].name < r.hists[j].name })
}

// Sample appends one point to every series at simulated cycle now.
func (r *Registry) Sample(now uint64) {
	r.freeze()
	elapsed := now - r.lastCycle
	if elapsed == 0 {
		elapsed = 1
	}
	r.cycles = append(r.cycles, now)
	for _, s := range r.series {
		raw := s.fn()
		var v float64
		switch s.kind {
		case kindGauge:
			v = raw
		case kindRate:
			v = raw - s.last
		case kindRatio:
			d := s.den()
			if dd := d - s.lastDen; dd != 0 {
				v = (raw - s.last) / dd
			}
			s.lastDen = d
		case kindPerCycle:
			v = (raw - s.last) / (float64(elapsed) * s.scale)
		}
		s.last = raw
		s.vals = append(s.vals, v)
	}
	r.lastCycle = now
}

// Samples returns the number of points taken.
func (r *Registry) Samples() int { return len(r.cycles) }
