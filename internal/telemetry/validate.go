package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ValidateSortedKeys checks that every object in the JSON document lists
// its keys in strictly increasing (bytewise) order — the export-stability
// rule all telemetry documents follow so diffs of two runs are clean.
func ValidateSortedKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	// stack holds, per open container, the last object key seen ("" before
	// the first); array levels push a sentinel that never matches a key.
	type level struct {
		object  bool
		lastKey string
		expKey  bool // next string token is a key, not a value
	}
	var stack []level
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		top := func() *level {
			if len(stack) == 0 {
				return nil
			}
			return &stack[len(stack)-1]
		}
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{':
				stack = append(stack, level{object: true, expKey: true})
			case '[':
				stack = append(stack, level{})
			case '}', ']':
				stack = stack[:len(stack)-1]
				if t := top(); t != nil && t.object {
					t.expKey = true
				}
			}
		case string:
			t := top()
			if t != nil && t.object && t.expKey {
				if t.lastKey != "" && v <= t.lastKey {
					return fmt.Errorf("telemetry: key %q out of order after %q at offset %d",
						v, t.lastKey, dec.InputOffset())
				}
				t.lastKey = v
				t.expKey = false
				continue
			}
			if t != nil && t.object {
				t.expKey = true
			}
		default:
			if t := top(); t != nil && t.object {
				t.expKey = true
			}
		}
	}
}

// ValidateChromeTrace checks the structural schema of a Chrome-trace-event
// JSON document: a traceEvents array whose entries carry a known phase,
// name/pid/tid/ts fields, and durations on complete ("X") events.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   string  `json:"ph"`
			Ts   *uint64 `json:"ts"`
			Dur  *uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("telemetry: chrome trace: missing traceEvents array")
	}
	valid := map[string]bool{
		"B": true, "E": true, "X": true, "i": true, "I": true, "M": true,
		"s": true, "t": true, "f": true, "C": true, "b": true, "e": true, "n": true,
	}
	for i, e := range doc.TraceEvents {
		if !valid[e.Ph] {
			return fmt.Errorf("telemetry: chrome trace: event %d has unknown phase %q", i, e.Ph)
		}
		if e.Name == nil {
			return fmt.Errorf("telemetry: chrome trace: event %d (ph %q) has no name", i, e.Ph)
		}
		if e.Ph != "M" && e.Ts == nil {
			return fmt.Errorf("telemetry: chrome trace: event %d (ph %q) has no ts", i, e.Ph)
		}
		if e.Ph == "X" && e.Dur == nil {
			return fmt.Errorf("telemetry: chrome trace: complete event %d has no dur", i)
		}
	}
	return nil
}

// ValidateMetrics checks the structural schema of a metrics JSON document:
// sorted keys, nondecreasing sample cycles, equal-length series columns,
// and the presence of the built-in rate curves.
func ValidateMetrics(data []byte) error {
	if err := ValidateSortedKeys(data); err != nil {
		return err
	}
	var doc struct {
		Cycles   *[]uint64            `json:"cycles"`
		Interval *uint64              `json:"interval"`
		Series   map[string][]float64 `json:"series"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: metrics: %w", err)
	}
	if doc.Cycles == nil || doc.Interval == nil || doc.Series == nil {
		return fmt.Errorf("telemetry: metrics: missing cycles/interval/series section")
	}
	cycles := *doc.Cycles
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			return fmt.Errorf("telemetry: metrics: sample cycles not increasing at index %d", i)
		}
	}
	for _, name := range []string{"abort_rate", "commit_rate"} {
		if _, ok := doc.Series[name]; !ok {
			return fmt.Errorf("telemetry: metrics: missing built-in series %q", name)
		}
	}
	//lockiller:ordered validation only reads lengths; no output or state depends on iteration order
	for name, vals := range doc.Series {
		if len(vals) != len(cycles) {
			return fmt.Errorf("telemetry: metrics: series %q has %d points for %d samples",
				name, len(vals), len(cycles))
		}
	}
	return nil
}
