package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// histExport is one histogram in the metrics JSON.
type histExport struct {
	Buckets []Bucket `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
}

// provExport is the conflict-provenance section of the metrics JSON.
type provExport struct {
	HotLines []HotLine                    `json:"hot_lines"`
	Matrix   map[string]map[string]uint64 `json:"matrix"`
}

// metricsExport is the top-level metrics JSON object. Struct fields are
// declared in alphabetical (= emitted) key order, and the map-valued
// sections rely on encoding/json's sorted map-key rendering, so the whole
// document satisfies the sorted-key export rule.
type metricsExport struct {
	Counters   map[string]uint64     `json:"counters"`
	Cycles     []uint64              `json:"cycles"`
	Gauges     map[string]float64    `json:"gauges"`
	Histograms map[string]histExport `json:"histograms"`
	Interval   uint64                `json:"interval"`
	Meta       Meta                  `json:"meta"`
	Provenance provExport            `json:"provenance"`
	Series     map[string][]float64  `json:"series"`
}

// export assembles the full metrics document.
func (t *Telemetry) export() metricsExport {
	r := t.Reg
	r.freeze()
	out := metricsExport{
		Counters:   make(map[string]uint64, len(r.counters)),
		Cycles:     r.cycles,
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]histExport, len(r.hists)),
		Interval:   t.cfg.Interval,
		Meta:       t.Meta,
		Provenance: provExport{
			HotLines: t.prov.hotLines(t.cfg.HotLines),
			Matrix:   t.prov.abortMatrix(),
		},
		Series: make(map[string][]float64, len(r.series)),
	}
	if out.Cycles == nil {
		out.Cycles = []uint64{}
	}
	if out.Provenance.HotLines == nil {
		out.Provenance.HotLines = []HotLine{}
	}
	for _, c := range r.counters {
		out.Counters[c.name] = c.fn()
	}
	for _, g := range r.gauges {
		out.Gauges[g.name] = g.fn()
	}
	for _, h := range r.hists {
		b := h.h.Buckets()
		if b == nil {
			b = []Bucket{}
		}
		out.Histograms[h.name] = histExport{Buckets: b, Count: h.h.Count(), Sum: h.h.Sum()}
	}
	for _, s := range r.series {
		v := s.vals
		if v == nil {
			v = []float64{}
		}
		out.Series[s.name] = v
	}
	return out
}

// WriteMetricsJSON writes the sampled time-series, instrument totals, and
// conflict provenance as sorted-key JSON.
func (t *Telemetry) WriteMetricsJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.export())
}

// WriteMetricsCSV writes the sampled time-series as CSV: one row per
// sample, a "cycle" column followed by the series in sorted-name order.
func (t *Telemetry) WriteMetricsCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	r := t.Reg
	r.freeze()
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(r.series)+1)
	header = append(header, "cycle")
	for _, s := range r.series {
		header = append(header, s.name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, cyc := range r.cycles {
		row[0] = strconv.FormatUint(cyc, 10)
		for j, s := range r.series {
			row[j+1] = strconv.FormatFloat(s.vals[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
