package cpu

import (
	"fmt"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
	"repro/internal/sim"
)

// Randomized end-to-end stress: generate arbitrary programs (mixed reads,
// writes, RMWs, faults, compute, barriers, overflowing sets) and run them
// under randomly drawn system configurations. Every run must (a) complete
// without deadlock, (b) complete exactly the generated atomic sections,
// (c) keep every functional counter exact, and (d) be deterministic.
func randomProgram(rng *sim.RNG, threads int, counters []mem.Line) ([]Program, map[mem.Line]uint64) {
	expect := make(map[mem.Line]uint64)
	progs := make([]Program, threads)
	sets := 32 * 1024 / 64 / 4
	barriers := rng.Intn(3)
	sections := 8 + rng.Intn(16)
	for th := 0; th < threads; th++ {
		var p Program
		for s := 0; s < sections; s++ {
			if barriers > 0 && s > 0 && s%(sections/(barriers+1)+1) == 0 {
				p = append(p, BarrierSection())
			}
			var ops []Op
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2:
					ops = append(ops, Read(mem.Line(1<<20+rng.Intn(128))))
				case 3, 4:
					ops = append(ops, Write(mem.Line(1<<20+rng.Intn(128))))
				case 5, 6:
					c := counters[rng.Intn(len(counters))]
					ops = append(ops, RMW(c))
					expect[c]++
				case 7:
					ops = append(ops, Compute(uint64(1+rng.Intn(40))))
				case 8:
					if rng.Bool(0.3) {
						ops = append(ops, Fault())
					} else {
						ops = append(ops, Compute(5))
					}
				case 9:
					// A burst mapping to one L1 set: overflow pressure.
					base := 1<<22 + th*8192 + rng.Intn(4)
					for j := 0; j < 5; j++ {
						ops = append(ops, Write(mem.Line(base+j*sets)))
					}
				}
			}
			p = append(p, AtomicStatic(ops), Plain([]Op{Compute(uint64(5 + rng.Intn(30)))}))
		}
		progs[th] = p
	}
	return progs, expect
}

func randomConfig(rng *sim.RNG) (SyncSystem, htm.Config) {
	if rng.Bool(0.15) {
		return SysCGL, htm.Config{}.Defaults()
	}
	hc := htm.Config{MaxRetries: 1 + rng.Intn(8)}
	switch rng.Intn(4) {
	case 1:
		hc.Recovery = true
		hc.RejectPolicy = htm.RejectPolicy(rng.Intn(3))
		hc.Priority = priority.InstsBased{}
	case 2:
		hc.Recovery = true
		hc.RejectPolicy = htm.WaitWakeup
		hc.Priority = priority.InstsBased{}
		hc.HTMLock = true
	case 3:
		hc.Recovery = true
		hc.RejectPolicy = htm.RejectPolicy(rng.Intn(3))
		hc.Priority = priority.Progression{}
		hc.HTMLock = true
		hc.SwitchingMode = true
	}
	return SysHTM, hc.Defaults()
}

func TestRandomizedEndToEnd(t *testing.T) {
	counters := []mem.Line{1 << 23, 1<<23 + 1, 1<<23 + 2}
	for trial := uint64(1); trial <= 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := sim.NewRNG(trial * 7919)
			threads := 2 + rng.Intn(3)
			progs, expect := randomProgram(rng, threads, counters)
			sync, hc := randomConfig(rng)

			p := smallParams()
			if rng.Bool(0.3) {
				p.MidSize, p.MidWays = 4*1024, 8 // three-level organization
			}
			if rng.Bool(0.3) {
				p.L1Size = 8 * 1024 // small-cache pressure
			}
			cfg := Config{Machine: p, HTM: hc, Sync: sync, Threads: threads, Seed: trial}
			run := func() (*Machine, uint64) {
				m := NewMachine(cfg, "rand", "stress", progs)
				r, err := m.Run()
				if err != nil {
					t.Fatalf("config %+v: %v", hc, err)
				}
				return m, r.ExecCycles
			}
			m, cycles := run()

			var wantSections uint64
			for _, pr := range progs {
				wantSections += uint64(pr.CountAtomic())
			}
			if got := m.Stats.Sections(); got != wantSections {
				t.Fatalf("completed %d sections, want %d", got, wantSections)
			}
			for c, want := range expect {
				if got := m.CounterValue(c); got != want {
					t.Fatalf("counter %d = %d, want %d (atomicity violated)", c, got, want)
				}
			}
			// Determinism.
			if _, cycles2 := run(); cycles2 != cycles {
				t.Fatalf("non-deterministic: %d vs %d cycles", cycles, cycles2)
			}
		})
	}
}
