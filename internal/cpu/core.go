package cpu

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Core is one hardware thread: an in-order, single-issue core bound to one
// L1 cache, executing its thread program section by section. It implements
// coherence.Client so the L1 can notify it of asynchronous aborts.
//lockiller:tile-state
type Core struct {
	m    *Machine
	id   int
	prog Program
	st   *stats.Core
	rng  *sim.RNG

	secIdx  int
	retries int
	// token invalidates in-flight compute continuations across aborts
	// (L1-side callbacks are epoch-guarded by the L1 itself).
	token uint64
	// staged holds this attempt's speculative functional counter updates,
	// applied when the section completes and discarded on abort.
	staged map[memLine]uint64
	// resume is the continuation of the one in-flight compute/fault delay
	// or memory access: the core is in-order, so per live token at most one
	// such continuation is ever pending, and stale events are filtered by
	// their token.
	resume struct {
		ops  []Op
		i    int
		tok  uint64
		done func()
	}
	// contFn is the prebound memory-access completion (accessDone), built
	// once so the per-op Access call allocates no closure.
	contFn func()

	// fusedRuns counts event-fusion fast-path runs (maximal inline op
	// chains); collected into stats.Run.FusedRuns after the run.
	fusedRuns uint64
}

// Typed-event kinds handled by Core.OnEvent. Each event carries the token
// of the attempt that scheduled it; a mismatch means the attempt aborted.
const (
	evResume  uint8 = iota // continue runOps from c.resume
	evRestart              // restart the current section's attempt
)

// SimTile implements sim.TileOwner: every core event belongs to the core's
// own tile.
func (c *Core) SimTile() int { return c.id }

// ProbeClass implements sim.ProbeClasser for self-profiler reports.
func (c *Core) ProbeClass() string { return "core" }

// OnEvent implements sim.Handler for the core's allocation-free delays.
func (c *Core) OnEvent(kind uint8, a uint64, _ any) {
	if a != c.token {
		return
	}
	switch kind {
	case evResume:
		r := c.resume
		c.runOps(r.ops, r.i, a, r.done)
	case evRestart:
		c.startAttempt(c.prog[c.secIdx])
	}
}

type memLine = mem.Line

func newCore(m *Machine, id int, prog Program, st *stats.Core, rng *sim.RNG) *Core {
	c := &Core{m: m, id: id, prog: prog, st: st, rng: rng}
	c.contFn = c.accessDone
	m.Sys.L1s[id].SetClient(c)
	return c
}

// reset rebinds the core to a new run (machine reset between runs): a new
// program, a fresh stats sink, and a fresh per-core RNG stream. The staged-
// counter map keeps its buckets (cleared in place, exactly as commits do);
// the machine pointer, tile id, and prebound completion survive.
func (c *Core) reset(prog Program, st *stats.Core, rng *sim.RNG) {
	c.prog = prog
	c.st = st
	c.rng = rng
	c.secIdx = 0
	c.retries = 0
	c.token = 0
	clear(c.staged)
	c.resume.ops, c.resume.i, c.resume.tok, c.resume.done = nil, 0, 0, nil
	c.fusedRuns = 0
}

func (c *Core) engine() *sim.Engine { return c.m.Engine }
func (c *Core) now() uint64         { return c.m.Engine.Now() }
func (c *Core) tx() *htm.TxState    { return c.m.Sys.L1s[c.id].Tx }

// start begins executing the program.
func (c *Core) start() {
	c.st.StartSegment(stats.CatNonTx, c.now())
	c.nextSection()
}

// nextSection dispatches the next program section.
func (c *Core) nextSection() {
	if c.secIdx >= len(c.prog) {
		c.st.Finish(c.now())
		c.m.coreDone()
		return
	}
	sec := c.prog[c.secIdx]
	switch {
	case sec.Barrier:
		c.st.StartSegment(stats.CatNonTx, c.now())
		c.st.Barriers++
		c.m.Barrier.Arrive(func() { c.advance() })
	case sec.Atomic:
		c.retries = 0
		if c.m.Cfg.Sync == SysCGL {
			c.runCGL(sec)
		} else {
			c.startAttempt(sec)
		}
	default:
		c.st.StartSegment(stats.CatNonTx, c.now())
		c.runOps(sec.Ops, 0, c.token, func() {
			// A non-transactional RMW becomes visible at completion (it
			// has no commit point to defer to).
			c.applyStaged()
			c.advance()
		})
	}
}

func (c *Core) advance() {
	c.secIdx++
	c.nextSection()
}

// runOps executes ops[i:] sequentially, honoring the current mode's
// semantics, then calls done. tok guards continuations against aborts.
//
// Compute and fault delays resume through a typed engine event (the state
// lives in c.resume), so the hot instruction-advance path allocates
// nothing; only memory ops build a completion closure.
func (c *Core) runOps(ops []Op, i int, tok uint64, done func()) {
	if tok != c.token {
		return
	}
	if !c.m.Cfg.DisableFusion {
		var wait bool
		i0 := i
		// wait=true means a fast hit applied its effects even though the
		// index did not advance, so it still counts as a run. The count
		// feeds the host-side run ledger; it never touches simulated state
		// (DESIGN.md §10).
		if i, wait = c.fuseOps(ops, i, tok, done); i > i0 || wait {
			c.fusedRuns++
		}
		if wait {
			return
		}
	}
	if i >= len(ops) {
		done()
		return
	}
	op := ops[i]
	switch op.Kind {
	case OpCompute:
		c.tx().InstsRetired += op.N
		c.resume.ops, c.resume.i, c.resume.done = ops, i+1, done
		c.engine().AfterEvent(op.N, c, evResume, tok, nil)
	case OpRead:
		c.accessOp(ops, i, tok, false, done)
	case OpWrite:
		c.accessOp(ops, i, tok, true, done)
	case OpRMW:
		// Functional atomic increment: load, stage new value, store. The
		// staged value becomes visible only when the section commits.
		c.m.Sys.L1s[c.id].Access(op.Line, false, func() {
			if tok != c.token {
				return
			}
			c.tx().InstsRetired++
			v, ok := c.staged[op.Line]
			if !ok {
				v = c.m.counters[op.Line]
			}
			c.m.Sys.L1s[c.id].Access(op.Line, true, func() {
				if tok != c.token {
					return
				}
				if c.staged == nil {
					c.staged = make(map[memLine]uint64)
				}
				c.staged[op.Line] = v + 1
				c.tx().InstsRetired++
				c.runOps(ops, i+1, tok, done)
			})
		})
	case OpFault:
		if c.tx().Mode == htm.HTM {
			// Exceptions abort best-effort HTM transactions; the paper's
			// switchingMode deliberately does not rescue them (§III-C).
			c.m.Sys.L1s[c.id].AbortLocal(htm.CauseFault)
			return
		}
		c.resume.ops, c.resume.i, c.resume.done = ops, i+1, done
		c.engine().AfterEvent(c.m.Cfg.FaultPenalty, c, evResume, tok, nil)
	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
}

// fuseOps is the event-fusion fast path (DESIGN.md §10): it executes the
// longest prefix of ops[i:] consisting of compute delays and guaranteed L1
// hits inline, lazily advancing simulated time to each op's completion,
// and returns the index of the first op it could not fuse. The caller
// continues from there on the ordinary event-driven path. When wait is
// true the caller must return instead: an op's completion was handed to the
// event queue (see below) and the continuation resumes through c.resume.
//
// Fusing an op is exact only if its completion time t is strictly earlier
// than every pending event: an event already queued at t carries a lower
// sequence number than anything the slow path would schedule now, so it
// would run first and could observe or change state mid-chain. The loop
// therefore re-checks Engine.PeekNext before each op — and again after
// TryFastHit, because a transactional store hit can itself emit protocol
// traffic (the eager pre-transactional writeback) that lands inside the
// hit-latency window. In that second case the hit's architectural effects
// are already applied, so the op cannot be un-fused; it completes through
// FinishFastHit, which schedules the same typed completion event the slow
// path would have, preserving the exact (when, seq) order.
func (c *Core) fuseOps(ops []Op, i int, tok uint64, done func()) (next int, wait bool) {
	eng := c.engine()
	l1 := c.m.Sys.L1s[c.id]
	hitLat := c.m.Sys.L1Hit
	for i < len(ops) {
		op := ops[i]
		var t uint64 // inline completion time of op
		switch op.Kind {
		case OpCompute:
			t = eng.Now() + op.N
		case OpRead, OpWrite:
			t = eng.Now() + hitLat
		default:
			return i, false // RMW / fault: full machinery required
		}
		if next, ok := eng.PeekNext(); ok && next <= t {
			return i, false // an event would interleave: fall back
		}
		if op.Kind == OpCompute {
			c.tx().InstsRetired += op.N
			eng.AdvanceTo(t)
			i++
			continue
		}
		if !l1.TryFastHit(op.Line, op.Kind == OpWrite) {
			return i, false // miss, upgrade, or queued-behind-MSHR
		}
		if next, ok := eng.PeekNext(); ok && next <= t {
			// The hit emitted traffic inside its own latency window; its
			// effects are applied, so complete it through the event path.
			c.resume.ops, c.resume.i, c.resume.tok, c.resume.done = ops, i+1, tok, done
			l1.FinishFastHit(c.contFn)
			return i, true
		}
		eng.AdvanceTo(t)
		c.tx().InstsRetired++
		i++
	}
	return i, false
}

// accessOp performs op i's load or store and steps to the next op when the
// memory system completes it. The continuation state is parked in c.resume
// and the L1 is handed the prebound accessDone, so the per-op path builds
// no closure. This relies on the in-order pipeline: between issuing the
// access and its completion the core runs nothing else that could overwrite
// c.resume, and a completion surviving an abort is filtered by its token.
func (c *Core) accessOp(ops []Op, i int, tok uint64, write bool, done func()) {
	c.resume.ops, c.resume.i, c.resume.tok, c.resume.done = ops, i+1, tok, done
	c.m.Sys.L1s[c.id].Access(ops[i].Line, write, c.contFn)
}

// accessDone is the shared completion continuation for accessOp.
func (c *Core) accessDone() {
	if c.resume.tok != c.token {
		return
	}
	c.tx().InstsRetired++
	c.runOps(c.resume.ops, c.resume.i, c.resume.tok, c.resume.done)
}

// --- CGL execution ---------------------------------------------------

func (c *Core) runCGL(sec Section) {
	c.st.StartSegment(stats.CatWaitLock, c.now())
	c.acquire(c.m.Lock, func() {
		c.st.StartSegment(stats.CatLock, c.now())
		c.tx().Mode = htm.Mutex
		body := sec.Body(1)
		c.runOps(body, 0, c.token, func() {
			c.tx().Mode = htm.NonTx
			c.release(c.m.Lock, func() {
				c.applyStaged()
				c.st.LockRuns++
				c.st.Sections++
				c.engine().Progress()
				c.st.StartSegment(stats.CatNonTx, c.now())
				c.advance()
			})
		})
	})
}

// --- HTM execution ---------------------------------------------------

// startAttempt begins (or restarts) a speculative attempt of the section.
func (c *Core) startAttempt(sec Section) {
	if c.retries >= c.m.Cfg.HTM.MaxRetries {
		c.fallback(sec)
		return
	}
	if !c.m.Cfg.HTM.HTMLock && c.m.Lock.Held() {
		// Listing 1's retry strategy: with the classic interface there is
		// no point starting while the fallback lock is held — the
		// subscription would abort us instantly. Spin until free.
		c.st.StartSegment(stats.CatWaitLock, c.now())
		c.spinWhileHeld(func() { c.startAttempt(sec) })
		return
	}
	c.st.StartSegment(stats.CatHTM, c.now())
	c.tx().BeginAttempt(htm.HTM, c.now())
	c.st.Attempts++
	if tr := c.m.Cfg.Tracer; tr.Enabled(trace.CatTx) {
		tr.Emitf(c.id, trace.CatTx, 0, "xbegin section=%d attempt=%d", c.secIdx, c.tx().Attempt)
	}
	if t := c.m.Cfg.Telemetry; t != nil {
		t.TxBegin(c.id, c.secIdx, c.tx().Attempt)
	}
	tok := c.token
	body := func() {
		ops := sec.Body(c.tx().Attempt)
		c.runOps(ops, 0, tok, func() { c.finishAttempt(sec) })
	}
	if c.m.Cfg.HTM.HTMLock {
		// HTMLock interface: no fallback-lock subscription (paper
		// Listing 1's grey modification removes the lock read).
		body()
		return
	}
	// Classic interface: read the fallback lock into the read set; abort
	// immediately if it is held.
	c.m.Sys.L1s[c.id].Access(c.m.Lock.Line, false, func() {
		if c.m.Lock.Held() {
			c.m.Sys.L1s[c.id].AbortLocal(htm.CauseMutex)
			return
		}
		body()
	})
}

// finishAttempt commits the attempt in whatever mode it ended in: HTM
// commit, or HTMLock-mode completion after a successful switch (STL).
func (c *Core) finishAttempt(sec Section) {
	switch c.tx().Mode {
	case htm.HTM:
		// The functional commit must coincide with the protection drop:
		// CommitTx clears the read/write sets and wakes rejected
		// requesters, so the staged values have to be visible first.
		c.applyStaged()
		c.m.Sys.L1s[c.id].CommitTx()
		c.st.Commits++
		if t := c.m.Cfg.Telemetry; t != nil {
			t.TxCommit(c.id, c.secIdx, c.tx().Attempt, c.tx().AttemptStart, false)
		}
		c.st.CloseAs(stats.CatHTM, stats.CatNonTx, c.now())
		c.sectionDone()
	case htm.STL:
		// The transaction switched to HTMLock mode mid-flight; hlend
		// without releasing the fallback lock (Listing 2).
		c.applyStaged()
		c.m.Sys.L1s[c.id].HLEnd()
		c.st.Commits++ // the attempt's work was saved, not wasted
		c.st.SwitchRuns++
		if t := c.m.Cfg.Telemetry; t != nil {
			t.TxCommit(c.id, c.secIdx, c.tx().Attempt, c.tx().AttemptStart, true)
		}
		c.st.CloseAs(stats.CatSwitchLock, stats.CatNonTx, c.now())
		c.sectionDone()
	default:
		panic(fmt.Sprintf("cpu: attempt finished in mode %v", c.tx().Mode))
	}
}

func (c *Core) sectionDone() {
	c.applyStaged()
	c.tx().Reset()
	c.st.Sections++
	c.engine().Progress()
	c.advance()
}

// applyStaged commits this section's functional counter updates. The map is
// cleared in place, not dropped: RMW-heavy sections would otherwise rebuild
// its buckets every attempt.
func (c *Core) applyStaged() {
	for l, v := range c.staged {
		c.m.counters[l] = v
	}
	clear(c.staged)
}

// OnDoom implements coherence.Client: the L1 has flash-cleared the
// transaction; schedule the architectural rollback and the retry.
func (c *Core) OnDoom(cause htm.AbortCause) {
	c.token++
	clear(c.staged) // discard speculative functional updates, keep the buckets
	c.st.Abort(cause)
	if t := c.m.Cfg.Telemetry; t != nil {
		t.TxAbort(c.id, c.secIdx, c.tx().Attempt, c.tx().AttemptStart, cause)
	}
	c.st.CloseAs(stats.CatAborted, stats.CatRollback, c.now())
	if cause != htm.CauseMutex {
		// Lock-busy aborts do not consume the retry budget: the thread
		// waits for the lock to free and tries again (Listing 1's retry
		// strategy); all other causes bring the transaction one step
		// closer to the fallback path.
		c.retries++
	}
	delay := c.m.Cfg.HTM.RollbackPenalty + c.backoff()
	c.engine().AfterEvent(delay, c, evRestart, c.token, nil)
}

// backoff returns the randomized exponential post-abort delay.
func (c *Core) backoff() uint64 {
	shift := c.retries
	if shift > 6 {
		shift = 6
	}
	base := c.m.Cfg.HTM.AbortBackoffBase << uint(shift)
	return base/2 + c.rng.Uint64()%base
}

// fallback executes the section on the non-speculative path: a TL lock
// transaction under HTMLock, a plain mutex section otherwise.
func (c *Core) fallback(sec Section) {
	if tr := c.m.Cfg.Tracer; tr.Enabled(trace.CatTx) {
		tr.Emitf(c.id, trace.CatTx, 0, "fallback section=%d after %d retries", c.secIdx, c.retries)
	}
	c.st.StartSegment(stats.CatWaitLock, c.now())
	c.acquire(c.m.Lock, func() {
		if c.m.Cfg.HTM.HTMLock {
			c.m.Sys.L1s[c.id].HLBegin(func() {
				c.st.StartSegment(stats.CatLock, c.now())
				c.tx().BeginAttempt(htm.TL, c.now())
				body := sec.Body(c.tx().Attempt)
				c.runOps(body, 0, c.token, func() {
					// Staged updates become visible before hlend wakes the
					// requesters this lock transaction rejected — otherwise
					// a woken reader could see pre-transaction values while
					// the lock-release access is still in flight.
					c.applyStaged()
					c.m.Sys.L1s[c.id].HLEnd()
					c.release(c.m.Lock, func() {
						c.st.LockRuns++
						c.lockSectionDone()
					})
				})
			})
			return
		}
		c.st.StartSegment(stats.CatLock, c.now())
		c.tx().Mode = htm.Mutex
		body := sec.Body(1)
		c.runOps(body, 0, c.token, func() {
			c.tx().Mode = htm.NonTx
			c.release(c.m.Lock, func() {
				c.st.LockRuns++
				c.lockSectionDone()
			})
		})
	})
}

func (c *Core) lockSectionDone() {
	c.applyStaged()
	c.tx().Reset()
	c.st.Sections++
	c.engine().Progress()
	c.st.StartSegment(stats.CatNonTx, c.now())
	c.advance()
}

// --- lock primitives --------------------------------------------------

// acquire takes a FIFO queued lock. The RMW is modeled by a real store to
// the lock line; a contended caller parks (futex-style, no spin traffic)
// and is handed the lock directly by the releasing core, paying one more
// cache-to-cache transfer on the handover.
func (c *Core) acquire(lk *SpinLock, done func()) {
	if tr := c.m.Cfg.Tracer; tr.Enabled(trace.CatLock) {
		tr.Emitf(c.id, trace.CatLock, lk.Line, "lock acquire (held=%v waiters=%d)", lk.Held(), lk.Waiters())
	}
	c.m.Sys.L1s[c.id].Access(lk.Line, true, func() {
		granted := func() {
			// Ownership handed over: take the lock line (transfer traffic).
			c.m.Sys.L1s[c.id].Access(lk.Line, true, done)
		}
		if lk.acquireOrEnqueue(c.id, granted) {
			done()
		}
	})
}

// release frees the lock with a real store, waking the next waiter.
func (c *Core) release(lk *SpinLock, done func()) {
	if tr := c.m.Cfg.Tracer; tr.Enabled(trace.CatLock) {
		tr.Emitf(c.id, trace.CatLock, lk.Line, "lock release (waiters=%d)", lk.Waiters())
	}
	c.m.Sys.L1s[c.id].Access(lk.Line, true, func() {
		if next := lk.release(c.id); next != nil {
			c.engine().After(1, next)
		}
		done()
	})
}

// spinWhileHeld re-reads the lock line until it is observed free.
func (c *Core) spinWhileHeld(done func()) {
	var spin func()
	spin = func() {
		c.m.Sys.L1s[c.id].Access(c.m.Lock.Line, false, func() {
			if c.m.Lock.Held() {
				c.engine().After(c.m.Cfg.SpinInterval, spin)
				return
			}
			done()
		})
	}
	spin()
}
