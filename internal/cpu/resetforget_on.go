//go:build reuseforget

package cpu

// resetForget simulates a forgotten field in Machine.Reset — leftover retry
// state on core 0, exactly the kind of bug a hand-written reset accumulates
// over time — so the tagged fixture test can assert the reflection walk
// reports it. Never enabled in normal builds.
func resetForget(m *Machine) { m.Cores[0].retries = 1 }
