package cpu

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// SpinLock is the functional state of a lock variable: a FIFO queued lock
// (MCS/futex-style — what a production pthread mutex behaves like under
// contention), so the CGL baseline and the HTM fallback path pay a
// realistic one-transfer handover rather than a thundering-herd storm.
// The coherence traffic of lock operations is simulated through real L1
// accesses to Line; only the held/owner/queue state is tracked
// functionally (the simulator does not model data values).
//lockiller:shared-state
type SpinLock struct {
	Line  mem.Line
	held  bool
	owner int
	queue []lockWaiter

	// Acquisitions and Handovers are stats counters.
	Acquisitions, Handovers uint64
}

type lockWaiter struct {
	core    int
	granted func()
}

// NewSpinLock creates a free lock on the given line.
func NewSpinLock(l mem.Line) *SpinLock { return &SpinLock{Line: l, owner: -1} }

// Reset returns the lock to its just-constructed free state in place
// (machine reset between runs). The queue backing survives — release slides
// the slice forward, so re-slicing to zero length simply rewinds into
// whatever backing the last run grew.
func (s *SpinLock) Reset() {
	s.held = false
	s.owner = -1
	s.queue = s.queue[:0]
	s.Acquisitions, s.Handovers = 0, 0
}

// Held reports whether the lock is currently held.
func (s *SpinLock) Held() bool { return s.held }

// Owner returns the current holder's core id, or -1.
func (s *SpinLock) Owner() int { return s.owner }

// Waiters returns the queue length.
func (s *SpinLock) Waiters() int { return len(s.queue) }

// acquireOrEnqueue atomically takes the lock if free (returning true) or
// queues the caller; granted runs when ownership is handed over (invoked
// at the completion of the RMW store that models the atomic operation).
func (s *SpinLock) acquireOrEnqueue(core int, granted func()) bool {
	if !s.held {
		s.held = true
		s.owner = core
		s.Acquisitions++
		return true
	}
	s.queue = append(s.queue, lockWaiter{core: core, granted: granted})
	return false
}

// release frees the lock or hands it directly to the next queued waiter,
// returning the waiter's grant callback (nil when the queue was empty).
// Releasing a lock not held by core is a bug.
func (s *SpinLock) release(core int) func() {
	if !s.held || s.owner != core {
		panic("cpu: release of a lock not held by this core")
	}
	if len(s.queue) == 0 {
		s.held = false
		s.owner = -1
		return nil
	}
	w := s.queue[0]
	s.queue = s.queue[1:]
	s.owner = w.core
	s.Acquisitions++
	s.Handovers++
	return w.granted
}

// Barrier is a program-level sense barrier: threads arriving wait until
// all n participants have arrived, then all resume.
//lockiller:shared-state
type Barrier struct {
	engine  *sim.Engine
	n       int
	waiting []func()
	// Crossings counts completed barrier episodes.
	Crossings uint64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(engine *sim.Engine, n int) *Barrier {
	if n <= 0 {
		panic("cpu: barrier with no participants")
	}
	return &Barrier{engine: engine, n: n}
}

// Reset returns the barrier to its just-constructed state (machine reset
// between runs). A clean run always ends with an empty waiting list —
// Arrive drops it when the last participant crosses — so only the episode
// counter needs clearing.
func (b *Barrier) Reset() {
	b.waiting = nil
	b.Crossings = 0
}

// Arrive blocks the caller (cont is deferred) until all participants have
// arrived, then releases everyone.
func (b *Barrier) Arrive(cont func()) {
	b.waiting = append(b.waiting, cont)
	if len(b.waiting) < b.n {
		return
	}
	b.Crossings++
	ws := b.waiting
	b.waiting = nil
	for _, w := range ws {
		w := w
		b.engine.After(1, w)
	}
}
