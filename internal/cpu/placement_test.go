package cpu

import "testing"

func TestMapThreads(t *testing.T) {
	packed := mapThreads(PlacePacked, 4, 32)
	for i, c := range packed {
		if c != i {
			t.Fatalf("packed[%d] = %d", i, c)
		}
	}
	spread := mapThreads(PlaceSpread, 4, 32)
	want := []int{0, 8, 16, 24}
	for i, c := range spread {
		if c != want[i] {
			t.Fatalf("spread = %v, want %v", spread, want)
		}
	}
	// Full occupancy: both map 1:1.
	full := mapThreads(PlaceSpread, 32, 32)
	seen := map[int]bool{}
	for _, c := range full {
		if c < 0 || c >= 32 || seen[c] {
			t.Fatalf("spread full occupancy broken: %v", full)
		}
		seen[c] = true
	}
}

func TestPlacementChangesTiming(t *testing.T) {
	progs := counterProgram(4, 40, 4096)
	runWith := func(pl Placement) uint64 {
		cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM,
			Threads: 4, Seed: 5, Placement: pl}
		// smallParams has 4 cores; use the default 32-core machine so the
		// placements actually differ.
		cfg.Machine.Cores, cfg.Machine.MeshW, cfg.Machine.MeshH = 32, 4, 8
		cfg.Machine.LLCSize = 8 << 20
		r := run(t, cfg, progs)
		return r.ExecCycles
	}
	packed := runWith(PlacePacked)
	spread := runWith(PlaceSpread)
	if packed == spread {
		t.Fatal("placement had no timing effect (NoC distances not modeled?)")
	}
	// Both complete the same work.
}
