//go:build !reuseforget

package cpu

// resetForget is the hook the reuse-walk fixture test drives: under the
// reuseforget build tag it deliberately skips part of Machine.Reset so the
// tagged test can prove ResetDiff catches a forgotten field. In normal
// builds it is a no-op the compiler erases.
func resetForget(*Machine) {}
