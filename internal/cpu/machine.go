package cpu

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Placement selects how threads are bound to mesh tiles. The paper pins
// thread i to core i (packed); spreading threads maximizes inter-thread
// NoC distance but also spreads LLC-bank locality — an ablation knob.
type Placement uint8

const (
	// PlacePacked binds thread i to core i (the paper's binding).
	PlacePacked Placement = iota
	// PlaceSpread distributes threads evenly across the mesh.
	PlaceSpread
)

// mapThreads returns the core id for each thread under the placement.
func mapThreads(p Placement, threads, cores int) []int {
	out := make([]int, threads)
	switch p {
	case PlaceSpread:
		stride := cores / threads
		if stride < 1 {
			stride = 1
		}
		for i := range out {
			out[i] = (i * stride) % cores
		}
	default:
		for i := range out {
			out[i] = i
		}
	}
	return out
}

// SyncSystem selects how atomic sections are executed.
type SyncSystem uint8

const (
	// SysCGL executes every atomic section under one global lock with the
	// same granularity as the transactions (Table II's CGL row).
	SysCGL SyncSystem = iota
	// SysHTM executes atomic sections as best-effort HTM transactions with
	// the mechanisms enabled in the htm.Config (all other Table II rows).
	SysHTM
)

// Config assembles a whole machine run.
type Config struct {
	Machine coherence.Params
	HTM     htm.Config
	Sync    SyncSystem
	Threads int
	Seed    uint64
	// FaultPenalty is the non-speculative cost of an OpFault (an exception
	// handled outside a transaction).
	FaultPenalty uint64
	// SpinInterval is the re-read period of the test-and-test-and-set
	// lock spin loop.
	SpinInterval uint64
	// Limit bounds the simulation length in cycles (0 = unlimited).
	Limit uint64
	// DisableFusion turns off the event-fusion fast path (DESIGN.md §10),
	// forcing every compute delay and L1 hit through the event queue. The
	// simulated behavior is bit-for-bit identical either way (pinned by the
	// fusion equivalence tests); the knob exists for differential testing
	// and as a diagnostic escape hatch.
	DisableFusion bool
	// Par, when positive, runs the simulation on the sharded (tile-
	// parallel) engine with that many tile groups (DESIGN.md §11). Results
	// are bit-for-bit identical to the sequential engine at every worker
	// count — pinned by the parallel-parity tests — so the knob trades
	// engine structure, not simulated behavior. 0 = sequential.
	Par int
	// Tracer, when non-nil, records simulation events (internal/trace).
	Tracer *trace.Tracer
	// Telemetry, when non-nil, attaches the observability layer: sampled
	// metrics series, Chrome-trace spans, and conflict provenance
	// (internal/telemetry).
	Telemetry *telemetry.Telemetry
	// Probe, when non-nil, attaches the host-side engine self-profiler
	// (internal/obs): per-event-type dispatch wall time and par
	// coordinator internals. Callers must leave it nil rather than wrap a
	// nil concrete pointer — a typed nil defeats the engine's nil guards.
	Probe obs.EngineProbe
	// Placement binds threads to mesh tiles (default: packed, per paper).
	Placement Placement
}

// Defaults fills unset tuning knobs.
func (c Config) Defaults() Config {
	if c.FaultPenalty == 0 {
		c.FaultPenalty = 300
	}
	if c.SpinInterval == 0 {
		c.SpinInterval = 16
	}
	return c
}

// Machine is an assembled simulation: memory subsystem, cores, fallback
// lock, and barrier.
//lockiller:shared-state
type Machine struct {
	Cfg     Config
	Engine  *sim.Engine
	Sys     *coherence.System
	Cores   []*Core
	Lock    *SpinLock
	Barrier *Barrier
	Stats   *stats.Run

	// counters holds the functional values OpRMW operations increment;
	// values are staged per-attempt and applied at commit, so the final
	// counts witness end-to-end atomicity.
	counters map[mem.Line]uint64

	running int
}

// NewMachine builds a machine executing the given per-thread programs.
// len(programs) must equal cfg.Threads, and threads must not exceed the
// machine's core count (the paper binds each thread to one core, no OS
// scheduling).
func NewMachine(cfg Config, label, workload string, programs []Program) *Machine {
	cfg = cfg.Defaults()
	if len(programs) != cfg.Threads {
		panic(fmt.Sprintf("cpu: %d programs for %d threads", len(programs), cfg.Threads))
	}
	if cfg.Threads > cfg.Machine.Cores {
		panic(fmt.Sprintf("cpu: %d threads exceed %d cores", cfg.Threads, cfg.Machine.Cores))
	}
	engine := sim.NewEngine()
	if cfg.Par > 0 {
		// Sharded mode must be armed before any component schedules an
		// event; the grant width defaults to 8x the NoC lookahead once the
		// network exists below.
		engine.EnablePar(cfg.Par, cfg.Machine.Cores)
	}
	sys := coherence.NewSystem(engine, cfg.Machine, cfg.HTM)
	if cfg.Par > 0 {
		engine.SetParGrantWidth(8 * sys.Net.Lookahead())
	}
	if cfg.Probe != nil {
		engine.SetProbe(cfg.Probe)
	}
	if cfg.Tracer != nil {
		cfg.Tracer.Now = engine.Now
		sys.Tracer = cfg.Tracer
		sys.Net.Tracer = cfg.Tracer
	}
	m := &Machine{
		Cfg:      cfg,
		Engine:   engine,
		Sys:      sys,
		Lock:     NewSpinLock(sys.LockLine),
		Barrier:  NewBarrier(engine, cfg.Threads),
		Stats:    stats.NewRun(label, workload, cfg.Threads),
		counters: make(map[mem.Line]uint64),
	}
	rng := sim.NewRNG(cfg.Seed)
	coreOf := mapThreads(cfg.Placement, cfg.Threads, cfg.Machine.Cores)
	for i := 0; i < cfg.Threads; i++ {
		c := newCore(m, coreOf[i], programs[i], m.Stats.Cores[i], rng.Split(uint64(i)))
		m.Cores = append(m.Cores, c)
	}
	if tel := cfg.Telemetry; tel != nil {
		m.attachTelemetry(tel)
	}
	return m
}

// Reset returns a constructed machine to pristine pre-run state in place
// and rebinds it to a new run: a new seed, new per-thread programs, and a
// fresh stats.Run (callers memoize the returned *stats.Run, so it must not
// be recycled). Everything shape-dependent survives — cache array backings
// (generation reset), directory and MSHR table capacity, free lists
// (messages, MSHRs, pending trackers), the NoC route table, and the engine's
// calendar-queue rings — which is what makes reset several times cheaper
// than construction. The run that used this machine must have completed
// cleanly (Run returned): no pending events, no live protocol messages, no
// busy directory lines.
//
// Reset supports only bare machines: attached Tracer, Telemetry, or Probe
// sinks are registered against the dead run and cannot be rebound, so such
// machines must be rebuilt instead (the harness gates reuse accordingly).
// The contract is bit-identity: reset-then-Run produces byte-for-byte the
// same stats as building a fresh machine with the same shape and inputs —
// pinned by the reuse golden tests and the reflection deep-state walk.
func (m *Machine) Reset(seed uint64, label, workload string, programs []Program) {
	if len(programs) != m.Cfg.Threads {
		panic(fmt.Sprintf("cpu: reset with %d programs for %d threads", len(programs), m.Cfg.Threads))
	}
	if m.Cfg.Tracer != nil || m.Cfg.Telemetry != nil || m.Cfg.Probe != nil {
		panic("cpu: reset of a machine with attached observers")
	}
	m.Cfg.Seed = seed
	m.Engine.Reset()
	m.Sys.Reset()
	m.Lock.Reset()
	m.Barrier.Reset()
	m.Stats = stats.NewRun(label, workload, m.Cfg.Threads)
	clear(m.counters)
	m.running = 0
	rng := sim.NewRNG(seed)
	coreOf := mapThreads(m.Cfg.Placement, m.Cfg.Threads, m.Cfg.Machine.Cores)
	for i, c := range m.Cores {
		if c.id != coreOf[i] {
			panic("cpu: reset changed the thread placement")
		}
		c.reset(programs[i], m.Stats.Cores[i], rng.Split(uint64(i)))
	}
	resetForget(m)
}

// attachTelemetry wires the observability layer into the machine: the
// coherence layer gets the conflict-provenance hook, every stats core feeds
// its closed segments to the Chrome trace and cycle-share series, and the
// machine registers its NoC and MSHR probes before the first sample freezes
// the registry.
func (m *Machine) attachTelemetry(tel *telemetry.Telemetry) {
	m.Sys.Telemetry = tel
	for _, sc := range m.Stats.Cores {
		sc.Sink = tel
	}
	net := m.Sys.Net
	tel.Reg.RateSeries("noc_messages",
		func() float64 { return float64(net.Messages) })
	tel.Reg.RateSeries("noc_queue_wait",
		func() float64 { return float64(net.QueueWait) })
	// Flit-hops over link-cycles is the mean link occupancy; the topology
	// knows its own directed-link count (mesh, torus, and cmesh differ).
	p := m.Cfg.Machine
	links := net.Topo().NumLinks()
	tel.Reg.PerCycleSeries("noc_link_occupancy",
		func() float64 { return float64(net.FlitHops) }, float64(links))
	sys := m.Sys
	tel.Reg.GaugeSeries("mshr_occupancy", func() float64 {
		n := 0
		for _, l1 := range sys.L1s {
			n += l1.MSHRCount()
		}
		return float64(n)
	})
	tel.Start(m.Engine, p.Cores)
}

// Run executes the machine to completion and returns the collected stats.
func (m *Machine) Run() (*stats.Run, error) {
	m.running = len(m.Cores)
	for _, c := range m.Cores {
		c := c
		m.Engine.After(0, c.start)
	}
	err := m.Engine.Run(m.Cfg.Limit)
	m.collectTraffic()
	if err != nil {
		return m.Stats, fmt.Errorf("cpu: %s/%s threads=%d: %w\n%s",
			m.Stats.Workload, m.Stats.System, m.Cfg.Threads, err, m.DumpState())
	}
	if m.running != 0 {
		return m.Stats, fmt.Errorf("cpu: %s/%s threads=%d: %d cores never finished (deadlock)\n%s",
			m.Stats.Workload, m.Stats.System, m.Cfg.Threads, m.running, m.DumpState())
	}
	return m.Stats, nil
}

// collectTraffic gathers the memory-subsystem counters into the run stats.
// Per-tile counters are first folded into one partial Traffic per tile
// group, then merged in group order — a deterministic merge that yields the
// same totals whether the run used the sequential engine (one group) or the
// sharded one.
func (m *Machine) collectTraffic() {
	groups := m.Engine.ParWorkers()
	if groups == 0 {
		groups = 1
	}
	parts := make([]stats.Traffic, groups)
	for i, l1 := range m.Sys.L1s {
		p := &parts[m.Engine.ParGroupOf(i)]
		p.L1Hits += l1.Hits
		p.L1Misses += l1.Misses
		p.TxWBs += l1.TxWBs
		p.NacksSent += l1.NacksSent
		p.RejectsSent += l1.RejectsSent
		p.RejectsReceived += l1.RejectsReceived
		p.WakesSent += l1.WakesSent
		p.SignatureSpills += l1.OverflowEvictions
		p.SwitchTries += l1.SwitchTries
		p.SwitchGrants += l1.SwitchGrants
	}
	for i, b := range m.Sys.Banks {
		p := &parts[m.Engine.ParGroupOf(i)]
		p.DirRequests += b.Requests
		p.LLCRejections += b.Rejections
		p.MemFetches += b.MemFetches
		p.BackInvals += b.BackInvals
	}
	t := &m.Stats.Traffic
	for i := range parts {
		t.Merge(&parts[i])
	}
	// NoC and lock state are machine-global, not per-tile.
	t.Messages = m.Sys.Net.Messages
	t.FlitHops = m.Sys.Net.FlitHops
	t.QueueWait = m.Sys.Net.QueueWait
	t.LockAcquisitions = m.Lock.Acquisitions
	t.LockHandovers = m.Lock.Handovers
	m.Stats.Transitions = m.Sys.TransitionProfile()
	m.Stats.EventsExecuted = m.Engine.Executed()
	for _, c := range m.Cores {
		m.Stats.FusedRuns += c.fusedRuns
	}
}

// DumpState renders a diagnostic snapshot of every core — what each thread
// was doing when the run ended. It is attached to watchdog and deadlock
// errors so protocol hangs are debuggable from the failure message alone.
func (m *Machine) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine state at cycle %d (%d/%d cores running):\n",
		m.Engine.Now(), m.running, len(m.Cores))
	for _, c := range m.Cores {
		l1 := m.Sys.L1s[c.id]
		fmt.Fprintf(&b, "  core %2d: section %d/%d mode=%v attempt=%d doomed=%v parked=%d\n",
			c.id, c.secIdx, len(c.prog), l1.Tx.Mode, l1.Tx.Attempt, l1.Tx.Doomed, l1.ParkedRequests())
	}
	fmt.Fprintf(&b, "  lock: held=%v owner=%d waiters=%d\n", m.Lock.Held(), m.Lock.Owner(), m.Lock.Waiters())
	if a := m.Sys.Arbiter; a != nil {
		fmt.Fprintf(&b, "  arbiter: holder=%d mode=%v\n", a.Holder(), a.HolderMode())
	}
	return b.String()
}

// CounterValue returns the committed value of a functional counter.
func (m *Machine) CounterValue(l mem.Line) uint64 { return m.counters[l] }

// coreDone is called by each core when its program completes.
func (m *Machine) coreDone() {
	m.running--
	if now := m.Engine.Now(); now > m.Stats.ExecCycles {
		m.Stats.ExecCycles = now
	}
	m.Engine.Progress()
}
