//go:build reuseforget

package cpu

import (
	"strings"
	"testing"
)

// TestResetForgetIsCaught proves the reflection walk guards Machine.Reset
// itself: with the reuseforget tag, resetForget leaves stale retry state on
// core 0 after every reset, and the walk must name that exact field. Run it
// as `go test -tags reuseforget -run TestResetForgetIsCaught ./internal/cpu`
// — the clean-walk tests legitimately fail under this tag, since the shim
// corrupts every reset.
func TestResetForgetIsCaught(t *testing.T) {
	cfg := resetCfg(42)
	progs := counterProgram(cfg.Threads, 25, 8192)
	reset := runAndReset(t, cfg, progs)
	fresh := NewMachine(cfg, "test", "unit", progs)
	diffs := ResetDiff(fresh, reset)
	if len(diffs) == 0 {
		t.Fatal("walk failed to catch the deliberately forgotten field")
	}
	for _, d := range diffs {
		if strings.Contains(d, "retries") {
			return
		}
	}
	t.Fatalf("walk reported differences but none named the planted field:\n  %s",
		strings.Join(diffs, "\n  "))
}
