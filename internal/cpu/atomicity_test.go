package cpu

import (
	"fmt"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
)

// The atomicity battery: every synchronization system must make N threads'
// atomic counter increments sum exactly. A lost update — two transactions
// reading the same value and both committing — would make the final count
// come up short, exposing any isolation hole in the protocol (missed
// conflict detection, a reject that let a stale read survive, a speculative
// write leaking before commit).

func atomicityPrograms(threads, incs int, counters []mem.Line) []Program {
	progs := make([]Program, threads)
	for th := 0; th < threads; th++ {
		var p Program
		for i := 0; i < incs; i++ {
			c := counters[(th+i)%len(counters)]
			p = append(p,
				AtomicStatic([]Op{Compute(3), RMW(c), Compute(2)}),
				Plain([]Op{Compute(10)}),
			)
		}
		progs[th] = p
	}
	return progs
}

func allSystems() map[string]struct {
	sync SyncSystem
	hc   htm.Config
} {
	ins := priority.InstsBased{}
	return map[string]struct {
		sync SyncSystem
		hc   htm.Config
	}{
		"CGL":      {SysCGL, htm.Config{}.Defaults()},
		"Baseline": {SysHTM, htm.Config{}.Defaults()},
		"RAI":      {SysHTM, htm.Config{Recovery: true, RejectPolicy: htm.SelfAbort, Priority: ins}.Defaults()},
		"RRI":      {SysHTM, htm.Config{Recovery: true, RejectPolicy: htm.RetryLater, Priority: ins}.Defaults()},
		"RWI":      {SysHTM, htm.Config{Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins}.Defaults()},
		"RWIL":     {SysHTM, htm.Config{Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins, HTMLock: true}.Defaults()},
		"Full":     {SysHTM, htm.Config{Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins, HTMLock: true, SwitchingMode: true}.Defaults()},
		"Losa":     {SysHTM, htm.Config{Losa: true, RejectPolicy: htm.WaitWakeup, Priority: priority.Progression{}}.Defaults()},
	}
}

func TestAtomicityAllSystems(t *testing.T) {
	const threads, incs = 4, 60
	counters := []mem.Line{1 << 21, 1<<21 + 1} // two hot counters
	for name, sc := range allSystems() {
		name, sc := name, sc
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := Config{Machine: smallParams(), HTM: sc.hc, Sync: sc.sync, Threads: threads, Seed: seed}
				m := NewMachine(cfg, name, "atomicity", atomicityPrograms(threads, incs, counters))
				if _, err := m.Run(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				var total uint64
				for _, c := range counters {
					total += m.CounterValue(c)
				}
				if want := uint64(threads * incs); total != want {
					t.Fatalf("seed %d: counters sum to %d, want %d — LOST UPDATE (atomicity violated)",
						seed, total, want)
				}
			}
		})
	}
}

// TestAtomicityUnderOverflowAndFaults stresses the fallback/switching
// paths: large write sets (overflow) and faults force lock-mode and STL
// completions, which must apply staged updates exactly once.
func TestAtomicityUnderOverflowAndFaults(t *testing.T) {
	const threads = 4
	counter := mem.Line(1 << 21)
	sets := 32 * 1024 / 64 / 4
	progs := make([]Program, threads)
	for th := 0; th < threads; th++ {
		var p Program
		for i := 0; i < 12; i++ {
			ops := []Op{RMW(counter)}
			if i%3 == 0 {
				// Overflow the L1 set mid-transaction.
				for j := 0; j < 5; j++ {
					ops = append(ops, Write(mem.Line(1<<22+th*4096+j*sets)))
				}
			}
			if i%4 == 1 {
				ops = append(ops, Fault())
			}
			p = append(p, AtomicStatic(ops), Plain([]Op{Compute(20)}))
		}
		progs[th] = p
	}
	for _, name := range []string{"Baseline", "Full"} {
		sc := allSystems()[name]
		t.Run(name, func(t *testing.T) {
			cfg := Config{Machine: smallParams(), HTM: sc.hc, Sync: sc.sync, Threads: threads, Seed: 5}
			m := NewMachine(cfg, name, "stress", progs)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if got, want := m.CounterValue(counter), uint64(threads*12); got != want {
				t.Fatalf("counter = %d, want %d", got, want)
			}
		})
	}
}

// TestAtomicityLockTxVisibility is the regression test for a lost-update
// window this battery's quickstart variant caught: a TL lock transaction's
// staged updates must become visible no later than hlend wakes the
// requesters it rejected — a woken reader in the gap between hlend and the
// lock-release access otherwise reads pre-transaction values. Tiny retry
// budgets force constant fallbacks; 8 threads on 2 hot counters maximize
// wake-then-read pressure.
func TestAtomicityLockTxVisibility(t *testing.T) {
	hc := htm.Config{
		Recovery: true, RejectPolicy: htm.WaitWakeup,
		Priority: priority.InstsBased{}, HTMLock: true, SwitchingMode: true,
		MaxRetries: 1, // nearly everything falls back to TL
	}.Defaults()
	p := smallParams()
	p.Cores, p.MeshW, p.MeshH = 16, 4, 4
	counters := []mem.Line{1 << 21, 1<<21 + 1}
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := Config{Machine: p, HTM: hc, Sync: SysHTM, Threads: 8, Seed: seed}
		m := NewMachine(cfg, "tl-vis", "atomicity", atomicityPrograms(8, 40, counters))
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, c := range counters {
			total += m.CounterValue(c)
		}
		if want := uint64(8 * 40); total != want {
			t.Fatalf("seed %d: counters sum to %d, want %d — lock-tx visibility window reopened",
				seed, total, want)
		}
		var lockRuns uint64
		for _, c := range m.Stats.Cores {
			lockRuns += c.LockRuns + c.SwitchRuns
		}
		if lockRuns == 0 {
			t.Fatal("test exercised no lock transactions; tighten the retry budget")
		}
	}
}

// TestRMWSerializesObservably: a single thread incrementing one counter
// yields exact counts too (read-your-own-write within a transaction).
func TestRMWReadYourOwnWrite(t *testing.T) {
	prog := Program{AtomicStatic([]Op{RMW(1 << 21), RMW(1 << 21), RMW(1 << 21)})}
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 1, Seed: 1}
	m := NewMachine(cfg, "t", "ryow", []Program{prog})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.CounterValue(1 << 21); got != 3 {
		t.Fatalf("counter = %d, want 3 (read-your-own-write broken)", got)
	}
}

func TestRMWTraceRoundTrip(t *testing.T) {
	// RMW ops survive export/replay.
	progs := atomicityPrograms(2, 5, []mem.Line{1 << 21})
	var buf bufT
	if err := ExportPrograms(&buf, progs, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ImportPrograms(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ops := got[0][0].Body(1)
	found := false
	for _, op := range ops {
		if op.Kind == OpRMW {
			found = true
		}
	}
	if !found {
		t.Fatal("RMW lost in serialization")
	}
}

// bufT is a minimal in-memory read/writer for the round-trip test.
type bufT struct{ b []byte }

func (t *bufT) Write(p []byte) (int, error) { t.b = append(t.b, p...); return len(p), nil }
func (t *bufT) Read(p []byte) (int, error) {
	if len(t.b) == 0 {
		return 0, errEOF
	}
	n := copy(p, t.b)
	t.b = t.b[n:]
	return n, nil
}

var errEOF = fmt.Errorf("EOF")
