package cpu

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
)

// resetCfg is the shape the walk tests exercise: the lockiller HTM stack on
// the small 4-core machine, enough contention for aborts, parks, wakes, and
// fallback lock traffic to dirty every subsystem before the reset.
func resetCfg(seed uint64) Config {
	return Config{Machine: smallParams(), HTM: lockillerCfg(), Sync: SysHTM, Threads: 4, Seed: seed}
}

// runAndReset builds a machine, dirties it with a full contended run, and
// resets it for the next run's inputs.
func runAndReset(t *testing.T, cfg Config, progs []Program) *Machine {
	t.Helper()
	m := NewMachine(cfg, "test", "unit", counterProgram(cfg.Threads, 40, 4096))
	if _, err := m.Run(); err != nil {
		t.Fatalf("dirtying run failed: %v", err)
	}
	m.Reset(cfg.Seed, "test", "unit", progs)
	return m
}

func TestResetDiffCleanAfterDirtyRun(t *testing.T) {
	cfg := resetCfg(42)
	progs := counterProgram(cfg.Threads, 25, 8192)
	reset := runAndReset(t, cfg, progs)
	fresh := NewMachine(cfg, "test", "unit", progs)
	if diffs := ResetDiff(fresh, reset); len(diffs) != 0 {
		t.Fatalf("reset machine differs from fresh:\n  %s", strings.Join(diffs, "\n  "))
	}
}

func TestResetDiffCleanWithParEngine(t *testing.T) {
	cfg := resetCfg(42)
	cfg.Par = 2
	progs := counterProgram(cfg.Threads, 25, 8192)
	reset := runAndReset(t, cfg, progs)
	fresh := NewMachine(cfg, "test", "unit", progs)
	if diffs := ResetDiff(fresh, reset); len(diffs) != 0 {
		t.Fatalf("reset par machine differs from fresh:\n  %s", strings.Join(diffs, "\n  "))
	}
}

func TestResetDiffCatchesDirtyMachine(t *testing.T) {
	cfg := resetCfg(42)
	progs := counterProgram(cfg.Threads, 40, 4096)
	fresh := NewMachine(cfg, "test", "unit", progs)
	dirty := NewMachine(cfg, "test", "unit", progs)
	if _, err := dirty.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if diffs := ResetDiff(fresh, dirty); len(diffs) == 0 {
		t.Fatal("walk found no difference between a fresh and a fully-run machine")
	}
}

// TestResetDiffCatchesPlantedFields plants one stale value in each layer a
// reset must cover — engine clock, cache array, lock stats, core state —
// and asserts the walk reports every plant. This is the fixture guarding
// the walk itself: a walk that silently skips a layer would wave through a
// future Reset that forgets it. (The companion under -tags reuseforget
// drives the same check through Machine.Reset's own code path.)
func TestResetDiffCatchesPlantedFields(t *testing.T) {
	cfg := resetCfg(42)
	progs := counterProgram(cfg.Threads, 10, 8192)
	plants := []struct {
		name string
		mut  func(m *Machine)
	}{
		{"core retry state", func(m *Machine) { m.Cores[0].retries = 1 }},
		{"core token", func(m *Machine) { m.Cores[1].token = 7 }},
		{"lock stats", func(m *Machine) { m.Lock.Acquisitions = 3 }},
		{"barrier crossings", func(m *Machine) { m.Barrier.Crossings = 2 }},
		{"functional counter", func(m *Machine) { m.counters[4096] = 1 }},
		{"noc stats", func(m *Machine) { m.Sys.Net.Messages = 9 }},
		{"l1 stats", func(m *Machine) { m.Sys.L1s[2].Hits = 5 }},
		{"l1 cache line", func(m *Machine) {
			arr := m.Sys.L1s[0].Array()
			arr.Install(arr.Victim(4096, nil), 4096, cache.Shared)
		}},
		{"stats run", func(m *Machine) { m.Stats.Cores[0].Commits = 1 }},
	}
	for _, p := range plants {
		t.Run(p.name, func(t *testing.T) {
			fresh := NewMachine(cfg, "test", "unit", progs)
			planted := NewMachine(cfg, "test", "unit", progs)
			p.mut(planted)
			if diffs := ResetDiff(fresh, planted); len(diffs) == 0 {
				t.Fatalf("walk missed planted %s", p.name)
			}
		})
	}
}

// TestResetRunBitIdentity is the package-level identity check the harness
// golden tests scale up: reset-then-run must equal fresh-build-then-run
// byte for byte in the collected stats.
func TestResetRunBitIdentity(t *testing.T) {
	cfg := resetCfg(7)
	progsA := counterProgram(cfg.Threads, 40, 4096)

	m := NewMachine(cfg, "test", "unit", progsA)
	if _, err := m.Run(); err != nil {
		t.Fatalf("first run failed: %v", err)
	}

	mkProgs := func() []Program { return counterProgram(cfg.Threads, 30, 8192) }
	m.Reset(99, "test", "unit", mkProgs())
	reused, err := m.Run()
	if err != nil {
		t.Fatalf("reused run failed: %v", err)
	}

	cfg2 := cfg
	cfg2.Seed = 99
	fresh := run(t, cfg2, mkProgs())
	assertRunsEqual(t, fresh, reused)
}

func assertRunsEqual(t *testing.T, a, b *stats.Run) {
	t.Helper()
	if a.ExecCycles != b.ExecCycles {
		t.Fatalf("ExecCycles %d vs %d", a.ExecCycles, b.ExecCycles)
	}
	if a.EventsExecuted != b.EventsExecuted {
		t.Fatalf("EventsExecuted %d vs %d", a.EventsExecuted, b.EventsExecuted)
	}
	if a.Traffic != b.Traffic {
		t.Fatalf("Traffic diverged:\n%+v\n%+v", a.Traffic, b.Traffic)
	}
	for i := range a.Cores {
		if a.Cores[i].Cycles != b.Cores[i].Cycles {
			t.Fatalf("core %d cycle breakdown diverged", i)
		}
		if a.Cores[i].Attempts != b.Cores[i].Attempts || a.Cores[i].Commits != b.Cores[i].Commits {
			t.Fatalf("core %d attempt counts diverged", i)
		}
	}
}
