package cpu

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestRandomizedFusionEquivalence is the differential check behind the
// event-fusion fast path (DESIGN.md §10): arbitrary programs under
// arbitrary system configurations must produce bit-for-bit identical
// simulations with fusion on and off. The generator reuses the randomized
// end-to-end stress machinery, so the comparison covers RMWs, faults,
// barriers, overflow bursts, mid-cache organizations, and every reject
// policy — including all the paths where fuseOps must bail out to the full
// event machinery.
func TestRandomizedFusionEquivalence(t *testing.T) {
	counters := []mem.Line{1 << 23, 1<<23 + 1, 1<<23 + 2}
	for trial := uint64(1); trial <= 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := sim.NewRNG(trial * 104729)
			threads := 2 + rng.Intn(3)
			progs, expect := randomProgram(rng, threads, counters)
			sync, hc := randomConfig(rng)

			p := smallParams()
			if rng.Bool(0.3) {
				p.MidSize, p.MidWays = 4*1024, 8
			}
			if rng.Bool(0.3) {
				p.L1Size = 8 * 1024
			}
			run := func(disableFusion bool) *Machine {
				cfg := Config{Machine: p, HTM: hc, Sync: sync, Threads: threads,
					Seed: trial, DisableFusion: disableFusion}
				m := NewMachine(cfg, "rand", "fusion-diff", progs)
				if _, err := m.Run(); err != nil {
					t.Fatalf("disableFusion=%v: %v", disableFusion, err)
				}
				return m
			}
			on := run(false)
			off := run(true)

			if a, b := on.Stats.ExecCycles, off.Stats.ExecCycles; a != b {
				t.Fatalf("ExecCycles diverge: fused %d vs unfused %d", a, b)
			}
			if a, b := on.Stats.Sections(), off.Stats.Sections(); a != b {
				t.Fatalf("sections diverge: fused %d vs unfused %d", a, b)
			}
			for c, want := range expect {
				av, bv := on.CounterValue(c), off.CounterValue(c)
				if av != bv || av != want {
					t.Fatalf("counter %d: fused %d, unfused %d, want %d", c, av, bv, want)
				}
			}
			for i := range on.Stats.Cores {
				a, b := on.Stats.Cores[i], off.Stats.Cores[i]
				if a.Commits != b.Commits || a.Attempts != b.Attempts {
					t.Fatalf("core %d diverges: fused commits=%d attempts=%d, unfused commits=%d attempts=%d",
						i, a.Commits, a.Attempts, b.Commits, b.Attempts)
				}
			}
		})
	}
}
