package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/priority"
	"repro/internal/stats"
)

func smallParams() coherence.Params {
	p := coherence.DefaultParams()
	p.Cores, p.MeshW, p.MeshH = 4, 2, 2
	p.LLCSize = 1 << 20
	return p
}

func run(t *testing.T, cfg Config, programs []Program) *stats.Run {
	t.Helper()
	m := NewMachine(cfg, "test", "unit", programs)
	r, err := m.Run()
	if err != nil {
		t.Fatalf("run failed: %v\n%v", err, r)
	}
	return r
}

func baselineHTM() htm.Config { return htm.Config{}.Defaults() }

func lockillerCfg() htm.Config {
	return htm.Config{
		Recovery: true, RejectPolicy: htm.WaitWakeup,
		Priority: priority.InstsBased{}, HTMLock: true, SwitchingMode: true,
	}.Defaults()
}

// counterProgram builds nThreads programs that each atomically increment a
// shared counter line n times — the canonical contended workload.
func counterProgram(nThreads, n int, shared mem.Line) []Program {
	var ps []Program
	for th := 0; th < nThreads; th++ {
		var p Program
		for i := 0; i < n; i++ {
			p = append(p, AtomicStatic([]Op{Read(shared), Compute(5), Write(shared)}))
			p = append(p, Plain([]Op{Compute(20)}))
		}
		ps = append(ps, p)
	}
	return ps
}

func TestSingleThreadHTMCommitsEverything(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 1, Seed: 1}
	r := run(t, cfg, counterProgram(1, 50, 4096))
	if r.Sections() != 50 {
		t.Fatalf("sections = %d, want 50", r.Sections())
	}
	if r.CommitRate() != 1.0 {
		t.Fatalf("commit rate = %v, want 1.0 (no contention)", r.CommitRate())
	}
	if total, _ := r.TotalAborts(); total != 0 {
		t.Fatalf("aborts = %d, want 0", total)
	}
}

func TestCGLSerializesAndCompletes(t *testing.T) {
	cfg := Config{Machine: smallParams(), Sync: SysCGL, Threads: 4, Seed: 1, HTM: baselineHTM()}
	r := run(t, cfg, counterProgram(4, 25, 4096))
	if r.Sections() != 100 {
		t.Fatalf("sections = %d, want 100", r.Sections())
	}
	for _, c := range r.Cores {
		if c.LockRuns != 25 {
			t.Fatalf("every CGL section must run under the lock: %d", c.LockRuns)
		}
		if c.Attempts != 0 {
			t.Fatal("CGL must not attempt transactions")
		}
	}
	bd := r.Breakdown()
	if bd[stats.CatLock] == 0 || bd[stats.CatWaitLock] == 0 {
		t.Fatalf("CGL breakdown lacks lock/waitlock time: %v", bd)
	}
}

func TestContendedHTMCompletesAllSections(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 4, Seed: 2}
	r := run(t, cfg, counterProgram(4, 25, 4096))
	if r.Sections() != 100 {
		t.Fatalf("sections = %d, want 100", r.Sections())
	}
	if total, _ := r.TotalAborts(); total == 0 {
		t.Fatal("4 threads hammering one line should conflict at least once")
	}
}

func TestRecoveryBeatsBaselineOnFriendlyFire(t *testing.T) {
	// The recovery mechanism should reduce aborts under heavy symmetric
	// contention compared to requester-win.
	progs := counterProgram(4, 50, 4096)
	base := run(t, Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 4, Seed: 3}, progs)
	rec := run(t, Config{
		Machine: smallParams(), Sync: SysHTM, Threads: 4, Seed: 3,
		HTM: htm.Config{Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: priority.InstsBased{}}.Defaults(),
	}, progs)
	if rec.CommitRate() <= base.CommitRate() {
		t.Fatalf("recovery commit rate %.3f should beat baseline %.3f",
			rec.CommitRate(), base.CommitRate())
	}
}

func TestFallbackPathTaken(t *testing.T) {
	// Force constant conflicts with a tiny retry budget: some sections
	// must fall back to the lock.
	hc := baselineHTM()
	hc.MaxRetries = 2
	cfg := Config{Machine: smallParams(), HTM: hc, Sync: SysHTM, Threads: 4, Seed: 4}
	r := run(t, cfg, counterProgram(4, 50, 4096))
	var lockRuns uint64
	for _, c := range r.Cores {
		lockRuns += c.LockRuns
	}
	if lockRuns == 0 {
		t.Fatal("no section took the fallback path despite 2-retry budget")
	}
	if r.Sections() != 200 {
		t.Fatalf("sections = %d, want 200", r.Sections())
	}
}

func TestMutexAbortsRecordedUnderBaseline(t *testing.T) {
	hc := baselineHTM()
	hc.MaxRetries = 1
	cfg := Config{Machine: smallParams(), HTM: hc, Sync: SysHTM, Threads: 4, Seed: 5}
	r := run(t, cfg, counterProgram(4, 50, 4096))
	_, by := r.TotalAborts()
	if by[htm.CauseMutex] == 0 {
		t.Fatalf("expected mutex-caused aborts with a hot fallback lock, got %v", by)
	}
}

func TestHTMLockEliminatesMutexAborts(t *testing.T) {
	hc := lockillerCfg()
	hc.MaxRetries = 2
	cfg := Config{Machine: smallParams(), HTM: hc, Sync: SysHTM, Threads: 4, Seed: 5}
	r := run(t, cfg, counterProgram(4, 50, 4096))
	_, by := r.TotalAborts()
	if by[htm.CauseMutex] != 0 {
		t.Fatalf("HTMLock must eliminate mutex aborts (Fig. 10), got %d", by[htm.CauseMutex])
	}
	if r.Sections() != 200 {
		t.Fatalf("sections = %d", r.Sections())
	}
}

func TestFaultAbortsAndFallsBack(t *testing.T) {
	var p Program
	p = append(p, AtomicStatic([]Op{Read(4096), Fault(), Write(4096)}))
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 1, Seed: 6}
	r := run(t, cfg, []Program{p})
	_, by := r.TotalAborts()
	if by[htm.CauseFault] == 0 {
		t.Fatal("fault aborts not recorded")
	}
	if r.Sections() != 1 {
		t.Fatal("faulting section must complete via the fallback path")
	}
	if r.Cores[0].LockRuns != 1 {
		t.Fatal("faulting section should end on the lock path")
	}
}

func TestOverflowAbortsBaselineButSwitchesUnderLockiller(t *testing.T) {
	// A transaction writing 6 lines of the same L1 set overflows 4 ways.
	sets := 32 * 1024 / 64 / 4
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops, Write(mem.Line(4096+i*sets)))
	}
	prog := Program{AtomicStatic(ops)}

	base := run(t, Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 1, Seed: 7}, []Program{prog})
	_, by := base.TotalAborts()
	if by[htm.CauseOverflow] == 0 {
		t.Fatalf("baseline should abort on overflow, got %v", by)
	}

	lk := run(t, Config{Machine: smallParams(), HTM: lockillerCfg(), Sync: SysHTM, Threads: 1, Seed: 7}, []Program{prog})
	if total, _ := lk.TotalAborts(); total != 0 {
		t.Fatalf("switchingMode should rescue the overflow, aborts=%d", total)
	}
	if lk.Cores[0].SwitchRuns != 1 {
		t.Fatalf("SwitchRuns = %d, want 1", lk.Cores[0].SwitchRuns)
	}
	bd := lk.Breakdown()
	if bd[stats.CatSwitchLock] == 0 {
		t.Fatal("switchLock cycles missing from breakdown")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Thread 0 does lots of work before the barrier; thread 1 little. Both
	// must cross together.
	mk := func(work uint64) Program {
		return Program{
			Plain([]Op{Compute(work)}),
			BarrierSection(),
			Plain([]Op{Compute(10)}),
		}
	}
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 2, Seed: 8}
	r := run(t, cfg, []Program{mk(10_000), mk(10)})
	if r.Cores[0].Barriers != 1 || r.Cores[1].Barriers != 1 {
		t.Fatal("barrier crossings not recorded")
	}
	// Thread 1 waited: its total is dominated by the barrier wait.
	if r.ExecCycles < 10_000 {
		t.Fatalf("exec cycles %d too small for the barrier to have held", r.ExecCycles)
	}
}

func TestDynamicBodyRegeneratedPerAttempt(t *testing.T) {
	attempts := []int{}
	var p Program
	p = append(p, AtomicDynamic(func(attempt int) []Op {
		attempts = append(attempts, attempt)
		if attempt < 3 {
			return []Op{Read(4096), Fault()}
		}
		return []Op{Read(4096)}
	}))
	hc := baselineHTM()
	hc.MaxRetries = 10
	cfg := Config{Machine: smallParams(), HTM: hc, Sync: SysHTM, Threads: 1, Seed: 9}
	r := run(t, cfg, []Program{p})
	if len(attempts) != 3 {
		t.Fatalf("body generated %d times, want 3 (two faults then success)", len(attempts))
	}
	if r.CommitRate() != 1.0/3.0 {
		t.Fatalf("commit rate = %v", r.CommitRate())
	}
}

func TestBreakdownPartitionsAllCycles(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: lockillerCfg(), Sync: SysHTM, Threads: 4, Seed: 10}
	r := run(t, cfg, counterProgram(4, 30, 4096))
	var sum float64
	for _, f := range r.Breakdown() {
		if f < 0 {
			t.Fatal("negative breakdown share")
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v, want 1.0", sum)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *stats.Run {
		cfg := Config{Machine: smallParams(), HTM: lockillerCfg(), Sync: SysHTM, Threads: 4, Seed: 42}
		return run(t, cfg, counterProgram(4, 40, 4096))
	}
	a, b := mk(), mk()
	if a.ExecCycles != b.ExecCycles {
		t.Fatalf("same seed diverged: %d vs %d cycles", a.ExecCycles, b.ExecCycles)
	}
	if a.CommitRate() != b.CommitRate() {
		t.Fatal("commit rates diverged")
	}
}

func TestThreadsExceedCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 5, Seed: 1}
	NewMachine(cfg, "x", "y", counterProgram(5, 1, 4096))
}
