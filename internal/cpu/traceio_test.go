package cpu

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
)

func sampleProgram() Program {
	attempt0 := []Op{Read(10), Compute(5), Write(11)}
	attempt1 := []Op{Read(12), Fault()}
	return Program{
		Plain([]Op{Compute(100), Read(1)}),
		AtomicDynamic(func(a int) []Op {
			if a == 1 {
				return attempt0
			}
			return attempt1
		}),
		BarrierSection(),
		AtomicStatic([]Op{Write(20)}),
	}
}

func TestProgramRoundTrip(t *testing.T) {
	progs := []Program{sampleProgram(), sampleProgram()}
	var buf bytes.Buffer
	if err := ExportPrograms(&buf, progs, 3); err != nil {
		t.Fatal(err)
	}
	got, err := ImportPrograms(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("programs = %d", len(got))
	}
	for pi, prog := range got {
		if len(prog) != 4 {
			t.Fatalf("program %d has %d sections", pi, len(prog))
		}
		if !prog[2].Barrier {
			t.Fatal("barrier lost")
		}
		// Plain ops preserved.
		if len(prog[0].Ops) != 2 || prog[0].Ops[0].N != 100 {
			t.Fatalf("plain section = %+v", prog[0].Ops)
		}
		// Dynamic bodies per attempt preserved; later attempts clamp.
		a1 := prog[1].Body(1)
		if len(a1) != 3 || a1[0].Kind != OpRead || a1[0].Line != mem.Line(10) {
			t.Fatalf("attempt 1 = %+v", a1)
		}
		a2 := prog[1].Body(2)
		if len(a2) != 2 || a2[1].Kind != OpFault {
			t.Fatalf("attempt 2 = %+v", a2)
		}
		a9 := prog[1].Body(9) // beyond recorded: repeats last
		if len(a9) != 2 {
			t.Fatalf("attempt 9 = %+v", a9)
		}
	}
}

func TestReplayedProgramRunsIdentically(t *testing.T) {
	progs := counterProgram(2, 20, 4096)
	var buf bytes.Buffer
	if err := ExportPrograms(&buf, progs, 8); err != nil {
		t.Fatal(err)
	}
	replayed, err := ImportPrograms(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 2, Seed: 3}
	a, err := NewMachine(cfg, "orig", "t", progs).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMachine(cfg, "replay", "t", replayed).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecCycles != b.ExecCycles || a.Sections() != b.Sections() {
		t.Fatalf("replay diverged: %d vs %d cycles", a.ExecCycles, b.ExecCycles)
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := ImportPrograms(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON must error")
	}
	if _, err := ImportPrograms(strings.NewReader(`{"version":99,"programs":[]}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, err := ImportPrograms(strings.NewReader(
		`{"version":1,"programs":[[{"kind":"nope"}]]}`)); err == nil {
		t.Fatal("unknown section kind must error")
	}
	if _, err := ImportPrograms(strings.NewReader(
		`{"version":1,"programs":[[{"kind":"atomic"}]]}`)); err == nil {
		t.Fatal("atomic without bodies must error")
	}
	if _, err := ImportPrograms(strings.NewReader(
		`{"version":1,"programs":[[{"kind":"plain","ops":[{"k":"z"}]}]]}`)); err == nil {
		t.Fatal("unknown op kind must error")
	}
}
