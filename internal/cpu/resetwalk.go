package cpu

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/cache"
)

// ResetDiff deep-compares two machines field by field — exported and
// unexported alike — and returns a human-readable path for every place
// their state differs. It is the enforcement arm of the Machine.Reset
// bit-identity contract: a reset machine must be indistinguishable from a
// freshly built one of the same shape and inputs, except for deliberately
// warm capacity. An empty result means the two machines will simulate
// identically.
//
// The walk follows every pointer, slice, array, struct, map, and interface
// reachable from the machine. Three classes of state get special treatment,
// each of which must be justified by a behavior-neutrality argument:
//
//   - warm pools (the protocol-message, MSHR, and pending-tracker free
//     lists, and the directory's dirLine slabs) are skipped: entries are
//     fully normalized when handed out, so pool population is invisible;
//   - generation-reset cache arrays compare by shape plus Pristine(), not
//     bytes: stale entries from a previous generation read as Invalid;
//   - grown tables (directory, MSHR) compare by live population, not
//     capacity: lookups are order-insensitive and growth is a deterministic
//     function of the insertion history, so an empty grown table behaves
//     exactly like an empty fresh one.
//
// Functions and channels compare by nil-ness only (closure identity is
// meaningless across machines); slices compare by length and elements, so
// retained capacity is invisible, exactly as it is to the simulation.
func ResetDiff(fresh, reset *Machine) []string {
	w := &resetWalker{visited: make(map[[2]unsafe.Pointer]bool)}
	w.walk("Machine", reflect.ValueOf(fresh).Elem(), reflect.ValueOf(reset).Elem())
	return w.diffs
}

// resetWalkSkip lists struct fields the walk does not compare, as
// "pkgpath.Type.field" — each entry is a warm pool whose population is
// invisible to the simulation (see ResetDiff).
var resetWalkSkip = map[string]bool{
	"coherence.System.msgFree": true, // messages are fully overwritten on send
	"coherence.L1.mshrFree":    true, // newMshr normalizes (parkSeq equality-only)
	"coherence.L1.mshrScratch": true, // rebuilt from the table on every use
	"coherence.Bank.pendFree":  true, // newPending zeroes on hand-out
	"htm.WakeSet.scratch":      true, // rebuilt from the bitmap on every drain
}

// resetDiffLimit caps the reported paths; past this many the machines are
// thoroughly different and more detail is noise.
const resetDiffLimit = 32

type resetWalker struct {
	diffs   []string
	visited map[[2]unsafe.Pointer]bool
}

func (w *resetWalker) report(path, format string, args ...any) {
	if len(w.diffs) < resetDiffLimit {
		w.diffs = append(w.diffs, path+": "+fmt.Sprintf(format, args...))
	}
}

func (w *resetWalker) walk(path string, a, b reflect.Value) {
	if len(w.diffs) >= resetDiffLimit {
		return
	}
	switch a.Kind() {
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			w.report(path, "nil %v vs %v", a.IsNil(), b.IsNil())
			return
		}
		if a.IsNil() || a.Pointer() == b.Pointer() {
			return
		}
		key := [2]unsafe.Pointer{unsafe.Pointer(a.Pointer()), unsafe.Pointer(b.Pointer())}
		if w.visited[key] {
			return
		}
		w.visited[key] = true
		w.walk(path, a.Elem(), b.Elem())
	case reflect.Interface:
		if a.IsNil() != b.IsNil() {
			w.report(path, "nil %v vs %v", a.IsNil(), b.IsNil())
			return
		}
		if a.IsNil() {
			return
		}
		if a.Elem().Type() != b.Elem().Type() {
			w.report(path, "dynamic type %v vs %v", a.Elem().Type(), b.Elem().Type())
			return
		}
		w.walk(path, a.Elem(), b.Elem())
	case reflect.Func, reflect.Chan:
		if a.IsNil() != b.IsNil() {
			w.report(path, "nil %v vs %v", a.IsNil(), b.IsNil())
		}
	case reflect.Map:
		if a.Len() != b.Len() {
			w.report(path, "len %d vs %d", a.Len(), b.Len())
			return
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() {
				w.report(path, "key %v missing on reset side", iter.Key())
				continue
			}
			w.walk(fmt.Sprintf("%s[%v]", path, iter.Key()), iter.Value(), bv)
		}
	case reflect.Slice:
		if a.Len() != b.Len() {
			w.report(path, "len %d vs %d", a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			w.walk(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			w.walk(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Struct:
		if w.structSpecial(path, a, b) {
			return
		}
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if resetWalkSkip[t.String()+"."+f.Name] {
				continue
			}
			w.walk(path+"."+f.Name, a.Field(i), b.Field(i))
		}
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			w.report(path, "%v vs %v", a.Bool(), b.Bool())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			w.report(path, "%d vs %d", a.Int(), b.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if a.Uint() != b.Uint() {
			w.report(path, "%d vs %d", a.Uint(), b.Uint())
		}
	case reflect.Float32, reflect.Float64:
		if a.Float() != b.Float() {
			w.report(path, "%v vs %v", a.Float(), b.Float())
		}
	case reflect.String:
		if a.String() != b.String() {
			w.report(path, "%q vs %q", a.String(), b.String())
		}
	default:
		w.report(path, "uncomparable kind %v", a.Kind())
	}
}

// structSpecial applies the type-level equivalence comparators (see
// ResetDiff). It reports true when the type was fully handled.
func (w *resetWalker) structSpecial(path string, a, b reflect.Value) bool {
	switch a.Type().String() {
	case "cache.Array":
		aa := (*cache.Array)(unsafe.Pointer(a.UnsafeAddr()))
		bb := (*cache.Array)(unsafe.Pointer(b.UnsafeAddr()))
		if !aa.SameShape(bb) {
			w.report(path, "cache shape differs")
		} else if !aa.Pristine() {
			w.report(path, "fresh-side cache not pristine")
		} else if !bb.Pristine() {
			w.report(path, "reset-side cache not pristine")
		}
		return true
	case "coherence.dirTable":
		w.wantZeroField(path, a, b, "live")
		return true
	case "coherence.mshrTable":
		w.wantZeroField(path, a, b, "live")
		w.wantZeroField(path, a, b, "parked")
		return true
	case "htm.WakeSet":
		w.wantEmptyBitmap(path+" (fresh)", a)
		w.wantEmptyBitmap(path+" (reset)", b)
		return true
	}
	return false
}

// wantZeroField asserts an integer field is zero on both sides — the
// emptiness invariant grown tables compare by instead of capacity.
func (w *resetWalker) wantZeroField(path string, a, b reflect.Value, name string) {
	if v := a.FieldByName(name).Int(); v != 0 {
		w.report(path+"."+name, "fresh side %d, want 0", v)
	}
	if v := b.FieldByName(name).Int(); v != 0 {
		w.report(path+"."+name, "reset side %d, want 0", v)
	}
}

// wantEmptyBitmap asserts a WakeSet-shaped struct (w0 uint64 + ext []uint64)
// holds no bits; ext length is warm capacity and invisible when all-zero.
func (w *resetWalker) wantEmptyBitmap(path string, v reflect.Value) {
	if x := v.FieldByName("w0").Uint(); x != 0 {
		w.report(path+".w0", "%#x, want 0", x)
	}
	ext := v.FieldByName("ext")
	for i := 0; i < ext.Len(); i++ {
		if x := ext.Index(i).Uint(); x != 0 {
			w.report(fmt.Sprintf("%s.ext[%d]", path, i), "%#x, want 0", x)
		}
	}
}
