package cpu

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Program serialization: thread programs can be exported to JSON and
// replayed later (or on another machine configuration), decoupling
// workload generation from simulation. Dynamic atomic sections (bodies
// that change per attempt) are expanded up to a bounded number of
// attempts; replay repeats the last recorded body for deeper retries,
// which preserves the workload's behaviour for any realistic retry budget.

type opJSON struct {
	K string   `json:"k"`           // "r", "w", "c", "f"
	L mem.Line `json:"l,omitempty"` // line for r/w
	N uint64   `json:"n,omitempty"` // amount for c
}

type sectionJSON struct {
	Kind     string     `json:"kind"` // "atomic", "plain", "barrier"
	Ops      []opJSON   `json:"ops,omitempty"`
	Attempts [][]opJSON `json:"attempts,omitempty"` // atomic bodies per attempt
}

type traceJSON struct {
	Version  int             `json:"version"`
	Programs [][]sectionJSON `json:"programs"`
}

const traceVersion = 1

func opsToJSON(ops []Op) []opJSON {
	out := make([]opJSON, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpRead:
			out[i] = opJSON{K: "r", L: op.Line}
		case OpWrite:
			out[i] = opJSON{K: "w", L: op.Line}
		case OpCompute:
			out[i] = opJSON{K: "c", N: op.N}
		case OpFault:
			out[i] = opJSON{K: "f"}
		case OpRMW:
			out[i] = opJSON{K: "m", L: op.Line}
		default:
			panic(fmt.Sprintf("cpu: cannot serialize op kind %d", op.Kind))
		}
	}
	return out
}

func opsFromJSON(js []opJSON) ([]Op, error) {
	out := make([]Op, len(js))
	for i, j := range js {
		switch j.K {
		case "r":
			out[i] = Read(j.L)
		case "w":
			out[i] = Write(j.L)
		case "c":
			out[i] = Compute(j.N)
		case "f":
			out[i] = Fault()
		case "m":
			out[i] = RMW(j.L)
		default:
			return nil, fmt.Errorf("cpu: unknown op kind %q", j.K)
		}
	}
	return out, nil
}

// ExportPrograms serializes the per-thread programs. Atomic bodies are
// recorded for attempts 1..maxAttempts (minimum 1).
func ExportPrograms(w io.Writer, programs []Program, maxAttempts int) error {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	t := traceJSON{Version: traceVersion}
	for _, prog := range programs {
		var secs []sectionJSON
		for _, sec := range prog {
			switch {
			case sec.Barrier:
				secs = append(secs, sectionJSON{Kind: "barrier"})
			case sec.Atomic:
				sj := sectionJSON{Kind: "atomic"}
				for a := 1; a <= maxAttempts; a++ {
					sj.Attempts = append(sj.Attempts, opsToJSON(sec.Body(a)))
				}
				secs = append(secs, sj)
			default:
				secs = append(secs, sectionJSON{Kind: "plain", Ops: opsToJSON(sec.Ops)})
			}
		}
		t.Programs = append(t.Programs, secs)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ImportPrograms deserializes programs written by ExportPrograms.
func ImportPrograms(r io.Reader) ([]Program, error) {
	var t traceJSON
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("cpu: decoding program trace: %w", err)
	}
	if t.Version != traceVersion {
		return nil, fmt.Errorf("cpu: unsupported trace version %d", t.Version)
	}
	var programs []Program
	for pi, secs := range t.Programs {
		var prog Program
		for si, sj := range secs {
			switch sj.Kind {
			case "barrier":
				prog = append(prog, BarrierSection())
			case "plain":
				ops, err := opsFromJSON(sj.Ops)
				if err != nil {
					return nil, fmt.Errorf("cpu: program %d section %d: %w", pi, si, err)
				}
				prog = append(prog, Plain(ops))
			case "atomic":
				if len(sj.Attempts) == 0 {
					return nil, fmt.Errorf("cpu: program %d section %d: atomic without bodies", pi, si)
				}
				bodies := make([][]Op, len(sj.Attempts))
				for a, js := range sj.Attempts {
					ops, err := opsFromJSON(js)
					if err != nil {
						return nil, fmt.Errorf("cpu: program %d section %d attempt %d: %w", pi, si, a+1, err)
					}
					bodies[a] = ops
				}
				prog = append(prog, AtomicDynamic(func(attempt int) []Op {
					idx := attempt - 1
					if idx < 0 {
						idx = 0
					}
					if idx >= len(bodies) {
						idx = len(bodies) - 1
					}
					return bodies[idx]
				}))
			default:
				return nil, fmt.Errorf("cpu: program %d section %d: unknown kind %q", pi, si, sj.Kind)
			}
		}
		programs = append(programs, prog)
	}
	return programs, nil
}
