package cpu

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

// TestCycleLimitProducesDiagnostics: a run that exceeds its cycle budget
// must fail with the machine-state dump attached (the paper's gem5
// equivalent would hang; we diagnose).
func TestCycleLimitProducesDiagnostics(t *testing.T) {
	progs := counterProgram(4, 500, 4096)
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM,
		Threads: 4, Seed: 1, Limit: 2000} // far too small
	m := NewMachine(cfg, "t", "limit", progs)
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected a limit error")
	}
	msg := err.Error()
	for _, frag := range []string{"machine state", "core  0", "lock:"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("diagnostics missing %q:\n%s", frag, msg)
		}
	}
}

// TestBarrierMismatchDeadlockDetected: a program where one thread skips
// the barrier deadlocks; the machine must report it rather than hang.
func TestBarrierMismatchDeadlockDetected(t *testing.T) {
	progs := []Program{
		{BarrierSection()},
		{Plain([]Op{Compute(10)})}, // never arrives
	}
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 2, Seed: 1}
	m := NewMachine(cfg, "t", "deadlock", progs)
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "never finished") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

// TestMSHRWaitersCoalesce: two accesses to the same missing line from one
// core (the second issued by a restarted attempt) must coalesce onto one
// MSHR and both complete.
func TestMSHRWaitersCoalesce(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 1, Seed: 1}
	progs := []Program{{
		// Two back-to-back atomic sections touching the same cold line:
		// the L1 dedups by line under the hood.
		AtomicStatic([]Op{Read(9999), Write(9999)}),
		AtomicStatic([]Op{Read(9999)}),
	}}
	m := NewMachine(cfg, "t", "mshr", progs)
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sections() != 2 {
		t.Fatalf("sections = %d", r.Sections())
	}
}

// TestTrafficCollected: the run must aggregate subsystem counters.
func TestTrafficCollected(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: lockillerCfg(), Sync: SysHTM, Threads: 4, Seed: 2}
	r := run(t, cfg, counterProgram(4, 30, 4096))
	tr := r.Traffic
	if tr.Messages == 0 || tr.L1Hits == 0 || tr.L1Misses == 0 || tr.DirRequests == 0 {
		t.Fatalf("traffic not collected: %+v", tr)
	}
	if tr.L1MissRate() <= 0 || tr.L1MissRate() >= 1 {
		t.Fatalf("miss rate = %v", tr.L1MissRate())
	}
	var sb strings.Builder
	tr.Render(&sb)
	if !strings.Contains(sb.String(), "traffic:") {
		t.Fatal("traffic render empty")
	}
}

// TestDumpStateFields spot-checks the diagnostic snapshot.
func TestDumpStateFields(t *testing.T) {
	cfg := Config{Machine: smallParams(), HTM: baselineHTM(), Sync: SysHTM, Threads: 2, Seed: 1}
	m := NewMachine(cfg, "t", "dump", counterProgram(2, 5, mem.Line(4096)))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	dump := m.DumpState()
	for _, frag := range []string{"core  0", "core  1", "section", "lock: held=false"} {
		if !strings.Contains(dump, frag) {
			t.Fatalf("dump missing %q:\n%s", frag, dump)
		}
	}
}
