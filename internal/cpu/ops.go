// Package cpu models the in-order, single-issue cores of the simulated CMP
// (Table I) and the transactional programs they run: per-thread sequences
// of atomic sections, non-transactional work, and barriers, executed under
// one of the evaluated synchronization systems (CGL, best-effort HTM, or a
// LockillerTM variant).
package cpu

import "repro/internal/mem"

// OpKind is the kind of one dynamic operation.
type OpKind uint8

const (
	// OpCompute retires N non-memory instructions (N cycles on the 1-IPC
	// in-order core).
	OpCompute OpKind = iota
	// OpRead loads from a line.
	OpRead
	// OpWrite stores to a line.
	OpWrite
	// OpFault raises an exception (yada's transaction-killing events); in
	// speculative mode it aborts the transaction, in non-speculative modes
	// it costs the machine's fault penalty and continues.
	OpFault
	// OpRMW atomically increments a functional counter at a line: a load,
	// then a store, with the new value staged speculatively and applied at
	// commit. Counters let tests verify end-to-end atomicity — if the
	// protocol ever allowed two transactions to read the same value and
	// both commit, the final count would come up short (a lost update).
	OpRMW
)

// Op is one dynamic operation of a thread program.
type Op struct {
	Kind OpKind
	Line mem.Line
	N    uint64 // compute amount for OpCompute
}

// Read, Write, Compute, Fault, and RMW are convenience constructors.
func Read(l mem.Line) Op  { return Op{Kind: OpRead, Line: l} }
func Write(l mem.Line) Op { return Op{Kind: OpWrite, Line: l} }
func Compute(n uint64) Op { return Op{Kind: OpCompute, N: n} }
func Fault() Op           { return Op{Kind: OpFault} }
func RMW(l mem.Line) Op   { return Op{Kind: OpRMW, Line: l} }

// Section is one step of a thread program.
type Section struct {
	// Atomic marks a critical section: executed as a transaction (or under
	// the global lock for CGL). Body generates the section's operations
	// and is re-invoked on every attempt — dynamic workloads (labyrinth)
	// re-read shared state after an abort and may take a different path.
	Atomic bool
	Body   func(attempt int) []Op

	// Barrier marks a whole-program synchronization point.
	Barrier bool

	// Ops are the operations of a non-atomic section.
	Ops []Op
}

// Atomic builds an atomic section with a static body.
func AtomicStatic(ops []Op) Section {
	return Section{Atomic: true, Body: func(int) []Op { return ops }}
}

// AtomicDynamic builds an atomic section whose body is regenerated per
// attempt.
func AtomicDynamic(body func(attempt int) []Op) Section {
	return Section{Atomic: true, Body: body}
}

// Plain builds a non-atomic section.
func Plain(ops []Op) Section { return Section{Ops: ops} }

// BarrierSection builds a barrier.
func BarrierSection() Section { return Section{Barrier: true} }

// Program is a thread's full instruction stream.
type Program []Section

// CountAtomic returns the number of atomic sections, used by tests to
// check conservation (every section completes exactly once regardless of
// the synchronization system).
func (p Program) CountAtomic() int {
	n := 0
	for _, s := range p {
		if s.Atomic {
			n++
		}
	}
	return n
}
