package cpu

import (
	"testing"

	"repro/internal/mem"
)

// TestStagedMapBackingReused pins the allocation-residue cleanup on the
// speculative-counter map: applyStaged and abort clear the map in place, so
// a section that retries (or a thread running many RMW sections) reuses the
// same buckets instead of rebuilding the map every attempt.
func TestStagedMapBackingReused(t *testing.T) {
	cfg := Config{Machine: smallParams(), Threads: 1, Seed: 1}
	m := NewMachine(cfg, "test", "staged-reuse", []Program{nil})
	c := m.Cores[0]

	lines := []mem.Line{1 << 21, 1<<21 + 1, 1<<21 + 2, 1<<21 + 3}
	c.staged = make(map[memLine]uint64, len(lines))
	stageAndCommit := func() {
		for i, l := range lines {
			c.staged[l] = uint64(i + 1)
		}
		c.applyStaged()
	}
	stageAndCommit() // warm the counters map too

	if allocs := testing.AllocsPerRun(100, stageAndCommit); allocs != 0 {
		t.Fatalf("staged commit cycle allocates %v times per run, want 0", allocs)
	}
	if len(c.staged) != 0 {
		t.Fatalf("staged map not cleared: %d entries left", len(c.staged))
	}

	// The abort path must also keep the buckets.
	for i, l := range lines {
		c.staged[l] = uint64(i + 1)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		clear(c.staged)
		for i, l := range lines {
			c.staged[l] = uint64(i + 1)
		}
	}); allocs != 0 {
		t.Fatalf("staged abort cycle allocates %v times per run, want 0", allocs)
	}
}
