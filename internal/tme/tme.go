// Package tme is an executable specification of the paper's software-side
// contribution: the elided-lock programming interfaces of Listing 1 (the
// classic best-effort interface and its HTMLock modification) and
// Listing 2 (the enhanced release path with the extended ttest of the
// switchingMode mechanism).
//
// The package is deliberately a pure state machine over an abstract
// Hardware interface: the simulator's core model (internal/cpu) implements
// the same control flow in event-driven form; the tests here pin down the
// exact instruction sequences of the listings (which instructions execute,
// in which order, under which lock/transaction state), serving as the
// reference the core model is reviewed against.
package tme

import "fmt"

// Status models the xstatus register returned by xbegin.
type Status uint64

const (
	// StatusSuccess: the transaction started (Listing 1 line 7).
	StatusSuccess Status = 0
	// StatusLockAcquired: the explicit xabort(TME_LOCK_IS_ACQUIRED) of
	// Listing 1 line 9.
	StatusLockAcquired Status = 0xFF
	// StatusConflict / StatusCapacity / StatusFault: hardware abort codes.
	StatusConflict Status = 1
	StatusCapacity Status = 2
	StatusFault    Status = 3
)

// Extended ttest return values (paper §III-C): "If the CPU is in STL mode,
// the instruction return value can be set to 0x0FFFFFFF. While in TL mode,
// the return value can be set to 0x1FFFFFFFF." Ordinary transactions
// return their nesting depth (1 for a flat transaction), 0 outside.
const (
	TTestSTL uint64 = 0x0FFFFFFF
	TTestTL  uint64 = 0x1FFFFFFFF
)

// Hardware is the ISA surface the listings program against.
type Hardware interface {
	// XBegin attempts to start a speculative transaction; on an abort the
	// control flow re-enters at xbegin with the abort status.
	XBegin() Status
	// XAbort explicitly aborts the running transaction with a code.
	XAbort(code Status)
	// XEnd commits the running speculative transaction.
	XEnd()
	// HLBegin enters HTMLock mode (TL); guaranteed to succeed (§III-B).
	HLBegin()
	// HLEnd leaves HTMLock mode and clears the read/write sets.
	HLEnd()
	// TTest returns the extended transactional status (§III-C).
	TTest() uint64

	// The fallback lock.
	LockIsFree() bool
	LockAcquire()
	LockRelease()

	// TxRead subscribes an address to the read set; the classic interface
	// uses it to subscribe to the fallback lock (Listing 1 line 8).
	TxRead(lockAddr bool)
}

// Config selects the interface variant.
type Config struct {
	// HTMLock applies Listing 1's grey-background modification: no
	// fallback-lock subscription, and the fallback path runs hlbegin.
	HTMLock bool
	// MaxRetries is TME_MAX_RETRIES (Listing 1 line 3).
	MaxRetries int
}

// Mode is what LockAcquireElided decided.
type Mode int

const (
	// ModeHTM: the critical section runs speculatively.
	ModeHTM Mode = iota
	// ModeLock: the critical section runs on the fallback path (with
	// hlbegin under HTMLock — a TL lock transaction; a plain mutex
	// section otherwise).
	ModeLock
)

// RetryStrategy decides whether to retry after an abort (Listing 1 line
// 15). The default retries while the budget lasts, waiting out a held
// lock first — the behaviour recommended for Intel RTM.
type RetryStrategy func(status Status, retriesLeft int, lockFree bool) bool

// DefaultRetryStrategy retries while budget remains; a lock-acquired abort
// does not consume budget (the caller spins until the lock frees).
func DefaultRetryStrategy(status Status, retriesLeft int, lockFree bool) bool {
	return retriesLeft > 0
}

// LockAcquireElided is Listing 1's lock_acquire_elided: it returns the
// mode the caller must run the critical section in. The hardware's XBegin
// is re-entered on every abort, exactly like the instruction's semantics.
func LockAcquireElided(hw Hardware, cfg Config, retry RetryStrategy) Mode {
	if retry == nil {
		retry = DefaultRetryStrategy
	}
	numRetries := cfg.MaxRetries
	for {
		status := hw.XBegin()
		if status == StatusSuccess {
			if cfg.HTMLock {
				// Grey modification: no lock subscription; HTM transactions
				// and lock transactions coexist.
				return ModeHTM
			}
			hw.TxRead(true) // subscribe the fallback lock (line 8)
			if !hw.LockIsFree() {
				hw.XAbort(StatusLockAcquired) // line 9; re-enters XBegin
				continue
			}
			return ModeHTM // line 11
		}
		numRetries--
		if !retry(status, numRetries, hw.LockIsFree()) {
			break
		}
	}
	// Lines 16-18: the fallback path.
	hw.LockAcquire()
	if cfg.HTMLock {
		hw.HLBegin() // line 17: enter HTMLock mode
	}
	return ModeLock
}

// LockReleaseElided is Listing 2's enhanced lock_release_elided: the
// extended ttest dispatches between STL (hlend only — the lock was never
// taken), TL (hlend + release), and a plain HTM commit. Without HTMLock it
// degrades to Listing 1 lines 22-31 (lock-free check selects xend vs
// release).
func LockReleaseElided(hw Hardware, cfg Config) {
	if !cfg.HTMLock {
		if hw.LockIsFree() {
			hw.XEnd() // Listing 1 line 25
			return
		}
		hw.LockRelease() // Listing 1 line 28 (no hlend: classic interface)
		return
	}
	switch t := hw.TTest(); t {
	case TTestSTL:
		hw.HLEnd() // Listing 2 line 5: no lock to release
	case TTestTL:
		hw.HLEnd()
		hw.LockRelease() // Listing 2 lines 7-8
	default:
		if t == 0 {
			panic(fmt.Sprintf("tme: release outside any transaction (ttest=%#x)", t))
		}
		hw.XEnd() // Listing 2 line 10
	}
}
