package tme

import (
	"reflect"
	"testing"
)

// mockHW scripts the hardware's behaviour and records the instruction
// sequence the listings execute.
type mockHW struct {
	ops []string
	// beginResults supplies XBegin outcomes in order; exhausted = Success.
	beginResults []Status
	lockFree     bool
	lockFreeSeq  []bool // optional scripted LockIsFree answers
	ttest        uint64
}

func (m *mockHW) record(op string) { m.ops = append(m.ops, op) }

func (m *mockHW) XBegin() Status {
	m.record("xbegin")
	if len(m.beginResults) == 0 {
		return StatusSuccess
	}
	s := m.beginResults[0]
	m.beginResults = m.beginResults[1:]
	return s
}
func (m *mockHW) XAbort(code Status) {
	m.record("xabort")
	// The next XBegin re-entry reports the explicit code.
	m.beginResults = append([]Status{code}, m.beginResults...)
}
func (m *mockHW) XEnd()    { m.record("xend") }
func (m *mockHW) HLBegin() { m.record("hlbegin") }
func (m *mockHW) HLEnd()   { m.record("hlend") }
func (m *mockHW) TTest() uint64 {
	m.record("ttest")
	return m.ttest
}
func (m *mockHW) LockIsFree() bool {
	if len(m.lockFreeSeq) > 0 {
		v := m.lockFreeSeq[0]
		m.lockFreeSeq = m.lockFreeSeq[1:]
		return v
	}
	return m.lockFree
}
func (m *mockHW) LockAcquire() { m.record("lock_acquire") }
func (m *mockHW) LockRelease() { m.record("lock_release") }
func (m *mockHW) TxRead(lockAddr bool) {
	if lockAddr {
		m.record("read_lock")
	}
}

func classic() Config { return Config{HTMLock: false, MaxRetries: 3} }
func htmlock() Config { return Config{HTMLock: true, MaxRetries: 3} }

func TestClassicHappyPath(t *testing.T) {
	hw := &mockHW{lockFree: true}
	mode := LockAcquireElided(hw, classic(), nil)
	if mode != ModeHTM {
		t.Fatalf("mode = %v", mode)
	}
	// Listing 1 lines 6-11: xbegin, subscribe, check, proceed.
	want := []string{"xbegin", "read_lock"}
	if !reflect.DeepEqual(hw.ops, want) {
		t.Fatalf("ops = %v, want %v", hw.ops, want)
	}
}

func TestClassicLockHeldAbortsExplicitly(t *testing.T) {
	// Lock held at xbegin: lines 8-9 force xabort(TME_LOCK_IS_ACQUIRED),
	// the retry loop spins, and once free the transaction proceeds.
	hw := &mockHW{lockFreeSeq: []bool{false, true, true}}
	mode := LockAcquireElided(hw, classic(), nil)
	if mode != ModeHTM {
		t.Fatalf("mode = %v", mode)
	}
	// The xabort re-enters xbegin reporting the explicit code (second
	// xbegin); the retry loop then starts a fresh transaction (third).
	want := []string{"xbegin", "read_lock", "xabort", "xbegin", "xbegin", "read_lock"}
	if !reflect.DeepEqual(hw.ops, want) {
		t.Fatalf("ops = %v, want %v", hw.ops, want)
	}
}

func TestClassicFallbackAfterBudget(t *testing.T) {
	hw := &mockHW{lockFree: true,
		beginResults: []Status{StatusConflict, StatusConflict, StatusConflict, StatusConflict}}
	mode := LockAcquireElided(hw, classic(), nil)
	if mode != ModeLock {
		t.Fatalf("mode = %v", mode)
	}
	// TME_MAX_RETRIES=3 gives three attempts (Listing 1's do-while), then
	// the classic fallback acquires the lock WITHOUT hlbegin.
	want := []string{"xbegin", "xbegin", "xbegin", "lock_acquire"}
	if !reflect.DeepEqual(hw.ops, want) {
		t.Fatalf("ops = %v, want %v", hw.ops, want)
	}
}

func TestHTMLockSkipsSubscription(t *testing.T) {
	hw := &mockHW{lockFree: false} // lock held — and it must not matter
	mode := LockAcquireElided(hw, htmlock(), nil)
	if mode != ModeHTM {
		t.Fatalf("mode = %v", mode)
	}
	want := []string{"xbegin"} // no read_lock: the grey modification
	if !reflect.DeepEqual(hw.ops, want) {
		t.Fatalf("ops = %v, want %v", hw.ops, want)
	}
}

func TestHTMLockFallbackRunsHLBegin(t *testing.T) {
	hw := &mockHW{beginResults: []Status{StatusCapacity, StatusCapacity, StatusCapacity, StatusCapacity}}
	mode := LockAcquireElided(hw, htmlock(), nil)
	if mode != ModeLock {
		t.Fatalf("mode = %v", mode)
	}
	// Listing 1 lines 16-17 with the modification: lock, then hlbegin.
	n := len(hw.ops)
	if hw.ops[n-2] != "lock_acquire" || hw.ops[n-1] != "hlbegin" {
		t.Fatalf("fallback tail = %v", hw.ops[n-2:])
	}
}

func TestReleaseClassic(t *testing.T) {
	// Speculative commit (lock free at release => we are in a tx).
	hw := &mockHW{lockFree: true}
	LockReleaseElided(hw, classic())
	if !reflect.DeepEqual(hw.ops, []string{"xend"}) {
		t.Fatalf("ops = %v", hw.ops)
	}
	// Fallback release (lock held by us).
	hw = &mockHW{lockFree: false}
	LockReleaseElided(hw, classic())
	if !reflect.DeepEqual(hw.ops, []string{"lock_release"}) {
		t.Fatalf("ops = %v", hw.ops)
	}
}

func TestReleaseListing2Dispatch(t *testing.T) {
	// STL: hlend only — "there is no need to release the lock" (§III-C).
	hw := &mockHW{ttest: TTestSTL}
	LockReleaseElided(hw, htmlock())
	if !reflect.DeepEqual(hw.ops, []string{"ttest", "hlend"}) {
		t.Fatalf("STL ops = %v", hw.ops)
	}
	// TL: hlend then release (Listing 2 lines 6-8).
	hw = &mockHW{ttest: TTestTL}
	LockReleaseElided(hw, htmlock())
	if !reflect.DeepEqual(hw.ops, []string{"ttest", "hlend", "lock_release"}) {
		t.Fatalf("TL ops = %v", hw.ops)
	}
	// Ordinary transaction: xend (Listing 2 line 10).
	hw = &mockHW{ttest: 1}
	LockReleaseElided(hw, htmlock())
	if !reflect.DeepEqual(hw.ops, []string{"ttest", "xend"}) {
		t.Fatalf("HTM ops = %v", hw.ops)
	}
}

func TestReleaseOutsideTxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LockReleaseElided(&mockHW{ttest: 0}, htmlock())
}

func TestTTestConstantsDistinct(t *testing.T) {
	// The two sentinels must be distinguishable from each other and from
	// any plausible nesting depth.
	if TTestSTL == TTestTL || TTestSTL < 1000 || TTestTL < 1000 {
		t.Fatal("ttest sentinels not usable")
	}
}

func TestCustomRetryStrategy(t *testing.T) {
	// A strategy that gives up immediately sends the first abort to the
	// fallback path.
	hw := &mockHW{beginResults: []Status{StatusFault}}
	mode := LockAcquireElided(hw, classic(), func(s Status, left int, free bool) bool { return false })
	if mode != ModeLock {
		t.Fatalf("mode = %v", mode)
	}
	if len(hw.ops) != 2 || hw.ops[1] != "lock_acquire" {
		t.Fatalf("ops = %v", hw.ops)
	}
}
