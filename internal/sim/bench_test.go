package sim

import "testing"

// handler is a minimal typed-event sink for benchmarking.
type handler struct {
	e *Engine
	n uint64
	N uint64
	d uint64
}

func (h *handler) OnEvent(kind uint8, a uint64, p any) {
	h.n++
	if h.n < h.N {
		h.e.AfterEvent(h.d, h, kind, a, p)
	}
}

// benchTypedChain runs a self-rescheduling typed-event chain with delay d,
// exercising the ring (d < ringSize) or the heap (d >= ringSize).
func benchTypedChain(b *testing.B, d uint64) {
	e := NewEngine()
	e.Watchdog = 0 // the chain makes no simulated "progress" on purpose
	h := &handler{e: e, N: uint64(b.N), d: d}
	e.AfterEvent(d, h, 0, 0, nil)
	b.ResetTimer()
	if err := e.Run(0); err != nil {
		b.Fatal(err)
	}
	if h.n != uint64(b.N) {
		b.Fatalf("ran %d events, want %d", h.n, b.N)
	}
}

// BenchmarkTypedEventRing measures the bucket-ring fast path: small-delay
// typed events, the dominant pattern in the coherence model.
func BenchmarkTypedEventRing(b *testing.B) { benchTypedChain(b, 2) }

// BenchmarkTypedEventHeap measures the 4-ary heap path: delays beyond the
// ring horizon (memory latencies, retry backoffs).
func BenchmarkTypedEventHeap(b *testing.B) { benchTypedChain(b, 100) }

// BenchmarkClosureEventRing measures the closure API on the same small-delay
// pattern, for comparison against the typed path.
func BenchmarkClosureEventRing(b *testing.B) {
	e := NewEngine()
	e.Watchdog = 0
	var n uint64
	var tick func()
	tick = func() {
		n++
		if n < uint64(b.N) {
			e.After(2, tick)
		}
	}
	e.After(2, tick)
	b.ResetTimer()
	if err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMixedHorizon interleaves ring and heap traffic the way the full
// simulator does (mostly short latencies, occasional memory-scale delays).
func BenchmarkMixedHorizon(b *testing.B) {
	e := NewEngine()
	h := &handler{e: e, N: uint64(b.N), d: 1}
	for i := 0; i < 16; i++ {
		d := uint64(1 + i%5)
		if i%8 == 7 {
			d = 100 // heap-bound
		}
		e.AfterEvent(d, h, 0, 0, nil)
	}
	b.ResetTimer()
	for h.n < uint64(b.N) {
		if !e.Step() {
			b.Fatal("queue drained early")
		}
	}
}

// TestTypedEventSchedulingAllocs pins the tentpole property: scheduling and
// dispatching typed events allocates nothing in steady state (after the
// ring buckets and heap have grown to working size).
func TestTypedEventSchedulingAllocs(t *testing.T) {
	e := NewEngine()
	h := &handler{e: e, N: 1 << 62, d: 3}
	// Warm up: grow bucket slices and the heap to steady-state capacity.
	for i := 0; i < 64; i++ {
		e.AfterEvent(uint64(1+i%7), h, 0, 0, nil)
		e.AfterEvent(100+uint64(i), h, 0, 0, nil)
	}
	for e.Pending() > 0 && e.Executed() < 4096 {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterEvent(2, h, 0, 0, nil)
		e.AfterEvent(200, h, 0, 0, nil)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("typed-event schedule+dispatch allocates %.1f per op, want 0", allocs)
	}
}
