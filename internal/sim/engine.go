// Package sim provides the discrete-event simulation kernel used by every
// other component of the LockillerTM reproduction.
//
// The kernel is a single-threaded event loop: components schedule callbacks
// at absolute or relative cycle times and the engine executes them in
// non-decreasing time order. Events scheduled for the same cycle run in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrLimitReached is returned by Run when the cycle limit expires before the
// event queue drains. It usually indicates a livelock or deadlock in the
// simulated machine and is treated as fatal by the harness.
var ErrLimitReached = errors.New("sim: cycle limit reached with events still pending")

// Event is a callback scheduled to run at a particular cycle.
type event struct {
	when uint64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now      uint64
	seq      uint64
	heap     eventHeap
	executed uint64

	// Watchdog state: the engine aborts a Run if no progress callback fires
	// within Watchdog cycles. Components that make forward progress (e.g. a
	// core committing a transaction) call Progress to pat the watchdog.
	Watchdog     uint64
	lastProgress uint64
}

// NewEngine returns an engine with the default watchdog window.
func NewEngine() *Engine {
	return &Engine{Watchdog: 50_000_000}
}

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Executed returns the number of events executed so far; useful for
// performance reporting and for tests asserting that work happened.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute cycle t. Scheduling in the past panics:
// it is always a component bug.
func (e *Engine) At(t uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{when: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.At(e.now+d, fn) }

// Progress informs the watchdog that the simulated machine made forward
// progress (e.g. a transaction committed or a section finished).
func (e *Engine) Progress() { e.lastProgress = e.now }

// Step executes the next pending event, advancing time. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.when
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains or the cycle limit is exceeded.
// limit==0 means no limit. If the watchdog window elapses without a Progress
// call the run aborts with a diagnostic error.
func (e *Engine) Run(limit uint64) error {
	e.lastProgress = e.now
	for len(e.heap) > 0 {
		if limit != 0 && e.heap[0].when > limit {
			return fmt.Errorf("%w: now=%d pending=%d", ErrLimitReached, e.now, len(e.heap))
		}
		if e.Watchdog != 0 && e.now-e.lastProgress > e.Watchdog {
			return fmt.Errorf("sim: watchdog expired: no progress since cycle %d (now %d, pending %d)",
				e.lastProgress, e.now, len(e.heap))
		}
		e.Step()
	}
	return nil
}
