// Package sim provides the discrete-event simulation kernel used by every
// other component of the LockillerTM reproduction.
//
// The kernel is a single-threaded event loop: components schedule callbacks
// at absolute or relative cycle times and the engine executes them in
// non-decreasing time order. Events scheduled for the same cycle run in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit reproducible for a given seed.
//
// The scheduler is a two-tier calendar queue tuned for the delay mix the
// coherence and CPU models generate:
//
//   - a near-future bucket ring of ringSize one-cycle buckets absorbs the
//     dominant small-delay events (cache hit latencies, directory decision
//     delays, single NoC hops): scheduling is an O(1) slice append and
//     dispatch pops in FIFO order, which is exactly (when, seq) order;
//   - everything at least ringSize cycles out (memory latencies, retry
//     backoffs, watchdog-scale timeouts) goes to a hand-specialized 4-ary
//     min-heap over a flat []event slice — no container/heap interface
//     boxing, no per-Push allocation.
//
// Because simulated time is monotonic, for any cycle t every heap insertion
// with when==t happens strictly before every ring insertion with when==t
// (the former requires now <= t-ringSize, the latter now > t-ringSize), so
// popping the heap whenever its top is <= the earliest ring bucket preserves
// the global (when, seq) order exactly. The two-tier scheduler is therefore
// bit-for-bit identical in execution order to a single ordered queue.
// (The same argument extends to the sharded engine in par.go, where events
// are additionally staged across tile-group queues; see DESIGN.md §11.)
//
// Events are plain values in flat slices. The typed-event API (AtEvent /
// AfterEvent) lets hot paths schedule a Handler callback with two payload
// words instead of allocating a fresh closure per event; the closure API
// (At / After) remains for cold paths and tests.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// ErrLimitReached is returned by Run when the cycle limit expires before the
// event queue drains. It usually indicates a livelock or deadlock in the
// simulated machine and is treated as fatal by the harness.
var ErrLimitReached = errors.New("sim: cycle limit reached with events still pending")

// Handler receives typed events scheduled with AtEvent/AfterEvent. kind
// discriminates between the handler's event flavors; a and p are payload
// words chosen so that neither boxes (uint64 goes in a, pointers go in p).
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

// event is one scheduled callback: either a closure (fn != nil) or a typed
// handler event.
type event struct {
	when uint64
	seq  uint64
	fn   func()
	h    Handler
	p    any
	a    uint64
	kind uint8
}

const (
	ringBits = 6
	// ringSize is the bucket-ring horizon: events fewer than ringSize cycles
	// out go to the ring, the rest to the heap. 64 covers every fixed
	// latency of Table I except main memory (100 cycles).
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// bucket holds the events of one cycle in FIFO (= seq) order. head avoids
// shifting on pop; the slice is reset (capacity retained) when drained.
type bucket struct {
	ev   []event
	head int
}

// equeue is one two-tier calendar queue: the near-future bucket ring plus
// the far-future 4-ary min-heap. The sequential engine owns exactly one;
// the sharded engine (par.go) owns one per tile group plus one for the
// global strand. Time (now) lives in the Engine and is passed in, so every
// queue shares the same clock.
type equeue struct {
	ring      [ringSize]bucket
	ringCount int
	// ringMin is a lower bound on the cycle of the earliest ring event,
	// meaningful only while ringCount > 0. Scheduling tightens it eagerly;
	// popping leaves it stale-low and peekRing repairs it lazily by scanning
	// forward, so the ring head is found in amortized O(1) instead of an
	// O(ringSize) scan per query.
	ringMin uint64
	heap    []event // 4-ary min-heap ordered by (when, seq)
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now      uint64
	seq      uint64
	executed uint64

	q equeue

	// par, when non-nil, switches the engine into sharded (tile-parallel)
	// mode: events route to per-group queues by ownership and Run drives
	// the span coordinator instead of the flat loop. See par.go.
	par *parRuntime

	// probe, when non-nil, observes event dispatch and the par
	// coordinator on the host clock (internal/obs). Every callsite is
	// nil-guarded (enforced by the hostclock lint rule), so the disabled
	// cost is one pointer test per event. Probe methods run on whichever
	// goroutine holds the execution token — never two at once — so the
	// probe needs no locking (DESIGN.md §14).
	probe obs.EngineProbe

	// Watchdog state: the engine aborts a Run if no progress callback fires
	// within Watchdog cycles. Components that make forward progress (e.g. a
	// core committing a transaction) call Progress to pat the watchdog.
	Watchdog     uint64
	lastProgress uint64
}

// NewEngine returns an engine with the default watchdog window.
func NewEngine() *Engine {
	return &Engine{Watchdog: 50_000_000}
}

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Reset returns the engine to its just-constructed state in place: clock and
// sequence counter at zero, no pending events, executed count cleared. The
// calendar-queue backings (ring buckets, heap slice, par group queues and
// outbox) keep their grown capacity — queue order never depends on capacity,
// only on (when, seq) — so a reset machine schedules without re-growing.
// Watchdog and probe are configuration and survive; no run may be in
// progress (in sharded mode the workers of the previous run have exited).
func (e *Engine) Reset() {
	e.now, e.seq, e.executed, e.lastProgress = 0, 0, 0, 0
	e.q.reset()
	if e.par != nil {
		e.par.reset()
	}
}

// Executed returns the number of events executed so far; useful for
// performance reporting and for tests asserting that work happened.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int {
	if e.par != nil {
		return e.par.pending()
	}
	return e.q.pending()
}

// schedule places ev at absolute cycle t. Scheduling in the past panics: it
// is always a component bug.
func (e *Engine) schedule(t uint64, ev event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev.when, ev.seq = t, e.seq
	if e.par != nil {
		e.par.schedule(e, ev)
		return
	}
	e.q.push(e.now, ev)
}

// At schedules fn to run at absolute cycle t.
func (e *Engine) At(t uint64, fn func()) { e.schedule(t, event{fn: fn}) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.schedule(e.now+d, event{fn: fn}) }

// AtEvent schedules h.OnEvent(kind, a, p) at absolute cycle t without
// allocating: the event is a value in a flat slice and the payload fields
// are stored unboxed.
func (e *Engine) AtEvent(t uint64, h Handler, kind uint8, a uint64, p any) {
	e.schedule(t, event{h: h, kind: kind, a: a, p: p})
}

// AfterEvent schedules h.OnEvent(kind, a, p) d cycles from now.
func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {
	e.schedule(e.now+d, event{h: h, kind: kind, a: a, p: p})
}

// Progress informs the watchdog that the simulated machine made forward
// progress (e.g. a transaction committed or a section finished).
func (e *Engine) Progress() { e.lastProgress = e.now }

// PeekNext returns the cycle of the earliest pending event without removing
// it: the min of the calendar-ring head and the heap root. It is cheap by
// design — the event-fusion fast path (internal/cpu) calls it once per
// inlined operation to prove no event could interleave.
func (e *Engine) PeekNext() (when uint64, ok bool) {
	if e.par != nil {
		return e.par.peekNext(e)
	}
	when, _, ok = e.q.peek(e.now)
	return when, ok
}

// AdvanceTo lazily advances simulated time to cycle t without executing an
// event — the engine half of the event-fusion fast path. The caller must
// have established via PeekNext that every pending event fires strictly
// after t; the engine re-checks and panics otherwise, because silently
// passing a pending event would reorder the simulation. (Advancing to
// exactly the next event's cycle is also rejected: an already-queued event
// carries an earlier sequence number than anything the caller would go on
// to do at t, so it must run first.)
func (e *Engine) AdvanceTo(t uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) behind now %d", t, e.now))
	}
	if next, ok := e.PeekNext(); ok && next <= t {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) would pass the pending event at %d", t, next))
	}
	e.now = t
}

// SetProbe attaches (or, with nil, detaches) the host-side engine probe.
// It must be set before Run: the par workers read it without locks, which
// is safe only because it is immutable for the duration of a run.
func (e *Engine) SetProbe(p obs.EngineProbe) { e.probe = p }

// ProbeClasser lets a Handler name itself in self-profiler reports.
// Handlers that don't implement it are classed "event".
type ProbeClasser interface {
	ProbeClass() string
}

// probeClassOf derives the profiling class of an event: closures have no
// handler to ask, typed events use the handler's ProbeClass when offered.
func probeClassOf(ev *event) string {
	if ev.fn != nil {
		return "closure"
	}
	if pc, ok := ev.h.(ProbeClasser); ok {
		return pc.ProbeClass()
	}
	return "event"
}

// exec runs one popped event's callback.
func (e *Engine) exec(ev *event) {
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.OnEvent(ev.kind, ev.a, ev.p)
	}
}

// execObserved is exec with the probe bracket. The class lookup and clock
// reads happen only on the probed path; unprobed runs pay one nil test.
func (e *Engine) execObserved(ev *event) {
	if pr := e.probe; pr != nil {
		pr.EventBegin()
		e.exec(ev)
		pr.EventEnd(probeClassOf(ev), ev.kind)
		return
	}
	e.exec(ev)
}

// Step executes the next pending event, advancing time. It reports whether
// an event was executed. In sharded mode Step is not part of the hot loop
// (the coordinator in par.go is), but it remains exact: it executes the
// globally earliest event.
func (e *Engine) Step() bool {
	var ev event
	var ok bool
	if e.par != nil {
		ev, ok = e.par.popGlobal(e)
	} else {
		ev, ok = e.q.pop(e.now)
	}
	if !ok {
		return false
	}
	e.now = ev.when
	e.executed++
	e.execObserved(&ev)
	return true
}

// Run executes events until the queue drains or the cycle limit is exceeded.
// limit==0 means no limit. If the watchdog window elapses without a Progress
// call the run aborts with a diagnostic error.
func (e *Engine) Run(limit uint64) error {
	e.lastProgress = e.now
	if e.par != nil {
		return e.par.run(e, limit)
	}
	for {
		t, _, ok := e.q.peek(e.now)
		if !ok {
			return nil
		}
		if limit != 0 && t > limit {
			return e.limitErr()
		}
		if e.Watchdog != 0 && e.now-e.lastProgress > e.Watchdog {
			return e.watchdogErr()
		}
		ev, _ := e.q.pop(e.now)
		e.now = ev.when
		e.executed++
		e.execObserved(&ev)
	}
}

// limitErr and watchdogErr build the Run failure diagnostics. They are
// shared with the sharded coordinator so both engines fail with identical
// messages at identical points.
func (e *Engine) limitErr() error {
	return fmt.Errorf("%w: now=%d pending=%d", ErrLimitReached, e.now, e.Pending())
}

func (e *Engine) watchdogErr() error {
	return fmt.Errorf("sim: watchdog expired: no progress since cycle %d (now %d, pending %d)",
		e.lastProgress, e.now, e.Pending())
}

// --- equeue operations ----------------------------------------------------

// pending returns the number of queued events.
func (q *equeue) pending() int { return q.ringCount + len(q.heap) }

// reset empties the queue in place, zeroing abandoned events so the GC can
// reclaim their payloads while the bucket and heap backings stay warm.
func (q *equeue) reset() {
	for i := range q.ring {
		b := &q.ring[i]
		for j := range b.ev {
			b.ev[j] = event{}
		}
		b.ev = b.ev[:0]
		b.head = 0
	}
	q.ringCount = 0
	q.ringMin = 0
	for i := range q.heap {
		q.heap[i] = event{}
	}
	q.heap = q.heap[:0]
}

// push inserts ev (when and seq already assigned) routing by horizon: ring
// if fewer than ringSize cycles out relative to now, heap otherwise.
func (q *equeue) push(now uint64, ev event) {
	if ev.when-now < ringSize {
		b := &q.ring[ev.when&ringMask]
		b.ev = append(b.ev, ev)
		if q.ringCount == 0 || ev.when < q.ringMin {
			q.ringMin = ev.when
		}
		q.ringCount++
		return
	}
	q.heapPush(ev)
}

// peekRing returns the cycle of the earliest ring event. It starts from the
// cached ringMin lower bound and scans forward over at most the buckets the
// last pop emptied, tightening the bound as a side effect — amortized O(1)
// across a run because ringMin only moves forward between insertions.
func (q *equeue) peekRing(now uint64) (uint64, bool) {
	if q.ringCount == 0 {
		return 0, false
	}
	t := q.ringMin
	if t < now {
		// The bound predates a lazy time advance; every pending event is at
		// or after now, so the scan can start there. (Starting below now
		// would misread a bucket refilled for cycle t+ringSize.)
		t = now
	}
	for end := now + ringSize; t < end; t++ {
		if b := &q.ring[t&ringMask]; b.head < len(b.ev) {
			q.ringMin = t
			return t, true
		}
	}
	panic("sim: ring accounting corrupted")
}

// peek returns the (when, seq) of the queue's earliest event in (when, seq)
// order without removing it. The heap wins ties at equal when because for
// any cycle, every heap insertion into this queue was sequenced before every
// ring insertion (see the package comment; DESIGN.md §11 extends the
// argument to merged cross-group events).
func (q *equeue) peek(now uint64) (when, seq uint64, ok bool) {
	rt, rok := q.peekRing(now)
	if len(q.heap) > 0 && (!rok || q.heap[0].when <= rt) {
		return q.heap[0].when, q.heap[0].seq, true
	}
	if !rok {
		return 0, 0, false
	}
	b := &q.ring[rt&ringMask]
	return rt, b.ev[b.head].seq, true
}

// pop removes and returns the queue's earliest event in (when, seq) order.
//
// Every event in a reachable ring bucket provably has when equal to the
// bucket's scan cycle (see the package comment), so bucket FIFO order is
// (when, seq) order. The heap wins ties at equal when because all of its
// same-cycle events were scheduled — and therefore sequenced — before any
// ring event of that cycle.
func (q *equeue) pop(now uint64) (event, bool) {
	rt, rok := q.peekRing(now)
	if len(q.heap) > 0 && (!rok || q.heap[0].when <= rt) {
		return q.heapPop(), true
	}
	if !rok {
		return event{}, false
	}
	b := &q.ring[rt&ringMask]
	ev := b.ev[b.head]
	b.ev[b.head] = event{} // drop references so the GC can reclaim payloads
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
	}
	q.ringCount--
	return ev, true
}

// --- 4-ary min-heap over a flat []event slice ---------------------------

// less orders events by (when, seq).
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *equeue) heapPush(ev event) {
	q.heap = append(q.heap, ev)
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (q *equeue) heapPop() event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop references so the GC can reclaim payloads
	q.heap = h[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places ev starting from the root of the (already popped) heap.
func (q *equeue) siftDown(ev event) {
	h := q.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
