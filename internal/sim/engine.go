// Package sim provides the discrete-event simulation kernel used by every
// other component of the LockillerTM reproduction.
//
// The kernel is a single-threaded event loop: components schedule callbacks
// at absolute or relative cycle times and the engine executes them in
// non-decreasing time order. Events scheduled for the same cycle run in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit reproducible for a given seed.
//
// The scheduler is a two-tier calendar queue tuned for the delay mix the
// coherence and CPU models generate:
//
//   - a near-future bucket ring of ringSize one-cycle buckets absorbs the
//     dominant small-delay events (cache hit latencies, directory decision
//     delays, single NoC hops): scheduling is an O(1) slice append and
//     dispatch pops in FIFO order, which is exactly (when, seq) order;
//   - everything at least ringSize cycles out (memory latencies, retry
//     backoffs, watchdog-scale timeouts) goes to a hand-specialized 4-ary
//     min-heap over a flat []event slice — no container/heap interface
//     boxing, no per-Push allocation.
//
// Because simulated time is monotonic, for any cycle t every heap insertion
// with when==t happens strictly before every ring insertion with when==t
// (the former requires now <= t-ringSize, the latter now > t-ringSize), so
// popping the heap whenever its top is <= the earliest ring bucket preserves
// the global (when, seq) order exactly. The two-tier scheduler is therefore
// bit-for-bit identical in execution order to a single ordered queue.
//
// Events are plain values in flat slices. The typed-event API (AtEvent /
// AfterEvent) lets hot paths schedule a Handler callback with two payload
// words instead of allocating a fresh closure per event; the closure API
// (At / After) remains for cold paths and tests.
package sim

import (
	"errors"
	"fmt"
)

// ErrLimitReached is returned by Run when the cycle limit expires before the
// event queue drains. It usually indicates a livelock or deadlock in the
// simulated machine and is treated as fatal by the harness.
var ErrLimitReached = errors.New("sim: cycle limit reached with events still pending")

// Handler receives typed events scheduled with AtEvent/AfterEvent. kind
// discriminates between the handler's event flavors; a and p are payload
// words chosen so that neither boxes (uint64 goes in a, pointers go in p).
type Handler interface {
	OnEvent(kind uint8, a uint64, p any)
}

// event is one scheduled callback: either a closure (fn != nil) or a typed
// handler event.
type event struct {
	when uint64
	seq  uint64
	fn   func()
	h    Handler
	p    any
	a    uint64
	kind uint8
}

const (
	ringBits = 6
	// ringSize is the bucket-ring horizon: events fewer than ringSize cycles
	// out go to the ring, the rest to the heap. 64 covers every fixed
	// latency of Table I except main memory (100 cycles).
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// bucket holds the events of one cycle in FIFO (= seq) order. head avoids
// shifting on pop; the slice is reset (capacity retained) when drained.
type bucket struct {
	ev   []event
	head int
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now      uint64
	seq      uint64
	executed uint64

	ring      [ringSize]bucket
	ringCount int
	heap      []event // 4-ary min-heap ordered by (when, seq)

	// Watchdog state: the engine aborts a Run if no progress callback fires
	// within Watchdog cycles. Components that make forward progress (e.g. a
	// core committing a transaction) call Progress to pat the watchdog.
	Watchdog     uint64
	lastProgress uint64
}

// NewEngine returns an engine with the default watchdog window.
func NewEngine() *Engine {
	return &Engine{Watchdog: 50_000_000}
}

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Executed returns the number of events executed so far; useful for
// performance reporting and for tests asserting that work happened.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.ringCount + len(e.heap) }

// schedule places ev at absolute cycle t. Scheduling in the past panics: it
// is always a component bug.
func (e *Engine) schedule(t uint64, ev event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev.when, ev.seq = t, e.seq
	if t-e.now < ringSize {
		b := &e.ring[t&ringMask]
		b.ev = append(b.ev, ev)
		e.ringCount++
		return
	}
	e.heapPush(ev)
}

// At schedules fn to run at absolute cycle t.
func (e *Engine) At(t uint64, fn func()) { e.schedule(t, event{fn: fn}) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.schedule(e.now+d, event{fn: fn}) }

// AtEvent schedules h.OnEvent(kind, a, p) at absolute cycle t without
// allocating: the event is a value in a flat slice and the payload fields
// are stored unboxed.
func (e *Engine) AtEvent(t uint64, h Handler, kind uint8, a uint64, p any) {
	e.schedule(t, event{h: h, kind: kind, a: a, p: p})
}

// AfterEvent schedules h.OnEvent(kind, a, p) d cycles from now.
func (e *Engine) AfterEvent(d uint64, h Handler, kind uint8, a uint64, p any) {
	e.schedule(e.now+d, event{h: h, kind: kind, a: a, p: p})
}

// Progress informs the watchdog that the simulated machine made forward
// progress (e.g. a transaction committed or a section finished).
func (e *Engine) Progress() { e.lastProgress = e.now }

// nextWhen returns the cycle of the earliest pending event.
func (e *Engine) nextWhen() (uint64, bool) {
	if e.ringCount > 0 {
		for i := uint64(0); i < ringSize; i++ {
			t := e.now + i
			if len(e.heap) > 0 && e.heap[0].when <= t {
				return e.heap[0].when, true
			}
			if b := &e.ring[t&ringMask]; b.head < len(b.ev) {
				return t, true
			}
		}
		panic("sim: ring accounting corrupted")
	}
	if len(e.heap) > 0 {
		return e.heap[0].when, true
	}
	return 0, false
}

// pop removes and returns the globally earliest event in (when, seq) order.
//
// Ring buckets are scanned forward from now; every event in a reachable
// bucket provably has when equal to the scan cycle (see the package
// comment), so bucket FIFO order is (when, seq) order. The heap wins ties
// at equal when because all of its same-cycle events were scheduled — and
// therefore sequenced — before any ring event of that cycle.
func (e *Engine) pop() (event, bool) {
	if e.ringCount > 0 {
		for i := uint64(0); i < ringSize; i++ {
			t := e.now + i
			if len(e.heap) > 0 && e.heap[0].when <= t {
				return e.heapPop(), true
			}
			b := &e.ring[t&ringMask]
			if b.head >= len(b.ev) {
				continue
			}
			ev := b.ev[b.head]
			b.ev[b.head] = event{} // drop references so the GC can reclaim payloads
			b.head++
			if b.head == len(b.ev) {
				b.ev = b.ev[:0]
				b.head = 0
			}
			e.ringCount--
			return ev, true
		}
		panic("sim: ring accounting corrupted")
	}
	if len(e.heap) > 0 {
		return e.heapPop(), true
	}
	return event{}, false
}

// Step executes the next pending event, advancing time. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	ev, ok := e.pop()
	if !ok {
		return false
	}
	e.now = ev.when
	e.executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.OnEvent(ev.kind, ev.a, ev.p)
	}
	return true
}

// Run executes events until the queue drains or the cycle limit is exceeded.
// limit==0 means no limit. If the watchdog window elapses without a Progress
// call the run aborts with a diagnostic error.
func (e *Engine) Run(limit uint64) error {
	e.lastProgress = e.now
	for {
		t, ok := e.nextWhen()
		if !ok {
			return nil
		}
		if limit != 0 && t > limit {
			return fmt.Errorf("%w: now=%d pending=%d", ErrLimitReached, e.now, e.Pending())
		}
		if e.Watchdog != 0 && e.now-e.lastProgress > e.Watchdog {
			return fmt.Errorf("sim: watchdog expired: no progress since cycle %d (now %d, pending %d)",
				e.lastProgress, e.now, e.Pending())
		}
		e.Step()
	}
}

// --- 4-ary min-heap over a flat []event slice ---------------------------

// less orders events by (when, seq).
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop references so the GC can reclaim payloads
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ev starting from the root of the (already popped) heap.
func (e *Engine) siftDown(ev event) {
	h := e.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
