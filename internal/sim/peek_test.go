package sim

import "testing"

func TestPeekNextEmpty(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext on an empty queue reported an event")
	}
	// Draining the queue must restore the empty answer.
	e.At(3, func() {})
	if w, ok := e.PeekNext(); !ok || w != 3 {
		t.Fatalf("PeekNext = (%d,%v), want (3,true)", w, ok)
	}
	if !e.Step() {
		t.Fatal("Step did not execute the scheduled event")
	}
	if _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext after draining reported an event")
	}
}

// TestPeekNextRingHeapTie pins the tie-break at the ring/heap boundary: an
// event scheduled far out (heap) and one scheduled later but nearby (ring)
// can share a cycle; PeekNext must report that cycle once, and the heap
// event must pop first (it was sequenced first).
func TestPeekNextRingHeapTie(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(100, func() { order = append(order, 1) }) // 100-0 >= 64: heap
	e.At(40, func() { order = append(order, 0) })  // ring
	if w, ok := e.PeekNext(); !ok || w != 40 {
		t.Fatalf("PeekNext = (%d,%v), want (40,true)", w, ok)
	}
	e.Step() // now = 40
	e.At(100, func() { order = append(order, 2) }) // 100-40 < 64: ring, same cycle as the heap event
	if w, ok := e.PeekNext(); !ok || w != 100 {
		t.Fatalf("PeekNext = (%d,%v), want (100,true)", w, ok)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2} {
		if order[i] != want {
			t.Fatalf("execution order = %v, want [0 1 2] (heap must win the same-cycle tie)", order)
		}
	}
}

// TestPeekNextMatchesPop cross-checks PeekNext against actual execution over
// a randomized schedule spanning both tiers: before every Step, PeekNext
// must name exactly the cycle the next event executes at.
func TestPeekNextMatchesPop(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(99)
	spawned, pending := 0, 0
	var ran uint64
	var fn func()
	fn = func() {
		ran = e.Now()
		pending--
		for spawned < 10_000 && (pending < 4 || (pending < 40 && rng.Bool(0.7))) {
			d := uint64(rng.Intn(200)) // straddles the 64-cycle ring horizon
			e.After(d, fn)
			spawned++
			pending++
		}
	}
	e.After(0, fn)
	spawned++
	pending++
	steps := 0
	for {
		w, ok := e.PeekNext()
		if !ok {
			break
		}
		if !e.Step() {
			t.Fatal("PeekNext reported an event but Step found none")
		}
		if ran != w {
			t.Fatalf("step %d: PeekNext said %d, event ran at %d", steps, w, ran)
		}
		steps++
	}
	if steps != spawned {
		t.Fatalf("executed %d of %d scheduled events", steps, spawned)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	e.AdvanceTo(49) // strictly before the pending event: fine
	if e.Now() != 49 {
		t.Fatalf("Now = %d after AdvanceTo(49)", e.Now())
	}
	// Scheduling relative to the lazily advanced clock must keep working.
	e.After(0, func() {})
	if w, _ := e.PeekNext(); w != 49 {
		t.Fatalf("PeekNext = %d, want 49", w)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d after drain, want 50", e.Now())
	}
}

func TestAdvanceToEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(1_000_000)
	if e.Now() != 1_000_000 {
		t.Fatalf("Now = %d", e.Now())
	}
	// The ring window follows the advanced clock.
	fired := false
	e.After(2, func() { fired = true })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 1_000_002 {
		t.Fatalf("fired=%v Now=%d", fired, e.Now())
	}
}

func TestAdvanceToPastPendingPanics(t *testing.T) {
	for _, tt := range []struct {
		name string
		to   uint64
	}{
		{"equal", 50}, // ties must fall back: the queued event sequences first
		{"past", 51},
	} {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEngine()
			e.At(50, func() {})
			defer func() {
				if recover() == nil {
					t.Errorf("AdvanceTo(%d) with an event at 50 did not panic", tt.to)
				}
			}()
			e.AdvanceTo(tt.to)
		})
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.At(20, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo behind now did not panic")
		}
	}()
	e.AdvanceTo(5)
}
