package sim

// RNG is a small, fast, deterministic xorshift64* generator. The simulator
// must not depend on math/rand global state so that every run is exactly
// reproducible from its seed; each component derives its own stream with
// Split so that adding a consumer never perturbs another's sequence.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped: xorshift
// has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent stream labelled by id.
func (r *RNG) Split(id uint64) *RNG {
	s := r.state ^ (id+1)*0xBF58476D1CE4E5B9
	s ^= s >> 30
	s *= 0x94D049BB133111EB
	s ^= s >> 31
	return NewRNG(s)
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric-ish distribution with the
// given mean (at least 1). Used to draw per-transaction op counts.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	n := 1
	p := 1 - 1/mean
	for r.Bool(p) && n < int(mean*8) {
		n++
	}
	return n
}
