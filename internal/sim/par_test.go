package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// parRec is one executed event in the synthetic workload's log: enough to
// detect any reordering between the sequential and sharded engines.
type parRec struct {
	tile int // -1 = closure (global strand)
	when uint64
	kind uint8
	a    uint64
}

// parNode is one synthetic tile: it logs every event and deterministically
// fans out follow-up work — cross-tile typed events (delay >= 1, matching
// the NoC lookahead contract), same-tile zero-delay events, and strand
// closures that themselves re-enter tiles.
type parNode struct {
	id  int
	sim *parSim
}

func (n *parNode) SimTile() int { return n.id }

func (n *parNode) OnEvent(kind uint8, a uint64, _ any) {
	s := n.sim
	s.log = append(s.log, parRec{tile: n.id, when: s.eng.Now(), kind: kind, a: a})
	if s.budget == 0 {
		return
	}
	s.budget--
	next := s.nodes[(n.id+1+int(a%uint64(len(s.nodes)-1)))%len(s.nodes)]
	s.eng.AfterEvent(1+a%7, next, kind+1, a*0x9E3779B97F4A7C15+1, nil)
	if a%11 == 0 {
		// Same-tile events may be same-cycle: no NoC boundary is crossed.
		s.eng.AfterEvent(0, n, 9, a+3, nil)
	}
	if a%5 == 0 {
		aa := a
		target := s.nodes[int(aa%uint64(len(s.nodes)))]
		s.eng.After(aa%3, func() {
			s.log = append(s.log, parRec{tile: -1, when: s.eng.Now(), kind: 0xFF, a: aa})
			if s.budget > 0 {
				s.budget--
				s.eng.AfterEvent(1+aa%4, target, 7, aa^0xABCD, nil)
			}
		})
	}
}

type parSim struct {
	eng    *Engine
	nodes  []*parNode
	log    []parRec
	budget int
}

// newParSim builds the synthetic workload on a fresh engine. workers == 0
// keeps the engine sequential.
func newParSim(workers int, grantWidth uint64, tiles, budget int) *parSim {
	eng := NewEngine()
	if workers > 0 {
		eng.EnablePar(workers, tiles)
		eng.SetParGrantWidth(grantWidth)
	}
	s := &parSim{eng: eng, budget: budget}
	for i := 0; i < tiles; i++ {
		s.nodes = append(s.nodes, &parNode{id: i, sim: s})
	}
	for i := 0; i < tiles; i++ {
		eng.AtEvent(uint64(i%3), s.nodes[i], 0, uint64(2*i+1), nil)
	}
	return s
}

var parTestConfigs = []struct {
	workers    int
	grantWidth uint64
}{
	{1, 0}, {1, 16}, {2, 0}, {2, 4}, {3, 16}, {4, 0}, {4, 16}, {8, 0}, {8, 16},
}

// TestParSyntheticParity drives the synthetic cross-tile workload on the
// sequential engine and on the sharded engine across worker counts and grant
// widths (0 forces every span through a worker goroutine; larger widths
// exercise the inline path) and requires the complete execution log — tile,
// cycle, kind, payload, in order — to match exactly.
func TestParSyntheticParity(t *testing.T) {
	const tiles, budget = 8, 5000
	ref := newParSim(0, 0, tiles, budget)
	if err := ref.eng.Run(0); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if len(ref.log) < budget {
		t.Fatalf("synthetic workload too small: %d records", len(ref.log))
	}
	for _, cfg := range parTestConfigs {
		name := fmt.Sprintf("workers=%d,grant=%d", cfg.workers, cfg.grantWidth)
		s := newParSim(cfg.workers, cfg.grantWidth, tiles, budget)
		if err := s.eng.Run(0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(ref.log, s.log) {
			for i := range ref.log {
				if i >= len(s.log) || ref.log[i] != s.log[i] {
					t.Fatalf("%s: execution order diverges at record %d: seq=%+v par=%+v",
						name, i, ref.log[i], s.log[i])
				}
			}
			t.Fatalf("%s: log lengths differ: seq=%d par=%d", name, len(ref.log), len(s.log))
		}
		if s.eng.Now() != ref.eng.Now() || s.eng.Executed() != ref.eng.Executed() {
			t.Errorf("%s: now/executed diverge: seq=(%d,%d) par=(%d,%d)",
				name, ref.eng.Now(), ref.eng.Executed(), s.eng.Now(), s.eng.Executed())
		}
	}
}

// TestParEventCounts checks the ownership-attributed counters: the per-group
// counts plus the strand count must sum to the engine total, and — because
// attribution follows event ownership, not execution placement — must be
// identical across grant widths for a fixed worker count.
func TestParEventCounts(t *testing.T) {
	const tiles, budget = 8, 2000
	for _, workers := range []int{2, 4} {
		var ref []uint64
		var refStrand uint64
		for _, gw := range []uint64{0, 16} {
			s := newParSim(workers, gw, tiles, budget)
			if err := s.eng.Run(0); err != nil {
				t.Fatalf("workers=%d grant=%d: %v", workers, gw, err)
			}
			groups, strand := s.eng.ParEventCounts()
			if len(groups) != workers {
				t.Fatalf("workers=%d: ParEventCounts returned %d groups", workers, len(groups))
			}
			total := strand
			for _, g := range groups {
				total += g
			}
			if total != s.eng.Executed() {
				t.Errorf("workers=%d grant=%d: counts sum %d != executed %d",
					workers, gw, total, s.eng.Executed())
			}
			if ref == nil {
				ref, refStrand = groups, strand
			} else if !reflect.DeepEqual(ref, groups) || strand != refStrand {
				t.Errorf("workers=%d: counts differ across grant widths: %v/%d vs %v/%d",
					workers, ref, refStrand, groups, strand)
			}
		}
	}
	seq := newParSim(0, 0, tiles, budget)
	if g, s := seq.eng.ParEventCounts(); g != nil || s != 0 {
		t.Errorf("sequential engine reported par counts: %v, %d", g, s)
	}
}

// TestParSpansGranted checks that grant width 0 actually exercises worker
// goroutines (spans > 0) — guarding against the inline heuristic silently
// swallowing the whole run and turning the parity suite into a no-op.
func TestParSpansGranted(t *testing.T) {
	s := newParSim(4, 0, 8, 2000)
	if err := s.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.eng.ParSpans() == 0 {
		t.Fatal("grant width 0 granted no spans to workers")
	}
}

// TestParLimitErrorParity drives both engines into the cycle limit and the
// watchdog, and requires identical failure errors: the sharded coordinator
// and span runner check at the same event boundaries as the sequential loop.
func TestParLimitErrorParity(t *testing.T) {
	run := func(workers int, grantWidth, limit, watchdog uint64) error {
		// The closure-spawned chains multiply, so the budget must outlive the
		// limit: 50k events reach well past cycle 60.
		s := newParSim(workers, grantWidth, 8, 50_000)
		s.eng.Watchdog = watchdog
		return s.eng.Run(limit)
	}
	for _, tc := range []struct {
		name            string
		limit, watchdog uint64
	}{
		{"limit", 50, 0},
		{"watchdog", 0, 60},
	} {
		ref := run(0, 0, tc.limit, tc.watchdog)
		if ref == nil {
			t.Fatalf("%s: sequential run unexpectedly succeeded", tc.name)
		}
		for _, cfg := range parTestConfigs {
			got := run(cfg.workers, cfg.grantWidth, tc.limit, tc.watchdog)
			if got == nil || got.Error() != ref.Error() {
				t.Errorf("%s workers=%d grant=%d: error %q, sequential %q",
					tc.name, cfg.workers, cfg.grantWidth, got, ref)
			}
		}
	}
}

// TestEnableParGuards pins the misuse panics: double arming, arming after
// events exist, and a worker count clamped to the tile count.
func TestEnableParGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	e := NewEngine()
	e.EnablePar(4, 8)
	mustPanic("twice", func() { e.EnablePar(4, 8) })
	e2 := NewEngine()
	e2.After(1, func() {})
	mustPanic("after schedule", func() { e2.EnablePar(2, 4) })
	e3 := NewEngine()
	e3.EnablePar(64, 4)
	if got := e3.ParWorkers(); got != 4 {
		t.Errorf("workers not clamped to tiles: %d", got)
	}
	if g := e3.ParGroupOf(3); g != 3 {
		t.Errorf("ParGroupOf(3) = %d with 4 groups over 4 tiles", g)
	}
	if g := e3.ParGroupOf(99); g != -1 {
		t.Errorf("out-of-range tile mapped to group %d, want -1 (strand)", g)
	}
}
