package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 2) })
	e.At(5, func() { got = append(got, 1) })
	e.At(10, func() { got = append(got, 3) }) // same cycle: scheduling order
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine()
	var times []uint64
	var step func()
	step = func() {
		times = append(times, e.Now())
		if len(times) < 4 {
			e.After(3, step)
		}
	}
	e.After(0, step)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{0, 3, 6, 9} {
		if times[i] != want {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	if err := e.Run(50); err == nil {
		t.Fatal("expected limit error")
	}
	e2 := NewEngine()
	e2.At(100, func() {})
	if err := e2.Run(100); err != nil {
		t.Fatalf("limit==when should run: %v", err)
	}
}

func TestEngineWatchdog(t *testing.T) {
	e := NewEngine()
	e.Watchdog = 100
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 100 {
			e.After(10, tick) // never calls Progress
		}
	}
	e.After(0, tick)
	if err := e.Run(0); err == nil {
		t.Fatal("expected watchdog error")
	}
}

func TestEngineWatchdogPatted(t *testing.T) {
	e := NewEngine()
	e.Watchdog = 100
	var tick func()
	n := 0
	tick = func() {
		n++
		e.Progress()
		if n < 50 {
			e.After(90, tick)
		}
	}
	e.After(0, tick)
	if err := e.Run(0); err != nil {
		t.Fatalf("watchdog fired despite progress: %v", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(42).Split(1)
	d := NewRNG(42).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(x uint16) bool {
		n := int(x%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const draws = 20000
	sum := 0
	for i := 0; i < draws; i++ {
		v := r.Geometric(10)
		if v < 1 {
			t.Fatalf("Geometric returned %d", v)
		}
		sum += v
	}
	mean := float64(sum) / draws
	if mean < 7 || mean > 13 {
		t.Fatalf("Geometric(10) mean = %v, want ~10", mean)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
	if e.Pending() != 0 || e.Executed() != 0 {
		t.Fatal("counters should be zero")
	}
}
