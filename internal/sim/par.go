// Sharded (tile-parallel) mode of the discrete-event engine: a conservative
// PDES runtime that partitions event ownership into tile groups, gives each
// group its own two-tier calendar queue and worker goroutine, and exchanges
// cross-group events through staged outboxes merged in exact (when, seq)
// order.
//
// The runtime is *exact*: results are bit-for-bit identical to the
// sequential engine at every worker count. Exactness is enforced by a
// deliberately strong synchronization discipline — at any instant at most
// one goroutine (a granted worker or the coordinator) executes events and
// mutates engine state, and every handoff is a channel send, so the Go race
// detector can certify the protocol. The coordinator grants a group a
// *span*: the right to simulate ahead while the group's next event precedes
// both the frozen heads of all other queues (the span horizon) and the
// earliest event the span itself has staged for another group. Within a
// span the worker sees exactly the global (when, seq) frontier — its
// PeekNext view includes the horizon and its own outbox — so the event-
// fusion fast path (DESIGN.md §10) makes identical decisions in both
// engines. DESIGN.md §11 develops the ordering argument and documents why
// the NoC lookahead cannot widen spans beyond this without giving up
// bit-identity.
//
// This file is the PDES coordinator: the only place in package sim where
// goroutines and channels are permitted, each use waived line-by-line with
// //lockiller:par-ok (see internal/analysis/nowallclock).
package sim

import "fmt"

// TileOwner is implemented by typed-event handlers whose events all belong
// to one fixed tile (cores, L1 controllers, directory banks). The sharded
// engine routes their events to the owning tile group's queue.
type TileOwner interface {
	SimTile() int
}

// EventOwner is implemented by typed-event handlers whose event ownership
// depends on the event payload (the coherence System routes NoC deliveries
// by Msg.Dst and delayed sends by Msg.Src). It takes precedence over
// TileOwner.
type EventOwner interface {
	EventTile(kind uint8, a uint64, p any) int
}

// defaultGrantWidth is the minimum span width (in cycles between a group's
// next event and the span horizon) for which the coordinator hands the span
// to the group's worker goroutine instead of executing inline. Narrow spans
// are cheaper to run on the coordinator than to hand off. The machine layer
// overrides this from the NoC lookahead (8x the minimum cross-tile latency).
const defaultGrantWidth = 16

// parGroup is one tile group's scheduling state.
type parGroup struct {
	q        equeue
	executed uint64 // events owned by this group that have executed
}

// staged is one cross-group event captured in a span's outbox: the event
// (with its final when and globally-ordered seq) plus its destination group
// (-1 = the global strand).
type staged struct {
	ev  event
	grp int32
}

// grant hands a span to a worker; spanResult hands control back.
type grant struct {
	limit uint64
}

type spanResult struct {
	err error
}

// parRuntime is the sharded-engine state hanging off an Engine. All fields
// are owned by whichever goroutine currently holds the execution token
// (coordinator, or the worker of the granted span); the token moves only
// across channel operations, which provide the happens-before edges.
type parRuntime struct {
	n       int     // worker (= group) count
	tileGrp []int32 // tile -> group

	groups []parGroup
	strand equeue // events with no tile owner (closures): coordinator-executed

	// active is the group currently granted a span, or -1 when the
	// coordinator holds the token (between spans, and while executing
	// strand events or narrow spans inline).
	active int

	// Span state, frozen at grant time. horizon is the earliest head among
	// all queues other than the granted group's; the worker must not
	// execute an event at or past it.
	horizonWhen, horizonSeq uint64
	horizonOk               bool

	// outbox stages events the active span schedules for other groups (and
	// the strand); the coordinator merges them after the span. outboxWhen/
	// Seq track the earliest staged event, which bounds the span exactly
	// like the horizon does.
	outbox                []staged
	outboxWhen, outboxSeq uint64
	outboxOk              bool

	// grantWidth is the minimum horizon-distance for granting a span to a
	// worker (0 = always grant).
	grantWidth uint64

	grantCh []chan grant
	doneCh  chan spanResult
	started bool

	strandExecuted uint64
	spans          uint64 // spans granted to workers (not inline)
}

// EnablePar switches the engine into sharded mode with the given worker
// count over a machine of `tiles` tiles. Tiles are partitioned into
// contiguous bands (tile t belongs to group t*workers/tiles). It must be
// called before any event is scheduled; results are bit-for-bit identical
// to the sequential engine for every worker count.
func (e *Engine) EnablePar(workers, tiles int) {
	if e.par != nil {
		panic("sim: EnablePar called twice")
	}
	if e.seq != 0 || e.q.pending() != 0 || e.now != 0 {
		panic("sim: EnablePar after events were scheduled")
	}
	if tiles < 1 {
		panic("sim: EnablePar with no tiles")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > tiles {
		workers = tiles
	}
	tileGrp := make([]int32, tiles)
	for t := range tileGrp {
		tileGrp[t] = int32(t * workers / tiles)
	}
	e.par = &parRuntime{
		n:          workers,
		tileGrp:    tileGrp,
		groups:     make([]parGroup, workers),
		active:     -1,
		grantWidth: defaultGrantWidth,
	}
}

// SetParGrantWidth sets the minimum span width (cycles between a group's
// next event and the span horizon) for handing the span to a worker
// goroutine; narrower spans execute inline on the coordinator. Zero grants
// every span. The choice affects only where events execute, never their
// order — results are identical for every width. No-op in sequential mode.
func (e *Engine) SetParGrantWidth(w uint64) {
	if e.par != nil {
		e.par.grantWidth = w
	}
}

// ParWorkers returns the sharded-mode worker count, or 0 in sequential mode.
func (e *Engine) ParWorkers() int {
	if e.par == nil {
		return 0
	}
	return e.par.n
}

// ParGroupOf returns the tile group owning the given tile (0 in sequential
// mode, where everything is one group).
func (e *Engine) ParGroupOf(tile int) int {
	if e.par == nil {
		return 0
	}
	return e.par.groupOfTileIndex(tile)
}

// ParEventCounts returns the per-group executed-event counts plus the
// global-strand count. The counts are attributed by event ownership, so
// they are identical regardless of grant width or worker placement. Nil in
// sequential mode.
func (e *Engine) ParEventCounts() (groups []uint64, strand uint64) {
	if e.par == nil {
		return nil, 0
	}
	groups = make([]uint64, e.par.n)
	for i := range e.par.groups {
		groups[i] = e.par.groups[i].executed
	}
	return groups, e.par.strandExecuted
}

// ParSpans returns the number of spans granted to worker goroutines (as
// opposed to executed inline on the coordinator). 0 in sequential mode.
func (e *Engine) ParSpans() uint64 {
	if e.par == nil {
		return 0
	}
	return e.par.spans
}

// lessKey orders two (when, seq) keys.
func lessKey(w1, s1, w2, s2 uint64) bool {
	return w1 < w2 || (w1 == w2 && s1 < s2)
}

// groupOf derives the owning group of an event: closures belong to the
// global strand (-1); typed events follow their handler's payload-dependent
// (EventOwner) or fixed (TileOwner) tile.
func (p *parRuntime) groupOf(ev *event) int {
	if ev.fn != nil {
		return -1
	}
	if eo, ok := ev.h.(EventOwner); ok {
		return p.groupOfTileIndex(eo.EventTile(ev.kind, ev.a, ev.p))
	}
	if to, ok := ev.h.(TileOwner); ok {
		return p.groupOfTileIndex(to.SimTile())
	}
	return -1
}

func (p *parRuntime) groupOfTileIndex(t int) int {
	if t < 0 || t >= len(p.tileGrp) {
		return -1
	}
	return int(p.tileGrp[t])
}

func (p *parRuntime) queueFor(g int) *equeue {
	if g < 0 {
		return &p.strand
	}
	return &p.groups[g].q
}

// schedule routes ev (when and seq already assigned by the engine) to its
// owner's queue. During a granted span, events for other groups are staged
// in the span's outbox instead of being inserted directly: the inactive
// queues stay frozen, and the coordinator merges the outbox — still in seq
// order — when the span ends.
func (p *parRuntime) schedule(e *Engine, ev event) {
	g := p.groupOf(&ev)
	if p.active >= 0 && g != p.active {
		if g >= 0 && ev.when <= e.now {
			// Cross-tile events travel over the NoC, whose minimum boundary
			// latency (noc.Network.Lookahead) is at least one cycle; a
			// same-cycle cross-group event would mean a model component
			// bypassed the interconnect.
			panic(fmt.Sprintf("sim: cross-group event at cycle %d not after now %d (NoC lookahead violated)", ev.when, e.now))
		}
		p.outbox = append(p.outbox, staged{ev: ev, grp: int32(g)})
		if !p.outboxOk || lessKey(ev.when, ev.seq, p.outboxWhen, p.outboxSeq) {
			p.outboxWhen, p.outboxSeq, p.outboxOk = ev.when, ev.seq, true
		}
		return
	}
	p.queueFor(g).push(e.now, ev)
}

// mergeOutbox folds the ended span's staged events into their destination
// queues. The outbox is in staging order, which is seq order, and every
// staged seq exceeds every seq already queued (seqs are assigned by the
// single active goroutine), so bucket FIFO order remains (when, seq) order
// after the merge — the argument DESIGN.md §11 spells out.
func (p *parRuntime) mergeOutbox(e *Engine) {
	for i := range p.outbox {
		s := &p.outbox[i]
		p.queueFor(int(s.grp)).push(e.now, s.ev)
		s.ev = event{} // drop references so the GC can reclaim payloads
	}
	p.outbox = p.outbox[:0]
	p.outboxOk = false
}

// reset returns the runtime to its just-constructed state in place. Safe
// only between runs: stop() has already shut the previous run's workers
// down (started is false outside Run), so no goroutine can observe the
// mutation. The grant/done channels are recreated by the next run's
// start(); clearing them here makes a reset runtime structurally identical
// to a fresh EnablePar one.
func (p *parRuntime) reset() {
	for i := range p.groups {
		p.groups[i].q.reset()
		p.groups[i].executed = 0
	}
	p.strand.reset()
	p.active = -1
	p.horizonWhen, p.horizonSeq, p.horizonOk = 0, 0, false
	for i := range p.outbox {
		p.outbox[i].ev = event{}
	}
	p.outbox = p.outbox[:0]
	p.outboxWhen, p.outboxSeq, p.outboxOk = 0, 0, false
	p.grantCh = nil
	p.doneCh = nil
	p.strandExecuted = 0
	p.spans = 0
}

// qhead identifies a queue head during the coordinator's frontier scan.
type qhead struct {
	g    int
	when uint64
	seq  uint64
	ok   bool
}

// globalMin scans every queue head and returns the globally earliest
// (best) and the earliest among the remaining queues (next). When best is
// granted a span, next is the span horizon.
func (p *parRuntime) globalMin(e *Engine) (best, next qhead) {
	if w, s, ok := p.strand.peek(e.now); ok {
		best = qhead{g: -1, when: w, seq: s, ok: true}
	}
	for i := range p.groups {
		w, s, ok := p.groups[i].q.peek(e.now)
		if !ok {
			continue
		}
		switch {
		case !best.ok || lessKey(w, s, best.when, best.seq):
			next = best
			best = qhead{g: i, when: w, seq: s, ok: true}
		case !next.ok || lessKey(w, s, next.when, next.seq):
			next = qhead{g: i, when: w, seq: s, ok: true}
		}
	}
	return best, next
}

// peekNext is the sharded engine's PeekNext. Inside a span it combines the
// group's own head with the frozen horizon and the span outbox — exactly
// the global pending minimum — so event fusion proves the same "no event
// can interleave" fact it proves on the sequential engine. Outside a span
// the coordinator scans all queues.
func (p *parRuntime) peekNext(e *Engine) (uint64, bool) {
	if p.active >= 0 {
		when, _, ok := p.groups[p.active].q.peek(e.now)
		if p.horizonOk && (!ok || p.horizonWhen < when) {
			when, ok = p.horizonWhen, true
		}
		if p.outboxOk && (!ok || p.outboxWhen < when) {
			when, ok = p.outboxWhen, true
		}
		return when, ok
	}
	best, _ := p.globalMin(e)
	return best.when, best.ok
}

// popGlobal removes the globally earliest event (coordinator context only;
// used by Engine.Step).
func (p *parRuntime) popGlobal(e *Engine) (event, bool) {
	best, _ := p.globalMin(e)
	if !best.ok {
		return event{}, false
	}
	ev, _ := p.queueFor(best.g).pop(e.now)
	p.countExecuted(best.g)
	return ev, true
}

func (p *parRuntime) countExecuted(g int) {
	if g < 0 {
		p.strandExecuted++
	} else {
		p.groups[g].executed++
	}
}

// pending counts queued events across all groups, the strand, and any
// staged outbox entries.
func (p *parRuntime) pending() int {
	n := p.strand.pending() + len(p.outbox)
	for i := range p.groups {
		n += p.groups[i].q.pending()
	}
	return n
}

// run is the sharded engine's main loop: the epoch coordinator. Each
// iteration finds the global (when, seq) frontier, then either executes the
// earliest event inline (strand events and narrow spans) or grants the
// owning group's worker a span up to the frozen horizon. The loop, the
// limit check, and the watchdog check trigger at exactly the same event
// boundaries as the sequential Run, so both engines fail identically too.
func (p *parRuntime) run(e *Engine, limit uint64) error {
	p.start(e)
	defer p.stop()
	for {
		best, next := p.globalMin(e)
		if !best.ok {
			return nil
		}
		if limit != 0 && best.when > limit {
			return e.limitErr()
		}
		if e.Watchdog != 0 && e.now-e.lastProgress > e.Watchdog {
			return e.watchdogErr()
		}
		if best.g < 0 || (next.ok && p.grantWidth != 0 && next.when-best.when < p.grantWidth) {
			// Inline: strand events always run on the coordinator, and a
			// narrow span costs more to hand off than to run here. Inline
			// execution inserts directly into every queue (the coordinator
			// is the merge point), so order is exact either way.
			if pr := e.probe; pr != nil && best.g < 0 {
				pr.StrandExec()
			}
			ev, _ := p.queueFor(best.g).pop(e.now)
			p.countExecuted(best.g)
			e.now = ev.when
			e.executed++
			e.execObserved(&ev)
			continue
		}
		p.horizonWhen, p.horizonSeq, p.horizonOk = next.when, next.seq, next.ok
		p.outboxOk = false
		p.active = best.g
		var spanBase uint64
		if pr := e.probe; pr != nil {
			spanBase = p.groups[best.g].executed
			width := ^uint64(0) // no later event anywhere: unbounded horizon
			if next.ok {
				width = next.when - best.when
			}
			pr.Grant(best.g, width)
		}
		p.grantCh[best.g] <- grant{limit: limit} //lockiller:par-ok span handoff to the group's worker
		res := <-p.doneCh                        //lockiller:par-ok span completion returns the token
		p.active = -1
		p.spans++
		if pr := e.probe; pr != nil {
			pr.SpanEnd(best.g, p.groups[best.g].executed-spanBase)
			pr.OutboxMerge(len(p.outbox))
		}
		p.mergeOutbox(e)
		if res.err != nil {
			return res.err
		}
	}
}

// runSpan executes the granted group's events while the group's next event
// strictly precedes — in (when, seq) order — both the frozen horizon and
// everything the span has staged for other groups. It runs on the worker
// goroutine, which holds the execution token for the duration.
func (p *parRuntime) runSpan(e *Engine, g int, limit uint64) error {
	grp := &p.groups[g]
	for {
		when, seq, ok := grp.q.peek(e.now)
		if !ok {
			return nil
		}
		if p.horizonOk && !lessKey(when, seq, p.horizonWhen, p.horizonSeq) {
			return nil
		}
		if p.outboxOk && !lessKey(when, seq, p.outboxWhen, p.outboxSeq) {
			return nil
		}
		if limit != 0 && when > limit {
			return e.limitErr()
		}
		if e.Watchdog != 0 && e.now-e.lastProgress > e.Watchdog {
			return e.watchdogErr()
		}
		ev, _ := grp.q.pop(e.now)
		e.now = ev.when
		e.executed++
		grp.executed++
		e.execObserved(&ev)
	}
}

// workerLoop is one group's worker goroutine: it waits for span grants and
// returns the token (plus any error) when the span ends. It exits when the
// grant channel closes at the end of a run.
func (p *parRuntime) workerLoop(e *Engine, g int) {
	for gr := range p.grantCh[g] { // workers block between spans (range receive; not a flagged construct)
		err := p.runSpan(e, g, gr.limit)
		p.doneCh <- spanResult{err: err} //lockiller:par-ok token returns to the coordinator
	}
}

// start spawns the worker goroutines (idempotent per run).
func (p *parRuntime) start(e *Engine) {
	if p.started {
		return
	}
	p.started = true
	p.doneCh = make(chan spanResult)
	p.grantCh = make([]chan grant, p.n)
	for g := range p.grantCh {
		p.grantCh[g] = make(chan grant)
		go p.workerLoop(e, g) //lockiller:par-ok one worker per tile group
	}
}

// stop shuts the workers down so a finished run leaks no goroutines.
func (p *parRuntime) stop() {
	if !p.started {
		return
	}
	for _, ch := range p.grantCh {
		close(ch) //lockiller:par-ok run ended; workers exit
	}
	p.started = false
}
