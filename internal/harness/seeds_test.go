package harness

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Stdev-1.0) > 1e-9 {
		t.Fatalf("stdev = %v, want 1", s.Stdev)
	}
	one := summarize([]float64{5})
	if one.Stdev != 0 || one.Mean != 5 {
		t.Fatalf("single-sample stats = %+v", one)
	}
	if summarize(nil).N != 0 {
		t.Fatal("empty summarize")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(10, 3)
	if len(s) != 3 || s[0] != 10 || s[2] != 12 {
		t.Fatalf("seeds = %v", s)
	}
}

func TestSpeedupSeedsSpread(t *testing.T) {
	sys := mustSystem("Baseline")
	st, err := SpeedupSeeds(sys, tinyProfile(), 2, TypicalCache(), Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || st.Mean <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Fatalf("inconsistent spread: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty render")
	}
}

func TestCommitRateSeeds(t *testing.T) {
	sys := mustSystem("LockillerTM")
	st, err := CommitRateSeeds(sys, tinyProfile(), 2, TypicalCache(), Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean <= 0 || st.Mean > 1 {
		t.Fatalf("commit rate mean = %v", st.Mean)
	}
	if _, err := SpeedupSeeds(sys, tinyProfile(), 2, TypicalCache(), nil); err == nil {
		t.Fatal("no seeds must error")
	}
}
