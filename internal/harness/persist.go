package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Result persistence: a Runner's memoized results can be saved to JSON and
// reloaded, so iterating on figure rendering (or resuming an interrupted
// -all sweep) does not re-run simulations. The key encodes
// (system, workload, threads, cache, seed), so stale caches are
// harmless — changed specs simply miss.

type persistFile struct {
	Version int                   `json:"version"`
	Seed    uint64                `json:"seed"`
	Results map[string]*stats.Run `json:"results"`
}

const persistVersion = 1

// Save writes the memoized results.
func (r *Runner) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(persistFile{Version: persistVersion, Seed: r.Seed, Results: r.results})
}

// LoadReport accounts one Load: how many records were merged and how many
// were rejected because their key failed ParseKey or its round-trip.
type LoadReport struct {
	Loaded, Rejected int
}

func (lr LoadReport) String() string {
	return fmt.Sprintf("loaded %d cached results (%d rejected)", lr.Loaded, lr.Rejected)
}

// Load merges previously saved results into the runner. Results saved
// under a different seed are rejected wholesale (they would silently mix
// workloads); individual records are rejected when their key does not
// parse back into a Spec that reproduces it — a stale or corrupted key
// must miss, not masquerade as a current result.
func (r *Runner) Load(rd io.Reader) (LoadReport, error) {
	var f persistFile
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return LoadReport{}, fmt.Errorf("harness: decoding results: %w", err)
	}
	if f.Version != persistVersion {
		return LoadReport{}, fmt.Errorf("harness: unsupported results version %d", f.Version)
	}
	if f.Seed != r.Seed {
		return LoadReport{}, fmt.Errorf("harness: cached results use seed %d, runner uses %d", f.Seed, r.Seed)
	}
	var rep LoadReport
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range f.Results {
		s, err := ParseKey(k)
		if err != nil || s.Key() != k || v == nil {
			rep.Rejected++
			continue
		}
		rep.Loaded++
		if _, ok := r.results[k]; !ok {
			r.results[k] = v
		}
	}
	return rep, nil
}

// Cached returns the number of memoized results.
func (r *Runner) Cached() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}
