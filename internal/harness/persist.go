package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Result persistence: a Runner's memoized results can be saved to JSON and
// reloaded, so iterating on figure rendering (or resuming an interrupted
// -all sweep) does not re-run simulations. The key encodes
// (system, workload, threads, cache, seed), so stale caches are
// harmless — changed specs simply miss.

type persistFile struct {
	Version int                   `json:"version"`
	Seed    uint64                `json:"seed"`
	Results map[string]*stats.Run `json:"results"`
}

const persistVersion = 1

// Save writes the memoized results.
func (r *Runner) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(persistFile{Version: persistVersion, Seed: r.Seed, Results: r.results})
}

// Load merges previously saved results into the runner. Results saved
// under a different seed are rejected (they would silently mix workloads).
func (r *Runner) Load(rd io.Reader) error {
	var f persistFile
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return fmt.Errorf("harness: decoding results: %w", err)
	}
	if f.Version != persistVersion {
		return fmt.Errorf("harness: unsupported results version %d", f.Version)
	}
	if f.Seed != r.Seed {
		return fmt.Errorf("harness: cached results use seed %d, runner uses %d", f.Seed, r.Seed)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range f.Results {
		if _, ok := r.results[k]; !ok {
			r.results[k] = v
		}
	}
	return nil
}

// Cached returns the number of memoized results.
func (r *Runner) Cached() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}
