package harness

import (
	"testing"

	"repro/internal/stamp"
)

// TestParseKeyRoundTrip generates specs across every key-affecting
// dimension and asserts ParseKey inverts Spec.Key exactly.
func TestParseKeyRoundTrip(t *testing.T) {
	base := Spec{System: mustSystem("LockillerTM"), Workload: stamp.Intruder(),
		Threads: 8, Cache: TypicalCache(), Seed: 42}
	variants := []func(*Spec){
		func(*Spec) {},
		func(s *Spec) { s.System = mustSystem("CGL"); s.Workload = stamp.VacationHigh() },
		func(s *Spec) { s.Cache = SmallCache(); s.Seed = 1 },
		func(s *Spec) { s.DisableFusion = true },
		func(s *Spec) { s.Par = 4 },
		func(s *Spec) { s.DisableFusion = true; s.Par = 2; s.Cores = 128 },
		func(s *Spec) { s.Cores = 64; s.Topo = "torus" },
		func(s *Spec) { s.Topo = "cmesh"; s.ClusterSize = 8 },
		func(s *Spec) { s.MeshW, s.MeshH = 8, 16 },
		func(s *Spec) {
			s.DisableFusion = true
			s.Par, s.Cores, s.Topo, s.MeshW, s.MeshH, s.ClusterSize = 2, 256, "mesh", 16, 16, 4
		},
	}
	for i, v := range variants {
		s := base
		v(&s)
		key := s.Key()
		parsed, err := ParseKey(key)
		if err != nil {
			t.Errorf("variant %d: ParseKey(%q): %v", i, key, err)
			continue
		}
		if got := parsed.Key(); got != key {
			t.Errorf("variant %d: round trip %q -> %q", i, key, got)
		}
	}
}

func TestParseKeyRejects(t *testing.T) {
	bad := []string{
		"",
		"CGL|intruder|2|typical",                  // too few parts
		"NoSuchSystem|intruder|2|typical|1",       // unknown system
		"CGL|nosuchworkload|2|typical|1",          // unknown workload
		"CGL|intruder|zero|typical|1",             // non-numeric threads
		"CGL|intruder|0|typical|1",                // non-positive threads
		"CGL|intruder|2|gigantic|1",               // unknown cache config
		"CGL|intruder|2|typical|minusone",         // bad seed
		"CGL|intruder|2|typical|1|bogus",          // unknown suffix
		"CGL|intruder|2|typical|1|par0",           // non-positive par
		"CGL|intruder|2|typical|1|topo",           // empty topo
		"CGL|intruder|2|typical|1|grid8",          // malformed grid
		"CGL|intruder|2|typical|1|cores-4",        // negative cores
		"CGL|intruder|2|typical|1|clx",            // non-numeric cluster
	}
	for _, key := range bad {
		if _, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey accepted %q", key)
		}
	}
	// Out-of-canonical-order suffixes parse (the loop is order-blind) but
	// fail the round-trip check Load applies.
	key := "CGL|intruder|2|typical|1|par2|nofuse"
	s, err := ParseKey(key)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", key, err)
	}
	if s.Key() == key {
		t.Fatalf("non-canonical key %q unexpectedly round-tripped", key)
	}
}
