package harness

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"repro/internal/stamp"
	"repro/internal/stats"
)

func parseCSV(t *testing.T, b []byte) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, b)
	}
	return rows
}

func TestFig1CSVAndChart(t *testing.T) {
	f := &Fig1{Workloads: []string{"a", "b"}, Speedup: []float64{1.5, 0.9}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 3 || rows[0][0] != "workload" || rows[1][1] != "1.5000" {
		t.Fatalf("rows = %v", rows)
	}
	buf.Reset()
	f.RenderChart(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("chart missing bars")
	}
}

func TestFigureCSVRoundTrips(t *testing.T) {
	r := NewRunner(5)
	wls := []stamp.Profile{tinyProfile()}
	threads := []int{2}

	f8, err := RunFig8(r, wls, threads)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 1+4 { // header + 4 systems x 1 thread count
		t.Fatalf("fig8 rows = %d", len(rows))
	}

	f10, err := RunFig10(r, wls)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.Bytes())
	if len(rows) != 1+3 || len(rows[0]) != 2+6+1 {
		t.Fatalf("fig10 shape = %dx%d", len(rows), len(rows[0]))
	}

	bf, err := RunBreakdown(r, "Fig. 11", []string{"Baseline", "LockillerTM"}, wls, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := bf.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.Bytes())
	// Shares must sum to ~1 per row.
	for _, row := range rows[1:] {
		sum := 0.0
		for _, cell := range row[3 : len(row)-1] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("breakdown row sums to %v: %v", sum, row)
		}
	}
	buf.Reset()
	bf.RenderChart(&buf)
	if !strings.Contains(buf.String(), "legend") {
		t.Fatal("breakdown chart missing legend")
	}
}

func TestExportRun(t *testing.T) {
	run := stats.NewRun("Baseline", "tiny", 2)
	run.ExecCycles = 1234
	var buf bytes.Buffer
	if err := ExportRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 2 || rows[1][3] != "1234" {
		t.Fatalf("rows = %v", rows)
	}
}
