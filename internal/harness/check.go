package harness

import (
	"fmt"
	"io"

	"repro/internal/htm"
	"repro/internal/stamp"
)

// Claim is one qualitative statement from the paper that the reproduction
// must uphold. Claims are checked on a reduced sweep so the whole suite
// runs in minutes; EXPERIMENTS.md records the full-sweep numbers.
type Claim struct {
	ID   string
	Text string
	// Check runs the measurement and returns an explanation on failure.
	Check func(r *Runner) (ok bool, detail string, err error)
}

// Claims returns the paper's checkable claims.
func Claims() []Claim {
	return []Claim{
		{
			ID:   "fig1-motivation",
			Text: "requester-win HTM loses to CGL on labyrinth at 2 threads (Fig. 1)",
			Check: func(r *Runner) (bool, string, error) {
				sp, err := r.Speedup(mustSystem("Baseline"), stamp.Labyrinth(), 2, TypicalCache())
				if err != nil {
					return false, "", err
				}
				return sp < 1.0, fmt.Sprintf("labyrinth baseline speedup = %.2fx", sp), nil
			},
		},
		{
			ID:   "fig7-lower-bound",
			Text: "LockillerTM >= CGL on every checked workload and thread count (Fig. 7)",
			Check: func(r *Runner) (bool, string, error) {
				worst, at := 1e18, ""
				for _, wl := range checkWorkloads() {
					for _, t := range []int{2, 8, 32} {
						sp, err := r.Speedup(mustSystem("LockillerTM"), wl, t, TypicalCache())
						if err != nil {
							return false, "", err
						}
						if sp < worst {
							worst, at = sp, fmt.Sprintf("%s@%dT", wl.Name, t)
						}
					}
				}
				return worst >= 0.99, fmt.Sprintf("minimum speedup %.2fx at %s", worst, at), nil
			},
		},
		{
			ID:   "fig7-beats-baseline",
			Text: "LockillerTM beats the requester-win baseline on contended workloads at scale (Fig. 7)",
			Check: func(r *Runner) (bool, string, error) {
				for _, wl := range []stamp.Profile{stamp.Intruder(), stamp.VacationHigh()} {
					base, err := r.Speedup(mustSystem("Baseline"), wl, 32, TypicalCache())
					if err != nil {
						return false, "", err
					}
					lk, err := r.Speedup(mustSystem("LockillerTM"), wl, 32, TypicalCache())
					if err != nil {
						return false, "", err
					}
					if lk <= base {
						return false, fmt.Sprintf("%s@32T: LockillerTM %.2fx <= Baseline %.2fx", wl.Name, lk, base), nil
					}
				}
				return true, "LockillerTM > Baseline on intruder and vacation+ at 32T", nil
			},
		},
		{
			ID:   "fig8-commit-rate",
			Text: "recovery + insts-based priority raises the commit rate (Fig. 8)",
			Check: func(r *Runner) (bool, string, error) {
				var base, rwi float64
				for _, wl := range checkWorkloads() {
					b, err := r.Get(Spec{System: mustSystem("Baseline"), Workload: wl, Threads: 32, Cache: TypicalCache()})
					if err != nil {
						return false, "", err
					}
					w, err := r.Get(Spec{System: mustSystem("LockillerTM-RWI"), Workload: wl, Threads: 32, Cache: TypicalCache()})
					if err != nil {
						return false, "", err
					}
					base += b.CommitRate()
					rwi += w.CommitRate()
				}
				return rwi > base, fmt.Sprintf("avg commit rate %.3f -> %.3f at 32T", base/3, rwi/3), nil
			},
		},
		{
			ID:   "fig10-mutex-eliminated",
			Text: "HTMLock eliminates mutex-caused aborts entirely (Fig. 10)",
			Check: func(r *Runner) (bool, string, error) {
				for _, wl := range checkWorkloads() {
					for _, sys := range []string{"LockillerTM-RWIL", "LockillerTM"} {
						run, err := r.Get(Spec{System: mustSystem(sys), Workload: wl, Threads: 2, Cache: TypicalCache()})
						if err != nil {
							return false, "", err
						}
						_, by := run.TotalAborts()
						if by[htm.CauseMutex] != 0 {
							return false, fmt.Sprintf("%s/%s has %d mutex aborts", sys, wl.Name, by[htm.CauseMutex]), nil
						}
					}
				}
				return true, "zero mutex aborts in all HTMLock systems", nil
			},
		},
		{
			ID:   "fig10-switching-capacity",
			Text: "switchingMode sharply reduces capacity aborts at 2 threads (Fig. 10)",
			Check: func(r *Runner) (bool, string, error) {
				wl := stamp.Labyrinth()
				rwil, err := r.Get(Spec{System: mustSystem("LockillerTM-RWIL"), Workload: wl, Threads: 2, Cache: TypicalCache()})
				if err != nil {
					return false, "", err
				}
				full, err := r.Get(Spec{System: mustSystem("LockillerTM"), Workload: wl, Threads: 2, Cache: TypicalCache()})
				if err != nil {
					return false, "", err
				}
				_, b1 := rwil.TotalAborts()
				_, b2 := full.TotalAborts()
				return b2[htm.CauseOverflow]*2 < b1[htm.CauseOverflow]+1,
					fmt.Sprintf("labyrinth of-aborts %d -> %d", b1[htm.CauseOverflow], b2[htm.CauseOverflow]), nil
			},
		},
		{
			ID:   "fig12-ordering",
			Text: "LockillerTM > LosaTM-SAFU > nothing special; full stack beats baseline on average (Fig. 12)",
			Check: func(r *Runner) (bool, string, error) {
				avg := func(name string) (float64, error) {
					var s float64
					for _, wl := range checkWorkloads() {
						for _, t := range []int{2, 8, 32} {
							sp, err := r.Speedup(mustSystem(name), wl, t, TypicalCache())
							if err != nil {
								return 0, err
							}
							s += sp
						}
					}
					return s / 9, nil
				}
				base, err := avg("Baseline")
				if err != nil {
					return false, "", err
				}
				losa, err := avg("LosaTM-SAFU")
				if err != nil {
					return false, "", err
				}
				lk, err := avg("LockillerTM")
				if err != nil {
					return false, "", err
				}
				return lk > losa && lk > base,
					fmt.Sprintf("avg: Baseline %.2fx, LosaTM %.2fx, LockillerTM %.2fx", base, losa, lk), nil
			},
		},
		{
			ID: "fig13-small-cache",
			Text: "in the 8KB-L1 config LockillerTM still beats both CGL and the " +
				"requester-win baseline on average (Fig. 13)",
			Check: func(r *Runner) (bool, string, error) {
				var lkSum, baseSum float64
				n := 0
				for _, wl := range checkWorkloads() {
					for _, t := range []int{2, 32} {
						b, err := r.Speedup(mustSystem("Baseline"), wl, t, SmallCache())
						if err != nil {
							return false, "", err
						}
						l, err := r.Speedup(mustSystem("LockillerTM"), wl, t, SmallCache())
						if err != nil {
							return false, "", err
						}
						baseSum += b
						lkSum += l
						n++
					}
				}
				lkAvg, baseAvg := lkSum/float64(n), baseSum/float64(n)
				return lkAvg > 1.0 && lkAvg > baseAvg,
					fmt.Sprintf("small-cache averages: Baseline %.2fx, LockillerTM %.2fx vs CGL", baseAvg, lkAvg), nil
			},
		},
	}
}

func checkWorkloads() []stamp.Profile {
	return []stamp.Profile{stamp.Intruder(), stamp.VacationHigh(), stamp.Labyrinth()}
}

// RunChecks evaluates every claim, rendering a report; it returns the
// number of failed claims.
func RunChecks(r *Runner, w io.Writer) (failed int, err error) {
	for _, c := range Claims() {
		ok, detail, err := c.Check(r)
		if err != nil {
			return failed + 1, fmt.Errorf("claim %s: %w", c.ID, err)
		}
		status := "PASS"
		if !ok {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-4s %-24s %s\n     %s\n", status, c.ID, c.Text, detail)
	}
	return failed, nil
}
