package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/coherence"
	"repro/internal/htm"
	"repro/internal/stamp"
	"repro/internal/stats"
)

// Figure is a regenerated table/figure from the paper's evaluation.
type Figure interface {
	Render(w io.Writer)
}

// abortCauses is the plotting order of Fig. 10.
var abortCauses = []htm.AbortCause{
	htm.CauseMC, htm.CauseLock, htm.CauseMutex,
	htm.CauseNonTx, htm.CauseOverflow, htm.CauseFault,
}

// breakdownOrder is the plotting order of Figs. 9/11.
var breakdownOrder = []stats.Category{
	stats.CatHTM, stats.CatAborted, stats.CatLock, stats.CatSwitchLock,
	stats.CatNonTx, stats.CatWaitLock, stats.CatRollback,
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// --- Fig. 1 ------------------------------------------------------------

// Fig1 is the motivation figure: requester-win best-effort HTM speedup
// over CGL at 2 threads per workload.
type Fig1 struct {
	Workloads []string
	Speedup   []float64
}

// RunFig1 regenerates Fig. 1.
func RunFig1(r *Runner) (*Fig1, error) {
	base := mustSystem("Baseline")
	f := &Fig1{}
	var specs []Spec
	for _, wl := range stamp.Workloads() {
		specs = append(specs,
			Spec{System: mustSystem("CGL"), Workload: wl, Threads: 2, Cache: TypicalCache()},
			Spec{System: base, Workload: wl, Threads: 2, Cache: TypicalCache()})
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, wl := range stamp.Workloads() {
		s, err := r.Speedup(base, wl, 2, TypicalCache())
		if err != nil {
			return nil, err
		}
		f.Workloads = append(f.Workloads, wl.Name)
		f.Speedup = append(f.Speedup, s)
	}
	return f, nil
}

func (f *Fig1) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1: speedup of requester-win best-effort HTM vs CGL, 2 threads")
	for i, wl := range f.Workloads {
		fmt.Fprintf(w, "  %-10s %6.2fx\n", wl, f.Speedup[i])
	}
	fmt.Fprintf(w, "  %-10s %6.2fx (geomean)\n", "average", geomean(f.Speedup))
}

// --- Fig. 7 ------------------------------------------------------------

// Fig7 is the headline result: per-workload speedup over CGL for every
// Table II system at five thread counts, typical cache.
type Fig7 struct {
	Systems   []string
	Workloads []string
	Threads   []int
	// Speedup[sys][wl][ti]
	Speedup map[string]map[string][]float64
}

// Fig7Systems are the systems plotted in Fig. 7 (every HTM row of
// Table II except the LosaTM comparison, which Fig. 12 covers).
func Fig7Systems() []SystemDef {
	var out []SystemDef
	for _, s := range Systems() {
		if s.Name == "CGL" || s.Name == "LosaTM-SAFU" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// RunFig7 regenerates Fig. 7. workloads/systems/threads may be narrowed
// (nil means the full paper sweep).
func RunFig7(r *Runner, systems []SystemDef, workloads []stamp.Profile, threads []int) (*Fig7, error) {
	if systems == nil {
		systems = Fig7Systems()
	}
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	if threads == nil {
		threads = ThreadCounts
	}
	f := &Fig7{Threads: threads, Speedup: make(map[string]map[string][]float64)}
	var specs []Spec
	for _, wl := range workloads {
		for _, t := range threads {
			specs = append(specs, Spec{System: mustSystem("CGL"), Workload: wl, Threads: t, Cache: TypicalCache()})
			for _, s := range systems {
				specs = append(specs, Spec{System: s, Workload: wl, Threads: t, Cache: TypicalCache()})
			}
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, s := range systems {
		f.Systems = append(f.Systems, s.Name)
		f.Speedup[s.Name] = make(map[string][]float64)
	}
	for _, wl := range workloads {
		f.Workloads = append(f.Workloads, wl.Name)
		for _, s := range systems {
			for _, t := range threads {
				sp, err := r.Speedup(s, wl, t, TypicalCache())
				if err != nil {
					return nil, err
				}
				f.Speedup[s.Name][wl.Name] = append(f.Speedup[s.Name][wl.Name], sp)
			}
		}
	}
	return f, nil
}

func (f *Fig7) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7: speedup vs CGL per workload/system/threads (typical cache)")
	fmt.Fprintf(w, "  %-10s %-18s", "workload", "system")
	for _, t := range f.Threads {
		fmt.Fprintf(w, " %5dT", t)
	}
	fmt.Fprintln(w)
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			fmt.Fprintf(w, "  %-10s %-18s", wl, s)
			for _, sp := range f.Speedup[s][wl] {
				fmt.Fprintf(w, " %5.2fx", sp)
			}
			fmt.Fprintln(w)
		}
	}
}

// MinSpeedup returns the worst speedup of a system across workloads at a
// thread count — the "performance lower bound" LockillerTM raises.
func (f *Fig7) MinSpeedup(system string, ti int) (string, float64) {
	worst, at := math.Inf(1), ""
	for _, wl := range f.Workloads {
		if sp := f.Speedup[system][wl][ti]; sp < worst {
			worst, at = sp, wl
		}
	}
	return at, worst
}

// --- Fig. 8 ------------------------------------------------------------

// Fig8 is the average transaction commit rate of the recovery-mechanism
// systems at five thread counts.
type Fig8 struct {
	Systems []string
	Threads []int
	// Rate[sys][ti] = mean commit rate over all workloads.
	Rate map[string][]float64
}

// RunFig8 regenerates Fig. 8.
func RunFig8(r *Runner, workloads []stamp.Profile, threads []int) (*Fig8, error) {
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	if threads == nil {
		threads = ThreadCounts
	}
	names := []string{"Baseline", "LockillerTM-RAI", "LockillerTM-RRI", "LockillerTM-RWI"}
	f := &Fig8{Systems: names, Threads: threads, Rate: make(map[string][]float64)}
	var specs []Spec
	for _, n := range names {
		for _, wl := range workloads {
			for _, t := range threads {
				specs = append(specs, Spec{System: mustSystem(n), Workload: wl, Threads: t, Cache: TypicalCache()})
			}
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, n := range names {
		for _, t := range threads {
			var rates []float64
			for _, wl := range workloads {
				run, err := r.Get(Spec{System: mustSystem(n), Workload: wl, Threads: t, Cache: TypicalCache()})
				if err != nil {
					return nil, err
				}
				rates = append(rates, run.CommitRate())
			}
			f.Rate[n] = append(f.Rate[n], mean(rates))
		}
	}
	return f, nil
}

func (f *Fig8) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: average transaction commit rate (recovery systems)")
	fmt.Fprintf(w, "  %-18s", "system")
	for _, t := range f.Threads {
		fmt.Fprintf(w, " %5dT", t)
	}
	fmt.Fprintln(w, "   rel. to Baseline")
	base := f.Rate["Baseline"]
	for _, s := range f.Systems {
		fmt.Fprintf(w, "  %-18s", s)
		for _, rt := range f.Rate[s] {
			fmt.Fprintf(w, " %5.3f ", rt)
		}
		fmt.Fprintf(w, "  %.2fx\n", mean(f.Rate[s])/mean(base))
	}
}

// --- Figs. 9 and 11 ----------------------------------------------------

// BreakdownFig is the execution-time breakdown + commit rate of selected
// systems per workload at a fixed thread count (Fig. 9 at 32 threads,
// Fig. 11 at 2 threads with the switchLock category populated).
type BreakdownFig struct {
	Title     string
	Systems   []string
	Workloads []string
	Threads   int
	// Share[sys][wl][cat] and Commit[sys][wl].
	Share  map[string]map[string][stats.NumCategories]float64
	Commit map[string]map[string]float64
}

// RunBreakdown regenerates Fig. 9 (threads=32, systems Baseline/RWI/RWIL)
// or Fig. 11 (threads=2, systems Baseline/RWIL/LockillerTM).
func RunBreakdown(r *Runner, title string, systems []string, workloads []stamp.Profile, threads int) (*BreakdownFig, error) {
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	f := &BreakdownFig{
		Title: title, Systems: systems, Threads: threads,
		Share:  make(map[string]map[string][stats.NumCategories]float64),
		Commit: make(map[string]map[string]float64),
	}
	var specs []Spec
	for _, n := range systems {
		for _, wl := range workloads {
			specs = append(specs, Spec{System: mustSystem(n), Workload: wl, Threads: threads, Cache: TypicalCache()})
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, n := range systems {
		f.Share[n] = make(map[string][stats.NumCategories]float64)
		f.Commit[n] = make(map[string]float64)
		for _, wl := range workloads {
			run, err := r.Get(Spec{System: mustSystem(n), Workload: wl, Threads: threads, Cache: TypicalCache()})
			if err != nil {
				return nil, err
			}
			f.Share[n][wl.Name] = run.Breakdown()
			f.Commit[n][wl.Name] = run.CommitRate()
		}
	}
	for _, wl := range workloads {
		f.Workloads = append(f.Workloads, wl.Name)
	}
	return f, nil
}

func (f *BreakdownFig) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: execution-time breakdown and commit rate, %d threads\n", f.Title, f.Threads)
	fmt.Fprintf(w, "  %-10s %-18s", "workload", "system")
	for _, c := range breakdownOrder {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w, "   commit")
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			fmt.Fprintf(w, "  %-10s %-18s", wl, s)
			share := f.Share[s][wl]
			for _, c := range breakdownOrder {
				fmt.Fprintf(w, " %9.1f%%", 100*share[c])
			}
			fmt.Fprintf(w, "   %.3f\n", f.Commit[s][wl])
		}
	}
}

// --- Fig. 10 -----------------------------------------------------------

// Fig10 is the abort-cause distribution at 2 threads.
type Fig10 struct {
	Systems   []string
	Workloads []string
	// Share[sys][wl][cause] — fraction of that run's aborts by cause;
	// AbortsPerAttempt[sys][wl] scales them by abort pressure.
	Share            map[string]map[string]map[htm.AbortCause]float64
	AbortsPerAttempt map[string]map[string]float64
}

// RunFig10 regenerates Fig. 10 (Baseline, RWIL, LockillerTM at 2 threads).
func RunFig10(r *Runner, workloads []stamp.Profile) (*Fig10, error) {
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	systems := []string{"Baseline", "LockillerTM-RWIL", "LockillerTM"}
	f := &Fig10{
		Systems:          systems,
		Share:            make(map[string]map[string]map[htm.AbortCause]float64),
		AbortsPerAttempt: make(map[string]map[string]float64),
	}
	var specs []Spec
	for _, n := range systems {
		for _, wl := range workloads {
			specs = append(specs, Spec{System: mustSystem(n), Workload: wl, Threads: 2, Cache: TypicalCache()})
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, n := range systems {
		f.Share[n] = make(map[string]map[htm.AbortCause]float64)
		f.AbortsPerAttempt[n] = make(map[string]float64)
		for _, wl := range workloads {
			run, err := r.Get(Spec{System: mustSystem(n), Workload: wl, Threads: 2, Cache: TypicalCache()})
			if err != nil {
				return nil, err
			}
			f.Share[n][wl.Name] = run.AbortShare()
			total, _ := run.TotalAborts()
			var attempts uint64
			for _, c := range run.Cores {
				attempts += c.Attempts
			}
			if attempts > 0 {
				f.AbortsPerAttempt[n][wl.Name] = float64(total) / float64(attempts)
			}
		}
	}
	for _, wl := range workloads {
		f.Workloads = append(f.Workloads, wl.Name)
	}
	return f, nil
}

func (f *Fig10) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 10: abort causes at 2 threads (share of aborts; abort/attempt rate)")
	fmt.Fprintf(w, "  %-10s %-18s", "workload", "system")
	for _, c := range abortCauses {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintln(w, "   ab/att")
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			fmt.Fprintf(w, "  %-10s %-18s", wl, s)
			for _, c := range abortCauses {
				fmt.Fprintf(w, " %8.1f%%", 100*f.Share[s][wl][c])
			}
			fmt.Fprintf(w, "   %.3f\n", f.AbortsPerAttempt[s][wl])
		}
	}
}

// --- Fig. 12 -----------------------------------------------------------

// Fig12 is the average speedup of each evaluated system (including
// LosaTM-SAFU) over CGL at five thread counts.
type Fig12 struct {
	Systems []string
	Threads []int
	// Avg[sys][ti] = mean speedup over workloads.
	Avg map[string][]float64
}

// RunFig12 regenerates Fig. 12.
func RunFig12(r *Runner, workloads []stamp.Profile, threads []int) (*Fig12, error) {
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	if threads == nil {
		threads = ThreadCounts
	}
	var systems []SystemDef
	for _, s := range Systems() {
		if s.Name != "CGL" {
			systems = append(systems, s)
		}
	}
	f := &Fig12{Threads: threads, Avg: make(map[string][]float64)}
	var specs []Spec
	for _, wl := range workloads {
		for _, t := range threads {
			specs = append(specs, Spec{System: mustSystem("CGL"), Workload: wl, Threads: t, Cache: TypicalCache()})
			for _, s := range systems {
				specs = append(specs, Spec{System: s, Workload: wl, Threads: t, Cache: TypicalCache()})
			}
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, s := range systems {
		f.Systems = append(f.Systems, s.Name)
		for _, t := range threads {
			var sps []float64
			for _, wl := range workloads {
				sp, err := r.Speedup(s, wl, t, TypicalCache())
				if err != nil {
					return nil, err
				}
				sps = append(sps, sp)
			}
			f.Avg[s.Name] = append(f.Avg[s.Name], mean(sps))
		}
	}
	return f, nil
}

// Headline returns the paper's two headline ratios: LockillerTM's average
// speedup over the requester-win baseline and over LosaTM-SAFU (the paper
// reports 1.86x and 1.57x at the typical cache size).
func (f *Fig12) Headline() (overBaseline, overLosa float64) {
	lk := mean(f.Avg["LockillerTM"])
	return lk / mean(f.Avg["Baseline"]), lk / mean(f.Avg["LosaTM-SAFU"])
}

func (f *Fig12) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 12: average speedup vs CGL per system")
	fmt.Fprintf(w, "  %-18s", "system")
	for _, t := range f.Threads {
		fmt.Fprintf(w, " %5dT", t)
	}
	fmt.Fprintln(w, "    mean")
	for _, s := range f.Systems {
		fmt.Fprintf(w, "  %-18s", s)
		for _, sp := range f.Avg[s] {
			fmt.Fprintf(w, " %5.2fx", sp)
		}
		fmt.Fprintf(w, "  %5.2fx\n", mean(f.Avg[s]))
	}
	ob, ol := f.Headline()
	fmt.Fprintf(w, "  LockillerTM over Baseline: %.2fx (paper: 1.86x)\n", ob)
	fmt.Fprintf(w, "  LockillerTM over LosaTM-SAFU: %.2fx (paper: 1.57x)\n", ol)
}

// --- Fig. 13 -----------------------------------------------------------

// Fig13 is the cache-size sensitivity analysis: average speedup of
// Baseline and LockillerTM over CGL in the small (8KB/1MB) and large
// (128KB/32MB) cache configurations.
type Fig13 struct {
	Caches  []string
	Systems []string
	Threads []int
	// Avg[cache][sys][ti]
	Avg map[string]map[string][]float64
	// MaxOverBaseline[cache] is the largest per-workload LockillerTM /
	// Baseline cycle ratio observed (paper: up to 7.79x in the small
	// config at 32 threads).
	MaxOverBaseline map[string]float64
}

// RunFig13 regenerates Fig. 13.
func RunFig13(r *Runner, workloads []stamp.Profile, threads []int) (*Fig13, error) {
	if workloads == nil {
		workloads = stamp.Workloads()
	}
	if threads == nil {
		threads = ThreadCounts
	}
	systems := []string{"Baseline", "LosaTM-SAFU", "LockillerTM"}
	caches := []CacheConfig{SmallCache(), LargeCache()}
	f := &Fig13{
		Systems: systems, Threads: threads,
		Avg:             make(map[string]map[string][]float64),
		MaxOverBaseline: make(map[string]float64),
	}
	var specs []Spec
	for _, cc := range caches {
		for _, wl := range workloads {
			for _, t := range threads {
				specs = append(specs, Spec{System: mustSystem("CGL"), Workload: wl, Threads: t, Cache: cc})
				for _, n := range systems {
					specs = append(specs, Spec{System: mustSystem(n), Workload: wl, Threads: t, Cache: cc})
				}
			}
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, cc := range caches {
		f.Caches = append(f.Caches, cc.Name)
		f.Avg[cc.Name] = make(map[string][]float64)
		for _, n := range systems {
			for _, t := range threads {
				var sps []float64
				for _, wl := range workloads {
					sp, err := r.Speedup(mustSystem(n), wl, t, cc)
					if err != nil {
						return nil, err
					}
					sps = append(sps, sp)
					if n == "LockillerTM" {
						bsp, err := r.Speedup(mustSystem("Baseline"), wl, t, cc)
						if err != nil {
							return nil, err
						}
						if ratio := sp / bsp; ratio > f.MaxOverBaseline[cc.Name] {
							f.MaxOverBaseline[cc.Name] = ratio
						}
					}
				}
				f.Avg[cc.Name][n] = append(f.Avg[cc.Name][n], mean(sps))
			}
		}
	}
	return f, nil
}

func (f *Fig13) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 13: average speedup vs CGL, small (8KB/1MB) and large (128KB/32MB) caches")
	for _, cc := range f.Caches {
		fmt.Fprintf(w, "  [%s]\n", cc)
		fmt.Fprintf(w, "    %-14s", "system")
		for _, t := range f.Threads {
			fmt.Fprintf(w, " %5dT", t)
		}
		fmt.Fprintln(w)
		for _, s := range f.Systems {
			fmt.Fprintf(w, "    %-14s", s)
			for _, sp := range f.Avg[cc][s] {
				fmt.Fprintf(w, " %5.2fx", sp)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "    max LockillerTM/Baseline ratio: %.2fx\n", f.MaxOverBaseline[cc])
	}
}

// --- Scaling sweep (DESIGN.md §13) -------------------------------------

// ScalingCores are the machine sizes of the scaling sweep.
var ScalingCores = []int{32, 64, 128, 256}

// ScalingSpec returns the spec for one scaling point: one thread per
// core, a near-square grid, and the two-level directory (clusters of 16)
// above 64 cores, where flat-directory fanout starts to serialize the
// home banks.
func ScalingSpec(sys SystemDef, wl stamp.Profile, cores int) Spec {
	s := Spec{System: sys, Workload: wl, Threads: cores, Cache: TypicalCache(), Cores: cores}
	if cores > 64 {
		s.ClusterSize = 16
	}
	return s
}

// FigScaling is the scaling sweep: speedup over same-size CGL for every
// Fig. 7 system at {32, 64, 128, 256} cores on one workload.
type FigScaling struct {
	Workload string
	Systems  []string
	Cores    []int
	// Speedup[sys][ci] = CGL cycles / system cycles at Cores[ci].
	Speedup map[string][]float64
}

// RunFigScaling regenerates the scaling sweep. A nil cores slice means
// ScalingCores.
func RunFigScaling(r *Runner, wl stamp.Profile, cores []int) (*FigScaling, error) {
	if cores == nil {
		cores = ScalingCores
	}
	systems := Fig7Systems()
	f := &FigScaling{Workload: wl.Name, Cores: cores, Speedup: map[string][]float64{}}
	var specs []Spec
	for _, n := range cores {
		specs = append(specs, ScalingSpec(mustSystem("CGL"), wl, n))
		for _, s := range systems {
			specs = append(specs, ScalingSpec(s, wl, n))
		}
	}
	if err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, s := range systems {
		f.Systems = append(f.Systems, s.Name)
		for _, n := range cores {
			cgl, err := r.Get(ScalingSpec(mustSystem("CGL"), wl, n))
			if err != nil {
				return nil, err
			}
			run, err := r.Get(ScalingSpec(s, wl, n))
			if err != nil {
				return nil, err
			}
			if run.ExecCycles == 0 {
				return nil, fmt.Errorf("harness: zero exec cycles for %s at %d cores", s.Name, n)
			}
			f.Speedup[s.Name] = append(f.Speedup[s.Name], float64(cgl.ExecCycles)/float64(run.ExecCycles))
		}
	}
	return f, nil
}

func (f *FigScaling) Render(w io.Writer) {
	fmt.Fprintf(w, "Scaling: speedup vs same-size CGL, %s, threads = cores (two-level directory above 64)\n", f.Workload)
	fmt.Fprintf(w, "  %-16s", "system")
	for _, n := range f.Cores {
		fmt.Fprintf(w, " %6dC", n)
	}
	fmt.Fprintln(w)
	for _, s := range f.Systems {
		fmt.Fprintf(w, "  %-16s", s)
		for _, sp := range f.Speedup[s] {
			fmt.Fprintf(w, " %6.2fx", sp)
		}
		fmt.Fprintln(w)
	}
}

// --- Tables ------------------------------------------------------------

// RenderTable1 prints the modeled system parameters (Table I), derived
// from the machine configuration rather than restated, so scaling
// overrides can never desynchronize the table from the simulated machine.
func RenderTable1(w io.Writer) {
	RenderTable1Params(w, coherence.DefaultParams())
}

// RenderTable1Params renders the Table I rows for an arbitrary machine
// shape (scaling runs pass Spec.MachineParams()).
func RenderTable1Params(w io.Writer, p coherence.Params) {
	fmt.Fprintln(w, "Table I: system model parameters")
	topo := "mesh"
	if p.Topo != "" {
		topo = p.Topo
	}
	topoRow := fmt.Sprintf("2-D %s (%dx%d), X-Y", topo, p.MeshW, p.MeshH)
	if topo == "cmesh" {
		conc := p.Conc
		if conc == 0 {
			conc = 1
		}
		topoRow = fmt.Sprintf("2-D cmesh (%dx%d routers, %d tiles each), X-Y", p.MeshW, p.MeshH, conc)
	}
	coherenceRow := "MESI, directory-based (blocking, dir-mediated)"
	if p.ClusterSize > 0 {
		coherenceRow = fmt.Sprintf("MESI, two-level directory (clusters of %d)", p.ClusterSize)
	}
	rows := [][2]string{
		{"Number of Cores", fmt.Sprintf("%d", p.Cores)},
		{"Core Detail", "In-order, single-issue, 1 IPC"},
		{"Cache Line Size", "64 bytes"},
		{"L1 I&D caches", fmt.Sprintf("Private, %dKB, %d-way, %d-cycle hit latency",
			p.L1Size/1024, p.L1Ways, p.L1Hit)},
		{"L2 cache", fmt.Sprintf("Shared, %dMB, %d-way, %d-cycle hit latency",
			p.LLCSize>>20, p.LLCWays, p.LLCHit)},
		{"Memory", fmt.Sprintf("%d-cycle latency", p.MemLatency)},
		{"Coherence protocol", coherenceRow},
		{"Topology and Routing", topoRow},
		{"Flit/message size", "16 bytes / 5 flits (data), 1 flit (control)"},
		{"Link latency/bandwidth", "1 cycle / 1 flit per cycle"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %s\n", r[0], r[1])
	}
}

// RenderTable2 prints the evaluated-systems matrix (Table II).
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table II: evaluated systems")
	for _, s := range Systems() {
		fmt.Fprintf(w, "  %-18s %s\n", s.Name, s.Desc)
	}
}

// SortedCauses returns the abort causes in plotting order (exported for
// external renderers).
func SortedCauses() []htm.AbortCause {
	out := make([]htm.AbortCause, len(abortCauses))
	copy(out, abortCauses)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
