package harness

import (
	"bytes"
	"testing"

	"repro/internal/stamp"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRunner(7)
	// A registry workload, not tinyProfile: Load validates every stored
	// key via ParseKey, which resolves workloads through stamp.ByName.
	spec := Spec{System: mustSystem("Baseline"), Workload: stamp.Kmeans(), Threads: 2, Cache: TypicalCache()}
	orig, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(7)
	rep, err := r2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Rejected != 0 {
		t.Fatalf("LoadReport = %+v, want 1 loaded, 0 rejected", rep)
	}
	if r2.Cached() != r.Cached() {
		t.Fatalf("cached %d vs %d", r2.Cached(), r.Cached())
	}
	got, err := r2.Get(spec) // must hit the cache, not re-simulate
	if err != nil {
		t.Fatal(err)
	}
	if got.ExecCycles != orig.ExecCycles {
		t.Fatalf("cycles %d vs %d", got.ExecCycles, orig.ExecCycles)
	}
	if got.CommitRate() != orig.CommitRate() {
		t.Fatal("derived stats diverged after reload")
	}
	bd1, bd2 := orig.Breakdown(), got.Breakdown()
	if bd1 != bd2 {
		t.Fatalf("breakdowns diverged: %v vs %v", bd1, bd2)
	}
}

func TestLoadRejectsWrongSeed(t *testing.T) {
	r := NewRunner(7)
	if _, err := r.Get(Spec{System: mustSystem("CGL"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(8)
	if _, err := r2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong seed must be rejected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	r := NewRunner(1)
	if _, err := r.Load(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := r.Load(bytes.NewReader([]byte(`{"version":9}`))); err == nil {
		t.Fatal("wrong version must be rejected")
	}
}

// TestLoadRejectsBadKeys pins the per-record validation: records whose keys
// fail ParseKey (unknown system/workload, malformed or out-of-order
// suffixes) are counted rejected, never merged, while well-formed siblings
// in the same file still load.
func TestLoadRejectsBadKeys(t *testing.T) {
	r := NewRunner(1)
	goodKey := Spec{System: mustSystem("CGL"), Workload: stamp.Intruder(),
		Threads: 2, Cache: TypicalCache(), Seed: 1}.Key()
	blob := `{"version":1,"seed":1,"results":{` +
		`"` + goodKey + `":{},` +
		`"NoSuchSystem|intruder|2|typical|1":{},` +
		`"CGL|tiny|2|typical|1":{},` +
		`"CGL|intruder|2|typical|1|par2|nofuse":{},` +
		`"CGL|intruder|0|typical|1":{}}}`
	rep, err := r.Load(bytes.NewReader([]byte(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Rejected != 4 {
		t.Fatalf("LoadReport = %+v, want 1 loaded, 4 rejected", rep)
	}
	if r.Cached() != 1 {
		t.Fatalf("Cached = %d, want 1", r.Cached())
	}
}
