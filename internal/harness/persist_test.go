package harness

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRunner(7)
	spec := Spec{System: mustSystem("Baseline"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}
	orig, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(7)
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r2.Cached() != r.Cached() {
		t.Fatalf("cached %d vs %d", r2.Cached(), r.Cached())
	}
	got, err := r2.Get(spec) // must hit the cache, not re-simulate
	if err != nil {
		t.Fatal(err)
	}
	if got.ExecCycles != orig.ExecCycles {
		t.Fatalf("cycles %d vs %d", got.ExecCycles, orig.ExecCycles)
	}
	if got.CommitRate() != orig.CommitRate() {
		t.Fatal("derived stats diverged after reload")
	}
	bd1, bd2 := orig.Breakdown(), got.Breakdown()
	if bd1 != bd2 {
		t.Fatalf("breakdowns diverged: %v vs %v", bd1, bd2)
	}
}

func TestLoadRejectsWrongSeed(t *testing.T) {
	r := NewRunner(7)
	if _, err := r.Get(Spec{System: mustSystem("CGL"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(8)
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong seed must be rejected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	r := NewRunner(1)
	if err := r.Load(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := r.Load(bytes.NewReader([]byte(`{"version":9}`))); err == nil {
		t.Fatal("wrong version must be rejected")
	}
}
