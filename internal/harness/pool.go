package harness

import (
	"sync"

	"repro/internal/cpu"
)

// machinePool keeps a bounded set of constructed machines, keyed by shape
// (Spec.poolKey), so the runner's reuse path can Reset one in place instead
// of paying construction for every sweep point. The pool is deliberately
// small: a sorted sweep revisits the same handful of shapes back to back
// (one per thread count within a system block), so a short LRU list covers
// the working set while old systems' machines fall off the end.
type machinePool struct {
	mu   sync.Mutex
	free []pooledMachine // released order: oldest first, newest last
}

type pooledMachine struct {
	key string
	m   *cpu.Machine
}

// poolCap bounds the total machines held across all shapes. Concurrent
// workers on the same shape build extras on demand; extras released beyond
// the cap push the oldest entry out to the garbage collector.
const poolCap = 8

// acquire takes the most recently released machine of the given shape, or
// nil if the pool holds none.
func (p *machinePool) acquire(key string) *cpu.Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if p.free[i].key == key {
			m := p.free[i].m
			p.free = append(p.free[:i], p.free[i+1:]...)
			return m
		}
	}
	return nil
}

// release returns a machine to the pool after a clean run, evicting the
// least recently released entry if the pool is full.
func (p *machinePool) release(key string, m *cpu.Machine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= poolCap {
		copy(p.free, p.free[1:])
		p.free = p.free[:len(p.free)-1]
	}
	p.free = append(p.free, pooledMachine{key: key, m: m})
}
