package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// TestObsProbePreservesGoldenCycles runs golden-matrix cells with the
// self-profiler probe attached — sequential and tile-parallel — and asserts
// the simulated timing is bit-for-bit what the plain run produces. The
// probe reads the host clock on every dispatch; none of that may reach
// model state.
func TestObsProbePreservesGoldenCycles(t *testing.T) {
	for _, cell := range []goldenKey{
		{"LockillerTM", "intruder", 2},
		{"Baseline", "kmeans", 4},
	} {
		for _, par := range []int{0, 4} {
			cell, par := cell, par
			t.Run(fmt.Sprintf("%s/%s/par=%d", cell.System, cell.Workload, par), func(t *testing.T) {
				t.Parallel()
				p := obs.NewProfiler()
				run, err := ExecuteWith(Spec{
					System: mustSystem(cell.System), Workload: mustWorkload(cell.Workload),
					Threads: cell.Threads, Cache: TypicalCache(), Seed: 1, Par: par,
				}, ExecOptions{Probe: p})
				if err != nil {
					t.Fatal(err)
				}
				want := goldenCycles[cell]
				if run.ExecCycles != want {
					t.Errorf("ExecCycles with probe = %d, want %d (probe perturbed timing)",
						run.ExecCycles, want)
				}
				if p.Events() == 0 {
					t.Error("profiler observed no events")
				}
				if p.Events() != run.EventsExecuted {
					t.Errorf("profiler saw %d events, engine executed %d", p.Events(), run.EventsExecuted)
				}
				if par > 0 && p.Grants() == 0 {
					t.Error("tile-parallel run granted no spans to the profiler")
				}
				if par == 0 && p.Grants() != 0 {
					t.Errorf("sequential run reported %d grants", p.Grants())
				}
			})
		}
	}
}

// recSink records progress events. The runner serializes Event calls, so no
// lock is needed.
type recSink struct {
	evs []obs.ProgressEvent
}

func (s *recSink) Event(e obs.ProgressEvent) { s.evs = append(s.evs, e) }

// stubSpecs builds n distinct specs that a stubbed exec can satisfy.
func stubSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{
			System: mustSystem("Baseline"), Workload: mustWorkload("intruder"),
			Threads: i + 1, Cache: TypicalCache(),
		}
	}
	return specs
}

// TestRunAllProgressAccounting checks the sweep bookkeeping under both a
// serial and a parallel worker pool: every spec produces exactly one event,
// done-counts are an exact 1..N sequence, totals include cached specs, and
// a re-run reports everything as cache hits.
func TestRunAllProgressAccounting(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := NewRunner(1)
			r.Workers = workers
			r.exec = func(s Spec) (*stats.Run, error) {
				return &stats.Run{ExecCycles: uint64(s.Threads)}, nil
			}
			sink := &recSink{}
			r.Progress = sink
			specs := stubSpecs(6)

			if err := r.RunAll(specs); err != nil {
				t.Fatal(err)
			}
			checkEvents := func(evs []obs.ProgressEvent, wantCached bool) {
				t.Helper()
				if len(evs) != len(specs) {
					t.Fatalf("got %d progress events, want %d", len(evs), len(specs))
				}
				keys := make(map[string]bool)
				for i, e := range evs {
					if e.Done != i+1 {
						t.Errorf("event %d: Done = %d, want %d (monotone)", i, e.Done, i+1)
					}
					if e.Total != len(specs) {
						t.Errorf("event %d: Total = %d, want %d", i, e.Total, len(specs))
					}
					if e.Key == "" || keys[e.Key] {
						t.Errorf("event %d: key %q empty or duplicated", i, e.Key)
					}
					keys[e.Key] = true
					if e.Err != "" {
						t.Errorf("event %d: unexpected error %q", i, e.Err)
					}
					if e.CacheHit != wantCached {
						t.Errorf("event %d: CacheHit = %v, want %v", i, e.CacheHit, wantCached)
					}
				}
			}
			checkEvents(sink.evs, false)

			// The same sweep again: everything is memoized now, and the
			// totals must still cover the whole matrix.
			sink.evs = nil
			if err := r.RunAll(specs); err != nil {
				t.Fatal(err)
			}
			checkEvents(sink.evs, true)
		})
	}
}

// TestRunAllErrorPathLedger checks that failing specs still produce ledger
// records (with the error field set) and progress events, and that the
// errors.Join aggregate is returned as before.
func TestRunAllErrorPathLedger(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 4
	r.Ledger = &obs.Ledger{}
	r.exec = func(s Spec) (*stats.Run, error) {
		if s.Threads%2 == 0 {
			return nil, errors.New("boom")
		}
		return &stats.Run{ExecCycles: uint64(s.Threads)}, nil
	}
	sink := &recSink{}
	r.Progress = sink
	specs := stubSpecs(6)

	err := r.RunAll(specs)
	if err == nil {
		t.Fatal("RunAll did not surface the failures")
	}
	if got := strings.Count(err.Error(), "boom"); got != 3 {
		t.Errorf("joined error mentions %d failures, want 3: %v", got, err)
	}
	if r.Ledger.Len() != len(specs) {
		t.Fatalf("ledger has %d records, want %d (failures must be recorded too)", r.Ledger.Len(), len(specs))
	}
	var buf bytes.Buffer
	if _, err := r.Ledger.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if n, err := obs.ValidateLedger(bytes.NewReader(data)); err != nil || n != len(specs) {
		t.Fatalf("ledger validation: n=%d err=%v", n, err)
	}
	if got := bytes.Count(data, []byte(`"error":`)); got != 3 {
		t.Errorf("ledger has %d error records, want 3\n%s", got, data)
	}
	failedEvents := 0
	for _, e := range sink.evs {
		if e.Err != "" {
			failedEvents++
		}
	}
	if failedEvents != 3 {
		t.Errorf("progress stream has %d failed events, want 3", failedEvents)
	}
}

// TestRunAllCacheHitLedger checks that a resumed sweep writes cache-hit
// records for memoized specs, so the ledger covers the whole matrix.
func TestRunAllCacheHitLedger(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 2
	r.exec = func(s Spec) (*stats.Run, error) {
		return &stats.Run{ExecCycles: uint64(s.Threads)}, nil
	}
	specs := stubSpecs(4)
	if err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	// Attach the ledger only for the resumed sweep: all four records must
	// be cache hits.
	r.Ledger = &obs.Ledger{}
	if err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if r.Ledger.Len() != len(specs) {
		t.Fatalf("resumed sweep ledger has %d records, want %d", r.Ledger.Len(), len(specs))
	}
	var buf bytes.Buffer
	if _, err := r.Ledger.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte(`"cache_hit":true`)); got != len(specs) {
		t.Errorf("ledger has %d cache-hit records, want %d\n%s", got, len(specs), buf.String())
	}
}

// TestRedactedLedgerByteIdentical runs the same sweep on two fresh runners
// and asserts their redacted ledgers are byte-identical: with the
// host-tagged fields zeroed, a ledger is a pure function of the spec set
// and seed.
func TestRedactedLedgerByteIdentical(t *testing.T) {
	sweep := func() []byte {
		t.Helper()
		r := NewRunner(1)
		r.Workers = 4
		r.Ledger = &obs.Ledger{Redact: true}
		r.exec = func(s Spec) (*stats.Run, error) {
			return &stats.Run{ExecCycles: uint64(s.Threads), EventsExecuted: 100, FusedRuns: 7}, nil
		}
		if err := r.RunAll(stubSpecs(5)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := r.Ledger.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := sweep(), sweep()
	if !bytes.Equal(a, b) {
		t.Errorf("redacted ledgers differ across two same-seed sweeps:\n%s\n---\n%s", a, b)
	}
	if bytes.Contains(a, []byte(`"wall_ns":`)) && !bytes.Contains(a, []byte(`"wall_ns":0`)) {
		t.Error("redacted ledger leaked a nonzero wall time")
	}
	if n, err := obs.ValidateLedger(bytes.NewReader(a)); err != nil || n != 5 {
		t.Fatalf("ledger validation: n=%d err=%v", n, err)
	}
}
