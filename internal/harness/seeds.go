package harness

import (
	"fmt"
	"math"

	"repro/internal/stamp"
)

// SeedStats summarizes a measurement repeated over several seeds. The
// simulator is deterministic per seed; seed-to-seed spread reflects
// workload randomness (address streams, backoff draws), the analogue of
// run-to-run variance on real hardware.
type SeedStats struct {
	N                     int
	Mean, Stdev, Min, Max float64
}

func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f ± %.3f (min %.3f, max %.3f, n=%d)", s.Mean, s.Stdev, s.Min, s.Max, s.N)
}

func summarize(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return SeedStats{}
	}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stdev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// SpeedupSeeds measures the system's speedup over CGL across the given
// seeds (workload and CGL baseline re-generated per seed) and returns the
// spread.
func SpeedupSeeds(sys SystemDef, wl stamp.Profile, threads int, cache CacheConfig, seeds []uint64) (SeedStats, error) {
	if len(seeds) == 0 {
		return SeedStats{}, fmt.Errorf("harness: no seeds given")
	}
	var sps []float64
	for _, seed := range seeds {
		cgl, err := Execute(Spec{System: mustSystem("CGL"), Workload: wl, Threads: threads, Cache: cache, Seed: seed})
		if err != nil {
			return SeedStats{}, err
		}
		run, err := Execute(Spec{System: sys, Workload: wl, Threads: threads, Cache: cache, Seed: seed})
		if err != nil {
			return SeedStats{}, err
		}
		sps = append(sps, float64(cgl.ExecCycles)/float64(run.ExecCycles))
	}
	return summarize(sps), nil
}

// CommitRateSeeds measures the commit-rate spread across seeds.
func CommitRateSeeds(sys SystemDef, wl stamp.Profile, threads int, cache CacheConfig, seeds []uint64) (SeedStats, error) {
	if len(seeds) == 0 {
		return SeedStats{}, fmt.Errorf("harness: no seeds given")
	}
	var rates []float64
	for _, seed := range seeds {
		run, err := Execute(Spec{System: sys, Workload: wl, Threads: threads, Cache: cache, Seed: seed})
		if err != nil {
			return SeedStats{}, err
		}
		rates = append(rates, run.CommitRate())
	}
	return summarize(rates), nil
}

// Seeds returns n consecutive seeds starting at base, a convenience for
// callers sweeping variance.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
