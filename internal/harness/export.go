package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/plot"
	"repro/internal/stats"
)

// CSVExporter is implemented by figures that can emit machine-readable
// rows for external plotting.
type CSVExporter interface {
	WriteCSV(w io.Writer) error
}

// ChartRenderer is implemented by figures that can render ASCII charts.
type ChartRenderer interface {
	RenderChart(w io.Writer)
}

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// --- Fig1 ---------------------------------------------------------------

func (f *Fig1) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(f.Workloads))
	for i, wl := range f.Workloads {
		rows = append(rows, []string{wl, f2s(f.Speedup[i])})
	}
	return writeCSV(w, []string{"workload", "speedup_vs_cgl"}, rows)
}

func (f *Fig1) RenderChart(w io.Writer) {
	plot.Bars(w, "Fig. 1: requester-win HTM speedup vs CGL (2 threads)",
		f.Workloads, f.Speedup, "x", 1.0)
}

// --- Fig7 ---------------------------------------------------------------

func (f *Fig7) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			for ti, t := range f.Threads {
				rows = append(rows, []string{wl, s, strconv.Itoa(t), f2s(f.Speedup[s][wl][ti])})
			}
		}
	}
	return writeCSV(w, []string{"workload", "system", "threads", "speedup_vs_cgl"}, rows)
}

func (f *Fig7) RenderChart(w io.Writer) {
	cols := make([]string, len(f.Threads))
	for i, t := range f.Threads {
		cols[i] = fmt.Sprintf("%dT", t)
	}
	for _, wl := range f.Workloads {
		rows := make([]string, 0, len(f.Systems))
		data := make([][]float64, 0, len(f.Systems))
		for _, s := range f.Systems {
			rows = append(rows, s)
			data = append(data, f.Speedup[s][wl])
		}
		plot.Series(w, fmt.Sprintf("Fig. 7 [%s]: speedup vs CGL", wl), rows, cols, data, "x")
	}
}

// --- Fig8 ---------------------------------------------------------------

func (f *Fig8) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, s := range f.Systems {
		for ti, t := range f.Threads {
			rows = append(rows, []string{s, strconv.Itoa(t), f2s(f.Rate[s][ti])})
		}
	}
	return writeCSV(w, []string{"system", "threads", "avg_commit_rate"}, rows)
}

func (f *Fig8) RenderChart(w io.Writer) {
	cols := make([]string, len(f.Threads))
	for i, t := range f.Threads {
		cols[i] = fmt.Sprintf("%dT", t)
	}
	data := make([][]float64, len(f.Systems))
	for i, s := range f.Systems {
		data[i] = f.Rate[s]
	}
	plot.Series(w, "Fig. 8: average commit rate", f.Systems, cols, data, "")
}

// --- BreakdownFig (Figs 9, 11) -------------------------------------------

func (f *BreakdownFig) WriteCSV(w io.Writer) error {
	header := []string{"workload", "system", "threads"}
	for _, c := range breakdownOrder {
		header = append(header, c.String())
	}
	header = append(header, "commit_rate")
	var rows [][]string
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			row := []string{wl, s, strconv.Itoa(f.Threads)}
			share := f.Share[s][wl]
			for _, c := range breakdownOrder {
				row = append(row, f2s(share[c]))
			}
			row = append(row, f2s(f.Commit[s][wl]))
			rows = append(rows, row)
		}
	}
	return writeCSV(w, header, rows)
}

func (f *BreakdownFig) RenderChart(w io.Writer) {
	names := make([]string, len(breakdownOrder))
	for i, c := range breakdownOrder {
		names[i] = c.String()
	}
	var labels []string
	var parts [][]float64
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			labels = append(labels, wl+"/"+s)
			share := f.Share[s][wl]
			row := make([]float64, len(breakdownOrder))
			for i, c := range breakdownOrder {
				row[i] = share[c]
			}
			parts = append(parts, row)
		}
	}
	plot.Stacked(w, fmt.Sprintf("%s: execution-time breakdown (%d threads)", f.Title, f.Threads),
		labels, names, parts)
}

// --- Fig10 ---------------------------------------------------------------

func (f *Fig10) WriteCSV(w io.Writer) error {
	header := []string{"workload", "system"}
	for _, c := range abortCauses {
		header = append(header, c.String())
	}
	header = append(header, "aborts_per_attempt")
	var rows [][]string
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			row := []string{wl, s}
			for _, c := range abortCauses {
				row = append(row, f2s(f.Share[s][wl][c]))
			}
			row = append(row, f2s(f.AbortsPerAttempt[s][wl]))
			rows = append(rows, row)
		}
	}
	return writeCSV(w, header, rows)
}

func (f *Fig10) RenderChart(w io.Writer) {
	names := make([]string, len(abortCauses))
	for i, c := range abortCauses {
		names[i] = c.String()
	}
	var labels []string
	var parts [][]float64
	for _, wl := range f.Workloads {
		for _, s := range f.Systems {
			labels = append(labels, wl+"/"+s)
			row := make([]float64, len(abortCauses))
			for i, c := range abortCauses {
				row[i] = f.Share[s][wl][c]
			}
			parts = append(parts, row)
		}
	}
	plot.Stacked(w, "Fig. 10: abort causes (2 threads)", labels, names, parts)
}

// --- Fig12 ---------------------------------------------------------------

func (f *Fig12) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, s := range f.Systems {
		for ti, t := range f.Threads {
			rows = append(rows, []string{s, strconv.Itoa(t), f2s(f.Avg[s][ti])})
		}
	}
	return writeCSV(w, []string{"system", "threads", "avg_speedup_vs_cgl"}, rows)
}

func (f *Fig12) RenderChart(w io.Writer) {
	cols := make([]string, len(f.Threads))
	for i, t := range f.Threads {
		cols[i] = fmt.Sprintf("%dT", t)
	}
	data := make([][]float64, len(f.Systems))
	for i, s := range f.Systems {
		data[i] = f.Avg[s]
	}
	plot.Series(w, "Fig. 12: average speedup vs CGL", f.Systems, cols, data, "x")
}

// --- Fig13 ---------------------------------------------------------------

func (f *Fig13) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, cc := range f.Caches {
		for _, s := range f.Systems {
			for ti, t := range f.Threads {
				rows = append(rows, []string{cc, s, strconv.Itoa(t), f2s(f.Avg[cc][s][ti])})
			}
		}
	}
	return writeCSV(w, []string{"cache", "system", "threads", "avg_speedup_vs_cgl"}, rows)
}

func (f *Fig13) RenderChart(w io.Writer) {
	cols := make([]string, len(f.Threads))
	for i, t := range f.Threads {
		cols[i] = fmt.Sprintf("%dT", t)
	}
	for _, cc := range f.Caches {
		data := make([][]float64, len(f.Systems))
		for i, s := range f.Systems {
			data[i] = f.Avg[cc][s]
		}
		plot.Series(w, fmt.Sprintf("Fig. 13 [%s cache]: average speedup vs CGL", cc),
			f.Systems, cols, data, "x")
	}
}

// ExportRun writes one run's summary as CSV rows (used by -csv on
// lockillersim-style outputs and by tests).
func ExportRun(w io.Writer, r *stats.Run) error {
	header := []string{"workload", "system", "threads", "cycles", "commit_rate"}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		header = append(header, "share_"+c.String())
	}
	bd := r.Breakdown()
	row := []string{r.Workload, r.System, strconv.Itoa(r.Threads),
		strconv.FormatUint(r.ExecCycles, 10), f2s(r.CommitRate())}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		row = append(row, f2s(bd[c]))
	}
	return writeCSV(w, header, [][]string{row})
}
