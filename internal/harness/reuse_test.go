package harness

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stamp"
)

// goldenSpecs returns the 16-point golden matrix as runner specs.
func goldenSpecs() []Spec {
	var specs []Spec
	for _, sysName := range []string{"CGL", "Baseline", "LockillerTM-RWI", "LockillerTM"} {
		for _, wl := range goldenWorkloads() {
			for _, th := range []int{2, 4} {
				specs = append(specs, Spec{
					System: mustSystem(sysName), Workload: wl,
					Threads: th, Cache: TypicalCache(), Seed: 1,
				})
			}
		}
	}
	return specs
}

// checkGolden asserts every matrix cell the runner holds matches the pinned
// ExecCycles values.
func checkGolden(t *testing.T, r *Runner) {
	t.Helper()
	for _, s := range goldenSpecs() {
		run, err := r.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenCycles[goldenKey{s.System.Name, s.Workload.Name, s.Threads}]
		if run.ExecCycles != want {
			t.Errorf("%s: ExecCycles = %d, want %d (machine reuse changed simulated timing)",
				s.Key(), run.ExecCycles, want)
		}
	}
}

// TestGoldenCycleCountsReuse pins the reuse bit-identity contract on the
// golden 16-point matrix: a Reuse runner — whose pool Resets each machine
// shape for the second workload instead of rebuilding — must reproduce
// exactly the cycle counts TestGoldenCycleCounts pins for fresh builds.
// Workers=1 serializes the sweep through one pool, so every shape's second
// spec is guaranteed to run on a reset machine.
func TestGoldenCycleCountsReuse(t *testing.T) {
	for _, reuse := range []bool{true, false} {
		reuse := reuse
		t.Run(fmt.Sprintf("reuse=%v", reuse), func(t *testing.T) {
			t.Parallel()
			r := NewRunner(1)
			r.Workers = 1
			r.Reuse = reuse
			if err := r.RunAll(goldenSpecs()); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, r)
		})
	}
}

// TestGoldenCycleCountsReusePar repeats the reuse golden matrix on the
// sharded tile-parallel engine for every evaluated worker count. The par
// engine is bit-identical to the sequential oracle, so the pinned values
// hold unchanged; what this adds is reset-then-run coverage of the par
// runtime's own state (spans, outboxes, coordinator counters).
func TestGoldenCycleCountsReusePar(t *testing.T) {
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			t.Parallel()
			r := NewRunner(1)
			r.Workers = 2
			r.Par = par
			if err := r.RunAll(goldenSpecs()); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, r)
		})
	}
}

// TestReuseDifferentialRandom drives randomized specs through a Reuse
// runner and a fresh build and requires deep equality of the full stats —
// the randomized half of the bit-identity contract, also run under -race
// by the nightly reuse-determinism job. Each round runs two workloads of
// one shape back to back on one pool (Workers=1), so the second result
// always comes from a reset machine.
func TestReuseDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	systems := Systems()
	workloads := stamp.Workloads()
	caches := []CacheConfig{TypicalCache(), SmallCache()}
	for round := 0; round < 4; round++ {
		shape := Spec{
			System:  systems[rng.Intn(len(systems))],
			Threads: []int{2, 4}[rng.Intn(2)],
			Cache:   caches[rng.Intn(len(caches))],
			Par:     []int{0, 2}[rng.Intn(2)],
		}
		wlA := workloads[rng.Intn(len(workloads))]
		wlB := workloads[rng.Intn(len(workloads))]
		seed := uint64(rng.Intn(1000) + 1)
		t.Run(fmt.Sprintf("%s|%d|%s|par%d|%s->%s", shape.System.Name, shape.Threads,
			shape.Cache.Name, shape.Par, wlA.Name, wlB.Name), func(t *testing.T) {
			r := NewRunner(seed)
			r.Workers = 1
			r.Reuse = true
			specA, specB := shape, shape
			specA.Workload, specB.Workload = wlA, wlB
			if _, err := r.Get(specA); err != nil {
				t.Fatal(err)
			}
			reused, err := r.Get(specB) // reset-then-run on specA's machine
			if err != nil {
				t.Fatal(err)
			}
			specB.Seed = seed
			fresh, err := Execute(specB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("reset-then-run diverged from fresh-build-then-run for %s:\nfresh : %+v\nreused: %+v",
					specB.Key(), fresh, reused)
			}
		})
	}
}

// TestMachinePoolLRU is the white-box pool test: acquire matches by shape
// and prefers the most recently released machine, and the pool never holds
// more than poolCap entries (oldest evicted first).
func TestMachinePoolLRU(t *testing.T) {
	var p machinePool
	if p.acquire("a") != nil {
		t.Fatal("empty pool returned a machine")
	}
	mA1 := NewMachineFor(Spec{System: mustSystem("CGL"), Workload: tinyProfile(),
		Threads: 2, Cache: SmallCache(), Seed: 1}, ExecOptions{})
	mA2 := NewMachineFor(Spec{System: mustSystem("CGL"), Workload: tinyProfile(),
		Threads: 2, Cache: SmallCache(), Seed: 1}, ExecOptions{})
	p.release("a", mA1)
	p.release("a", mA2)
	if got := p.acquire("a"); got != mA2 {
		t.Fatal("acquire did not return the most recently released machine")
	}
	if got := p.acquire("a"); got != mA1 {
		t.Fatal("second acquire did not return the older machine")
	}
	if p.acquire("a") != nil {
		t.Fatal("drained pool returned a machine")
	}

	// Overfill with distinct keys: the oldest entries must fall out.
	for i := 0; i < poolCap+2; i++ {
		p.release(fmt.Sprintf("k%d", i), mA1)
	}
	if len(p.free) != poolCap {
		t.Fatalf("pool holds %d entries, want cap %d", len(p.free), poolCap)
	}
	if p.acquire("k0") != nil || p.acquire("k1") != nil {
		t.Fatal("evicted entries still acquirable")
	}
	if p.acquire(fmt.Sprintf("k%d", poolCap+1)) == nil {
		t.Fatal("newest entry missing after eviction")
	}
}
