package harness

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stamp"
)

// TestGoldenCycleCountsFusionOff runs the golden matrix with the event-
// fusion fast path disabled and asserts complete behavioral equivalence:
// the pinned ExecCycles values must hold with fusion off too, and the
// deeper per-run statistics (commits, aborts by cause, traffic) must match
// a fusion-on run exactly. Fusion is a pure execution-strategy change — if
// any of these diverge, the fast path altered simulated behavior.
func TestGoldenCycleCountsFusionOff(t *testing.T) {
	for _, sysName := range []string{"CGL", "Baseline", "LockillerTM-RWI", "LockillerTM"} {
		sys := mustSystem(sysName)
		for _, wl := range goldenWorkloads() {
			for _, th := range []int{2, 4} {
				sysName, wl, th := sysName, wl, th
				t.Run(fmt.Sprintf("%s/%s/%d", sysName, wl.Name, th), func(t *testing.T) {
					t.Parallel()
					spec := Spec{System: sys, Workload: wl, Threads: th, Cache: TypicalCache(), Seed: 1}
					on, err := Execute(spec)
					if err != nil {
						t.Fatal(err)
					}
					spec.DisableFusion = true
					off, err := Execute(spec)
					if err != nil {
						t.Fatal(err)
					}
					if want := goldenCycles[goldenKey{sysName, wl.Name, th}]; off.ExecCycles != want {
						t.Errorf("fusion-off ExecCycles = %d, want pinned %d", off.ExecCycles, want)
					}
					if on.ExecCycles != off.ExecCycles {
						t.Errorf("ExecCycles diverge: fused %d vs unfused %d", on.ExecCycles, off.ExecCycles)
					}
					if on.Traffic != off.Traffic {
						t.Errorf("traffic diverges:\n fused   %+v\n unfused %+v", on.Traffic, off.Traffic)
					}
					onTotal, onCauses := on.TotalAborts()
					offTotal, offCauses := off.TotalAborts()
					if onTotal != offTotal || !reflect.DeepEqual(onCauses, offCauses) {
						t.Errorf("aborts diverge: fused %d %v vs unfused %d %v",
							onTotal, onCauses, offTotal, offCauses)
					}
					for i := range on.Cores {
						a, b := on.Cores[i], off.Cores[i]
						if a.Commits != b.Commits || a.Attempts != b.Attempts {
							t.Errorf("core %d diverges: fused commits=%d attempts=%d, unfused commits=%d attempts=%d",
								i, a.Commits, a.Attempts, b.Commits, b.Attempts)
						}
					}
				})
			}
		}
	}
}

// TestFusionSpecKeyed asserts the runner memo treats fused and unfused
// variants of the same simulation as distinct results.
func TestFusionSpecKeyed(t *testing.T) {
	s := Spec{System: mustSystem("Baseline"), Workload: stamp.Kmeans(),
		Threads: 2, Cache: TypicalCache(), Seed: 1}
	fused := s.key()
	s.DisableFusion = true
	if unfused := s.key(); fused == unfused {
		t.Fatalf("spec key ignores DisableFusion: %q", fused)
	}
}
