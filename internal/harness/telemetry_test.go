package harness

import (
	"bytes"
	"testing"

	"repro/internal/stamp"
	"repro/internal/telemetry"
)

// TestTelemetryPreservesGoldenCycles runs a golden-matrix cell with full
// telemetry attached (metrics sampling, Chrome recording, provenance) and
// asserts the simulated timing is bit-for-bit what the plain run produces:
// observing must never perturb the simulation.
func TestTelemetryPreservesGoldenCycles(t *testing.T) {
	for _, cell := range []goldenKey{
		{"LockillerTM", "intruder", 2},
		{"Baseline", "kmeans", 4},
	} {
		cell := cell
		t.Run(cell.System+"/"+cell.Workload, func(t *testing.T) {
			t.Parallel()
			tel := telemetry.New(telemetry.Config{Interval: 10_000, Chrome: true})
			run, err := ExecuteInstrumented(Spec{
				System: mustSystem(cell.System), Workload: mustWorkload(cell.Workload),
				Threads: cell.Threads, Cache: TypicalCache(), Seed: 1,
			}, nil, tel)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenCycles[cell]
			if run.ExecCycles != want {
				t.Errorf("ExecCycles with telemetry = %d, want %d (telemetry perturbed timing)",
					run.ExecCycles, want)
			}
			if tel.Reg.Samples() == 0 {
				t.Error("telemetry took no samples")
			}
		})
	}
}

// TestTelemetryExportsByteIdentical runs the same seed twice with telemetry
// and asserts both exports are byte-identical, schema-valid, and sorted-key.
func TestTelemetryExportsByteIdentical(t *testing.T) {
	export := func() (metrics, chrome []byte) {
		t.Helper()
		tel := telemetry.New(telemetry.Config{Interval: 10_000, HotLines: 8, Chrome: true})
		_, err := ExecuteInstrumented(Spec{
			System: mustSystem("LockillerTM"), Workload: stamp.Intruder(),
			Threads: 4, Cache: TypicalCache(), Seed: 1,
		}, nil, tel)
		if err != nil {
			t.Fatal(err)
		}
		var m, c bytes.Buffer
		if err := tel.WriteMetricsJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := tel.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), c.Bytes()
	}
	m1, c1 := export()
	m2, c2 := export()
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs across two same-seed runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("chrome trace differs across two same-seed runs")
	}
	if err := telemetry.ValidateMetrics(m1); err != nil {
		t.Errorf("metrics schema: %v", err)
	}
	if err := telemetry.ValidateChromeTrace(c1); err != nil {
		t.Errorf("chrome schema: %v", err)
	}
	if err := telemetry.ValidateSortedKeys(c1); err != nil {
		t.Errorf("chrome keys: %v", err)
	}
	// A contended intruder run must surface conflict provenance.
	if len(m1) == 0 || !bytes.Contains(m1, []byte(`"hot_lines"`)) {
		t.Error("metrics JSON missing provenance section")
	}
}

func mustWorkload(name string) stamp.Profile {
	wl, err := stamp.ByName(name)
	if err != nil {
		panic(err)
	}
	return wl
}
