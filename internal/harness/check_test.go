package harness

import "testing"

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Text == "" || c.Check == nil {
			t.Fatalf("malformed claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d claims; every evaluated figure needs one", len(seen))
	}
}
