package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := OpenDiskCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	run := &stats.Run{System: "Baseline", Workload: "intruder", ExecCycles: 12345, EventsExecuted: 99}
	if err := d.Store("k1", 7, run); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Load("k1", 7)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.ExecCycles != run.ExecCycles || got.EventsExecuted != run.EventsExecuted {
		t.Fatalf("loaded %+v, want %+v", got, run)
	}
	// Every identity component is part of the address: a different seed or
	// key must miss.
	if _, ok := d.Load("k1", 8); ok {
		t.Fatal("wrong seed hit")
	}
	if _, ok := d.Load("k2", 7); ok {
		t.Fatal("wrong key hit")
	}
}

func TestDiskCacheRejectsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("k", 1, &stats.Run{ExecCycles: 1}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache dir: %v, %d entries", err, len(ents))
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte(`{"schema":1,"seed":1,"key":"other","run":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Load("k", 1); ok {
		t.Fatal("entry whose envelope contradicts its address was served")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Load("k", 1); ok {
		t.Fatal("undecodable entry was served")
	}
}

// TestRunnerDiskCache wires a DiskCache into two runners in sequence: the
// first executes and stores, the second must satisfy the whole sweep from
// disk (zero executions) and write cache_src="disk" ledger records that
// still validate.
func TestRunnerDiskCache(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := stubSpecs(4)

	r1 := NewRunner(1)
	r1.Workers = 2
	r1.Disk = d
	execs := 0
	r1.exec = func(s Spec) (*stats.Run, error) {
		execs++
		return &stats.Run{ExecCycles: uint64(s.Threads)}, nil
	}
	if err := r1.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if execs != len(specs) {
		t.Fatalf("first sweep executed %d specs, want %d", execs, len(specs))
	}

	r2 := NewRunner(1)
	r2.Workers = 2
	r2.Disk = d
	r2.Ledger = &obs.Ledger{}
	r2.exec = func(s Spec) (*stats.Run, error) {
		t.Errorf("disk-cached spec %s re-executed", s.Key())
		return &stats.Run{}, nil
	}
	if err := r2.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		run, err := r2.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if run.ExecCycles != uint64(s.Threads) {
			t.Fatalf("disk hit for %s returned ExecCycles %d, want %d", s.Key(), run.ExecCycles, s.Threads)
		}
	}
	var buf bytes.Buffer
	if _, err := r2.Ledger.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateLedger(bytes.NewReader(buf.Bytes())); err != nil || n != len(specs) {
		t.Fatalf("ledger validation: n=%d err=%v\n%s", n, err, buf.String())
	}
	if got := bytes.Count(buf.Bytes(), []byte(`"cache_src":"disk"`)); got != len(specs) {
		t.Errorf("ledger has %d cache_src=disk records, want %d\n%s", got, len(specs), buf.String())
	}
}
