package harness

import (
	"fmt"
	"testing"

	"repro/internal/stamp"
)

// goldenCycles pins the exact ExecCycles of a small system x workload x
// thread-count matrix (TypicalCache, seed 1). The simulator guarantees
// bit-for-bit reproducibility — every event executes in (when, seq) order
// and no Go map iteration order leaks into event sequencing — so these
// values must never move unless a change intentionally alters simulated
// timing. If a refactor (scheduler, message pooling, ...) shifts any of
// them, it changed behavior, not just performance.
var goldenCycles = map[goldenKey]uint64{
	{"CGL", "intruder", 2}:             1245702,
	{"CGL", "intruder", 4}:             1518237,
	{"CGL", "kmeans", 2}:               1180932,
	{"CGL", "kmeans", 4}:               990215,
	{"Baseline", "intruder", 2}:        1015025,
	{"Baseline", "intruder", 4}:        965800,
	{"Baseline", "kmeans", 2}:          1009909,
	{"Baseline", "kmeans", 4}:          544132,
	{"LockillerTM-RWI", "intruder", 2}: 1008516,
	{"LockillerTM-RWI", "intruder", 4}: 784785,
	{"LockillerTM-RWI", "kmeans", 2}:   1010008,
	{"LockillerTM-RWI", "kmeans", 4}:   573894,
	{"LockillerTM", "intruder", 2}:     948544,
	{"LockillerTM", "intruder", 4}:     794394,
	{"LockillerTM", "kmeans", 2}:       1007204,
	{"LockillerTM", "kmeans", 4}:       562700,
}

type goldenKey struct {
	System   string
	Workload string
	Threads  int
}

func goldenWorkloads() []stamp.Profile {
	return []stamp.Profile{stamp.Intruder(), stamp.Kmeans()}
}

// TestGoldenCycleCounts runs the golden matrix and asserts every ExecCycles
// value bit-for-bit.
func TestGoldenCycleCounts(t *testing.T) {
	for _, sysName := range []string{"CGL", "Baseline", "LockillerTM-RWI", "LockillerTM"} {
		sys := mustSystem(sysName)
		for _, wl := range goldenWorkloads() {
			for _, th := range []int{2, 4} {
				sysName, wl, th := sysName, wl, th
				t.Run(fmt.Sprintf("%s/%s/%d", sysName, wl.Name, th), func(t *testing.T) {
					t.Parallel()
					run, err := Execute(Spec{System: sys, Workload: wl, Threads: th, Cache: TypicalCache(), Seed: 1})
					if err != nil {
						t.Fatal(err)
					}
					want := goldenCycles[goldenKey{sysName, wl.Name, th}]
					if run.ExecCycles != want {
						t.Errorf("ExecCycles = %d, want %d (simulated timing changed)", run.ExecCycles, want)
					}
				})
			}
		}
	}
}

// TestRepeatedRunsIdentical runs the same spec twice in one process and
// asserts the cycle counts agree: scheduling must not depend on process
// state (map iteration order, allocation addresses, pool contents).
func TestRepeatedRunsIdentical(t *testing.T) {
	spec := Spec{System: mustSystem("LockillerTM"), Workload: stamp.Intruder(),
		Threads: 4, Cache: TypicalCache(), Seed: 1}
	a, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecCycles != b.ExecCycles {
		t.Fatalf("runs diverged: %d vs %d cycles", a.ExecCycles, b.ExecCycles)
	}
}
