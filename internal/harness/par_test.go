package harness

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// parWorkerCounts are the tile-group counts the parity tests exercise. 1 is
// the degenerate single-group case, 8 exceeds the thread counts used by the
// golden matrix so some groups own only idle tiles.
var parWorkerCounts = []int{1, 2, 4, 8}

// TestGoldenCycleCountsParallel re-runs the golden determinism matrix on the
// sharded engine and checks every run against the same hard-pinned cycle
// counts as the sequential engine: the parallel engine is not allowed to be
// "deterministic but different" — it must be bit-for-bit the sequential
// simulation. Subtests are named .../par=N so CI can run a single worker
// count under -race.
func TestGoldenCycleCountsParallel(t *testing.T) {
	counts := parWorkerCounts
	if testing.Short() {
		counts = []int{1, 4}
	}
	for _, par := range counts {
		par := par
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			t.Parallel()
			for key, want := range goldenCycles {
				spec := Spec{
					System:   mustSystem(key.System),
					Workload: mustWorkload(key.Workload),
					Threads:  key.Threads,
					Cache:    TypicalCache(),
					Seed:     1,
					Par:      par,
				}
				run, err := Execute(spec)
				if err != nil {
					t.Fatalf("%s/%s threads=%d par=%d: %v", key.System, key.Workload, key.Threads, par, err)
				}
				if run.ExecCycles != want {
					t.Errorf("%s/%s threads=%d par=%d: ExecCycles=%d, golden sequential value %d",
						key.System, key.Workload, key.Threads, par, run.ExecCycles, want)
				}
			}
		})
	}
}

// TestParallelGrantWidthZero rebuilds a golden machine with the span-grant
// heuristic disabled (width 0: every span is handed to a worker goroutine,
// none executes inline on the coordinator) and checks the pinned cycle
// count still holds. With the default width most narrow spans run inline;
// this test — especially under -race — is what certifies the worker-handoff
// protocol itself on the full simulator.
func TestParallelGrantWidthZero(t *testing.T) {
	for key, want := range goldenCycles {
		if testing.Short() && key.Threads != 4 {
			continue
		}
		sys := mustSystem(key.System)
		wl := mustWorkload(key.Workload)
		p := coherence.DefaultParams()
		cache := TypicalCache()
		p.L1Size = cache.L1Size
		p.LLCSize = cache.LLCSize
		cfg := cpu.Config{
			Machine: p,
			HTM:     sys.HTM,
			Sync:    sys.Sync,
			Threads: key.Threads,
			Seed:    1,
			Limit:   4_000_000_000,
			Par:     4,
		}
		progs := stamp.Programs(wl, key.Threads, 1)
		m := cpu.NewMachine(cfg, sys.Name, wl.Name, progs)
		m.Engine.SetParGrantWidth(0)
		run, err := m.Run()
		if err != nil {
			t.Fatalf("%s/%s threads=%d: %v", key.System, key.Workload, key.Threads, err)
		}
		if run.ExecCycles != want {
			t.Errorf("%s/%s threads=%d grant=0: ExecCycles=%d, golden %d",
				key.System, key.Workload, key.Threads, run.ExecCycles, want)
		}
		if m.Engine.ParSpans() == 0 {
			t.Errorf("%s/%s threads=%d: no spans granted to workers", key.System, key.Workload, key.Threads)
		}
	}
}

// parTrialSpecs enumerates the randomized differential matrix: a spread of
// systems, workloads, and thread counts drawn with a fixed RNG so the trial
// set is stable across runs but not hand-picked.
func parTrialSpecs(n int) []Spec {
	systems := Systems()
	workloads := stamp.Workloads()
	caches := []CacheConfig{TypicalCache(), SmallCache()}
	threads := []int{2, 3, 4, 8}
	rng := sim.NewRNG(0xd1ff)
	specs := make([]Spec, 0, n)
	for len(specs) < n {
		specs = append(specs, Spec{
			System:   systems[rng.Intn(len(systems))],
			Workload: workloads[rng.Intn(len(workloads))],
			Threads:  threads[rng.Intn(len(threads))],
			Cache:    caches[rng.Intn(len(caches))],
			Seed:     1 + rng.Uint64()%5,
		})
	}
	return specs
}

// TestParallelDifferentialRandom runs randomized specs on the sequential
// engine and on the sharded engine at every worker count, and requires the
// entire stats.Run — cycles, per-core breakdowns, traffic counters,
// transition profile — to be deeply equal, not just the headline cycle
// count.
func TestParallelDifferentialRandom(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 6
	}
	for i, spec := range parTrialSpecs(n) {
		i, spec := i, spec
		t.Run(fmt.Sprintf("trial%02d", i), func(t *testing.T) {
			t.Parallel()
			seq, err := Execute(spec)
			if err != nil {
				t.Fatalf("sequential %s: %v", spec.key(), err)
			}
			for _, par := range parWorkerCounts {
				ps := spec
				ps.Par = par
				got, err := Execute(ps)
				if err != nil {
					t.Fatalf("par=%d %s: %v", par, spec.key(), err)
				}
				if !reflect.DeepEqual(seq, got) {
					t.Errorf("par=%d %s: stats.Run diverged from sequential engine\nseq: %+v\npar: %+v",
						par, spec.key(), seq, got)
				}
			}
		})
	}
}
