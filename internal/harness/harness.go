// Package harness assembles and runs the paper's evaluation: the Table II
// system matrix, the Table I machine configurations (plus the small/large
// cache variants of Fig. 13), and one runner per figure. Simulations are
// independent, so the runner fans them out across OS threads.
package harness

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/priority"
	"repro/internal/stamp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ThreadCounts are the five evaluated thread counts.
var ThreadCounts = []int{2, 4, 8, 16, 32}

// SystemDef is one row of Table II.
type SystemDef struct {
	Name string
	Desc string
	Sync cpu.SyncSystem
	HTM  htm.Config
}

// Systems returns the full Table II matrix, in the paper's order.
func Systems() []SystemDef {
	ins := priority.InstsBased{}
	return []SystemDef{
		{Name: "CGL", Desc: "Coarse-grained locking with the same granularity of transactions",
			Sync: cpu.SysCGL, HTM: htm.Config{}.Defaults()},
		{Name: "Baseline", Desc: "Best-Effort HTM with requester-win",
			Sync: cpu.SysHTM, HTM: htm.Config{}.Defaults()},
		{Name: "LosaTM-SAFU", Desc: "LosaTM without False Sharing and Capacity Overflow OPT",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Losa: true, RejectPolicy: htm.WaitWakeup, Priority: priority.Progression{},
			}.Defaults()},
		{Name: "LockillerTM-RAI", Desc: "Baseline + Recovery + SelfAbort + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.SelfAbort, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RRI", Desc: "Baseline + Recovery + SelfRetryLater + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.RetryLater, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RWI", Desc: "Baseline + Recovery + WaitWakeup + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RWL", Desc: "Baseline + Recovery + WaitWakeup + HTMLock",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, HTMLock: true,
			}.Defaults()},
		{Name: "LockillerTM-RWIL", Desc: "LockillerTM-RWI + HTMLock",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins, HTMLock: true,
			}.Defaults()},
		{Name: "LockillerTM", Desc: "LockillerTM-RWI + HTMLock + SwitchingMode",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins,
				HTMLock: true, SwitchingMode: true,
			}.Defaults()},
	}
}

// SystemByName returns a Table II row.
func SystemByName(name string) (SystemDef, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return SystemDef{}, fmt.Errorf("harness: unknown system %q", name)
}

// CacheConfig names one of the three evaluated cache configurations.
type CacheConfig struct {
	Name    string
	L1Size  int
	LLCSize int
}

// The three configurations of §IV: typical (Table I), and the small/large
// sensitivity points of Fig. 13.
func TypicalCache() CacheConfig { return CacheConfig{"typical", 32 * 1024, 8 << 20} }
func SmallCache() CacheConfig   { return CacheConfig{"small", 8 * 1024, 1 << 20} }
func LargeCache() CacheConfig   { return CacheConfig{"large", 128 * 1024, 32 << 20} }

// Spec identifies one simulation.
type Spec struct {
	System   SystemDef
	Workload stamp.Profile
	Threads  int
	Cache    CacheConfig
	Seed     uint64
	// DisableFusion runs with the event-fusion fast path off (DESIGN.md
	// §10). Results are bit-for-bit identical either way — the knob exists
	// for the fusion equivalence tests and as a diagnostic escape hatch.
	DisableFusion bool
	// Par, when positive, runs on the sharded tile-parallel engine with
	// that many tile groups (DESIGN.md §11). Bit-for-bit identical to the
	// sequential engine, but key-affecting so differential tests can hold
	// both results at once.
	Par int
	// Cores, Topo, MeshW/MeshH, and ClusterSize override the Table I
	// machine shape (32 cores, 4x8 mesh, flat directory) for scaling runs
	// (DESIGN.md §13). Zero values keep the defaults — and the memo keys
	// they produced before these fields existed. Cores alone derives a
	// near-square grid (GridFor); an explicit MeshW×MeshH wins. Topo picks
	// mesh, torus, or cmesh (4 tiles per router); ClusterSize enables the
	// two-level directory.
	Cores        int
	Topo         string
	MeshW, MeshH int
	ClusterSize  int
}

func (s Spec) key() string {
	k := fmt.Sprintf("%s|%s|%d|%s|%d", s.System.Name, s.Workload.Name, s.Threads, s.Cache.Name, s.Seed)
	if s.DisableFusion {
		k += "|nofuse"
	}
	if s.Par > 0 {
		k += fmt.Sprintf("|par%d", s.Par)
	}
	if s.Cores > 0 {
		k += fmt.Sprintf("|cores%d", s.Cores)
	}
	if s.Topo != "" {
		k += "|topo" + s.Topo
	}
	if s.MeshW > 0 || s.MeshH > 0 {
		k += fmt.Sprintf("|grid%dx%d", s.MeshW, s.MeshH)
	}
	if s.ClusterSize > 0 {
		k += fmt.Sprintf("|cl%d", s.ClusterSize)
	}
	return k
}

// GridFor returns the most-square W×H factorization of n tiles with W ≤ H,
// matching Table I's 4x8 orientation at 32: 64→8x8, 128→8x16, 256→16x16,
// 512→16x32, 1024→32x32.
func GridFor(n int) (w, h int) {
	w = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w, n / w
}

// MachineParams resolves the spec's machine shape: Table I defaults plus
// the cache configuration and any scaling overrides.
func (s Spec) MachineParams() coherence.Params {
	p := coherence.DefaultParams()
	p.L1Size = s.Cache.L1Size
	p.LLCSize = s.Cache.LLCSize
	if s.Cores > 0 {
		p.Cores = s.Cores
	}
	if s.Topo != "" {
		p.Topo = s.Topo
	}
	if s.ClusterSize > 0 {
		p.ClusterSize = s.ClusterSize
	}
	conc := 1
	if p.Topo == "cmesh" {
		conc = 4
	}
	switch {
	case s.MeshW > 0 && s.MeshH > 0:
		p.MeshW, p.MeshH = s.MeshW, s.MeshH
		conc = p.Cores / (p.MeshW * p.MeshH)
	case s.Cores > 0 || p.Topo == "cmesh":
		p.MeshW, p.MeshH = GridFor(p.Cores / conc)
	}
	if p.Topo == "cmesh" {
		p.Conc = conc
	}
	return p
}

// Execute runs one simulation to completion.
func Execute(s Spec) (*stats.Run, error) { return ExecuteInstrumented(s, nil, nil) }

// ExecuteTraced is Execute with an optional event tracer attached.
func ExecuteTraced(s Spec, tracer *trace.Tracer) (*stats.Run, error) {
	return ExecuteInstrumented(s, tracer, nil)
}

// ExecuteInstrumented is Execute with an optional event tracer and an
// optional telemetry instance attached. Both may be nil; a non-nil telemetry
// gets its Meta stamped from the spec and is ready for export after the run.
func ExecuteInstrumented(s Spec, tracer *trace.Tracer, tel *telemetry.Telemetry) (*stats.Run, error) {
	p := s.MachineParams()
	cfg := cpu.Config{
		Machine:       p,
		HTM:           s.System.HTM,
		Sync:          s.System.Sync,
		Threads:       s.Threads,
		Seed:          s.Seed,
		Limit:         4_000_000_000,
		Tracer:        tracer,
		Telemetry:     tel,
		DisableFusion: s.DisableFusion,
		Par:           s.Par,
	}
	if tel != nil {
		tel.Meta = telemetry.Meta{
			System:   s.System.Name,
			Threads:  s.Threads,
			Workload: s.Workload.Name,
		}
	}
	progs := stamp.Programs(s.Workload, s.Threads, s.Seed)
	m := cpu.NewMachine(cfg, s.System.Name, s.Workload.Name, progs)
	return m.Run()
}

// Runner executes specs in parallel with memoization (CGL baselines are
// shared across figures).
type Runner struct {
	Seed    uint64
	Workers int
	// Log, when non-nil, receives one line per completed simulation.
	Log func(string)

	// exec runs one spec; tests may replace it before first use. Defaults
	// to Execute.
	exec func(Spec) (*stats.Run, error)

	mu       sync.Mutex
	results  map[string]*stats.Run
	inflight map[string]*call
	errs     []error
}

// call tracks one in-flight execution so concurrent Gets of the same spec
// share a single run (singleflight).
type call struct {
	done chan struct{}
	res  *stats.Run
	err  error
}

// NewRunner creates a runner with DefaultWorkers(0) workers.
func NewRunner(seed uint64) *Runner {
	return &Runner{
		Seed:     seed,
		Workers:  DefaultWorkers(0),
		results:  make(map[string]*stats.Run),
		inflight: make(map[string]*call),
	}
}

// WorkersFromEnv returns the worker count requested via LOCKILLER_WORKERS,
// or 0 if the variable is unset or not a positive integer.
func WorkersFromEnv() int {
	if v := os.Getenv("LOCKILLER_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// DefaultWorkers resolves the runner worker count: an explicit positive
// flag value wins, then LOCKILLER_WORKERS, then one worker per CPU. This is
// the outer, spec-level parallelism budget; it composes multiplicatively
// with any inner tile-level parallelism (Spec.Par), so front-ends that
// enable both should split the CPU budget between the two layers.
func DefaultWorkers(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	if n := WorkersFromEnv(); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

func (r *Runner) execute(s Spec) (*stats.Run, error) {
	if r.exec != nil {
		return r.exec(s)
	}
	return Execute(s)
}

// Get runs (or returns the memoized result of) a single spec. Concurrent
// calls for the same spec are coalesced: exactly one executes the
// simulation, the rest block and share its result.
func (r *Runner) Get(s Spec) (*stats.Run, error) {
	s.Seed = r.Seed
	k := s.key()
	r.mu.Lock()
	if res, ok := r.results[k]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if c, ok := r.inflight[k]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	if r.inflight == nil {
		r.inflight = make(map[string]*call)
	}
	r.inflight[k] = c
	r.mu.Unlock()

	res, err := r.execute(s)
	if err != nil {
		err = fmt.Errorf("harness: %s: %w", k, err)
	}
	c.res, c.err = res, err
	r.mu.Lock()
	if err == nil {
		r.results[k] = res
	}
	delete(r.inflight, k)
	r.mu.Unlock()
	close(c.done)
	return res, err
}

// RunAll executes all specs in parallel. Every failing spec contributes an
// error (wrapped with its key) to the returned errors.Join aggregate;
// successful results are retrieved afterwards via Get (memoized).
func (r *Runner) RunAll(specs []Spec) error {
	// Deduplicate up front so workers never race to run the same spec.
	seen := make(map[string]bool)
	var todo []Spec
	for _, s := range specs {
		s.Seed = r.Seed
		r.mu.Lock()
		_, have := r.results[s.key()]
		r.mu.Unlock()
		if !have && !seen[s.key()] {
			seen[s.key()] = true
			todo = append(todo, s)
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].key() < todo[j].key() })

	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	ch := make(chan Spec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				// Get provides the memoization, key-wrapped errors, and
				// singleflight coalescing with any concurrent direct callers.
				start := time.Now()
				res, err := r.Get(s)
				if err != nil {
					r.mu.Lock()
					r.errs = append(r.errs, err)
					r.mu.Unlock()
					continue
				}
				if r.Log != nil {
					r.Log(fmt.Sprintf("%s wall=%s", res, time.Since(start).Round(time.Millisecond)))
				}
			}
		}()
	}
	for _, s := range todo {
		ch <- s
	}
	close(ch)
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Join in sorted order so the aggregate message is deterministic even
	// though workers finish in arbitrary order.
	sort.Slice(r.errs, func(i, j int) bool { return r.errs[i].Error() < r.errs[j].Error() })
	return errors.Join(r.errs...)
}

// Speedup returns CGL-cycles / system-cycles for the same workload, thread
// count, and cache configuration.
func (r *Runner) Speedup(sys SystemDef, wl stamp.Profile, threads int, cache CacheConfig) (float64, error) {
	cgl, err := r.Get(Spec{System: mustSystem("CGL"), Workload: wl, Threads: threads, Cache: cache})
	if err != nil {
		return 0, err
	}
	run, err := r.Get(Spec{System: sys, Workload: wl, Threads: threads, Cache: cache})
	if err != nil {
		return 0, err
	}
	if run.ExecCycles == 0 {
		return 0, fmt.Errorf("harness: zero exec cycles for %s/%s", sys.Name, wl.Name)
	}
	return float64(cgl.ExecCycles) / float64(run.ExecCycles), nil
}

func mustSystem(name string) SystemDef {
	s, err := SystemByName(name)
	if err != nil {
		panic(err)
	}
	return s
}
