// Package harness assembles and runs the paper's evaluation: the Table II
// system matrix, the Table I machine configurations (plus the small/large
// cache variants of Fig. 13), and one runner per figure. Simulations are
// independent, so the runner fans them out across OS threads.
package harness

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/priority"
	"repro/internal/stamp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ThreadCounts are the five evaluated thread counts.
var ThreadCounts = []int{2, 4, 8, 16, 32}

// SystemDef is one row of Table II.
type SystemDef struct {
	Name string
	Desc string
	Sync cpu.SyncSystem
	HTM  htm.Config
}

// Systems returns the full Table II matrix, in the paper's order.
func Systems() []SystemDef {
	ins := priority.InstsBased{}
	return []SystemDef{
		{Name: "CGL", Desc: "Coarse-grained locking with the same granularity of transactions",
			Sync: cpu.SysCGL, HTM: htm.Config{}.Defaults()},
		{Name: "Baseline", Desc: "Best-Effort HTM with requester-win",
			Sync: cpu.SysHTM, HTM: htm.Config{}.Defaults()},
		{Name: "LosaTM-SAFU", Desc: "LosaTM without False Sharing and Capacity Overflow OPT",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Losa: true, RejectPolicy: htm.WaitWakeup, Priority: priority.Progression{},
			}.Defaults()},
		{Name: "LockillerTM-RAI", Desc: "Baseline + Recovery + SelfAbort + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.SelfAbort, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RRI", Desc: "Baseline + Recovery + SelfRetryLater + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.RetryLater, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RWI", Desc: "Baseline + Recovery + WaitWakeup + InstsBasedPriority",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins,
			}.Defaults()},
		{Name: "LockillerTM-RWL", Desc: "Baseline + Recovery + WaitWakeup + HTMLock",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, HTMLock: true,
			}.Defaults()},
		{Name: "LockillerTM-RWIL", Desc: "LockillerTM-RWI + HTMLock",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins, HTMLock: true,
			}.Defaults()},
		{Name: "LockillerTM", Desc: "LockillerTM-RWI + HTMLock + SwitchingMode",
			Sync: cpu.SysHTM, HTM: htm.Config{
				Recovery: true, RejectPolicy: htm.WaitWakeup, Priority: ins,
				HTMLock: true, SwitchingMode: true,
			}.Defaults()},
	}
}

// SystemByName returns a Table II row.
func SystemByName(name string) (SystemDef, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return SystemDef{}, fmt.Errorf("harness: unknown system %q", name)
}

// CacheConfig names one of the three evaluated cache configurations.
type CacheConfig struct {
	Name    string
	L1Size  int
	LLCSize int
}

// The three configurations of §IV: typical (Table I), and the small/large
// sensitivity points of Fig. 13.
func TypicalCache() CacheConfig { return CacheConfig{"typical", 32 * 1024, 8 << 20} }
func SmallCache() CacheConfig   { return CacheConfig{"small", 8 * 1024, 1 << 20} }
func LargeCache() CacheConfig   { return CacheConfig{"large", 128 * 1024, 32 << 20} }

// Spec identifies one simulation.
type Spec struct {
	System   SystemDef
	Workload stamp.Profile
	Threads  int
	Cache    CacheConfig
	Seed     uint64
	// DisableFusion runs with the event-fusion fast path off (DESIGN.md
	// §10). Results are bit-for-bit identical either way — the knob exists
	// for the fusion equivalence tests and as a diagnostic escape hatch.
	DisableFusion bool
	// Par, when positive, runs on the sharded tile-parallel engine with
	// that many tile groups (DESIGN.md §11). Bit-for-bit identical to the
	// sequential engine, but key-affecting so differential tests can hold
	// both results at once.
	Par int
	// Cores, Topo, MeshW/MeshH, and ClusterSize override the Table I
	// machine shape (32 cores, 4x8 mesh, flat directory) for scaling runs
	// (DESIGN.md §13). Zero values keep the defaults — and the memo keys
	// they produced before these fields existed. Cores alone derives a
	// near-square grid (GridFor); an explicit MeshW×MeshH wins. Topo picks
	// mesh, torus, or cmesh (4 tiles per router); ClusterSize enables the
	// two-level directory.
	Cores        int
	Topo         string
	MeshW, MeshH int
	ClusterSize  int
}

func (s Spec) key() string {
	k := fmt.Sprintf("%s|%s|%d|%s|%d", s.System.Name, s.Workload.Name, s.Threads, s.Cache.Name, s.Seed)
	if s.DisableFusion {
		k += "|nofuse"
	}
	if s.Par > 0 {
		k += fmt.Sprintf("|par%d", s.Par)
	}
	if s.Cores > 0 {
		k += fmt.Sprintf("|cores%d", s.Cores)
	}
	if s.Topo != "" {
		k += "|topo" + s.Topo
	}
	if s.MeshW > 0 || s.MeshH > 0 {
		k += fmt.Sprintf("|grid%dx%d", s.MeshW, s.MeshH)
	}
	if s.ClusterSize > 0 {
		k += fmt.Sprintf("|cl%d", s.ClusterSize)
	}
	return k
}

// Key returns the spec's memo key — the identity used by the runner's
// cache, the results file, and the obs run ledger.
func (s Spec) Key() string { return s.key() }

// poolKey identifies the machine *shape* a spec needs: every key-affecting
// dimension except the workload and seed, which Machine.Reset reprograms.
// Two specs with the same poolKey can share one constructed machine across
// resets.
func (s Spec) poolKey() string {
	k := fmt.Sprintf("%s|%d|%s", s.System.Name, s.Threads, s.Cache.Name)
	if s.DisableFusion {
		k += "|nofuse"
	}
	if s.Par > 0 {
		k += fmt.Sprintf("|par%d", s.Par)
	}
	if s.Cores > 0 {
		k += fmt.Sprintf("|cores%d", s.Cores)
	}
	if s.Topo != "" {
		k += "|topo" + s.Topo
	}
	if s.MeshW > 0 || s.MeshH > 0 {
		k += fmt.Sprintf("|grid%dx%d", s.MeshW, s.MeshH)
	}
	if s.ClusterSize > 0 {
		k += fmt.Sprintf("|cl%d", s.ClusterSize)
	}
	return k
}

// GridFor returns the most-square W×H factorization of n tiles with W ≤ H,
// matching Table I's 4x8 orientation at 32: 64→8x8, 128→8x16, 256→16x16,
// 512→16x32, 1024→32x32.
func GridFor(n int) (w, h int) {
	w = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w, n / w
}

// MachineParams resolves the spec's machine shape: Table I defaults plus
// the cache configuration and any scaling overrides.
func (s Spec) MachineParams() coherence.Params {
	p := coherence.DefaultParams()
	p.L1Size = s.Cache.L1Size
	p.LLCSize = s.Cache.LLCSize
	if s.Cores > 0 {
		p.Cores = s.Cores
	}
	if s.Topo != "" {
		p.Topo = s.Topo
	}
	if s.ClusterSize > 0 {
		p.ClusterSize = s.ClusterSize
	}
	conc := 1
	if p.Topo == "cmesh" {
		conc = 4
	}
	switch {
	case s.MeshW > 0 && s.MeshH > 0:
		p.MeshW, p.MeshH = s.MeshW, s.MeshH
		conc = p.Cores / (p.MeshW * p.MeshH)
	case s.Cores > 0 || p.Topo == "cmesh":
		p.MeshW, p.MeshH = GridFor(p.Cores / conc)
	}
	if p.Topo == "cmesh" {
		p.Conc = conc
	}
	return p
}

// Execute runs one simulation to completion.
func Execute(s Spec) (*stats.Run, error) { return ExecuteWith(s, ExecOptions{}) }

// ExecuteTraced is Execute with an optional event tracer attached.
func ExecuteTraced(s Spec, tracer *trace.Tracer) (*stats.Run, error) {
	return ExecuteWith(s, ExecOptions{Tracer: tracer})
}

// ExecuteInstrumented is Execute with an optional event tracer and an
// optional telemetry instance attached. Both may be nil; a non-nil telemetry
// gets its Meta stamped from the spec and is ready for export after the run.
func ExecuteInstrumented(s Spec, tracer *trace.Tracer, tel *telemetry.Telemetry) (*stats.Run, error) {
	return ExecuteWith(s, ExecOptions{Tracer: tracer, Telemetry: tel})
}

// ExecOptions bundles the optional instrumentation of one execution. The
// zero value runs bare.
type ExecOptions struct {
	// Tracer records simulation events (internal/trace).
	Tracer *trace.Tracer
	// Telemetry attaches the simulated-time observability layer; its Meta
	// is stamped from the spec and it is ready for export after the run.
	Telemetry *telemetry.Telemetry
	// Probe attaches the host-side engine self-profiler (internal/obs).
	// Leave nil rather than wrapping a nil concrete pointer: a typed nil
	// would defeat the engine's nil guards.
	Probe obs.EngineProbe
}

// ExecuteWith runs one simulation with the given instrumentation.
func ExecuteWith(s Spec, opts ExecOptions) (*stats.Run, error) {
	return NewMachineFor(s, opts).Run()
}

// NewMachineFor constructs the machine a spec describes, programmed and
// ready to Run. The runner's reuse path builds machines here once per shape
// and Resets them for every later spec with the same poolKey.
func NewMachineFor(s Spec, opts ExecOptions) *cpu.Machine {
	p := s.MachineParams()
	cfg := cpu.Config{
		Machine:       p,
		HTM:           s.System.HTM,
		Sync:          s.System.Sync,
		Threads:       s.Threads,
		Seed:          s.Seed,
		Limit:         4_000_000_000,
		Tracer:        opts.Tracer,
		Telemetry:     opts.Telemetry,
		Probe:         opts.Probe,
		DisableFusion: s.DisableFusion,
		Par:           s.Par,
	}
	if tel := opts.Telemetry; tel != nil {
		tel.Meta = telemetry.Meta{
			System:   s.System.Name,
			Threads:  s.Threads,
			Workload: s.Workload.Name,
		}
	}
	progs := stamp.Programs(s.Workload, s.Threads, s.Seed)
	return cpu.NewMachine(cfg, s.System.Name, s.Workload.Name, progs)
}

// Runner executes specs in parallel with memoization (CGL baselines are
// shared across figures).
type Runner struct {
	Seed    uint64
	Workers int
	// Log, when non-nil, receives one line per completed simulation.
	Log func(string)
	// Par, when positive, is the default tile-parallel worker count
	// stamped onto every spec that does not choose its own (Spec.Par ==
	// 0). It is key-affecting, exactly as if each spec had carried it.
	Par int
	// Reuse pools constructed machines by shape (Spec.poolKey) and
	// Resets them in place for each later spec of the same shape instead
	// of rebuilding (DESIGN.md §15). Key-neutral: reset-then-run is
	// bit-for-bit identical to fresh-build-then-run, so the flag changes
	// host wall time and allocations only. Instrumented executions
	// (Profiler, custom exec) always build fresh.
	Reuse bool
	// Disk, when non-nil, is the persistent content-addressed sweep
	// cache: get() consults it after a memo miss and stores every fresh
	// successful result. Hits produce ledger records with
	// cache_src="disk".
	Disk *DiskCache

	// Ledger, when non-nil, receives one obs record per execution (and
	// per cache hit RunAll satisfies from the memo). Appends happen on
	// the singleflight leader only, so each execution is recorded once.
	Ledger *obs.Ledger
	// Progress, when non-nil, receives one event per spec RunAll
	// completes. Events are serialized and done-counts are monotone.
	Progress obs.ProgressSink
	// Profiler, when non-nil, aggregates the engine self-profile across
	// every execution: each run gets a private probe, merged here when it
	// finishes.
	Profiler *obs.Profiler

	// exec runs one spec; tests may replace it before first use. Defaults
	// to Execute (with the self-profiler probe when Profiler is set).
	exec func(Spec) (*stats.Run, error)

	mu       sync.Mutex
	results  map[string]*stats.Run
	inflight map[string]*call
	errs     []error
	pool     machinePool
}

// call tracks one in-flight execution so concurrent Gets of the same spec
// share a single run (singleflight).
type call struct {
	done chan struct{}
	res  *stats.Run
	err  error
	wall time.Duration
}

// runAccount describes how one get was satisfied: the host wall time and
// allocator delta of the execution (zero for cache hits), which cache
// answered ("" for fresh executions, "memo" or "disk" otherwise), and
// whether the caller joined another caller's in-flight run. Allocator
// deltas are process-global readings, so under concurrent sweep workers
// the attribution to one spec is approximate by design.
type runAccount struct {
	Wall     time.Duration
	Mem      obs.MemDelta
	CacheSrc string
	Shared   bool
}

// hit reports whether any cache satisfied the get.
func (a runAccount) hit() bool { return a.CacheSrc != "" }

// NewRunner creates a runner with DefaultWorkers(0) workers and machine
// reuse on (results are bit-identical either way; Reuse=false is the
// escape hatch).
func NewRunner(seed uint64) *Runner {
	return &Runner{
		Seed:     seed,
		Workers:  DefaultWorkers(0),
		Reuse:    true,
		results:  make(map[string]*stats.Run),
		inflight: make(map[string]*call),
	}
}

// WorkersFromEnv returns the worker count requested via LOCKILLER_WORKERS,
// or 0 if the variable is unset or not a positive integer.
func WorkersFromEnv() int {
	if v := os.Getenv("LOCKILLER_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// DefaultWorkers resolves the runner worker count: an explicit positive
// flag value wins, then LOCKILLER_WORKERS, then one worker per CPU. This is
// the outer, spec-level parallelism budget; it composes multiplicatively
// with any inner tile-level parallelism (Spec.Par), so front-ends that
// enable both should split the CPU budget between the two layers.
func DefaultWorkers(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	if n := WorkersFromEnv(); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// stamp normalizes a spec for this runner: the runner's seed always wins,
// and the runner-level Par default applies to specs that don't set their
// own.
func (r *Runner) stamp(s Spec) Spec {
	s.Seed = r.Seed
	if s.Par == 0 {
		s.Par = r.Par
	}
	return s
}

func (r *Runner) execute(s Spec) (*stats.Run, error) {
	if r.exec != nil {
		return r.exec(s)
	}
	if r.Profiler != nil {
		// Each run gets a private probe (the engine requires single-token
		// access); the sweep-level aggregate locks on merge. Machine.Reset
		// refuses observer-attached machines, so the profiled path always
		// builds fresh and never touches the pool.
		p := obs.NewProfiler()
		res, err := ExecuteWith(s, ExecOptions{Probe: p})
		r.Profiler.Merge(p)
		return res, err
	}
	if r.Reuse {
		return r.executeReused(s)
	}
	return Execute(s)
}

// executeReused satisfies one spec from the machine pool: take a machine of
// the right shape and Reset it for this spec's workload and seed, or build
// one if the pool has none. Machines return to the pool only after a clean
// run — an errored machine's state is suspect, so it is dropped for the
// garbage collector.
func (r *Runner) executeReused(s Spec) (*stats.Run, error) {
	pk := s.poolKey()
	m := r.pool.acquire(pk)
	if m == nil {
		m = NewMachineFor(s, ExecOptions{})
	} else {
		progs := stamp.Programs(s.Workload, s.Threads, s.Seed)
		m.Reset(s.Seed, s.System.Name, s.Workload.Name, progs)
	}
	res, err := m.Run()
	if err == nil {
		r.pool.release(pk, m)
	}
	return res, err
}

// Get runs (or returns the memoized result of) a single spec. Concurrent
// calls for the same spec are coalesced: exactly one executes the
// simulation, the rest block and share its result.
func (r *Runner) Get(s Spec) (*stats.Run, error) {
	res, _, err := r.get(s)
	return res, err
}

// get is Get plus the host-side accounting: wall time and allocator delta
// of the execution, measured on the singleflight leader — the one code
// path every per-spec wall figure (Log line, ledger record, progress
// event) now comes from. The leader also appends the ledger record, so an
// execution is recorded exactly once no matter how many callers share it.
func (r *Runner) get(s Spec) (*stats.Run, runAccount, error) {
	s = r.stamp(s)
	k := s.key()
	r.mu.Lock()
	if res, ok := r.results[k]; ok {
		r.mu.Unlock()
		return res, runAccount{CacheSrc: "memo"}, nil
	}
	if c, ok := r.inflight[k]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, runAccount{Wall: c.wall, Shared: true}, c.err
	}
	c := &call{done: make(chan struct{})}
	if r.inflight == nil {
		r.inflight = make(map[string]*call)
	}
	r.inflight[k] = c
	r.mu.Unlock()

	var res *stats.Run
	var err error
	var acct runAccount
	if r.Disk != nil {
		if run, ok := r.Disk.Load(k, s.Seed); ok {
			res, acct = run, runAccount{CacheSrc: "disk"}
		}
	}
	if res == nil {
		timer := obs.StartTimer()
		mem := obs.TakeMemSnapshot()
		res, err = r.execute(s)
		acct = runAccount{Wall: timer.Elapsed(), Mem: mem.Delta()}
		if err == nil && r.Disk != nil {
			if serr := r.Disk.Store(k, s.Seed, res); serr != nil && r.Log != nil {
				r.Log(fmt.Sprintf("disk cache store failed for %s: %v", k, serr))
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("harness: %s: %w", k, err)
	}
	if r.Ledger != nil {
		r.Ledger.Append(LedgerRecord(s, res, err, acct.Wall, acct.Mem, acct.CacheSrc))
	}
	c.res, c.err, c.wall = res, err, acct.Wall
	r.mu.Lock()
	if err == nil {
		r.results[k] = res
	}
	delete(r.inflight, k)
	r.mu.Unlock()
	close(c.done)
	return res, acct, err
}

// LedgerRecord builds the obs ledger record for one spec outcome. Shared
// by the runner and lockillersim's single-run -ledger mode so the schema
// is populated from exactly one place. cacheSrc is "" for a fresh
// execution, "memo" or "disk" for a cache hit.
func LedgerRecord(s Spec, res *stats.Run, err error, wall time.Duration, mem obs.MemDelta, cacheSrc string) obs.Record {
	rec := obs.Record{
		CacheHit:        cacheSrc != "",
		CacheSrc:        cacheSrc,
		Key:             s.Key(),
		ParWorkers:      s.Par,
		Seed:            s.Seed,
		WallNS:          int64(wall),
		GCCycles:        mem.GCCycles,
		HeapAllocBytes:  mem.HeapAllocBytes,
		Mallocs:         mem.Mallocs,
		TotalAllocBytes: mem.TotalAllocBytes,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		rec.Events = res.EventsExecuted
		rec.ExecCycles = res.ExecCycles
		rec.FusedRuns = res.FusedRuns
	}
	return rec
}

// sweep serializes one RunAll's progress accounting: done-counts are
// monotone, sink calls never overlap, and the ETA extrapolates from the
// mean pace on the monotonic clock.
type sweep struct {
	r     *Runner
	total int
	timer obs.Timer
	mu    sync.Mutex
	done  int
}

func (r *Runner) newSweep(total int) *sweep {
	return &sweep{r: r, total: total, timer: obs.StartTimer()}
}

func (w *sweep) emit(key string, acct runAccount, err error) {
	if w.r.Progress == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.done++
	elapsed := w.timer.Elapsed()
	var eta time.Duration
	if rem := w.total - w.done; rem > 0 {
		eta = elapsed / time.Duration(w.done) * time.Duration(rem)
	}
	e := obs.ProgressEvent{
		Done: w.done, Total: w.total, Key: key,
		CacheHit: acct.hit(), CacheSrc: acct.CacheSrc, Wall: acct.Wall,
		Elapsed: elapsed, ETA: eta,
	}
	if err != nil {
		e.Err = err.Error()
	}
	w.r.Progress.Event(e)
}

// RunAll executes all specs in parallel. Every failing spec contributes an
// error (wrapped with its key) to the returned errors.Join aggregate;
// successful results are retrieved afterwards via Get (memoized). Specs
// the memo already holds still count toward the sweep's progress total and
// produce cache-hit ledger records, so a resumed sweep's ledger covers the
// whole matrix.
func (r *Runner) RunAll(specs []Spec) error {
	// Deduplicate up front so workers never race to run the same spec,
	// and split cached specs out so they are accounted without executing.
	seen := make(map[string]bool)
	var todo, cached []Spec
	for _, s := range specs {
		s = r.stamp(s)
		k := s.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		r.mu.Lock()
		_, have := r.results[k]
		r.mu.Unlock()
		if have {
			cached = append(cached, s)
		} else {
			todo = append(todo, s)
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].key() < todo[j].key() })
	sort.Slice(cached, func(i, j int) bool { return cached[i].key() < cached[j].key() })

	sw := r.newSweep(len(todo) + len(cached))
	for _, s := range cached {
		r.mu.Lock()
		res := r.results[s.key()]
		r.mu.Unlock()
		if r.Ledger != nil {
			r.Ledger.Append(LedgerRecord(s, res, nil, 0, obs.MemDelta{}, "memo"))
		}
		sw.emit(s.key(), runAccount{CacheSrc: "memo"}, nil)
	}

	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	ch := make(chan Spec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				// get provides the memoization, key-wrapped errors, the
				// singleflight coalescing with any concurrent direct
				// callers, and the one wall-time measurement per run.
				res, acct, err := r.get(s)
				if err != nil {
					r.mu.Lock()
					r.errs = append(r.errs, err)
					r.mu.Unlock()
				} else if r.Log != nil {
					r.Log(fmt.Sprintf("%s wall=%s", res, acct.Wall.Round(time.Millisecond)))
				}
				sw.emit(s.key(), acct, err)
			}
		}()
	}
	for _, s := range todo {
		ch <- s
	}
	close(ch)
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Join in sorted order so the aggregate message is deterministic even
	// though workers finish in arbitrary order.
	sort.Slice(r.errs, func(i, j int) bool { return r.errs[i].Error() < r.errs[j].Error() })
	return errors.Join(r.errs...)
}

// Speedup returns CGL-cycles / system-cycles for the same workload, thread
// count, and cache configuration.
func (r *Runner) Speedup(sys SystemDef, wl stamp.Profile, threads int, cache CacheConfig) (float64, error) {
	cgl, err := r.Get(Spec{System: mustSystem("CGL"), Workload: wl, Threads: threads, Cache: cache})
	if err != nil {
		return 0, err
	}
	run, err := r.Get(Spec{System: sys, Workload: wl, Threads: threads, Cache: cache})
	if err != nil {
		return 0, err
	}
	if run.ExecCycles == 0 {
		return 0, fmt.Errorf("harness: zero exec cycles for %s/%s", sys.Name, wl.Name)
	}
	return float64(cgl.ExecCycles) / float64(run.ExecCycles), nil
}

func mustSystem(name string) SystemDef {
	s, err := SystemByName(name)
	if err != nil {
		panic(err)
	}
	return s
}
