package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stamp"
)

func TestSystemsMatchTableII(t *testing.T) {
	want := []string{
		"CGL", "Baseline", "LosaTM-SAFU",
		"LockillerTM-RAI", "LockillerTM-RRI", "LockillerTM-RWI",
		"LockillerTM-RWL", "LockillerTM-RWIL", "LockillerTM",
	}
	got := Systems()
	if len(got) != len(want) {
		t.Fatalf("%d systems, want %d", len(got), len(want))
	}
	for i, n := range want {
		if got[i].Name != n {
			t.Fatalf("system %d = %s, want %s", i, got[i].Name, n)
		}
		got[i].HTM.Validate()
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestCacheConfigs(t *testing.T) {
	if TypicalCache().L1Size != 32*1024 || TypicalCache().LLCSize != 8<<20 {
		t.Fatal("typical cache mismatch with Table I")
	}
	if SmallCache().L1Size != 8*1024 || LargeCache().L1Size != 128*1024 {
		t.Fatal("Fig. 13 cache configs mismatch")
	}
}

// tinyProfile is a fast workload for harness tests.
func tinyProfile() stamp.Profile {
	return stamp.Profile{
		Name: "tiny", TotalSections: 60,
		TxReads: 4, TxWrites: 2, ComputePerOp: 2,
		NonTxCompute: 30, NonTxMemOps: 1,
		HotLines: 32, WarmLines: 64, PrivateLines: 32,
		HotWriteFrac: 0.7, HotReadFrac: 0.5, WarmReadFrac: 0.2,
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(1)
	spec := Spec{System: mustSystem("Baseline"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}
	a, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoization failed: distinct result objects")
	}
}

func TestSpeedupAgainstCGL(t *testing.T) {
	r := NewRunner(1)
	sp, err := r.Speedup(mustSystem("Baseline"), tinyProfile(), 2, TypicalCache())
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
	// CGL vs itself is exactly 1.
	sp, err = r.Speedup(mustSystem("CGL"), tinyProfile(), 2, TypicalCache())
	if err != nil {
		t.Fatal(err)
	}
	if sp != 1 {
		t.Fatalf("CGL self-speedup = %v, want 1", sp)
	}
}

func TestRunAllParallel(t *testing.T) {
	r := NewRunner(2)
	var specs []Spec
	for _, sys := range []string{"CGL", "Baseline", "LockillerTM"} {
		for _, th := range []int{2, 4} {
			specs = append(specs, Spec{System: mustSystem(sys), Workload: tinyProfile(), Threads: th, Cache: TypicalCache()})
		}
	}
	if err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		res, err := r.Get(s)
		if err != nil || res.Sections() == 0 {
			t.Fatalf("missing result for %s", s.key())
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	r := NewRunner(3)
	wls := []stamp.Profile{tinyProfile()}
	threads := []int{2}

	f1 := &Fig1{Workloads: []string{"a"}, Speedup: []float64{1.5}}
	var buf bytes.Buffer
	f1.Render(&buf)
	if !strings.Contains(buf.String(), "1.50x") {
		t.Fatalf("Fig1 render: %s", buf.String())
	}

	f8, err := RunFig8(r, wls, threads)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f8.Render(&buf)
	if !strings.Contains(buf.String(), "Baseline") {
		t.Fatalf("Fig8 render: %s", buf.String())
	}

	f10, err := RunFig10(r, wls)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f10.Render(&buf)
	if !strings.Contains(buf.String(), "mc") {
		t.Fatalf("Fig10 render: %s", buf.String())
	}

	bf, err := RunBreakdown(r, "Fig. 11", []string{"Baseline", "LockillerTM"}, wls, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	bf.Render(&buf)
	if !strings.Contains(buf.String(), "switchLock") {
		t.Fatalf("Breakdown render: %s", buf.String())
	}
}

func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system sweep")
	}
	r := NewRunner(4)
	wls := []stamp.Profile{tinyProfile()}
	f, err := RunFig7(r, nil, wls, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Systems) != 7 { // Table II minus CGL and LosaTM
		t.Fatalf("Fig7 systems = %v", f.Systems)
	}
	for _, s := range f.Systems {
		for _, wl := range f.Workloads {
			if len(f.Speedup[s][wl]) != 2 {
				t.Fatalf("missing points for %s/%s", s, wl)
			}
		}
	}
	wl, min := f.MinSpeedup("LockillerTM", 0)
	if wl == "" || min <= 0 {
		t.Fatalf("MinSpeedup broken: %s %v", wl, min)
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	if !strings.Contains(buf.String(), "4x8") {
		t.Fatal("Table I missing mesh")
	}
	buf.Reset()
	RenderTable2(&buf)
	if !strings.Contains(buf.String(), "LockillerTM-RWIL") {
		t.Fatal("Table II missing systems")
	}
}

func TestMeans(t *testing.T) {
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean = %v", g)
	}
	if mean(nil) != 0 || geomean(nil) != 0 {
		t.Fatal("empty means")
	}
}
