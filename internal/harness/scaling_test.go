package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/stamp"
)

// TestGridFor pins the derived grids of the scaling sweep (DESIGN.md §13).
func TestGridFor(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{8, 2, 4}, {32, 4, 8}, {64, 8, 8}, {128, 8, 16},
		{256, 16, 16}, {512, 16, 32}, {1024, 32, 32},
	}
	for _, c := range cases {
		if w, h := GridFor(c.n); w != c.w || h != c.h {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

// TestSpecKeyScalingSuffixOnly guards memo-key compatibility: a spec with
// no scaling overrides must produce exactly the pre-scaling key (persisted
// result files stay valid), and overrides may only append to it.
func TestSpecKeyScalingSuffixOnly(t *testing.T) {
	s := Spec{System: mustSystem("Baseline"), Workload: stamp.Intruder(),
		Threads: 8, Cache: TypicalCache(), Seed: 1}
	base := s.key()
	if want := "Baseline|intruder|8|typical|1"; base != want {
		t.Fatalf("default-shape key = %q, want %q", base, want)
	}
	s.Cores, s.Topo, s.ClusterSize = 256, "torus", 16
	scaled := s.key()
	if !strings.HasPrefix(scaled, base) {
		t.Fatalf("scaling overrides must extend the key as a suffix: %q vs %q", scaled, base)
	}
	if scaled == base {
		t.Fatal("scaling overrides must be key-affecting")
	}
	s.MeshW, s.MeshH = 16, 16
	if grid := s.key(); grid == scaled || !strings.HasPrefix(grid, base) {
		t.Fatalf("explicit grid must be key-affecting and keep the base prefix: %q vs %q", grid, scaled)
	}
}

// TestMachineParamsOverrides checks the spec-to-machine resolution:
// derived grids, cmesh concentration, and explicit-grid precedence.
func TestMachineParamsOverrides(t *testing.T) {
	s := Spec{Cache: TypicalCache()}
	if p := s.MachineParams(); p.Cores != 32 || p.MeshW != 4 || p.MeshH != 8 || p.Topo != "" {
		t.Fatalf("no-override params changed: %+v", p)
	}
	s.Cores = 256
	if p := s.MachineParams(); p.MeshW != 16 || p.MeshH != 16 {
		t.Fatalf("256-core grid = %dx%d, want 16x16", p.MeshW, p.MeshH)
	}
	s.Topo = "cmesh"
	if p := s.MachineParams(); p.Conc != 4 || p.MeshW*p.MeshH*p.Conc != 256 {
		t.Fatalf("cmesh params = %+v, want 4 tiles per router over 256 cores", p)
	}
	s.MeshW, s.MeshH = 8, 16
	if p := s.MachineParams(); p.MeshW != 8 || p.MeshH != 16 || p.Conc != 2 {
		t.Fatalf("explicit cmesh grid = %+v, want 8x16 with conc 2", p)
	}
	s.Topo, s.MeshW, s.MeshH = "torus", 0, 0
	s.ClusterSize = 16
	p := s.MachineParams()
	if p.Topo != "torus" || p.ClusterSize != 16 || p.Conc != 0 {
		t.Fatalf("torus params = %+v", p)
	}
	p.Validate()
}

// TestScaling256Deterministic runs a 256-core, two-level-directory machine
// on one workload per system class — lock-based (CGL), plain best-effort
// HTM (Baseline), and the full proposal (LockillerTM) — sequentially and
// on the sharded engine, and requires the two runs to be identical. This
// is the scaled counterpart of the golden-matrix parity tests; CI's
// nightly job runs it under -race.
func TestScaling256Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core runs are not -short tests")
	}
	for _, name := range []string{"CGL", "Baseline", "LockillerTM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := Spec{System: mustSystem(name), Workload: stamp.Intruder(),
				Threads: 16, Cache: TypicalCache(), Seed: 1,
				Cores: 256, ClusterSize: 16}
			seq, err := Execute(spec)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			spec.Par = 4
			par, err := Execute(spec)
			if err != nil {
				t.Fatalf("par=4: %v", err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("256-core stats.Run diverged between engines\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}
