package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/stats"
)

// The persistent sweep cache: one content-addressed JSON file per
// (spec key, seed, schema version) under a directory (out/cache/ by
// convention). Unlike the single-file Save/Load snapshot, the store is
// incremental — every fresh result lands as its own file the moment it
// finishes, so an interrupted sweep loses nothing and repeated sweeps are
// near-free. The schema version is part of the address, so a format change
// simply misses old entries instead of misreading them.

// diskCacheSchema versions the stored entry format; bump it whenever the
// stats.Run encoding or the entry envelope changes shape.
const diskCacheSchema = 1

// DiskCache is a content-addressed result store rooted at a directory.
type DiskCache struct {
	dir string
}

// OpenDiskCache opens (creating if needed) a disk cache rooted at dir.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// diskEntry is the stored envelope. Key and Seed are repeated inside the
// file so Load can verify the content matches the address (a truncated or
// hand-edited file misses instead of serving the wrong spec's result).
type diskEntry struct {
	Schema int        `json:"schema"`
	Seed   uint64     `json:"seed"`
	Key    string     `json:"key"`
	Run    *stats.Run `json:"run"`
}

// path derives the content address: a hash of (schema, seed, key) so every
// identity component is part of the filename and collisions across schema
// versions or seeds are impossible.
func (d *DiskCache) path(key string, seed uint64) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%d|%s", diskCacheSchema, seed, key)))
	return filepath.Join(d.dir, hex.EncodeToString(h[:])+".json")
}

// Load returns the stored result for (key, seed), or ok=false on any kind
// of miss — absent file, undecodable content, or an envelope that does not
// match the address.
func (d *DiskCache) Load(key string, seed uint64) (*stats.Run, bool) {
	b, err := os.ReadFile(d.path(key, seed))
	if err != nil {
		return nil, false
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false
	}
	if e.Schema != diskCacheSchema || e.Seed != seed || e.Key != key || e.Run == nil {
		return nil, false
	}
	return e.Run, true
}

// Store writes one result. The write goes through a temp file and a rename
// so concurrent sweep workers (or an interrupt mid-write) can never leave a
// torn entry at the final address.
func (d *DiskCache) Store(key string, seed uint64, run *stats.Run) error {
	b, err := json.Marshal(diskEntry{Schema: diskCacheSchema, Seed: seed, Key: key, Run: run})
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	final := d.path(key, seed)
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	return nil
}
